//! ND-range descriptions: global and local work sizes (§2.2).

use crate::error::{ClError, ClResult};

/// Global/local work sizes for a kernel dispatch.
///
/// As in OpenCL, the local size must evenly divide the global size in every
/// dimension; validation happens at enqueue time against the target device.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct NdRange {
    /// Number of meaningful dimensions (1–3).
    pub dims: u8,
    /// Global work size per dimension (unused dimensions are 1).
    pub global: [usize; 3],
    /// Local work size per dimension (unused dimensions are 1).
    pub local: [usize; 3],
}

impl NdRange {
    /// One-dimensional range.
    pub fn d1(global: usize, local: usize) -> NdRange {
        NdRange {
            dims: 1,
            global: [global, 1, 1],
            local: [local, 1, 1],
        }
    }

    /// Two-dimensional range.
    pub fn d2(global: [usize; 2], local: [usize; 2]) -> NdRange {
        NdRange {
            dims: 2,
            global: [global[0], global[1], 1],
            local: [local[0], local[1], 1],
        }
    }

    /// Three-dimensional range.
    pub fn d3(global: [usize; 3], local: [usize; 3]) -> NdRange {
        NdRange {
            dims: 3,
            global,
            local,
        }
    }

    /// Total number of work-items.
    pub fn total_items(&self) -> usize {
        self.global[0] * self.global[1] * self.global[2]
    }

    /// Work-items per work-group.
    pub fn group_size(&self) -> usize {
        self.local[0] * self.local[1] * self.local[2]
    }

    /// Number of work-groups.
    pub fn num_groups(&self) -> usize {
        self.total_items() / self.group_size().max(1)
    }

    /// Validate against a device's limits, mirroring the checks behind
    /// `CL_INVALID_WORK_GROUP_SIZE`.
    pub fn validate(&self, max_work_group_size: usize) -> ClResult<()> {
        for d in 0..3 {
            if self.global[d] == 0 || self.local[d] == 0 {
                return Err(ClError::InvalidWorkGroupSize(format!(
                    "dimension {d} has zero size (global {:?}, local {:?})",
                    self.global, self.local
                )));
            }
            if !self.global[d].is_multiple_of(self.local[d]) {
                return Err(ClError::InvalidWorkGroupSize(format!(
                    "local size {} does not divide global size {} in dimension {d}",
                    self.local[d], self.global[d]
                )));
            }
        }
        if self.group_size() > max_work_group_size {
            return Err(ClError::InvalidWorkGroupSize(format!(
                "work-group of {} items exceeds the device limit of {max_work_group_size}",
                self.group_size()
            )));
        }
        Ok(())
    }

    /// Cut this range into up to `parts` group-aligned sub-ranges along
    /// `dim` — the execution shape a `SplitProof` licenses (see
    /// `crates/analysis`): each piece keeps whole work-groups, so
    /// work-group-local communication never crosses a piece boundary,
    /// and a partition-safe dimension guarantees no *global* traffic
    /// crosses one either.
    ///
    /// Groups are distributed as evenly as possible; fewer pieces come
    /// back when there are fewer groups than `parts`. Each piece records
    /// the global-id offset a scheduler must add when launching it.
    ///
    /// Errors mirror enqueue-time validation: `dim` must be within
    /// `dims`, `parts` non-zero, and the local size must divide the
    /// global size along `dim`.
    pub fn split(&self, dim: usize, parts: usize) -> ClResult<Vec<SubRange>> {
        if dim >= usize::from(self.dims) {
            return Err(ClError::InvalidWorkGroupSize(format!(
                "cannot split dimension {dim} of a {}-dimensional range",
                self.dims
            )));
        }
        if parts == 0 {
            return Err(ClError::InvalidWorkGroupSize(
                "cannot split into zero parts".to_string(),
            ));
        }
        let local = self.local[dim].max(1);
        if !self.global[dim].is_multiple_of(local) {
            return Err(ClError::InvalidWorkGroupSize(format!(
                "local size {local} does not divide global size {} in dimension {dim}",
                self.global[dim]
            )));
        }
        let groups = self.global[dim] / local;
        let parts = parts.min(groups).max(1);
        let base = groups / parts;
        let extra = groups % parts;
        let mut out = Vec::with_capacity(parts);
        let mut start_group = 0;
        for p in 0..parts {
            let take = base + usize::from(p < extra);
            let mut range = *self;
            range.global[dim] = take * local;
            let mut offset = [0usize; 3];
            offset[dim] = start_group * local;
            out.push(SubRange { range, offset });
            start_group += take;
        }
        Ok(out)
    }

    /// Cut this range into group-aligned sub-ranges along `dim`,
    /// distributing whole work-groups in proportion to `weights` — the
    /// partition primitive the co-execution scheduler's `Static` and
    /// `Guided` policies use (a 10:1 device-throughput ratio becomes a
    /// 10:1 group split, rounded to whole groups by largest remainder).
    ///
    /// Zero-weight entries receive zero groups and produce **no** piece:
    /// every returned [`SubRange`] is non-empty, so callers get back
    /// `(weight_index, piece)` pairs identifying which weight each piece
    /// belongs to. Pieces cover the range contiguously in weight order.
    ///
    /// Errors mirror [`NdRange::split`]: `dim` must be within `dims`, the
    /// local size must divide the global size along `dim`, and at least
    /// one weight must be positive and finite.
    pub fn split_weighted(&self, dim: usize, weights: &[f64]) -> ClResult<Vec<(usize, SubRange)>> {
        if dim >= usize::from(self.dims) {
            return Err(ClError::InvalidWorkGroupSize(format!(
                "cannot split dimension {dim} of a {}-dimensional range",
                self.dims
            )));
        }
        let local = self.local[dim].max(1);
        if !self.global[dim].is_multiple_of(local) {
            return Err(ClError::InvalidWorkGroupSize(format!(
                "local size {local} does not divide global size {} in dimension {dim}",
                self.global[dim]
            )));
        }
        let total: f64 = weights
            .iter()
            .filter(|w| w.is_finite() && **w > 0.0)
            .sum();
        if total <= 0.0 {
            return Err(ClError::InvalidWorkGroupSize(
                "split_weighted needs at least one positive finite weight".to_string(),
            ));
        }
        let groups = self.global[dim] / local;
        // Largest-remainder apportionment: floor each share, then hand the
        // leftover groups to the largest fractional remainders (ties break
        // toward earlier weights, keeping the result deterministic).
        let mut take = vec![0usize; weights.len()];
        let mut rem: Vec<(usize, f64)> = Vec::with_capacity(weights.len());
        let mut assigned = 0usize;
        for (i, w) in weights.iter().enumerate() {
            if !w.is_finite() || *w <= 0.0 {
                continue;
            }
            let exact = groups as f64 * w / total;
            take[i] = exact.floor() as usize;
            assigned += take[i];
            rem.push((i, exact - exact.floor()));
        }
        rem.sort_by(|a, b| b.1.partial_cmp(&a.1).unwrap_or(std::cmp::Ordering::Equal));
        // Σ floor(exact) ≥ groups − (#positive weights), so one pass over
        // the remainders always places every leftover group.
        let mut left = groups - assigned.min(groups);
        for (i, _) in &rem {
            if left == 0 {
                break;
            }
            take[*i] += 1;
            left -= 1;
        }
        let mut out = Vec::new();
        let mut start_group = 0usize;
        for (i, t) in take.iter().enumerate() {
            if *t == 0 {
                continue;
            }
            let mut range = *self;
            range.global[dim] = t * local;
            let mut offset = [0usize; 3];
            offset[dim] = start_group * local;
            out.push((i, SubRange { range, offset }));
            start_group += t;
        }
        Ok(out)
    }
}

/// One piece of a split dispatch: a smaller [`NdRange`] plus the
/// global-id offset of its first work-item in the original range.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct SubRange {
    /// The piece's own range (whole work-groups of the parent).
    pub range: NdRange,
    /// Global-id offset per dimension (non-zero only along the split
    /// dimension).
    pub offset: [usize; 3],
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn d1_counts() {
        let nd = NdRange::d1(1024, 64);
        assert_eq!(nd.total_items(), 1024);
        assert_eq!(nd.group_size(), 64);
        assert_eq!(nd.num_groups(), 16);
        assert!(nd.validate(256).is_ok());
    }

    #[test]
    fn d2_counts() {
        let nd = NdRange::d2([64, 64], [8, 8]);
        assert_eq!(nd.total_items(), 4096);
        assert_eq!(nd.num_groups(), 64);
    }

    #[test]
    fn indivisible_local_size_is_rejected() {
        let nd = NdRange::d1(100, 8);
        assert!(nd.validate(256).is_err());
    }

    #[test]
    fn oversized_group_is_rejected() {
        let nd = NdRange::d2([64, 64], [32, 32]);
        assert!(nd.validate(256).is_err());
        assert!(nd.validate(1024).is_ok());
    }

    #[test]
    fn zero_size_is_rejected() {
        assert!(NdRange::d1(0, 1).validate(256).is_err());
    }

    #[test]
    fn split_is_group_aligned_and_covers() {
        let nd = NdRange::d1(1024, 64); // 16 groups
        let pieces = nd.split(0, 3).unwrap();
        assert_eq!(pieces.len(), 3);
        // Even-as-possible: 6, 5, 5 groups.
        assert_eq!(
            pieces.iter().map(|p| p.range.global[0]).collect::<Vec<_>>(),
            vec![6 * 64, 5 * 64, 5 * 64]
        );
        // Contiguous cover with group-aligned offsets.
        let mut expect = 0;
        for p in &pieces {
            assert_eq!(p.offset[0], expect);
            assert_eq!(p.offset[0] % 64, 0);
            assert_eq!(p.range.local, nd.local);
            expect += p.range.global[0];
        }
        assert_eq!(expect, 1024);
    }

    #[test]
    fn split_clamps_to_group_count() {
        let nd = NdRange::d2([8, 64], [4, 8]); // 2 groups along dim 0
        let pieces = nd.split(0, 5).unwrap();
        assert_eq!(pieces.len(), 2);
        // Untouched dimensions keep their full extent.
        assert!(pieces.iter().all(|p| p.range.global[1] == 64));
        assert_eq!(pieces[1].offset, [4, 0, 0]);
    }

    #[test]
    fn split_rejects_bad_inputs() {
        let nd = NdRange::d1(1024, 64);
        assert!(nd.split(1, 2).is_err()); // dim out of range
        assert!(nd.split(0, 0).is_err()); // zero parts
        assert!(NdRange::d1(100, 8).split(0, 2).is_err()); // indivisible
    }

    #[test]
    fn split_weighted_follows_ratio() {
        let nd = NdRange::d1(1024, 64); // 16 groups
        let pieces = nd.split_weighted(0, &[3.0, 1.0]).unwrap();
        assert_eq!(pieces.len(), 2);
        assert_eq!(pieces[0].0, 0);
        assert_eq!(pieces[0].1.range.global[0], 12 * 64);
        assert_eq!(pieces[1].0, 1);
        assert_eq!(pieces[1].1.range.global[0], 4 * 64);
        assert_eq!(pieces[1].1.offset[0], 12 * 64);
    }

    #[test]
    fn split_weighted_drops_zero_weight_lanes() {
        let nd = NdRange::d1(1024, 64);
        let pieces = nd.split_weighted(0, &[0.0, 1.0, 0.0]).unwrap();
        assert_eq!(pieces.len(), 1);
        assert_eq!(pieces[0].0, 1);
        assert_eq!(pieces[0].1.range.global[0], 1024);
    }

    #[test]
    fn split_weighted_starves_tiny_weights_rather_than_emitting_empties() {
        let nd = NdRange::d1(128, 64); // 2 groups, 3 weights
        let pieces = nd.split_weighted(0, &[1.0, 1.0, 1e-9]).unwrap();
        assert_eq!(pieces.len(), 2);
        assert!(pieces.iter().all(|(_, p)| p.range.global[0] > 0));
        let covered: usize = pieces.iter().map(|(_, p)| p.range.global[0]).sum();
        assert_eq!(covered, 128);
    }

    #[test]
    fn split_weighted_rejects_bad_inputs() {
        let nd = NdRange::d1(1024, 64);
        assert!(nd.split_weighted(1, &[1.0]).is_err()); // dim out of range
        assert!(nd.split_weighted(0, &[]).is_err()); // no weights
        assert!(nd.split_weighted(0, &[0.0, 0.0]).is_err()); // all zero
        assert!(nd.split_weighted(0, &[f64::NAN]).is_err()); // no finite weight
        assert!(NdRange::d1(100, 8).split_weighted(0, &[1.0]).is_err()); // indivisible
    }

    mod weighted_properties {
        use super::*;
        use proptest::prelude::*;

        proptest! {
            /// Group alignment, contiguous full coverage, no empty parts,
            /// and weight-index monotonicity — for arbitrary ranges and
            /// weight vectors.
            #[test]
            fn split_weighted_partitions_exactly(
                groups in 1usize..64,
                local in 1usize..16,
                raw in proptest::collection::vec(0u32..1000, 1..6),
            ) {
                let mut weights: Vec<f64> = raw.iter().map(|w| f64::from(*w)).collect();
                if !weights.iter().any(|w| *w > 0.0) {
                    weights[0] = 1.0;
                }
                let nd = NdRange::d1(groups * local, local);
                let pieces = nd.split_weighted(0, &weights).unwrap();
                prop_assert!(!pieces.is_empty());
                let mut cursor = 0usize;
                let mut last_lane = None;
                for (lane, p) in &pieces {
                    // No empty parts, and only positive-weight lanes appear.
                    prop_assert!(p.range.global[0] > 0);
                    prop_assert!(weights[*lane] > 0.0);
                    // Group alignment: size and offset are whole groups.
                    prop_assert_eq!(p.range.global[0] % local, 0);
                    prop_assert_eq!(p.offset[0] % local, 0);
                    prop_assert_eq!(p.range.local, nd.local);
                    // Contiguous cover in ascending weight order.
                    prop_assert_eq!(p.offset[0], cursor);
                    prop_assert!(last_lane < Some(*lane) || last_lane.is_none());
                    last_lane = Some(*lane);
                    cursor += p.range.global[0];
                }
                prop_assert_eq!(cursor, groups * local);
            }

            /// A heavier weight never receives fewer groups than a lighter
            /// one (apportionment monotonicity over the returned pieces).
            #[test]
            fn split_weighted_is_monotone_in_weight(
                groups in 1usize..64,
                a in 1u32..100,
                b in 1u32..100,
            ) {
                let nd = NdRange::d1(groups * 8, 8);
                let pieces = nd.split_weighted(0, &[f64::from(a), f64::from(b)]).unwrap();
                let share = |lane: usize| -> usize {
                    pieces.iter().filter(|(l, _)| *l == lane)
                        .map(|(_, p)| p.range.global[0]).sum()
                };
                if a > b {
                    prop_assert!(share(0) >= share(1));
                } else if b > a {
                    prop_assert!(share(1) >= share(0));
                }
            }
        }
    }
}
