//! # ensemble-serve — multi-tenant serving over the shared device pool
//!
//! The paper's runtime executes **one** Ensemble application against the
//! device matrix. This crate turns that runtime into a *serving layer*:
//! N concurrent tenant programs admitted against the same simulated
//! hardware, with the operational properties a shared pool needs —
//!
//! * **Admission control & backpressure** ([`Server`]) — a concurrency
//!   watermark with a bounded wait queue behind it; arrivals past both
//!   fail fast with [`ServeError::Rejected`], memory saturation with
//!   [`ServeError::Overloaded`].
//! * **Deadlines** ([`Request::deadline`]) — an absolute deadline rides
//!   each request into the VM, where every blocking receive (interpreted
//!   `receive` expressions and the kernel actors' native protocol) gives
//!   up once it passes; misses terminate in
//!   [`ServeError::DeadlineExceeded`], queued or running.
//! * **Fair dispatch** ([`FairArbiter`]) — round-robin or weighted
//!   interleaving of tenants' device commands, purely on the wall clock:
//!   virtual-clock determinism survives contention byte-for-byte.
//! * **Memory accounting & eviction** ([`DevicePool`]) — an exact
//!   cross-tenant per-device byte count; past the soft watermark, idle
//!   resident `mov` buffers are transparently forced home and re-uploaded
//!   (byte-identical) on next touch.
//! * **Fault isolation** ([`TenantSession`]) — per-tenant private
//!   contexts and queues mean injected kill-chaos in one tenant lands
//!   only on that tenant's supervision tree; neighbours' outputs *and*
//!   virtual clocks are unchanged.
//!
//! ## Example: two tenants, bounded queue, deadline
//!
//! ```
//! use ensemble_serve::{Request, ServeConfig, Server};
//! use std::sync::Arc;
//! use std::time::Duration;
//!
//! const APP: &str = r#"
//! type data_t is struct ( real [] v )
//! type settings_t is opencl struct (
//!     integer [] worksize;
//!     integer [] groupsize;
//!     in data_t input;
//!     out real [] output
//! )
//! type dispatchI is interface (
//!     out settings_t requests;
//!     out data_t dout;
//!     in real [] din
//! )
//! type kernelI is interface ( in settings_t requests )
//! stage home {
//!     opencl <device_index=0, device_type=GPU>
//!     actor Scale presents kernelI {
//!         constructor() {}
//!         behaviour {
//!             receive req from requests;
//!             receive d from req.input;
//!             i = get_global_id(0);
//!             d.v[i] := d.v[i] * 2.0;
//!             send d.v on req.output;
//!         }
//!     }
//!     actor Dispatch presents dispatchI {
//!         constructor() {}
//!         behaviour {
//!             ws = new integer[1] of 4;
//!             gs = new integer[1] of 2;
//!             i = new in data_t;
//!             o = new out real[];
//!             connect dout to i;
//!             connect o to din;
//!             config = new settings_t(ws, gs, i, o);
//!             v = new real[4] of 3.0;
//!             d = new data_t(v);
//!             send config on requests;
//!             send d on dout;
//!             receive r from din;
//!             printReal(r[0]);
//!             stop;
//!         }
//!     }
//!     boot {
//!         d = new Dispatch();
//!         k = new Scale();
//!         connect d.requests to k.requests;
//!     }
//! }"#;
//!
//! let server = Arc::new(Server::new(ServeConfig::default()));
//! let mut req = Request::new(1, APP);
//! req.deadline = Some(Duration::from_secs(30));
//! let report = server.submit(req).unwrap();
//! assert_eq!(report.output, vec!["6"]);
//! assert_eq!(server.stats().completed, 1);
//! ```

#![warn(missing_docs)]

pub mod arbiter;
pub mod error;
pub mod loadgen;
pub mod pool;
pub mod server;
pub mod session;

pub use arbiter::{ArbiterPolicy, FairArbiter};
pub use error::{DeadlinePhase, ServeError};
pub use loadgen::{latency_percentile, open_loop, Outcome};
pub use pool::DevicePool;
pub use server::{Request, ServeConfig, ServeStats, Server};
pub use session::TenantSession;
