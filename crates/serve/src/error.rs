//! Typed serving outcomes.

use std::fmt;

/// Why a request did not complete normally. Every submitted request
/// terminates in exactly one of: a completed [`ensemble_vm::VmReport`],
/// or one of these — the serving layer never leaves a caller blocked.
#[derive(Debug, Clone, PartialEq)]
pub enum ServeError {
    /// Turned away at arrival: the concurrency watermark was reached
    /// *and* the backpressure queue was already full. The caller should
    /// retry later (nothing was admitted, nothing ran).
    Rejected {
        /// Requests running when this one arrived.
        active: usize,
        /// Requests already queued behind the watermark.
        waiting: usize,
        /// The configured queue depth that was exhausted.
        max_waiting: usize,
    },
    /// Turned away at admission because device memory is past the hard
    /// overload limit even after the accountant's eviction pass — running
    /// one more tenant would thrash the pool.
    Overloaded {
        /// Bytes currently resident on the most-loaded device.
        used_bytes: usize,
        /// The configured hard admission limit.
        overload_bytes: usize,
    },
    /// The request's deadline passed — while queued for admission, or
    /// while running (a blocking receive inside the VM gave up). Partial
    /// work was torn down through the poison protocol.
    DeadlineExceeded {
        /// Where the deadline fired.
        phase: DeadlinePhase,
        /// Human-readable detail (the VM error for in-flight misses).
        detail: String,
    },
    /// A genuine failure: compile error, actor error, or an exhausted
    /// restart budget. Not a capacity condition.
    Failed {
        /// What went wrong.
        detail: String,
    },
}

/// Which stage of a request's life a deadline miss occurred in.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum DeadlinePhase {
    /// Waiting in the admission queue.
    Queued,
    /// Admitted and executing.
    Running,
}

impl fmt::Display for ServeError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            ServeError::Rejected {
                active,
                waiting,
                max_waiting,
            } => write!(
                f,
                "rejected: {active} active, {waiting}/{max_waiting} queued"
            ),
            ServeError::Overloaded {
                used_bytes,
                overload_bytes,
            } => write!(
                f,
                "overloaded: {used_bytes} bytes resident, limit {overload_bytes}"
            ),
            ServeError::DeadlineExceeded { phase, detail } => {
                let phase = match phase {
                    DeadlinePhase::Queued => "queued",
                    DeadlinePhase::Running => "running",
                };
                write!(f, "deadline exceeded while {phase}: {detail}")
            }
            ServeError::Failed { detail } => write!(f, "request failed: {detail}"),
        }
    }
}

impl std::error::Error for ServeError {}
