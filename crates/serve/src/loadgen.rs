//! Open-loop load generation and latency aggregation.
//!
//! The generator launches requests on a fixed arrival schedule — one
//! submitter thread per request, started `interval` apart — regardless
//! of how many are still in flight. That is the *open-loop* discipline:
//! unlike closed-loop drivers (which wait for a response before sending
//! the next request, and therefore slow down exactly when the server
//! does), it keeps offered load constant and exposes queueing delay,
//! rejection, and deadline behaviour under genuine overload.

use crate::error::ServeError;
use crate::server::{Request, Server};
use ensemble_vm::VmReport;
use std::sync::Arc;
use std::time::{Duration, Instant};

/// One request's terminal outcome under load.
#[derive(Debug, Clone)]
pub struct Outcome {
    /// The tenant that submitted.
    pub tenant: u64,
    /// Completion report or typed serving error.
    pub result: Result<VmReport, ServeError>,
    /// Wall-clock time from scheduled submission to terminal outcome.
    pub latency: Duration,
}

impl Outcome {
    /// True when the request ran to completion.
    pub fn is_completed(&self) -> bool {
        self.result.is_ok()
    }
}

/// Drive `requests` at the open-loop arrival rate of one per `interval`
/// and wait for every terminal outcome. Outcomes come back in submission
/// order.
pub fn open_loop(server: &Arc<Server>, requests: Vec<Request>, interval: Duration) -> Vec<Outcome> {
    let epoch = Instant::now();
    let handles: Vec<_> = requests
        .into_iter()
        .enumerate()
        .map(|(i, req)| {
            let server = Arc::clone(server);
            std::thread::spawn(move || {
                let due = epoch + interval * i as u32;
                if let Some(wait) = due.checked_duration_since(Instant::now()) {
                    std::thread::sleep(wait);
                }
                let start = Instant::now();
                let tenant = req.tenant;
                let result = server.submit(req);
                Outcome {
                    tenant,
                    result,
                    latency: start.elapsed(),
                }
            })
        })
        .collect();
    handles
        .into_iter()
        .map(|h| h.join().expect("submitter thread panicked"))
        .collect()
}

/// The `p`-th percentile (0–100, nearest-rank) of the outcomes'
/// latencies. Every outcome counts — completions, rejections, deadline
/// misses — because each is a terminal answer the client waited for.
/// Returns zero for an empty set.
pub fn latency_percentile(outcomes: &[Outcome], p: f64) -> Duration {
    if outcomes.is_empty() {
        return Duration::ZERO;
    }
    let mut lats: Vec<Duration> = outcomes.iter().map(|o| o.latency).collect();
    lats.sort_unstable();
    let rank = ((p / 100.0) * lats.len() as f64).ceil() as usize;
    lats[rank.clamp(1, lats.len()) - 1]
}

#[cfg(test)]
mod tests {
    use super::*;

    fn outcome(ms: u64) -> Outcome {
        Outcome {
            tenant: 0,
            result: Err(ServeError::Failed {
                detail: "synthetic".into(),
            }),
            latency: Duration::from_millis(ms),
        }
    }

    #[test]
    fn percentiles_use_nearest_rank() {
        let outs: Vec<Outcome> = (1..=100).map(outcome).collect();
        assert_eq!(latency_percentile(&outs, 50.0), Duration::from_millis(50));
        assert_eq!(latency_percentile(&outs, 99.0), Duration::from_millis(99));
        assert_eq!(latency_percentile(&outs, 100.0), Duration::from_millis(100));
        assert_eq!(latency_percentile(&[], 50.0), Duration::ZERO);
    }
}
