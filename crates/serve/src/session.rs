//! Per-tenant sessions: private device environments over the shared
//! physical pool.
//!
//! A [`TenantSession`] materialises, for every device of the process-wide
//! matrix, a **private** context and command queue. That single decision
//! carries the tentpole guarantees:
//!
//! * **Determinism under contention** — each private queue's virtual
//!   clock starts at zero, so a tenant's virtual timeline (and therefore
//!   its outputs *and* its `total_ns`) is byte-identical whether it runs
//!   alone or alongside N neighbours. Sharing is re-introduced where it
//!   is semantically safe: the wall-clock [`FairArbiter`] in front of
//!   each physical device, and the [`DevicePool`] accountant across the
//!   tenant contexts.
//! * **Fault isolation** — a session's [`FaultInjector`] attaches to its
//!   own queues and contexts only, so seeded kill-chaos in one tenant
//!   can only ever fire on that tenant's actor threads, and is absorbed
//!   by that tenant's own supervision tree (the VM's one-for-one
//!   supervisor with a per-session [`RestartBudget`]).
//!
//! [`FairArbiter`]: crate::FairArbiter
//! [`DevicePool`]: crate::DevicePool

use crate::error::{DeadlinePhase, ServeError};
use crate::pool::DevicePool;
use ensemble_actors::RestartBudget;
use ensemble_ocl::{device_matrix, DeviceSel, OpenClEnvironment, ResolveEnv};
use ensemble_vm::{EvictableMov, VmReport, VmRuntime};
use oclsim::{ClError, ClResult, CommandQueue, Context, FaultInjector, FaultPlan, QueueArbiter};
use parking_lot::Mutex;
use std::sync::Arc;
use std::time::Instant;

/// One private device lane of a session: the shared physical device,
/// wrapped in this tenant's own context and queue.
struct SessionEntry {
    context: Context,
    queue: CommandQueue,
    platform: String,
}

/// The session's environment table; implements [`ResolveEnv`] with the
/// same selection rules as the global [`ensemble_ocl::DeviceMatrix`], so
/// programs resolve identically — just onto private lanes.
///
/// A *shifted* table (used by hedge secondaries) resolves typed
/// selections onto the **opposite** device class when one exists — the
/// speculative re-issue runs on the failover device, away from whatever
/// is straggling on the primary's preferred class — falling back to the
/// requested class when there is no other.
struct SessionEnvs {
    entries: Vec<SessionEntry>,
    shifted: bool,
}

impl ResolveEnv for SessionEnvs {
    fn resolve(&self, sel: DeviceSel) -> ClResult<OpenClEnvironment> {
        let entry = match sel.device_type {
            None => self.entries.get(sel.device_index).ok_or_else(|| {
                ClError::DeviceNotFound {
                    requested: format!("device #{}", sel.device_index),
                }
            })?,
            Some(ty) => {
                let shifted_pick = if self.shifted {
                    self.entries
                        .iter()
                        .filter(|e| e.queue.device().device_type() != ty)
                        .nth(sel.device_index)
                } else {
                    None
                };
                match shifted_pick {
                    Some(e) => e,
                    None => self
                        .entries
                        .iter()
                        .filter(|e| e.queue.device().device_type() == ty)
                        .nth(sel.device_index)
                        .ok_or_else(|| ClError::DeviceNotFound {
                            requested: format!("{ty} #{}", sel.device_index),
                        })?,
                }
            }
        };
        Ok(OpenClEnvironment {
            platform: entry.platform.clone(),
            device: entry.queue.device().clone(),
            context: entry.context.clone(),
            queue: entry.queue.clone(),
        })
    }
}

/// A tenant's serving session (see module docs). Tear-down is automatic
/// on drop: registry entries evicted, observers and arbiter detached.
pub struct TenantSession {
    tenant: u64,
    envs: Arc<SessionEnvs>,
    pool: Arc<DevicePool>,
    chaotic: bool,
    /// The session's injector, kept so a hedging server can release any
    /// injected [`oclsim::InjectedFault::Hang`] stall
    /// ([`TenantSession::cancel_hangs`]) when the speculative re-issue
    /// wins the race. `None` for chaos-free sessions.
    injector: Option<FaultInjector>,
    /// Resident values of a *chaotic* session. They stay out of the
    /// pool's shared eviction registry (an eviction read-back on a
    /// chaotic queue could fire an injected kill on the evictor's
    /// thread) but must still be forced home at teardown so the pool's
    /// byte counter returns to zero.
    local_resident: Arc<Mutex<Vec<EvictableMov>>>,
}

impl TenantSession {
    /// Build the session's private lanes over every device of the global
    /// matrix, attaching `arbiter` (tagged with `tenant`) and the pool
    /// accountant. A `chaos` plan attaches a [`FaultInjector`] to the
    /// private lanes only — neighbours never see it.
    pub fn new(
        tenant: u64,
        arbiter: Arc<dyn QueueArbiter>,
        pool: Arc<DevicePool>,
        chaos: Option<FaultPlan>,
    ) -> Result<TenantSession, ServeError> {
        TenantSession::build(tenant, arbiter, pool, chaos, false)
    }

    /// A hedge secondary: a chaos-free session whose typed device
    /// selections resolve onto the *opposite* device class (the failover
    /// device) when one exists, so the speculative re-issue races the
    /// straggling primary on different hardware. Use a tenant tag
    /// distinct from the primary's so the two sessions' pool-registry
    /// entries stay independent.
    pub fn hedge_secondary(
        tenant: u64,
        arbiter: Arc<dyn QueueArbiter>,
        pool: Arc<DevicePool>,
    ) -> Result<TenantSession, ServeError> {
        TenantSession::build(tenant, arbiter, pool, None, true)
    }

    fn build(
        tenant: u64,
        arbiter: Arc<dyn QueueArbiter>,
        pool: Arc<DevicePool>,
        chaos: Option<FaultPlan>,
        shifted: bool,
    ) -> Result<TenantSession, ServeError> {
        let injector = chaos.map(FaultInjector::new);
        let mut entries = Vec::new();
        for m in device_matrix().entries() {
            let context = Context::new(std::slice::from_ref(&m.device)).map_err(|e| {
                ServeError::Failed {
                    detail: format!("session context: {e}"),
                }
            })?;
            let queue =
                CommandQueue::new(&context, &m.device).map_err(|e| ServeError::Failed {
                    detail: format!("session queue: {e}"),
                })?;
            queue.attach_arbiter(Arc::clone(&arbiter), tenant);
            context.set_mem_observer(Some(Arc::clone(&pool) as _));
            if let Some(inj) = &injector {
                queue.attach_faults(inj.clone());
                context.attach_faults(inj.clone());
            }
            entries.push(SessionEntry {
                context,
                queue,
                platform: m.platform.clone(),
            });
        }
        Ok(TenantSession {
            tenant,
            envs: Arc::new(SessionEnvs { entries, shifted }),
            pool,
            chaotic: injector.is_some(),
            injector,
            local_resident: Arc::new(Mutex::new(Vec::new())),
        })
    }

    /// The tenant tag.
    pub fn tenant(&self) -> u64 {
        self.tenant
    }

    /// Whether this session runs under fault injection.
    pub fn is_chaotic(&self) -> bool {
        self.chaotic
    }

    /// Release every injected [`oclsim::InjectedFault::Hang`] stall on
    /// this session's injector (no-op for chaos-free sessions). A
    /// hedging server calls this the moment the speculative re-issue
    /// wins, so the straggling primary drains instead of sleeping out
    /// its full hang cap. Idempotent.
    pub fn cancel_hangs(&self) {
        if let Some(inj) = &self.injector {
            inj.cancel_hangs();
        }
    }

    /// Compile and run `source` inside this session: kernel actors
    /// resolve onto the private lanes, every blocking receive honours
    /// `deadline`, and (for chaos-free sessions) resident `mov` values
    /// are registered with the pool's eviction registry.
    pub fn run(
        &self,
        source: &str,
        deadline: Option<Instant>,
        budget: RestartBudget,
    ) -> Result<VmReport, ServeError> {
        // The analysis-gated front-end (deny-by-default static checks +
        // residency proofs) — the same pipeline every other runner uses.
        let module = ensemble_analysis::compile_source(
            source,
            &ensemble_analysis::Options::default(),
        )
        .map_err(|e| ServeError::Failed {
            detail: format!("compile: {e}"),
        })?;
        let mut vm = VmRuntime::new(module);
        vm.set_restart_budget(budget);
        vm.set_env_resolver(Arc::clone(&self.envs) as _);
        vm.set_deadline(deadline);
        if self.chaotic {
            // Chaotic tenants never feed the shared eviction registry:
            // an eviction read-back runs on the *evictor's* thread, and
            // a chaotic queue could fire an injected kill there —
            // outside the victim tenant's supervision tree. Track them
            // session-locally for teardown instead.
            let local = Arc::clone(&self.local_resident);
            vm.set_resident_hook(Some(Arc::new(move |m| {
                let mut l = local.lock();
                if !l.iter().any(|x| x.same_value(&m)) {
                    l.push(m);
                }
            })));
        } else {
            let pool = Arc::clone(&self.pool);
            let tenant = self.tenant;
            vm.set_resident_hook(Some(Arc::new(move |m| pool.register(tenant, m))));
        }
        vm.run().map_err(|e| {
            if e.is_deadline() {
                ServeError::DeadlineExceeded {
                    phase: DeadlinePhase::Running,
                    detail: e.0,
                }
            } else {
                ServeError::Failed { detail: e.0 }
            }
        })
    }

    /// Detach everything and return the tenant's device bytes to the
    /// pool. Idempotent; also runs on drop.
    pub fn teardown(&self) {
        // Release any injected hang stalls so no actor thread is left
        // sleeping out its cap while we tear down under it.
        self.cancel_hangs();
        // Disarm fault injection first: the local-registry evictions
        // below read back on this session's queues, and must not trip
        // leftover scheduled kills on the teardown thread.
        if self.chaotic {
            for e in &self.envs.entries {
                e.queue.attach_faults(FaultInjector::disabled());
                e.context.attach_faults(FaultInjector::disabled());
            }
        }
        for h in self.local_resident.lock().drain(..) {
            let _ = h.try_evict();
        }
        self.pool.release_tenant(self.tenant);
        for e in &self.envs.entries {
            e.context.set_mem_observer(None);
            e.queue.detach_arbiter();
        }
    }
}

impl Drop for TenantSession {
    fn drop(&mut self) {
        self.teardown();
    }
}
