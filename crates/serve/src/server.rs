//! The serving front door: admission control, backpressure, deadlines.
//!
//! A [`Server`] admits at most `max_active` concurrent tenant requests
//! against the shared device pool. Arrivals past the watermark queue up
//! to `max_waiting` deep (backpressure); beyond that they are turned
//! away immediately with [`ServeError::Rejected`]. Queued requests that
//! outwait their deadline fail with [`ServeError::DeadlineExceeded`]
//! without ever running; admitted requests carry their absolute deadline
//! into the VM, where every blocking receive honours it. A hard memory
//! check at admission ([`ServeError::Overloaded`]) keeps a saturated
//! pool from accreting more resident state than eviction can reclaim.

use crate::arbiter::{ArbiterPolicy, FairArbiter};
use crate::error::{DeadlinePhase, ServeError};
use crate::pool::DevicePool;
use crate::session::TenantSession;
use ensemble_actors::RestartBudget;
use ensemble_vm::VmReport;
use oclsim::FaultPlan;
use std::sync::{Arc, Condvar, Mutex};
use std::time::{Duration, Instant};
use trace::{SpanKind, TraceEvent, TraceSink};

/// Serving limits and policy.
#[derive(Debug, Clone)]
pub struct ServeConfig {
    /// Concurrency watermark: requests admitted at once.
    pub max_active: usize,
    /// Backpressure queue depth behind the watermark; arrivals past it
    /// are [`ServeError::Rejected`].
    pub max_waiting: usize,
    /// Soft per-device byte watermark: past it the pool accountant
    /// evicts idle resident buffers to make room.
    pub mem_watermark_bytes: usize,
    /// Hard admission limit: when the most-loaded device still holds
    /// more than this after eviction opportunities, new requests are
    /// [`ServeError::Overloaded`].
    pub mem_overload_bytes: usize,
    /// Dispatch fairness policy of the shared [`FairArbiter`].
    pub policy: ArbiterPolicy,
    /// Straggler hedging: when an admitted request has not completed
    /// after this much wall-clock time, speculatively re-issue it in a
    /// clean secondary session on failover-shifted device lanes and
    /// return whichever finishes first (the loser's injected hang
    /// stalls are cancelled, and the result is discarded). `None`
    /// disables hedging. Trades duplicated work for tail latency:
    /// choose a value past the workload's normal completion time so
    /// only genuine stragglers pay the duplication.
    pub hedge_after: Option<Duration>,
}

impl Default for ServeConfig {
    fn default() -> ServeConfig {
        ServeConfig {
            max_active: 2,
            max_waiting: 8,
            mem_watermark_bytes: 64 << 10,
            mem_overload_bytes: 4 << 20,
            policy: ArbiterPolicy::RoundRobin,
            hedge_after: None,
        }
    }
}

/// One unit of serving work: a tenant's program plus its service terms.
#[derive(Debug, Clone)]
pub struct Request {
    /// Tenant tag: sessions, arbitration grants, and pool registry
    /// entries are keyed by it.
    pub tenant: u64,
    /// Ensemble source to compile and run.
    pub source: String,
    /// Relative deadline, measured from submission (`None`: no deadline).
    pub deadline: Option<Duration>,
    /// Arbitration weight under [`ArbiterPolicy::Weighted`].
    pub weight: f64,
    /// Optional per-tenant fault plan (attaches only to this tenant's
    /// private queues/contexts).
    pub chaos: Option<FaultPlan>,
    /// Restart budget of the session's supervision tree.
    pub restart_budget: RestartBudget,
}

impl Request {
    /// A plain request: no deadline, weight 1, no chaos, default budget.
    pub fn new(tenant: u64, source: impl Into<String>) -> Request {
        Request {
            tenant,
            source: source.into(),
            deadline: None,
            weight: 1.0,
            chaos: None,
            restart_budget: RestartBudget::default(),
        }
    }
}

/// Terminal-outcome counters (monotonic; for gating and the bench).
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct ServeStats {
    /// Requests that ran to completion.
    pub completed: u64,
    /// Requests turned away with a full queue.
    pub rejected: u64,
    /// Requests turned away over the memory limit.
    pub overloaded: u64,
    /// Requests that missed their deadline (queued or running).
    pub deadline_exceeded: u64,
    /// Requests that failed for a non-capacity reason.
    pub failed: u64,
}

#[derive(Default)]
struct Gate {
    active: usize,
    waiting: usize,
}

/// The multi-tenant server (see module docs). Share it across submitter
/// threads via `Arc`.
pub struct Server {
    config: ServeConfig,
    arbiter: Arc<FairArbiter>,
    pool: Arc<DevicePool>,
    gate: Mutex<Gate>,
    slot_freed: Condvar,
    stats: Mutex<ServeStats>,
    trace: Mutex<TraceSink>,
}

fn relock<T>(r: Result<T, std::sync::PoisonError<T>>) -> T {
    r.unwrap_or_else(|p| p.into_inner())
}

/// Tenant-tag bit marking a hedge secondary's session, so its pool
/// registry entries never collide with the straggling primary's.
const HEDGE_TENANT_BIT: u64 = 1 << 63;

impl Server {
    /// A server with `config`'s limits, a fresh arbiter, and a fresh
    /// pool accountant.
    pub fn new(config: ServeConfig) -> Server {
        let arbiter = Arc::new(FairArbiter::new(config.policy));
        let pool = Arc::new(DevicePool::new(config.mem_watermark_bytes));
        Server {
            config,
            arbiter,
            pool,
            gate: Mutex::new(Gate::default()),
            slot_freed: Condvar::new(),
            stats: Mutex::new(ServeStats::default()),
            trace: Mutex::new(TraceSink::disabled()),
        }
    }

    /// Record `Admit`/`Reject`/`DeadlineExceeded` instants (and the
    /// pool's `Evict` instants) into `sink`, all on the wall clock.
    pub fn set_trace(&self, sink: TraceSink) {
        self.pool.set_trace(sink.clone());
        *relock(self.trace.lock()) = sink;
    }

    /// The shared dispatch arbiter (grant counts feed fairness reports).
    pub fn arbiter(&self) -> &Arc<FairArbiter> {
        &self.arbiter
    }

    /// The shared memory accountant.
    pub fn pool(&self) -> &Arc<DevicePool> {
        &self.pool
    }

    /// Terminal-outcome counters so far.
    pub fn stats(&self) -> ServeStats {
        *relock(self.stats.lock())
    }

    /// The configured limits.
    pub fn config(&self) -> &ServeConfig {
        &self.config
    }

    fn instant(&self, kind: SpanKind, name: &str, tenant: u64) {
        let t = relock(self.trace.lock()).clone();
        if t.is_enabled() {
            t.record(
                TraceEvent::instant(kind, name, "serve", t.wall_ns())
                    .with_arg("tenant", tenant)
                    .with_arg("clock", "wall"),
            );
        }
    }

    fn count(&self, f: impl FnOnce(&mut ServeStats)) {
        let mut stats = relock(self.stats.lock());
        f(&mut stats);
    }

    /// Submit one request and block until its terminal outcome: a
    /// completed [`VmReport`] or a typed [`ServeError`]. Never blocks
    /// past the request's deadline.
    pub fn submit(&self, req: Request) -> Result<VmReport, ServeError> {
        let deadline_at = req.deadline.map(|d| Instant::now() + d);
        self.admit(&req, deadline_at)?;
        // The slot is held from here; give it back on every exit path.
        let outcome = self.run_admitted(&req, deadline_at);
        {
            let mut gate = relock(self.gate.lock());
            gate.active -= 1;
        }
        self.slot_freed.notify_all();
        match &outcome {
            Ok(_) => self.count(|s| s.completed += 1),
            Err(ServeError::DeadlineExceeded { .. }) => self.count(|s| s.deadline_exceeded += 1),
            Err(ServeError::Overloaded { .. }) => self.count(|s| s.overloaded += 1),
            Err(ServeError::Rejected { .. }) => self.count(|s| s.rejected += 1),
            Err(ServeError::Failed { .. }) => self.count(|s| s.failed += 1),
        }
        outcome
    }

    /// The admission gate: take an active slot, queueing behind the
    /// concurrency watermark up to `max_waiting` deep.
    fn admit(&self, req: &Request, deadline_at: Option<Instant>) -> Result<(), ServeError> {
        let mut gate = relock(self.gate.lock());
        if gate.active >= self.config.max_active {
            if gate.waiting >= self.config.max_waiting {
                let err = ServeError::Rejected {
                    active: gate.active,
                    waiting: gate.waiting,
                    max_waiting: self.config.max_waiting,
                };
                drop(gate);
                self.instant(SpanKind::Reject, "queue_full", req.tenant);
                self.count(|s| s.rejected += 1);
                return Err(err);
            }
            gate.waiting += 1;
            while gate.active >= self.config.max_active {
                match deadline_at {
                    None => gate = relock(self.slot_freed.wait(gate)),
                    Some(at) => {
                        let now = Instant::now();
                        if now >= at {
                            gate.waiting -= 1;
                            drop(gate);
                            self.instant(SpanKind::DeadlineExceeded, "queued", req.tenant);
                            self.count(|s| s.deadline_exceeded += 1);
                            return Err(ServeError::DeadlineExceeded {
                                phase: DeadlinePhase::Queued,
                                detail: "deadline passed in the admission queue".into(),
                            });
                        }
                        let (g, _) = relock(self.slot_freed.wait_timeout(gate, at - now));
                        gate = g;
                    }
                }
            }
            gate.waiting -= 1;
        }
        gate.active += 1;
        Ok(())
    }

    /// Memory check, session build, run, teardown — with the active slot
    /// already held.
    fn run_admitted(
        &self,
        req: &Request,
        deadline_at: Option<Instant>,
    ) -> Result<VmReport, ServeError> {
        let used = self.pool.max_device_used();
        if used > self.config.mem_overload_bytes {
            self.instant(SpanKind::Reject, "overloaded", req.tenant);
            return Err(ServeError::Overloaded {
                used_bytes: used,
                overload_bytes: self.config.mem_overload_bytes,
            });
        }
        if self.config.policy == ArbiterPolicy::Weighted {
            self.arbiter.set_weight(req.tenant, req.weight);
        }
        self.instant(SpanKind::Admit, "admit", req.tenant);
        match self.config.hedge_after {
            None => {
                let session = TenantSession::new(
                    req.tenant,
                    Arc::clone(&self.arbiter) as _,
                    Arc::clone(&self.pool),
                    req.chaos.clone(),
                )?;
                let result = session.run(&req.source, deadline_at, req.restart_budget);
                session.teardown();
                result
            }
            Some(hedge) => self.run_hedged(req, deadline_at, hedge),
        }
    }

    /// Straggler hedging (see [`ServeConfig::hedge_after`]): run the
    /// primary session on a worker thread; if it has not produced a
    /// result after `hedge`, speculatively re-issue the request in a
    /// clean secondary session on failover-shifted lanes and return
    /// whichever finishes first. The loser's injected hang stalls are
    /// released ([`TenantSession::cancel_hangs`]) and its result is
    /// discarded; the primary is always joined and torn down before
    /// returning, so no session outlives its request.
    fn run_hedged(
        &self,
        req: &Request,
        deadline_at: Option<Instant>,
        hedge: Duration,
    ) -> Result<VmReport, ServeError> {
        let primary = Arc::new(TenantSession::new(
            req.tenant,
            Arc::clone(&self.arbiter) as _,
            Arc::clone(&self.pool),
            req.chaos.clone(),
        )?);
        let (tx, rx) = std::sync::mpsc::channel();
        let worker = {
            let primary = Arc::clone(&primary);
            let source = req.source.clone();
            let budget = req.restart_budget;
            std::thread::spawn(move || {
                let _ = tx.send(primary.run(&source, deadline_at, budget));
            })
        };
        if let Ok(result) = rx.recv_timeout(hedge) {
            // Finished inside the hedge budget: no speculation needed.
            let _ = worker.join();
            primary.teardown();
            return result;
        }
        // The primary is straggling. Race a clean secondary against it
        // on failover-shifted lanes, under a distinct tenant tag so the
        // two sessions' pool-registry entries stay independent.
        self.instant(SpanKind::Hedge, "hedge", req.tenant);
        let secondary_outcome = TenantSession::hedge_secondary(
            req.tenant | HEDGE_TENANT_BIT,
            Arc::clone(&self.arbiter) as _,
            Arc::clone(&self.pool),
        )
        .map(|session| {
            let r = session.run(&req.source, deadline_at, req.restart_budget);
            session.teardown();
            r
        });
        let outcome = match rx.try_recv() {
            // The primary crossed the line while the secondary ran:
            // first result wins, the duplicated work is discarded.
            Ok(Ok(report)) => {
                self.instant(SpanKind::HedgeWon, "primary", req.tenant);
                Ok(report)
            }
            primary_so_far => match secondary_outcome {
                Ok(Ok(report)) => {
                    self.instant(SpanKind::HedgeWon, "secondary", req.tenant);
                    self.instant(SpanKind::StragglerAbandoned, "primary", req.tenant);
                    Ok(report)
                }
                // The secondary failed (or could not be built): fall
                // back to waiting the primary out — any injected hang
                // is bounded by its plan's cap.
                _ => match primary_so_far {
                    Ok(result) => result,
                    Err(_) => rx.recv().unwrap_or_else(|_| {
                        Err(ServeError::Failed {
                            detail: "hedged primary worker disappeared".into(),
                        })
                    }),
                },
            },
        };
        primary.cancel_hangs();
        let _ = worker.join();
        primary.teardown();
        outcome
    }
}
