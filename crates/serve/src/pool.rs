//! The device-memory accountant: cross-tenant accounting plus eviction
//! of idle resident `mov` buffers under pressure.
//!
//! Each tenant session runs against *private* per-device contexts, so
//! the simulator's own per-context budget cannot see the pool-level
//! picture (N tenants × one physical device). The [`DevicePool`]
//! implements [`oclsim::MemObserver`]: every allocation of an attached
//! context consults it first, and every release reports back, giving the
//! pool an exact per-device byte count across all tenants.
//!
//! When an allocation would push a device past the **soft watermark**,
//! the pool walks its eviction registry — `mov` values the VM reported
//! as device-resident via [`ensemble_vm::VmRuntime::set_resident_hook`] —
//! and forces idle ones back to host memory (oldest first) until the
//! allocation fits or no candidates remain. Eviction is transparent to
//! the owning program: the kernel-actor protocol re-uploads the
//! byte-identical flattened data on the value's next touch. Values whose
//! state lock is held (a dispatch in flight) are skipped, never awaited,
//! so the evictor cannot deadlock against the VM.

use ensemble_vm::EvictableMov;
use oclsim::{ClResult, MemObserver};
use parking_lot::Mutex;
use std::collections::HashMap;
use trace::{SpanKind, TraceEvent, TraceSink};

/// One registered eviction candidate.
struct Candidate {
    tenant: u64,
    handle: EvictableMov,
}

#[derive(Default)]
struct PoolState {
    /// Device id → bytes currently allocated across every attached
    /// tenant context.
    used: HashMap<usize, usize>,
    /// Eviction registry in registration order (oldest first).
    candidates: Vec<Candidate>,
    /// Total evictions performed (for the bench and tests).
    evictions: u64,
    /// Total bytes reclaimed by eviction.
    evicted_bytes: u64,
}

/// The cross-tenant device-memory accountant (see module docs).
pub struct DevicePool {
    watermark: usize,
    state: Mutex<PoolState>,
    trace: Mutex<TraceSink>,
}

impl std::fmt::Debug for DevicePool {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("DevicePool")
            .field("watermark", &self.watermark)
            .field("used", &self.state.lock().used)
            .finish()
    }
}

impl DevicePool {
    /// A pool with a soft per-device watermark of `watermark_bytes`.
    pub fn new(watermark_bytes: usize) -> DevicePool {
        DevicePool {
            watermark: watermark_bytes,
            state: Mutex::new(PoolState::default()),
            trace: Mutex::new(TraceSink::disabled()),
        }
    }

    /// Record `Evict` instants into `sink` (wall clock).
    pub fn set_trace(&self, sink: TraceSink) {
        *self.trace.lock() = sink;
    }

    /// The soft per-device watermark.
    pub fn watermark_bytes(&self) -> usize {
        self.watermark
    }

    /// Bytes currently resident on `device_id` across all tenants.
    pub fn used_bytes(&self, device_id: usize) -> usize {
        self.state.lock().used.get(&device_id).copied().unwrap_or(0)
    }

    /// Bytes resident on the most-loaded device (the admission-control
    /// pressure signal).
    pub fn max_device_used(&self) -> usize {
        self.state
            .lock()
            .used
            .values()
            .copied()
            .max()
            .unwrap_or(0)
    }

    /// Total bytes resident across every device.
    pub fn total_used(&self) -> usize {
        self.state.lock().used.values().sum()
    }

    /// Evictions performed so far.
    pub fn evictions(&self) -> u64 {
        self.state.lock().evictions
    }

    /// Bytes reclaimed by eviction so far.
    pub fn evicted_bytes(&self) -> u64 {
        self.state.lock().evicted_bytes
    }

    /// Register a device-resident `mov` value of `tenant` as an eviction
    /// candidate (deduplicated by value identity). Sessions with fault
    /// injection attached never register — reading a chaotic tenant's
    /// buffers back on the evictor's thread could fire that tenant's
    /// injected kills outside its supervision tree.
    pub fn register(&self, tenant: u64, handle: EvictableMov) {
        let mut st = self.state.lock();
        if st.candidates.iter().any(|c| c.handle.same_value(&handle)) {
            return;
        }
        st.candidates.push(Candidate { tenant, handle });
    }

    /// Tear down `tenant`'s footprint: force each of its registered
    /// values back to host (releasing the device bytes through the
    /// owning context) and drop them from the registry. Called by the
    /// session on teardown; after it, the tenant holds zero accountable
    /// device bytes. Returns the bytes reclaimed.
    pub fn release_tenant(&self, tenant: u64) -> usize {
        let mine: Vec<EvictableMov> = {
            let mut st = self.state.lock();
            let mut mine = Vec::new();
            st.candidates.retain(|c| {
                if c.tenant == tenant {
                    mine.push(c.handle.clone());
                    false
                } else {
                    true
                }
            });
            mine
        };
        let mut reclaimed = 0usize;
        for h in mine {
            // At teardown the VM has joined: the state locks are free and
            // the read-back releases the bytes through the context, which
            // reports back via `did_release`.
            if let Ok(Some(bytes)) = h.try_evict() {
                reclaimed += bytes;
            }
        }
        reclaimed
    }

    /// Free at least `deficit` bytes on `device_id` by evicting idle
    /// registered values, oldest first. Runs **without** the pool lock
    /// held: each eviction's read-back re-enters the accountant through
    /// `did_release`.
    fn evict_for(&self, device_id: usize, deficit: usize) {
        let candidates: Vec<EvictableMov> = self
            .state
            .lock()
            .candidates
            .iter()
            .map(|c| c.handle.clone())
            .collect();
        let mut freed = 0usize;
        for h in candidates {
            if freed >= deficit {
                break;
            }
            if h.device_id() != Some(device_id) {
                continue;
            }
            if let Ok(Some(bytes)) = h.try_evict() {
                freed += bytes;
                let mut st = self.state.lock();
                st.evictions += 1;
                st.evicted_bytes += bytes as u64;
                drop(st);
                let t = self.trace.lock().clone();
                if t.is_enabled() {
                    t.record(
                        TraceEvent::instant(SpanKind::Evict, "evict", "serve", t.wall_ns())
                            .with_arg("device", device_id)
                            .with_arg("bytes", bytes)
                            .with_arg("clock", "wall"),
                    );
                }
            }
        }
        // Evicted-to-host values stay registered: they re-register (as a
        // dedup no-op via the resident hook) when next uploaded, and
        // their `device_id()` reports `None` meanwhile, so stale entries
        // cost one skip each.
    }
}

impl MemObserver for DevicePool {
    fn will_allocate(&self, device_id: usize, bytes: usize) -> ClResult<()> {
        let used = self.used_bytes(device_id);
        if used + bytes > self.watermark {
            let deficit = used + bytes - self.watermark;
            self.evict_for(device_id, deficit);
        }
        // The watermark is *soft*: past it (nothing evictable left) the
        // pool lets the allocation through and co-located tenants thrash
        // rather than fail — the *hard* limits are the per-context device
        // budget and the server's admission overload check.
        *self.state.lock().used.entry(device_id).or_insert(0) += bytes;
        Ok(())
    }

    fn did_release(&self, device_id: usize, bytes: usize) {
        let mut st = self.state.lock();
        if let Some(u) = st.used.get_mut(&device_id) {
            *u = u.saturating_sub(bytes);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn accounting_tracks_allocate_and_release() {
        let pool = DevicePool::new(1000);
        pool.will_allocate(3, 400).unwrap();
        pool.will_allocate(3, 100).unwrap();
        pool.will_allocate(4, 50).unwrap();
        assert_eq!(pool.used_bytes(3), 500);
        assert_eq!(pool.total_used(), 550);
        assert_eq!(pool.max_device_used(), 500);
        pool.did_release(3, 400);
        assert_eq!(pool.used_bytes(3), 100);
        pool.did_release(3, 1000); // over-release saturates at zero
        assert_eq!(pool.used_bytes(3), 0);
    }

    #[test]
    fn soft_watermark_admits_when_nothing_is_evictable() {
        let pool = DevicePool::new(100);
        pool.will_allocate(0, 90).unwrap();
        // Past the watermark with an empty registry: still admitted.
        pool.will_allocate(0, 90).unwrap();
        assert_eq!(pool.used_bytes(0), 180);
        assert_eq!(pool.evictions(), 0);
    }
}
