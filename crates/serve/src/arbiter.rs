//! The fair dispatch arbiter in front of each device's command stream.
//!
//! Every tenant session owns a *private* command queue per device (for
//! clock determinism and fault isolation), but the physical device is
//! one: the [`FairArbiter`] decides, whenever several tenants have a
//! command ready, whose turn it is. It implements the
//! [`oclsim::QueueArbiter`] seam, so each upload / dispatch / read-back
//! of an attached queue brackets itself in an `acquire`/`release` pair.
//!
//! Fairness is **deficit-based**: the arbiter tracks how many grants each
//! tenant has received per device and always grants the contending tenant
//! with the lowest weight-normalised count (`served / weight`). With
//! equal weights that degenerates to strict round-robin among contenders;
//! with weights, long-run grant shares converge to the weight ratio.
//! Arbitration is purely a wall-clock concern — it never touches the
//! queues' virtual clocks, so a tenant's virtual timeline stays
//! byte-identical with or without contention.

use oclsim::QueueArbiter;
use std::collections::HashMap;
use std::sync::{Condvar, Mutex, MutexGuard};

/// Grant-ordering policy of a [`FairArbiter`].
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum ArbiterPolicy {
    /// Equal turns for every contending tenant.
    #[default]
    RoundRobin,
    /// Grant shares proportional to per-tenant weights (set via
    /// [`FairArbiter::set_weight`]; unset tenants weigh 1.0).
    Weighted,
}

/// Per-device arbitration lane.
#[derive(Default)]
struct Lane {
    /// A grant is outstanding (one command in flight on the device).
    busy: bool,
    /// Tenant → number of its threads currently blocked in `acquire`.
    waiting: HashMap<u64, usize>,
    /// Tenant → grants handed out so far (the deficit counter).
    served: HashMap<u64, u64>,
}

/// The cross-tenant command arbiter (see module docs).
pub struct FairArbiter {
    policy: ArbiterPolicy,
    weights: Mutex<HashMap<u64, f64>>,
    lanes: Mutex<HashMap<usize, Lane>>,
    freed: Condvar,
}

/// `std` mutexes poison when a holder panics; arbitration state stays
/// consistent across an injected kill-panic (the RAII grant releases
/// during unwind), so poison is safely ignored — parking_lot semantics.
fn relock<T>(r: Result<T, std::sync::PoisonError<T>>) -> T {
    r.unwrap_or_else(|p| p.into_inner())
}

impl FairArbiter {
    /// A fresh arbiter with the given policy.
    pub fn new(policy: ArbiterPolicy) -> FairArbiter {
        FairArbiter {
            policy,
            weights: Mutex::new(HashMap::new()),
            lanes: Mutex::new(HashMap::new()),
            freed: Condvar::new(),
        }
    }

    /// Set `tenant`'s weight (only meaningful under
    /// [`ArbiterPolicy::Weighted`]; values are clamped to be positive).
    pub fn set_weight(&self, tenant: u64, weight: f64) {
        relock(self.weights.lock()).insert(tenant, weight.max(f64::MIN_POSITIVE));
    }

    /// Grants handed out per tenant on `device_id` so far, sorted by
    /// tenant id (for fairness assertions and bench reporting).
    pub fn grants(&self, device_id: usize) -> Vec<(u64, u64)> {
        let lanes = relock(self.lanes.lock());
        let mut v: Vec<(u64, u64)> = lanes
            .get(&device_id)
            .map(|l| l.served.iter().map(|(&t, &n)| (t, n)).collect())
            .unwrap_or_default();
        v.sort_unstable();
        v
    }

    fn weight_of(&self, tenant: u64) -> f64 {
        match self.policy {
            ArbiterPolicy::RoundRobin => 1.0,
            ArbiterPolicy::Weighted => relock(self.weights.lock())
                .get(&tenant)
                .copied()
                .unwrap_or(1.0),
        }
    }

    /// The contending tenant owed the next grant: lowest normalised
    /// served count, ties to the smaller tenant id (deterministic).
    fn winner(&self, lane: &Lane) -> Option<u64> {
        lane.waiting
            .iter()
            .filter(|(_, &n)| n > 0)
            .map(|(&t, _)| t)
            .min_by(|&a, &b| {
                let ka = lane.served.get(&a).copied().unwrap_or(0) as f64 / self.weight_of(a);
                let kb = lane.served.get(&b).copied().unwrap_or(0) as f64 / self.weight_of(b);
                ka.partial_cmp(&kb)
                    .unwrap_or(std::cmp::Ordering::Equal)
                    .then(a.cmp(&b))
            })
    }
}

impl QueueArbiter for FairArbiter {
    fn acquire(&self, device_id: usize, tenant: u64) {
        let mut lanes: MutexGuard<'_, HashMap<usize, Lane>> = relock(self.lanes.lock());
        *lanes
            .entry(device_id)
            .or_default()
            .waiting
            .entry(tenant)
            .or_insert(0) += 1;
        loop {
            let lane = lanes.get_mut(&device_id).expect("lane registered above");
            if !lane.busy && self.winner(lane) == Some(tenant) {
                lane.busy = true;
                let n = lane.waiting.get_mut(&tenant).expect("registered above");
                *n -= 1;
                if *n == 0 {
                    lane.waiting.remove(&tenant);
                }
                *lane.served.entry(tenant).or_insert(0) += 1;
                return;
            }
            lanes = relock(self.freed.wait(lanes));
        }
    }

    fn release(&self, device_id: usize, _tenant: u64) {
        let mut lanes = relock(self.lanes.lock());
        if let Some(lane) = lanes.get_mut(&device_id) {
            lane.busy = false;
        }
        drop(lanes);
        self.freed.notify_all();
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::Arc;

    fn hammer(arb: &Arc<FairArbiter>, tenants: &[u64], per_tenant: usize) {
        let handles: Vec<_> = tenants
            .iter()
            .map(|&t| {
                let arb = Arc::clone(arb);
                std::thread::spawn(move || {
                    for _ in 0..per_tenant {
                        arb.acquire(0, t);
                        // Hold briefly so contenders pile up.
                        std::thread::yield_now();
                        arb.release(0, t);
                    }
                })
            })
            .collect();
        for h in handles {
            h.join().unwrap();
        }
    }

    #[test]
    fn round_robin_grants_everyone_fully() {
        let arb = Arc::new(FairArbiter::new(ArbiterPolicy::RoundRobin));
        hammer(&arb, &[1, 2, 3], 50);
        let grants = arb.grants(0);
        assert_eq!(grants, vec![(1, 50), (2, 50), (3, 50)]);
    }

    #[test]
    fn weighted_policy_reads_weights() {
        let arb = FairArbiter::new(ArbiterPolicy::Weighted);
        arb.set_weight(7, 3.0);
        assert_eq!(arb.weight_of(7), 3.0);
        assert_eq!(arb.weight_of(8), 1.0);
        // Round-robin ignores weights entirely.
        let rr = FairArbiter::new(ArbiterPolicy::RoundRobin);
        rr.set_weight(7, 3.0);
        assert_eq!(rr.weight_of(7), 1.0);
    }

    #[test]
    fn winner_prefers_the_most_owed_tenant() {
        let arb = FairArbiter::new(ArbiterPolicy::Weighted);
        arb.set_weight(1, 1.0);
        arb.set_weight(2, 2.0);
        let mut lane = Lane::default();
        lane.waiting.insert(1, 1);
        lane.waiting.insert(2, 1);
        lane.served.insert(1, 10);
        lane.served.insert(2, 10);
        // 10/1 > 10/2: tenant 2 is owed the grant.
        assert_eq!(arb.winner(&lane), Some(2));
    }
}
