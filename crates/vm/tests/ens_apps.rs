//! End-to-end tests: the five evaluation applications written in
//! mini-Ensemble, compiled and executed on the VM, with each OpenCL
//! version's printed result compared against its single-threaded Ensemble
//! version (the paper's "all implementations were functionally
//! equivalent" check, at reduced sizes).

use ensemble_vm::VmRuntime;

/// Compile through the static-analysis gate, so every app exercised here
/// is also certified race-free, in-bounds, and deadlock-lint clean on
/// each run — and carries the mov residency proofs into its bytecode.
fn gated(src: &str) -> ensemble_lang::CompiledModule {
    ensemble_analysis::compile_source(src, &ensemble_analysis::Options::default())
        .unwrap_or_else(|e| panic!("{e}"))
}

/// Run a source and return its printed output.
fn run(src: &str) -> Vec<String> {
    VmRuntime::new(gated(src))
        .run()
        .unwrap_or_else(|e| panic!("{e}"))
        .output
}

/// Shrink the paper-scale constants embedded in an asset for test speed.
fn shrink(src: &str, subs: &[(&str, &str)]) -> String {
    let mut out = src.to_string();
    for (from, to) in subs {
        assert!(out.contains(from), "substitution `{from}` not found");
        out = out.replace(from, to);
    }
    out
}

#[test]
fn matmul_ocl_matches_seq() {
    let subs = [("1024", "8")];
    let gsubs = [("1024", "8"), ("of 16", "of 2")];
    let seq = run(&shrink(
        include_str!("../../apps/src/assets/matmul/seq.ens"),
        &subs,
    ));
    let ocl = run(&shrink(
        include_str!("../../apps/src/assets/matmul/ocl.ens"),
        &gsubs,
    ));
    // a=1, b=2 → every result element is 2n → checksum 2n³ = 1024.
    assert_eq!(seq, vec!["checksum: ".to_string(), "1024".to_string()]);
    assert_eq!(ocl, seq);
}

#[test]
fn mandelbrot_ocl_matches_seq() {
    let subs = [("1024", "16"), ("1000", "60")];
    let gsubs = [("1024", "16"), ("1000", "60"), ("of 16", "of 4")];
    let seq = run(&shrink(
        include_str!("../../apps/src/assets/mandelbrot/seq.ens"),
        &subs,
    ));
    let ocl = run(&shrink(
        include_str!("../../apps/src/assets/mandelbrot/ocl.ens"),
        &gsubs,
    ));
    assert_eq!(seq[0], "total: ");
    assert_eq!(ocl, seq);
    // The total must be meaningful (some pixels escaped, some did not).
    let total: i64 = seq[1].parse().unwrap();
    assert!(total > 16 * 16, "suspicious total {total}");
}

#[test]
fn reduction_ocl_matches_seq() {
    let subs = [("33554432", "4096")];
    let seq = run(&shrink(
        include_str!("../../apps/src/assets/reduction/seq.ens"),
        &subs,
    ));
    let ocl = run(&shrink(
        include_str!("../../apps/src/assets/reduction/ocl.ens"),
        &subs,
    ));
    assert_eq!(seq, vec!["min: ".to_string(), "-123.5".to_string()]);
    assert_eq!(ocl, seq);
}

#[test]
fn lud_ocl_matches_seq() {
    let subs = [("2048", "16")];
    let gsubs = [("2048", "16"), ("group = 16", "group = 4")];
    let seq = run(&shrink(
        include_str!("../../apps/src/assets/lud/seq.ens"),
        &subs,
    ));
    let ocl = run(&shrink(
        include_str!("../../apps/src/assets/lud/ocl.ens"),
        &gsubs,
    ));
    assert_eq!(seq[0], "U trace: ");
    // Compare traces numerically (interpreted f32 kernels vs f64 host).
    let a: f64 = seq[1].parse().unwrap();
    let b: f64 = ocl[1].parse().unwrap();
    assert!(
        (a - b).abs() < 1e-2 * a.abs().max(1.0),
        "seq trace {a} vs ocl trace {b}"
    );
}

#[test]
fn docrank_ocl_matches_seq() {
    let subs = [("65536", "128"), ("rounds = 10", "rounds = 3")];
    let seq = run(&shrink(
        include_str!("../../apps/src/assets/docrank/seq.ens"),
        &subs,
    ));
    let ocl = run(&shrink(
        include_str!("../../apps/src/assets/docrank/ocl.ens"),
        &subs,
    ));
    assert_eq!(seq[0], "wanted: ");
    assert_eq!(ocl, seq);
}

#[test]
fn lud_vm_keeps_matrix_on_device_between_kernels() {
    // The VM-level movability check: 16×16 LUD does 16 steps × 3 kernels =
    // 48 dispatches, but the matrix crosses the bus only twice (up at the
    // first dispatch, down when the controller reads the trace).
    let gsubs = [("2048", "16"), ("group = 16", "group = 4")];
    let module = gated(&shrink(
        include_str!("../../apps/src/assets/lud/ocl.ens"),
        &gsubs,
    ));
    let report = VmRuntime::new(module).run().unwrap();
    assert_eq!(report.profile.dispatches, 48);
    let gpu = ensemble_ocl::device_matrix()
        .select(ensemble_ocl::DeviceSel::gpu())
        .unwrap();
    let matrix_bytes = 16 * 16 * 4;
    let one_up =
        gpu.device.cost_model().transfer_ns(matrix_bytes) + gpu.device.cost_model().transfer_ns(4); // piv
    assert!(
        report.profile.to_device_ns <= one_up + 1.0,
        "expected one upload, got {} (one = {one_up})",
        report.profile.to_device_ns
    );
    assert!(report.vm_ops > 0, "VM overhead must be accounted");
}

#[test]
fn docrank_vm_residency_skips_reupload_between_rounds() {
    let subs = [("65536", "128"), ("rounds = 10", "rounds = 3")];
    let module = gated(&shrink(
        include_str!("../../apps/src/assets/docrank/ocl.ens"),
        &subs,
    ));
    let report = VmRuntime::new(module).run().unwrap();
    assert_eq!(report.profile.dispatches, 3);
    // Three uploads (docs, tpl, flags) for round one; rounds 2-3 reuse.
    let gpu = ensemble_ocl::device_matrix()
        .select(ensemble_ocl::DeviceSel::gpu())
        .unwrap();
    let cost = gpu.device.cost_model();
    let one_round_up =
        cost.transfer_ns(128 * 64 * 4) + cost.transfer_ns(64 * 4) + cost.transfer_ns(128 * 4);
    assert!(
        (report.profile.to_device_ns - one_round_up).abs() < 1.0,
        "expected a single round of uploads: {} vs {one_round_up}",
        report.profile.to_device_ns
    );
}

#[test]
fn lud_residency_proof_skips_runtime_bookkeeping() {
    // The analysis proves every consumer of `lud_t` lives on one device,
    // so the VM's mov path skips the cross-context residency comparison.
    // Each device-resident dispatch after the first upload records a
    // `residency_proven` instant instead of doing the bookkeeping.
    let gsubs = [("2048", "8"), ("group = 16", "group = 4")];
    let module = gated(&shrink(
        include_str!("../../apps/src/assets/lud/ocl.ens"),
        &gsubs,
    ));
    let mut kernels = 0;
    for actor in &module.actors {
        if let ensemble_lang::ActorCode::Kernel(plan) = &actor.code {
            assert!(
                plan.residency_proven,
                "kernel `{}` should carry the residency proof",
                plan.kernel_name
            );
            kernels += 1;
        }
    }
    assert_eq!(kernels, 3, "Diag, Col and Sub must all be kernel actors");
    let sink = trace::TraceSink::new();
    let profile = ensemble_ocl::ProfileSink::new().with_trace(sink.clone());
    VmRuntime::with_profile(module, profile).run().unwrap();
    let proven = sink
        .events()
        .iter()
        .filter(|e| e.kind == trace::SpanKind::ResidencyProven)
        .count();
    // 8 steps × 3 kernels = 24 dispatches; all but the very first find the
    // matrix already device-resident and skip the check under the proof.
    assert_eq!(proven, 23, "expected a proof instant per resident dispatch");
}
