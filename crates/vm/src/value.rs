//! Runtime values of the Ensemble VM.
//!
//! Arrays and structs are heap objects with reference semantics *within*
//! an actor (as in the Ensemble VM, which is a modified JVM); crossing a
//! channel deep-copies them (shared-nothing), unless the type is `mov`, in
//! which case the reference itself travels — including references to data
//! that currently lives **on an OpenCL device** (§6.2.3).

use ensemble_actors::{In, Out};
use ensemble_lang::vmops::{DataField, ElemKind};
use ensemble_ocl::{FlatData, FlatSeg, ProfileSink, ResidentBufs};
use parking_lot::Mutex;
use std::collections::HashMap;
use std::sync::Arc;

/// A VM runtime error.
#[derive(Debug, Clone, PartialEq)]
pub struct VmError(pub String);

impl std::fmt::Display for VmError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "vm error: {}", self.0)
    }
}

impl std::error::Error for VmError {}

/// Error-class prefix marking a deadline miss, mirroring the supervisor's
/// `[killed] ` convention: a [`VmError`] whose message starts with this
/// prefix means a blocking receive gave up because the run's absolute
/// deadline passed, not that the program is wrong. The serving layer maps
/// such failures to its `DeadlineExceeded` outcome.
pub const DEADLINE_MARK: &str = "[deadline] ";

impl VmError {
    /// Build a deadline-miss error for the operation `what`.
    pub fn deadline(what: &str) -> VmError {
        VmError(format!("{DEADLINE_MARK}{what}"))
    }

    /// True when this error records a deadline miss.
    pub fn is_deadline(&self) -> bool {
        self.0.starts_with(DEADLINE_MARK)
    }
}

/// Array storage: typed leaves, nested cells for multi-dimensional arrays.
#[derive(Debug, Clone)]
pub enum VmArr {
    /// `integer []`.
    I(Vec<i64>),
    /// `real []`.
    R(Vec<f64>),
    /// `boolean []`.
    B(Vec<bool>),
    /// Arrays of arrays (outer dimensions) or of structs.
    Cells(Vec<VmVal>),
}

impl PartialEq for VmArr {
    fn eq(&self, other: &VmArr) -> bool {
        match (self, other) {
            (VmArr::I(a), VmArr::I(b)) => a == b,
            (VmArr::R(a), VmArr::R(b)) => a == b,
            (VmArr::B(a), VmArr::B(b)) => a == b,
            // Nested arrays compare shallowly by identity of the cells;
            // tests only compare leaf arrays.
            (VmArr::Cells(a), VmArr::Cells(b)) => a.len() == b.len(),
            _ => false,
        }
    }
}

impl VmArr {
    /// First-dimension length.
    pub fn len(&self) -> usize {
        match self {
            VmArr::I(v) => v.len(),
            VmArr::R(v) => v.len(),
            VmArr::B(v) => v.len(),
            VmArr::Cells(v) => v.len(),
        }
    }

    /// True when empty.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }
}

/// The state of a `mov` struct: on the host or resident on a device.
#[derive(Debug)]
pub enum MovState {
    /// Field values live on the host.
    Host(Vec<VmVal>),
    /// Field data lives in device buffers (flattening order = field order).
    Device {
        /// The buffers plus dims.
        bufs: ResidentBufs,
        /// Field descriptors for rebuilding host values.
        fields: Vec<DataField>,
    },
}

/// A runtime value.
#[derive(Debug, Clone)]
pub enum VmVal {
    /// No value.
    Unit,
    /// `integer`.
    I(i64),
    /// `real`.
    R(f64),
    /// `boolean`.
    B(bool),
    /// `string`.
    S(Arc<str>),
    /// Array object.
    Arr(Arc<Mutex<VmArr>>),
    /// Plain struct object: type id + fields.
    Struct(u16, Arc<Mutex<Vec<VmVal>>>),
    /// A `mov` struct: may be device-resident.
    MovStruct(u16, Arc<Mutex<MovState>>),
    /// Input endpoint (shared so it can be stored and received from).
    ChanIn(Arc<In<VmVal>>),
    /// Output endpoint.
    ChanOut(Out<VmVal>),
    /// Actor handle: port name → endpoint (boot only).
    ActorRef(Arc<HashMap<String, VmVal>>),
}

impl VmVal {
    /// Wrap a new array.
    pub fn arr(a: VmArr) -> VmVal {
        VmVal::Arr(Arc::new(Mutex::new(a)))
    }

    /// Numeric view as f64.
    pub fn as_f(&self) -> Result<f64, VmError> {
        match self {
            VmVal::I(v) => Ok(*v as f64),
            VmVal::R(v) => Ok(*v),
            other => Err(VmError(format!("expected a number, found {other:?}"))),
        }
    }

    /// Numeric view as i64.
    pub fn as_i(&self) -> Result<i64, VmError> {
        match self {
            VmVal::I(v) => Ok(*v),
            VmVal::R(v) => Ok(*v as i64),
            VmVal::B(b) => Ok(*b as i64),
            other => Err(VmError(format!("expected an integer, found {other:?}"))),
        }
    }

    /// Boolean view.
    pub fn as_b(&self) -> Result<bool, VmError> {
        match self {
            VmVal::B(b) => Ok(*b),
            VmVal::I(v) => Ok(*v != 0),
            other => Err(VmError(format!("expected a boolean, found {other:?}"))),
        }
    }

    /// Deep copy for shared-nothing channel sends. Channels and actor
    /// handles are runtime identities, not data — they are shared.
    /// Device-resident `mov` structs are forced back to the host first
    /// (a non-mov send of mov data re-establishes isolation).
    pub fn deep_copy(&self, profile: Option<&ProfileSink>) -> Result<VmVal, VmError> {
        Ok(match self {
            VmVal::Unit => VmVal::Unit,
            VmVal::I(v) => VmVal::I(*v),
            VmVal::R(v) => VmVal::R(*v),
            VmVal::B(v) => VmVal::B(*v),
            VmVal::S(s) => VmVal::S(Arc::clone(s)),
            VmVal::Arr(a) => {
                let inner = a.lock();
                let copied = match &*inner {
                    VmArr::I(v) => VmArr::I(v.clone()),
                    VmArr::R(v) => VmArr::R(v.clone()),
                    VmArr::B(v) => VmArr::B(v.clone()),
                    VmArr::Cells(v) => VmArr::Cells(
                        v.iter()
                            .map(|x| x.deep_copy(profile))
                            .collect::<Result<_, _>>()?,
                    ),
                };
                VmVal::arr(copied)
            }
            VmVal::Struct(id, fields) => {
                let inner = fields.lock();
                let copied = inner
                    .iter()
                    .map(|x| x.deep_copy(profile))
                    .collect::<Result<_, _>>()?;
                VmVal::Struct(*id, Arc::new(Mutex::new(copied)))
            }
            VmVal::MovStruct(id, state) => {
                force_host(state, profile)?;
                let inner = state.lock();
                let MovState::Host(fields) = &*inner else {
                    unreachable!("forced to host above");
                };
                let copied = fields
                    .iter()
                    .map(|x| x.deep_copy(profile))
                    .collect::<Result<_, _>>()?;
                VmVal::MovStruct(*id, Arc::new(Mutex::new(MovState::Host(copied))))
            }
            VmVal::ChanIn(c) => VmVal::ChanIn(Arc::clone(c)),
            VmVal::ChanOut(c) => VmVal::ChanOut(c.clone()),
            VmVal::ActorRef(r) => VmVal::ActorRef(Arc::clone(r)),
        })
    }
}

/// Force a `mov` struct's data back to the host (the §6.2.3 rule for host
/// access), charging the transfer to `profile`.
///
/// Returns the still-held lock guard so callers can read the host fields
/// without a release/re-acquire window (another thread — e.g. a kernel
/// actor — could otherwise move the value back onto a device in between).
pub fn force_host_locked<'m>(
    state: &'m Mutex<MovState>,
    profile: Option<&ProfileSink>,
) -> Result<parking_lot::MutexGuard<'m, MovState>, VmError> {
    let mut guard = state.lock();
    if let MovState::Device { .. } = &*guard {
        let old = std::mem::replace(&mut *guard, MovState::Host(Vec::new()));
        let MovState::Device { bufs, fields } = old else {
            unreachable!("matched above");
        };
        let flat = bufs
            .read_back(profile)
            .map_err(|e| VmError(format!("device read-back failed: {e}")))?;
        let vals = unflatten_fields(&flat, &fields)?;
        *guard = MovState::Host(vals);
    }
    Ok(guard)
}

/// [`force_host_locked`] for callers that do not need the guard.
pub fn force_host(state: &Mutex<MovState>, profile: Option<&ProfileSink>) -> Result<(), VmError> {
    force_host_locked(state, profile).map(|_| ())
}

/// A weak-ish handle to a `mov` struct's state that a device-memory
/// accountant can evict under pressure.
///
/// Eviction forces the value back to host memory through the same
/// read-back path host access uses ([`force_host_locked`]), so it is
/// transparent to the owning program: the kernel actor's dispatch loop
/// handles `MovState::Host` unconditionally and re-uploads the (byte
/// -identical) flattened data on the next touch. The accountant holds a
/// strong `Arc` — a `mov` value's memory is only reclaimable through
/// either teardown of the owning session (dropping the registry) or this
/// handle.
#[derive(Debug, Clone)]
pub struct EvictableMov {
    state: Arc<Mutex<MovState>>,
}

impl EvictableMov {
    /// Wrap the state cell of a [`VmVal::MovStruct`].
    pub fn new(state: Arc<Mutex<MovState>>) -> EvictableMov {
        EvictableMov { state }
    }

    /// Device bytes currently held by this value, or 0 when host-resident
    /// **or busy** (the owner holds the lock — counting it as evictable
    /// would invite the evictor to block on a dispatch in progress).
    pub fn resident_bytes(&self) -> usize {
        match self.state.try_lock() {
            Some(guard) => match &*guard {
                MovState::Device { bufs, .. } => bufs.device_bytes(),
                MovState::Host(_) => 0,
            },
            None => 0,
        }
    }

    /// The device currently holding this value's buffers (`None` when
    /// host-resident or busy).
    pub fn device_id(&self) -> Option<usize> {
        match self.state.try_lock() {
            Some(guard) => match &*guard {
                MovState::Device { bufs, .. } => Some(bufs.queue.device().id()),
                MovState::Host(_) => None,
            },
            None => None,
        }
    }

    /// True when `other` wraps the same underlying `mov` state cell (the
    /// accountant's registry deduplicates on this).
    pub fn same_value(&self, other: &EvictableMov) -> bool {
        Arc::ptr_eq(&self.state, &other.state)
    }

    /// Try to evict: force the value to host memory, releasing its device
    /// buffers. Returns `Ok(Some(bytes))` with the bytes freed,
    /// `Ok(None)` when there was nothing to do (already host-resident, or
    /// the owner holds the lock — never block an evictor on a running
    /// dispatch), and `Err` if the device read-back itself failed.
    ///
    /// The transfer is *not* charged to any profile: eviction is a pool
    /// decision, not part of the victim program's execution, so the
    /// victim's transfer accounting (its `VmReport` sums) is unchanged.
    pub fn try_evict(&self) -> Result<Option<usize>, VmError> {
        let Some(mut guard) = self.state.try_lock() else {
            return Ok(None);
        };
        if !matches!(&*guard, MovState::Device { .. }) {
            return Ok(None);
        }
        let old = std::mem::replace(&mut *guard, MovState::Host(Vec::new()));
        let MovState::Device { bufs, fields } = old else {
            unreachable!("matched above");
        };
        let bytes = bufs.device_bytes();
        let flat = bufs
            .read_back(None)
            .map_err(|e| VmError(format!("eviction read-back failed: {e}")))?;
        let vals = unflatten_fields(&flat, &fields)?;
        *guard = MovState::Host(vals);
        Ok(Some(bytes))
    }
}

/// Flatten a list of field values (each an array) following the fields'
/// declared shapes.
pub fn flatten_fields(vals: &[VmVal], fields: &[DataField]) -> Result<FlatData, VmError> {
    let mut out = FlatData::default();
    for (val, field) in vals.iter().zip(fields) {
        let (seg, dims) = flatten_array(val, field)?;
        out.segs.push(seg);
        out.dims.extend(dims);
    }
    Ok(out)
}

fn flatten_array(val: &VmVal, field: &DataField) -> Result<(FlatSeg, Vec<i32>), VmError> {
    // Walk the nested structure, collecting dims and leaf data.
    let mut dims = Vec::new();
    let mut f32s: Vec<f32> = Vec::new();
    let mut i32s: Vec<i32> = Vec::new();
    walk(val, field, 0, &mut dims, &mut f32s, &mut i32s)?;
    fn walk(
        v: &VmVal,
        field: &DataField,
        depth: usize,
        dims: &mut Vec<i32>,
        f32s: &mut Vec<f32>,
        i32s: &mut Vec<i32>,
    ) -> Result<(), VmError> {
        let VmVal::Arr(a) = v else {
            return Err(VmError(format!(
                "field `{}` is not an array at depth {depth}",
                field.name
            )));
        };
        let inner = a.lock();
        if dims.len() <= depth {
            dims.push(inner.len() as i32);
        } else if dims[depth] != inner.len() as i32 {
            return Err(VmError(format!(
                "field `{}` is ragged at depth {depth}",
                field.name
            )));
        }
        match &*inner {
            VmArr::Cells(cells) => {
                for c in cells {
                    walk(c, field, depth + 1, dims, f32s, i32s)?;
                }
            }
            VmArr::R(v) => f32s.extend(v.iter().map(|&x| x as f32)),
            VmArr::I(v) => i32s.extend(v.iter().map(|&x| x as i32)),
            VmArr::B(v) => i32s.extend(v.iter().map(|&x| x as i32)),
        }
        Ok(())
    }
    if dims.len() != field.ndims {
        return Err(VmError(format!(
            "field `{}` has {} dims, declared {}",
            field.name,
            dims.len(),
            field.ndims
        )));
    }
    let seg = match field.elem {
        ElemKind::Real => FlatSeg::F32(f32s),
        _ => FlatSeg::I32(i32s),
    };
    Ok((seg, dims))
}

/// Rebuild field values from flattened data.
pub fn unflatten_fields(flat: &FlatData, fields: &[DataField]) -> Result<Vec<VmVal>, VmError> {
    let mut out = Vec::with_capacity(fields.len());
    let mut dim_cursor = 0usize;
    for (seg, field) in flat.segs.iter().zip(fields) {
        let dims: Vec<usize> = flat.dims[dim_cursor..dim_cursor + field.ndims]
            .iter()
            .map(|&d| d as usize)
            .collect();
        dim_cursor += field.ndims;
        out.push(build_array(seg, &dims, field)?);
    }
    Ok(out)
}

/// Build one (possibly nested) array value from a segment.
pub fn build_array(seg: &FlatSeg, dims: &[usize], field: &DataField) -> Result<VmVal, VmError> {
    fn slice_to_val(seg: &FlatSeg, range: std::ops::Range<usize>, elem: ElemKind) -> VmVal {
        match (seg, elem) {
            (FlatSeg::F32(v), _) => {
                VmVal::arr(VmArr::R(v[range].iter().map(|&x| x as f64).collect()))
            }
            (FlatSeg::I32(v), ElemKind::Bool) => {
                VmVal::arr(VmArr::B(v[range].iter().map(|&x| x != 0).collect()))
            }
            (FlatSeg::I32(v), _) => {
                VmVal::arr(VmArr::I(v[range].iter().map(|&x| x as i64).collect()))
            }
        }
    }
    fn build(seg: &FlatSeg, dims: &[usize], offset: usize, elem: ElemKind) -> VmVal {
        if dims.len() == 1 {
            slice_to_val(seg, offset..offset + dims[0], elem)
        } else {
            let inner_size: usize = dims[1..].iter().product();
            let cells = (0..dims[0])
                .map(|k| build(seg, &dims[1..], offset + k * inner_size, elem))
                .collect();
            VmVal::arr(VmArr::Cells(cells))
        }
    }
    let total: usize = dims.iter().product();
    if seg.len() != total {
        return Err(VmError(format!(
            "field `{}`: segment of {} elements does not match dims {dims:?}",
            field.name,
            seg.len()
        )));
    }
    if dims.is_empty() {
        return Err(VmError(format!("field `{}` has no dimensions", field.name)));
    }
    Ok(build(seg, dims, 0, field.elem))
}

#[cfg(test)]
mod tests {
    use super::*;

    fn field(name: &str, elem: ElemKind, ndims: usize) -> DataField {
        DataField {
            name: name.into(),
            elem,
            ndims,
        }
    }

    #[test]
    fn flatten_roundtrip_2d_real() {
        let rows = VmVal::arr(VmArr::Cells(vec![
            VmVal::arr(VmArr::R(vec![1.0, 2.0, 3.0])),
            VmVal::arr(VmArr::R(vec![4.0, 5.0, 6.0])),
        ]));
        let f = field("m", ElemKind::Real, 2);
        let flat = flatten_fields(std::slice::from_ref(&rows), std::slice::from_ref(&f)).unwrap();
        assert_eq!(flat.dims, vec![2, 3]);
        assert_eq!(
            flat.segs[0],
            FlatSeg::F32(vec![1.0, 2.0, 3.0, 4.0, 5.0, 6.0])
        );
        let back = unflatten_fields(&flat, std::slice::from_ref(&f)).unwrap();
        let VmVal::Arr(a) = &back[0] else { panic!() };
        let VmArr::Cells(cells) = &*a.lock() else {
            panic!()
        };
        let VmVal::Arr(row1) = &cells[1] else {
            panic!()
        };
        assert_eq!(*row1.lock(), VmArr::R(vec![4.0, 5.0, 6.0]));
    }

    #[test]
    fn ragged_arrays_are_rejected() {
        let rows = VmVal::arr(VmArr::Cells(vec![
            VmVal::arr(VmArr::R(vec![1.0, 2.0])),
            VmVal::arr(VmArr::R(vec![3.0])),
        ]));
        let f = field("m", ElemKind::Real, 2);
        assert!(flatten_fields(std::slice::from_ref(&rows), std::slice::from_ref(&f)).is_err());
    }

    #[test]
    fn deep_copy_isolates_arrays() {
        let original = VmVal::arr(VmArr::I(vec![1, 2, 3]));
        let copy = original.deep_copy(None).unwrap();
        if let (VmVal::Arr(a), VmVal::Arr(b)) = (&original, &copy) {
            *a.lock() = VmArr::I(vec![9]);
            assert_eq!(*b.lock(), VmArr::I(vec![1, 2, 3]));
        } else {
            panic!("expected arrays");
        }
    }

    #[test]
    fn deep_copy_shares_channels() {
        let (o, i) = ensemble_actors::buffered_channel::<VmVal>(1);
        let v = VmVal::ChanOut(o);
        let c = v.deep_copy(None).unwrap();
        let VmVal::ChanOut(o2) = c else { panic!() };
        o2.send_moved(VmVal::I(7)).unwrap();
        assert!(matches!(i.receive().unwrap(), VmVal::I(7)));
    }

    #[test]
    fn int_and_bool_arrays_flatten_to_i32() {
        let b = VmVal::arr(VmArr::B(vec![true, false, true]));
        let f = field("flags", ElemKind::Bool, 1);
        let flat = flatten_fields(std::slice::from_ref(&b), std::slice::from_ref(&f)).unwrap();
        assert_eq!(flat.segs[0], FlatSeg::I32(vec![1, 0, 1]));
        let back = unflatten_fields(&flat, std::slice::from_ref(&f)).unwrap();
        let VmVal::Arr(a) = &back[0] else { panic!() };
        assert_eq!(*a.lock(), VmArr::B(vec![true, false, true]));
    }
}
