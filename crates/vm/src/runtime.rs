//! The Ensemble VM runtime: thread-per-actor execution of compiled modules.
//!
//! Mirrors §5–6 of the paper: each actor gets an OS thread interpreting its
//! behaviour bytecode (communication-driven scheduling falls out of
//! blocking channel operations); `opencl` actors run a **native** host
//! protocol (Figure 2) — the `invokenative` path of the paper's VM —
//! building their kernel once at actor creation from the source string the
//! compiler stored, then receive-settings / receive-data / dispatch / send
//! until their channel closes.

use crate::interp::{run_chunk, Exit, RuntimeHooks};
use crate::value::{flatten_fields, unflatten_fields, MovState, VmError, VmVal};
use ensemble_actors::ChannelError;
use ensemble_lang::vmops::*;
use ensemble_ocl::recovery::with_retry;
use ensemble_ocl::{
    nd_from, DeviceSel, FlatData, FlatSeg, OpenClEnvironment, Profile, ProfileSink, RecoveryPolicy,
    ResidentBufs,
};
use oclsim::{DeviceType, Kernel, MemFlags, Program};
use parking_lot::Mutex;
use std::collections::HashMap;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Arc;
use std::thread::JoinHandle;
use trace::{SpanKind, TraceEvent};

/// Modeled interpreter cost per abstract VM op, in virtual nanoseconds.
///
/// The paper attributes Ensemble's overhead to "the unoptimised VM"
/// interpreting bytecode; this constant (an interpreted-dispatch cost of a
/// few tens of cycles) turns the retired-op count into the same virtual
/// time unit the OpenCL cost model uses, so the figures can stack them.
pub const VM_NS_PER_OP: f64 = 40.0;

/// Result of running a module to completion.
#[derive(Debug, Clone)]
pub struct VmReport {
    /// Total interpreted VM ops (all actors + boot).
    pub vm_ops: u64,
    /// Captured `print*` output, in emission order.
    pub output: Vec<String>,
    /// Accumulated OpenCL costs from kernel actors.
    pub profile: Profile,
}

impl VmReport {
    /// The modeled interpreter overhead in virtual nanoseconds.
    pub fn overhead_ns(&self) -> f64 {
        self.vm_ops as f64 * VM_NS_PER_OP
    }

    /// Total modeled application time: OpenCL work + VM overhead.
    pub fn total_ns(&self) -> f64 {
        self.profile.opencl_ns() + self.overhead_ns()
    }
}

/// One spawned actor: its name plus the join handle supervising its run.
type ActorHandle = (String, JoinHandle<Result<(), VmError>>);

struct Shared {
    module: CompiledModule,
    ops: Arc<AtomicU64>,
    profile: ProfileSink,
    output: Mutex<Vec<String>>,
    /// Actors created during boot; their threads start only after boot
    /// finishes wiring the topology (otherwise an eager sender could see a
    /// not-yet-connected channel).
    pending: Mutex<Vec<(CompiledActor, Vec<VmVal>)>>,
    handles: Mutex<Vec<ActorHandle>>,
}

impl RuntimeHooks for Arc<Shared> {
    fn spawn_actor(&self, idx: u16) -> Result<VmVal, VmError> {
        spawn(self, idx)
    }

    fn print(&self, text: String) {
        self.output.lock().push(text);
    }

    fn profile(&self) -> Option<&ProfileSink> {
        Some(&self.profile)
    }
}

/// The VM: owns a compiled module and runs it.
pub struct VmRuntime {
    shared: Arc<Shared>,
}

impl VmRuntime {
    /// Create a VM for `module`.
    pub fn new(module: CompiledModule) -> VmRuntime {
        VmRuntime::with_profile(module, ProfileSink::new())
    }

    /// Use an external profile sink (so benchmarks can share one).
    pub fn with_profile(module: CompiledModule, profile: ProfileSink) -> VmRuntime {
        VmRuntime {
            shared: Arc::new(Shared {
                module,
                ops: Arc::new(AtomicU64::new(0)),
                profile,
                output: Mutex::new(Vec::new()),
                pending: Mutex::new(Vec::new()),
                handles: Mutex::new(Vec::new()),
            }),
        }
    }

    /// Run boot, wait for every actor to stop, and report.
    pub fn run(&self) -> Result<VmReport, VmError> {
        let shared = Arc::clone(&self.shared);
        let boot = &shared.module.boot;
        let mut slots = vec![VmVal::Unit; boot.nslots as usize];
        let (_, boot_ops) = run_chunk(boot, &shared.module, &mut slots, &shared.ops, &shared)?;
        let mut boot_clock = 0.0;
        trace_chunk(
            &shared.profile,
            "vm/boot",
            "boot",
            &mut boot_clock,
            boot_ops,
        );
        // Drop the boot frame before starting the actors: the actor
        // handles it holds keep clones of the actors' out endpoints alive,
        // and receivers only observe closure once every clone is gone.
        drop(slots);
        // Start every actor now that the topology is wired.
        let pending: Vec<_> = std::mem::take(&mut *self.shared.pending.lock());
        for (actor, port_slots) in pending {
            let name = actor.name.clone();
            let shared2 = Arc::clone(&self.shared);
            let handle = std::thread::Builder::new()
                .name(format!("vm/{}", actor.name))
                .spawn(move || -> Result<(), VmError> {
                    let r = match &actor.code {
                        ActorCode::Host { .. } => host_actor(&shared2, &actor, port_slots),
                        ActorCode::Kernel(plan) => {
                            kernel_actor(&shared2, &actor.name, plan, port_slots)
                        }
                    };
                    if let Err(e) = &r {
                        // Surface failures immediately: a dead actor can
                        // leave peers blocked, so don't wait for join.
                        eprintln!("[vm] actor `{}` failed: {e}", actor.name);
                    }
                    r
                })
                .map_err(|e| VmError(format!("failed to spawn actor thread: {e}")))?;
            self.shared.handles.lock().push((name, handle));
        }
        // Join every actor (actors may only be spawned from boot).
        loop {
            let next = self.shared.handles.lock().pop();
            match next {
                Some((name, h)) => match h.join() {
                    Ok(Ok(())) => {}
                    Ok(Err(e)) => return Err(VmError(format!("actor `{name}`: {e}"))),
                    Err(_) => return Err(VmError(format!("actor `{name}` panicked"))),
                },
                None => break,
            }
        }
        Ok(VmReport {
            vm_ops: self.shared.ops.load(Ordering::Relaxed),
            output: self.shared.output.lock().clone(),
            profile: self.shared.profile.snapshot(),
        })
    }
}

fn spawn(shared: &Arc<Shared>, idx: u16) -> Result<VmVal, VmError> {
    let actor = shared
        .module
        .actors
        .get(idx as usize)
        .ok_or_else(|| VmError(format!("no actor #{idx}")))?
        .clone();
    let trace = shared.profile.trace();
    if trace.is_enabled() {
        trace.record(
            TraceEvent::instant(SpanKind::Spawn, &actor.name, "vm", trace.wall_ns())
                .with_arg("clock", "wall"),
        );
    }
    // Create the interface endpoints; the actor thread and the returned
    // handle share them.
    let mut port_map: HashMap<String, VmVal> = HashMap::new();
    let mut port_slots: Vec<VmVal> = Vec::with_capacity(actor.ports.len());
    for p in &actor.ports {
        let v = match p.dir {
            ensemble_lang::ast::Dir::In => {
                let mut input = ensemble_actors::In::with_buffer(p.capacity);
                if trace.is_enabled() {
                    input.set_trace(trace.clone(), format!("{}.{}", actor.name, p.name));
                }
                VmVal::ChanIn(Arc::new(input))
            }
            ensemble_lang::ast::Dir::Out => VmVal::ChanOut(ensemble_actors::Out::new()),
        };
        port_map.insert(p.name.clone(), v.clone());
        port_slots.push(v);
    }
    shared.pending.lock().push((actor, port_slots));
    Ok(VmVal::ActorRef(Arc::new(port_map)))
}

fn host_actor(
    shared: &Arc<Shared>,
    actor: &CompiledActor,
    port_slots: Vec<VmVal>,
) -> Result<(), VmError> {
    let ActorCode::Host {
        constructor,
        behaviour,
    } = &actor.code
    else {
        unreachable!("host_actor on kernel actor");
    };
    let nslots = actor
        .field_init
        .nslots
        .max(constructor.nslots)
        .max(behaviour.nslots) as usize;
    let mut slots = vec![VmVal::Unit; nslots.max(port_slots.len())];
    for (i, p) in port_slots.into_iter().enumerate() {
        slots[i] = p;
    }
    let module = &shared.module;
    // Per-actor virtual clock: each interpreted chunk advances it by
    // retired-ops × VM_NS_PER_OP, so the actor's timeline track shows
    // where its interpreter time went.
    let track = format!("vm/{}", actor.name);
    let mut clock = 0.0;
    let (_, n) = run_chunk(&actor.field_init, module, &mut slots, &shared.ops, shared)?;
    trace_chunk(&shared.profile, &track, "field_init", &mut clock, n);
    let (_, n) = run_chunk(constructor, module, &mut slots, &shared.ops, shared)?;
    trace_chunk(&shared.profile, &track, "constructor", &mut clock, n);
    loop {
        let (exit, n) = run_chunk(behaviour, module, &mut slots, &shared.ops, shared)?;
        trace_chunk(&shared.profile, &track, "behaviour", &mut clock, n);
        match exit {
            Exit::Done => continue,
            Exit::Stopped | Exit::ChannelClosed => return Ok(()),
        }
    }
}

/// Emit a `VmChunk` span for `ops` retired ops on `track`, advancing the
/// actor's virtual clock. Every `run_chunk` call site must route through
/// here: the trace's VM segment then sums to exactly
/// `VmReport::vm_ops × VM_NS_PER_OP`, the figures' overhead bar.
fn trace_chunk(profile: &ProfileSink, track: &str, name: &str, clock: &mut f64, ops: u64) {
    let dur = ops as f64 * VM_NS_PER_OP;
    let t = profile.trace();
    if ops > 0 && t.is_enabled() {
        t.record(
            TraceEvent::span(SpanKind::VmChunk, name, track, *clock, dur).with_arg("ops", ops),
        );
    }
    *clock += dur;
}

fn parse_device(plan: &KernelPlan) -> DeviceSel {
    let ty = plan.device_type.as_deref().map(|s| match s {
        "CPU" => DeviceType::Cpu,
        "ACCELERATOR" => DeviceType::Accelerator,
        _ => DeviceType::Gpu,
    });
    DeviceSel {
        device_type: ty,
        device_index: plan.device_index,
    }
}

fn upload(
    env: &OpenClEnvironment,
    policy: &RecoveryPolicy,
    flat: &FlatData,
    profile: &ProfileSink,
) -> Result<ResidentBufs, VmError> {
    let mut bufs = Vec::with_capacity(flat.segs.len());
    let mut held = 0usize;
    let filled = (|| {
        for seg in &flat.segs {
            let buf = env
                .context
                .create_buffer(MemFlags::ReadWrite, seg.byte_len())
                .map_err(|e| VmError(format!("buffer allocation failed: {e}")))?;
            let ev = with_retry(
                policy,
                &env.queue,
                env.device.name(),
                profile,
                "upload",
                || env.queue.enqueue_write_buffer(&buf, &seg.to_bytes()),
            )
            .map_err(|e| {
                env.context.release_bytes(seg.byte_len());
                VmError(format!("upload failed: {e}"))
            })?;
            profile.record_command(&ev, env.device.name());
            held += seg.byte_len();
            bufs.push((buf, seg.ty()));
        }
        Ok(())
    })();
    if let Err(e) = filled {
        // Give back the accounting for every buffer uploaded before the
        // failing one; the failed buffer released its own bytes above.
        env.context.release_bytes(held);
        return Err(e);
    }
    Ok(ResidentBufs {
        bufs,
        dims: flat.dims.clone(),
        context: env.context.clone(),
        queue: env.queue.clone(),
    })
}

#[allow(clippy::too_many_arguments)]
fn dispatch(
    env: &OpenClEnvironment,
    policy: &RecoveryPolicy,
    kernel: &Kernel,
    bufs: &ResidentBufs,
    ws: &[usize],
    gs: &[usize],
    scalars: &[VmVal],
    profile: &ProfileSink,
) -> Result<(), VmError> {
    let mut arg = 0usize;
    for (b, _) in &bufs.bufs {
        kernel
            .set_arg_buffer(arg, b)
            .map_err(|e| VmError(format!("set buffer arg: {e}")))?;
        arg += 1;
    }
    for d in &bufs.dims {
        kernel
            .set_arg_i32(arg, *d)
            .map_err(|e| VmError(format!("set dim arg: {e}")))?;
        arg += 1;
    }
    for s in scalars {
        kernel
            .set_arg_i32(arg, s.as_i()? as i32)
            .map_err(|e| VmError(format!("set scalar arg: {e}")))?;
        arg += 1;
    }
    let nd = nd_from(ws, gs).map_err(|e| VmError(format!("bad worksizes: {e}")))?;
    let ev = with_retry(
        policy,
        &env.queue,
        env.device.name(),
        profile,
        "dispatch",
        || env.queue.enqueue_nd_range(kernel, &nd),
    )
    .map_err(|e| VmError(format!("dispatch failed: {e}")))?;
    profile.record_command(&ev, env.device.name());
    Ok(())
}

fn usize_array(v: &VmVal) -> Result<Vec<usize>, VmError> {
    let VmVal::Arr(a) = v else {
        return Err(VmError("worksize is not an array".into()));
    };
    let guard = a.lock();
    match &*guard {
        crate::value::VmArr::I(vals) => Ok(vals.iter().map(|&x| x as usize).collect()),
        other => Err(VmError(format!(
            "worksize must be integer[], got {other:?}"
        ))),
    }
}

fn kernel_actor(
    shared: &Arc<Shared>,
    name: &str,
    plan: &KernelPlan,
    port_slots: Vec<VmVal>,
) -> Result<(), VmError> {
    let VmVal::ChanIn(requests) = &port_slots[plan.requests_port] else {
        return Err(VmError("kernel actor port is not an in channel".into()));
    };
    let env = OpenClEnvironment::resolve(parse_device(plan))
        .map_err(|e| VmError(format!("device selection failed: {e}")))?;
    let program = Program::build(&env.context, &plan.source)
        .map_err(|e| VmError(format!("kernel build failed: {e}\n{}", plan.source)))?;
    let kernel = program
        .create_kernel(&plan.kernel_name)
        .map_err(|e| VmError(format!("{e}")))?;
    let profile = shared.profile.clone();
    let policy = RecoveryPolicy::default();

    loop {
        // 1. receive the settings struct.
        let settings = match requests.receive() {
            Ok(v) => v,
            Err(ChannelError::Poisoned) => {
                return Err(VmError(format!(
                    "kernel actor `{name}`: requests channel poisoned by a failed peer"
                )))
            }
            Err(_) => return Ok(()),
        };
        let VmVal::Struct(_, sfields) = &settings else {
            return Err(VmError("settings must be an opencl struct value".into()));
        };
        let (ws, gs, input, output, scalars) = {
            let f = sfields.lock();
            let ws = usize_array(&f[0])?;
            let gs = usize_array(&f[1])?;
            let VmVal::ChanIn(input) = f[2].clone() else {
                return Err(VmError("settings input is not an in channel".into()));
            };
            let VmVal::ChanOut(output) = f[3].clone() else {
                return Err(VmError("settings output is not an out channel".into()));
            };
            (ws, gs, input, output, f[4..].to_vec())
        };

        // 2. receive the data. A poisoned input means the upstream stage
        // died mid-pipeline: propagate the poison downstream so the whole
        // pipeline tears down instead of deadlocking on a rendezvous.
        let data = match input.receive() {
            Ok(v) => v,
            Err(ChannelError::Poisoned) => {
                output.poison_receivers();
                return Err(VmError(format!(
                    "kernel actor `{name}`: input channel poisoned by a failed peer"
                )));
            }
            Err(_) => return Ok(()),
        };
        // The `invokenative` boundary: the actor leaves interpreted code
        // and enters the native OpenCL host protocol for this request.
        let trace = profile.trace();
        if trace.is_enabled() {
            trace.record(
                TraceEvent::instant(
                    SpanKind::InvokeNative,
                    &plan.kernel_name,
                    env.device.name(),
                    env.queue.now_ns(),
                )
                .with_arg("actor", name),
            );
        }

        // 3. prepare buffers (§6.2.3 residency rules), 4. dispatch. Any
        // device error that survives the retry layer poisons the output
        // channel before this actor exits, so downstream receivers observe
        // a typed failure instead of blocking forever.
        let attempt: Result<VmVal, VmError> = (|| {
            if plan.mov {
                let VmVal::MovStruct(type_id, state) = &data else {
                    return Err(VmError(
                        "kernel data of a mov type must be a mov struct value".into(),
                    ));
                };
                {
                    let mut guard = state.lock();
                    // Cross-context residency: read back first (the paper's
                    // "different context" rule).
                    let cross = matches!(&*guard, MovState::Device { bufs, .. }
                    if bufs.context.id() != env.context.id());
                    if cross {
                        drop(guard);
                        crate::value::force_host(state, Some(&profile))?;
                        guard = state.lock();
                    }
                    if let MovState::Host(fields) = &*guard {
                        let flat = flatten_fields(fields, &plan.data_fields)?;
                        let bufs = upload(&env, &policy, &flat, &profile)?;
                        *guard = MovState::Device {
                            bufs,
                            fields: plan.data_fields.clone(),
                        };
                    }
                    let MovState::Device { bufs, .. } = &*guard else {
                        unreachable!("uploaded above");
                    };
                    dispatch(&env, &policy, &kernel, bufs, &ws, &gs, &scalars, &profile)?;
                }
                Ok(VmVal::MovStruct(*type_id, Arc::clone(state)))
            } else {
                // Plain channels: copy up, dispatch, copy the output back.
                let field_vals: Vec<VmVal> = match (&plan.data_shape, &data) {
                    (DataShape::Struct { .. }, VmVal::Struct(_, fields)) => fields.lock().clone(),
                    (DataShape::Array { .. }, v @ VmVal::Arr(_)) => vec![v.clone()],
                    (shape, got) => {
                        return Err(VmError(format!(
                            "kernel data mismatch: expected {shape:?}, got {got:?}"
                        )))
                    }
                };
                let flat = flatten_fields(&field_vals, &plan.data_fields)?;
                let bufs = upload(&env, &policy, &flat, &profile)?;
                // The buffer accounting is released whether or not the dispatch
                // and readbacks succeed; on error the buffers are abandoned.
                let read = (|| {
                    dispatch(&env, &policy, &kernel, &bufs, &ws, &gs, &scalars, &profile)?;
                    let result = match plan.out {
                        KernelOut::Whole => {
                            let mut segs = Vec::new();
                            for (b, ty) in &bufs.bufs {
                                let mut bytes = vec![0u8; b.len()];
                                let ev = with_retry(
                                    &policy,
                                    &env.queue,
                                    env.device.name(),
                                    &profile,
                                    "readback",
                                    || env.queue.enqueue_read_buffer(b, &mut bytes),
                                )
                                .map_err(|e| VmError(format!("read failed: {e}")))?;
                                profile.record_command(&ev, env.device.name());
                                segs.push(FlatSeg::from_bytes(*ty, &bytes));
                            }
                            let flat = FlatData {
                                segs,
                                dims: bufs.dims.clone(),
                            };
                            let vals = unflatten_fields(&flat, &plan.data_fields)?;
                            match (&plan.data_shape, &data) {
                                (DataShape::Struct { type_id }, _) => {
                                    VmVal::Struct(*type_id, Arc::new(Mutex::new(vals)))
                                }
                                (DataShape::Array { .. }, _) => vals.into_iter().next().unwrap(),
                            }
                        }
                        KernelOut::Field(fidx) => {
                            let (b, ty) = &bufs.bufs[fidx];
                            let mut bytes = vec![0u8; b.len()];
                            let ev = with_retry(
                                &policy,
                                &env.queue,
                                env.device.name(),
                                &profile,
                                "readback",
                                || env.queue.enqueue_read_buffer(b, &mut bytes),
                            )
                            .map_err(|e| VmError(format!("read failed: {e}")))?;
                            profile.record_command(&ev, env.device.name());
                            let seg = FlatSeg::from_bytes(*ty, &bytes);
                            // The field's dims within the overall dims vector.
                            let offset: usize =
                                plan.data_fields[..fidx].iter().map(|f| f.ndims).sum();
                            let field = &plan.data_fields[fidx];
                            let dims: Vec<usize> = bufs.dims[offset..offset + field.ndims]
                                .iter()
                                .map(|&d| d as usize)
                                .collect();
                            crate::value::build_array(&seg, &dims, field)?
                        }
                    };
                    Ok(result)
                })();
                let released: usize = bufs.bufs.iter().map(|(b, _)| b.len()).sum();
                env.context.release_bytes(released);
                read
            }
        })();
        let result = match attempt {
            Ok(v) => v,
            Err(e) => {
                eprintln!("[vm/{name}] unrecoverable error: {e}; tearing down pipeline");
                output.poison_receivers();
                return Err(e);
            }
        };

        // 5. send onward.
        if output.send_moved(result).is_err() {
            return Ok(());
        }
    }
}
