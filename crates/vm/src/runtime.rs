//! The Ensemble VM runtime: thread-per-actor execution of compiled modules.
//!
//! Mirrors §5–6 of the paper: each actor gets an OS thread interpreting its
//! behaviour bytecode (communication-driven scheduling falls out of
//! blocking channel operations); `opencl` actors run a **native** host
//! protocol (Figure 2) — the `invokenative` path of the paper's VM —
//! building their kernel once at actor creation from the source string the
//! compiler stored, then receive-settings / receive-data / dispatch / send
//! until their channel closes.
//!
//! ## Supervision
//!
//! The VM runs its actors under an [`ensemble_actors::Supervisor`]
//! (one-for-one): an actor killed by the fault-injection layer
//! ([`oclsim::fault::InjectedFault::Kill`]) exits abruptly and is
//! restarted within a [`RestartBudget`]. Kernel actors park each accepted
//! request (settings + data values) in a per-actor checkpoint slot until
//! its result has been sent, so a restarted incarnation *redelivers* the
//! in-flight request: because fault checks fire before any device
//! mutation, re-running the native protocol from the parked values
//! reproduces the fault-free result exactly, and end-to-end output stays
//! byte-identical to an unkilled run. Genuine errors (not kills) retire
//! the actor and fail the run as before; budget exhaustion escalates,
//! tearing every actor down via channel poisoning.

use crate::interp::{run_chunk, Exit, RuntimeHooks};
use crate::value::{flatten_fields, unflatten_fields, EvictableMov, MovState, VmError, VmVal};
use ensemble_actors::supervisor::panic_message;
use ensemble_actors::{
    ActorCtx, ChannelError, ChildSpec, Control, FnActor, RestartBudget, Strategy, Supervisor,
};
use ensemble_lang::vmops::*;
use ensemble_ocl::recovery::with_retry;
use ensemble_ocl::{
    nd_from, DeviceSel, FlatData, FlatSeg, MatrixResolver, MemGuard, OpenClEnvironment, Profile,
    ProfileSink, RecoveryPolicy, ResidentBufs, ResolveEnv,
};
use oclsim::{
    co_enqueue, CoexecConfig, DeviceType, DispatchBatch, Kernel, KillPanic, MemFlags, PolicyKind,
    Program,
};
use parking_lot::Mutex;
use std::collections::HashMap;
use std::panic::AssertUnwindSafe;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Arc;
use std::time::Instant;
use trace::{SpanKind, TraceEvent};

/// Callback the serving layer registers to learn about every `mov` value
/// that becomes device-resident, so its memory accountant can evict idle
/// buffers under pool pressure (see [`EvictableMov`]).
pub type ResidentHook = Arc<dyn Fn(EvictableMov) + Send + Sync>;

/// Modeled interpreter cost per abstract VM op, in virtual nanoseconds.
///
/// The paper attributes Ensemble's overhead to "the unoptimised VM"
/// interpreting bytecode; this constant (an interpreted-dispatch cost of a
/// few tens of cycles) turns the retired-op count into the same virtual
/// time unit the OpenCL cost model uses, so the figures can stack them.
pub const VM_NS_PER_OP: f64 = 40.0;

/// Result of running a module to completion.
#[derive(Debug, Clone)]
pub struct VmReport {
    /// Total interpreted VM ops (all actors + boot).
    pub vm_ops: u64,
    /// Captured `print*` output, in emission order.
    pub output: Vec<String>,
    /// Accumulated OpenCL costs from kernel actors.
    pub profile: Profile,
}

impl VmReport {
    /// The modeled interpreter overhead in virtual nanoseconds.
    pub fn overhead_ns(&self) -> f64 {
        self.vm_ops as f64 * VM_NS_PER_OP
    }

    /// Total modeled application time: OpenCL work + VM overhead.
    pub fn total_ns(&self) -> f64 {
        self.profile.opencl_ns() + self.overhead_ns()
    }
}

/// Marker prefix carried by a [`VmError`] produced from an injected kill
/// ([`oclsim::ClError::ActorKilled`]). The kernel-actor protocol maps
/// every simulator error into a stringly `VmError`, so the kill class —
/// which the supervisor must treat differently from a genuine failure —
/// travels as a recognisable prefix.
const KILL_MARK: &str = "[killed] ";

/// Wrap a simulator error as a `VmError`, preserving the kill class via
/// the [`KILL_MARK`] prefix.
fn vm_cl_err(what: &str, e: oclsim::ClError) -> VmError {
    if matches!(e, oclsim::ClError::ActorKilled { .. }) {
        VmError(format!("{KILL_MARK}{what}: {e}"))
    } else {
        VmError(format!("{what}: {e}"))
    }
}

/// Whether `e` records an injected kill (see [`KILL_MARK`]).
fn is_kill_err(e: &VmError) -> bool {
    e.0.contains(KILL_MARK)
}

/// Build the deadline-miss error for operation `what` in actor `name`,
/// recording a `DeadlineExceeded` trace instant (wall clock) when tracing
/// is enabled.
fn deadline_exceeded(profile: &ProfileSink, name: &str, what: &str) -> VmError {
    let t = profile.trace();
    if t.is_enabled() {
        t.record(
            TraceEvent::instant(SpanKind::DeadlineExceeded, what, "vm", t.wall_ns())
                .with_arg("actor", name)
                .with_arg("clock", "wall"),
        );
    }
    VmError::deadline(&format!(
        "kernel actor `{name}`: {what} passed the run deadline"
    ))
}

/// Per-kernel-actor checkpoint: the accepted-but-unacknowledged request.
///
/// The slot outlives any single incarnation (it is shared with the
/// supervisor's child factory); the item stays parked while it is
/// processed, so a kill — error or panic — mid-processing leaves it
/// intact for the restarted incarnation to redeliver. `VmVal`s are
/// `Arc`-backed, making the parked copies cheap.
#[derive(Default)]
struct VmCheckpoint {
    next_seq: u64,
    in_flight: Option<VmInFlight>,
}

struct VmInFlight {
    seq: u64,
    settings: VmVal,
    data: VmVal,
    /// Whether any incarnation already started processing this item — a
    /// redelivery is `attempted == true`.
    attempted: bool,
}

struct Shared {
    module: CompiledModule,
    ops: Arc<AtomicU64>,
    profile: ProfileSink,
    output: Mutex<Vec<String>>,
    /// Actors created during boot; their threads start only after boot
    /// finishes wiring the topology (otherwise an eager sender could see a
    /// not-yet-connected channel).
    pending: Mutex<Vec<(CompiledActor, Vec<VmVal>)>>,
    /// How kernel actors resolve device selections to environments. The
    /// default ([`MatrixResolver`]) is the process-wide device matrix; a
    /// serving layer substitutes per-tenant private contexts/queues.
    env: Mutex<Arc<dyn ResolveEnv>>,
    /// Absolute wall-clock deadline for the whole run: every blocking
    /// receive on the serving path gives up with a [`DEADLINE_MARK`]ed
    /// error once it passes. `None` (default) blocks indefinitely.
    ///
    /// [`DEADLINE_MARK`]: crate::value::DEADLINE_MARK
    deadline: Mutex<Option<Instant>>,
    /// Registered by the serving layer's memory accountant; called for
    /// every `mov` value the moment it becomes device-resident.
    resident_hook: Mutex<Option<ResidentHook>>,
    /// Co-execution / dispatch-batching configuration. The ambient
    /// default comes from `OCLSIM_COEXEC` at VM construction;
    /// [`VmRuntime::set_coexec`] overrides it per VM.
    coexec: Mutex<CoexecConfig>,
    /// Open batched-dispatch sessions, keyed by `chain-host@device-id`
    /// so every kernel actor of one proven chain appends to the same
    /// batch. Drained — closing each session and recording its
    /// `BatchFused` instant — before the run's profile snapshot.
    batches: Mutex<HashMap<String, DispatchBatch>>,
}

impl RuntimeHooks for Arc<Shared> {
    fn spawn_actor(&self, idx: u16) -> Result<VmVal, VmError> {
        spawn(self, idx)
    }

    fn print(&self, text: String) {
        self.output.lock().push(text);
    }

    fn profile(&self) -> Option<&ProfileSink> {
        Some(&self.profile)
    }

    fn deadline(&self) -> Option<Instant> {
        *self.deadline.lock()
    }
}

/// The VM: owns a compiled module and runs it.
pub struct VmRuntime {
    shared: Arc<Shared>,
    budget: RestartBudget,
}

impl VmRuntime {
    /// Create a VM for `module`.
    pub fn new(module: CompiledModule) -> VmRuntime {
        VmRuntime::with_profile(module, ProfileSink::new())
    }

    /// Use an external profile sink (so benchmarks can share one).
    pub fn with_profile(module: CompiledModule, profile: ProfileSink) -> VmRuntime {
        VmRuntime {
            shared: Arc::new(Shared {
                module,
                ops: Arc::new(AtomicU64::new(0)),
                profile,
                output: Mutex::new(Vec::new()),
                pending: Mutex::new(Vec::new()),
                env: Mutex::new(Arc::new(MatrixResolver)),
                deadline: Mutex::new(None),
                resident_hook: Mutex::new(None),
                coexec: Mutex::new(CoexecConfig::from_env()),
                batches: Mutex::new(HashMap::new()),
            }),
            budget: RestartBudget::default(),
        }
    }

    /// Substitute the environment resolver kernel actors use (default:
    /// the process-wide device matrix). A multi-tenant serving layer
    /// installs a per-session resolver here so every kernel actor of this
    /// VM dispatches through that tenant's private contexts and queues.
    pub fn set_env_resolver(&self, resolver: Arc<dyn ResolveEnv>) {
        *self.shared.env.lock() = resolver;
    }

    /// Set (or clear) the absolute deadline for the next [`VmRuntime::run`]:
    /// once it passes, every blocking receive inside the VM — interpreted
    /// `receive` expressions and the kernel actors' native protocol alike —
    /// gives up with an error marked [`crate::value::DEADLINE_MARK`], and
    /// the run fails with that error instead of blocking forever.
    pub fn set_deadline(&self, deadline: Option<Instant>) {
        *self.shared.deadline.lock() = deadline;
    }

    /// Register a callback observing every `mov` value that becomes
    /// device-resident (`None` clears it). The serving layer's memory
    /// accountant uses this to build its eviction registry.
    pub fn set_resident_hook(&self, hook: Option<ResidentHook>) {
        *self.shared.resident_hook.lock() = hook;
    }

    /// Override the restart-intensity budget the VM's supervisor enforces
    /// (the default allows 8 restarts per 1 ms virtual window).
    pub fn set_restart_budget(&mut self, budget: RestartBudget) {
        self.budget = budget;
    }

    /// Set the co-execution / dispatch-batching configuration for this
    /// VM's kernel actors (see [`oclsim::CoexecConfig`]). The default is
    /// parsed from `OCLSIM_COEXEC` when the VM is constructed; setting a
    /// config explicitly makes runs independent of ambient environment
    /// state, which is what the benches and tests do.
    pub fn set_coexec(&self, cfg: CoexecConfig) {
        *self.shared.coexec.lock() = cfg;
    }

    /// Run boot, supervise every actor until it stops, and report.
    ///
    /// Actors killed by injected faults are restarted (one-for-one) within
    /// the restart budget, resuming from their checkpoint; genuine
    /// failures retire the actor and fail the run; budget exhaustion
    /// escalates, tearing down the remaining actors before returning the
    /// error.
    pub fn run(&self) -> Result<VmReport, VmError> {
        // Injected kill-panics are supervised control flow here — keep
        // them off stderr (genuine panics still print).
        oclsim::silence_kill_panics();
        let shared = Arc::clone(&self.shared);
        let boot = &shared.module.boot;
        let mut slots = vec![VmVal::Unit; boot.nslots as usize];
        let (_, boot_ops) = run_chunk(boot, &shared.module, &mut slots, &shared.ops, &shared)?;
        let mut boot_clock = 0.0;
        trace_chunk(
            &shared.profile,
            "vm/boot",
            "boot",
            &mut boot_clock,
            boot_ops,
        );
        // Drop the boot frame before starting the actors: the actor
        // handles it holds keep clones of the actors' out endpoints alive,
        // and receivers only observe closure once every clone is gone.
        drop(slots);
        // Start every actor under a one-for-one supervisor now that the
        // topology is wired. Each child's factory retains a clone of the
        // actor's port endpoints, keeping its channels open across a
        // restart gap; the supervisor drops the factory when the child
        // retires, so closure still propagates on orderly completion.
        let pending: Vec<_> = std::mem::take(&mut *self.shared.pending.lock());
        let first_error: Arc<Mutex<Option<VmError>>> = Arc::new(Mutex::new(None));
        let mut sup = Supervisor::new("vm", Strategy::OneForOne, self.budget);
        let trace = self.shared.profile.trace();
        if trace.is_enabled() {
            sup.set_trace(trace.clone());
        }
        for (actor, port_slots) in pending {
            let name = actor.name.clone();
            let shared2 = Arc::clone(&self.shared);
            let err_slot = Arc::clone(&first_error);
            let ckpt: Arc<Mutex<VmCheckpoint>> = Arc::new(Mutex::new(VmCheckpoint::default()));
            // The actor's own In endpoints: poisoned by the supervisor's
            // escalation teardown so a blocked receive wakes, un-poisoned
            // if the child is ever revived.
            let ins: Vec<Arc<ensemble_actors::In<VmVal>>> = port_slots
                .iter()
                .filter_map(|v| match v {
                    VmVal::ChanIn(i) => Some(Arc::clone(i)),
                    _ => None,
                })
                .collect();
            let ins_revive = ins.clone();
            sup.supervise(
                ChildSpec::new(&name, move || {
                    let shared2 = Arc::clone(&shared2);
                    let actor = actor.clone();
                    let port_slots = port_slots.clone();
                    let ckpt = Arc::clone(&ckpt);
                    let err_slot = Arc::clone(&err_slot);
                    FnActor(move |_ctx: &mut ActorCtx| {
                        let r = std::panic::catch_unwind(AssertUnwindSafe(|| match &actor.code {
                            ActorCode::Host { .. } => {
                                host_actor(&shared2, &actor, port_slots.clone())
                            }
                            ActorCode::Kernel(plan) => {
                                kernel_actor(&shared2, &actor.name, plan, port_slots.clone(), &ckpt)
                            }
                        }));
                        match r {
                            Ok(Ok(())) => Control::Stop,
                            // Injected kill (error form): abrupt exit, the
                            // supervisor restarts from the checkpoint.
                            Ok(Err(e)) if is_kill_err(&e) => Control::Fail,
                            Ok(Err(e)) => {
                                eprintln!("[vm] actor `{}` failed: {e}", actor.name);
                                record_first(
                                    &err_slot,
                                    VmError(format!("actor `{}`: {e}", actor.name)),
                                );
                                Control::Stop
                            }
                            // Injected kill (panic form).
                            Err(p) if p.downcast_ref::<KillPanic>().is_some() => Control::Fail,
                            Err(p) => {
                                record_first(
                                    &err_slot,
                                    VmError(format!(
                                        "actor `{}` panicked: {}",
                                        actor.name,
                                        panic_message(p.as_ref())
                                    )),
                                );
                                Control::Stop
                            }
                        }
                    })
                })
                .on_stop(move || {
                    for i in &ins {
                        i.poison();
                    }
                })
                .on_restart(move || {
                    for i in &ins_revive {
                        i.clear_poison();
                    }
                }),
            );
        }
        if let Err(e) = sup.run() {
            record_first(
                &first_error,
                VmError(format!(
                    "restart budget exhausted: child `{}`: {}",
                    e.child, e.reason
                )),
            );
        }
        // Close any batched-dispatch sessions left open by the chain's
        // kernel actors: each drop records its `BatchFused` instant and
        // releases the held arbiter slot, so the snapshot below carries
        // the full batching story.
        self.shared.batches.lock().clear();
        if let Some(e) = first_error.lock().take() {
            return Err(e);
        }
        Ok(VmReport {
            vm_ops: self.shared.ops.load(Ordering::Relaxed),
            output: self.shared.output.lock().clone(),
            profile: self.shared.profile.snapshot(),
        })
    }
}

/// Record `e` into the run's first-error slot unless one is already there
/// (the first failure is the one reported; later ones are cascade).
fn record_first(slot: &Arc<Mutex<Option<VmError>>>, e: VmError) {
    let mut guard = slot.lock();
    if guard.is_none() {
        *guard = Some(e);
    }
}

fn spawn(shared: &Arc<Shared>, idx: u16) -> Result<VmVal, VmError> {
    let actor = shared
        .module
        .actors
        .get(idx as usize)
        .ok_or_else(|| VmError(format!("no actor #{idx}")))?
        .clone();
    let trace = shared.profile.trace();
    if trace.is_enabled() {
        trace.record(
            TraceEvent::instant(SpanKind::Spawn, &actor.name, "vm", trace.wall_ns())
                .with_arg("clock", "wall"),
        );
    }
    // Create the interface endpoints; the actor thread and the returned
    // handle share them.
    let mut port_map: HashMap<String, VmVal> = HashMap::new();
    let mut port_slots: Vec<VmVal> = Vec::with_capacity(actor.ports.len());
    for p in &actor.ports {
        let v = match p.dir {
            ensemble_lang::ast::Dir::In => {
                let mut input = ensemble_actors::In::with_buffer(p.capacity);
                if trace.is_enabled() {
                    input.set_trace(trace.clone(), format!("{}.{}", actor.name, p.name));
                }
                VmVal::ChanIn(Arc::new(input))
            }
            ensemble_lang::ast::Dir::Out => VmVal::ChanOut(ensemble_actors::Out::new()),
        };
        port_map.insert(p.name.clone(), v.clone());
        port_slots.push(v);
    }
    shared.pending.lock().push((actor, port_slots));
    Ok(VmVal::ActorRef(Arc::new(port_map)))
}

fn host_actor(
    shared: &Arc<Shared>,
    actor: &CompiledActor,
    port_slots: Vec<VmVal>,
) -> Result<(), VmError> {
    let ActorCode::Host {
        constructor,
        behaviour,
    } = &actor.code
    else {
        unreachable!("host_actor on kernel actor");
    };
    let nslots = actor
        .field_init
        .nslots
        .max(constructor.nslots)
        .max(behaviour.nslots) as usize;
    let mut slots = vec![VmVal::Unit; nslots.max(port_slots.len())];
    for (i, p) in port_slots.into_iter().enumerate() {
        slots[i] = p;
    }
    let module = &shared.module;
    // Per-actor virtual clock: each interpreted chunk advances it by
    // retired-ops × VM_NS_PER_OP, so the actor's timeline track shows
    // where its interpreter time went.
    let track = format!("vm/{}", actor.name);
    let mut clock = 0.0;
    let (_, n) = run_chunk(&actor.field_init, module, &mut slots, &shared.ops, shared)?;
    trace_chunk(&shared.profile, &track, "field_init", &mut clock, n);
    let (_, n) = run_chunk(constructor, module, &mut slots, &shared.ops, shared)?;
    trace_chunk(&shared.profile, &track, "constructor", &mut clock, n);
    loop {
        let (exit, n) = run_chunk(behaviour, module, &mut slots, &shared.ops, shared)?;
        trace_chunk(&shared.profile, &track, "behaviour", &mut clock, n);
        match exit {
            Exit::Done => continue,
            Exit::Stopped | Exit::ChannelClosed => return Ok(()),
        }
    }
}

/// Emit a `VmChunk` span for `ops` retired ops on `track`, advancing the
/// actor's virtual clock. Every `run_chunk` call site must route through
/// here: the trace's VM segment then sums to exactly
/// `VmReport::vm_ops × VM_NS_PER_OP`, the figures' overhead bar.
fn trace_chunk(profile: &ProfileSink, track: &str, name: &str, clock: &mut f64, ops: u64) {
    let dur = ops as f64 * VM_NS_PER_OP;
    let t = profile.trace();
    if ops > 0 && t.is_enabled() {
        t.record(
            TraceEvent::span(SpanKind::VmChunk, name, track, *clock, dur).with_arg("ops", ops),
        );
    }
    *clock += dur;
}

fn parse_device(plan: &KernelPlan) -> DeviceSel {
    let ty = plan.device_type.as_deref().map(|s| match s {
        "CPU" => DeviceType::Cpu,
        "ACCELERATOR" => DeviceType::Accelerator,
        _ => DeviceType::Gpu,
    });
    DeviceSel {
        device_type: ty,
        device_index: plan.device_index,
    }
}

fn upload(
    env: &OpenClEnvironment,
    policy: &RecoveryPolicy,
    flat: &FlatData,
    profile: &ProfileSink,
) -> Result<ResidentBufs, VmError> {
    let mut bufs = Vec::with_capacity(flat.segs.len());
    // The guard gives every charged byte back if any step fails — or if a
    // kill-panic unwinds out of the write below. On success, ownership of
    // the accounting passes to the returned `ResidentBufs`.
    let mut guard = MemGuard::new(env.context.clone());
    for seg in &flat.segs {
        let buf = env
            .context
            .create_buffer(MemFlags::ReadWrite, seg.byte_len())
            .map_err(|e| vm_cl_err("buffer allocation failed", e))?;
        guard.add(buf.len());
        let ev = with_retry(
            policy,
            &env.queue,
            env.device.name(),
            profile,
            "upload",
            || env.queue.enqueue_write_buffer(&buf, &seg.to_bytes()),
        )
        .map_err(|e| vm_cl_err("upload failed", e))?;
        profile.record_command(&ev, env.device.name());
        bufs.push((buf, seg.ty()));
    }
    guard.disarm();
    Ok(ResidentBufs {
        bufs,
        dims: flat.dims.clone(),
        context: env.context.clone(),
        queue: env.queue.clone(),
    })
}

/// How a kernel actor's dispatch reaches the device, decided per request
/// from the kernel's compile-time proofs and the VM's [`CoexecConfig`].
enum DispatchMode<'a> {
    /// Plain single-device enqueue (no proof, no policy, or too small).
    Single,
    /// Proof-gated co-execution: split the NDRange along `dim` (proven
    /// `Splittable`) across this queue and a secondary device lane.
    Coexec {
        secondary: &'a OpenClEnvironment,
        dim: usize,
        kind: PolicyKind,
        cfg: &'a CoexecConfig,
    },
    /// Append to an open batched-dispatch session of the kernel's proven
    /// fusion chain (launch overhead charged once per batch).
    Batched(&'a mut DispatchBatch),
}

#[allow(clippy::too_many_arguments)]
fn dispatch(
    env: &OpenClEnvironment,
    policy: &RecoveryPolicy,
    kernel: &Kernel,
    bufs: &ResidentBufs,
    ws: &[usize],
    gs: &[usize],
    scalars: &[VmVal],
    profile: &ProfileSink,
    mode: DispatchMode<'_>,
) -> Result<(), VmError> {
    let mut arg = 0usize;
    for (b, _) in &bufs.bufs {
        kernel
            .set_arg_buffer(arg, b)
            .map_err(|e| VmError(format!("set buffer arg: {e}")))?;
        arg += 1;
    }
    for d in &bufs.dims {
        kernel
            .set_arg_i32(arg, *d)
            .map_err(|e| VmError(format!("set dim arg: {e}")))?;
        arg += 1;
    }
    for s in scalars {
        kernel
            .set_arg_i32(arg, s.as_i()? as i32)
            .map_err(|e| VmError(format!("set scalar arg: {e}")))?;
        arg += 1;
    }
    let nd = nd_from(ws, gs).map_err(|e| VmError(format!("bad worksizes: {e}")))?;
    let name = env.device.name();
    let ev = match mode {
        DispatchMode::Single => with_retry(policy, &env.queue, name, profile, "dispatch", || {
            env.queue.enqueue_nd_range(kernel, &nd)
        }),
        DispatchMode::Coexec {
            secondary,
            dim,
            kind,
            cfg,
        } => {
            let items: usize = ws.iter().product();
            let groups = nd.global[dim] / nd.local[dim].max(1);
            if items < cfg.min_items || groups < 2 {
                // Under the minimum the secondary's transfer latency
                // dominates any split: stay on one device.
                with_retry(policy, &env.queue, name, profile, "dispatch", || {
                    env.queue.enqueue_nd_range(kernel, &nd)
                })
            } else {
                with_retry(policy, &env.queue, name, profile, "dispatch", || {
                    // A fresh policy per attempt: retries must not see a
                    // half-consumed chunk schedule.
                    let mut p = kind.make(cfg);
                    co_enqueue(&env.queue, &secondary.queue, kernel, &nd, dim, p.as_mut())
                })
            }
        }
        DispatchMode::Batched(batch) => {
            with_retry(policy, &env.queue, name, profile, "dispatch", || {
                batch.enqueue_nd_range(kernel, &nd)
            })
        }
    }
    .map_err(|e| vm_cl_err("dispatch failed", e))?;
    profile.record_command(&ev, env.device.name());
    Ok(())
}

fn usize_array(v: &VmVal) -> Result<Vec<usize>, VmError> {
    let VmVal::Arr(a) = v else {
        return Err(VmError("worksize is not an array".into()));
    };
    let guard = a.lock();
    match &*guard {
        crate::value::VmArr::I(vals) => Ok(vals.iter().map(|&x| x as usize).collect()),
        other => Err(VmError(format!(
            "worksize must be integer[], got {other:?}"
        ))),
    }
}

fn kernel_actor(
    shared: &Arc<Shared>,
    name: &str,
    plan: &KernelPlan,
    port_slots: Vec<VmVal>,
    ckpt: &Arc<Mutex<VmCheckpoint>>,
) -> Result<(), VmError> {
    let VmVal::ChanIn(requests) = &port_slots[plan.requests_port] else {
        return Err(VmError("kernel actor port is not an in channel".into()));
    };
    // Rebuilt per incarnation: the program/kernel hold no request state,
    // so a restarted actor re-deriving them is free of the kill's effects.
    let resolver = Arc::clone(&*shared.env.lock());
    let env = resolver
        .resolve(parse_device(plan))
        .map_err(|e| VmError(format!("device selection failed: {e}")))?;
    let program = Program::build(&env.context, &plan.source)
        .map_err(|e| VmError(format!("kernel build failed: {e}\n{}", plan.source)))?;
    let kernel = program
        .create_kernel(&plan.kernel_name)
        .map_err(|e| VmError(format!("{e}")))?;
    let profile = shared.profile.clone();
    let policy = RecoveryPolicy::default();
    // Mirror the queue's instant markers (co-execution splits, fused
    // batches, integrity checks) into this run's trace. Only instants:
    // the profile layer already records the command spans, so mirroring
    // the full queue trace would double-count every segment.
    if profile.trace().is_enabled() {
        env.queue.attach_instants(profile.trace().clone());
    }

    // The scheduler seam: decide once per incarnation how this actor's
    // dispatches reach the device. Co-execution needs a policy, a
    // dimension the split proof classifies `Splittable`, the copy path
    // (`mov` chains keep data resident and batch instead), and a second
    // device of the opposite type that actually resolves — anything
    // missing falls back to plain single-device dispatch.
    let coexec_cfg = shared.coexec.lock().clone();
    let split_dim = if coexec_cfg.policy.is_some() && !plan.mov {
        plan.proofs
            .as_ref()
            .and_then(|p| p.split.splittable_dims().into_iter().next())
    } else {
        None
    };
    let secondary = split_dim
        .and_then(|_| {
            let other = match env.device.device_type() {
                DeviceType::Gpu => DeviceType::Cpu,
                _ => DeviceType::Gpu,
            };
            resolver.resolve(DeviceSel::new(other, 0)).ok()
        })
        .filter(|s| s.device.id() != env.device.id());
    // Dispatch batching rides on the fusion proof: membership in a
    // proven chain means no host-side barrier separates this dispatch
    // from its neighbours, so consecutive launches may coalesce into one
    // submission (in-order execution preserves the chain's RAW hazards —
    // only the per-launch overhead is amortised).
    let chain_key = if coexec_cfg.batch {
        plan.proofs
            .as_ref()
            .and_then(|p| p.chain.as_ref())
            .map(|c| (format!("{}@{}", c.host, env.device.id()), c.clone()))
    } else {
        None
    };

    loop {
        // Redelivery-first: an item parked in the checkpoint means a
        // previous incarnation was killed before acknowledging it —
        // process it again instead of receiving (the channels already
        // delivered it once and will not again).
        let parked = {
            let mut c = ckpt.lock();
            c.in_flight.as_mut().map(|item| {
                let redelivered = item.attempted;
                item.attempted = true;
                (item.seq, item.settings.clone(), item.data.clone(), redelivered)
            })
        };
        let (seq, settings, parked_data, redelivered) = match parked {
            Some((seq, s, d, r)) => (seq, s, Some(d), r),
            None => {
                // 1. receive the settings struct (bounded by the run's
                // deadline, if one is set — the serving path must never
                // block indefinitely). Copy the deadline out first: the
                // lock must not be held across the blocking receive (the
                // interpreter reads it on every `RecvOp`).
                let deadline = *shared.deadline.lock();
                let settings = match requests.recv_deadline(deadline) {
                    Ok(v) => v,
                    Err(ChannelError::Poisoned) => {
                        return Err(VmError(format!(
                            "kernel actor `{name}`: requests channel poisoned by a failed peer"
                        )))
                    }
                    Err(ChannelError::TimedOut) => {
                        return Err(deadline_exceeded(&profile, name, "settings receive"))
                    }
                    Err(_) => return Ok(()),
                };
                (0, settings, None, false)
            }
        };
        let VmVal::Struct(_, sfields) = &settings else {
            return Err(VmError("settings must be an opencl struct value".into()));
        };
        let (ws, gs, input, output, scalars) = {
            let f = sfields.lock();
            let ws = usize_array(&f[0])?;
            let gs = usize_array(&f[1])?;
            let VmVal::ChanIn(input) = f[2].clone() else {
                return Err(VmError("settings input is not an in channel".into()));
            };
            let VmVal::ChanOut(output) = f[3].clone() else {
                return Err(VmError("settings output is not an out channel".into()));
            };
            (ws, gs, input, output, f[4..].to_vec())
        };

        // 2. receive the data (fresh items only). A poisoned input means
        // the upstream stage died mid-pipeline: propagate the poison
        // downstream so the whole pipeline tears down instead of
        // deadlocking on a rendezvous. Once both values are in hand, park
        // them: from here to the acknowledgement the checkpoint owns the
        // request, and a kill anywhere in between leaves it intact for
        // the next incarnation.
        let data = match parked_data {
            Some(d) => d,
            None => {
                let deadline = *shared.deadline.lock();
                let data = match input.recv_deadline(deadline) {
                    Ok(v) => v,
                    Err(ChannelError::Poisoned) => {
                        output.poison_receivers();
                        return Err(VmError(format!(
                            "kernel actor `{name}`: input channel poisoned by a failed peer"
                        )));
                    }
                    // Poison downstream so the rest of the pipeline tears
                    // down promptly instead of each stage waiting out its
                    // own deadline in sequence.
                    Err(ChannelError::TimedOut) => {
                        output.poison_receivers();
                        return Err(deadline_exceeded(&profile, name, "data receive"));
                    }
                    Err(_) => return Ok(()),
                };
                let mut c = ckpt.lock();
                let seq = c.next_seq;
                c.next_seq += 1;
                c.in_flight = Some(VmInFlight {
                    seq,
                    settings: settings.clone(),
                    data: data.clone(),
                    attempted: true,
                });
                data
            }
        };
        let trace = profile.trace();
        if redelivered && trace.is_enabled() {
            trace.record(
                TraceEvent::instant(
                    SpanKind::CheckpointRestore,
                    &plan.kernel_name,
                    env.device.name(),
                    env.queue.now_ns(),
                )
                .with_arg("actor", name)
                .with_arg("seq", seq),
            );
        }
        // The `invokenative` boundary: the actor leaves interpreted code
        // and enters the native OpenCL host protocol for this request
        // (once per attempt — a redelivery re-crosses it).
        if trace.is_enabled() {
            trace.record(
                TraceEvent::instant(
                    SpanKind::InvokeNative,
                    &plan.kernel_name,
                    env.device.name(),
                    env.queue.now_ns(),
                )
                .with_arg("actor", name),
            );
        }
        // Compile-time partition/fusion proofs surface as instants so a
        // trace shows, per dispatch, what a co-execution scheduler would
        // be allowed to do with it (split across devices / batch with
        // its chain neighbours).
        if trace.is_enabled() {
            if let Some(proofs) = &plan.proofs {
                let dims = proofs.split.splittable_dims();
                if !dims.is_empty() {
                    let dims_csv = dims
                        .iter()
                        .map(usize::to_string)
                        .collect::<Vec<_>>()
                        .join(",");
                    trace.record(
                        TraceEvent::instant(
                            SpanKind::ProofSplittable,
                            &format!("{} dims={dims_csv}", plan.kernel_name),
                            env.device.name(),
                            env.queue.now_ns(),
                        )
                        .with_arg("actor", name)
                        .with_arg("dims", dims_csv),
                    );
                }
                if let Some(chain) = &proofs.chain {
                    trace.record(
                        TraceEvent::instant(
                            SpanKind::ProofFusable,
                            &plan.kernel_name,
                            env.device.name(),
                            env.queue.now_ns(),
                        )
                        .with_arg("actor", name)
                        .with_arg("host", chain.host.clone())
                        .with_arg("chain_len", chain.len as i64)
                        .with_arg("index", chain.index as i64),
                    );
                }
            }
        }

        // 3. prepare buffers (§6.2.3 residency rules), 4. dispatch. Any
        // device error that survives the retry layer poisons the output
        // channel before this actor exits, so downstream receivers observe
        // a typed failure instead of blocking forever.
        let attempt: Result<VmVal, VmError> = (|| {
            if plan.mov {
                let VmVal::MovStruct(type_id, state) = &data else {
                    return Err(VmError(
                        "kernel data of a mov type must be a mov struct value".into(),
                    ));
                };
                {
                    let mut guard = state.lock();
                    // Cross-context residency: read back first (the paper's
                    // "different context" rule). When static analysis proved
                    // every consumer of this data type lives on one device
                    // (`residency_proven`), the comparison is skipped
                    // entirely — the proof is the bookkeeping.
                    let cross = if plan.residency_proven {
                        if trace.is_enabled() && matches!(&*guard, MovState::Device { .. }) {
                            trace.record(
                                TraceEvent::instant(
                                    SpanKind::ResidencyProven,
                                    &plan.kernel_name,
                                    env.device.name(),
                                    env.queue.now_ns(),
                                )
                                .with_arg("actor", name),
                            );
                        }
                        false
                    } else {
                        matches!(&*guard, MovState::Device { bufs, .. }
                        if bufs.context.id() != env.context.id())
                    };
                    if cross {
                        drop(guard);
                        crate::value::force_host(state, Some(&profile))?;
                        guard = state.lock();
                    }
                    if let MovState::Host(fields) = &*guard {
                        let flat = flatten_fields(fields, &plan.data_fields)?;
                        let bufs = upload(&env, &policy, &flat, &profile)?;
                        *guard = MovState::Device {
                            bufs,
                            fields: plan.data_fields.clone(),
                        };
                    }
                    let MovState::Device { bufs, .. } = &*guard else {
                        unreachable!("uploaded above");
                    };
                    match &chain_key {
                        Some((key, role)) => {
                            let mut batches = shared.batches.lock();
                            // A batch closes (recording its BatchFused
                            // instant) at the cap, or when a fresh
                            // traversal starts and the chain does not
                            // loop — a looping chain's site 0 continues
                            // the previous iteration's batch.
                            let stale = batches.get(key).is_some_and(|b| {
                                b.launches() as usize >= coexec_cfg.batch_cap
                                    || (role.index == 0 && !role.loops)
                            });
                            if stale {
                                batches.remove(key);
                            }
                            let batch = batches
                                .entry(key.clone())
                                .or_insert_with(|| env.queue.open_batch());
                            dispatch(
                                &env,
                                &policy,
                                &kernel,
                                bufs,
                                &ws,
                                &gs,
                                &scalars,
                                &profile,
                                DispatchMode::Batched(batch),
                            )?;
                        }
                        None => dispatch(
                            &env,
                            &policy,
                            &kernel,
                            bufs,
                            &ws,
                            &gs,
                            &scalars,
                            &profile,
                            DispatchMode::Single,
                        )?,
                    }
                }
                // The value is device-resident now: hand the accountant an
                // eviction handle (after releasing the state lock — the
                // hook may inspect residency, which uses `try_lock`).
                if let Some(hook) = shared.resident_hook.lock().clone() {
                    hook(EvictableMov::new(Arc::clone(state)));
                }
                Ok(VmVal::MovStruct(*type_id, Arc::clone(state)))
            } else {
                // Plain channels: copy up, dispatch, copy the output back.
                let field_vals: Vec<VmVal> = match (&plan.data_shape, &data) {
                    (DataShape::Struct { .. }, VmVal::Struct(_, fields)) => fields.lock().clone(),
                    (DataShape::Array { .. }, v @ VmVal::Arr(_)) => vec![v.clone()],
                    (shape, got) => {
                        return Err(VmError(format!(
                            "kernel data mismatch: expected {shape:?}, got {got:?}"
                        )))
                    }
                };
                let flat = flatten_fields(&field_vals, &plan.data_fields)?;
                let bufs = upload(&env, &policy, &flat, &profile)?;
                // The buffers do not outlive this request: the guard gives
                // the accounting back on every exit — success, error, or a
                // kill-panic unwinding out of the dispatch/read-back.
                let mut release = MemGuard::new(env.context.clone());
                release.add(bufs.bufs.iter().map(|(b, _)| b.len()).sum());
                let mode = match (&secondary, split_dim) {
                    (Some(sec), Some(dim)) => DispatchMode::Coexec {
                        secondary: sec,
                        dim,
                        kind: coexec_cfg.policy.expect("split_dim implies policy"),
                        cfg: &coexec_cfg,
                    },
                    _ => DispatchMode::Single,
                };
                dispatch(
                    &env, &policy, &kernel, &bufs, &ws, &gs, &scalars, &profile, mode,
                )?;
                let result = match plan.out {
                    KernelOut::Whole => {
                        let mut segs = Vec::new();
                        for (b, ty) in &bufs.bufs {
                            let mut bytes = vec![0u8; b.len()];
                            let ev = with_retry(
                                &policy,
                                &env.queue,
                                env.device.name(),
                                &profile,
                                "readback",
                                || env.queue.enqueue_read_buffer(b, &mut bytes),
                            )
                            .map_err(|e| vm_cl_err("read failed", e))?;
                            profile.record_command(&ev, env.device.name());
                            segs.push(FlatSeg::from_bytes(*ty, &bytes));
                        }
                        let flat = FlatData {
                            segs,
                            dims: bufs.dims.clone(),
                        };
                        let vals = unflatten_fields(&flat, &plan.data_fields)?;
                        match (&plan.data_shape, &data) {
                            (DataShape::Struct { type_id }, _) => {
                                VmVal::Struct(*type_id, Arc::new(Mutex::new(vals)))
                            }
                            (DataShape::Array { .. }, _) => vals.into_iter().next().unwrap(),
                        }
                    }
                    KernelOut::Field(fidx) => {
                        let (b, ty) = &bufs.bufs[fidx];
                        let mut bytes = vec![0u8; b.len()];
                        let ev = with_retry(
                            &policy,
                            &env.queue,
                            env.device.name(),
                            &profile,
                            "readback",
                            || env.queue.enqueue_read_buffer(b, &mut bytes),
                        )
                        .map_err(|e| vm_cl_err("read failed", e))?;
                        profile.record_command(&ev, env.device.name());
                        let seg = FlatSeg::from_bytes(*ty, &bytes);
                        // The field's dims within the overall dims vector.
                        let offset: usize =
                            plan.data_fields[..fidx].iter().map(|f| f.ndims).sum();
                        let field = &plan.data_fields[fidx];
                        let dims: Vec<usize> = bufs.dims[offset..offset + field.ndims]
                            .iter()
                            .map(|&d| d as usize)
                            .collect();
                        crate::value::build_array(&seg, &dims, field)?
                    }
                };
                Ok(result)
            }
        })();
        let result = match attempt {
            Ok(v) => v,
            // An injected kill: exit abruptly with the item still parked —
            // the supervisor restarts this actor and the next incarnation
            // redelivers. No poison: downstream just waits out the gap.
            Err(e) if is_kill_err(&e) => return Err(e),
            Err(e) => {
                eprintln!("[vm/{name}] unrecoverable error: {e}; tearing down pipeline");
                output.poison_receivers();
                ckpt.lock().in_flight = None;
                return Err(e);
            }
        };

        // 5. send onward, then acknowledge: the request is done, nothing
        // to redeliver. (No oclsim call separates the send from the ack,
        // so a kill cannot land between them — downstream never sees a
        // duplicate.)
        let sent = output.send_moved(result).is_ok();
        ckpt.lock().in_flight = None;
        if !sent {
            return Ok(());
        }
    }
}
