//! The bytecode interpreter.
//!
//! One [`run_chunk`] call interprets one code block (field initialisers,
//! a constructor, one behaviour iteration, or the boot block) against the
//! actor's slot frame. Every retired opcode is counted into the runtime's
//! shared op counter — multiplied by the per-op cost, that count *is* the
//! "overhead" bar of the paper's figures (interpreting the non-kernel code
//! is what makes Ensemble slower than C there).

use crate::value::{force_host_locked, MovState, VmArr, VmError, VmVal};
use ensemble_actors::ChannelError;
use ensemble_lang::ast::PrintKind;
use ensemble_lang::vmops::{Chunk, CompiledModule, ElemKind, NativeFn, VOp};
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Arc;

/// Why a chunk stopped executing.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Exit {
    /// Ran to the end of the chunk.
    Done,
    /// Hit `stop;`.
    Stopped,
    /// A channel operation found the other side gone — the actor should
    /// stop (its peers have terminated).
    ChannelClosed,
}

/// Services the interpreter needs from the runtime.
pub trait RuntimeHooks {
    /// Spawn actor `idx`, returning its port map.
    fn spawn_actor(&self, idx: u16) -> Result<VmVal, VmError>;
    /// Record printed output.
    fn print(&self, text: String);
    /// Profile sink for forced device read-backs.
    fn profile(&self) -> Option<&ensemble_ocl::ProfileSink>;
    /// Absolute wall-clock deadline for this run, if any: every blocking
    /// receive the interpreter performs gives up with a
    /// [`crate::value::DEADLINE_MARK`] error once it passes. `None` (the
    /// default) blocks indefinitely — the paper's standalone semantics.
    fn deadline(&self) -> Option<std::time::Instant> {
        None
    }
}

/// Interpret `chunk` against `slots`.
///
/// Returns how the chunk exited plus the number of ops it retired — the
/// caller (the runtime) turns that count into a [`trace`] `VmChunk` span
/// on the actor's timeline track. The count is also added to the shared
/// `ops` counter, so the two views stay equal by construction.
pub fn run_chunk(
    chunk: &Chunk,
    module: &CompiledModule,
    slots: &mut [VmVal],
    ops: &Arc<AtomicU64>,
    hooks: &dyn RuntimeHooks,
) -> Result<(Exit, u64), VmError> {
    let strings = &module.strings;
    let mut stack: Vec<VmVal> = Vec::with_capacity(16);
    let mut ip = 0usize;
    let mut local_ops = 0u64;

    macro_rules! pop {
        () => {
            stack
                .pop()
                .ok_or_else(|| VmError("operand stack underflow".into()))?
        };
    }

    let result = loop {
        if ip >= chunk.code.len() {
            break Exit::Done;
        }
        let op = &chunk.code[ip];
        local_ops += op.cost();
        ip += 1;
        match op {
            VOp::PushI(v) => stack.push(VmVal::I(*v)),
            VOp::PushR(v) => stack.push(VmVal::R(*v)),
            VOp::PushB(v) => stack.push(VmVal::B(*v)),
            VOp::PushStr(id) => stack.push(VmVal::S(Arc::from(strings[*id as usize].as_str()))),
            VOp::Pop => {
                pop!();
            }
            VOp::Dup => {
                let v = stack
                    .last()
                    .cloned()
                    .ok_or_else(|| VmError("dup on empty stack".into()))?;
                stack.push(v);
            }
            VOp::Ld(slot) => stack.push(slots[*slot as usize].clone()),
            VOp::St(slot) => slots[*slot as usize] = pop!(),
            VOp::NewArr {
                ndims,
                elem,
                has_fill,
            } => {
                let mut dims = Vec::with_capacity(*ndims as usize);
                for _ in 0..*ndims {
                    dims.push(pop!().as_i()? as usize);
                }
                dims.reverse();
                let fill = if *has_fill { Some(pop!()) } else { None };
                stack.push(alloc_array(&dims, *elem, fill.as_ref())?);
            }
            VOp::NewStructV { type_id, nfields } => {
                let mut fields = Vec::with_capacity(*nfields as usize);
                for _ in 0..*nfields {
                    fields.push(pop!());
                }
                fields.reverse();
                // A struct with mov fields is a mov value: it travels by
                // reference and may become device-resident (§6.2.3).
                let meta = &module.structs[*type_id as usize];
                if meta.any_mov {
                    stack.push(VmVal::MovStruct(
                        *type_id,
                        Arc::new(parking_lot::Mutex::new(MovState::Host(fields))),
                    ));
                } else {
                    stack.push(VmVal::Struct(
                        *type_id,
                        Arc::new(parking_lot::Mutex::new(fields)),
                    ));
                }
            }
            VOp::GetField(idx) => {
                let v = pop!();
                match v {
                    VmVal::Struct(_, fields) => {
                        let f = fields
                            .lock()
                            .get(*idx as usize)
                            .cloned()
                            .ok_or_else(|| VmError(format!("no field {idx}")))?;
                        stack.push(f);
                    }
                    VmVal::MovStruct(_, state) => {
                        // Host access forces the data off the device
                        // (§6.2.3) — once; subsequent accesses are cheap.
                        // The guard stays held across the read so a kernel
                        // actor cannot re-upload in between.
                        let guard = force_host_locked(&state, hooks.profile())?;
                        let MovState::Host(fields) = &*guard else {
                            unreachable!("forced under the same lock");
                        };
                        let f = fields
                            .get(*idx as usize)
                            .cloned()
                            .ok_or_else(|| VmError(format!("no field {idx}")))?;
                        drop(guard);
                        stack.push(f);
                    }
                    other => return Err(VmError(format!("GetField on {other:?}"))),
                }
            }
            VOp::SetField(idx) => {
                let value = pop!();
                let target = pop!();
                match target {
                    VmVal::Struct(_, fields) => {
                        let mut guard = fields.lock();
                        let slot = guard
                            .get_mut(*idx as usize)
                            .ok_or_else(|| VmError(format!("no field {idx}")))?;
                        *slot = value;
                    }
                    VmVal::MovStruct(_, state) => {
                        let mut guard = force_host_locked(&state, hooks.profile())?;
                        let MovState::Host(fields) = &mut *guard else {
                            unreachable!("forced under the same lock");
                        };
                        let slot = fields
                            .get_mut(*idx as usize)
                            .ok_or_else(|| VmError(format!("no field {idx}")))?;
                        *slot = value;
                    }
                    other => return Err(VmError(format!("SetField on {other:?}"))),
                }
            }
            VOp::IdxLd => {
                let idx = pop!().as_i()?;
                let arr = pop!();
                stack.push(index_load(&arr, idx)?);
            }
            VOp::IdxSt => {
                let value = pop!();
                let idx = pop!().as_i()?;
                let arr = pop!();
                index_store(&arr, idx, value)?;
            }
            VOp::Add | VOp::Sub | VOp::Mul | VOp::Div | VOp::Rem => {
                let b = pop!();
                let a = pop!();
                stack.push(arith(op, &a, &b)?);
            }
            VOp::Neg => {
                let a = pop!();
                stack.push(match a {
                    VmVal::I(v) => VmVal::I(-v),
                    VmVal::R(v) => VmVal::R(-v),
                    other => return Err(VmError(format!("cannot negate {other:?}"))),
                });
            }
            VOp::CmpEq | VOp::CmpNe | VOp::CmpLt | VOp::CmpLe | VOp::CmpGt | VOp::CmpGe => {
                let b = pop!();
                let a = pop!();
                stack.push(VmVal::B(compare(op, &a, &b)?));
            }
            VOp::NotOp => {
                let a = pop!().as_b()?;
                stack.push(VmVal::B(!a));
            }
            VOp::AndOp => {
                let b = pop!().as_b()?;
                let a = pop!().as_b()?;
                stack.push(VmVal::B(a && b));
            }
            VOp::OrOp => {
                let b = pop!().as_b()?;
                let a = pop!().as_b()?;
                stack.push(VmVal::B(a || b));
            }
            VOp::Jmp(t) => ip = *t as usize,
            VOp::Jz(t) => {
                if !pop!().as_b()? {
                    ip = *t as usize;
                }
            }
            VOp::ToReal => {
                let v = pop!().as_f()?;
                stack.push(VmVal::R(v));
            }
            VOp::ToInt => {
                let v = pop!().as_f()?;
                stack.push(VmVal::I(v as i64));
            }
            VOp::LengthOf => {
                let v = pop!();
                let len = match &v {
                    VmVal::Arr(a) => a.lock().len(),
                    other => return Err(VmError(format!("lengthof on {other:?}"))),
                };
                stack.push(VmVal::I(len as i64));
            }
            VOp::NewChanIn => {
                let mut input = ensemble_actors::In::with_buffer(4);
                if let Some(p) = hooks.profile() {
                    input.set_trace(p.trace().clone(), "chan");
                }
                stack.push(VmVal::ChanIn(Arc::new(input)));
            }
            VOp::NewChanOut => {
                stack.push(VmVal::ChanOut(ensemble_actors::Out::new()));
            }
            VOp::ConnectOp => {
                let to = pop!();
                let from = pop!();
                match (from, to) {
                    (VmVal::ChanOut(o), VmVal::ChanIn(i)) => o.connect(&i),
                    (f, t) => {
                        return Err(VmError(format!(
                            "connect expects out → in, found {f:?} → {t:?}"
                        )))
                    }
                }
            }
            VOp::SendOp { mov } => {
                let value = pop!();
                let chan = pop!();
                let VmVal::ChanOut(o) = chan else {
                    return Err(VmError("send on a non-out endpoint".into()));
                };
                // Shared-nothing: duplicate unless the type is mov.
                let payload = if *mov {
                    value
                } else {
                    value.deep_copy(hooks.profile())?
                };
                // The interpreter, not the channel, knows whether this
                // send is a mov (ownership transfer) or a duplicate — the
                // runtime always delivers via `send_moved` because a
                // non-mov payload was already deep-copied above.
                if let Some(p) = hooks.profile() {
                    let t = p.trace();
                    if t.is_enabled() {
                        let (kind, name) = if *mov {
                            (trace::SpanKind::MovTransfer, "send_mov")
                        } else {
                            (trace::SpanKind::Duplicate, "send_dup")
                        };
                        t.record(
                            trace::TraceEvent::instant(kind, name, "vm", t.wall_ns())
                                .with_arg("clock", "wall"),
                        );
                    }
                }
                match o.send_moved(payload) {
                    Ok(()) => {}
                    Err(ChannelError::Poisoned) => {
                        return Err(VmError(
                            "send on a channel poisoned by a failed peer".into(),
                        ))
                    }
                    Err(_) => break Exit::ChannelClosed,
                }
            }
            VOp::RecvOp => {
                let chan = pop!();
                let VmVal::ChanIn(i) = chan else {
                    return Err(VmError("receive on a non-in endpoint".into()));
                };
                match i.recv_deadline(hooks.deadline()) {
                    Ok(v) => stack.push(v),
                    // A poisoned channel is a failed peer, not an orderly
                    // shutdown: surface it as an error so the failure
                    // propagates out of `run()` instead of looking like a
                    // clean exit.
                    Err(ChannelError::Poisoned) => {
                        return Err(VmError(
                            "receive on a channel poisoned by a failed peer".into(),
                        ))
                    }
                    // The run's deadline passed while blocked: a serving
                    // outcome, not a program error — marked so the layer
                    // above can classify it.
                    Err(ChannelError::TimedOut) => {
                        return Err(VmError::deadline("receive passed the run deadline"))
                    }
                    Err(_) => break Exit::ChannelClosed,
                }
            }
            VOp::SpawnActor(idx) => {
                let r = hooks.spawn_actor(*idx)?;
                stack.push(r);
            }
            VOp::GetPort(name_id) => {
                let v = pop!();
                let VmVal::ActorRef(ports) = v else {
                    return Err(VmError("port access on a non-actor value".into()));
                };
                let name = &strings[*name_id as usize];
                let ep = ports
                    .get(name)
                    .cloned()
                    .ok_or_else(|| VmError(format!("actor has no port `{name}`")))?;
                stack.push(ep);
            }
            VOp::CallNative(f, _argc) => {
                let v = native_call(*f, &mut stack)?;
                stack.push(v);
            }
            VOp::Print(kind) => {
                let v = pop!();
                let text = match (kind, &v) {
                    (PrintKind::Str, VmVal::S(s)) => s.to_string(),
                    (PrintKind::Int, v) => v.as_i()?.to_string(),
                    (PrintKind::Real, v) => format!("{}", v.as_f()?),
                    (PrintKind::Str, other) => format!("{other:?}"),
                };
                hooks.print(text);
            }
            VOp::StopOp => break Exit::Stopped,
        }
    };
    ops.fetch_add(local_ops, Ordering::Relaxed);
    Ok((result, local_ops))
}

/// Deterministic xorshift64* generator shared by the native data
/// builtins (the VM equivalents of the paper's native `generate_data`).
fn xorshift(state: &mut u64) -> f64 {
    let mut x = *state;
    x ^= x >> 12;
    x ^= x << 25;
    x ^= x >> 27;
    *state = x;
    let bits = x.wrapping_mul(0x2545F4914F6CDD1D) >> 11;
    bits as f64 / (1u64 << 53) as f64
}

fn native_call(f: NativeFn, stack: &mut Vec<VmVal>) -> Result<VmVal, VmError> {
    let mut pop = || -> Result<VmVal, VmError> {
        stack
            .pop()
            .ok_or_else(|| VmError("native call stack underflow".into()))
    };
    match f {
        NativeFn::GenerateVector => {
            let seed = pop()?.as_i()? as u64;
            let n = pop()?.as_i()? as usize;
            let mut state = seed.wrapping_mul(0x9E3779B97F4A7C15).max(1);
            let data: Vec<f64> = (0..n).map(|_| 0.5 + xorshift(&mut state)).collect();
            Ok(VmVal::arr(VmArr::R(data)))
        }
        NativeFn::GenerateMatrix => {
            let seed = pop()?.as_i()? as u64;
            let cols = pop()?.as_i()? as usize;
            let rows = pop()?.as_i()? as usize;
            let mut state = seed.wrapping_mul(0x9E3779B97F4A7C15).max(1);
            let cells = (0..rows)
                .map(|_| VmVal::arr(VmArr::R((0..cols).map(|_| xorshift(&mut state)).collect())))
                .collect();
            Ok(VmVal::arr(VmArr::Cells(cells)))
        }
        NativeFn::GenerateDominant => {
            let seed = pop()?.as_i()? as u64;
            let n = pop()?.as_i()? as usize;
            let mut state = seed.wrapping_mul(0x9E3779B97F4A7C15).max(1);
            let cells = (0..n)
                .map(|i| {
                    let mut row: Vec<f64> = (0..n).map(|_| 0.5 * xorshift(&mut state)).collect();
                    let sum: f64 = row
                        .iter()
                        .enumerate()
                        .filter(|(j, _)| *j != i)
                        .map(|(_, v)| v.abs())
                        .sum();
                    row[i] = sum + 1.0 + xorshift(&mut state);
                    VmVal::arr(VmArr::R(row))
                })
                .collect();
            Ok(VmVal::arr(VmArr::Cells(cells)))
        }
        NativeFn::Checksum => {
            let v = pop()?;
            fn sum(v: &VmVal) -> Result<f64, VmError> {
                match v {
                    VmVal::Arr(a) => match &*a.lock() {
                        VmArr::I(x) => Ok(x.iter().map(|&v| v as f64).sum()),
                        VmArr::R(x) => Ok(x.iter().sum()),
                        VmArr::B(x) => Ok(x.iter().map(|&b| b as i64 as f64).sum()),
                        VmArr::Cells(x) => {
                            let mut t = 0.0;
                            for c in x {
                                t += sum(c)?;
                            }
                            Ok(t)
                        }
                    },
                    other => Err(VmError(format!("checksum on non-array {other:?}"))),
                }
            }
            Ok(VmVal::R(sum(&v)?))
        }
    }
}

fn alloc_array(dims: &[usize], elem: ElemKind, fill: Option<&VmVal>) -> Result<VmVal, VmError> {
    if dims.is_empty() {
        return Err(VmError("array with no dimensions".into()));
    }
    if dims.len() == 1 {
        let n = dims[0];
        let arr = match elem {
            ElemKind::Int => VmArr::I(vec![fill.map(|f| f.as_i()).transpose()?.unwrap_or(0); n]),
            ElemKind::Real => VmArr::R(vec![fill.map(|f| f.as_f()).transpose()?.unwrap_or(0.0); n]),
            ElemKind::Bool | ElemKind::Cell => {
                VmArr::B(vec![
                    fill.map(|f| f.as_b()).transpose()?.unwrap_or(false);
                    n
                ])
            }
        };
        return Ok(VmVal::arr(arr));
    }
    let cells = (0..dims[0])
        .map(|_| alloc_array(&dims[1..], elem, fill))
        .collect::<Result<Vec<_>, _>>()?;
    Ok(VmVal::arr(VmArr::Cells(cells)))
}

fn index_load(arr: &VmVal, idx: i64) -> Result<VmVal, VmError> {
    let VmVal::Arr(a) = arr else {
        return Err(VmError(format!("indexing a non-array {arr:?}")));
    };
    if idx < 0 {
        return Err(VmError(format!("negative index {idx}")));
    }
    let guard = a.lock();
    let i = idx as usize;
    let out = match &*guard {
        VmArr::I(v) => v.get(i).map(|&x| VmVal::I(x)),
        VmArr::R(v) => v.get(i).map(|&x| VmVal::R(x)),
        VmArr::B(v) => v.get(i).map(|&x| VmVal::B(x)),
        VmArr::Cells(v) => v.get(i).cloned(),
    };
    out.ok_or_else(|| VmError(format!("index {idx} out of bounds (len {})", guard.len())))
}

fn index_store(arr: &VmVal, idx: i64, value: VmVal) -> Result<(), VmError> {
    let VmVal::Arr(a) = arr else {
        return Err(VmError(format!("indexing a non-array {arr:?}")));
    };
    if idx < 0 {
        return Err(VmError(format!("negative index {idx}")));
    }
    let mut guard = a.lock();
    let len = guard.len();
    let i = idx as usize;
    if i >= len {
        return Err(VmError(format!("index {idx} out of bounds (len {len})")));
    }
    match &mut *guard {
        VmArr::I(v) => v[i] = value.as_i()?,
        VmArr::R(v) => v[i] = value.as_f()?,
        VmArr::B(v) => v[i] = value.as_b()?,
        VmArr::Cells(v) => v[i] = value,
    }
    Ok(())
}

fn arith(op: &VOp, a: &VmVal, b: &VmVal) -> Result<VmVal, VmError> {
    let float = matches!(a, VmVal::R(_)) || matches!(b, VmVal::R(_));
    if float {
        let (x, y) = (a.as_f()?, b.as_f()?);
        Ok(VmVal::R(match op {
            VOp::Add => x + y,
            VOp::Sub => x - y,
            VOp::Mul => x * y,
            VOp::Div => x / y,
            VOp::Rem => x % y,
            _ => unreachable!(),
        }))
    } else {
        let (x, y) = (a.as_i()?, b.as_i()?);
        if matches!(op, VOp::Div | VOp::Rem) && y == 0 {
            return Err(VmError("integer division by zero".into()));
        }
        Ok(VmVal::I(match op {
            VOp::Add => x.wrapping_add(y),
            VOp::Sub => x.wrapping_sub(y),
            VOp::Mul => x.wrapping_mul(y),
            VOp::Div => x.wrapping_div(y),
            VOp::Rem => x.wrapping_rem(y),
            _ => unreachable!(),
        }))
    }
}

fn compare(op: &VOp, a: &VmVal, b: &VmVal) -> Result<bool, VmError> {
    let float = matches!(a, VmVal::R(_)) || matches!(b, VmVal::R(_));
    let ord = if float {
        a.as_f()?.partial_cmp(&b.as_f()?)
    } else {
        Some(a.as_i()?.cmp(&b.as_i()?))
    };
    let Some(ord) = ord else {
        return Ok(matches!(op, VOp::CmpNe)); // NaN: only != holds
    };
    Ok(match op {
        VOp::CmpEq => ord.is_eq(),
        VOp::CmpNe => ord.is_ne(),
        VOp::CmpLt => ord.is_lt(),
        VOp::CmpLe => ord.is_le(),
        VOp::CmpGt => ord.is_gt(),
        VOp::CmpGe => ord.is_ge(),
        _ => unreachable!(),
    })
}
