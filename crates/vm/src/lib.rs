//! # ensemble-vm — the Ensemble virtual machine
//!
//! Executes [`ensemble_lang`]-compiled modules the way §5–6 of the paper
//! describes the Ensemble VM:
//!
//! * one OS thread per actor, each interpreting its behaviour bytecode in
//!   a loop until told to stop (module [`interp`]);
//! * blocking typed channels between actors (from `ensemble-actors`), so
//!   scheduling is communication-driven;
//! * `opencl` actors run natively (the `invokenative` path): the kernel
//!   source string generated at compile time is built once per actor, and
//!   the settings/data/dispatch/send protocol is driven against `oclsim`
//!   through the device matrix of `ensemble-ocl` (module [`runtime`]);
//! * `mov` data stays resident on the device between kernel actors and is
//!   only read back when host bytecode touches it or it crosses contexts.
//!
//! The interpreter counts every retired opcode; [`VmReport::overhead_ns`]
//! converts that into the virtual-time "overhead" segment of the paper's
//! figures — the cost of interpreting the non-kernel code, which is the
//! paper's explanation for Ensemble's extra height over C-OpenCL.
//!
//! ## Example: Listing 2 end to end
//!
//! ```
//! use ensemble_lang::compile_source;
//! use ensemble_vm::VmRuntime;
//!
//! let src = r#"
//! type Isnd is interface(out integer output)
//! type Ircv is interface(in integer input)
//! stage home {
//!     actor snd presents Isnd {
//!         value = 1;
//!         constructor() {}
//!         behaviour {
//!             send value on output;
//!             value := value + 1;
//!             if value > 3 then { stop; }
//!         }
//!     }
//!     actor rcv presents Ircv {
//!         constructor() {}
//!         behaviour {
//!             receive data from input;
//!             printInt(data);
//!         }
//!     }
//!     boot {
//!         s = new snd();
//!         r = new rcv();
//!         connect s.output to r.input;
//!     }
//! }
//! "#;
//! let module = compile_source(src).unwrap();
//! let report = VmRuntime::new(module).run().unwrap();
//! assert_eq!(report.output, vec!["1", "2", "3"]);
//! assert!(report.vm_ops > 0);
//! ```

#![warn(missing_docs)]

pub mod interp;
pub mod runtime;
pub mod value;

pub use interp::{run_chunk, Exit, RuntimeHooks};
pub use runtime::{ResidentHook, VmReport, VmRuntime, VM_NS_PER_OP};
pub use value::{EvictableMov, VmArr, VmError, VmVal, DEADLINE_MARK};
