//! `ens-lint` — run the static analysis suite over `.ens` sources.
//!
//! ```text
//! ens-lint [--allow CODE]... FILE.ens [FILE.ens ...]
//! ```
//!
//! Renders rustc-style diagnostics and exits non-zero when any
//! error-severity finding remains after `--allow` filtering. Warnings
//! are reported but do not fail the run.

use ensemble_analysis::{analyze_source, Options};
use ensemble_lang::Severity;
use std::process::ExitCode;

fn main() -> ExitCode {
    let mut opts = Options::default();
    let mut files: Vec<String> = Vec::new();
    let mut args = std::env::args().skip(1);
    while let Some(arg) = args.next() {
        match arg.as_str() {
            "--allow" => match args.next() {
                Some(code) => {
                    opts.allow.insert(code);
                }
                None => {
                    eprintln!("error: --allow needs a diagnostic code (e.g. --allow E001)");
                    return ExitCode::from(2);
                }
            },
            "--help" | "-h" => {
                println!("usage: ens-lint [--allow CODE]... FILE.ens [FILE.ens ...]");
                println!();
                println!("Statically checks mini-Ensemble programs: kernel races (E001/E002),");
                println!("bounds (E003), mov use-after-send (E004), topology (E005-E007),");
                println!("and residency/unused-port warnings (W001/W002).");
                return ExitCode::SUCCESS;
            }
            "--" => {
                files.extend(args.by_ref());
            }
            _ => files.push(arg),
        }
    }
    if files.is_empty() {
        eprintln!("usage: ens-lint [--allow CODE]... FILE.ens [FILE.ens ...]");
        return ExitCode::from(2);
    }

    let mut failed = false;
    for file in &files {
        let src = match std::fs::read_to_string(file) {
            Ok(s) => s,
            Err(e) => {
                eprintln!("error: cannot read {file}: {e}");
                failed = true;
                continue;
            }
        };
        match analyze_source(&src, &opts) {
            Err(parse) => {
                eprintln!("{file}: {parse}");
                failed = true;
            }
            Ok(report) => {
                let mut errors = 0usize;
                let mut warnings = 0usize;
                for d in &report.diagnostics {
                    eprint!("{}", d.render(&src, Some(file)));
                    eprintln!();
                    match d.severity {
                        Severity::Error => errors += 1,
                        Severity::Warning => warnings += 1,
                    }
                }
                if errors > 0 {
                    eprintln!("{file}: {errors} error(s), {warnings} warning(s)");
                    failed = true;
                } else if warnings > 0 {
                    eprintln!("{file}: ok ({warnings} warning(s))");
                } else {
                    println!("{file}: ok");
                }
                if !report.residency_proven.is_empty() {
                    let names: Vec<&str> = report
                        .residency_proven
                        .iter()
                        .map(|s| s.as_str())
                        .collect();
                    println!(
                        "{file}: residency proven for kernel(s): {}",
                        names.join(", ")
                    );
                }
            }
        }
    }
    if failed {
        ExitCode::FAILURE
    } else {
        ExitCode::SUCCESS
    }
}
