//! `ens-lint` — run the static analysis suite over `.ens` sources.
//!
//! ```text
//! ens-lint [--allow CODE]... [--proofs] [--json] FILE.ens [FILE.ens ...]
//! ```
//!
//! Renders rustc-style diagnostics and exits non-zero when any
//! error-severity finding remains after `--allow` filtering. Warnings
//! are reported but do not fail the run (exit 0); errors exit 1; usage
//! problems exit 2.
//!
//! `--proofs` switches on the proof engine's findings (W003/W004/W005)
//! and prints the positive proofs — per-kernel splittability, dispatch
//! chains, and payload send effects. `--json` emits one JSON object per
//! file on stdout (diagnostics, counts, residency; plus a `proofs` key
//! under `--proofs`) for CI to assert against.

use ensemble_analysis::{analyze_source, Options, Report};
use ensemble_lang::proof::json_string;
use ensemble_lang::Severity;
use std::process::ExitCode;

fn usage() {
    eprintln!("usage: ens-lint [--allow CODE]... [--proofs] [--json] FILE.ens [FILE.ens ...]");
}

fn main() -> ExitCode {
    let mut opts = Options::default();
    let mut files: Vec<String> = Vec::new();
    let mut json = false;
    let mut args = std::env::args().skip(1);
    while let Some(arg) = args.next() {
        match arg.as_str() {
            "--allow" => match args.next() {
                Some(code) => {
                    opts.allow.insert(code);
                }
                None => {
                    eprintln!("error: --allow needs a diagnostic code (e.g. --allow E001)");
                    return ExitCode::from(2);
                }
            },
            "--proofs" => opts.proofs = true,
            "--json" => json = true,
            "--help" | "-h" => {
                usage();
                println!();
                println!("Statically checks mini-Ensemble programs: kernel races (E001/E002),");
                println!("bounds (E003), mov use-after-send (E004), topology (E005-E007),");
                println!("and residency/unused-port warnings (W001/W002).");
                println!();
                println!("--proofs additionally runs the proof engine: splittability per");
                println!("kernel NDRange dimension, dispatch-chain fusion, and payload send");
                println!("effects, reporting W003/W004/W005 where a proof is blocked.");
                println!("--json prints one JSON object per file on stdout.");
                return ExitCode::SUCCESS;
            }
            "--" => {
                files.extend(args.by_ref());
            }
            _ => files.push(arg),
        }
    }
    if files.is_empty() {
        usage();
        return ExitCode::from(2);
    }

    let mut failed = false;
    for file in &files {
        let src = match std::fs::read_to_string(file) {
            Ok(s) => s,
            Err(e) => {
                eprintln!("error: cannot read {file}: {e}");
                failed = true;
                continue;
            }
        };
        match analyze_source(&src, &opts) {
            Err(parse) => {
                if json {
                    println!(
                        "{{\"file\":{},\"parse_error\":{}}}",
                        json_string(file),
                        json_string(&parse.to_string())
                    );
                } else {
                    eprintln!("{file}: {parse}");
                }
                failed = true;
            }
            Ok(report) => {
                let errors = report
                    .diagnostics
                    .iter()
                    .filter(|d| d.severity == Severity::Error)
                    .count();
                if json {
                    println!("{}", render_json(file, &report, opts.proofs));
                } else {
                    render_human(file, &src, &report, opts.proofs);
                }
                if errors > 0 {
                    failed = true;
                }
            }
        }
    }
    if failed {
        ExitCode::FAILURE
    } else {
        ExitCode::SUCCESS
    }
}

fn render_json(file: &str, report: &Report, proofs: bool) -> String {
    let mut errors = 0usize;
    let mut warnings = 0usize;
    let mut diags = String::from("[");
    for (i, d) in report.diagnostics.iter().enumerate() {
        match d.severity {
            Severity::Error => errors += 1,
            Severity::Warning => warnings += 1,
        }
        if i > 0 {
            diags.push(',');
        }
        diags.push_str(&format!(
            "{{\"code\":{},\"severity\":{},\"line\":{},\"col\":{},\"message\":{}}}",
            json_string(d.code),
            json_string(match d.severity {
                Severity::Error => "error",
                Severity::Warning => "warning",
            }),
            d.span.start.line,
            d.span.start.col,
            json_string(&d.message),
        ));
    }
    diags.push(']');
    let residency = report
        .residency_proven
        .iter()
        .map(|s| json_string(s))
        .collect::<Vec<_>>()
        .join(",");
    let mut out = format!(
        "{{\"file\":{},\"errors\":{errors},\"warnings\":{warnings},\
         \"diagnostics\":{diags},\"residency_proven\":[{residency}]",
        json_string(file),
    );
    if proofs {
        out.push_str(",\"proofs\":");
        out.push_str(&report.proofs.to_json());
    }
    out.push('}');
    out
}

fn render_human(file: &str, src: &str, report: &Report, proofs: bool) {
    let mut errors = 0usize;
    let mut warnings = 0usize;
    for d in &report.diagnostics {
        eprint!("{}", d.render(src, Some(file)));
        eprintln!();
        match d.severity {
            Severity::Error => errors += 1,
            Severity::Warning => warnings += 1,
        }
    }
    if errors > 0 {
        eprintln!("{file}: {errors} error(s), {warnings} warning(s)");
    } else if warnings > 0 {
        eprintln!("{file}: ok ({warnings} warning(s))");
    } else {
        println!("{file}: ok");
    }
    if !report.residency_proven.is_empty() {
        let names: Vec<&str> = report
            .residency_proven
            .iter()
            .map(|s| s.as_str())
            .collect();
        println!(
            "{file}: residency proven for kernel(s): {}",
            names.join(", ")
        );
    }
    if !proofs {
        return;
    }
    for sp in &report.proofs.splits {
        let dims: Vec<String> = sp
            .dims
            .iter()
            .map(|d| format!("dim {} {}", d.dim, d.class.as_str()))
            .collect();
        println!("{file}: split {} ({}D): {}", sp.kernel, sp.ndims, dims.join(", "));
    }
    for fp in &report.proofs.fusion {
        if fp.is_empty() {
            continue;
        }
        let mut line = format!("{file}: chain {}: [{}]", fp.host, fp.sites.join(" -> "));
        if fp.loops {
            match fp.iterations {
                Some(n) => line.push_str(&format!(" looping x{n}")),
                None => line.push_str(" looping"),
            }
        }
        if let Some(b) = &fp.barrier {
            line.push_str(&format!(" until {b}"));
        }
        println!("{line}");
        for p in &fp.pairs {
            if p.mergeable {
                println!("{file}:   pair {} -> {}: mergeable ({})", p.from, p.to, p.detail);
            } else if let Some((hz, buf)) = &p.hazard {
                println!(
                    "{file}:   pair {} -> {}: {} hazard on `{buf}` ({})",
                    p.from,
                    p.to,
                    hz.as_str(),
                    p.detail
                );
            } else {
                println!("{file}:   pair {} -> {}: {}", p.from, p.to, p.detail);
            }
        }
    }
    for s in &report.proofs.sends {
        println!(
            "{file}: send {}/{} (line {}): {}",
            s.actor,
            s.payload,
            s.line,
            if s.unmutated {
                "payload unmutated after send (CoW-safe)"
            } else {
                "payload MUTATED after send"
            }
        );
    }
}
