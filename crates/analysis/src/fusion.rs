//! Dispatch-chain fusion proofs (`FusionProof`, W004) and the host
//! control-flow event walker shared with the effects pass.
//!
//! The walker linearises each host actor's behaviour into an event
//! tree: kernel enqueues (a send of an `opencl` settings struct on a
//! port boot-wired to a kernel actor), payload sends, readback
//! receives, payload mutations and rebindings, and loops with their
//! iteration counts. Chain extraction then finds maximal runs of
//! enqueues with no intervening *fusion barrier* — a non-`mov` readback
//! receive (the host blocks on kernel results), a host mutation of a
//! sent payload, or an un-routable/conditional channel operation. A
//! `mov` receive returns a device handle without synchronising, so it
//! does **not** break a chain: that is exactly why LUD's
//! diag → col → sub ring forms one looping chain per step.
//!
//! A chain is *batchable*: its dispatches can be enqueued back-to-back
//! on one in-order queue, amortising per-launch overhead, regardless of
//! data hazards (the queue preserves order). Whether two adjacent
//! dispatches could go further and be *merged* into one kernel is a
//! separate per-pair verdict: merging interleaves the two work-item
//! sets, so it needs RAW/WAR/WAW freedom on every shared buffer,
//! checked with the affine interval model across the two kernels'
//! symbol spaces (a settings scalar unifies only when the walker can
//! prove both enqueues were fed the same value for it — the same
//! constant or the same variable binding; `lengthof` lengths unify by
//! buffer; ids stay per-dispatch). A blocked merge yields W004 naming
//! the offending subscript pair.

use crate::host::BootInfo;
use crate::kernel::{Access, KernelCheck, Sym, Target};
use crate::model::{DataModel, Model};
use ensemble_lang::ast::{ActorDecl, Dir, Expr, Stmt, TypeExpr};
use ensemble_lang::diag::{codes, Diagnostic};
use ensemble_lang::proof::{ChainRole, FusionProof, Hazard, PairProof};
use ensemble_lang::token::Span;
use std::collections::{BTreeMap, HashMap};

/// One linearised host-behaviour event.
#[derive(Debug, Clone)]
pub(crate) enum Ev {
    /// A settings send routed to a kernel (`None` = routing unknown —
    /// conservative chain barrier).
    Enqueue {
        /// Target kernel actor, when the port wiring resolved it.
        kernel: Option<String>,
        /// Provably-known settings field values at this send, as opaque
        /// equality keys (a constant, or one variable binding
        /// generation): two enqueues whose keys agree for a field were
        /// fed the same value for it. Fields whose value the walker
        /// cannot pin are absent.
        fields: BTreeMap<String, String>,
        /// Span of the send.
        span: Span,
    },
    /// A (non-settings) payload value sent on a channel.
    PayloadSend {
        /// The sent variable.
        var: String,
        /// Variables sharing storage with it at the send (transitive).
        aliases: Vec<String>,
        /// The payload type carries `mov` fields (handle transfer).
        mov: bool,
        /// Span of the send.
        span: Span,
    },
    /// A receive; `mov` handles return without synchronising, anything
    /// else is a blocking readback (fusion barrier).
    Readback {
        /// `mov` handle return (not a barrier) vs. data copy (barrier).
        mov: bool,
        /// Span of the receive.
        span: Span,
    },
    /// An element-assignment into a variable (possible payload
    /// mutation; filtered by alias sets downstream).
    Mutate {
        /// The assigned variable.
        var: String,
        /// Span of the assignment.
        span: Span,
    },
    /// The variable was bound to a new value (declare, whole-variable
    /// assign, receive) — it no longer aliases what it did, unless the
    /// new value itself shares storage with something (`y = x`).
    Rebind {
        /// The rebound variable.
        var: String,
        /// Variables whose storage the new binding shares (a plain
        /// variable copy, or a struct construction's captured
        /// arguments) — empty for fresh values.
        from: Vec<String>,
    },
    /// A loop; `iterations` when the trip count is a known constant.
    Loop {
        /// Constant trip count, when derivable.
        iterations: Option<i64>,
        /// Events of one iteration.
        body: Vec<Ev>,
    },
    /// A channel operation we cannot order (e.g. under a conditional) —
    /// conservative chain barrier.
    Opaque {
        /// Span of the construct.
        span: Span,
    },
}

/// The walked events of one host actor's behaviour.
pub(crate) struct HostEvents {
    /// Host actor type name.
    pub(crate) actor: String,
    /// Linearised behaviour events.
    pub(crate) events: Vec<Ev>,
}

/// Hazard info a fusion pair check needs per kernel.
pub(crate) struct KernelInfo<'a> {
    /// Data shape key: `Some(struct_name)` or `None` for a bare array.
    pub(crate) data_ty: Option<String>,
    /// The walked checker (accesses + facts + symbol names).
    pub(crate) check: &'a KernelCheck,
}

// ---- host walking -----------------------------------------------------

#[derive(Debug, Clone, PartialEq)]
enum VKind {
    Settings,
    Payload { mov: bool },
    EndpointIn { mov: bool },
    Other,
}

struct Walker<'m> {
    model: &'m Model<'m>,
    port_to_kernel: HashMap<String, String>,
    /// In-port name → element-is-mov for interface receives.
    port_in_mov: HashMap<String, bool>,
    kinds: HashMap<String, VKind>,
    consts: HashMap<String, i64>,
    binds: HashMap<String, Vec<String>>,
    /// Per-variable binding generation, bumped on every rebind: the
    /// value-equality keys in [`Ev::Enqueue`] cite `var@generation` so
    /// two reads of one binding compare equal while reads across a
    /// rebind do not.
    gen: HashMap<String, u64>,
    /// Settings variables → the field value keys captured at their
    /// construction (cleared when the variable is mutated or rebound to
    /// something the walker cannot pin).
    settings_fields: HashMap<String, BTreeMap<String, String>>,
}

/// Walk every non-kernel host actor of the stage.
pub(crate) fn walk_hosts<'m>(model: &'m Model<'m>, boot: &BootInfo) -> Vec<HostEvents> {
    let Some(stage) = model.stage else {
        return Vec::new();
    };
    // (host instance port) → kernel actor name, via boot edges.
    let kernel_req: HashMap<&str, &str> = model
        .kernels
        .iter()
        .map(|k| (k.actor.name.as_str(), k.req_port))
        .collect();
    let type_of: HashMap<&str, &str> = boot
        .instances
        .iter()
        .map(|(i, t)| (i.as_str(), t.as_str()))
        .collect();
    let mut out = Vec::new();
    for actor in &stage.actors {
        if actor.opencl.is_some() {
            continue;
        }
        let mut port_to_kernel: HashMap<String, String> = HashMap::new();
        let mut ambiguous: Vec<String> = Vec::new();
        for ((a, p), (b, q), _) in &boot.edges {
            if type_of.get(a.as_str()) != Some(&actor.name.as_str()) {
                continue;
            }
            let Some(&bt) = type_of.get(b.as_str()) else {
                continue;
            };
            let Some(&req) = kernel_req.get(bt) else {
                continue;
            };
            if req != q {
                continue;
            }
            match port_to_kernel.get(p) {
                Some(prev) if prev != bt => ambiguous.push(p.clone()),
                _ => {
                    port_to_kernel.insert(p.clone(), bt.to_string());
                }
            }
        }
        for p in ambiguous {
            port_to_kernel.remove(&p);
        }
        let mut port_in_mov = HashMap::new();
        if let Some(ports) = model.interfaces.get(actor.interface.as_str()) {
            for port in *ports {
                if port.dir == Dir::In {
                    port_in_mov.insert(port.name.clone(), elem_is_mov(model, &port.ty));
                }
            }
        }
        let mut w = Walker {
            model,
            port_to_kernel,
            port_in_mov,
            kinds: HashMap::new(),
            consts: HashMap::new(),
            binds: HashMap::new(),
            gen: HashMap::new(),
            settings_fields: HashMap::new(),
        };
        let mut events = Vec::new();
        for s in &actor.constructor {
            w.stmt(s, &mut events);
        }
        for s in &actor.behaviour {
            w.stmt(s, &mut events);
        }
        // A behaviour that never stops repeats forever: the whole event
        // list is one loop.
        if behaviour_repeats(actor) {
            events = vec![Ev::Loop {
                iterations: None,
                body: events,
            }];
        }
        out.push(HostEvents {
            actor: actor.name.clone(),
            events,
        });
    }
    out
}

fn behaviour_repeats(actor: &ActorDecl) -> bool {
    !contains_stop(&actor.behaviour)
}

fn contains_stop(stmts: &[Stmt]) -> bool {
    stmts.iter().any(|s| match s {
        Stmt::Stop { .. } => true,
        Stmt::For { body, .. } | Stmt::While { body, .. } => contains_stop(body),
        Stmt::If {
            then_blk, else_blk, ..
        } => contains_stop(then_blk) || contains_stop(else_blk),
        _ => false,
    })
}

fn elem_is_mov(model: &Model<'_>, ty: &TypeExpr) -> bool {
    match ty {
        TypeExpr::Named(n) => model.structs.get(n.as_str()).is_some_and(|s| s.any_mov),
        _ => false,
    }
}

impl<'m> Walker<'m> {
    fn stmt(&mut self, s: &Stmt, events: &mut Vec<Ev>) {
        match s {
            Stmt::Declare { name, value, .. } | Stmt::DeclareLocal { name, value, .. } => {
                self.bump(name);
                events.push(Ev::Rebind {
                    var: name.clone(),
                    from: value_sources(value),
                });
                self.bind_value(name, value);
            }
            Stmt::Assign {
                name, path, value, pos,
            } => {
                if path.is_empty() {
                    self.bump(name);
                    events.push(Ev::Rebind {
                        var: name.clone(),
                        from: value_sources(value),
                    });
                    self.bind_value(name, value);
                } else {
                    // An in-place update: any settings construction the
                    // variable held no longer describes its values.
                    self.settings_fields.remove(name);
                    events.push(Ev::Mutate {
                        var: name.clone(),
                        span: *pos,
                    });
                }
            }
            Stmt::Send { value, chan, pos } => self.send(value, chan, *pos, events),
            Stmt::Receive { name, chan, pos } => {
                self.bump(name);
                self.settings_fields.remove(name);
                events.push(Ev::Rebind {
                    var: name.clone(),
                    from: Vec::new(),
                });
                let mov = self.chan_in_mov(chan);
                events.push(Ev::Readback { mov, span: *pos });
                self.kinds.insert(name.clone(), VKind::Payload { mov });
                self.binds.insert(name.clone(), Vec::new());
                self.consts.remove(name);
            }
            Stmt::For {
                var,
                from,
                to,
                body,
                ..
            } => {
                let iterations = match (self.const_eval(from), self.const_eval(to)) {
                    (Some(a), Some(b)) if b >= a => Some(b - a + 1),
                    _ => None,
                };
                self.bump(var);
                events.push(Ev::Rebind {
                    var: var.clone(),
                    from: Vec::new(),
                });
                self.consts.remove(var);
                self.kinds.insert(var.clone(), VKind::Other);
                let mut inner = Vec::new();
                for st in body {
                    self.stmt(st, &mut inner);
                }
                events.push(Ev::Loop {
                    iterations,
                    body: inner,
                });
            }
            Stmt::While { body, .. } => {
                let mut inner = Vec::new();
                for st in body {
                    self.stmt(st, &mut inner);
                }
                events.push(Ev::Loop {
                    iterations: None,
                    body: inner,
                });
            }
            Stmt::If {
                then_blk, else_blk, ..
            } => {
                // Walk both branches; mutations survive (they *may*
                // happen), rebinds do not (they may not), and every
                // channel operation — wherever it sits, including
                // inside a nested loop — becomes an opaque barrier at
                // its original position (we cannot order conditional
                // dispatches, and a conditional loop must never
                // contribute a looping chain).
                for blk in [then_blk, else_blk] {
                    let mut inner = Vec::new();
                    for st in blk {
                        self.stmt(st, &mut inner);
                    }
                    scrub_conditional(inner, events);
                }
            }
            Stmt::Connect { .. }
            | Stmt::Print { .. }
            | Stmt::Barrier { .. }
            | Stmt::Stop { .. } => {}
        }
    }

    fn send(&mut self, value: &Expr, chan: &Expr, span: Span, events: &mut Vec<Ev>) {
        let port = match chan {
            Expr::Path(root, segs, _) if segs.is_empty() => Some(root.as_str()),
            _ => None,
        };
        let settings = match value {
            Expr::NewStruct { name, args, .. }
                if self
                    .model
                    .structs
                    .get(name.as_str())
                    .is_some_and(|s| s.opencl) =>
            {
                Some(self.settings_keys(name, args))
            }
            Expr::Path(root, segs, _)
                if segs.is_empty() && self.kinds.get(root.as_str()) == Some(&VKind::Settings) =>
            {
                Some(
                    self.settings_fields
                        .get(root.as_str())
                        .cloned()
                        .unwrap_or_default(),
                )
            }
            _ => None,
        };
        if let Some(fields) = settings {
            let kernel = port.and_then(|p| self.port_to_kernel.get(p).cloned());
            events.push(Ev::Enqueue {
                kernel,
                fields,
                span,
            });
            return;
        }
        if let Expr::Path(root, segs, _) = value {
            if segs.is_empty() {
                if let Some(VKind::Payload { mov }) = self.kinds.get(root.as_str()).cloned() {
                    events.push(Ev::PayloadSend {
                        var: root.clone(),
                        aliases: self.alias_closure(root),
                        mov,
                        span,
                    });
                }
            }
        }
    }

    /// Element-type movability of the channel being received from.
    fn chan_in_mov(&self, chan: &Expr) -> bool {
        if let Expr::Path(root, segs, _) = chan {
            if segs.is_empty() {
                if let Some(&m) = self.port_in_mov.get(root.as_str()) {
                    return m;
                }
                if let Some(VKind::EndpointIn { mov }) = self.kinds.get(root.as_str()) {
                    return *mov;
                }
            }
        }
        false
    }

    fn bind_value(&mut self, name: &str, value: &Expr) {
        self.consts.remove(name);
        self.settings_fields.remove(name);
        self.binds.insert(name.to_string(), Vec::new());
        let kind = match value {
            Expr::Int(v, _) => {
                self.consts.insert(name.to_string(), *v);
                VKind::Other
            }
            Expr::NewStruct { name: ty, args, .. } => {
                let sm = self.model.structs.get(ty.as_str());
                let arg_vars: Vec<String> = args
                    .iter()
                    .filter_map(|a| match a {
                        Expr::Path(r, segs, _) if segs.is_empty() => Some(r.clone()),
                        _ => None,
                    })
                    .collect();
                for v in &arg_vars {
                    self.binds.entry(v.clone()).or_default().push(name.to_string());
                }
                self.binds.insert(name.to_string(), arg_vars);
                match sm {
                    Some(s) if s.opencl => {
                        let keys = self.settings_keys(ty, args);
                        self.settings_fields.insert(name.to_string(), keys);
                        VKind::Settings
                    }
                    Some(s) => VKind::Payload { mov: s.any_mov },
                    None => VKind::Other,
                }
            }
            Expr::NewArray { .. } | Expr::Call(..) => VKind::Payload { mov: false },
            Expr::NewChanIn(ty, _) => VKind::EndpointIn {
                mov: elem_is_mov(self.model, ty),
            },
            Expr::NewChanOut(..) | Expr::NewActor { .. } => VKind::Other,
            Expr::Path(src, segs, _) if segs.is_empty() => {
                if let Some(v) = self.consts.get(src.as_str()).copied() {
                    self.consts.insert(name.to_string(), v);
                }
                if let Some(keys) = self.settings_fields.get(src.as_str()).cloned() {
                    self.settings_fields.insert(name.to_string(), keys);
                }
                self.binds
                    .entry(src.clone())
                    .or_default()
                    .push(name.to_string());
                self.binds.insert(name.to_string(), vec![src.clone()]);
                self.kinds
                    .get(src.as_str())
                    .cloned()
                    .unwrap_or(VKind::Other)
            }
            e => {
                if let Some(v) = self.const_eval(e) {
                    self.consts.insert(name.to_string(), v);
                }
                VKind::Other
            }
        };
        self.kinds.insert(name.to_string(), kind);
    }

    /// Bump `name`'s binding generation: the variable now holds a value
    /// unrelated (for equality purposes) to its previous one.
    fn bump(&mut self, name: &str) {
        *self.gen.entry(name.to_string()).or_insert(0) += 1;
    }

    /// Equality key for a settings constructor argument: two arguments
    /// with the same key provably carry the same value (a constant, or
    /// a read of one variable binding). `None` when equality cannot be
    /// shown.
    fn value_key(&self, e: &Expr) -> Option<String> {
        if let Some(v) = self.const_eval(e) {
            return Some(format!("c{v}"));
        }
        match e {
            Expr::Path(root, segs, _) if segs.is_empty() => Some(format!(
                "v{root}@{}",
                self.gen.get(root.as_str()).copied().unwrap_or(0)
            )),
            _ => None,
        }
    }

    /// Provable per-field value keys of a settings construction,
    /// restricted to fields whose value the walker can pin. Scalar
    /// fields are copied by value at construction, so the keys remain
    /// valid for every later send of the constructed variable.
    fn settings_keys(&self, ty: &str, args: &[Expr]) -> BTreeMap<String, String> {
        let mut out = BTreeMap::new();
        if let Some(sm) = self.model.structs.get(ty) {
            for (field, arg) in sm.fields.iter().zip(args) {
                if let Some(key) = self.value_key(arg) {
                    out.insert(field.name.clone(), key);
                }
            }
        }
        out
    }

    /// Transitive storage-sharing closure of `var` at this point.
    fn alias_closure(&self, var: &str) -> Vec<String> {
        let mut seen: Vec<String> = vec![var.to_string()];
        let mut stack = vec![var.to_string()];
        while let Some(v) = stack.pop() {
            if let Some(next) = self.binds.get(&v) {
                for n in next {
                    if !seen.contains(n) {
                        seen.push(n.clone());
                        stack.push(n.clone());
                    }
                }
            }
        }
        seen
    }

    fn const_eval(&self, e: &Expr) -> Option<i64> {
        use ensemble_lang::ast::BinOp;
        match e {
            Expr::Int(v, _) => Some(*v),
            Expr::Neg(inner, _) => self.const_eval(inner).map(|v| -v),
            Expr::Path(root, segs, _) if segs.is_empty() => self.consts.get(root.as_str()).copied(),
            Expr::Binary(op, l, r, _) => {
                let (a, b) = (self.const_eval(l)?, self.const_eval(r)?);
                match op {
                    BinOp::Add => Some(a + b),
                    BinOp::Sub => Some(a - b),
                    BinOp::Mul => Some(a * b),
                    BinOp::Div if b != 0 => Some(a / b),
                    BinOp::Rem if b != 0 => Some(a % b),
                    _ => None,
                }
            }
            _ => None,
        }
    }
}

/// Variables whose storage a newly-bound value shares: a plain variable
/// copy aliases its source, a struct construction aliases its captured
/// arguments; everything else is fresh.
fn value_sources(value: &Expr) -> Vec<String> {
    match value {
        Expr::Path(root, segs, _) if segs.is_empty() => vec![root.clone()],
        Expr::NewStruct { args, .. } => args
            .iter()
            .filter_map(|a| match a {
                Expr::Path(r, segs, _) if segs.is_empty() => Some(r.clone()),
                _ => None,
            })
            .collect(),
        _ => Vec::new(),
    }
}

/// Flatten the walked events of a conditional branch into `out`:
/// mutations survive (they *may* happen), rebinds are dropped (they may
/// not happen), and every channel operation — at this level or inside a
/// nested loop — is replaced by an [`Ev::Opaque`] barrier at its
/// original position. Loop structure never escapes a conditional, so a
/// conditional loop can never be claimed as a looping chain.
fn scrub_conditional(inner: Vec<Ev>, out: &mut Vec<Ev>) {
    for ev in inner {
        match ev {
            Ev::Mutate { .. } => out.push(ev),
            Ev::Rebind { .. } => {}
            Ev::Loop { body, .. } => scrub_conditional(body, out),
            Ev::Enqueue { span, .. }
            | Ev::PayloadSend { span, .. }
            | Ev::Readback { span, .. }
            | Ev::Opaque { span } => out.push(Ev::Opaque { span }),
        }
    }
}

// ---- chain extraction -------------------------------------------------

/// One enqueue site of a chain.
struct Site {
    kernel: String,
    span: Span,
    /// Settings field value-equality keys at this enqueue.
    fields: BTreeMap<String, String>,
}

struct RawChain {
    sites: Vec<Site>,
    loops: bool,
    iterations: Option<i64>,
    barrier: Option<String>,
}

fn extract_chains(events: &[Ev]) -> Vec<RawChain> {
    let mut chains = Vec::new();
    let mut sent = Vec::new();
    let (open, _) = scan_level(events, &mut chains, &mut sent);
    if !open.sites.is_empty() {
        chains.push(RawChain {
            barrier: Some("end of behaviour".to_string()),
            ..open
        });
    }
    chains
}

/// Scan one nesting level. Returns the still-open chain at the end of
/// the level plus a *clean* verdict: true only when no fusion barrier
/// occurred anywhere in the level (at any nesting depth, with or
/// without a pending chain) and no chain was closed. Clean is exactly
/// the precondition for the enclosing loop to claim a wrap-around
/// chain — iteration `n`'s last dispatch really is followed
/// immediately by iteration `n+1`'s first.
///
/// `sent` is shared across nesting levels so a payload sent anywhere
/// marks later mutations of its aliases as barriers in execution
/// order, not just within one lexical level.
fn scan_level(
    events: &[Ev],
    chains: &mut Vec<RawChain>,
    sent: &mut Vec<String>,
) -> (RawChain, bool) {
    let chains_at_entry = chains.len();
    let mut saw_barrier = false;
    let mut cur = RawChain {
        sites: Vec::new(),
        loops: false,
        iterations: None,
        barrier: None,
    };
    let close = |cur: &mut RawChain, chains: &mut Vec<RawChain>, reason: &str| {
        if !cur.sites.is_empty() {
            chains.push(RawChain {
                sites: std::mem::take(&mut cur.sites),
                loops: false,
                iterations: None,
                barrier: Some(reason.to_string()),
            });
        }
    };
    for ev in events {
        match ev {
            Ev::Enqueue {
                kernel: Some(k),
                fields,
                span,
            } => cur.sites.push(Site {
                kernel: k.clone(),
                span: *span,
                fields: fields.clone(),
            }),
            Ev::Enqueue { kernel: None, .. } => {
                saw_barrier = true;
                close(&mut cur, chains, "un-routable dispatch");
            }
            Ev::Readback { mov: false, .. } => {
                saw_barrier = true;
                close(&mut cur, chains, "readback receive");
            }
            Ev::Readback { mov: true, .. } => {}
            Ev::Opaque { .. } => {
                saw_barrier = true;
                close(&mut cur, chains, "conditional channel operation");
            }
            Ev::PayloadSend { var, aliases, .. } => {
                sent.push(var.clone());
                sent.extend(aliases.iter().cloned());
            }
            Ev::Mutate { var, .. } if sent.contains(var) => {
                saw_barrier = true;
                close(&mut cur, chains, "host mutation of a sent payload");
            }
            Ev::Mutate { .. } => {}
            Ev::Rebind { var, from } => {
                // `y = x` after `send x` re-aliases the sent storage;
                // only a rebind to unrelated storage retires the name.
                if from.iter().any(|s| sent.contains(s)) {
                    if !sent.contains(var) {
                        sent.push(var.clone());
                    }
                } else {
                    sent.retain(|s| s != var);
                }
            }
            Ev::Loop { iterations, body } => {
                close(&mut cur, chains, "loop boundary");
                let (inner, first_clean) = scan_level(body, chains, sent);
                // A wrap-around chain additionally needs a second pass
                // with the body's own payload sends already in `sent`:
                // a mutation lexically *before* its send executes after
                // it on the next iteration, across the back-edge.
                let wrap_clean = first_clean && {
                    let mut scratch = Vec::new();
                    scan_level(body, &mut scratch, sent).1
                };
                if !wrap_clean {
                    // A barrier inside the nested loop also separates
                    // this level's dispatches across *its* enclosing
                    // back-edge.
                    saw_barrier = true;
                }
                if !inner.sites.is_empty() {
                    if wrap_clean {
                        // No barrier anywhere in the loop body and no
                        // chain closed mid-body: the last dispatch of
                        // iteration n feeds iteration n+1's first — one
                        // looping chain.
                        chains.push(RawChain {
                            sites: inner.sites,
                            loops: true,
                            iterations: *iterations,
                            barrier: None,
                        });
                    } else {
                        chains.push(RawChain {
                            sites: inner.sites,
                            loops: false,
                            iterations: None,
                            barrier: Some("loop body barrier".to_string()),
                        });
                    }
                }
            }
        }
    }
    let clean = !saw_barrier && chains.len() == chains_at_entry;
    (cur, clean)
}

// ---- hazard analysis --------------------------------------------------

/// Compute fusion proofs and W004 diagnostics for every walked host.
pub(crate) fn prove(
    hosts: &[HostEvents],
    kernels: &HashMap<String, KernelInfo<'_>>,
) -> (Vec<FusionProof>, BTreeMap<String, ChainRole>, Vec<Diagnostic>) {
    let mut proofs = Vec::new();
    let mut roles: BTreeMap<String, ChainRole> = BTreeMap::new();
    let mut diags = Vec::new();
    for host in hosts {
        for raw in extract_chains(&host.events) {
            let mut pairs = Vec::new();
            let n = raw.sites.len();
            let worth_merging = n >= 2 || raw.loops;
            if worth_merging {
                let mut pair_list: Vec<(usize, usize, bool)> = (0..n.saturating_sub(1))
                    .map(|i| (i, i + 1, false))
                    .collect();
                if raw.loops {
                    pair_list.push((n - 1, 0, true));
                }
                for (i, j, wrap) in pair_list {
                    let from = &raw.sites[i];
                    let to = &raw.sites[j];
                    let p = check_pair(from, to, wrap, kernels);
                    if !p.mergeable {
                        let (hz, buf) = match &p.hazard {
                            Some((h, b)) => (h.as_str(), format!("`{b}`")),
                            None => ("data", "shared state".to_string()),
                        };
                        diags.push(
                            Diagnostic::warning(
                                codes::FUSION_HAZARD,
                                to.span,
                                format!(
                                    "dispatch of `{}` cannot be merged with the preceding \
                                     dispatch of `{}`{}: {hz} hazard on {buf} — {}",
                                    to.kernel,
                                    from.kernel,
                                    if wrap { " (next iteration)" } else { "" },
                                    p.detail
                                ),
                            )
                            .with_help(
                                "the chain is still batchable in-order; merging would \
                                 interleave the two work-item sets"
                                    .to_string(),
                            ),
                        );
                    }
                    pairs.push(p);
                }
                for (idx, site) in raw.sites.iter().enumerate() {
                    let mergeable_with_prev = if idx > 0 {
                        pairs[idx - 1].mergeable
                    } else if raw.loops {
                        pairs.last().map(|p| p.mergeable).unwrap_or(true)
                    } else {
                        true
                    };
                    roles.entry(site.kernel.clone()).or_insert_with(|| ChainRole {
                        host: host.actor.clone(),
                        len: n,
                        index: idx,
                        mergeable_with_prev,
                        loops: raw.loops,
                    });
                }
            }
            proofs.push(FusionProof {
                host: host.actor.clone(),
                sites: raw.sites.iter().map(|s| s.kernel.clone()).collect(),
                loops: raw.loops,
                iterations: raw.iterations,
                barrier: raw.barrier,
                pairs,
            });
        }
    }
    (proofs, roles, diags)
}

fn check_pair(
    from_site: &Site,
    to_site: &Site,
    wrap: bool,
    kernels: &HashMap<String, KernelInfo<'_>>,
) -> PairProof {
    let (from, to) = (from_site.kernel.as_str(), to_site.kernel.as_str());
    let (Some(a), Some(b)) = (kernels.get(from), kernels.get(to)) else {
        return PairProof {
            from: from.to_string(),
            to: to.to_string(),
            mergeable: false,
            hazard: None,
            detail: "kernel not modelled".to_string(),
        };
    };
    if a.data_ty != b.data_ty {
        return PairProof {
            from: from.to_string(),
            to: to.to_string(),
            mergeable: false,
            hazard: None,
            detail: "distinct data types — aliasing unknown".to_string(),
        };
    }
    // A settings scalar unifies across the two dispatches only when the
    // walker proved both enqueues were fed the same value for it (the
    // same constant or the same variable binding) — same-named fields
    // can otherwise carry different values. Across the loop back-edge
    // the settings are re-sent with potentially fresh values, so
    // nothing unifies (only buffer lengths).
    let shared_scalars: std::collections::BTreeSet<&str> = if wrap {
        Default::default()
    } else {
        from_site
            .fields
            .iter()
            .filter(|(f, key)| to_site.fields.get(*f) == Some(key))
            .map(|(f, _)| f.as_str())
            .collect()
    };
    let fields: Vec<String> = {
        let mut f: Vec<String> = Vec::new();
        for acc in a.check.accesses.iter().chain(&b.check.accesses) {
            if let Target::Global(name) = &acc.target {
                if !f.contains(name) {
                    f.push(name.clone());
                }
            }
        }
        f
    };
    let mut hazard: Option<(Hazard, String, String)> = None;
    for field in &fields {
        let t = Target::Global(field.clone());
        let wa: Vec<&Access> = a
            .check
            .accesses
            .iter()
            .filter(|x| x.is_write && x.target == t)
            .collect();
        let ra: Vec<&Access> = a
            .check
            .accesses
            .iter()
            .filter(|x| !x.is_write && x.target == t)
            .collect();
        let wb: Vec<&Access> = b
            .check
            .accesses
            .iter()
            .filter(|x| x.is_write && x.target == t)
            .collect();
        let rb: Vec<&Access> = b
            .check
            .accesses
            .iter()
            .filter(|x| !x.is_write && x.target == t)
            .collect();
        // Report priority when several hazards coexist: RAW > WAW > WAR.
        let rank = |h: Hazard| match h {
            Hazard::Raw => 0u8,
            Hazard::Waw => 1,
            Hazard::War => 2,
        };
        let consider = |hz: Hazard,
                            xs: &[&Access],
                            ys: &[&Access],
                            hazard: &mut Option<(Hazard, String, String)>| {
            if hazard.as_ref().is_some_and(|(h, _, _)| rank(*h) <= rank(hz)) {
                return; // already found an equal-or-higher-priority hazard
            }
            for x in xs {
                for y in ys {
                    if !cross_disjoint(a.check, x, b.check, y, &shared_scalars) {
                        let detail = format!(
                            "`{}` ({from}) vs `{}` ({to})",
                            a.check.render_access(x),
                            b.check.render_access(y)
                        );
                        *hazard = Some((hz, field.clone(), detail));
                        return;
                    }
                }
            }
        };
        consider(Hazard::Raw, &wa, &rb, &mut hazard);
        consider(Hazard::Waw, &wa, &wb, &mut hazard);
        consider(Hazard::War, &ra, &wb, &mut hazard);
    }
    match hazard {
        Some((hz, field, detail)) => PairProof {
            from: from.to_string(),
            to: to.to_string(),
            mergeable: false,
            hazard: Some((hz, field)),
            detail,
        },
        None => PairProof {
            from: from.to_string(),
            to: to.to_string(),
            mergeable: true,
            hazard: None,
            detail: "no overlapping accesses on any shared buffer".to_string(),
        },
    }
}

/// Cross-dispatch disjointness: are the two accesses' location sets
/// provably non-overlapping for *every* pair of work-items, one from
/// each dispatch? Uniform symbols unify when they denote the same
/// quantity in both dispatches (`lengthof` lengths always; settings
/// scalars only when named in `shared_scalars`, i.e. both dispatches
/// provably received the same value); everything else ranges
/// independently over its own dispatch's interval.
fn cross_disjoint(
    ca: &KernelCheck,
    a: &Access,
    cb: &KernelCheck,
    b: &Access,
    shared_scalars: &std::collections::BTreeSet<&str>,
) -> bool {
    for (x, y) in a.idxs.iter().zip(&b.idxs) {
        let (Some(x), Some(y)) = (x, y) else { continue };
        // Difference y − x with shared uniforms cancelling.
        let shared_key = |check: &KernelCheck, s: Sym| -> Option<String> {
            match s {
                Sym::DimLen(id) => check.names.get(id as usize).map(|n| format!("L:{n}")),
                Sym::Scalar(id) => check
                    .names
                    .get(id as usize)
                    .map(|n| n.strip_prefix("s:").unwrap_or(n))
                    .filter(|n| shared_scalars.contains(n))
                    .map(|n| format!("S:{n}")),
                _ => None,
            }
        };
        let mut shared: BTreeMap<String, (i64, Option<i64>, Option<i64>)> = BTreeMap::new();
        let (mut lo, mut hi) = (Some(y.k - x.k), Some(y.k - x.k));
        let add = |acc: Option<i64>, v: Option<i64>| -> Option<i64> { Some(acc? + v?) };
        let side = |check: &KernelCheck,
                        af: &crate::kernel::Affine,
                        sign: i64,
                        shared: &mut BTreeMap<String, (i64, Option<i64>, Option<i64>)>,
                        lo: &mut Option<i64>,
                        hi: &mut Option<i64>| {
            for (&s, &c) in &af.terms {
                let c = sign * c;
                if let Some(key) = shared_key(check, s) {
                    let (slo, shi) = check.sym_range(s);
                    let e = shared.entry(key).or_insert((0, slo, shi));
                    e.0 += c;
                    continue;
                }
                let (slo, shi) = check.sym_range(s);
                let (a1, b1) = if c > 0 { (slo, shi) } else { (shi, slo) };
                *lo = add(*lo, a1.map(|v| c * v));
                *hi = add(*hi, b1.map(|v| c * v));
            }
        };
        side(cb, y, 1, &mut shared, &mut lo, &mut hi);
        side(ca, x, -1, &mut shared, &mut lo, &mut hi);
        for (_, (c, slo, shi)) in shared {
            if c == 0 {
                continue;
            }
            let (a1, b1) = if c > 0 { (slo, shi) } else { (shi, slo) };
            lo = add(lo, a1.map(|v| c * v));
            hi = add(hi, b1.map(|v| c * v));
        }
        if matches!(lo, Some(v) if v > 0) || matches!(hi, Some(v) if v < 0) {
            return true;
        }
    }
    false
}

/// Build the per-kernel info map the pair checker consumes.
pub(crate) fn kernel_infos<'a>(
    model: &Model<'_>,
    checks: &'a [KernelCheck],
) -> HashMap<String, KernelInfo<'a>> {
    let mut out = HashMap::new();
    for (k, check) in model.kernels.iter().zip(checks) {
        let data_ty = match &k.data {
            DataModel::Struct(s) => Some(s.to_string()),
            DataModel::Array { .. } => None,
        };
        out.insert(
            k.actor.name.clone(),
            KernelInfo {
                data_ty,
                check,
            },
        );
    }
    out
}
