//! Host-side abstract interpretation: `mov` linearity (E004), channel
//! wiring (E005/E007/W001), rendezvous deadlock cycles (E006), and the
//! routing of `settings` constructions and data dimensions to kernel
//! actors so the kernel checks know worksizes and buffer extents.
//!
//! The walk mirrors `compile.rs` semantics where they matter for
//! correctness of the `mov` check (branches are walked in sequence, a
//! reassignment revives a moved variable) and is conservative
//! everywhere else: loop bodies are walked after invalidating every
//! variable they assign, and walked *twice* so a `send` in iteration
//! `n` is seen by a use in iteration `n+1` (diagnostics are deduplicated
//! globally, so the second pass adds no noise).

use ensemble_lang::ast::{ActorDecl, Dir, Expr, PathSeg, Port, Stmt, TypeExpr};
use ensemble_lang::diag::{codes, Diagnostic};
use ensemble_lang::token::Span;
use std::collections::HashMap;

use crate::model::Model;

/// Abstract value of a host variable.
#[derive(Debug, Clone)]
pub enum Abs {
    /// A known integer constant.
    Int(i64),
    /// An array with (possibly) known dims and integer fill value.
    Arr {
        /// Extent per dimension (`None` = unknown).
        dims: Vec<Option<i64>>,
        /// Constant integer fill, for `new integer[n] of v`.
        fill: Option<i64>,
    },
    /// A struct construction of the named type.
    StructV(String),
    /// A kernel `settings` construction.
    Settings(SettingsCon),
    /// A dynamic channel endpoint (id into the walker's endpoint table).
    Endpoint(usize),
    /// A boot-block actor instance of the named actor type.
    Instance(String),
    /// Anything else.
    Unknown,
}

/// What we saw flow into a `new <opencl-struct>(...)` construction.
#[derive(Debug, Clone)]
pub struct SettingsCon {
    /// Worksize `(declared len, fill extent)` when visible.
    pub ws: (Option<i64>, Option<i64>),
    /// Groupsize `(declared len, fill extent)` when visible.
    pub gs: (Option<i64>, Option<i64>),
    /// Endpoint id passed as the `in` channel field, when it was a
    /// dynamic endpoint variable.
    pub in_ep: Option<usize>,
}

/// A dynamic channel endpoint created by `new in T` / `new out T`.
pub struct Endpoint {
    /// Variable the endpoint was first bound to (for messages).
    pub name: String,
    /// Direction.
    pub dir: Dir,
    /// Element type.
    pub elem: TypeExpr,
    /// Declaration site.
    pub span: Span,
    /// Appeared in a `connect`.
    pub connected: bool,
    /// Appeared in a `send`/`receive` or as a settings channel field.
    pub used: bool,
    /// Static `out` ports wired into this endpoint (`connect port to ep`).
    pub fed_by_ports: Vec<String>,
}

/// Which channel a send targeted.
#[derive(Debug, Clone, PartialEq)]
pub enum ChanRef {
    /// A static interface port of the walking actor.
    Port(String),
    /// A dynamic endpoint (id into the summary's endpoint table).
    Ep(usize),
}

/// Everything one actor walk produced.
#[derive(Default)]
pub struct ActorSummary {
    /// Dynamic endpoints created during the walk.
    pub endpoints: Vec<Endpoint>,
    /// Settings constructions sent on static out ports: `(port, con)`.
    pub settings_sent: Vec<(String, SettingsCon)>,
    /// Bare arrays sent on channels: `(chan, dims)`.
    pub array_sends: Vec<(ChanRef, Vec<Option<i64>>)>,
    /// Static ports this actor sends/receives on.
    pub ports_used: Vec<String>,
    /// Static ports appearing in an intra-actor `connect`.
    pub ports_connected: Vec<String>,
    /// First static-port channel operation: `(is_receive, port, span)`.
    pub first_op: Option<(bool, String, Span)>,
}

/// Struct constructions observed anywhere: type → per-construction
/// per-field dims (`None` = field is not an array / dims unknown).
pub type StructCons = HashMap<String, Vec<Vec<Option<Vec<Option<i64>>>>>>;

/// A boot-block `connect a.p to b.q` edge: `((a, p), (b, q), span)`.
pub type BootEdge = ((String, String), (String, String), Span);

/// Boot-block facts.
#[derive(Default)]
pub struct BootInfo {
    /// Instance variable → actor type.
    pub instances: Vec<(String, String)>,
    /// `connect a.p to b.q` edges.
    pub edges: Vec<BootEdge>,
    /// Instance ports wired to a boot-created dynamic endpoint
    /// (`connect k to m.start`): `(instance, port)`.
    pub wired_ports: Vec<(String, String)>,
}

struct VarInfo {
    abs: Abs,
    /// `Some(ty)` when the value is (a handle to) a `mov` struct.
    mov_ty: Option<String>,
    /// `Some(send span)` while the value is moved away.
    moved: Option<Span>,
}

/// The per-actor abstract interpreter.
pub struct HostWalk<'m> {
    model: &'m Model<'m>,
    ports: &'m [Port],
    in_boot: bool,
    scopes: Vec<HashMap<String, VarInfo>>,
    pub summary: ActorSummary,
    pub boot: BootInfo,
    pub struct_cons: StructCons,
    pub diags: Vec<Diagnostic>,
}

impl<'m> HostWalk<'m> {
    /// Walker for an actor body (`ports` = its interface).
    pub fn new(model: &'m Model<'m>, ports: &'m [Port], in_boot: bool) -> HostWalk<'m> {
        HostWalk {
            model,
            ports,
            in_boot,
            scopes: vec![HashMap::new()],
            summary: ActorSummary::default(),
            boot: BootInfo::default(),
            struct_cons: StructCons::new(),
            diags: Vec::new(),
        }
    }

    /// Walk a whole body (constructor + behaviour, in order).
    pub fn walk(&mut self, actor: &ActorDecl) {
        for (name, value) in &actor.fields {
            let v = self.eval(value);
            self.bind(name, v);
        }
        for s in &actor.constructor {
            self.stmt(s);
        }
        for s in &actor.behaviour {
            self.stmt(s);
        }
    }

    /// Walk the boot block.
    pub fn walk_boot(&mut self, stmts: &[Stmt]) {
        for s in stmts {
            self.stmt(s);
        }
    }

    fn bind(&mut self, name: &str, abs: Abs) {
        let mov_ty = self.mov_ty_of(&abs);
        self.scopes.last_mut().expect("scope stack").insert(
            name.to_string(),
            VarInfo {
                abs,
                mov_ty,
                moved: None,
            },
        );
    }

    fn mov_ty_of(&self, abs: &Abs) -> Option<String> {
        if let Abs::StructV(ty) = abs {
            if self.model.structs.get(ty.as_str()).is_some_and(|s| s.any_mov) {
                return Some(ty.clone());
            }
        }
        None
    }

    fn var_mut(&mut self, name: &str) -> Option<&mut VarInfo> {
        self.scopes.iter_mut().rev().find_map(|s| s.get_mut(name))
    }

    fn var(&self, name: &str) -> Option<&VarInfo> {
        self.scopes.iter().rev().find_map(|s| s.get(name))
    }

    fn port(&self, name: &str) -> Option<&'m Port> {
        self.ports.iter().find(|p| p.name == name)
    }

    fn push_diag(&mut self, d: Diagnostic) {
        // Loop bodies are walked twice; keep one copy of each finding.
        if !self
            .diags
            .iter()
            .any(|x| x.code == d.code && x.span == d.span && x.message == d.message)
        {
            self.diags.push(d);
        }
    }

    /// Flag a use of `name` if it is currently moved away (E004).
    fn check_moved(&mut self, name: &str, span: Span) {
        if let Some(v) = self.var(name) {
            if let (Some(sent), Some(ty)) = (v.moved, v.mov_ty.clone()) {
                self.push_diag(
                    Diagnostic::error(
                        codes::USE_AFTER_MOV,
                        span,
                        format!("`{name}` (mov `{ty}`) is used after being sent away"),
                    )
                    .with_note(sent, format!("`{name}` was moved by this send"))
                    .with_help(format!(
                        "receive a fresh value into `{name}` (or reassign it) before \
                         using it again (§6.2.3)"
                    )),
                );
            }
        }
    }

    // ---- expressions --------------------------------------------------

    fn eval(&mut self, e: &Expr) -> Abs {
        match e {
            Expr::Int(v, _) => Abs::Int(*v),
            Expr::Neg(inner, _) => match self.eval(inner) {
                Abs::Int(v) => Abs::Int(-v),
                _ => Abs::Unknown,
            },
            Expr::Not(inner, _) => {
                self.eval(inner);
                Abs::Unknown
            }
            Expr::Binary(op, l, r, _) => {
                let (a, b) = (self.eval(l), self.eval(r));
                if let (Abs::Int(x), Abs::Int(y)) = (a, b) {
                    use ensemble_lang::ast::BinOp::*;
                    let v = match op {
                        Add => Some(x + y),
                        Sub => Some(x - y),
                        Mul => Some(x * y),
                        Div if y != 0 => Some(x / y),
                        Rem if y != 0 => Some(x % y),
                        _ => None,
                    };
                    return v.map_or(Abs::Unknown, Abs::Int);
                }
                Abs::Unknown
            }
            Expr::Path(root, segs, span) => {
                self.check_moved(root, *span);
                for s in segs {
                    if let PathSeg::Index(ix) = s {
                        self.eval(ix);
                    }
                }
                if segs.is_empty() {
                    return self.var(root).map_or(Abs::Unknown, |v| v.abs.clone());
                }
                Abs::Unknown
            }
            Expr::Call(name, args, _) => {
                let consts: Vec<Abs> = args.iter().map(|a| self.eval(a)).collect();
                let as_int = |i: usize| match consts.get(i) {
                    Some(Abs::Int(v)) => Some(*v),
                    _ => None,
                };
                match name.as_str() {
                    "generate_vector" => Abs::Arr {
                        dims: vec![as_int(0)],
                        fill: None,
                    },
                    "generate_matrix" => Abs::Arr {
                        dims: vec![as_int(0), as_int(1)],
                        fill: None,
                    },
                    "generate_dominant" => Abs::Arr {
                        dims: vec![as_int(0), as_int(0)],
                        fill: None,
                    },
                    _ => Abs::Unknown,
                }
            }
            Expr::NewArray { dims, fill, .. } => {
                let ds: Vec<Option<i64>> = dims
                    .iter()
                    .map(|d| match self.eval(d) {
                        Abs::Int(v) => Some(v),
                        _ => None,
                    })
                    .collect();
                let f = match fill {
                    Some(f) => match self.eval(f) {
                        Abs::Int(v) => Some(v),
                        _ => None,
                    },
                    None => Some(0),
                };
                Abs::Arr { dims: ds, fill: f }
            }
            Expr::NewStruct { name, args, .. } => {
                let vals: Vec<Abs> = args.iter().map(|a| self.eval(a)).collect();
                let is_opencl = self
                    .model
                    .structs
                    .get(name.as_str())
                    .is_some_and(|s| s.opencl);
                if is_opencl && vals.len() >= 4 {
                    let arr_info = |a: &Abs| match a {
                        Abs::Arr { dims, fill } => {
                            (dims.first().copied().flatten(), *fill)
                        }
                        _ => (None, None),
                    };
                    let in_ep = match &vals[2] {
                        Abs::Endpoint(id) => Some(*id),
                        _ => None,
                    };
                    // Channel fields count as uses of their endpoints.
                    for v in &vals[2..4] {
                        if let Abs::Endpoint(id) = v {
                            self.summary.endpoints[*id].used = true;
                        }
                    }
                    return Abs::Settings(SettingsCon {
                        ws: arr_info(&vals[0]),
                        gs: arr_info(&vals[1]),
                        in_ep,
                    });
                }
                // Plain struct: remember per-field dims for the kernel
                // bounds checker.
                let fields: Vec<Option<Vec<Option<i64>>>> = vals
                    .iter()
                    .map(|v| match v {
                        Abs::Arr { dims, .. } => Some(dims.clone()),
                        _ => None,
                    })
                    .collect();
                self.struct_cons.entry(name.clone()).or_default().push(fields);
                Abs::StructV(name.clone())
            }
            Expr::NewActor { name, .. } => Abs::Instance(name.clone()),
            Expr::NewChanIn(ty, span) | Expr::NewChanOut(ty, span) => {
                let dir = match e {
                    Expr::NewChanIn(..) => Dir::In,
                    _ => Dir::Out,
                };
                let id = self.summary.endpoints.len();
                self.summary.endpoints.push(Endpoint {
                    name: String::new(),
                    dir,
                    elem: ty.clone(),
                    span: *span,
                    connected: false,
                    used: false,
                    fed_by_ports: Vec::new(),
                });
                Abs::Endpoint(id)
            }
            _ => Abs::Unknown,
        }
    }

    // ---- channel resolution ------------------------------------------

    /// Resolve a channel expression to a port or endpoint; `None` for
    /// dynamic paths (`req.output`) we do not reason about.
    fn chan_ref(&mut self, chan: &Expr) -> Option<(ChanRef, Dir, TypeExpr)> {
        let Expr::Path(root, segs, span) = chan else {
            return None;
        };
        if !segs.is_empty() {
            return None;
        }
        if let Some(p) = self.port(root) {
            return Some((ChanRef::Port(root.clone()), p.dir, p.ty.clone()));
        }
        self.check_moved(root, *span);
        let ep_id = match self.var(root).map(|v| &v.abs) {
            Some(Abs::Endpoint(id)) => Some(*id),
            _ => None,
        };
        if let Some(id) = ep_id {
            let ep = &mut self.summary.endpoints[id];
            if ep.name.is_empty() {
                root.clone_into(&mut ep.name);
            }
            return Some((ChanRef::Ep(id), ep.dir, ep.elem.clone()));
        }
        None
    }

    fn note_op(&mut self, is_receive: bool, chan: &ChanRef, span: Span) {
        match chan {
            ChanRef::Port(p) => {
                if !self.summary.ports_used.contains(p) {
                    self.summary.ports_used.push(p.clone());
                }
                if self.summary.first_op.is_none() {
                    self.summary.first_op = Some((is_receive, p.clone(), span));
                }
            }
            ChanRef::Ep(id) => self.summary.endpoints[*id].used = true,
        }
    }

    // ---- statements ---------------------------------------------------

    fn stmt(&mut self, s: &Stmt) {
        match s {
            Stmt::Declare { name, value, .. } | Stmt::DeclareLocal { name, value, .. } => {
                let v = self.eval(value);
                self.bind(name, v);
            }
            Stmt::Assign {
                name, path, value, ..
            } => {
                let v = self.eval(value);
                if path.is_empty() {
                    let mov_ty = self.mov_ty_of(&v).or_else(|| {
                        // `d := dnext` — a handle to a mov struct flows over.
                        if let Expr::Path(src, segs, _) = value {
                            if segs.is_empty() {
                                return self.var(src).and_then(|x| x.mov_ty.clone());
                            }
                        }
                        None
                    });
                    if let Some(var) = self.var_mut(name) {
                        var.abs = v;
                        var.mov_ty = mov_ty;
                        var.moved = None; // reassignment revives the binding
                    }
                } else {
                    // Writing into `d.field[...]` still uses `d`.
                    let span = stmt_span(s);
                    self.check_moved(name, span);
                    for seg in path {
                        if let PathSeg::Index(ix) = seg {
                            self.eval(ix);
                        }
                    }
                }
            }
            Stmt::Send { value, chan, pos } => {
                let v = self.eval(value);
                let cref = self.chan_ref(chan);
                if let Some((cref, _, _)) = &cref {
                    self.note_op(false, cref, *pos);
                    match (&v, cref) {
                        (Abs::Settings(con), ChanRef::Port(p)) => {
                            self.summary.settings_sent.push((p.clone(), con.clone()));
                        }
                        (Abs::Arr { dims, .. }, cref) => {
                            self.summary.array_sends.push((cref.clone(), dims.clone()));
                        }
                        _ => {}
                    }
                }
                // Sending a whole mov struct moves it (compile.rs moves
                // exactly when the sent value's static kind is a mov
                // struct — i.e. a bare path to one).
                if let Expr::Path(root, segs, _) = value {
                    if segs.is_empty() {
                        if let Some(var) = self.var_mut(root) {
                            if var.mov_ty.is_some() {
                                var.moved = Some(*pos);
                            }
                        }
                    }
                }
            }
            Stmt::Receive { name, chan, pos } => {
                let cref = self.chan_ref(chan);
                let mut abs = Abs::Unknown;
                let mut mov_ty = None;
                if let Some((cref, _, elem)) = &cref {
                    self.note_op(true, cref, *pos);
                    if let TypeExpr::Named(ty) = elem {
                        if self
                            .model
                            .structs
                            .get(ty.as_str())
                            .is_some_and(|s| s.any_mov)
                        {
                            mov_ty = Some(ty.clone());
                        }
                        abs = Abs::StructV(ty.clone());
                    }
                }
                self.scopes.last_mut().expect("scope stack").insert(
                    name.clone(),
                    VarInfo {
                        abs,
                        mov_ty,
                        moved: None,
                    },
                );
            }
            Stmt::Connect { from, to, pos } => self.connect(from, to, *pos),
            Stmt::For { var, from, to, body, .. } => {
                self.eval(from);
                self.eval(to);
                self.invalidate_assigned(body);
                self.scopes.push(HashMap::new());
                self.bind(var, Abs::Unknown);
                for _ in 0..2 {
                    for st in body {
                        self.stmt(st);
                    }
                }
                self.scopes.pop();
            }
            Stmt::While { cond, body } => {
                self.invalidate_assigned(body);
                self.scopes.push(HashMap::new());
                for _ in 0..2 {
                    self.eval(cond);
                    for st in body {
                        self.stmt(st);
                    }
                }
                self.scopes.pop();
            }
            Stmt::If {
                cond,
                then_blk,
                else_blk,
            } => {
                self.eval(cond);
                // Mirror compile.rs: branches in sequence, no merge.
                self.scopes.push(HashMap::new());
                for st in then_blk {
                    self.stmt(st);
                }
                self.scopes.pop();
                self.scopes.push(HashMap::new());
                for st in else_blk {
                    self.stmt(st);
                }
                self.scopes.pop();
                // Values written in a branch are unknown afterwards.
                self.invalidate_assigned(then_blk);
                self.invalidate_assigned(else_blk);
            }
            Stmt::Print { value, .. } => {
                self.eval(value);
            }
            Stmt::Barrier { .. } | Stmt::Stop { .. } => {}
        }
    }

    fn connect(&mut self, from: &Expr, to: &Expr, span: Span) {
        if self.in_boot {
            self.connect_boot(from, to, span);
            return;
        }
        let f = self.side(from);
        let t = self.side(to);
        let (Some(f), Some(t)) = (f, t) else { return };
        if f.1 != Dir::Out || t.1 != Dir::In {
            self.push_diag(
                Diagnostic::error(
                    codes::PROTOCOL_MISMATCH,
                    span,
                    "`connect` must wire an `out` channel to an `in` channel".to_string(),
                )
                .with_help("swap the operands: `connect <out> to <in>`".to_string()),
            );
            return;
        }
        if f.2 != t.2 {
            self.push_diag(Diagnostic::error(
                codes::PROTOCOL_MISMATCH,
                span,
                format!(
                    "`connect` element types differ: `{}` flows into `{}`",
                    f.2, t.2
                ),
            ));
            return;
        }
        // Track which out-ports feed which in-endpoints (data routing).
        if let (ChanRef::Port(p), ChanRef::Ep(id)) = (&f.0, &t.0) {
            let ep = &mut self.summary.endpoints[*id];
            if !ep.fed_by_ports.contains(p) {
                ep.fed_by_ports.push(p.clone());
            }
        }
    }

    /// One side of an intra-actor connect, marking it connected.
    fn side(&mut self, e: &Expr) -> Option<(ChanRef, Dir, TypeExpr)> {
        let r = self.chan_ref(e)?;
        match &r.0 {
            ChanRef::Port(p) => {
                if !self.summary.ports_connected.contains(p) {
                    self.summary.ports_connected.push(p.clone());
                }
                if !self.summary.ports_used.contains(p) {
                    self.summary.ports_used.push(p.clone());
                }
            }
            ChanRef::Ep(id) => self.summary.endpoints[*id].connected = true,
        }
        Some(r)
    }

    fn connect_boot(&mut self, from: &Expr, to: &Expr, span: Span) {
        let inst_port = |walk: &Self, e: &Expr| -> Option<(String, String)> {
            if let Expr::Path(root, segs, _) = e {
                if let [PathSeg::Field(port)] = segs.as_slice() {
                    if let Some(Abs::Instance(_)) = walk.var(root).map(|v| &v.abs) {
                        return Some((root.clone(), port.clone()));
                    }
                }
            }
            None
        };
        let (fi, ti) = (inst_port(self, from), inst_port(self, to));
        // Mixed sides: a boot-created endpoint wired into an instance
        // port (`connect k to m.start`) or out of one.
        if fi.is_none() || ti.is_none() {
            for (side, inst) in [(from, &fi), (to, &ti)] {
                if let Some((i, p)) = inst {
                    self.boot.wired_ports.push((i.clone(), p.clone()));
                } else if let Some((ChanRef::Ep(id), _, _)) = self.chan_ref(side) {
                    self.summary.endpoints[id].connected = true;
                }
            }
            return;
        }
        let (Some(f), Some(t)) = (fi, ti) else { return };
        // Direction / element type check across the two interfaces.
        let port_of = |walk: &Self, inst: &str, port: &str| -> Option<Port> {
            let ty = walk.var(inst).and_then(|v| match &v.abs {
                Abs::Instance(t) => Some(t.clone()),
                _ => None,
            })?;
            walk.model
                .actor_ports(&ty)?
                .iter()
                .find(|p| p.name == port)
                .cloned()
        };
        if let (Some(fp), Some(tp)) = (port_of(self, &f.0, &f.1), port_of(self, &t.0, &t.1)) {
            if fp.dir != Dir::Out || tp.dir != Dir::In {
                self.push_diag(
                    Diagnostic::error(
                        codes::PROTOCOL_MISMATCH,
                        span,
                        format!(
                            "`connect {}.{} to {}.{}` must wire an `out` port to an `in` port",
                            f.0, f.1, t.0, t.1
                        ),
                    )
                    .with_help("swap the operands: `connect <out> to <in>`".to_string()),
                );
            } else if fp.ty != tp.ty {
                self.push_diag(Diagnostic::error(
                    codes::PROTOCOL_MISMATCH,
                    span,
                    format!(
                        "`connect {}.{} to {}.{}` element types differ: `{}` flows into `{}`",
                        f.0, f.1, t.0, t.1, fp.ty, tp.ty
                    ),
                ));
            }
        }
        self.boot.edges.push((f, t, span));
    }

    fn invalidate_assigned(&mut self, body: &[Stmt]) {
        let mut names = Vec::new();
        collect_assigned(body, &mut names);
        for n in names {
            if let Some(v) = self.var_mut(&n) {
                v.abs = Abs::Unknown;
            }
        }
    }

    /// Record boot instances after the walk (from the final scope).
    pub fn harvest_instances(&mut self) {
        for scope in &self.scopes {
            for (name, v) in scope {
                if let Abs::Instance(ty) = &v.abs {
                    self.boot.instances.push((name.clone(), ty.clone()));
                }
            }
        }
        self.boot.instances.sort();
    }
}

/// Scalar/whole-variable names assigned anywhere under `stmts`.
fn collect_assigned(stmts: &[Stmt], out: &mut Vec<String>) {
    for s in stmts {
        match s {
            Stmt::Assign { name, path, .. } if path.is_empty() && !out.contains(name) => {
                out.push(name.clone());
            }
            Stmt::For { body, .. } | Stmt::While { body, .. } => collect_assigned(body, out),
            Stmt::If {
                then_blk, else_blk, ..
            } => {
                collect_assigned(then_blk, out);
                collect_assigned(else_blk, out);
            }
            _ => {}
        }
    }
}

/// First static-port channel operation in an actor, scanning the
/// constructor then the behaviour in program order (used for the
/// rendezvous-deadlock lint on kernel actors too, whose bodies the
/// abstract interpreter does not walk).
pub fn first_port_op(actor: &ActorDecl, ports: &[Port]) -> Option<(bool, String, Span)> {
    fn scan(stmts: &[Stmt], ports: &[Port]) -> Option<(bool, String, Span)> {
        for s in stmts {
            let hit = match s {
                Stmt::Send { chan, pos, .. } => chan_port(chan, ports).map(|p| (false, p, *pos)),
                Stmt::Receive { chan, pos, .. } => {
                    chan_port(chan, ports).map(|p| (true, p, *pos))
                }
                Stmt::For { body, .. } | Stmt::While { body, .. } => scan(body, ports),
                Stmt::If {
                    then_blk, else_blk, ..
                } => scan(then_blk, ports).or_else(|| scan(else_blk, ports)),
                _ => None,
            };
            if hit.is_some() {
                return hit;
            }
        }
        None
    }
    fn chan_port(chan: &Expr, ports: &[Port]) -> Option<String> {
        if let Expr::Path(root, segs, _) = chan {
            if segs.is_empty() && ports.iter().any(|p| &p.name == root) {
                return Some(root.clone());
            }
        }
        None
    }
    scan(&actor.constructor, ports).or_else(|| scan(&actor.behaviour, ports))
}

/// Whole-module port usage: does any statement of `actor` mention
/// static port `port` as a channel (send/receive/connect)?
pub fn actor_uses_port(actor: &ActorDecl, port: &str) -> bool {
    fn expr_is(e: &Expr, port: &str) -> bool {
        matches!(e, Expr::Path(root, segs, _) if segs.is_empty() && root == port)
    }
    fn scan(stmts: &[Stmt], port: &str) -> bool {
        stmts.iter().any(|s| match s {
            Stmt::Send { chan, .. } | Stmt::Receive { chan, .. } => expr_is(chan, port),
            Stmt::Connect { from, to, .. } => expr_is(from, port) || expr_is(to, port),
            Stmt::For { body, .. } | Stmt::While { body, .. } => scan(body, port),
            Stmt::If {
                then_blk, else_blk, ..
            } => scan(then_blk, port) || scan(else_blk, port),
            _ => false,
        })
    }
    scan(&actor.constructor, port) || scan(&actor.behaviour, port)
}

/// Does any send/receive in `actor` target static port `port`?
/// (Connect-only references do not count: a port can legitimately be
/// wired by the boot block and only ever used from the other side.)
pub fn actor_sends_or_receives(actor: &ActorDecl, port: &str) -> bool {
    fn expr_is(e: &Expr, port: &str) -> bool {
        matches!(e, Expr::Path(root, segs, _) if segs.is_empty() && root == port)
    }
    fn scan(stmts: &[Stmt], port: &str) -> bool {
        stmts.iter().any(|s| match s {
            Stmt::Send { chan, .. } | Stmt::Receive { chan, .. } => expr_is(chan, port),
            Stmt::For { body, .. } | Stmt::While { body, .. } => scan(body, port),
            Stmt::If {
                then_blk, else_blk, ..
            } => scan(then_blk, port) || scan(else_blk, port),
            _ => false,
        })
    }
    scan(&actor.constructor, port) || scan(&actor.behaviour, port)
}

/// Does `actor` mention static port `port` in a `connect`?
pub fn actor_connects_port(actor: &ActorDecl, port: &str) -> bool {
    fn expr_is(e: &Expr, port: &str) -> bool {
        matches!(e, Expr::Path(root, segs, _) if segs.is_empty() && root == port)
    }
    fn scan(stmts: &[Stmt], port: &str) -> bool {
        stmts.iter().any(|s| match s {
            Stmt::Connect { from, to, .. } => expr_is(from, port) || expr_is(to, port),
            Stmt::For { body, .. } | Stmt::While { body, .. } => scan(body, port),
            Stmt::If {
                then_blk, else_blk, ..
            } => scan(then_blk, port) || scan(else_blk, port),
            _ => false,
        })
    }
    scan(&actor.constructor, port) || scan(&actor.behaviour, port)
}

fn stmt_span(s: &Stmt) -> Span {
    match s {
        Stmt::Declare { pos, .. }
        | Stmt::DeclareLocal { pos, .. }
        | Stmt::Assign { pos, .. }
        | Stmt::Send { pos, .. }
        | Stmt::Receive { pos, .. }
        | Stmt::Connect { pos, .. }
        | Stmt::For { pos, .. }
        | Stmt::Print { pos, .. }
        | Stmt::Barrier { pos }
        | Stmt::Stop { pos } => *pos,
        Stmt::While { cond, .. } | Stmt::If { cond, .. } => cond.pos(),
    }
}
