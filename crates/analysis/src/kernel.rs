//! Kernel race (E001/E002) and bounds (E003) checking.
//!
//! Subscript expressions inside a kernel-actor behaviour are lowered to
//! *affine forms* — linear combinations of symbolic quantities
//! ([`Sym`]): work-item ids, group ids/sizes, settings scalars, loop
//! counters. Anything non-linear becomes an opaque symbol, about which
//! we claim nothing.
//!
//! **Race criterion.** A dispatch is race-free when every work-item
//! writes a distinct set of locations. For each written global buffer we
//! require that every *active* worksize dimension `d` (extent possibly
//! `> 1`) is matched by a distinct subscript position whose only
//! per-work-item content is `get_global_id(d)` (or `get_group_id(d)`
//! under a guard pinning `get_local_id(d)` to a constant). Dimensions
//! pinned by an equality guard (`if gid == 0`) are exempt. Distinct
//! writes to the same buffer must be pairwise identical or provably
//! disjoint. Reads of a written buffer (E002) must be the work-item's
//! own slot (syntactically identical subscripts) or provably disjoint
//! from every write: in some position the write−read difference —
//! uniform symbols cancelling, per-item symbols treated as independent —
//! is strictly positive or strictly negative.
//!
//! **Bounds criterion.** Only *provable* violations are flagged: the
//! subscript's maximum over all symbol ranges (worksize extents, loop
//! bounds, `i < bound` guards) meets or exceeds a known array extent, or
//! its minimum is provably negative.
//!
//! Known holes, deliberate for v1: work-group `local` arrays are not
//! race-checked (their cross-item protocols rely on `barrier()` phases
//! we do not model), and injectivity is only sought position-wise (an
//! injective map smeared across subscripts, e.g. `[gid0+gid1][gid1]`,
//! is flagged as a potential race).

use ensemble_lang::ast::{BinOp, Expr, PathSeg, Stmt};
use ensemble_lang::diag::{codes, Diagnostic};
use ensemble_lang::token::Span;
use std::collections::{BTreeMap, HashMap};

/// A symbolic quantity appearing in an affine form.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub enum Sym {
    /// `get_global_id(d)`.
    Gid(u8),
    /// `get_local_id(d)`.
    Lid(u8),
    /// `get_group_id(d)`.
    Grp(u8),
    /// `get_global_size(d)` — uniform.
    GSize(u8),
    /// `get_local_size(d)` — uniform.
    LSize(u8),
    /// `get_num_groups(d)` — uniform.
    NGroups(u8),
    /// A settings scalar (uniform across the dispatch); interned name.
    Scalar(u32),
    /// `lengthof`/dimension length of a buffer (uniform); interned key.
    DimLen(u32),
    /// A `for` loop counter (per-execution, per-item for comparisons).
    Loop(u32),
}

impl Sym {
    /// Uniform symbols have the same value for every work-item of a
    /// dispatch, so they cancel exactly when comparing two items.
    pub(crate) fn is_uniform(self) -> bool {
        matches!(
            self,
            Sym::GSize(_) | Sym::LSize(_) | Sym::NGroups(_) | Sym::Scalar(_) | Sym::DimLen(_)
        )
    }
}

/// An affine form `k + Σ cᵢ·symᵢ` (terms with coefficient 0 are absent).
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Affine {
    /// Symbol coefficients.
    pub terms: BTreeMap<Sym, i64>,
    /// Constant part.
    pub k: i64,
}

impl Affine {
    fn konst(k: i64) -> Affine {
        Affine {
            terms: BTreeMap::new(),
            k,
        }
    }

    fn sym(s: Sym) -> Affine {
        let mut terms = BTreeMap::new();
        terms.insert(s, 1);
        Affine { terms, k: 0 }
    }

    fn add(&self, o: &Affine, sign: i64) -> Affine {
        let mut terms = self.terms.clone();
        for (&s, &c) in &o.terms {
            let e = terms.entry(s).or_insert(0);
            *e += sign * c;
            if *e == 0 {
                terms.remove(&s);
            }
        }
        Affine {
            terms,
            k: self.k + sign * o.k,
        }
    }

    fn scale(&self, c: i64) -> Affine {
        if c == 0 {
            return Affine::konst(0);
        }
        Affine {
            terms: self.terms.iter().map(|(&s, &v)| (s, v * c)).collect(),
            k: self.k * c,
        }
    }

    fn as_const(&self) -> Option<i64> {
        self.terms.is_empty().then_some(self.k)
    }

    /// Substitute pinned symbols with their constant values.
    fn subst(&self, pins: &[(Sym, i64)]) -> Affine {
        let mut out = self.clone();
        for &(s, v) in pins {
            if let Some(c) = out.terms.remove(&s) {
                out.k += c * v;
            }
        }
        out
    }
}

/// Where an access lands.
#[derive(Debug, Clone, PartialEq, Eq)]
pub(crate) enum Target {
    /// A field of the global data (or the bare data array: empty name).
    Global(String),
    /// A `private` or `local` array; payload is (name, declared len).
    Scratch(String, Option<i64>),
}

/// One recorded array access, guards already substituted/attached.
pub(crate) struct Access {
    pub(crate) target: Target,
    pub(crate) is_write: bool,
    /// Affine form per subscript position (`None` = non-affine).
    pub(crate) idxs: Vec<Option<Affine>>,
    /// Strict upper bounds `a < b` in force at this point.
    pub(crate) uppers: Vec<(Affine, Affine)>,
    /// Dimensions whose `get_global_id` was pinned by an equality guard
    /// (only one work-item per slice reaches this access), with the
    /// pinned value.
    pub(crate) gid_pinned: Vec<(usize, i64)>,
    /// Dimensions whose `get_local_id` was pinned (one item per group).
    pub(crate) lid_pinned: Vec<usize>,
    pub(crate) span: Span,
}

/// Facts routed in from the host-side abstract interpretation.
#[derive(Debug, Default, Clone)]
pub struct HostFacts {
    /// Global-size extent per dimension, when the worksize construction
    /// was visible (`new integer[len] of fill` → dims `0..len` with
    /// extent `fill`). `None` entries mean "unknown extent".
    pub extent: [Option<i64>; 3],
    /// `true` when at least one routed worksize was seen (otherwise all
    /// three dimensions are assumed active with unknown extent).
    pub ws_known: bool,
    /// How many worksize dimensions are declared (`len` above).
    pub ws_len: Option<i64>,
    /// Work-group size per dimension, when visible.
    pub lsize: [Option<i64>; 3],
    /// Known extents of the data buffers, by field name (empty name for
    /// the bare-array data shape).
    pub dims: HashMap<String, Vec<Option<i64>>>,
}

impl HostFacts {
    /// Is dimension `d` active (extent possibly > 1)?
    pub(crate) fn active(&self, d: usize) -> bool {
        if !self.ws_known {
            return true; // conservative: everything may vary
        }
        match self.ws_len {
            Some(len) if (d as i64) >= len => false,
            _ => self.extent[d] != Some(1) && self.extent[d] != Some(0),
        }
    }
}

/// Per-kernel checking context.
/// Strict `a < b` constraints plus `sym == k` equality pins from a guard.
type Guards = (Vec<(Affine, Affine)>, Vec<(Sym, i64)>);

pub struct KernelCheck {
    pub(crate) facts: HostFacts,
    pub(crate) kernel_name: String,
    pub(crate) data_name: String,
    data_fields: Vec<String>, // empty => bare-array data
    scalars: Vec<String>,
    req_name: String,
    pub(crate) names: Vec<String>,
    name_ids: HashMap<String, u32>,
    dimlen_vals: Vec<Option<i64>>,
    loops: Vec<(Option<i64>, Option<i64>)>,
    env: Vec<HashMap<String, Option<Affine>>>,
    arrays: Vec<HashMap<String, Option<i64>>>,
    pins: Vec<(Sym, i64)>,
    uppers: Vec<(Affine, Affine)>,
    pub(crate) accesses: Vec<Access>,
}

impl KernelCheck {
    /// Build a checker for one kernel.
    pub fn new(
        kernel_name: &str,
        req_name: &str,
        data_name: &str,
        data_fields: Vec<String>,
        scalars: Vec<String>,
        facts: HostFacts,
    ) -> KernelCheck {
        KernelCheck {
            facts,
            kernel_name: kernel_name.to_string(),
            data_name: data_name.to_string(),
            data_fields,
            scalars,
            req_name: req_name.to_string(),
            names: Vec::new(),
            name_ids: HashMap::new(),
            dimlen_vals: Vec::new(),
            loops: Vec::new(),
            env: vec![HashMap::new()],
            arrays: vec![HashMap::new()],
            pins: Vec::new(),
            uppers: Vec::new(),
            accesses: Vec::new(),
        }
    }

    /// Walk the kernel body, recording every array access with its
    /// guards. Call once; then [`Self::diagnostics`] (and the proof
    /// passes) read the recorded accesses.
    pub fn walk(&mut self, body: &[Stmt]) {
        self.block(body);
    }

    /// The race and bounds findings over the recorded accesses.
    pub fn diagnostics(&self) -> Vec<Diagnostic> {
        let mut diags = self.check_bounds();
        diags.extend(self.check_races());
        diags
    }

    fn intern(&mut self, key: String, dim_val: Option<Option<i64>>) -> u32 {
        if let Some(&id) = self.name_ids.get(&key) {
            return id;
        }
        let id = self.names.len() as u32;
        self.names.push(key.clone());
        self.name_ids.insert(key, id);
        self.dimlen_vals.push(dim_val.unwrap_or(None));
        id
    }

    fn lookup(&self, name: &str) -> Option<Option<Affine>> {
        for scope in self.env.iter().rev() {
            if let Some(v) = scope.get(name) {
                return Some(v.clone());
            }
        }
        None
    }

    fn bind(&mut self, name: &str, v: Option<Affine>) {
        self.env
            .last_mut()
            .expect("scope stack")
            .insert(name.to_string(), v);
    }

    fn assign(&mut self, name: &str, v: Option<Affine>) {
        for scope in self.env.iter_mut().rev() {
            if let Some(slot) = scope.get_mut(name) {
                *slot = v;
                return;
            }
        }
    }

    fn array_len(&self, name: &str) -> Option<Option<i64>> {
        for scope in self.arrays.iter().rev() {
            if let Some(&l) = scope.get(name) {
                return Some(l);
            }
        }
        None
    }

    // ---- expression evaluation (pure) --------------------------------

    /// Affine value of an expression, or `None` when non-affine.
    fn eval(&mut self, e: &Expr) -> Option<Affine> {
        match e {
            Expr::Int(v, _) => Some(Affine::konst(*v)),
            Expr::Neg(inner, _) => self.eval(inner).map(|a| a.scale(-1)),
            Expr::Binary(op, l, r, _) => {
                let (a, b) = (self.eval(l)?, self.eval(r)?);
                match op {
                    BinOp::Add => Some(a.add(&b, 1)),
                    BinOp::Sub => Some(a.add(&b, -1)),
                    BinOp::Mul => {
                        if let Some(c) = a.as_const() {
                            Some(b.scale(c))
                        } else {
                            b.as_const().map(|c| a.scale(c))
                        }
                    }
                    BinOp::Div | BinOp::Rem => match (a.as_const(), b.as_const()) {
                        (Some(x), Some(y)) if y != 0 => Some(Affine::konst(match op {
                            BinOp::Div => x / y,
                            _ => x % y,
                        })),
                        _ => None,
                    },
                    _ => None,
                }
            }
            Expr::Call(name, args, _) => {
                let dim = || -> u8 {
                    match args.first() {
                        Some(Expr::Int(d, _)) if (0..3).contains(d) => *d as u8,
                        _ => 0,
                    }
                };
                match name.as_str() {
                    "get_global_id" => Some(Affine::sym(Sym::Gid(dim()))),
                    "get_local_id" => Some(Affine::sym(Sym::Lid(dim()))),
                    "get_group_id" => Some(Affine::sym(Sym::Grp(dim()))),
                    "get_global_size" => Some(Affine::sym(Sym::GSize(dim()))),
                    "get_local_size" => Some(Affine::sym(Sym::LSize(dim()))),
                    "get_num_groups" => Some(Affine::sym(Sym::NGroups(dim()))),
                    "lengthof" => {
                        let key = self.lengthof_key(args.first()?)?;
                        let id = self.intern(key.0, Some(key.1));
                        Some(Affine::sym(Sym::DimLen(id)))
                    }
                    "toInt" | "toReal" => None,
                    _ => None,
                }
            }
            Expr::Path(root, segs, _) => {
                if segs.is_empty() {
                    return self.lookup(root).flatten();
                }
                // `req.scalar` — a uniform settings scalar.
                if root == &self.req_name && segs.len() == 1 {
                    if let PathSeg::Field(f) = &segs[0] {
                        if self.scalars.iter().any(|s| s == f) {
                            let id = self.intern(format!("s:{f}"), None);
                            return Some(Affine::sym(Sym::Scalar(id)));
                        }
                    }
                }
                None
            }
            _ => None,
        }
    }

    /// `(intern key, known value)` for `lengthof(buffer-or-array)`:
    /// uniform per dispatch, with a concrete value when the host routed
    /// the dimension in.
    fn lengthof_key(&mut self, arg: &Expr) -> Option<(String, Option<i64>)> {
        if let Expr::Path(root, segs, _) = arg {
            if let Some((field, _)) = self.global_target(root, segs) {
                let val = self
                    .facts
                    .dims
                    .get(&field)
                    .and_then(|d| d.first().copied())
                    .flatten();
                return Some((format!("d:{field}#0"), val));
            }
            if segs.is_empty() {
                if let Some(len) = self.array_len(root) {
                    return Some((format!("a:{root}"), len));
                }
            }
        }
        None
    }

    /// If `root`+`segs` names the global data (a field of the data
    /// struct, or the bare data array), return the field name and the
    /// subscript expressions.
    fn global_target<'e>(
        &self,
        root: &str,
        segs: &'e [PathSeg],
    ) -> Option<(String, Vec<&'e Expr>)> {
        if root != self.data_name {
            return None;
        }
        let (field, idx_segs) = if self.data_fields.is_empty() {
            (String::new(), segs)
        } else {
            match segs.first() {
                Some(PathSeg::Field(f)) if self.data_fields.iter().any(|df| df == f) => {
                    (f.clone(), &segs[1..])
                }
                _ => return None,
            }
        };
        let mut idxs = Vec::new();
        for s in idx_segs {
            match s {
                PathSeg::Index(e) => idxs.push(e),
                PathSeg::Field(_) => return None,
            }
        }
        Some((field, idxs))
    }

    // ---- access recording --------------------------------------------

    fn record(&mut self, target: Target, is_write: bool, idxs: Vec<Option<Affine>>, span: Span) {
        let pins = self.pins.clone();
        let idxs = idxs
            .into_iter()
            .map(|i| i.map(|a| a.subst(&pins)))
            .collect();
        let uppers = self
            .uppers
            .iter()
            .map(|(a, b)| (a.subst(&pins), b.subst(&pins)))
            .collect();
        let mut gid_pinned = Vec::new();
        let mut lid_pinned = Vec::new();
        for &(s, v) in &pins {
            match s {
                Sym::Gid(d) => gid_pinned.push((d as usize, v)),
                Sym::Lid(d) => lid_pinned.push(d as usize),
                _ => {}
            }
        }
        self.accesses.push(Access {
            target,
            is_write,
            idxs,
            uppers,
            gid_pinned,
            lid_pinned,
            span,
        });
    }

    /// Record every buffer access inside an expression (reads).
    fn scan(&mut self, e: &Expr) {
        match e {
            Expr::Path(root, segs, span) => {
                self.scan_path(root, segs, *span, false);
            }
            Expr::Neg(inner, _) | Expr::Not(inner, _) => self.scan(inner),
            Expr::Binary(_, l, r, _) => {
                self.scan(l);
                self.scan(r);
            }
            Expr::Call(_, args, _) => {
                for a in args {
                    self.scan(a);
                }
            }
            Expr::NewArray { dims, fill, .. } => {
                for d in dims {
                    self.scan(d);
                }
                if let Some(f) = fill {
                    self.scan(f);
                }
            }
            Expr::NewStruct { args, .. } => {
                for a in args {
                    self.scan(a);
                }
            }
            _ => {}
        }
    }

    fn scan_path(&mut self, root: &str, segs: &[PathSeg], span: Span, is_write: bool) {
        // Recurse into subscript expressions first (they are reads).
        for s in segs {
            if let PathSeg::Index(e) = s {
                self.scan(e);
            }
        }
        if let Some((field, idx_exprs)) = self.global_target(root, segs) {
            if idx_exprs.is_empty() {
                return; // whole-buffer reference (e.g. `lengthof(d.m)` arg)
            }
            let idxs: Vec<Option<Affine>> =
                idx_exprs.iter().map(|e| self.eval(e)).collect::<Vec<_>>();
            self.record(Target::Global(field), is_write, idxs, span);
            return;
        }
        // Private/local scratch arrays: single-subscript accesses.
        if let Some(len) = self.array_len(root) {
            if segs.len() == 1 {
                if let PathSeg::Index(e) = &segs[0] {
                    let idx = self.eval(e);
                    self.record(Target::Scratch(root.to_string(), len), is_write, vec![idx], span);
                }
            }
        }
    }

    // ---- guards -------------------------------------------------------

    /// Constraints `a < b` implied by `cond` being true (`negate=false`)
    /// or false (`negate=true`), plus equality pins.
    fn constraints(&mut self, cond: &Expr, negate: bool) -> Guards {
        let mut lts = Vec::new();
        let mut pins = Vec::new();
        self.collect_constraints(cond, negate, &mut lts, &mut pins);
        (lts, pins)
    }

    fn collect_constraints(
        &mut self,
        cond: &Expr,
        negate: bool,
        lts: &mut Vec<(Affine, Affine)>,
        pins: &mut Vec<(Sym, i64)>,
    ) {
        let Expr::Binary(op, l, r, _) = cond else {
            if let Expr::Not(inner, _) = cond {
                self.collect_constraints(inner, !negate, lts, pins);
            }
            return;
        };
        match (op, negate) {
            (BinOp::And, false) | (BinOp::Or, true) => {
                self.collect_constraints(l, negate, lts, pins);
                self.collect_constraints(r, negate, lts, pins);
                return;
            }
            (BinOp::And, true) | (BinOp::Or, false) => return, // disjunction: no single fact
            _ => {}
        }
        let (Some(a), Some(b)) = (self.eval(l), self.eval(r)) else {
            return;
        };
        let one = Affine::konst(1);
        match (op, negate) {
            // a < b
            (BinOp::Lt, false) | (BinOp::Ge, true) => lts.push((a, b)),
            // a <= b  ≡  a < b+1
            (BinOp::Le, false) | (BinOp::Gt, true) => lts.push((a, b.add(&one, 1))),
            // a > b  ≡  b < a
            (BinOp::Gt, false) | (BinOp::Le, true) => lts.push((b, a)),
            // a >= b  ≡  b < a+1
            (BinOp::Ge, false) | (BinOp::Lt, true) => lts.push((b, a.add(&one, 1))),
            (BinOp::Eq, false) | (BinOp::Ne, true) => {
                // Pin a lone per-item symbol: `lid == 0`.
                let d = a.add(&b, -1);
                let per_item: Vec<_> = d.terms.iter().filter(|(s, _)| !s.is_uniform()).collect();
                if let [(&s, &c)] = per_item.as_slice() {
                    if (c == 1 || c == -1) && d.terms.len() == 1 {
                        pins.push((s, -d.k / c));
                    }
                }
            }
            _ => {}
        }
    }

    // ---- statement walk ----------------------------------------------

    fn block(&mut self, stmts: &[Stmt]) {
        self.env.push(HashMap::new());
        self.arrays.push(HashMap::new());
        for s in stmts {
            self.stmt(s);
        }
        self.env.pop();
        self.arrays.pop();
    }

    fn stmt(&mut self, s: &Stmt) {
        match s {
            Stmt::Declare { name, value, .. } | Stmt::DeclareLocal { name, value, .. } => {
                self.scan(value);
                if let Expr::NewArray { dims, .. } = value {
                    let len = match dims.first() {
                        Some(d) => self.eval(d).and_then(|a| a.as_const()),
                        None => None,
                    };
                    self.arrays
                        .last_mut()
                        .expect("scope stack")
                        .insert(name.clone(), len);
                    return;
                }
                let v = self.eval(value);
                self.bind(name, v);
            }
            Stmt::Assign {
                name, path, value, ..
            } => {
                self.scan(value);
                if path.is_empty() {
                    let v = self.eval(value);
                    self.assign(name, v);
                } else {
                    self.scan_path(name, path, s_span(s), true);
                }
            }
            Stmt::Send { value, chan, .. } => {
                self.scan(value);
                self.scan(chan);
            }
            Stmt::Receive { name, .. } => self.bind(name, None),
            Stmt::Connect { from, to, .. } => {
                self.scan(from);
                self.scan(to);
            }
            Stmt::For {
                var,
                from,
                to,
                body,
                ..
            } => {
                self.scan(from);
                self.scan(to);
                let lo = self.eval(from);
                let hi = self.eval(to);
                let lo_min = lo.as_ref().and_then(|a| self.min_of(a));
                let hi_max = hi.as_ref().and_then(|a| self.max_of(a));
                let id = self.loops.len() as u32;
                self.loops.push((lo_min, hi_max));
                self.invalidate_assigned(body);
                self.env.push(HashMap::new());
                self.arrays.push(HashMap::new());
                self.bind(var, Some(Affine::sym(Sym::Loop(id))));
                for st in body {
                    self.stmt(st);
                }
                self.env.pop();
                self.arrays.pop();
            }
            Stmt::While { cond, body } => {
                self.invalidate_assigned(body);
                self.scan(cond);
                self.block(body);
            }
            Stmt::If {
                cond,
                then_blk,
                else_blk,
            } => {
                self.scan(cond);
                let (lts, pins) = self.constraints(cond, false);
                self.with_guards(lts, pins, |cx| cx.block(then_blk));
                let (lts, pins) = self.constraints(cond, true);
                self.with_guards(lts, pins, |cx| cx.block(else_blk));
                self.invalidate_assigned(then_blk);
                self.invalidate_assigned(else_blk);
            }
            Stmt::Print { value, .. } => self.scan(value),
            Stmt::Barrier { .. } | Stmt::Stop { .. } => {}
        }
    }

    fn with_guards(
        &mut self,
        lts: Vec<(Affine, Affine)>,
        pins: Vec<(Sym, i64)>,
        f: impl FnOnce(&mut Self),
    ) {
        let n_lts = lts.len();
        let n_pins = pins.len();
        self.uppers.extend(lts);
        self.pins.extend(pins);
        f(self);
        self.uppers.truncate(self.uppers.len() - n_lts);
        self.pins.truncate(self.pins.len() - n_pins);
    }

    /// Scalar variables assigned anywhere in `body` lose their affine
    /// value before the body is walked (loop-carried values are not
    /// constant across iterations).
    fn invalidate_assigned(&mut self, body: &[Stmt]) {
        let mut names = Vec::new();
        collect_assigned(body, &mut names);
        for n in names {
            self.assign(&n, None);
        }
    }

    // ---- ranges -------------------------------------------------------

    pub(crate) fn sym_range(&self, s: Sym) -> (Option<i64>, Option<i64>) {
        let f = &self.facts;
        let ext = |d: u8| f.extent.get(d as usize).copied().flatten();
        let ls = |d: u8| f.lsize.get(d as usize).copied().flatten();
        match s {
            Sym::Gid(d) => (Some(0), ext(d).map(|e| e - 1)),
            Sym::Lid(d) => (Some(0), ls(d).map(|l| l - 1)),
            Sym::Grp(d) => {
                let hi = match (ext(d), ls(d)) {
                    (Some(e), Some(l)) if l > 0 => Some((e + l - 1) / l - 1),
                    _ => None,
                };
                (Some(0), hi)
            }
            Sym::GSize(d) => (ext(d).or(Some(1)), ext(d)),
            Sym::LSize(d) => (ls(d).or(Some(1)), ls(d)),
            Sym::NGroups(_) => (Some(1), None),
            Sym::Scalar(_) => (None, None),
            Sym::DimLen(id) => {
                let v = self.dimlen_vals.get(id as usize).copied().flatten();
                (v.or(Some(0)), v)
            }
            Sym::Loop(id) => self.loops.get(id as usize).copied().unwrap_or((None, None)),
        }
    }

    fn max_of(&self, a: &Affine) -> Option<i64> {
        let mut acc = a.k;
        for (&s, &c) in &a.terms {
            let (lo, hi) = self.sym_range(s);
            let b = if c > 0 { hi } else { lo };
            acc += c * b?;
        }
        Some(acc)
    }

    fn min_of(&self, a: &Affine) -> Option<i64> {
        let mut acc = a.k;
        for (&s, &c) in &a.terms {
            let (lo, hi) = self.sym_range(s);
            let b = if c > 0 { lo } else { hi };
            acc += c * b?;
        }
        Some(acc)
    }

    /// Tightest provable maximum of a subscript, folding in any active
    /// `idx < bound` guard.
    fn guarded_max(&self, idx: &Affine, uppers: &[(Affine, Affine)]) -> Option<i64> {
        let mut best = self.max_of(idx);
        for (a, b) in uppers {
            if a == idx {
                if let Some(m) = self.max_of(b) {
                    let cand = m - 1;
                    best = Some(best.map_or(cand, |x| x.min(cand)));
                }
            }
        }
        best
    }

    // ---- checks -------------------------------------------------------

    fn check_bounds(&self) -> Vec<Diagnostic> {
        let mut out = Vec::new();
        for acc in &self.accesses {
            let dims: Vec<Option<i64>> = match &acc.target {
                Target::Global(field) => self
                    .facts
                    .dims
                    .get(field)
                    .cloned()
                    .unwrap_or_else(|| vec![None; acc.idxs.len()]),
                Target::Scratch(_, len) => vec![*len],
            };
            for (pos, idx) in acc.idxs.iter().enumerate() {
                let Some(idx) = idx else { continue };
                let name = self.target_name(&acc.target);
                if let Some(max) = self.guarded_max(idx, &acc.uppers) {
                    if let Some(Some(extent)) = dims.get(pos) {
                        if max >= *extent {
                            out.push(
                                Diagnostic::error(
                                    codes::KERNEL_BOUNDS,
                                    acc.span,
                                    format!(
                                        "kernel `{}`: subscript {} of `{}` reaches index {max} \
                                         but the array extent is {extent}",
                                        self.kernel_name,
                                        pos + 1,
                                        name,
                                    ),
                                )
                                .with_help(
                                    "shrink the worksize or grow the array so every \
                                     work-item stays in bounds"
                                        .to_string(),
                                ),
                            );
                            break; // one report per access
                        }
                    }
                }
                if let Some(min) = self.min_of(idx) {
                    if min < 0 {
                        out.push(
                            Diagnostic::error(
                                codes::KERNEL_BOUNDS,
                                acc.span,
                                format!(
                                    "kernel `{}`: subscript {} of `{}` reaches negative \
                                     index {min}",
                                    self.kernel_name,
                                    pos + 1,
                                    name,
                                ),
                            )
                            .with_help("indices must stay non-negative".to_string()),
                        );
                        break;
                    }
                }
            }
        }
        out
    }

    /// Human-readable label for a symbol, using the interned names
    /// (`step`, `lengthof(d.m)`) where available.
    pub(crate) fn sym_label(&self, s: Sym) -> String {
        match s {
            Sym::Gid(d) => format!("gid{d}"),
            Sym::Lid(d) => format!("lid{d}"),
            Sym::Grp(d) => format!("group{d}"),
            Sym::GSize(d) => format!("gsize{d}"),
            Sym::LSize(d) => format!("lsize{d}"),
            Sym::NGroups(d) => format!("ngroups{d}"),
            Sym::Scalar(id) => match self.names.get(id as usize) {
                Some(n) => n.strip_prefix("s:").unwrap_or(n).to_string(),
                None => format!("scalar#{id}"),
            },
            Sym::DimLen(id) => {
                let key = self.names.get(id as usize).cloned().unwrap_or_default();
                let inner = if let Some(rest) = key.strip_prefix("d:") {
                    let f = rest.split('#').next().unwrap_or(rest);
                    if f.is_empty() {
                        self.data_name.clone()
                    } else {
                        format!("{}.{f}", self.data_name)
                    }
                } else if let Some(rest) = key.strip_prefix("a:") {
                    rest.to_string()
                } else {
                    key
                };
                format!("lengthof({inner})")
            }
            Sym::Loop(id) => format!("loop#{id}"),
        }
    }

    /// Render an affine form like `gid0 + step + 1`.
    pub(crate) fn render_affine(&self, a: &Affine) -> String {
        let mut out = String::new();
        for (&s, &c) in &a.terms {
            let label = self.sym_label(s);
            if out.is_empty() {
                match c {
                    1 => out.push_str(&label),
                    -1 => out.push_str(&format!("-{label}")),
                    _ => out.push_str(&format!("{c}*{label}")),
                }
            } else {
                match c {
                    1 => out.push_str(&format!(" + {label}")),
                    -1 => out.push_str(&format!(" - {label}")),
                    c if c > 0 => out.push_str(&format!(" + {c}*{label}")),
                    c => out.push_str(&format!(" - {}*{label}", -c)),
                }
            }
        }
        if a.k != 0 || out.is_empty() {
            if out.is_empty() {
                out.push_str(&a.k.to_string());
            } else if a.k > 0 {
                out.push_str(&format!(" + {}", a.k));
            } else {
                out.push_str(&format!(" - {}", -a.k));
            }
        }
        out
    }

    /// Render an access like `d.m[gid0 + step + 1][step]`.
    pub(crate) fn render_access(&self, acc: &Access) -> String {
        let name = self.target_name(&acc.target);
        let subs: Vec<String> = acc
            .idxs
            .iter()
            .map(|i| match i {
                Some(a) => self.render_affine(a),
                None => "?".to_string(),
            })
            .collect();
        if subs.is_empty() {
            name
        } else {
            format!("{name}[{}]", subs.join("]["))
        }
    }

    pub(crate) fn target_name(&self, t: &Target) -> String {
        match t {
            Target::Global(f) if f.is_empty() => self.data_name.clone(),
            Target::Global(f) => format!("{}.{f}", self.data_name),
            Target::Scratch(n, _) => n.clone(),
        }
    }

    fn check_races(&self) -> Vec<Diagnostic> {
        let mut out = Vec::new();
        // Group global accesses by field.
        let mut fields: Vec<String> = Vec::new();
        for a in &self.accesses {
            if let Target::Global(f) = &a.target {
                if !fields.contains(f) {
                    fields.push(f.clone());
                }
            }
        }
        for field in fields {
            let writes: Vec<&Access> = self
                .accesses
                .iter()
                .filter(|a| a.is_write && a.target == Target::Global(field.clone()))
                .collect();
            if writes.is_empty() {
                continue;
            }
            let name = self.target_name(&Target::Global(field.clone()));
            // (1) Each write must be injective over the active dims.
            for w in &writes {
                if let Some(d) = self.uncovered_dim(w) {
                    out.push(
                        Diagnostic::error(
                            codes::KERNEL_RACE,
                            w.span,
                            format!(
                                "kernel `{}`: work-items may write the same element of \
                                 `{name}` — no subscript varies with get_global_id({d})",
                                self.kernel_name,
                            ),
                        )
                        .with_help(format!(
                            "index `{name}` by get_global_id({d}) (or guard the write so \
                             only one work-item in that dimension performs it)"
                        )),
                    );
                }
            }
            // (2) Distinct writes must be identical or pairwise disjoint.
            for (i, w1) in writes.iter().enumerate() {
                for w2 in writes.iter().skip(i + 1) {
                    if !self.same_slot(w1, w2) && !self.disjoint(w1, w2) {
                        out.push(
                            Diagnostic::error(
                                codes::KERNEL_RACE,
                                w2.span,
                                format!(
                                    "kernel `{}`: two writes to `{name}` may target the \
                                     same element",
                                    self.kernel_name,
                                ),
                            )
                            .with_note(w1.span, "the other write is here".to_string()),
                        );
                    }
                }
            }
            // (3) Reads must be own-slot or disjoint from every write.
            for r in self
                .accesses
                .iter()
                .filter(|a| !a.is_write && a.target == Target::Global(field.clone()))
            {
                for w in &writes {
                    if !self.same_slot(r, w) && !self.disjoint(r, w) {
                        out.push(
                            Diagnostic::error(
                                codes::KERNEL_READ_RACE,
                                r.span,
                                format!(
                                    "kernel `{}`: reads an element of `{name}` that another \
                                     work-item may be writing concurrently",
                                    self.kernel_name,
                                ),
                            )
                            .with_note(w.span, "the conflicting write is here".to_string())
                            .with_help(
                                "read only the work-item's own slot, or split the kernel \
                                 so the read happens in a later dispatch"
                                    .to_string(),
                            ),
                        );
                        break; // one report per read
                    }
                }
            }
        }
        out
    }

    /// The lowest active worksize dimension `w` does not cover, if any.
    /// Dimensions whose `get_global_id` was pinned by an equality guard
    /// are exempt (only one slice of work-items reaches the write).
    fn uncovered_dim(&self, w: &Access) -> Option<usize> {
        let needed: Vec<usize> = (0..3)
            .filter(|&d| self.facts.active(d) && !w.gid_pinned.iter().any(|&(p, _)| p == d))
            .collect();
        let mut used = vec![false; w.idxs.len()];
        self.match_dims(&needed, w, &mut used)
    }

    fn match_dims(&self, needed: &[usize], w: &Access, used: &mut [bool]) -> Option<usize> {
        let Some((&d, rest)) = needed.split_first() else {
            return None; // all matched
        };
        for (k, idx) in w.idxs.iter().enumerate() {
            if used[k] {
                continue;
            }
            let Some(idx) = idx else { continue };
            if self.covers_dim(idx, d as u8, w) {
                used[k] = true;
                // `None` = the rest matched too, so the whole set does.
                self.match_dims(rest, w, used)?;
                used[k] = false;
            }
        }
        // No position matched `d` in any completion.
        Some(d)
    }

    /// Does `idx` distinguish work-items along dimension `d`? True when
    /// its per-item content is exactly one symbol of dimension `d`
    /// (gid, or grp with the local id pinned), everything else uniform
    /// or provably zero.
    pub(crate) fn covers_dim(&self, idx: &Affine, d: u8, w: &Access) -> bool {
        let mut d_syms = 0usize;
        let mut ok = true;
        for (&s, &c) in &idx.terms {
            if s.is_uniform() || c == 0 {
                continue;
            }
            match s {
                Sym::Gid(e) if e == d => d_syms += 1,
                Sym::Grp(e) if e == d && w.lid_pinned.contains(&(d as usize)) => d_syms += 1,
                // Per-item symbols of *inactive* dimensions are always 0.
                Sym::Gid(e) | Sym::Lid(e) | Sym::Grp(e) if !self.facts.active(e as usize) => {}
                _ => ok = false,
            }
        }
        ok && d_syms == 1
    }

    pub(crate) fn same_slot(&self, a: &Access, b: &Access) -> bool {
        a.idxs.len() == b.idxs.len()
            && a.idxs
                .iter()
                .zip(&b.idxs)
                .all(|(x, y)| matches!((x, y), (Some(x), Some(y)) if x == y))
    }

    /// Are the two accesses provably disjoint? True when in some
    /// position the difference `b − a` — uniform symbols cancelling,
    /// per-item symbols independent between the two items — is strictly
    /// positive or strictly negative.
    pub(crate) fn disjoint(&self, a: &Access, b: &Access) -> bool {
        for (x, y) in a.idxs.iter().zip(&b.idxs) {
            let (Some(x), Some(y)) = (x, y) else { continue };
            let (mut lo, mut hi) = (Some(0i64), Some(0i64));
            let add = |acc: Option<i64>, v: Option<i64>| -> Option<i64> {
                Some(acc? + v?)
            };
            // Constant parts.
            lo = add(lo, Some(y.k - x.k));
            hi = add(hi, Some(y.k - x.k));
            // Uniform symbols cancel coefficient-wise; what remains
            // ranges over the symbol's interval.
            let mut handled: Vec<Sym> = Vec::new();
            for (&s, &cy) in &y.terms {
                if s.is_uniform() {
                    let cx = x.terms.get(&s).copied().unwrap_or(0);
                    let c = cy - cx;
                    handled.push(s);
                    if c == 0 {
                        continue;
                    }
                    let (slo, shi) = self.sym_range(s);
                    let (a1, b1) = if c > 0 { (slo, shi) } else { (shi, slo) };
                    lo = add(lo, a1.map(|v| c * v));
                    hi = add(hi, b1.map(|v| c * v));
                } else {
                    // Per-item: independent copy for item B.
                    let (slo, shi) = self.sym_range(s);
                    let (a1, b1) = if cy > 0 { (slo, shi) } else { (shi, slo) };
                    lo = add(lo, a1.map(|v| cy * v));
                    hi = add(hi, b1.map(|v| cy * v));
                }
            }
            for (&s, &cx) in &x.terms {
                if s.is_uniform() {
                    if !handled.contains(&s) {
                        // coefficient cy = 0, c = -cx
                        let c = -cx;
                        let (slo, shi) = self.sym_range(s);
                        let (a1, b1) = if c > 0 { (slo, shi) } else { (shi, slo) };
                        lo = add(lo, a1.map(|v| c * v));
                        hi = add(hi, b1.map(|v| c * v));
                    }
                } else {
                    // Independent copy for item A, negated.
                    let c = -cx;
                    let (slo, shi) = self.sym_range(s);
                    let (a1, b1) = if c > 0 { (slo, shi) } else { (shi, slo) };
                    lo = add(lo, a1.map(|v| c * v));
                    hi = add(hi, b1.map(|v| c * v));
                }
            }
            if matches!(lo, Some(v) if v > 0) || matches!(hi, Some(v) if v < 0) {
                return true;
            }
        }
        false
    }
}

/// Scalar names assigned (`:=` with empty path) anywhere under `stmts`.
fn collect_assigned(stmts: &[Stmt], out: &mut Vec<String>) {
    for s in stmts {
        match s {
            Stmt::Assign { name, path, .. } if path.is_empty() && !out.contains(name) => {
                out.push(name.clone());
            }
            Stmt::For { body, .. } | Stmt::While { body, .. } => collect_assigned(body, out),
            Stmt::If {
                then_blk, else_blk, ..
            } => {
                collect_assigned(then_blk, out);
                collect_assigned(else_blk, out);
            }
            _ => {}
        }
    }
}

fn s_span(s: &Stmt) -> Span {
    match s {
        Stmt::Declare { pos, .. }
        | Stmt::DeclareLocal { pos, .. }
        | Stmt::Assign { pos, .. }
        | Stmt::Send { pos, .. }
        | Stmt::Receive { pos, .. }
        | Stmt::Connect { pos, .. }
        | Stmt::For { pos, .. }
        | Stmt::Print { pos, .. }
        | Stmt::Barrier { pos }
        | Stmt::Stop { pos } => *pos,
        Stmt::While { cond, .. } => cond.pos(),
        Stmt::If { cond, .. } => cond.pos(),
    }
}
