//! Send-effect proofs (`SendProof`, W005): the copy-on-write
//! precondition.
//!
//! When a host sends a non-`mov` payload (a struct of arrays or a bare
//! array) to a kernel, the runtime may transfer it lazily — the device
//! copy is made when the kernel launches, not when `send` executes. That
//! is only observationally equal to an eager copy if the host never
//! mutates the payload between the send and the launch. This pass proves
//! the stronger, schedule-independent property: the payload is not
//! mutated *anywhere after the send* (until the variable is rebound to a
//! fresh value), through **any alias** — the sent variable itself, the
//! constructor arguments its struct captured, or plain variable copies.
//!
//! Sends inside a loop are also checked around the back-edge: the tail
//! of the body runs, then the head runs again before the next send, so
//! both segments are scanned (rebinding drops a name from the alias set
//! as the scan crosses it, exactly as execution would).
//!
//! A violated obligation yields W005 at the mutation site; the proof
//! object records `unmutated: false` so downstream consumers (the lazy
//! residency machinery) can fall back to an eager copy.

use crate::fusion::{Ev, HostEvents};
use ensemble_lang::diag::{codes, Diagnostic};
use ensemble_lang::proof::SendProof;
use ensemble_lang::token::Span;
use std::collections::BTreeSet;

/// Compute send proofs and W005 diagnostics for every walked host.
pub(crate) fn prove(hosts: &[HostEvents]) -> (Vec<SendProof>, Vec<Diagnostic>) {
    let mut proofs = Vec::new();
    let mut diags = Vec::new();
    for host in hosts {
        let mut path = Vec::new();
        scan_sends(&host.actor, &host.events, &mut path, &mut proofs, &mut diags);
    }
    (proofs, diags)
}

/// Depth-first over the event tree, remembering the enclosing-loop path
/// so a send inside a loop can be checked around the back-edge.
fn scan_sends<'e>(
    actor: &str,
    events: &'e [Ev],
    path: &mut Vec<(&'e [Ev], usize)>,
    proofs: &mut Vec<SendProof>,
    diags: &mut Vec<Diagnostic>,
) {
    for (i, ev) in events.iter().enumerate() {
        match ev {
            Ev::PayloadSend {
                var,
                aliases,
                mov: false,
                span,
            } => {
                let mut alias: BTreeSet<String> = aliases.iter().cloned().collect();
                alias.insert(var.clone());
                let hit = scan_after(events, i, path, &mut alias);
                if let Some((mvar, mspan)) = &hit {
                    diags.push(
                        Diagnostic::warning(
                            codes::PAYLOAD_MUTATED,
                            *mspan,
                            format!(
                                "payload `{var}` sent on line {} is mutated here through \
                                 `{mvar}` — the device copy may observe the new value",
                                span.start.line
                            ),
                        )
                        .with_note(*span, format!("`{var}` is sent to the device here"))
                        .with_help(
                            "move the mutation before the send, or rebind the variable \
                             to a fresh buffer instead of mutating in place"
                                .to_string(),
                        ),
                    );
                }
                proofs.push(SendProof {
                    actor: actor.to_string(),
                    payload: var.clone(),
                    line: span.start.line,
                    unmutated: hit.is_none(),
                });
            }
            Ev::Loop { body, .. } => {
                path.push((events, i));
                scan_sends(actor, body, path, proofs, diags);
                path.pop();
            }
            _ => {}
        }
    }
}

/// Scan execution order from just after `events[i]` — the rest of this
/// level, then (for each enclosing loop, innermost first) the back-edge:
/// the loop body from its start, then the events after the loop at the
/// enclosing level. Returns the first mutation of a live alias.
fn scan_after(
    events: &[Ev],
    i: usize,
    path: &[(&[Ev], usize)],
    alias: &mut BTreeSet<String>,
) -> Option<(String, Span)> {
    if let Some(hit) = scan_seq(&events[i + 1..], alias) {
        return Some(hit);
    }
    // Back-edges, innermost loop first: the body re-runs from its start
    // up to (and including re-execution of) the send's own level.
    if let Some(hit) = scan_seq(&events[..=i], alias) {
        // Only meaningful if some enclosing loop exists; a top-level
        // send never re-runs.
        if !path.is_empty() {
            return Some(hit);
        }
    }
    // Each enclosing level, innermost first: its tail runs after the
    // inner loop exits, then — if that level is itself a loop body
    // (every path entry except the outermost, which is the behaviour
    // top and never re-runs) — its own back-edge re-runs the level from
    // the start. One tail+head pass per level reaches the fixpoint: the
    // alias set only shrinks.
    for (depth, (outer, idx)) in path.iter().enumerate().rev() {
        if let Some(hit) = scan_seq(&outer[idx + 1..], alias) {
            return Some(hit);
        }
        if depth > 0 {
            if let Some(hit) = scan_seq(&outer[..=*idx], alias) {
                return Some(hit);
            }
        }
    }
    None
}

/// Scan a flat event sequence (descending into loops — their bodies may
/// run after the send). A rebind to unrelated storage retires the
/// alias, but a rebind that re-aliases live sent storage (`y = x` while
/// `x` is live) keeps the name in the set. Returns the first mutation
/// of a live alias.
fn scan_seq(events: &[Ev], alias: &mut BTreeSet<String>) -> Option<(String, Span)> {
    for ev in events {
        match ev {
            Ev::Mutate { var, span } if alias.contains(var) => {
                return Some((var.clone(), *span));
            }
            Ev::Rebind { var, from } => {
                if from.iter().any(|s| alias.contains(s)) {
                    alias.insert(var.clone());
                } else {
                    alias.remove(var);
                }
            }
            Ev::Loop { body, .. } => {
                if let Some(hit) = scan_seq(body, alias) {
                    return Some(hit);
                }
            }
            _ => {}
        }
    }
    None
}
