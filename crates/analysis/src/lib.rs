//! Static analysis suite for mini-Ensemble (the paper's compile-time
//! checking story, §6): kernel race and bounds checking, `mov`
//! residency verification, and actor-topology lints, all reporting
//! through [`ensemble_lang::Diagnostic`].
//!
//! The passes run between parse and codegen:
//!
//! | code | pass | meaning |
//! |------|------|---------|
//! | `E001` | race | two work-items may write the same output location |
//! | `E002` | race | a work-item reads another work-item's output slot |
//! | `E003` | bounds | an index provably exceeds the array's extent |
//! | `E004` | mov | a `mov` value is used after being sent away |
//! | `E005` | topology | a channel is used but never connected |
//! | `E006` | topology | a rendezvous cycle where every actor receives first |
//! | `E007` | topology | `connect` direction or element-type mismatch |
//! | `W001` | topology | an interface port no actor uses |
//! | `W002` | mov | residency not provable (consumers on different devices) |
//! | `W003` | proofs | an NDRange dimension is not provably splittable |
//! | `W004` | proofs | a data hazard blocks merging two chained dispatches |
//! | `W005` | proofs | a sent payload is mutated after the send (CoW unsafe) |
//!
//! [`compile_source`] is the deny-by-default gate: errors reject the
//! program before codegen, warnings pass through. Escapes: pass codes
//! in [`Options::allow`] (the CLI's `--allow E001`), or annotate the
//! offending line — or the line above it — with `// allow(E001)`.
//!
//! Beyond the lints, the suite is a *proof engine*: every analysis also
//! produces positive, machine-checkable facts — a
//! [`ensemble_lang::SplitProof`] per kernel (which NDRange dimensions
//! can be cut across devices), a [`ensemble_lang::FusionProof`] per
//! host dispatch chain (which enqueues can batch, which adjacent pairs
//! could merge), and a [`ensemble_lang::SendProof`] per payload send
//! (the copy-on-write precondition). The proofs land in
//! [`Report::proofs`], are threaded into the [`CompiledModule`], and
//! surface at runtime as `proof_splittable` / `proof_fusable` trace
//! instants. W003/W004/W005 are the *negative space* of those proofs
//! and are only emitted when [`Options::proofs`] is set (the CLI's
//! `--proofs`); the shipped applications legitimately contain, e.g.,
//! RAW-hazard chains, which are findings about co-execution headroom,
//! not defects.
//!
//! The `mov` pass also *proves* residency: when every kernel consumer
//! of a `mov` struct type runs on one device, the consumers' names are
//! fed into [`ensemble_lang::CompileOptions::residency_proven`] and the
//! VM skips its runtime cross-context residency bookkeeping for them
//! (visible as a `residency_proven` trace instant).
//!
//! ```
//! let src = r#"
//!     type I is interface(out integer output)
//!     stage main {
//!         actor a presents I {
//!             behaviour { send 1 on output; stop; }
//!         }
//!         boot { x = new a(); }
//!     }
//! "#;
//! // `output` is used but never connected: E005.
//! let report = ensemble_analysis::analyze_source(src, &Default::default()).unwrap();
//! assert_eq!(report.diagnostics[0].code, "E005");
//! ```

use ensemble_lang::ast::{Module, TypeExpr};
use ensemble_lang::diag::{codes, Diagnostic, Severity};
use ensemble_lang::{
    compile_source_gated, CompileOptions, CompiledModule, GateError, KernelProof, ParseError,
    ProofSet,
};
use std::collections::{BTreeMap, BTreeSet, HashMap};

mod effects;
mod fusion;
mod host;
mod kernel;
mod model;
mod shadow;
mod split;

pub use shadow::{shadow_validate, DispatchConfig, Refutation, ShadowConfig};

use host::{ActorSummary, ChanRef, HostWalk, SettingsCon};
use kernel::{HostFacts, KernelCheck};
use model::DataModel;

/// Analysis options.
#[derive(Debug, Clone, Default)]
pub struct Options {
    /// Diagnostic codes suppressed globally (the CLI's `--allow E001`).
    pub allow: BTreeSet<String>,
    /// Emit the proof-engine findings (W003/W004/W005). Proof *objects*
    /// are always computed; this only controls whether their negative
    /// space is reported as diagnostics.
    pub proofs: bool,
}

/// The result of analysing a module.
#[derive(Debug, Default)]
pub struct Report {
    /// Findings after allow-filtering, ordered by source position.
    pub diagnostics: Vec<Diagnostic>,
    /// Kernel-actor names whose `mov` data provably stays on one device.
    pub residency_proven: BTreeSet<String>,
    /// The proof objects: splittability per kernel, fusion per dispatch
    /// chain, send effects per payload.
    pub proofs: ProofSet,
    /// Per-kernel proof bundle, keyed by kernel-actor name, in the
    /// shape the compiler embeds into each [`ensemble_lang::KernelPlan`].
    pub kernel_proofs: BTreeMap<String, KernelProof>,
}

impl Report {
    /// Any error-severity findings left?
    pub fn has_errors(&self) -> bool {
        self.diagnostics
            .iter()
            .any(|d| d.severity == Severity::Error)
    }

    /// The error-severity findings.
    pub fn errors(&self) -> Vec<Diagnostic> {
        self.diagnostics
            .iter()
            .filter(|d| d.severity == Severity::Error)
            .cloned()
            .collect()
    }
}

/// Parse and analyse a source string.
pub fn analyze_source(src: &str, opts: &Options) -> Result<Report, ParseError> {
    let module = ensemble_lang::parse(src)?;
    Ok(analyze(&module, src, opts))
}

/// Typed proof inventory for an already-parsed module: the per-kernel
/// bundle of splittability proof and chain role, keyed by kernel-actor
/// name. This is the front door for proof *consumers* — e.g. a
/// co-execution scheduler asking "which dimensions may I cut?" or a
/// dispatch batcher asking "is this kernel part of a fusable chain?" —
/// without threading a full [`Report`] around.
///
/// ```
/// use ensemble_lang::proof::DimClass;
///
/// let src = r#"
///     type data_t is struct ( mov real [] v )
///     type settings_t is opencl struct (
///         integer [] worksize;
///         integer [] groupsize;
///         in data_t input;
///         out data_t output
///     )
///     type host_i is interface ( out settings_t req )
///     type kernel_i is interface ( in settings_t requests )
///
///     stage home {
///         opencl <device_index=0, device_type=GPU>
///         actor Scale presents kernel_i {
///             constructor() {}
///             behaviour {
///                 receive r from requests;
///                 receive d from r.input;
///                 gid = get_global_id(0);
///                 d.v[gid] := d.v[gid] * 2.0;
///                 send d on r.output;
///             }
///         }
///         actor Run presents host_i {
///             constructor() {}
///             behaviour {
///                 d = new data_t(new real[8]);
///                 ws = new integer[1] of 8;
///                 gs = new integer[1] of 4;
///                 ia = new in data_t;
///                 back = new in data_t;
///                 to_k = new out data_t;
///                 k_out = new out data_t;
///                 connect to_k to ia;
///                 connect k_out to back;
///                 send new settings_t(ws, gs, ia, k_out) on req;
///                 send d on to_k;
///                 receive dn from back;
///                 stop;
///             }
///         }
///         boot {
///             h = new Run();
///             k = new Scale();
///             connect h.req to k.requests;
///         }
///     }
/// "#;
/// let module = ensemble_lang::parse(src).unwrap();
/// let proofs = ensemble_analysis::proofs_for(&module);
/// // Each work-item touches only `v[gid]`: dimension 0 may be cut
/// // between work-groups, so a scheduler may co-execute this dispatch.
/// assert_eq!(
///     proofs["Scale"].split.class_of(0),
///     Some(DimClass::Splittable)
/// );
/// // A single dispatch site forms no fusable chain.
/// assert!(proofs["Scale"].chain.is_none());
/// ```
pub fn proofs_for(module: &Module) -> BTreeMap<String, KernelProof> {
    analyze(module, "", &Options::default()).kernel_proofs
}

/// Parse, analyse (deny-by-default: any error rejects), and compile,
/// threading residency proofs into the [`CompiledModule`]'s kernel
/// plans. This is the front door the VM and benches use.
pub fn compile_source(src: &str, opts: &Options) -> Result<CompiledModule, GateError> {
    compile_source_gated(src, |module| {
        let report = analyze(module, src, opts);
        if report.has_errors() {
            Err(report.errors())
        } else {
            Ok(CompileOptions {
                residency_proven: report.residency_proven,
                kernel_proofs: report.kernel_proofs,
                proofs: report.proofs,
            })
        }
    })
}

/// Analyse an already-parsed module. `src` is consulted only for
/// `// allow(...)` comment escapes (the lexer strips comments, so the
/// raw text is scanned).
pub fn analyze(module: &Module, src: &str, opts: &Options) -> Report {
    let model = model::build(module);
    let mut diags: Vec<Diagnostic> = Vec::new();
    let mut residency_proven = BTreeSet::new();

    let Some(stage) = model.stage else {
        return Report::default();
    };

    // ---- host walks ---------------------------------------------------
    let mut summaries: HashMap<&str, ActorSummary> = HashMap::new();
    let mut struct_cons = host::StructCons::new();
    for actor in &stage.actors {
        if actor.opencl.is_some() {
            continue; // kernel actors get the kernel pass instead
        }
        let Some(ports) = model.interfaces.get(actor.interface.as_str()) else {
            continue; // compile reports the unknown interface
        };
        let mut walk = HostWalk::new(&model, ports, false);
        walk.walk(actor);
        diags.extend(walk.diags);
        // E005 for dynamic endpoints: used but never connected.
        for ep in &walk.summary.endpoints {
            if ep.used && !ep.connected {
                let name = if ep.name.is_empty() {
                    "channel endpoint".to_string()
                } else {
                    format!("endpoint `{}`", ep.name)
                };
                diags.push(
                    Diagnostic::error(
                        codes::ORPHAN_CHANNEL,
                        ep.span,
                        format!(
                            "{name} in actor `{}` is used but never connected",
                            actor.name
                        ),
                    )
                    .with_help("add a `connect` wiring this endpoint to a peer".to_string()),
                );
            }
        }
        for (ty, cons) in walk.struct_cons.drain() {
            struct_cons.entry(ty).or_default().extend(cons);
        }
        summaries.insert(actor.name.as_str(), walk.summary);
    }

    // ---- boot walk ----------------------------------------------------
    let boot = {
        let mut walk = HostWalk::new(&model, &[], true);
        walk.walk_boot(&stage.boot);
        walk.harvest_instances();
        diags.extend(walk.diags);
        for ep in &walk.summary.endpoints {
            if ep.used && !ep.connected {
                let name = if ep.name.is_empty() {
                    "channel endpoint".to_string()
                } else {
                    format!("endpoint `{}`", ep.name)
                };
                diags.push(
                    Diagnostic::error(
                        codes::ORPHAN_CHANNEL,
                        ep.span,
                        format!("{name} in the boot block is used but never connected"),
                    )
                    .with_help("add a `connect` wiring this endpoint to a peer".to_string()),
                );
            }
        }
        walk.boot
    };
    let type_of_instance: HashMap<&str, &str> = boot
        .instances
        .iter()
        .map(|(i, t)| (i.as_str(), t.as_str()))
        .collect();

    // ---- static-port orphans (E005) -----------------------------------
    for actor in &stage.actors {
        let Some(ports) = model.interfaces.get(actor.interface.as_str()) else {
            continue;
        };
        let instances: Vec<&str> = boot
            .instances
            .iter()
            .filter(|(_, t)| t == &actor.name)
            .map(|(i, _)| i.as_str())
            .collect();
        if instances.is_empty() {
            continue; // never booted: nothing to wire
        }
        for port in *ports {
            if !host::actor_sends_or_receives(actor, &port.name) {
                continue;
            }
            if host::actor_connects_port(actor, &port.name) {
                continue;
            }
            for inst in &instances {
                let wired = boot.edges.iter().any(|((a, p), (b, q), _)| {
                    (a == inst && p == &port.name) || (b == inst && q == &port.name)
                }) || boot
                    .wired_ports
                    .iter()
                    .any(|(i, p)| i == inst && p == &port.name);
                if !wired {
                    diags.push(
                        Diagnostic::error(
                            codes::ORPHAN_CHANNEL,
                            port.pos,
                            format!(
                                "port `{}` of `{}` (instance `{inst}`) is used but never \
                                 connected",
                                port.name, actor.name
                            ),
                        )
                        .with_help(format!(
                            "add `connect` wiring for `{inst}.{}` in the boot block",
                            port.name
                        )),
                    );
                }
            }
        }
    }

    // ---- unused interface ports (W001) --------------------------------
    for (iface, ports) in &model.interfaces {
        for port in *ports {
            let used_in_actor = stage
                .actors
                .iter()
                .filter(|a| a.interface == *iface)
                .any(|a| host::actor_uses_port(a, &port.name));
            let used_in_boot = boot.edges.iter().any(|((a, p), (b, q), _)| {
                let is_iface = |inst: &str| {
                    type_of_instance
                        .get(inst)
                        .and_then(|t| stage.actors.iter().find(|a| &a.name == t))
                        .is_some_and(|a| a.interface == *iface)
                };
                (p == &port.name && is_iface(a)) || (q == &port.name && is_iface(b))
            });
            if !used_in_actor && !used_in_boot {
                diags.push(
                    Diagnostic::warning(
                        codes::UNUSED_PORT,
                        port.pos,
                        format!("port `{}` of interface `{iface}` is never used", port.name),
                    )
                    .with_help("remove the port or wire it up".to_string()),
                );
            }
        }
    }

    // ---- rendezvous deadlock (E006) -----------------------------------
    diags.extend(deadlock_pass(&model, stage, &boot, &summaries));

    // ---- settings/data routing + kernel checks ------------------------
    let merged_struct_dims = merge_struct_dims(&model, &struct_cons);
    let mut checks: Vec<KernelCheck> = Vec::new();
    for k in &model.kernels {
        let facts = route_facts(k, &model, &boot, &summaries, &merged_struct_dims);
        let data_fields: Vec<String> = match &k.data {
            DataModel::Struct(s) => model.structs[s]
                .fields
                .iter()
                .map(|f| f.name.clone())
                .collect(),
            DataModel::Array { .. } => Vec::new(),
        };
        let mut check = KernelCheck::new(
            &k.actor.name,
            k.req_name,
            k.data_name,
            data_fields,
            k.scalars.iter().map(|s| s.to_string()).collect(),
            facts,
        );
        check.walk(k.body);
        diags.extend(check.diagnostics());
        checks.push(check);
    }

    // ---- proof passes: split (W003), fusion (W004), effects (W005) ----
    // Proof objects are always computed; their diagnostics only surface
    // in proofs mode.
    let mut proofs = ProofSet::default();
    for check in &checks {
        let (sp, ds) = split::prove(check);
        if opts.proofs {
            diags.extend(ds);
        }
        proofs.splits.push(sp);
    }
    let hosts = fusion::walk_hosts(&model, &boot);
    let infos = fusion::kernel_infos(&model, &checks);
    let (fps, roles, ds) = fusion::prove(&hosts, &infos);
    if opts.proofs {
        diags.extend(ds);
    }
    proofs.fusion = fps;
    let (sends, ds) = effects::prove(&hosts);
    if opts.proofs {
        diags.extend(ds);
    }
    proofs.sends = sends;
    let mut kernel_proofs = BTreeMap::new();
    for sp in &proofs.splits {
        kernel_proofs.insert(
            sp.kernel.clone(),
            KernelProof {
                split: sp.clone(),
                chain: roles.get(&sp.kernel).cloned(),
            },
        );
    }

    // ---- mov residency proofs (W002 / CompileOptions) -----------------
    for (name, sm) in &model.structs {
        if !sm.any_mov {
            continue;
        }
        let consumers: Vec<_> = model
            .kernels
            .iter()
            .filter(|k| matches!(&k.data, DataModel::Struct(s) if s == name))
            .collect();
        if consumers.is_empty() {
            continue;
        }
        let dev0 = &consumers[0].device;
        if consumers.iter().all(|k| &k.device == dev0) {
            for k in &consumers {
                residency_proven.insert(k.actor.name.clone());
            }
        } else {
            diags.push(
                Diagnostic::warning(
                    codes::RESIDENCY_UNPROVEN,
                    sm.span,
                    format!(
                        "mov type `{name}` is consumed by kernels on different devices; \
                         device residency cannot be proven and the VM will keep its \
                         runtime bookkeeping"
                    ),
                )
                .with_help(
                    "pin all consumers of this type to one device to enable the \
                     residency fast path"
                        .to_string(),
                ),
            );
        }
    }

    // ---- dedup, allow-filter, sort ------------------------------------
    let allowed_lines = allow_comment_lines(src);
    diags.retain(|d| {
        if opts.allow.contains(d.code) {
            return false;
        }
        let line = d.span.start.line;
        !allowed_lines
            .get(d.code)
            .is_some_and(|lines| lines.contains(&line) || lines.contains(&(line - 1)))
    });
    let mut seen: Vec<(String, u32, u32, String)> = Vec::new();
    diags.retain(|d| {
        let key = (
            d.code.to_string(),
            d.span.start.line,
            d.span.start.col,
            d.message.clone(),
        );
        if seen.contains(&key) {
            false
        } else {
            seen.push(key);
            true
        }
    });
    diags.sort_by_key(|d| {
        (
            d.span.start.line,
            d.span.start.col,
            d.code,
            d.message.clone(),
        )
    });

    Report {
        diagnostics: diags,
        residency_proven,
        proofs,
        kernel_proofs,
    }
}

/// Lines carrying `// allow(CODE, ...)` escapes: code → line numbers.
/// The escape applies to findings on the same line or the line below.
fn allow_comment_lines(src: &str) -> HashMap<String, Vec<u32>> {
    let mut out: HashMap<String, Vec<u32>> = HashMap::new();
    for (i, line) in src.lines().enumerate() {
        let Some(idx) = line.find("//") else { continue };
        let comment = &line[idx + 2..];
        let Some(start) = comment.find("allow(") else {
            continue;
        };
        let rest = &comment[start + "allow(".len()..];
        let Some(end) = rest.find(')') else { continue };
        for code in rest[..end].split(',') {
            let code = code.trim();
            if !code.is_empty() {
                out.entry(code.to_string()).or_default().push(i as u32 + 1);
            }
        }
    }
    out
}

/// Merge every observed construction of each struct type into
/// per-field dims (agreement keeps the value, conflict forgets it).
fn merge_struct_dims(
    model: &model::Model<'_>,
    cons: &host::StructCons,
) -> HashMap<String, HashMap<String, Vec<Option<i64>>>> {
    let mut out = HashMap::new();
    for (ty, instances) in cons {
        let Some(sm) = model.structs.get(ty.as_str()) else {
            continue;
        };
        let mut fields: HashMap<String, Vec<Option<i64>>> = HashMap::new();
        for (fi, field) in sm.fields.iter().enumerate() {
            let ndims = match &field.ty {
                TypeExpr::Array(_, n) => *n,
                _ => continue,
            };
            let mut merged: Option<Vec<Option<i64>>> = None;
            for inst in instances {
                let dims = inst
                    .get(fi)
                    .cloned()
                    .flatten()
                    .unwrap_or_else(|| vec![None; ndims]);
                merged = Some(match merged {
                    None => dims,
                    Some(prev) => prev
                        .iter()
                        .zip(dims.iter().chain(std::iter::repeat(&None)))
                        .map(|(a, b)| if a == b { *a } else { None })
                        .collect(),
                });
            }
            let mut dims = merged.unwrap_or_else(|| vec![None; ndims]);
            dims.resize(ndims, None);
            fields.insert(field.name.clone(), dims);
        }
        out.insert(ty.clone(), fields);
    }
    out
}

/// Route worksize/groupsize/data-extent facts from the host actors to
/// one kernel, following `send <settings> on <port>` through the boot
/// connection graph.
fn route_facts(
    k: &model::KernelModel<'_>,
    model: &model::Model<'_>,
    boot: &host::BootInfo,
    summaries: &HashMap<&str, ActorSummary>,
    struct_dims: &HashMap<String, HashMap<String, Vec<Option<i64>>>>,
) -> HostFacts {
    let mut facts = HostFacts::default();

    // Settings constructions that flow into this kernel's settings
    // port, found by following boot edges back to sending host actors.
    let mut found: Vec<(&ActorSummary, SettingsCon)> = Vec::new();
    for ((a, p), (b, q), _) in &boot.edges {
        let feeds_kernel = q == k.req_port
            && boot
                .instances
                .iter()
                .any(|(i, t)| i == b && t == &k.actor.name);
        if !feeds_kernel {
            continue;
        }
        let Some((_, ty)) = boot.instances.iter().find(|(i, _)| i == a) else {
            continue;
        };
        let Some(summary) = summaries.get(ty.as_str()) else {
            continue;
        };
        for (port, con) in &summary.settings_sent {
            if port == p {
                found.push((summary, con.clone()));
            }
        }
    }
    if found.is_empty() {
        // No routed worksize: stay fully conservative.
        facts.ws_known = false;
    } else {
        facts.ws_known = true;
        let mut ws_len: Option<Option<i64>> = None;
        let mut ws_fill: Option<Option<i64>> = None;
        let mut gs_fill: Option<Option<i64>> = None;
        for (_, con) in &found {
            let m = |slot: &mut Option<Option<i64>>, v: Option<i64>| {
                *slot = Some(match *slot {
                    None => v,
                    Some(prev) if prev == v => v,
                    _ => None,
                });
            };
            m(&mut ws_len, con.ws.0);
            m(&mut ws_fill, con.ws.1);
            m(&mut gs_fill, con.gs.1);
        }
        facts.ws_len = ws_len.flatten();
        let len = facts.ws_len.unwrap_or(3).clamp(0, 3) as usize;
        for d in 0..len {
            facts.extent[d] = ws_fill.flatten();
            facts.lsize[d] = gs_fill.flatten();
        }
    }

    // Data extents.
    match &k.data {
        DataModel::Struct(s) => {
            if let Some(fields) = struct_dims.get(*s) {
                for (f, dims) in fields {
                    facts.dims.insert(f.clone(), dims.clone());
                }
            } else if let Some(sm) = model.structs.get(*s) {
                for field in sm.fields {
                    if let TypeExpr::Array(_, n) = &field.ty {
                        facts.dims.insert(field.name.clone(), vec![None; *n]);
                    }
                }
            }
        }
        DataModel::Array { ndims } => {
            // Bare-array data: find arrays sent into the settings' `in`
            // endpoint (directly, or via an out port connected to it).
            let mut merged: Option<Vec<Option<i64>>> = None;
            for (summary, con) in &found {
                let Some(ep_id) = con.in_ep else { continue };
                let ep = &summary.endpoints[ep_id];
                for (chan, dims) in &summary.array_sends {
                    let hits = match chan {
                        ChanRef::Ep(id) => *id == ep_id,
                        ChanRef::Port(p) => ep.fed_by_ports.contains(p),
                    };
                    if hits {
                        let mut dims = dims.clone();
                        dims.resize(*ndims, None);
                        merged = Some(match merged {
                            None => dims,
                            Some(prev) => prev
                                .iter()
                                .zip(dims.iter())
                                .map(|(a, b)| if a == b { *a } else { None })
                                .collect(),
                        });
                    }
                }
            }
            facts
                .dims
                .insert(String::new(), merged.unwrap_or_else(|| vec![None; *ndims]));
        }
    }
    facts
}

/// E006: cycles in the "waits on" graph. An instance whose actor's
/// first static-port channel operation is a *receive* waits, before
/// anything else, on whoever is wired into that port; if that chain of
/// first-op receives closes into a cycle, no send can ever happen and
/// the program deadlocks under rendezvous semantics.
fn deadlock_pass(
    model: &model::Model<'_>,
    stage: &ensemble_lang::ast::StageDecl,
    boot: &host::BootInfo,
    summaries: &HashMap<&str, ActorSummary>,
) -> Vec<Diagnostic> {
    use ensemble_lang::token::Span;
    // First channel op per actor type (host actors from summaries where
    // available — same result — kernels and the rest from a scan).
    let mut first: HashMap<&str, (bool, String, Span)> = HashMap::new();
    for actor in &stage.actors {
        let Some(ports) = model.interfaces.get(actor.interface.as_str()) else {
            continue;
        };
        let op = summaries
            .get(actor.name.as_str())
            .and_then(|s| s.first_op.clone())
            .or_else(|| host::first_port_op(actor, ports));
        if let Some(op) = op {
            first.insert(actor.name.as_str(), op);
        }
    }
    // waits[x] = (y, span of x's blocking receive): instance x's first
    // op receives on a port fed (via a boot edge) by instance y.
    let mut waits: HashMap<&str, (&str, Span)> = HashMap::new();
    for (inst, ty) in &boot.instances {
        let Some((true, port, span)) = first.get(ty.as_str()) else {
            continue;
        };
        for ((a, _p), (b, q), _) in &boot.edges {
            if b == inst && q == port {
                waits.insert(inst.as_str(), (a.as_str(), *span));
            }
        }
    }
    // Cycle detection over the functional graph.
    let mut out = Vec::new();
    let mut reported: Vec<&str> = Vec::new();
    for &start in waits.keys() {
        if reported.contains(&start) {
            continue;
        }
        let mut path = vec![start];
        let mut cur = start;
        while let Some(&(next, _)) = waits.get(cur) {
            if let Some(pos) = path.iter().position(|&n| n == next) {
                // Cycle found: path[pos..] + next.
                let cycle: Vec<&str> = path[pos..].to_vec();
                if cycle.iter().any(|n| reported.contains(n)) {
                    break;
                }
                reported.extend(cycle.iter());
                let mut names: Vec<&str> = cycle.clone();
                names.sort();
                let anchor = names[0];
                let span = waits[anchor].1;
                let mut chain = String::new();
                let mut n = anchor;
                loop {
                    chain.push_str(n);
                    let next = waits[n].0;
                    chain.push_str(" -> ");
                    if next == anchor {
                        chain.push_str(anchor);
                        break;
                    }
                    n = next;
                }
                out.push(
                    Diagnostic::error(
                        codes::DEADLOCK_CYCLE,
                        span,
                        format!(
                            "rendezvous deadlock: every actor in the cycle `{chain}` \
                             receives before it sends"
                        ),
                    )
                    .with_help(
                        "make one actor in the cycle send first (seed the pipeline)"
                            .to_string(),
                    ),
                );
                break;
            }
            if path.len() > boot.instances.len() {
                break;
            }
            path.push(next);
            cur = next;
        }
    }
    out
}
