//! A queryable view of a parsed module: structs, interfaces, and the
//! kernel actors whose protocol shape we could recognise.
//!
//! Model building is deliberately *tolerant*: an actor that does not
//! match the kernel protocol (receive settings; receive data; body;
//! send result) is simply skipped here — the compiler proper reports
//! shape errors with better messages, and analysis only reasons about
//! what it can model.

use ensemble_lang::ast::{
    ActorDecl, Dir, Field, Module, Port, StageDecl, Stmt, TypeDecl, TypeExpr,
};
use ensemble_lang::token::Span;
use std::collections::HashMap;

/// A struct declaration plus derived facts.
pub struct StructModel<'m> {
    /// Fields in declaration order.
    pub fields: &'m [Field],
    /// Declared `opencl struct` (kernel settings shape).
    pub opencl: bool,
    /// Any field is `mov` (the struct moves between devices by handle).
    pub any_mov: bool,
    /// Declaration span (for residency warnings).
    pub span: Span,
}

/// What a kernel receives on its data channel.
pub enum DataModel<'m> {
    /// A named struct of arrays (`lud_t`, `rank_t`, ...).
    Struct(&'m str),
    /// A bare array (`integer [][]` in mandelbrot).
    Array {
        /// Dimension count of the array type.
        ndims: usize,
    },
}

/// A kernel actor whose protocol shape was recognised.
pub struct KernelModel<'m> {
    /// The actor declaration.
    pub actor: &'m ActorDecl,
    /// Names of the trailing `integer` scalar fields of the settings.
    pub scalars: Vec<&'m str>,
    /// Variable bound by the first receive (the settings value).
    pub req_name: &'m str,
    /// Variable bound by the second receive (the data value).
    pub data_name: &'m str,
    /// Shape of the data.
    pub data: DataModel<'m>,
    /// Statements between the data receive and the result send.
    pub body: &'m [Stmt],
    /// `(device_index, device_type)` from the `opencl <...>` header.
    pub device: (usize, Option<String>),
    /// Name of the interface port the settings arrive on.
    pub req_port: &'m str,
}

/// The whole-module view the passes run over.
pub struct Model<'m> {
    /// Structs by name.
    pub structs: HashMap<&'m str, StructModel<'m>>,
    /// Interfaces by name: ports plus declaration span.
    pub interfaces: HashMap<&'m str, &'m [Port]>,
    /// The first stage (analysis targets single-stage modules).
    pub stage: Option<&'m StageDecl>,
    /// Recognised kernel actors.
    pub kernels: Vec<KernelModel<'m>>,
}

impl<'m> Model<'m> {
    /// Interface ports of an actor type, if both exist.
    pub fn actor_ports(&self, actor_ty: &str) -> Option<&'m [Port]> {
        let stage = self.stage?;
        let a = stage.actors.iter().find(|a| a.name == actor_ty)?;
        self.interfaces.get(a.interface.as_str()).copied()
    }
}

/// Build the model for a module.
pub fn build(module: &Module) -> Model<'_> {
    let mut structs = HashMap::new();
    let mut interfaces = HashMap::new();
    for t in &module.types {
        match t {
            TypeDecl::Struct {
                name,
                fields,
                opencl,
                pos,
            } => {
                structs.insert(
                    name.as_str(),
                    StructModel {
                        fields,
                        opencl: *opencl,
                        any_mov: fields.iter().any(|f| f.mov),
                        span: *pos,
                    },
                );
            }
            TypeDecl::Interface { name, ports, .. } => {
                interfaces.insert(name.as_str(), ports.as_slice());
            }
        }
    }
    let stage = module.stages.first();
    let mut kernels = Vec::new();
    if let Some(stage) = stage {
        for actor in &stage.actors {
            if let Some(k) = kernel_model(actor, &structs, &interfaces) {
                kernels.push(k);
            }
        }
    }
    Model {
        structs,
        interfaces,
        stage,
        kernels,
    }
}

/// Try to recognise `actor` as a kernel actor. `None` means "not a
/// kernel, or a shape the compiler will reject anyway".
fn kernel_model<'m>(
    actor: &'m ActorDecl,
    structs: &HashMap<&'m str, StructModel<'m>>,
    interfaces: &HashMap<&'m str, &'m [Port]>,
) -> Option<KernelModel<'m>> {
    let attrs = actor.opencl.as_ref()?;
    let ports = interfaces.get(actor.interface.as_str())?;
    // Exactly one `in` port carrying a named opencl struct.
    let req_port = ports
        .iter()
        .find(|p| p.dir == Dir::In && matches!(&p.ty, TypeExpr::Named(_)))?;
    let settings_name = match &req_port.ty {
        TypeExpr::Named(n) => n.as_str(),
        _ => return None,
    };
    let settings = structs.get(settings_name)?;
    if !settings.opencl || settings.fields.len() < 4 {
        return None;
    }
    let b = &actor.behaviour;
    if b.len() < 3 {
        return None;
    }
    let req_name = match &b[0] {
        Stmt::Receive { name, .. } => name.as_str(),
        _ => return None,
    };
    let data_name = match &b[1] {
        Stmt::Receive { name, .. } => name.as_str(),
        _ => return None,
    };
    if !matches!(b.last(), Some(Stmt::Send { .. })) {
        return None;
    }
    // Data shape from the settings' `in` channel field.
    let data = match &settings.fields[2].ty {
        TypeExpr::ChanIn(inner) => match inner.as_ref() {
            TypeExpr::Named(n) => {
                let s = structs.get(n.as_str())?;
                // All fields must be arrays for the struct-of-arrays shape.
                if !s.fields.iter().all(|f| matches!(f.ty, TypeExpr::Array(..))) {
                    return None;
                }
                DataModel::Struct(n.as_str())
            }
            TypeExpr::Array(_, nd) => DataModel::Array { ndims: *nd },
            _ => return None,
        },
        _ => return None,
    };
    let scalars = settings.fields[4..]
        .iter()
        .map(|f| f.name.as_str())
        .collect();
    Some(KernelModel {
        actor,
        scalars,
        req_name,
        data_name,
        data,
        body: &b[2..b.len() - 1], // strip both receives and the final send
        device: (attrs.device_index, attrs.device_type.clone()),
        req_port: req_port.name.as_str(),
    })
}
