//! Splittability proofs (`SplitProof`, W003).
//!
//! A dispatch is *splittable along dimension `d`* when the NDRange can
//! be cut between work-groups along `d` and the pieces run on different
//! devices with no cross-piece communication: no work-item on one side
//! of any cut writes a global location a work-item on the other side
//! reads or writes. (Private and `local` arrays are exempt — they are
//! per-item / per-group, and cuts are group-aligned.)
//!
//! For every pair of accesses to the same written global buffer the
//! prover seeks one of three witnesses:
//!
//! 1. **Structure identity** — some subscript position carries the
//!    *same* affine form in both accesses, and that form's per-item
//!    content is exactly one symbol of dimension `d` (`get_global_id(d)`
//!    — or `get_group_id(d)`, the reduction shape). Two items on
//!    opposite sides of a cut then provably hit different rows.
//! 2. **Interval disjointness** — the existing E002 machinery proves
//!    the two location sets never overlap for any item pair.
//! 3. **Matching pins** — both accesses are guarded by
//!    `get_global_id(d) == k` with the same `k`: both only happen in
//!    one slice, which a cut never separates from itself.
//!
//! A dimension whose witnesses include a `get_group_id` identity is
//! classified [`DimClass::Reduction`]: cross-group writes are disjoint,
//! but the output is a per-group combine slot, so a splitting scheduler
//! must also split the combine. A pair with no witness blocks the
//! dimension ([`DimClass::Blocked`]) and — in proofs mode — yields a
//! W003 naming the offending subscript pair.

use crate::kernel::{Access, Affine, KernelCheck, Sym, Target};
use ensemble_lang::diag::{codes, Diagnostic};
use ensemble_lang::proof::{DimClass, DimProof, SplitProof};

/// How a pair of accesses was proven safe along one dimension.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum Witness {
    /// Structure identity through `get_global_id(d)`.
    Gid(usize),
    /// Structure identity through `get_group_id(d)` (reduction shape).
    Grp(usize),
    /// Location sets provably disjoint outright.
    Disjoint,
    /// Both accesses pinned to the same slice along `d`.
    Pinned,
}

/// Compute the split proof for one walked kernel, plus the W003
/// diagnostics for blocked dimensions (emitted only in proofs mode).
pub(crate) fn prove(check: &KernelCheck) -> (SplitProof, Vec<Diagnostic>) {
    let ndims = if check.facts.ws_known {
        check.facts.ws_len.unwrap_or(3).clamp(1, 3) as usize
    } else {
        3
    };

    // Global buffer fields with at least one write.
    let mut fields: Vec<String> = Vec::new();
    for a in &check.accesses {
        if let Target::Global(f) = &a.target {
            if a.is_write && !fields.contains(f) {
                fields.push(f.clone());
            }
        }
    }

    let mut dims = Vec::new();
    let mut diags = Vec::new();
    for d in 0..ndims {
        if !check.facts.active(d) {
            dims.push(DimProof {
                dim: d,
                class: DimClass::Inactive,
                evidence: format!("worksize extent along dimension {d} is at most 1"),
            });
            continue;
        }
        let mut any_grp = false;
        let mut blocked: Option<(&Access, &Access, String)> = None;
        let mut witness_note: Option<String> = None;
        'fields: for field in &fields {
            let writes: Vec<&Access> = check
                .accesses
                .iter()
                .filter(|a| a.is_write && a.target == Target::Global(field.clone()))
                .collect();
            let all: Vec<&Access> = check
                .accesses
                .iter()
                .filter(|a| a.target == Target::Global(field.clone()))
                .collect();
            for w in &writes {
                for a in &all {
                    // Unordered pairs with at least one write; include
                    // the write against itself (two items, same site).
                    if (a.is_write && !std::ptr::eq(*a, *w))
                        && writes.iter().position(|x| std::ptr::eq(*x, *a))
                            < writes.iter().position(|x| std::ptr::eq(*x, *w))
                    {
                        continue; // symmetric write pair already done
                    }
                    match pair_witness(check, w, a, d as u8) {
                        Some(Witness::Grp(p)) => {
                            any_grp = true;
                            witness_note.get_or_insert_with(|| {
                                format!(
                                    "write `{}`: subscript {} is a per-group combine slot",
                                    check.render_access(w),
                                    p + 1
                                )
                            });
                        }
                        Some(Witness::Gid(p)) => {
                            witness_note.get_or_insert_with(|| {
                                format!(
                                    "write `{}`: subscript {} varies 1:1 with gid{d}",
                                    check.render_access(w),
                                    p + 1
                                )
                            });
                        }
                        Some(_) => {}
                        None => {
                            blocked = Some((w, a, field.clone()));
                            break 'fields;
                        }
                    }
                }
            }
        }
        match blocked {
            Some((w, a, field)) => {
                let wr = check.render_access(w);
                let ar = check.render_access(a);
                let name = check.target_name(&Target::Global(field));
                let evidence = format!(
                    "write `{wr}` and {} `{ar}` may touch the same element of `{name}` \
                     across a cut along dimension {d}",
                    if a.is_write { "write" } else { "read" },
                );
                diags.push(
                    Diagnostic::warning(
                        codes::SPLIT_UNPROVEN,
                        w.span,
                        format!(
                            "kernel `{}`: dimension {d} is not provably splittable — {evidence}",
                            check.kernel_name
                        ),
                    )
                    .with_note(a.span, format!("the conflicting access `{ar}` is here"))
                    .with_help(format!(
                        "index `{name}` by get_global_id({d}) in a shared subscript \
                         position, or guard both accesses to the same gid{d} slice"
                    )),
                );
                dims.push(DimProof {
                    dim: d,
                    class: DimClass::Blocked,
                    evidence,
                });
            }
            None if fields.is_empty() => dims.push(DimProof {
                dim: d,
                class: DimClass::Splittable,
                evidence: "no global buffer is written".to_string(),
            }),
            None => {
                let class = if any_grp {
                    DimClass::Reduction
                } else {
                    DimClass::Splittable
                };
                dims.push(DimProof {
                    dim: d,
                    class,
                    evidence: witness_note.unwrap_or_else(|| {
                        format!("all write-involving pairs provably disjoint along gid{d}")
                    }),
                });
            }
        }
    }

    (
        SplitProof {
            kernel: check.kernel_name.clone(),
            ndims,
            dims,
        },
        diags,
    )
}

/// Seek a safety witness for the pair `{w, a}` (at least one write)
/// along dimension `d`.
fn pair_witness(check: &KernelCheck, w: &Access, a: &Access, d: u8) -> Option<Witness> {
    // (1) Structure identity in some shared subscript position.
    for (p, (wi, ai)) in w.idxs.iter().zip(&a.idxs).enumerate() {
        let (Some(wi), Some(ai)) = (wi, ai) else {
            continue;
        };
        if wi != ai {
            continue;
        }
        match per_item_witness(check, wi, d) {
            Some(Witness::Gid(_)) => return Some(Witness::Gid(p)),
            Some(Witness::Grp(_)) => return Some(Witness::Grp(p)),
            _ => {}
        }
    }
    // (2) Outright interval disjointness (all item pairs).
    if check.disjoint(w, a) {
        return Some(Witness::Disjoint);
    }
    // (3) Both pinned to the same slice along `d`.
    let wp = w.gid_pinned.iter().find(|&&(pd, _)| pd == d as usize);
    let ap = a.gid_pinned.iter().find(|&&(pd, _)| pd == d as usize);
    if let (Some(&(_, v1)), Some(&(_, v2))) = (wp, ap) {
        if v1 == v2 {
            return Some(Witness::Pinned);
        }
    }
    None
}

/// Does this affine form distinguish items across a group-aligned cut
/// along `d`? Its per-item content must be exactly one symbol of
/// dimension `d` — `Gid(d)` or `Grp(d)` — with everything else uniform
/// or provably zero (per-item symbols of inactive dimensions).
fn per_item_witness(check: &KernelCheck, idx: &Affine, d: u8) -> Option<Witness> {
    let mut found: Option<Witness> = None;
    for (&s, &c) in &idx.terms {
        if s.is_uniform() || c == 0 {
            continue;
        }
        match s {
            Sym::Gid(e) if e == d => {
                if found.is_some() {
                    return None;
                }
                found = Some(Witness::Gid(0));
            }
            Sym::Grp(e) if e == d => {
                if found.is_some() {
                    return None;
                }
                found = Some(Witness::Grp(0));
            }
            Sym::Gid(e) | Sym::Lid(e) | Sym::Grp(e) if !check.facts.active(e as usize) => {}
            _ => return None,
        }
    }
    found
}
