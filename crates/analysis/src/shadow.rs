//! Dynamic shadow validator: concretely executes kernel bodies and
//! cross-checks the prover's claims against observed access sets.
//!
//! The prover (the `split` and `fusion` passes) reasons symbolically
//! over affine subscripts; this module is its adversary. Given concrete
//! dispatch parameters (NDRange sizes, settings scalars, buffer
//! extents), it runs every work-item of a kernel through a sequential
//! AST interpreter, records which *global* buffer elements each
//! work-group reads and writes, and then checks:
//!
//! - a **Splittable** dimension claim: no work-group slice along that
//!   dimension writes an element another slice reads or writes — a
//!   group-aligned cut really would need no cross-device traffic;
//! - a **Reduction** dimension claim: slices may share reads, but
//!   writes stay disjoint (the per-group combine slots);
//! - a **mergeable** fusion pair: the two dispatches' access sets are
//!   RAW/WAW/WAR-free against each other under the same buffer space.
//!
//! A refutation means the prover claimed something the execution
//! disproves — a soundness bug, and the test suite fails the build on
//! any. The converse (no refutation) is evidence, not proof: the
//! interpreter sees one concrete parameter choice. `barrier()` is a
//! no-op and `local` arrays are per-item here, which does not disturb
//! the check: local/private storage is never recorded, and for the
//! access-set question only subscripts matter, not the values that
//! flow through scratch memory (subscripts in the shipped kernels are
//! id- and scalar-dependent only).

use crate::model::{self, DataModel, KernelModel};
use ensemble_lang::ast::{BinOp, Expr, PathSeg, Stmt};
use ensemble_lang::proof::DimClass;
use ensemble_lang::ParseError;
use std::collections::{BTreeMap, BTreeSet, HashMap};

/// Concrete dispatch parameters for one kernel.
#[derive(Debug, Clone, Default)]
pub struct DispatchConfig {
    /// Global NDRange sizes (1–3 entries; missing trailing dims are 1).
    pub global: Vec<usize>,
    /// Work-group sizes (defaults to 1 per dimension).
    pub local: Vec<usize>,
    /// Settings scalar values by field name.
    pub scalars: BTreeMap<String, i64>,
    /// Global buffer extents by field name (the empty name is the bare
    /// array payload, e.g. mandelbrot's image).
    pub dims: BTreeMap<String, Vec<usize>>,
}

/// Dispatch parameters for every kernel under validation.
#[derive(Debug, Clone, Default)]
pub struct ShadowConfig {
    /// Kernel-actor name → its dispatch parameters.
    pub kernels: BTreeMap<String, DispatchConfig>,
}

/// One disproved claim: the prover said it, execution contradicts it.
#[derive(Debug, Clone)]
pub struct Refutation {
    /// The kernel (or `from->to` pair) the claim was about.
    pub kernel: String,
    /// The claim, e.g. `splittable dim 0` or `mergeable`.
    pub claim: String,
    /// What the execution observed.
    pub detail: String,
}

impl std::fmt::Display for Refutation {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "{}: `{}` refuted — {}", self.kernel, self.claim, self.detail)
    }
}

/// Run the prover, then execute every configured kernel and return all
/// claims the concrete run disproves (empty = all claims validated).
pub fn shadow_validate(src: &str, cfg: &ShadowConfig) -> Result<Vec<Refutation>, ParseError> {
    let module = ensemble_lang::parse(src)?;
    let report = crate::analyze(&module, src, &crate::Options::default());
    let model = model::build(&module);
    let mut refutations = Vec::new();

    // Per-kernel executions, cached for the fusion pair checks.
    let mut logs: HashMap<String, AccessLog> = HashMap::new();
    for k in &model.kernels {
        let Some(dc) = cfg.kernels.get(k.actor.name.as_str()) else {
            continue;
        };
        logs.insert(k.actor.name.clone(), execute(k, dc));
    }

    for sp in &report.proofs.splits {
        let Some(log) = logs.get(&sp.kernel) else {
            continue;
        };
        for dp in &sp.dims {
            match dp.class {
                DimClass::Splittable => {
                    if let Some(detail) = refute_slices(log, dp.dim, false) {
                        refutations.push(Refutation {
                            kernel: sp.kernel.clone(),
                            claim: format!("splittable dim {}", dp.dim),
                            detail,
                        });
                    }
                }
                DimClass::Reduction => {
                    if let Some(detail) = refute_slices(log, dp.dim, true) {
                        refutations.push(Refutation {
                            kernel: sp.kernel.clone(),
                            claim: format!("reduction dim {}", dp.dim),
                            detail,
                        });
                    }
                }
                DimClass::Blocked | DimClass::Inactive => {}
            }
        }
    }

    for fp in &report.proofs.fusion {
        for pair in &fp.pairs {
            if !pair.mergeable {
                continue;
            }
            let (Some(a), Some(b)) = (logs.get(&pair.from), logs.get(&pair.to)) else {
                continue;
            };
            if let Some(detail) = refute_merge(a, b) {
                refutations.push(Refutation {
                    kernel: format!("{}->{}", pair.from, pair.to),
                    claim: "mergeable".to_string(),
                    detail,
                });
            }
        }
    }

    Ok(refutations)
}

// ---- claim checks -----------------------------------------------------

type Loc = (String, Vec<i64>);

/// What one dispatch touched: per global element, the set of group
/// coordinates that read / wrote it.
#[derive(Default)]
struct AccessLog {
    readers: HashMap<Loc, BTreeSet<[usize; 3]>>,
    writers: HashMap<Loc, BTreeSet<[usize; 3]>>,
}

/// Seek a location whose writers span ≥ 2 slices along `d`, or (unless
/// `writes_only`) one written in one slice and touched in another.
fn refute_slices(log: &AccessLog, d: usize, writes_only: bool) -> Option<String> {
    for (loc, wgroups) in &log.writers {
        let mut slices: BTreeSet<usize> = wgroups.iter().map(|g| g[d]).collect();
        if !writes_only {
            if let Some(rgroups) = log.readers.get(loc) {
                slices.extend(rgroups.iter().map(|g| g[d]));
            }
        }
        if slices.len() >= 2 {
            return Some(format!(
                "element `{}` is written in slice {} and touched in slice {} along dim {d}",
                render_loc(loc),
                slices.iter().next().unwrap(),
                slices.iter().next_back().unwrap(),
            ));
        }
    }
    None
}

/// Seek a RAW/WAW/WAR collision between the two dispatches' logs.
fn refute_merge(a: &AccessLog, b: &AccessLog) -> Option<String> {
    for loc in a.writers.keys() {
        if b.readers.contains_key(loc) {
            return Some(format!("RAW on element `{}`", render_loc(loc)));
        }
        if b.writers.contains_key(loc) {
            return Some(format!("WAW on element `{}`", render_loc(loc)));
        }
    }
    for loc in a.readers.keys() {
        if b.writers.contains_key(loc) {
            return Some(format!("WAR on element `{}`", render_loc(loc)));
        }
    }
    None
}

fn render_loc((f, idxs): &Loc) -> String {
    let subs: String = idxs.iter().map(|i| format!("[{i}]")).collect();
    if f.is_empty() {
        format!("data{subs}")
    } else {
        format!("{f}{subs}")
    }
}

// ---- the interpreter --------------------------------------------------

#[derive(Debug, Clone, PartialEq)]
enum Value {
    Int(i64),
    Real(f64),
    Bool(bool),
    /// Index into the private/local array arena.
    Arr(usize),
}

impl Value {
    fn as_i64(&self) -> i64 {
        match self {
            Value::Int(v) => *v,
            Value::Real(v) => *v as i64,
            Value::Bool(b) => i64::from(*b),
            Value::Arr(_) => 0,
        }
    }
    fn as_f64(&self) -> f64 {
        match self {
            Value::Int(v) => *v as f64,
            Value::Real(v) => *v,
            Value::Bool(b) => f64::from(u8::from(*b)),
            Value::Arr(_) => 0.0,
        }
    }
    fn truthy(&self) -> bool {
        match self {
            Value::Bool(b) => *b,
            Value::Int(v) => *v != 0,
            Value::Real(v) => *v != 0.0,
            Value::Arr(_) => false,
        }
    }
}

struct Interp<'m, 'c> {
    kernel: &'m KernelModel<'m>,
    cfg: &'c DispatchConfig,
    /// Work-item ids, per dimension.
    gid: [usize; 3],
    env: Vec<HashMap<String, Value>>,
    arena: Vec<Vec<Value>>,
    /// Values previously written to global elements (read-back overlay;
    /// seeded deterministically below it).
    heap: HashMap<Loc, Value>,
    log: AccessLog,
    /// Fuel bounds runaway loops in malformed inputs.
    fuel: u64,
}

/// Execute every work-item of `kernel` under `cfg`, returning the
/// access log. Items run in gid order; `barrier()` is a no-op.
fn execute(kernel: &KernelModel<'_>, cfg: &DispatchConfig) -> AccessLog {
    let dim = |v: &[usize], d: usize| *v.get(d).unwrap_or(&1).max(&1);
    let g = [
        dim(&cfg.global, 0),
        dim(&cfg.global, 1),
        dim(&cfg.global, 2),
    ];
    let mut interp = Interp {
        kernel,
        cfg,
        gid: [0; 3],
        env: Vec::new(),
        arena: Vec::new(),
        heap: HashMap::new(),
        log: AccessLog::default(),
        fuel: 0,
    };
    for z in 0..g[2] {
        for y in 0..g[1] {
            for x in 0..g[0] {
                interp.gid = [x, y, z];
                interp.env = vec![HashMap::new()];
                interp.arena.clear();
                interp.fuel = 1_000_000;
                interp.block(kernel.body);
            }
        }
    }
    interp.log
}

impl Interp<'_, '_> {
    fn lsize(&self, d: usize) -> usize {
        *self.cfg.local.get(d).unwrap_or(&1).max(&1)
    }

    fn group(&self) -> [usize; 3] {
        [
            self.gid[0] / self.lsize(0),
            self.gid[1] / self.lsize(1),
            self.gid[2] / self.lsize(2),
        ]
    }

    fn block(&mut self, body: &[Stmt]) {
        self.env.push(HashMap::new());
        for s in body {
            if self.fuel == 0 {
                break;
            }
            self.stmt(s);
        }
        self.env.pop();
    }

    fn stmt(&mut self, s: &Stmt) {
        self.fuel = self.fuel.saturating_sub(1);
        match s {
            Stmt::Declare { name, value, .. } | Stmt::DeclareLocal { name, value, .. } => {
                let v = self.eval(value);
                self.env
                    .last_mut()
                    .expect("scope")
                    .insert(name.clone(), v);
            }
            Stmt::Assign {
                name, path, value, ..
            } => {
                let v = self.eval(value);
                self.assign(name, path, v);
            }
            Stmt::If {
                cond,
                then_blk,
                else_blk,
                ..
            } => {
                if self.eval(cond).truthy() {
                    self.block(then_blk);
                } else {
                    self.block(else_blk);
                }
            }
            Stmt::For {
                var,
                from,
                to,
                body,
                ..
            } => {
                let lo = self.eval(from).as_i64();
                let hi = self.eval(to).as_i64();
                for i in lo..=hi {
                    // Charge fuel per iteration, not just per body
                    // statement: an empty body over a huge range must
                    // still hit the backstop.
                    if self.fuel == 0 {
                        break;
                    }
                    self.fuel -= 1;
                    self.env.push(HashMap::new());
                    self.env
                        .last_mut()
                        .expect("scope")
                        .insert(var.clone(), Value::Int(i));
                    for st in body {
                        self.stmt(st);
                    }
                    self.env.pop();
                }
            }
            Stmt::While { cond, body } => {
                // Charge fuel per iteration in the header: a truthy
                // condition over an empty body consumes no statement
                // fuel and would otherwise spin forever.
                while self.fuel > 0 && self.eval(cond).truthy() {
                    self.fuel -= 1;
                    self.block(body);
                }
            }
            // Protocol statements never appear in the modelled body
            // (the model strips them); barriers and prints are no-ops
            // for access recording.
            Stmt::Barrier { .. }
            | Stmt::Print { .. }
            | Stmt::Send { .. }
            | Stmt::Receive { .. }
            | Stmt::Connect { .. }
            | Stmt::Stop { .. } => {}
        }
    }

    fn lookup(&self, name: &str) -> Option<Value> {
        self.env.iter().rev().find_map(|s| s.get(name).cloned())
    }

    fn set_var(&mut self, name: &str, v: Value) {
        for scope in self.env.iter_mut().rev() {
            if let Some(slot) = scope.get_mut(name) {
                *slot = v;
                return;
            }
        }
        self.env
            .last_mut()
            .expect("scope")
            .insert(name.to_string(), v);
    }

    /// Is this path root the kernel's global data payload?
    fn is_data_root(&self, root: &str) -> bool {
        root == self.kernel.data_name
    }

    /// Resolve a data-payload path to a global location: the buffer
    /// field ("" for a bare array) and the concrete subscripts.
    fn global_loc(&mut self, root: &str, segs: &[PathSeg]) -> Option<Loc> {
        if !self.is_data_root(root) {
            return None;
        }
        let (field, rest) = match (&self.kernel.data, segs.first()) {
            (DataModel::Struct(_), Some(PathSeg::Field(f))) => (f.clone(), &segs[1..]),
            (DataModel::Array { .. }, _) => (String::new(), segs),
            _ => return None,
        };
        let mut idxs = Vec::new();
        for seg in rest {
            match seg {
                PathSeg::Index(e) => idxs.push(self.eval(e).as_i64()),
                PathSeg::Field(_) => return None,
            }
        }
        Some((field, idxs))
    }

    fn assign(&mut self, name: &str, path: &[PathSeg], v: Value) {
        if path.is_empty() {
            self.set_var(name, v);
            return;
        }
        if let Some(loc) = self.global_loc(name, path) {
            // A partial write (fewer subscripts than dims) would be a
            // whole-row write; the shipped kernels always write
            // elements. Record as-is either way.
            let group = self.group();
            self.log.writers.entry(loc.clone()).or_default().insert(group);
            self.heap.insert(loc, v);
            return;
        }
        // Private / local array element.
        if let Some(Value::Arr(id)) = self.lookup(name) {
            if let Some(PathSeg::Index(e)) = path.first() {
                let i = self.eval(e).as_i64();
                if let Some(slot) = self
                    .arena
                    .get_mut(id)
                    .and_then(|a| a.get_mut(i.max(0) as usize))
                {
                    *slot = v;
                }
            }
        }
    }

    /// Deterministic seed value for an untouched global element, so
    /// data-dependent control flow is stable across dispatches.
    fn seed(loc: &Loc) -> Value {
        let mut h: i64 = 7;
        for b in loc.0.bytes() {
            h = h.wrapping_mul(31).wrapping_add(i64::from(b));
        }
        for i in &loc.1 {
            h = h.wrapping_mul(31).wrapping_add(*i);
        }
        Value::Real(((h % 97).abs()) as f64)
    }

    fn eval(&mut self, e: &Expr) -> Value {
        match e {
            Expr::Int(v, _) => Value::Int(*v),
            Expr::Real(v, _) => Value::Real(*v),
            Expr::Bool(b, _) => Value::Bool(*b),
            Expr::Str(..) => Value::Int(0),
            Expr::Neg(inner, _) => match self.eval(inner) {
                Value::Int(v) => Value::Int(-v),
                Value::Real(v) => Value::Real(-v),
                v => v,
            },
            Expr::Not(inner, _) => Value::Bool(!self.eval(inner).truthy()),
            Expr::Binary(op, l, r, _) => {
                let a = self.eval(l);
                let b = self.eval(r);
                self.binop(*op, a, b)
            }
            Expr::Call(name, args, _) => self.call(name, args),
            Expr::NewArray { dims, fill, .. } => {
                let len = dims
                    .first()
                    .map(|d| self.eval(d).as_i64().max(0) as usize)
                    .unwrap_or(0);
                let init = fill
                    .as_ref()
                    .map(|f| self.eval(f))
                    .unwrap_or(Value::Real(0.0));
                let id = self.arena.len();
                self.arena.push(vec![init; len.min(1 << 20)]);
                Value::Arr(id)
            }
            Expr::NewStruct { .. }
            | Expr::NewActor { .. }
            | Expr::NewChanIn(..)
            | Expr::NewChanOut(..) => Value::Int(0),
            Expr::Path(root, segs, _) => self.eval_path(root, segs),
        }
    }

    fn eval_path(&mut self, root: &str, segs: &[PathSeg]) -> Value {
        // Settings scalars: `req.<field>`.
        if root == self.kernel.req_name {
            if let Some(PathSeg::Field(f)) = segs.first() {
                if let Some(v) = self.cfg.scalars.get(f.as_str()) {
                    return Value::Int(*v);
                }
            }
            return Value::Int(0);
        }
        if let Some(loc) = self.global_loc(root, segs) {
            let group = self.group();
            self.log.readers.entry(loc.clone()).or_default().insert(group);
            return self.heap.get(&loc).cloned().unwrap_or_else(|| Self::seed(&loc));
        }
        let Some(v) = self.lookup(root) else {
            return Value::Int(0);
        };
        if segs.is_empty() {
            return v;
        }
        if let (Value::Arr(id), Some(PathSeg::Index(e))) = (&v, segs.first()) {
            let i = self.eval(e).as_i64();
            return self
                .arena
                .get(*id)
                .and_then(|a| a.get(i.max(0) as usize))
                .cloned()
                .unwrap_or(Value::Real(0.0));
        }
        Value::Int(0)
    }

    fn call(&mut self, name: &str, args: &[Expr]) -> Value {
        let dim_arg = |interp: &mut Self| {
            args.first()
                .map(|a| interp.eval(a).as_i64().clamp(0, 2) as usize)
                .unwrap_or(0)
        };
        match name {
            "get_global_id" => {
                let d = dim_arg(self);
                Value::Int(self.gid[d] as i64)
            }
            "get_local_id" => {
                let d = dim_arg(self);
                Value::Int((self.gid[d] % self.lsize(d)) as i64)
            }
            "get_group_id" => {
                let d = dim_arg(self);
                Value::Int((self.gid[d] / self.lsize(d)) as i64)
            }
            "get_global_size" => {
                let d = dim_arg(self);
                Value::Int(*self.cfg.global.get(d).unwrap_or(&1).max(&1) as i64)
            }
            "get_local_size" => {
                let d = dim_arg(self);
                Value::Int(self.lsize(d) as i64)
            }
            "get_num_groups" => {
                let d = dim_arg(self);
                let g = *self.cfg.global.get(d).unwrap_or(&1).max(&1);
                Value::Int(g.div_ceil(self.lsize(d)) as i64)
            }
            "lengthof" => {
                if let Some(Expr::Path(root, segs, _)) = args.first() {
                    // Depth into the buffer = number of Index segs.
                    if self.is_data_root(root) {
                        let (field, depth) = match segs.first() {
                            Some(PathSeg::Field(f)) => (f.as_str(), segs.len() - 1),
                            _ => ("", segs.len()),
                        };
                        if let Some(dims) = self.cfg.dims.get(field) {
                            return Value::Int(*dims.get(depth).unwrap_or(&1) as i64);
                        }
                        return Value::Int(1);
                    }
                    if let Some(Value::Arr(id)) = self.lookup(root) {
                        return Value::Int(self.arena.get(id).map_or(0, Vec::len) as i64);
                    }
                }
                Value::Int(0)
            }
            "toReal" => Value::Real(args.first().map_or(0.0, |a| self.eval(a).as_f64())),
            "toInt" => Value::Int(args.first().map_or(0, |a| self.eval(a).as_i64())),
            "sqrt" => Value::Real(args.first().map_or(0.0, |a| self.eval(a).as_f64()).sqrt()),
            "fabs" => Value::Real(args.first().map_or(0.0, |a| self.eval(a).as_f64()).abs()),
            _ => Value::Int(0),
        }
    }

    fn binop(&self, op: BinOp, a: Value, b: Value) -> Value {
        use BinOp::*;
        let both_int = matches!((&a, &b), (Value::Int(_), Value::Int(_)))
            || matches!((&a, &b), (Value::Bool(_), Value::Int(_)))
            || matches!((&a, &b), (Value::Int(_), Value::Bool(_)));
        match op {
            Add | Sub | Mul | Div | Rem if both_int => {
                let (x, y) = (a.as_i64(), b.as_i64());
                Value::Int(match op {
                    Add => x.wrapping_add(y),
                    Sub => x.wrapping_sub(y),
                    Mul => x.wrapping_mul(y),
                    Div => {
                        if y == 0 {
                            0
                        } else {
                            x / y
                        }
                    }
                    Rem => {
                        if y == 0 {
                            0
                        } else {
                            x % y
                        }
                    }
                    _ => unreachable!(),
                })
            }
            Add | Sub | Mul | Div | Rem => {
                let (x, y) = (a.as_f64(), b.as_f64());
                Value::Real(match op {
                    Add => x + y,
                    Sub => x - y,
                    Mul => x * y,
                    Div => {
                        if y == 0.0 {
                            0.0
                        } else {
                            x / y
                        }
                    }
                    Rem => {
                        if y == 0.0 {
                            0.0
                        } else {
                            x % y
                        }
                    }
                    _ => unreachable!(),
                })
            }
            Eq => Value::Bool(a.as_f64() == b.as_f64()),
            Ne => Value::Bool(a.as_f64() != b.as_f64()),
            Lt => Value::Bool(a.as_f64() < b.as_f64()),
            Le => Value::Bool(a.as_f64() <= b.as_f64()),
            Gt => Value::Bool(a.as_f64() > b.as_f64()),
            Ge => Value::Bool(a.as_f64() >= b.as_f64()),
            And => Value::Bool(a.truthy() && b.truthy()),
            Or => Value::Bool(a.truthy() || b.truthy()),
        }
    }
}

// Canary tests: drive the refutation machinery directly on kernels that
// genuinely conflict, proving the validator *can* refute. Without these
// a broken interpreter that logs nothing would pass every integration
// test vacuously.
#[cfg(test)]
mod tests {
    use super::*;

    const W003: &str = include_str!("../tests/fixtures/w003.ens");
    const W004: &str = include_str!("../tests/fixtures/w004.ens");
    const FUSION_OK: &str = include_str!("../tests/fixtures/fusion_ok.ens");

    fn cfg(global: &[usize], local: &[usize], dims: &[(&str, &[usize])]) -> DispatchConfig {
        DispatchConfig {
            global: global.to_vec(),
            local: local.to_vec(),
            scalars: BTreeMap::new(),
            dims: dims
                .iter()
                .map(|(k, v)| (k.to_string(), v.to_vec()))
                .collect(),
        }
    }

    fn log_for(src: &str, kernel: &str, dc: &DispatchConfig) -> AccessLog {
        let module = ensemble_lang::parse(src).expect("fixture parses");
        let model = model::build(&module);
        let k = model
            .kernels
            .iter()
            .find(|k| k.actor.name == kernel)
            .expect("kernel exists");
        execute(k, dc)
    }

    #[test]
    fn cross_slice_traffic_is_refuted() {
        // w003's Broadcast: row 0 writes `out`, every row reads it.
        let dc = cfg(
            &[8, 8],
            &[4, 4],
            &[("inp", &[8]), ("out", &[8]), ("res", &[8, 8])],
        );
        let log = log_for(W003, "Broadcast", &dc);
        // A (bogus) splittable claim along dim 1 must be refuted …
        assert!(refute_slices(&log, 1, false).is_some());
        // … the genuine dim-0 claim must survive …
        assert!(refute_slices(&log, 0, false).is_none());
        // … and a writes-only (reduction-style) check along dim 1 holds
        // too: each element of `out`/`res` has a single writing slice.
        assert!(refute_slices(&log, 1, true).is_none());
    }

    #[test]
    fn overlapping_dispatches_are_refuted() {
        // w004's Produce and Scale both touch `v[gid]`: a (bogus)
        // mergeable claim must be refuted.
        let dc = cfg(&[8], &[4], &[("v", &[8])]);
        let a = log_for(W004, "Produce", &dc);
        let b = log_for(W004, "Scale", &dc);
        assert!(refute_merge(&a, &b).is_some());

        // fusion_ok's Double and Square write disjoint buffers: the
        // genuine mergeable claim survives.
        let dc = cfg(&[8], &[4], &[("inp", &[8]), ("dbl", &[8]), ("sqr", &[8])]);
        let a = log_for(FUSION_OK, "Double", &dc);
        let b = log_for(FUSION_OK, "Square", &dc);
        assert!(refute_merge(&a, &b).is_none());
    }
}
