//! Proof-engine integration tests: pin the exact proofs the shipped
//! applications earn, and cross-check every positive claim with the
//! dynamic shadow validator. A refutation anywhere fails the build —
//! the prover must never claim more than a concrete execution can
//! confirm.

use ensemble_analysis::{
    analyze_source, shadow_validate, DispatchConfig, Options, Report, ShadowConfig,
};
use ensemble_lang::proof::{DimClass, Hazard};
use proptest::prelude::*;
use std::collections::BTreeMap;
use std::path::{Path, PathBuf};

fn assets() -> PathBuf {
    Path::new(env!("CARGO_MANIFEST_DIR")).join("../apps/src/assets")
}

fn fixtures() -> PathBuf {
    Path::new(env!("CARGO_MANIFEST_DIR")).join("tests/fixtures")
}

fn proofs_opts() -> Options {
    let mut opts = Options::default();
    opts.proofs = true;
    opts
}

fn app_report(app: &str) -> Report {
    let src = std::fs::read_to_string(assets().join(app).join("ocl.ens")).unwrap();
    analyze_source(&src, &proofs_opts()).unwrap()
}

fn dc(
    global: &[usize],
    local: &[usize],
    scalars: &[(&str, i64)],
    dims: &[(&str, &[usize])],
) -> DispatchConfig {
    DispatchConfig {
        global: global.to_vec(),
        local: local.to_vec(),
        scalars: scalars.iter().map(|(k, v)| (k.to_string(), *v)).collect(),
        dims: dims
            .iter()
            .map(|(k, v)| (k.to_string(), v.to_vec()))
            .collect(),
    }
}

fn shadow_cfg(kernels: Vec<(&str, DispatchConfig)>) -> ShadowConfig {
    ShadowConfig {
        kernels: kernels
            .into_iter()
            .map(|(k, c)| (k.to_string(), c))
            .collect::<BTreeMap<_, _>>(),
    }
}

fn classes(report: &Report, kernel: &str) -> Vec<DimClass> {
    let sp = report
        .proofs
        .splits
        .iter()
        .find(|s| s.kernel == kernel)
        .unwrap_or_else(|| panic!("no split proof for `{kernel}`"));
    sp.dims.iter().map(|d| d.class).collect()
}

// ---- per-app proof shapes ---------------------------------------------

#[test]
fn matmul_is_splittable_on_both_dims() {
    let r = app_report("matmul");
    assert!(r.diagnostics.is_empty(), "{:?}", r.diagnostics);
    assert_eq!(
        classes(&r, "Multiply"),
        vec![DimClass::Splittable, DimClass::Splittable]
    );
    let f = &r.proofs.fusion[0];
    assert_eq!(f.host, "Dispatch");
    assert_eq!(f.sites, vec!["Multiply"]);
    assert_eq!(f.barrier.as_deref(), Some("readback receive"));
    let s = &r.proofs.sends[0];
    assert_eq!((s.actor.as_str(), s.payload.as_str()), ("Dispatch", "d"));
    assert!(s.unmutated, "matmul payload must be provably CoW-safe");
    // Single-site chain: no chain role recorded.
    assert!(r.kernel_proofs["Multiply"].chain.is_none());
}

#[test]
fn mandelbrot_is_splittable_on_both_dims() {
    let r = app_report("mandelbrot");
    assert!(r.diagnostics.is_empty(), "{:?}", r.diagnostics);
    assert_eq!(
        classes(&r, "Mandelbrot"),
        vec![DimClass::Splittable, DimClass::Splittable]
    );
    let s = &r.proofs.sends[0];
    assert_eq!(s.payload, "img");
    assert!(s.unmutated);
}

#[test]
fn reduction_tree_dim_is_classified_reduction() {
    let r = app_report("reduction");
    assert!(r.diagnostics.is_empty(), "{:?}", r.diagnostics);
    assert_eq!(classes(&r, "Reduce"), vec![DimClass::Reduction]);
    let sp = &r.proofs.splits[0];
    assert!(
        sp.dims[0].evidence.contains("per-group combine slot"),
        "evidence should name the combine slot: {}",
        sp.dims[0].evidence
    );
    // The host mutates `data` only *before* constructing and sending
    // the payload, so the send is still CoW-safe.
    assert!(r.proofs.sends[0].unmutated);
}

#[test]
fn docrank_chain_loops_ten_times_with_waw_wraparound() {
    let r = app_report("docrank");
    assert_eq!(classes(&r, "Rank"), vec![DimClass::Splittable]);
    let f = &r.proofs.fusion[0];
    assert_eq!(f.sites, vec!["Rank"]);
    assert!(f.loops);
    assert_eq!(f.iterations, Some(10));
    // The only pair is Rank against its own next iteration: both write
    // `flags[gid]`, a WAW hazard across the loop back-edge.
    assert_eq!(f.pairs.len(), 1);
    let p = &f.pairs[0];
    assert!(!p.mergeable);
    let (hz, buf) = p.hazard.as_ref().expect("hazard recorded");
    assert_eq!((*hz, buf.as_str()), (Hazard::Waw, "flags"));
    // In proofs mode that surfaces as exactly one W004.
    let w004: Vec<_> = r.diagnostics.iter().filter(|d| d.code == "W004").collect();
    assert_eq!(w004.len(), 1, "{:?}", r.diagnostics);
}

#[test]
fn lud_chain_is_diag_col_sub_with_raw_hazards() {
    let r = app_report("lud");
    assert_eq!(classes(&r, "Diag"), vec![DimClass::Inactive]);
    assert_eq!(classes(&r, "Col"), vec![DimClass::Splittable]);
    assert_eq!(
        classes(&r, "Sub"),
        vec![DimClass::Splittable, DimClass::Splittable]
    );

    let f = &r.proofs.fusion[0];
    assert_eq!(f.host, "Controller");
    assert_eq!(f.sites, vec!["Diag", "Col", "Sub"]);
    assert!(f.loops);
    assert_eq!(f.iterations, Some(2048));
    // Every adjacent pair (including the Sub -> Diag wrap-around)
    // carries a RAW hazard: the factorisation is inherently ordered.
    let got: Vec<(&str, &str, Hazard, &str)> = f
        .pairs
        .iter()
        .map(|p| {
            let (hz, buf) = p.hazard.as_ref().expect("hazard");
            (p.from.as_str(), p.to.as_str(), *hz, buf.as_str())
        })
        .collect();
    assert_eq!(
        got,
        vec![
            ("Diag", "Col", Hazard::Raw, "piv"),
            ("Col", "Sub", Hazard::Raw, "m"),
            ("Sub", "Diag", Hazard::Raw, "m"),
        ]
    );

    // Chain roles thread through to the per-kernel proofs.
    for (k, idx) in [("Diag", 0), ("Col", 1), ("Sub", 2)] {
        let role = r.kernel_proofs[k].chain.as_ref().unwrap();
        assert_eq!((role.host.as_str(), role.len, role.index), ("Controller", 3, idx));
        assert!(!role.mergeable_with_prev);
    }

    let w004: Vec<_> = r.diagnostics.iter().filter(|d| d.code == "W004").collect();
    assert_eq!(w004.len(), 3, "{:?}", r.diagnostics);
}

#[test]
fn every_shipped_kernel_earns_a_split_proof() {
    for app in ["matmul", "mandelbrot", "reduction", "docrank", "lud"] {
        let r = app_report(app);
        assert!(!r.proofs.splits.is_empty(), "{app}: no split proofs");
        for sp in &r.proofs.splits {
            assert!((1..=3).contains(&sp.ndims), "{app}/{}", sp.kernel);
            assert_eq!(sp.dims.len(), sp.ndims, "{app}/{}", sp.kernel);
            for d in &sp.dims {
                assert!(!d.evidence.is_empty(), "{app}/{}", sp.kernel);
            }
            assert!(
                r.kernel_proofs.contains_key(&sp.kernel),
                "{app}/{} missing from kernel_proofs",
                sp.kernel
            );
        }
    }
}

#[test]
fn fusion_ok_pair_is_mergeable_and_shadow_confirms() {
    let src = std::fs::read_to_string(fixtures().join("fusion_ok.ens")).unwrap();
    let r = analyze_source(&src, &proofs_opts()).unwrap();
    assert!(r.diagnostics.is_empty(), "{:?}", r.diagnostics);
    let f = &r.proofs.fusion[0];
    assert_eq!(f.sites, vec!["Double", "Square"]);
    let p = &f.pairs[0];
    assert!(p.mergeable, "disjoint-buffer pair must be mergeable: {}", p.detail);
    assert!(p.hazard.is_none());
    let role = r.kernel_proofs["Square"].chain.as_ref().unwrap();
    assert!(role.mergeable_with_prev);

    // The shadow validator executes both dispatches and re-checks the
    // mergeable claim against the concrete access sets.
    let d = dc(&[8], &[4], &[], &[("inp", &[8]), ("dbl", &[8]), ("sqr", &[8])]);
    let refs = shadow_validate(
        &src,
        &shadow_cfg(vec![("Double", d.clone()), ("Square", d)]),
    )
    .unwrap();
    assert!(refs.is_empty(), "{refs:?}");
}

#[test]
fn w003_fixture_blocks_exactly_one_dim() {
    let src = std::fs::read_to_string(fixtures().join("w003.ens")).unwrap();
    let r = analyze_source(&src, &proofs_opts()).unwrap();
    assert_eq!(
        classes(&r, "Broadcast"),
        vec![DimClass::Splittable, DimClass::Blocked]
    );
    // The surviving dim-0 claim holds up under execution.
    let cfg = shadow_cfg(vec![(
        "Broadcast",
        dc(
            &[8, 8],
            &[4, 4],
            &[],
            &[("inp", &[8]), ("out", &[8]), ("res", &[8, 8])],
        ),
    )]);
    let refs = shadow_validate(&src, &cfg).unwrap();
    assert!(refs.is_empty(), "{refs:?}");
}

// ---- shadow validation of every shipped source ------------------------

#[test]
fn shadow_validates_all_shipped_sources() {
    // Concrete (small) dispatch shapes per kernel actor; sequential
    // sources carry no kernels and must validate trivially.
    let mut checked = 0;
    for app in std::fs::read_dir(assets()).unwrap() {
        let app = app.unwrap().path();
        let name = app.file_name().unwrap().to_str().unwrap().to_string();
        for f in std::fs::read_dir(&app).unwrap() {
            let f = f.unwrap().path();
            if f.extension().is_none_or(|e| e != "ens") {
                continue;
            }
            let src = std::fs::read_to_string(&f).unwrap();
            let cfg = shadow_cfg(app_shadow_kernels(&name));
            let refs = shadow_validate(&src, &cfg).unwrap();
            assert!(refs.is_empty(), "{}: {refs:?}", f.display());
            checked += 1;
        }
    }
    assert!(checked >= 10, "expected to shadow-validate all app sources");
}

fn app_shadow_kernels(app: &str) -> Vec<(&'static str, DispatchConfig)> {
    let lud = |g: &[usize], l: &[usize]| {
        dc(g, l, &[("step", 1)], &[("m", &[8, 8]), ("piv", &[8])])
    };
    match app {
        "matmul" => vec![(
            "Multiply",
            dc(
                &[4, 4],
                &[2, 2],
                &[],
                &[("a", &[4, 4]), ("b", &[4, 4]), ("result", &[4, 4])],
            ),
        )],
        "mandelbrot" => vec![("Mandelbrot", dc(&[4, 4], &[2, 2], &[], &[("", &[4, 4])]))],
        "reduction" => vec![(
            "Reduce",
            dc(&[8], &[4], &[], &[("input", &[8]), ("partial", &[2])]),
        )],
        "docrank" => vec![(
            "Rank",
            dc(
                &[4],
                &[2],
                &[],
                &[("docs", &[4, 64]), ("tpl", &[64]), ("flags", &[4])],
            ),
        )],
        "lud" => vec![
            ("Diag", lud(&[1], &[1])),
            ("Col", lud(&[2], &[1])),
            ("Sub", lud(&[2, 2], &[1, 1])),
        ],
        _ => Vec::new(),
    }
}

// ---- suppression ------------------------------------------------------

#[test]
fn proof_warnings_respect_allow_flags() {
    for (fixture, code) in [("w003.ens", "W003"), ("w004.ens", "W004"), ("w005.ens", "W005")] {
        let src = std::fs::read_to_string(fixtures().join(fixture)).unwrap();
        let mut opts = proofs_opts();
        let r = analyze_source(&src, &opts).unwrap();
        assert!(
            r.diagnostics.iter().any(|d| d.code == code),
            "{fixture}: expected {code} before suppression"
        );
        opts.allow.insert(code.to_string());
        let r = analyze_source(&src, &opts).unwrap();
        assert!(
            r.diagnostics.is_empty(),
            "{fixture}: --allow {code} must suppress: {:?}",
            r.diagnostics
        );
    }
}

#[test]
fn proof_warnings_respect_allow_comments() {
    // Annotating the flagged line with `// allow(W004)` suppresses it
    // the same way it does for the E codes.
    let src = std::fs::read_to_string(fixtures().join("w004.ens")).unwrap();
    let marked = src.replace(
        "send new settings_t(ws, gs, sin, scale_out) on scale_req;",
        "send new settings_t(ws, gs, sin, scale_out) on scale_req; // allow(W004)",
    );
    assert_ne!(src, marked, "anchor line moved — update this test");
    let r = analyze_source(&marked, &proofs_opts()).unwrap();
    assert!(r.diagnostics.is_empty(), "{:?}", r.diagnostics);
}

// ---- CLI --------------------------------------------------------------

#[test]
fn ens_lint_proofs_json_round_trips() {
    let bin = env!("CARGO_BIN_EXE_ens-lint");
    let matmul = assets().join("matmul/ocl.ens");
    let out = std::process::Command::new(bin)
        .args(["--proofs", "--json"])
        .arg(&matmul)
        .output()
        .unwrap();
    assert!(out.status.success());
    let stdout = String::from_utf8(out.stdout).unwrap();
    assert!(stdout.contains("\"errors\":0"), "{stdout}");
    assert!(stdout.contains("\"class\":\"splittable\""), "{stdout}");
    assert!(stdout.contains("\"unmutated\":true"), "{stdout}");

    // Errors exit 1; usage errors exit 2; warnings-only exits 0.
    let racy = fixtures().join("racy.ens");
    let out = std::process::Command::new(bin).arg(&racy).output().unwrap();
    assert_eq!(out.status.code(), Some(1));
    let out = std::process::Command::new(bin).output().unwrap();
    assert_eq!(out.status.code(), Some(2));
    let w004 = fixtures().join("w004.ens");
    let out = std::process::Command::new(bin)
        .arg("--proofs")
        .arg(&w004)
        .output()
        .unwrap();
    assert_eq!(out.status.code(), Some(0), "warnings-only must exit 0");
}

// ---- soundness regressions --------------------------------------------
// Each test pins a prover-soundness fix: claims that once leaked through
// (wrap-around chains across real barriers, scalar unification without
// value equality, conditional loops, re-aliasing rebinds, unbounded
// empty loops) must stay refuted.

/// Two mov kernels and a dispatch loop whose body mutates the sent
/// payload *between* the two enqueues. The mutation is a fusion
/// barrier, so neither chain may close over the loop back-edge.
const MUTATED_IN_LOOP_SRC: &str = r#"
type data_t is struct (
    mov real [] v;
    mov integer [] flags
)
type settings_t is opencl struct (
    integer [] worksize;
    integer [] groupsize;
    in data_t input;
    out data_t output
)
type hostI is interface (
    out settings_t a_req;
    out settings_t b_req
)
type kI is interface(
    in settings_t requests
)

stage home {

    opencl <device_index=0, device_type=GPU>
    actor A presents kI {
        constructor() {}
        behaviour {
            receive req from requests;
            receive d from req.input;
            gid = get_global_id(0);
            d.v[gid] := 1.0;
            send d on req.output;
        }
    }

    opencl <device_index=0, device_type=GPU>
    actor B presents kI {
        constructor() {}
        behaviour {
            receive req from requests;
            receive d from req.input;
            gid = get_global_id(0);
            d.flags[gid] := 1;
            send d on req.output;
        }
    }

    actor Run presents hostI {
        constructor() {}
        behaviour {
            d = new data_t(new real[8], new integer[8]);
            for r = 0 .. 3 do {
                ws = new integer[1] of 8;
                gs = new integer[1] of 4;
                ia = new in data_t;
                ib = new in data_t;
                back = new in data_t;
                to_a = new out data_t;
                a_out = new out data_t;
                b_out = new out data_t;
                connect to_a to ia;
                connect a_out to ib;
                connect b_out to back;
                send new settings_t(ws, gs, ia, a_out) on a_req;
                send d on to_a;
                d.flags[0] := 1;
                send new settings_t(ws, gs, ib, b_out) on b_req;
                receive dn from back;
                d := dn;
            }
            stop;
        }
    }

    boot {
        h = new Run();
        ka = new A();
        kb = new B();
        connect h.a_req to ka.requests;
        connect h.b_req to kb.requests;
    }
}
"#;

#[test]
fn payload_mutation_in_loop_body_blocks_wraparound_chains() {
    let r = analyze_source(MUTATED_IN_LOOP_SRC, &proofs_opts()).unwrap();
    // The host mutation between the two enqueues is a real barrier:
    // nothing may claim a looping chain (no wrap-around pairs), even
    // though the open chain at the end of the body never saw it.
    assert!(
        r.proofs.fusion.iter().all(|f| !f.loops),
        "wrap-around claimed across a payload mutation: {:?}",
        r.proofs.fusion
    );
    let barriers: Vec<&str> = r
        .proofs
        .fusion
        .iter()
        .filter_map(|f| f.barrier.as_deref())
        .collect();
    assert!(
        barriers.contains(&"host mutation of a sent payload"),
        "mutation barrier not recorded: {barriers:?}"
    );
    assert!(
        barriers.contains(&"loop body barrier"),
        "trailing chain must carry the loop-body barrier: {barriers:?}"
    );
}

/// A dispatch loop nested under a conditional: its channel operations
/// cannot be ordered, so no chain — and certainly no *looping* chain —
/// may be extracted from it.
const CONDITIONAL_LOOP_SRC: &str = r#"
type data_t is struct (
    mov real [] v
)
type settings_t is opencl struct (
    integer [] worksize;
    integer [] groupsize;
    in data_t input;
    out data_t output
)
type hostI is interface (
    out settings_t a_req
)
type kI is interface(
    in settings_t requests
)

stage home {

    opencl <device_index=0, device_type=GPU>
    actor A presents kI {
        constructor() {}
        behaviour {
            receive req from requests;
            receive d from req.input;
            gid = get_global_id(0);
            d.v[gid] := 1.0;
            send d on req.output;
        }
    }

    actor Run presents hostI {
        constructor() {}
        behaviour {
            flag = 1;
            d = new data_t(new real[8]);
            if flag > 0 then {
                for r = 0 .. 9 do {
                    ws = new integer[1] of 8;
                    gs = new integer[1] of 4;
                    ia = new in data_t;
                    back = new in data_t;
                    to_a = new out data_t;
                    a_out = new out data_t;
                    connect to_a to ia;
                    connect a_out to back;
                    send new settings_t(ws, gs, ia, a_out) on a_req;
                    send d on to_a;
                    receive dn from back;
                    d := dn;
                }
            }
            stop;
        }
    }

    boot {
        h = new Run();
        ka = new A();
        connect h.a_req to ka.requests;
    }
}
"#;

#[test]
fn conditional_dispatch_loop_yields_no_chain() {
    let r = analyze_source(CONDITIONAL_LOOP_SRC, &proofs_opts()).unwrap();
    assert!(
        r.proofs.fusion.is_empty(),
        "conditional dispatches must not form chains: {:?}",
        r.proofs.fusion
    );
    assert!(r.kernel_proofs["A"].chain.is_none());
}

/// Two single-item kernels subscripting by the settings scalar `n`:
/// A writes `v[n]`, B reads `v[n + 1]`. The pair is mergeable only when
/// both dispatches provably receive the same `n`.
fn scalar_pair_source(na: &str, nb: &str) -> String {
    format!(
        r#"
type data_t is struct (
    mov real [] v;
    mov real [] w
)
type settings_t is opencl struct (
    integer [] worksize;
    integer [] groupsize;
    in data_t input;
    out data_t output;
    integer n
)
type hostI is interface (
    out settings_t a_req;
    out settings_t b_req
)
type kI is interface(
    in settings_t requests
)

stage home {{

    opencl <device_index=0, device_type=GPU>
    actor A presents kI {{
        constructor() {{}}
        behaviour {{
            receive req from requests;
            receive d from req.input;
            n = req.n;
            d.v[n] := 1.0;
            send d on req.output;
        }}
    }}

    opencl <device_index=0, device_type=GPU>
    actor B presents kI {{
        constructor() {{}}
        behaviour {{
            receive req from requests;
            receive d from req.input;
            n = req.n;
            d.w[0] := d.v[n + 1];
            send d on req.output;
        }}
    }}

    actor Run presents hostI {{
        constructor() {{}}
        behaviour {{
            ws = new integer[1] of 1;
            gs = new integer[1] of 1;
            ia = new in data_t;
            ib = new in data_t;
            back = new in data_t;
            to_a = new out data_t;
            a_out = new out data_t;
            b_out = new out data_t;
            connect to_a to ia;
            connect a_out to ib;
            connect b_out to back;
            send new settings_t(ws, gs, ia, a_out, {na}) on a_req;
            send new settings_t(ws, gs, ib, b_out, {nb}) on b_req;
            d = new data_t(new real[16], new real[16]);
            send d on to_a;
            receive dn from back;
            printReal(checksum(dn.w));
            stop;
        }}
    }}

    boot {{
        h = new Run();
        ka = new A();
        kb = new B();
        connect h.a_req to ka.requests;
        connect h.b_req to kb.requests;
    }}
}}
"#
    )
}

#[test]
fn scalars_unify_only_on_proven_equal_values() {
    // Same value to both dispatches: `n` cancels, the write `v[n]` and
    // the read `v[n + 1]` sit a constant 1 apart — mergeable.
    let r = analyze_source(&scalar_pair_source("7", "7"), &proofs_opts()).unwrap();
    let p = &r.proofs.fusion[0].pairs[0];
    assert!(
        p.mergeable,
        "equal-valued scalars must still unify: {}",
        p.detail
    );

    // Different values (A gets 6, B gets 5): both kernels touch v[6],
    // so unifying by field name alone would be unsound. The scalar must
    // range independently, leaving a RAW hazard.
    let r = analyze_source(&scalar_pair_source("6", "5"), &proofs_opts()).unwrap();
    let p = &r.proofs.fusion[0].pairs[0];
    assert!(
        !p.mergeable,
        "distinct scalar values unified by field name: {}",
        p.detail
    );
    let (hz, buf) = p.hazard.as_ref().expect("hazard recorded");
    assert_eq!((*hz, buf.as_str()), (Hazard::Raw, "v"));
}

/// `e = d` inside the loop re-aliases the sent payload; the back-edge
/// scan must keep `e` live across its rebind and catch the mutation.
const REALIAS_REBIND_SRC: &str = r#"
type data_t is struct (
    real [] inp;
    real [] out
)
type settings_t is opencl struct (
    integer [] worksize;
    integer [] groupsize;
    in data_t input;
    out data_t output
)
type dI is interface (
    out settings_t requests;
    out data_t dout;
    in data_t din
)
type kI is interface(
    in settings_t requests
)

stage home {

    opencl <device_index=0, device_type=GPU>
    actor Scale presents kI {
        constructor() {}
        behaviour {
            receive req from requests;
            receive d from req.input;
            gid = get_global_id(0);
            d.out[gid] := 2.0 * d.inp[gid];
            send d on req.output;
        }
    }

    actor Run presents dI {
        constructor() {}
        behaviour {
            d = new data_t(new real[8] of 1.0, new real[8]);
            for r = 0 .. 3 do {
                e = d;
                e.inp[0] := 2.0;
                ws = new integer[1] of 8;
                gs = new integer[1] of 4;
                i = new in data_t;
                o = new out data_t;
                connect dout to i;
                connect o to din;
                send new settings_t(ws, gs, i, o) on requests;
                send d on dout;
                receive res from din;
            }
            stop;
        }
    }

    boot {
        k = new Scale();
        r = new Run();
        connect r.requests to k.requests;
    }
}
"#;

#[test]
fn realiasing_rebind_keeps_sent_payload_mutable() {
    let r = analyze_source(REALIAS_REBIND_SRC, &proofs_opts()).unwrap();
    let s = r
        .proofs
        .sends
        .iter()
        .find(|s| s.payload == "d")
        .expect("send proof for d");
    // `e = d; e.inp[0] := 2.0` runs again after the send on the next
    // iteration: the payload is NOT provably unmutated.
    assert!(
        !s.unmutated,
        "mutation through re-aliasing rebind missed — false CoW-safe verdict"
    );
    assert!(
        r.diagnostics.iter().any(|d| d.code == "W005"),
        "expected W005 at the aliased mutation: {:?}",
        r.diagnostics
    );
}

/// Kernels with empty-bodied loops (truthy `while`, huge `for`): the
/// shadow validator's fuel must bound them — this test hanging means
/// fuel is not charged per iteration.
fn empty_loop_kernel_source(loop_stmt: &str) -> String {
    format!(
        r#"
type data_t is struct (
    real [] inp;
    real [] out
)
type settings_t is opencl struct (
    integer [] worksize;
    integer [] groupsize;
    in data_t input;
    out data_t output
)
type dI is interface (
    out settings_t requests;
    out data_t dout;
    in data_t din
)
type kI is interface(
    in settings_t requests
)

stage home {{

    opencl <device_index=0, device_type=GPU>
    actor Spin presents kI {{
        constructor() {{}}
        behaviour {{
            receive req from requests;
            receive d from req.input;
            {loop_stmt}
            d.out[get_global_id(0)] := 1.0;
            send d on req.output;
        }}
    }}

    actor Run presents dI {{
        constructor() {{}}
        behaviour {{
            ws = new integer[1] of 1;
            gs = new integer[1] of 1;
            i = new in data_t;
            o = new out data_t;
            connect dout to i;
            connect o to din;
            send new settings_t(ws, gs, i, o) on requests;
            d = new data_t(new real[4] of 1.0, new real[4]);
            send d on dout;
            receive res from din;
            stop;
        }}
    }}

    boot {{
        k = new Spin();
        r = new Run();
        connect r.requests to k.requests;
    }}
}}
"#
    )
}

#[test]
fn shadow_fuel_bounds_empty_bodied_loops() {
    for loop_stmt in ["while (0 < 1) { }", "for q = 0 .. 999999999 do { }"] {
        let src = empty_loop_kernel_source(loop_stmt);
        let cfg = shadow_cfg(vec![(
            "Spin",
            dc(&[1], &[1], &[], &[("inp", &[4]), ("out", &[4])]),
        )]);
        // Must terminate (fuel charged per iteration), not hang.
        let refs = shadow_validate(&src, &cfg).unwrap();
        assert!(refs.is_empty(), "{loop_stmt}: {refs:?}");
    }
}

// ---- property-based soundness gate ------------------------------------

fn strided_kernel_source(len: u32, groups: u32, lsize: u32, stride: u32, offset: u32) -> String {
    format!(
        r#"
type data_t is struct (
    real [] inp;
    real [] out
)
type settings_t is opencl struct (
    integer [] worksize;
    integer [] groupsize;
    in data_t input;
    out data_t output
)
type dI is interface (
    out settings_t requests;
    out data_t dout;
    in data_t din
)
type kI is interface(
    in settings_t requests
)

stage home {{

    opencl <device_index=0, device_type=GPU>
    actor Scale presents kI {{
        constructor() {{}}
        behaviour {{
            receive req from requests;
            receive d from req.input;
            gid = get_global_id(0);
            d.out[{stride} * gid + {offset}] := 2.0 * d.inp[gid];
            send d on req.output;
        }}
    }}

    actor Run presents dI {{
        constructor() {{}}
        behaviour {{
            ws = new integer[1] of {ws};
            gs = new integer[1] of {lsize};
            i = new in data_t;
            o = new out data_t;
            connect dout to i;
            connect o to din;
            send new settings_t(ws, gs, i, o) on requests;
            d = new data_t(new real[{ws}] of 1.0, new real[{len}]);
            send d on dout;
            receive r from din;
            printReal(checksum(r.out));
            stop;
        }}
    }}

    boot {{
        k = new Scale();
        r = new Run();
        connect r.requests to k.requests;
    }}
}}
"#,
        ws = groups * lsize,
    )
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(24))]
    #[test]
    fn shadow_never_refutes_proven_affine_kernels(
        groups in 1u32..5,
        lsize in 1u32..5,
        stride in 1u32..4,
        offset in 0u32..3,
    ) {
        // `out[stride*gid + offset]` is injective in gid, so dimension
        // 0 must be proven splittable — and the concrete execution must
        // agree for every parameter choice.
        let ws = groups * lsize;
        let len = stride * (ws - 1) + offset + 1;
        let src = strided_kernel_source(len, groups, lsize, stride, offset);

        let report = analyze_source(&src, &proofs_opts()).unwrap();
        prop_assert!(
            report.diagnostics.is_empty(),
            "generated kernel flagged: {:?}",
            report.diagnostics.iter().map(|d| d.to_string()).collect::<Vec<_>>()
        );
        let sp = report.proofs.splits.iter().find(|s| s.kernel == "Scale").unwrap();
        let expect = if ws == 1 { DimClass::Inactive } else { DimClass::Splittable };
        prop_assert_eq!(sp.dims[0].class, expect);

        let cfg = shadow_cfg(vec![(
            "Scale",
            dc(
                &[ws as usize],
                &[lsize as usize],
                &[],
                &[("inp", &[ws as usize]), ("out", &[len as usize])],
            ),
        )]);
        let refs = shadow_validate(&src, &cfg).unwrap();
        prop_assert!(refs.is_empty(), "soundness refuted: {:?}", refs);
    }
}
