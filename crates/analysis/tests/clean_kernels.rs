//! Property: a generated kernel that the static analysis accepts never
//! trips the simulator's runtime checks when it actually runs.
//!
//! The generator varies the array length, the worksize, and a scalar
//! offset; the kernel indexes by `get_global_id(0)` so every generated
//! program is race-free and in bounds by construction, and the analysis
//! must agree — then the VM (backed by oclsim's checked simulator) must
//! run it to completion.

use ensemble_analysis::{analyze_source, compile_source, Options};
use ensemble_vm::VmRuntime;
use proptest::prelude::*;

fn kernel_source(len: u32, ws: u32, bias: u32) -> String {
    format!(
        r#"
type data_t is struct (
    real [] inp;
    real [] out
)
type settings_t is opencl struct (
    integer [] worksize;
    integer [] groupsize;
    in data_t input;
    out data_t output;
    integer bias
)
type dI is interface (
    out settings_t requests;
    out data_t dout;
    in data_t din
)
type kI is interface(
    in settings_t requests
)

stage home {{

    opencl <device_index=0, device_type=GPU>
    actor Scale presents kI {{
        constructor() {{}}
        behaviour {{
            receive req from requests;
            receive d from req.input;
            gid = get_global_id(0);
            d.out[gid] := d.inp[gid] * 2.0 + req.bias;
            send d on req.output;
        }}
    }}

    actor Run presents dI {{
        constructor() {{}}
        behaviour {{
            ws = new integer[1] of {ws};
            gs = new integer[1] of {ws};
            i = new in data_t;
            o = new out data_t;
            connect dout to i;
            connect o to din;
            send new settings_t(ws, gs, i, o, {bias}) on requests;
            d = new data_t(new real[{len}] of 1.0, new real[{len}]);
            send d on dout;
            receive r from din;
            printReal(checksum(r.out));
            stop;
        }}
    }}

    boot {{
        k = new Scale();
        r = new Run();
        connect r.requests to k.requests;
    }}
}}
"#
    )
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(24))]
    #[test]
    fn analysis_clean_kernels_run_clean(
        len in 1u32..32,
        ws_slack in 0u32..8,
        bias in 0u32..5,
    ) {
        // Worksize never exceeds the array length, so the program is
        // in bounds by construction.
        let ws = (len - ws_slack % len).max(1);
        let src = kernel_source(len, ws, bias);

        let report = analyze_source(&src, &Options::default()).unwrap();
        prop_assert!(
            report.diagnostics.is_empty(),
            "generated kernel flagged: {:?}",
            report.diagnostics.iter().map(|d| d.to_string()).collect::<Vec<_>>()
        );

        let module = compile_source(&src, &Options::default())
            .unwrap_or_else(|e| panic!("gate rejected a clean kernel: {e}"));
        let out = VmRuntime::new(module)
            .run()
            .unwrap_or_else(|e| panic!("runtime tripped: {e}"));
        // Each touched element is 1*2 + bias; untouched ones stay 0.
        let expect = f64::from(ws) * (2.0 + f64::from(bias));
        prop_assert_eq!(&out.output[0], &format!("{expect}"));
    }
}
