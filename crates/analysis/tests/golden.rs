//! Golden snapshot tests: each negative fixture must produce exactly
//! its recorded diagnostics, byte for byte.
//!
//! Regenerate the `.expected` files with `BLESS=1 cargo test -p
//! ensemble-analysis --test golden` after verifying the new output by
//! hand.

use ensemble_analysis::{analyze_source, Options};
use std::path::Path;

fn rendered_opts(fixture: &str, opts: &Options) -> String {
    let dir = Path::new(env!("CARGO_MANIFEST_DIR")).join("tests/fixtures");
    let src = std::fs::read_to_string(dir.join(fixture)).unwrap();
    let report = analyze_source(&src, opts).expect("fixture must parse");
    let mut out = String::new();
    for d in &report.diagnostics {
        out.push_str(&d.render(&src, Some(fixture)));
        out.push('\n');
    }
    out
}

fn rendered(fixture: &str) -> String {
    rendered_opts(fixture, &Options::default())
}

fn check_opts(fixture: &str, code: &str, opts: &Options) {
    let got = rendered_opts(fixture, opts);
    assert!(
        got.contains(&format!("[{code}]")),
        "{fixture}: expected a {code} diagnostic, got:\n{got}"
    );
    let dir = Path::new(env!("CARGO_MANIFEST_DIR")).join("tests/fixtures");
    let expected_path = dir.join(format!("{}.expected", fixture.trim_end_matches(".ens")));
    if std::env::var_os("BLESS").is_some() {
        std::fs::write(&expected_path, &got).unwrap();
        return;
    }
    let expected = std::fs::read_to_string(&expected_path)
        .unwrap_or_else(|_| panic!("missing golden {}", expected_path.display()));
    assert_eq!(got, expected, "{fixture}: diagnostics drifted from golden");
}

fn check(fixture: &str, code: &str) {
    check_opts(fixture, code, &Options::default());
}

fn check_proofs(fixture: &str, code: &str) {
    let mut opts = Options::default();
    opts.proofs = true;
    check_opts(fixture, code, &opts);
}

#[test]
fn racy_kernel_is_e001() {
    check("racy.ens", "E001");
}

#[test]
fn oob_index_is_e003() {
    check("oob.ens", "E003");
}

#[test]
fn use_after_mov_is_e004() {
    check("use_after_mov.ens", "E004");
}

#[test]
fn orphan_channel_is_e005() {
    check("orphan.ens", "E005");
}

#[test]
fn deadlock_cycle_is_e006() {
    check("deadlock.ens", "E006");
}

#[test]
fn blocked_split_dimension_is_w003() {
    check_proofs("w003.ens", "W003");
}

#[test]
fn hazardous_dispatch_pair_is_w004() {
    check_proofs("w004.ens", "W004");
}

#[test]
fn mutation_after_send_is_w005() {
    check_proofs("w005.ens", "W005");
}

#[test]
fn proof_warnings_are_silent_without_proofs_mode() {
    // The proof engine always runs (proofs are part of every report),
    // but its W003/W004/W005 findings only surface as diagnostics under
    // `--proofs` — shipped apps must stay clean by default.
    for fixture in ["w003.ens", "w004.ens", "w005.ens"] {
        let got = rendered(fixture);
        assert!(got.is_empty(), "{fixture}: unexpected diagnostics:\n{got}");
    }
}

#[test]
fn shipped_apps_are_clean() {
    // Every .ens asset that ships with the repo must lint clean; this is
    // the same gate `compile_source` applies, pinned as a test.
    let assets = Path::new(env!("CARGO_MANIFEST_DIR")).join("../apps/src/assets");
    let mut checked = 0;
    for app in std::fs::read_dir(&assets).unwrap() {
        let app = app.unwrap().path();
        for f in std::fs::read_dir(&app).unwrap() {
            let f = f.unwrap().path();
            if f.extension().is_some_and(|e| e == "ens") {
                let src = std::fs::read_to_string(&f).unwrap();
                let report = analyze_source(&src, &Options::default()).unwrap();
                assert!(
                    report.diagnostics.is_empty(),
                    "{} has diagnostics: {:?}",
                    f.display(),
                    report
                        .diagnostics
                        .iter()
                        .map(|d| d.to_string())
                        .collect::<Vec<_>>()
                );
                checked += 1;
            }
        }
    }
    assert!(checked >= 10, "expected to lint all app sources");
}

#[test]
fn mov_residency_is_proven_for_lud() {
    let assets = Path::new(env!("CARGO_MANIFEST_DIR")).join("../apps/src/assets");
    let src = std::fs::read_to_string(assets.join("lud/ocl.ens")).unwrap();
    let report = analyze_source(&src, &Options::default()).unwrap();
    for k in ["Diag", "Col", "Sub"] {
        assert!(
            report.residency_proven.contains(k),
            "expected residency proof for `{k}`, got {:?}",
            report.residency_proven
        );
    }
}

#[test]
fn allow_escape_suppresses_diagnostic() {
    let dir = Path::new(env!("CARGO_MANIFEST_DIR")).join("tests/fixtures");
    let src = std::fs::read_to_string(dir.join("orphan.ens")).unwrap();
    let mut opts = Options::default();
    opts.allow.insert("E005".to_string());
    let report = analyze_source(&src, &opts).unwrap();
    assert!(report.diagnostics.is_empty(), "--allow E005 must suppress");
}
