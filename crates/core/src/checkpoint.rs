//! Actor checkpoints: resume a killed kernel actor without losing work.
//!
//! The fault-injection layer ([`oclsim::fault`]) fires its checks at the
//! **top** of each instrumented entry point, so when a kill lands the
//! device and host are still in a consistent *pre-operation* state: the
//! upload, dispatch, or read-back simply never happened. That invariant
//! makes checkpointing cheap — there is no device state to snapshot.
//! What *is* lost with the actor's thread is the request it was working
//! on: the settings struct and the flattened input were received from
//! channels and lived on the dead actor's stack.
//!
//! A [`Checkpoint`] keeps exactly that: each work item is tagged with a
//! sequence number when it is accepted, parked in the slot while it is
//! processed, and acknowledged (cleared) only after the result has been
//! sent downstream. A restarted incarnation finds the unacknowledged item
//! and *redelivers* it — at-least-once semantics. The `sent` flag is the
//! sender-side dedup that turns at-least-once into effectively-once: if
//! the previous incarnation died *after* `send` but before the ack, the
//! redelivery acknowledges without re-sending, so downstream never sees a
//! duplicate and end-to-end output stays byte-identical to a fault-free
//! run.
//!
//! The slot is shared (cheap `Clone`) between the supervisor-side factory
//! and each actor incarnation; only the single live incarnation ever
//! locks it for more than a field read. The lock is a
//! [`parking_lot::Mutex`], which does not poison: a kill-panic unwinding
//! through a locked section leaves the parked item intact for the next
//! incarnation.

use crate::settings::Settings;
use crate::FlatData;
use oclsim::Context;
use parking_lot::{Mutex, MutexGuard};
use std::sync::Arc;

/// The work item a kernel actor is currently responsible for.
pub(crate) struct InFlight<TIn, TOut> {
    /// Sequence number assigned at acceptance.
    pub(crate) seq: u64,
    /// The settings struct (worksizes + data channels) of the request.
    pub(crate) settings: Settings<TIn, TOut>,
    /// The flattened input data, kept host-side so a restarted actor can
    /// re-derive device state by re-uploading.
    pub(crate) flat: FlatData,
    /// Whether the result has already been sent downstream. Redelivery
    /// consults this to suppress duplicate sends (effectively-once).
    pub(crate) sent: bool,
    /// Whether any incarnation has started processing this item. A
    /// redelivery (restart observed) is `attempted && !sent`.
    pub(crate) attempted: bool,
}

pub(crate) struct State<TIn, TOut> {
    pub(crate) next_seq: u64,
    pub(crate) acked: Option<u64>,
    pub(crate) in_flight: Option<InFlight<TIn, TOut>>,
}

/// Shared checkpoint slot for one kernel actor. See the module docs.
pub struct Checkpoint<TIn, TOut> {
    inner: Arc<Mutex<State<TIn, TOut>>>,
}

impl<TIn, TOut> Clone for Checkpoint<TIn, TOut> {
    fn clone(&self) -> Self {
        Checkpoint {
            inner: Arc::clone(&self.inner),
        }
    }
}

impl<TIn, TOut> Default for Checkpoint<TIn, TOut> {
    fn default() -> Self {
        Checkpoint::new()
    }
}

impl<TIn, TOut> std::fmt::Debug for Checkpoint<TIn, TOut> {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        let s = self.inner.lock();
        f.debug_struct("Checkpoint")
            .field("next_seq", &s.next_seq)
            .field("acked", &s.acked)
            .field("in_flight", &s.in_flight.as_ref().map(|i| i.seq))
            .finish()
    }
}

impl<TIn, TOut> Checkpoint<TIn, TOut> {
    /// An empty slot: no item accepted yet.
    pub fn new() -> Checkpoint<TIn, TOut> {
        Checkpoint {
            inner: Arc::new(Mutex::new(State {
                next_seq: 0,
                acked: None,
                in_flight: None,
            })),
        }
    }

    /// Sequence number of the last item whose result was acknowledged
    /// (sent downstream), if any.
    pub fn acked(&self) -> Option<u64> {
        self.inner.lock().acked
    }

    /// Whether an accepted item has not yet been acknowledged — i.e. a
    /// restarted incarnation would redeliver.
    pub fn has_in_flight(&self) -> bool {
        self.inner.lock().in_flight.is_some()
    }

    pub(crate) fn lock(&self) -> MutexGuard<'_, State<TIn, TOut>> {
        self.inner.lock()
    }
}

/// RAII guard for simulated device-memory accounting.
///
/// [`oclsim::Context`] tracks allocated bytes against a budget; code that
/// charges the budget and releases it manually leaks the charge if a
/// kill-panic unwinds between the two points, and the leak eventually
/// surfaces as spurious `OutOfDeviceMemory` in later (restarted) work.
/// `MemGuard` releases its accumulated byte count on drop unless
/// [`MemGuard::disarm`]ed — disarm on success, where ownership of the
/// accounting passes to the resident buffers.
#[derive(Debug)]
pub struct MemGuard {
    context: Option<Context>,
    bytes: usize,
}

impl MemGuard {
    /// A guard holding no bytes yet.
    pub fn new(context: Context) -> MemGuard {
        MemGuard {
            context: Some(context),
            bytes: 0,
        }
    }

    /// Record `bytes` of accounting now owed to the context.
    pub fn add(&mut self, bytes: usize) {
        self.bytes += bytes;
    }

    /// Bytes currently guarded.
    pub fn bytes(&self) -> usize {
        self.bytes
    }

    /// Success: the accounting now belongs to live buffers; do not
    /// release it on drop.
    pub fn disarm(mut self) {
        self.context = None;
    }
}

impl Drop for MemGuard {
    fn drop(&mut self) {
        if let Some(ctx) = &self.context {
            if self.bytes > 0 {
                ctx.release_bytes(self.bytes);
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn checkpoint_starts_empty() {
        let c: Checkpoint<Vec<f32>, Vec<f32>> = Checkpoint::new();
        assert_eq!(c.acked(), None);
        assert!(!c.has_in_flight());
    }

    #[test]
    fn clones_share_state() {
        let c: Checkpoint<Vec<f32>, Vec<f32>> = Checkpoint::new();
        let c2 = c.clone();
        c.lock().acked = Some(7);
        assert_eq!(c2.acked(), Some(7));
    }

    #[test]
    fn mem_guard_releases_on_drop_unless_disarmed() {
        // A private context (not the shared device matrix) so parallel
        // tests cannot perturb the accounting this test asserts on.
        let platform = &oclsim::Platform::all()[0];
        let device = platform.devices(None)[0].clone();
        let context = Context::new(std::slice::from_ref(&device)).unwrap();
        // Charge accounting via a buffer, then "unwind": the guard must
        // give the charge back.
        let buf = context
            .create_buffer(oclsim::MemFlags::ReadWrite, 1024)
            .unwrap();
        {
            let mut g = MemGuard::new(context.clone());
            g.add(buf.len());
            assert_eq!(g.bytes(), 1024);
        }
        assert_eq!(context.allocated_bytes(), 0);
        // Disarmed: the charge stays (owned by live buffers).
        let buf2 = context
            .create_buffer(oclsim::MemFlags::ReadWrite, 512)
            .unwrap();
        {
            let mut g = MemGuard::new(context.clone());
            g.add(buf2.len());
            g.disarm();
        }
        assert_eq!(context.allocated_bytes(), 512);
        drop(buf2);
    }
}
