//! # ensemble-ocl — OpenCL through actors
//!
//! The primary contribution of *Parallel Programming in Actor-Based
//! Applications via OpenCL* (MIDDLEWARE 2015), reproduced in Rust: OpenCL
//! kernels represented as **actors**, with the runtime automating device
//! discovery, kernel compilation, buffer management, data flattening, and
//! the "leave data on the device" optimisation — all behind ordinary actor
//! channels.
//!
//! ## The pieces (paper section in parentheses)
//!
//! * [`mod@env`] (§6.2.1–6.2.2) — the process-wide platforms × devices
//!   [`env::DeviceMatrix`] with **one context and one command queue per
//!   device** (the paper's fix for multi-queue read races), and the
//!   [`env::OpenClEnvironment`] resolved from an actor's
//!   `<device_index, device_type>` annotation.
//! * [`settings`] (§6.1.1) — the `opencl struct` protocol: worksize +
//!   groupsize arrays and dynamically-created in/out data channels, sent to
//!   the kernel actor over its single interface channel.
//! * [`flatten`] (§6.1.2) — automated flattening of multi-dimensional
//!   arrays ([`flatten::Array2`], [`flatten::Array3`]), structs (tuples),
//!   and primitives (one-element arrays) into typed buffer segments plus
//!   dimension arguments.
//! * [`kernel_actor`] (§6.1, Figure 2) — [`kernel_actor::KernelActor`]
//!   (copying channels) and [`kernel_actor::ResidentKernelActor`] (`mov`
//!   channels), implementing the receive-settings / receive-data /
//!   dispatch / send protocol the Ensemble compiler enforces.
//! * [`resident`] (§6.2.3) — lazy evaluation: [`resident::DeviceData`]
//!   keeps values on the device across actor hops within one context, and
//!   reads them back the moment host code touches them or they cross to a
//!   different context. The type is not `Clone`, so Rust's move checker
//!   enforces the single-owner discipline Ensemble's `mov` analysis proves
//!   at compile time.
//! * [`profile`] — per-run accounting of to-device / from-device / kernel
//!   time, feeding the Figure 3a–3e harness.
//! * [`recovery`] — the robustness layer the paper leaves to future work:
//!   a per-actor [`recovery::RecoveryPolicy`] retries transient simulator
//!   faults with virtual-clock backoff and *fails over* to the next
//!   device-matrix entry (GPU → CPU degradation) on permanent device
//!   errors, evacuating resident data through the read-back rescue path.
//!
//! ## Example: the matrix-multiply choreography of Listing 3
//!
//! ```
//! use ensemble_ocl::{
//!     flatten::Array2, kernel_actor::{KernelActor, KernelSpec},
//!     env::DeviceSel, profile::ProfileSink, recovery::RecoveryPolicy,
//!     settings::Settings,
//! };
//! use ensemble_actors::{buffered_channel, In, Out, Stage};
//!
//! const MM: &str = r#"
//! __kernel void multiply(__global float* a, __global float* b,
//!                        __global float* result,
//!                        const int ra, const int ca,
//!                        const int rb, const int cb,
//!                        const int rr, const int cr) {
//!     int x = get_global_id(0);
//!     int y = get_global_id(1);
//!     int dim = get_global_size(0);
//!     float c = 0.0f;
//!     for (int i = 0; i < dim; i++) {
//!         c = c + a[y * ca + i] * b[i * cb + x];
//!     }
//!     result[y * cr + x] = c;
//! }"#;
//!
//! let n = 4usize;
//! let profile = ProfileSink::new();
//! let spec = KernelSpec {
//!     source: MM.to_string(),
//!     kernel_name: "multiply".to_string(),
//!     device: DeviceSel::cpu(),       // the `<device_type=CPU>` annotation
//!     out_segs: vec![2],              // send `result` onward
//!     out_dims: vec![4, 5],           // with its (rows, cols)
//!     profile: profile.clone(),
//!     recovery: RecoveryPolicy::default(),
//! };
//!
//! type MmIn = (Array2, Array2, Array2);
//! let (req_out, req_in) = buffered_channel::<Settings<MmIn, Array2>>(1);
//! let mut stage = Stage::new("home");
//! stage.spawn("Multiply", KernelActor::<MmIn, Array2>::new(spec, req_in));
//!
//! let (result_out, result_in) = buffered_channel::<Array2>(1);
//! stage.spawn_once("Dispatch", move |_| {
//!     let i = In::with_buffer(1);
//!     let o = Out::new();
//!     o.connect(&i);
//!     req_out.send_moved(Settings::new(vec![n, n], vec![2, 2], i, result_out)).unwrap();
//!     let a = Array2::from_vec(n, n, (0..16).map(|v| v as f32).collect());
//!     let b = {
//!         let mut b = Array2::zeros(n, n);
//!         for k in 0..n { b[(k, k)] = 2.0; }   // 2·I
//!         b
//!     };
//!     o.send(&(a, b, Array2::zeros(n, n))).unwrap();
//! });
//!
//! let result = result_in.receive().unwrap();
//! stage.join();
//! assert_eq!(result[(1, 2)], 2.0 * 6.0);
//! assert!(profile.snapshot().kernel_ns > 0.0);
//! ```

#![warn(missing_docs)]

pub mod checkpoint;
pub mod env;
pub mod flatten;
pub mod kernel_actor;
pub mod profile;
pub mod recovery;
pub mod resident;
pub mod settings;

pub use checkpoint::{Checkpoint, MemGuard};
pub use env::{device_matrix, DeviceSel, MatrixResolver, OpenClEnvironment, ResolveEnv};
pub use flatten::{Array2, Array3, FlatData, FlatSeg, Flatten, FlattenError, SegTy};
pub use kernel_actor::{KernelActor, KernelSpec, ResidentKernelActor};
pub use profile::{Profile, ProfileSink};
pub use recovery::RecoveryPolicy;
pub use resident::{DeviceData, Dispatchable, ResidentBufs};
pub use settings::{nd_from, Settings};
