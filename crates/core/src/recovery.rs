//! Supervised recovery: bounded retry with virtual-clock backoff, and
//! device failover through the device matrix.
//!
//! The paper's runtime treats every OpenCL error as fatal; this module is
//! the reproduction's robustness layer on top of it. Two mechanisms:
//!
//! * **Retry with backoff** — transient errors
//!   ([`oclsim::ClError::is_transient`], i.e. `CL_OUT_OF_RESOURCES`-class
//!   refusals) are retried a bounded number of times. The backoff between
//!   attempts is charged to the device's *virtual* clock
//!   ([`oclsim::CommandQueue::charge_ns`]), so recovery cost shows up in
//!   the same figures as everything else and stays deterministic.
//! * **Failover** — permanent device-level errors (a lost device,
//!   exhausted device memory, or a transient error that outlived its
//!   retry budget) abandon the device: resident data is evacuated through
//!   the read-back rescue path, and the dispatch is re-issued on the next
//!   device-matrix entry ([`crate::env::DeviceMatrix::failover_from`]) —
//!   in practice a GPU → CPU degradation.
//!
//! Both paths leave [`trace::SpanKind::Retry`] / [`trace::SpanKind::Failover`]
//! instants on the timeline, so a Chrome trace of a chaos run shows
//! exactly where the schedule fired and what the supervisor did about it.

use crate::env::OpenClEnvironment;
use crate::profile::ProfileSink;
use oclsim::{ClError, ClResult};
use trace::{SpanKind, TraceEvent};

/// How a kernel actor responds to simulator errors.
#[derive(Debug, Clone, PartialEq)]
pub struct RecoveryPolicy {
    /// Maximum re-attempts per operation for transient errors (0 disables
    /// retrying).
    pub max_retries: u32,
    /// Virtual nanoseconds charged to the device clock before the first
    /// re-attempt.
    pub backoff_ns: f64,
    /// Multiplier applied to the backoff after every failed re-attempt
    /// (exponential backoff).
    pub backoff_factor: f64,
    /// Whether a permanent device failure migrates the work to the next
    /// device-matrix entry instead of propagating the error.
    pub failover: bool,
}

impl Default for RecoveryPolicy {
    /// Four retries starting at 2 µs (virtual) doubling each time, with
    /// failover enabled — enough to ride out any plausible transient
    /// schedule while keeping the worst-case added virtual time bounded
    /// (30 µs per operation).
    fn default() -> RecoveryPolicy {
        RecoveryPolicy {
            max_retries: 4,
            backoff_ns: 2_000.0,
            backoff_factor: 2.0,
            failover: true,
        }
    }
}

impl RecoveryPolicy {
    /// A policy that retries nothing and never fails over — the paper's
    /// original fail-fast behaviour.
    pub fn none() -> RecoveryPolicy {
        RecoveryPolicy {
            max_retries: 0,
            backoff_ns: 0.0,
            backoff_factor: 1.0,
            failover: false,
        }
    }

    /// Whether `error` should move the work to another device under this
    /// policy: device-level conditions (lost device, exhausted device
    /// memory, a transient refusal that outlived its retry budget) — not
    /// programming errors, which would fail identically everywhere.
    pub fn should_fail_over(&self, error: &ClError) -> bool {
        self.failover
            && matches!(
                error,
                ClError::DeviceLost { .. }
                    | ClError::DeviceBusy { .. }
                    | ClError::OutOfDeviceMemory { .. }
                    | ClError::Straggler { .. }
            )
    }
}

/// Run `op`, re-attempting transient failures up to `policy.max_retries`
/// times with exponential backoff charged to `queue`'s virtual clock.
/// Each re-attempt leaves a [`SpanKind::Retry`] instant (named `what`) on
/// the `device` trace track.
///
/// Detected-and-repaired silent corruption
/// ([`oclsim::ClError::is_integrity`]) is also retried — the queue has
/// already restored the offending buffer from its provenance shadow, so
/// the re-issue recomputes from the last checkpoint — but its backoff is
/// charged to the queue's *repair* accounting
/// ([`oclsim::CommandQueue::charge_repair_ns`]) instead of the main
/// virtual clock, so a recovered run's clock stays byte-identical to a
/// fault-free one.
pub fn with_retry<T>(
    policy: &RecoveryPolicy,
    queue: &oclsim::CommandQueue,
    device: &str,
    profile: &ProfileSink,
    what: &str,
    mut op: impl FnMut() -> ClResult<T>,
) -> ClResult<T> {
    let mut backoff = policy.backoff_ns;
    let mut attempt = 0u32;
    loop {
        match op() {
            Ok(v) => return Ok(v),
            Err(e) if (e.is_transient() || e.is_integrity()) && attempt < policy.max_retries => {
                attempt += 1;
                let repair = e.is_integrity();
                if repair {
                    queue.charge_repair_ns(backoff);
                } else {
                    queue.charge_ns(backoff);
                }
                let t = profile.trace();
                if t.is_enabled() {
                    t.record(
                        TraceEvent::instant(SpanKind::Retry, what, device, queue.now_ns())
                            .with_arg("attempt", attempt)
                            .with_arg("backoff_ns", backoff)
                            .with_arg("repair", repair)
                            .with_arg("error", &e),
                    );
                }
                backoff *= policy.backoff_factor;
            }
            Err(e) => return Err(e),
        }
    }
}

/// Record a [`SpanKind::Failover`] instant on the *abandoned* device's
/// track, at the moment (on its virtual clock) the supervisor gave up on
/// it. `what` names the migrating work, `error` says why.
pub fn record_failover(
    profile: &ProfileSink,
    from: &OpenClEnvironment,
    to: &OpenClEnvironment,
    what: &str,
    error: &ClError,
) {
    let t = profile.trace();
    if t.is_enabled() {
        t.record(
            TraceEvent::instant(
                SpanKind::Failover,
                what,
                from.device.name(),
                from.queue.now_ns(),
            )
            .with_arg(
                "to",
                from.device.name().to_string() + " -> " + to.device.name(),
            )
            .with_arg("error", error),
        );
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::env::DeviceSel;
    use trace::TraceSink;

    fn gpu_env() -> OpenClEnvironment {
        OpenClEnvironment::resolve(DeviceSel::gpu()).unwrap()
    }

    #[test]
    fn first_success_needs_no_retries() {
        let env = gpu_env();
        let profile = ProfileSink::new();
        let before = env.queue.now_ns();
        let r = with_retry(
            &RecoveryPolicy::default(),
            &env.queue,
            env.device.name(),
            &profile,
            "op",
            || Ok::<_, ClError>(7),
        );
        assert_eq!(r, Ok(7));
        assert_eq!(env.queue.now_ns(), before, "no backoff charged");
    }

    #[test]
    fn transient_errors_are_retried_with_charged_backoff() {
        let env = gpu_env();
        let sink = TraceSink::new();
        let profile = ProfileSink::new().with_trace(sink.clone());
        let before = env.queue.now_ns();
        let mut failures_left = 2;
        let r = with_retry(
            &RecoveryPolicy::default(),
            &env.queue,
            env.device.name(),
            &profile,
            "op",
            || {
                if failures_left > 0 {
                    failures_left -= 1;
                    Err(ClError::DeviceBusy {
                        device: "GPU".into(),
                    })
                } else {
                    Ok(41)
                }
            },
        );
        assert_eq!(r, Ok(41));
        // 2000 + 4000 virtual ns of backoff were charged to the queue.
        assert!((env.queue.now_ns() - before - 6_000.0).abs() < 1e-6);
        let retries = sink
            .events()
            .iter()
            .filter(|e| e.kind == SpanKind::Retry)
            .count();
        assert_eq!(retries, 2);
    }

    #[test]
    fn retry_budget_is_bounded() {
        let env = gpu_env();
        let profile = ProfileSink::new();
        let policy = RecoveryPolicy {
            max_retries: 3,
            ..RecoveryPolicy::default()
        };
        let mut calls = 0u32;
        let r: ClResult<()> = with_retry(
            &policy,
            &env.queue,
            env.device.name(),
            &profile,
            "op",
            || {
                calls += 1;
                Err(ClError::DeviceBusy {
                    device: "GPU".into(),
                })
            },
        );
        assert!(matches!(r, Err(ClError::DeviceBusy { .. })));
        assert_eq!(calls, 4, "initial attempt + 3 retries");
    }

    #[test]
    fn integrity_violations_are_retried_on_the_repair_clock() {
        let env = gpu_env();
        let sink = TraceSink::new();
        let profile = ProfileSink::new().with_trace(sink.clone());
        let before = env.queue.now_ns();
        let mut failures_left = 2;
        let r = with_retry(
            &RecoveryPolicy::default(),
            &env.queue,
            env.device.name(),
            &profile,
            "op",
            || {
                if failures_left > 0 {
                    failures_left -= 1;
                    Err(ClError::IntegrityViolation {
                        device: "GPU".into(),
                        buffer: 1,
                        expected: 2,
                        actual: 3,
                    })
                } else {
                    Ok(13)
                }
            },
        );
        assert_eq!(r, Ok(13));
        // Backoff went to repair accounting; the main virtual clock is
        // byte-identical to a fault-free run.
        assert_eq!(env.queue.now_ns().to_bits(), before.to_bits());
        assert!((env.queue.repair_ns() - 6_000.0).abs() < 1e-6);
        let repair_retries = sink
            .events()
            .iter()
            .filter(|e| {
                e.kind == SpanKind::Retry
                    && e.args.iter().any(|(k, v)| k == "repair" && v == "true")
            })
            .count();
        assert_eq!(repair_retries, 2);
    }

    #[test]
    fn permanent_errors_are_not_retried() {
        let env = gpu_env();
        let profile = ProfileSink::new();
        let mut calls = 0u32;
        let r: ClResult<()> = with_retry(
            &RecoveryPolicy::default(),
            &env.queue,
            env.device.name(),
            &profile,
            "op",
            || {
                calls += 1;
                Err(ClError::DeviceLost {
                    device: "GPU".into(),
                })
            },
        );
        assert!(matches!(r, Err(ClError::DeviceLost { .. })));
        assert_eq!(calls, 1);
    }

    #[test]
    fn failover_classification() {
        let p = RecoveryPolicy::default();
        assert!(p.should_fail_over(&ClError::DeviceLost { device: "g".into() }));
        assert!(p.should_fail_over(&ClError::DeviceBusy { device: "g".into() }));
        assert!(p.should_fail_over(&ClError::OutOfDeviceMemory {
            requested: 1,
            available: 0
        }));
        assert!(p.should_fail_over(&ClError::Straggler {
            device: "g".into(),
            budget_ns: 1
        }));
        assert!(!p.should_fail_over(&ClError::BuildFailure { log: "x".into() }));
        assert!(!p.should_fail_over(&ClError::InvalidKernelArgs("x".into())));
        assert!(
            !RecoveryPolicy::none().should_fail_over(&ClError::DeviceLost { device: "g".into() })
        );
    }
}
