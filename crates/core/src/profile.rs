//! Re-export of the profiling accumulators.
//!
//! The `Profile`/`ProfileSink` types live in [`oclsim::profile`] so that the
//! comparison baselines (which do not depend on this crate) can record the
//! same to-device / from-device / kernel splits that the kernel actors do;
//! the figure harness then treats every approach identically.

pub use oclsim::profile::{Profile, ProfileSink};
