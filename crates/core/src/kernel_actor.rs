//! Kernel actors: OpenCL kernels represented as actors (§6).
//!
//! A kernel actor presents a single channel carrying a [`Settings`] struct.
//! Its behaviour is the protocol the Ensemble compiler enforces:
//!
//! 1. `receive req from requests` — the settings (worksizes + channels);
//! 2. `receive d from req.input` — the data;
//! 3. *the kernel body* — here, a mini OpenCL-C kernel dispatched through
//!    [`oclsim`] on the device named in the actor's [`DeviceSel`];
//! 4. `send result on req.output` — the processed data onward.
//!
//! The actor's bytecode-interpreted host role from Figure 2 of the paper is
//! played by the actor thread: it prepares buffers, launches the kernel and
//! collects results, so multiple kernel actors can share one device, and
//! changing the target device is a one-line change to the `DeviceSel`.
//!
//! Two flavours mirror the paper's two channel modes:
//!
//! * [`KernelActor`] — plain channels: data is copied to the device and the
//!   outputs are copied back on every message (shared-nothing semantics).
//! * [`ResidentKernelActor`] — `mov` channels: messages are
//!   [`DeviceData`] values; outputs stay on the device and inputs already
//!   resident in the actor's context are used in place (§6.2.3).

use crate::checkpoint::{Checkpoint, InFlight, MemGuard};
use crate::env::{DeviceSel, OpenClEnvironment};
use crate::flatten::{FlatData, Flatten};
use crate::profile::ProfileSink;
use crate::recovery::{record_failover, with_retry, RecoveryPolicy};
use crate::resident::{DeviceData, Dispatchable, ResidentBufs};
use crate::settings::Settings;
use ensemble_actors::{Actor, ActorCtx, Control, In};
use oclsim::{ClError, ClResult, Kernel, MemFlags, Program};
use std::marker::PhantomData;
use std::sync::Arc;

/// Static description of a kernel actor: what to compile, where to run it,
/// and how its output maps back onto the input's flattened form.
#[derive(Debug, Clone)]
pub struct KernelSpec {
    /// Mini OpenCL-C source (the string the Ensemble compiler would have
    /// generated from the actor's behaviour clause).
    pub source: String,
    /// `__kernel` entry point name.
    pub kernel_name: String,
    /// Device selection from the actor declaration.
    pub device: DeviceSel,
    /// Indices of the input's flattened segments that form the output
    /// (e.g. matmul sends only the result matrix onward).
    pub out_segs: Vec<usize>,
    /// Indices into the input's `dims` that describe the output's shape.
    pub out_dims: Vec<usize>,
    /// Where transfer/kernel times are recorded.
    pub profile: ProfileSink,
    /// How the actor responds to simulator errors: bounded retry with
    /// virtual-clock backoff for transient faults, device failover for
    /// permanent ones (see [`crate::recovery`]).
    pub recovery: RecoveryPolicy,
}

impl KernelSpec {
    /// Spec with output = the entire input (in-place kernels).
    pub fn in_place(
        source: impl Into<String>,
        kernel_name: impl Into<String>,
        device: DeviceSel,
    ) -> KernelSpec {
        KernelSpec {
            source: source.into(),
            kernel_name: kernel_name.into(),
            device,
            out_segs: Vec::new(),
            out_dims: Vec::new(),
            profile: ProfileSink::new(),
            recovery: RecoveryPolicy::default(),
        }
    }
}

/// Upload a flattened value into fresh device buffers, charging the
/// transfers to `profile`. A [`MemGuard`] holds the memory accounting
/// until every segment has landed, so a failed — or *killed*, i.e.
/// panicked mid-upload — attempt releases whatever it had already
/// charged instead of leaking simulated device memory.
pub(crate) fn upload_flat(
    env: &OpenClEnvironment,
    flat: &FlatData,
    profile: &ProfileSink,
) -> ClResult<ResidentBufs> {
    let mut bufs = Vec::with_capacity(flat.segs.len());
    let mut guard = MemGuard::new(env.context.clone());
    for seg in &flat.segs {
        let buf = env.context.create_buffer(MemFlags::ReadWrite, seg.byte_len())?;
        guard.add(buf.len());
        let ev = env.queue.enqueue_write_buffer(&buf, &seg.to_bytes())?;
        profile.record_command(&ev, env.device.name());
        bufs.push((buf, seg.ty()));
    }
    guard.disarm();
    Ok(ResidentBufs {
        bufs,
        dims: flat.dims.clone(),
        context: env.context.clone(),
        queue: env.queue.clone(),
    })
}

#[allow(clippy::too_many_arguments)]
fn bind_and_dispatch(
    env: &OpenClEnvironment,
    kernel: &Kernel,
    rb: &ResidentBufs,
    worksize: &[usize],
    groupsize: &[usize],
    extra_args: &[i32],
    extra_f32: &[f32],
    profile: &ProfileSink,
) -> ClResult<()> {
    let mut arg = 0usize;
    for (buf, _) in &rb.bufs {
        kernel.set_arg_buffer(arg, buf)?;
        arg += 1;
    }
    for d in &rb.dims {
        kernel.set_arg_i32(arg, *d)?;
        arg += 1;
    }
    for x in extra_args {
        kernel.set_arg_i32(arg, *x)?;
        arg += 1;
    }
    for x in extra_f32 {
        kernel.set_arg_f32(arg, *x)?;
        arg += 1;
    }
    let nd = crate::settings::nd_from(worksize, groupsize)?;
    let ev = env.queue.enqueue_nd_range(kernel, &nd)?;
    profile.record_command(&ev, env.device.name());
    Ok(())
}

/// Mark the `invokenative` boundary: the instant (on the device's virtual
/// clock) at which a kernel actor accepted a request and entered native
/// dispatch code. No-op when the spec's profile carries no trace.
fn trace_invoke(spec: &KernelSpec, env: &OpenClEnvironment, actor: &str) {
    let t = spec.profile.trace();
    if t.is_enabled() {
        t.record(
            trace::TraceEvent::instant(
                trace::SpanKind::InvokeNative,
                &spec.kernel_name,
                env.device.name(),
                env.queue.now_ns(),
            )
            .with_arg("actor", actor),
        );
    }
}

struct Compiled {
    env: OpenClEnvironment,
    kernel: Kernel,
}

/// Build the spec's program for one specific environment, retrying
/// transient build refusals.
fn compile_on(env: &OpenClEnvironment, spec: &KernelSpec) -> ClResult<Kernel> {
    let program = with_retry(
        &spec.recovery,
        &env.queue,
        env.device.name(),
        &spec.profile,
        "build",
        || Program::build(&env.context, &spec.source),
    )?;
    program.create_kernel(&spec.kernel_name)
}

/// Resolve the declared device and compile, walking the failover chain if
/// the declared device refuses permanently.
fn compile(spec: &KernelSpec) -> ClResult<Compiled> {
    let mut env = OpenClEnvironment::resolve(spec.device)?;
    loop {
        match compile_on(&env, spec) {
            Ok(kernel) => return Ok(Compiled { env, kernel }),
            Err(e) if spec.recovery.should_fail_over(&e) => {
                let next = env.failover()?;
                record_failover(&spec.profile, &env, &next, &spec.kernel_name, &e);
                env = next;
            }
            Err(e) => return Err(e),
        }
    }
}

/// Abandon `c.env`'s device: record the failover instant, move to the next
/// device-matrix entry, and recompile the kernel there.
fn fail_over(c: &mut Compiled, spec: &KernelSpec, error: &ClError) -> ClResult<()> {
    let next = c.env.failover()?;
    record_failover(&spec.profile, &c.env, &next, &spec.kernel_name, error);
    let kernel = compile_on(&next, spec)?;
    *c = Compiled { env: next, kernel };
    Ok(())
}

/// Evacuate `rb` off a (possibly failing) device through the read-back
/// rescue path — [`oclsim`] keeps read-backs working after `DeviceLost`
/// precisely so this can succeed — and release its memory accounting.
fn rescue_read_back(spec: &KernelSpec, rb: &ResidentBufs) -> ClResult<FlatData> {
    let device = rb.queue.device().name().to_string();
    let mut segs = Vec::with_capacity(rb.bufs.len());
    let mut result = Ok(());
    for (buf, ty) in &rb.bufs {
        let read = with_retry(
            &spec.recovery,
            &rb.queue,
            &device,
            &spec.profile,
            "rescue",
            || crate::resident::read_seg(&rb.queue, buf, *ty),
        );
        match read {
            Ok((seg, ev)) => {
                spec.profile.record_command(&ev, &device);
                segs.push(seg);
            }
            Err(e) => {
                result = Err(e);
                break;
            }
        }
    }
    rb.context.release_bytes(rb.device_bytes());
    result?;
    Ok(FlatData {
        segs,
        dims: rb.dims.clone(),
    })
}

/// Upload (when the input is host-side) and dispatch under the spec's
/// recovery policy: transient errors are retried with backoff; permanent
/// device errors evacuate the data, fail over to the next matrix entry
/// (recompiling there), and re-dispatch. On success the returned buffers
/// are resident on `c.env`'s — possibly migrated — device.
#[allow(clippy::too_many_arguments)]
fn dispatch_with_recovery(
    c: &mut Compiled,
    spec: &KernelSpec,
    worksize: &[usize],
    groupsize: &[usize],
    extra_args: &[i32],
    extra_f32: &[f32],
    input: Dispatchable,
) -> ClResult<ResidentBufs> {
    let mut input = input;
    loop {
        let rb = match input {
            Dispatchable::Resident(rb) => rb,
            Dispatchable::Host(flat) => {
                let uploaded = with_retry(
                    &spec.recovery,
                    &c.env.queue,
                    c.env.device.name(),
                    &spec.profile,
                    "upload",
                    || upload_flat(&c.env, &flat, &spec.profile),
                );
                match uploaded {
                    Ok(rb) => rb,
                    Err(e) if spec.recovery.should_fail_over(&e) => {
                        fail_over(c, spec, &e)?;
                        input = Dispatchable::Host(flat);
                        continue;
                    }
                    Err(e) => return Err(e),
                }
            }
        };
        let dispatched = with_retry(
            &spec.recovery,
            &c.env.queue,
            c.env.device.name(),
            &spec.profile,
            &spec.kernel_name,
            || {
                bind_and_dispatch(
                    &c.env,
                    &c.kernel,
                    &rb,
                    worksize,
                    groupsize,
                    extra_args,
                    extra_f32,
                    &spec.profile,
                )
            },
        );
        match dispatched {
            Ok(()) => return Ok(rb),
            Err(e) if spec.recovery.should_fail_over(&e) => {
                // The input (and any partial output) lives on the failing
                // device: evacuate it, then migrate and re-dispatch.
                let flat = rescue_read_back(spec, &rb)?;
                drop(rb);
                fail_over(c, spec, &e)?;
                input = Dispatchable::Host(flat);
            }
            Err(e) => {
                rb.context.release_bytes(rb.device_bytes());
                return Err(e);
            }
        }
    }
}

/// A kernel actor with plain (copying) channels.
///
/// `TIn` is the message type received on the settings' input channel; its
/// flattened segments become the kernel's buffer arguments (followed by the
/// dims and any per-dispatch `extra_args` as `int` scalars). After the
/// dispatch, the segments named by `spec.out_segs` are read back, rebuilt
/// as `TOut`, and sent on the output channel.
pub struct KernelActor<TIn: Flatten, TOut: Flatten> {
    spec: KernelSpec,
    /// Shared so a supervisor's factory can hand the *same* endpoint to
    /// each restarted incarnation (`In` is single-consumer but the
    /// incarnations are sequential, never concurrent).
    requests: Arc<In<Settings<TIn, TOut>>>,
    /// When present, every accepted request is parked here until its
    /// result is sent — the restart checkpoint (see [`crate::checkpoint`]).
    checkpoint: Option<Checkpoint<TIn, TOut>>,
    compiled: Option<ClResult<Compiled>>,
    _marker: PhantomData<fn(TIn) -> TOut>,
}

impl<TIn: Flatten, TOut: Flatten> KernelActor<TIn, TOut> {
    /// Create the actor; `requests` is its single (interface) channel.
    pub fn new(spec: KernelSpec, requests: In<Settings<TIn, TOut>>) -> Self {
        Self::shared(spec, Arc::new(requests))
    }

    /// Like [`KernelActor::new`], but with a shared request endpoint — the
    /// form a supervisor's child factory uses so the channel survives the
    /// actor being killed and rebuilt.
    pub fn shared(spec: KernelSpec, requests: Arc<In<Settings<TIn, TOut>>>) -> Self {
        KernelActor {
            spec,
            requests,
            checkpoint: None,
            compiled: None,
            _marker: PhantomData,
        }
    }

    /// Attach a checkpoint slot: requests are then processed with
    /// at-least-once redelivery across restarts and duplicate-send
    /// suppression (see [`crate::checkpoint`]). Unrecoverable *kill*
    /// errors make the behaviour return [`Control::Fail`] instead of
    /// poisoning the pipeline, so a supervisor can restart the actor.
    pub fn with_checkpoint(mut self, checkpoint: Checkpoint<TIn, TOut>) -> Self {
        self.checkpoint = Some(checkpoint);
        self
    }
}

impl<TIn: Flatten, TOut: Flatten> KernelActor<TIn, TOut> {
    /// One request under the recovery policy: upload, dispatch, read back,
    /// rebuild the output value. Every step retries transients; upload and
    /// dispatch additionally fail over on permanent device errors.
    fn process(
        c: &mut Compiled,
        spec: &KernelSpec,
        settings: &Settings<TIn, TOut>,
        flat: FlatData,
    ) -> ClResult<TOut> {
        let rb = dispatch_with_recovery(
            c,
            spec,
            &settings.worksize,
            &settings.groupsize,
            &settings.extra_args,
            &settings.extra_f32,
            Dispatchable::Host(flat),
        )?;
        // Read back the output segments. Plain channels: nothing stays on
        // the device, so accounting is released whether reads succeed or
        // not.
        let read = (|| {
            let mut out_segs = Vec::with_capacity(spec.out_segs.len());
            for &idx in &spec.out_segs {
                let (buf, ty) = &rb.bufs[idx];
                let (seg, ev) = with_retry(
                    &spec.recovery,
                    &c.env.queue,
                    c.env.device.name(),
                    &spec.profile,
                    "readback",
                    || crate::resident::read_seg(&c.env.queue, buf, *ty),
                )?;
                spec.profile.record_command(&ev, c.env.device.name());
                out_segs.push(seg);
            }
            Ok(out_segs)
        })();
        let out_dims = spec.out_dims.iter().map(|&i| rb.dims[i]).collect();
        rb.context.release_bytes(rb.device_bytes());
        drop(rb);
        TOut::unflatten(FlatData {
            segs: read?,
            dims: out_dims,
        })
        .map_err(|e| ClError::Internal(e.to_string()))
    }
}

/// Whether `e` is an injected kill: the actor must exit abruptly (for a
/// supervisor to observe) rather than retry, fail over, or poison.
fn is_kill(e: &ClError) -> bool {
    matches!(e, ClError::ActorKilled { .. })
}

/// Emit the [`trace::SpanKind::CheckpointRestore`] instant: a restarted
/// actor picked its parked item back up and is redelivering it.
fn trace_restore(spec: &KernelSpec, env: &OpenClEnvironment, actor: &str, seq: u64) {
    let t = spec.profile.trace();
    if t.is_enabled() {
        t.record(
            trace::TraceEvent::instant(
                trace::SpanKind::CheckpointRestore,
                &spec.kernel_name,
                env.device.name(),
                env.queue.now_ns(),
            )
            .with_arg("actor", actor)
            .with_arg("seq", seq.to_string()),
        );
    }
}

impl<TIn: Flatten, TOut: Flatten> KernelActor<TIn, TOut> {
    /// Process the parked in-flight item — the single processing path for
    /// a checkpointed actor, whether the item was just accepted or is
    /// being redelivered after a restart. The item stays parked in the
    /// slot throughout, so a kill (error *or* panic) mid-processing
    /// leaves it intact for the next incarnation.
    fn drive_in_flight(&mut self, ckpt: &Checkpoint<TIn, TOut>, ctx: &ActorCtx) -> Control {
        enum Done {
            Acked,
            Kill,
            Fatal,
            DownstreamGone,
        }
        let c = match self.compiled.as_mut().expect("constructor ran") {
            Ok(c) => c,
            Err(e) => {
                eprintln!("kernel actor `{}`: compile failed: {e}", ctx.name());
                let mut state = ckpt.lock();
                if let Some(item) = state.in_flight.take() {
                    item.settings.output.poison_receivers();
                }
                return Control::Stop;
            }
        };
        let spec = &self.spec;
        let mut state = ckpt.lock();
        let done = {
            let item = state
                .in_flight
                .as_mut()
                .expect("caller checked has_in_flight");
            if item.sent {
                // Died between send and ack: the result is already
                // downstream, so just acknowledge — re-sending here is
                // the duplicate that would break byte-identity.
                Done::Acked
            } else {
                if item.attempted {
                    trace_restore(spec, &c.env, ctx.name(), item.seq);
                }
                item.attempted = true;
                trace_invoke(spec, &c.env, ctx.name());
                match Self::process(c, spec, &item.settings, item.flat.clone()) {
                    Ok(out) => {
                        if item.settings.output.send_moved(out).is_err() {
                            Done::DownstreamGone
                        } else {
                            item.sent = true;
                            Done::Acked
                        }
                    }
                    Err(e) if is_kill(&e) => Done::Kill,
                    Err(e) => {
                        eprintln!(
                            "kernel actor `{}`: unrecoverable error: {e}; tearing down pipeline",
                            ctx.name()
                        );
                        item.settings.output.poison_receivers();
                        Done::Fatal
                    }
                }
            }
        };
        match done {
            Done::Acked => {
                let seq = state.in_flight.as_ref().map(|i| i.seq);
                state.acked = seq;
                state.in_flight = None;
                Control::Continue
            }
            // The item stays parked for the next incarnation.
            Done::Kill => Control::Fail,
            Done::Fatal | Done::DownstreamGone => {
                state.in_flight = None;
                Control::Stop
            }
        }
    }
}

impl<TIn: Flatten, TOut: Flatten> Actor for KernelActor<TIn, TOut> {
    fn constructor(&mut self, _ctx: &mut ActorCtx) {
        self.compiled = Some(compile(&self.spec));
    }

    fn behaviour(&mut self, ctx: &mut ActorCtx) -> Control {
        // A restarted incarnation finds its predecessor's unacknowledged
        // item and finishes it before accepting anything new.
        if let Some(ckpt) = self.checkpoint.clone() {
            if ckpt.has_in_flight() {
                return self.drive_in_flight(&ckpt, ctx);
            }
        }
        let settings = match self.requests.receive() {
            Ok(s) => s,
            Err(_) => return Control::Stop,
        };
        if let Some(ckpt) = self.checkpoint.clone() {
            // Checkpointed accept: receive the data, park the item, then
            // process it through the same path a redelivery takes.
            let data = match settings.input.receive() {
                Ok(d) => d,
                Err(_) => {
                    settings.output.poison_receivers();
                    return Control::Stop;
                }
            };
            let mut state = ckpt.lock();
            let seq = state.next_seq;
            state.next_seq += 1;
            state.in_flight = Some(InFlight {
                seq,
                settings,
                flat: data.flatten(),
                sent: false,
                attempted: false,
            });
            drop(state);
            return self.drive_in_flight(&ckpt, ctx);
        }
        let c = match self.compiled.as_mut().expect("constructor ran") {
            Ok(c) => c,
            Err(e) => {
                eprintln!("kernel actor `{}`: compile failed: {e}", ctx.name());
                settings.output.poison_receivers();
                return Control::Stop;
            }
        };
        // Settings arrived but the data never will: the upstream stage
        // died mid-request, so propagate the teardown downstream.
        let data = match settings.input.receive() {
            Ok(d) => d,
            Err(_) => {
                settings.output.poison_receivers();
                return Control::Stop;
            }
        };
        trace_invoke(&self.spec, &c.env, ctx.name());
        match Self::process(c, &self.spec, &settings, data.flatten()) {
            Ok(out) => {
                if settings.output.send_moved(out).is_err() {
                    return Control::Stop;
                }
                Control::Continue
            }
            // An injected kill without a checkpoint: exit abruptly (no
            // poison) so a supervisor can still observe and restart; the
            // in-flight request is lost, which is exactly what the
            // checkpointed path above exists to prevent.
            Err(e) if is_kill(&e) => Control::Fail,
            Err(e) => {
                eprintln!(
                    "kernel actor `{}`: unrecoverable error: {e}; tearing down pipeline",
                    ctx.name()
                );
                settings.output.poison_receivers();
                Control::Stop
            }
        }
    }
}

/// A kernel actor whose data channels are `mov`: it consumes and produces
/// [`DeviceData`], leaving results on the device (§6.2.3).
///
/// The kernel runs **in place** over all of the value's segments; the same
/// buffers flow onward inside the output `DeviceData`, so a pipeline of
/// these actors (the paper's LUD topology, Figure 4) moves the data to the
/// device once and back once.
pub struct ResidentKernelActor<T: Flatten> {
    spec: KernelSpec,
    requests: In<Settings<DeviceData<T>, DeviceData<T>>>,
    compiled: Option<ClResult<Compiled>>,
}

impl<T: Flatten> ResidentKernelActor<T> {
    /// Create the actor; `requests` is its single (interface) channel.
    pub fn new(spec: KernelSpec, requests: In<Settings<DeviceData<T>, DeviceData<T>>>) -> Self {
        ResidentKernelActor {
            spec,
            requests,
            compiled: None,
        }
    }
}

impl<T: Flatten> Actor for ResidentKernelActor<T> {
    fn constructor(&mut self, _ctx: &mut ActorCtx) {
        self.compiled = Some(compile(&self.spec));
    }

    fn behaviour(&mut self, ctx: &mut ActorCtx) -> Control {
        let settings = match self.requests.receive() {
            Ok(s) => s,
            Err(_) => return Control::Stop,
        };
        let c = match self.compiled.as_mut().expect("constructor ran") {
            Ok(c) => c,
            Err(e) => {
                eprintln!("kernel actor `{}`: compile failed: {e}", ctx.name());
                settings.output.poison_receivers();
                return Control::Stop;
            }
        };
        let data = match settings.input.receive() {
            Ok(d) => d,
            Err(_) => {
                settings.output.poison_receivers();
                return Control::Stop;
            }
        };
        trace_invoke(&self.spec, &c.env, ctx.name());
        // §6.2.3: same context → reuse buffers; host or foreign context →
        // (read back and) upload. `dispatch_with_recovery` handles the
        // upload, retries, and any failover (a migrated value stays
        // resident on the *new* device going forward).
        let result = data
            .for_dispatch(&c.env.context, Some(&self.spec.profile))
            .and_then(|input| {
                dispatch_with_recovery(
                    c,
                    &self.spec,
                    &settings.worksize,
                    &settings.groupsize,
                    &settings.extra_args,
                    &settings.extra_f32,
                    input,
                )
            });
        match result {
            Ok(rb) => {
                if settings
                    .output
                    .send_moved(DeviceData::resident(rb))
                    .is_err()
                {
                    return Control::Stop;
                }
                Control::Continue
            }
            // Injected kill: abrupt exit for the supervisor, no poison.
            Err(e) if is_kill(&e) => Control::Fail,
            Err(e) => {
                eprintln!(
                    "kernel actor `{}`: unrecoverable error: {e}; tearing down pipeline",
                    ctx.name()
                );
                settings.output.poison_receivers();
                Control::Stop
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use ensemble_actors::{buffered_channel, Out, Stage};
    use oclsim::DeviceType;

    const SCALE_SRC: &str = "__kernel void scale(__global float* data, const int n) {
        int i = get_global_id(0);
        if (i < n) { data[i] = data[i] * 2.0f; }
    }";

    fn scale_spec(profile: ProfileSink) -> KernelSpec {
        KernelSpec {
            source: SCALE_SRC.to_string(),
            kernel_name: "scale".to_string(),
            device: DeviceSel::gpu(),
            out_segs: vec![0],
            out_dims: vec![0],
            profile,
            recovery: RecoveryPolicy::default(),
        }
    }

    #[test]
    fn kernel_actor_full_protocol() {
        // The complete Listing-3 choreography: dispatch actor + kernel
        // actor connected by a requests channel; data channels created
        // dynamically and sent inside the settings struct.
        let profile = ProfileSink::new();
        let (req_out, req_in) = buffered_channel::<Settings<Vec<f32>, Vec<f32>>>(1);
        let mut stage = Stage::new("home");
        stage.spawn(
            "Multiply",
            KernelActor::new(scale_spec(profile.clone()), req_in),
        );
        let (result_out, result_in) = buffered_channel::<Vec<f32>>(1);
        stage.spawn_once("Dispatch", move |_| {
            let data_in = In::with_buffer(1);
            let data_out = Out::new();
            data_out.connect(&data_in);
            let settings = Settings::new(vec![8], vec![4], data_in, result_out);
            req_out.send_moved(settings).unwrap();
            data_out
                .send(&vec![1.0f32, 2.0, 3.0, 4.0, 5.0, 6.0, 7.0, 8.0])
                .unwrap();
        });
        let result = result_in.receive().unwrap();
        stage.join(); // kernel actor stops when the requests channel closes
        assert_eq!(result, vec![2.0, 4.0, 6.0, 8.0, 10.0, 12.0, 14.0, 16.0]);
        let p = profile.snapshot();
        assert!(p.to_device_ns > 0.0);
        assert!(p.from_device_ns > 0.0);
        assert!(p.kernel_ns > 0.0);
        assert_eq!(p.dispatches, 1);
    }

    #[test]
    fn resident_pipeline_skips_intermediate_transfers() {
        // Two mov kernel actors in series on the same device: the value
        // crosses the host boundary exactly twice (up once, down once).
        let profile = ProfileSink::new();
        let (req1_out, req1_in) = buffered_channel(1);
        let (req2_out, req2_in) = buffered_channel(1);
        let mut stage = Stage::new("home");
        stage.spawn(
            "k1",
            ResidentKernelActor::<Vec<f32>>::new(
                KernelSpec {
                    out_segs: vec![],
                    out_dims: vec![],
                    ..scale_spec(profile.clone())
                },
                req1_in,
            ),
        );
        stage.spawn(
            "k2",
            ResidentKernelActor::<Vec<f32>>::new(
                KernelSpec {
                    out_segs: vec![],
                    out_dims: vec![],
                    ..scale_spec(profile.clone())
                },
                req2_in,
            ),
        );
        let (final_out, final_in) = buffered_channel::<DeviceData<Vec<f32>>>(1);
        let p2 = profile.clone();
        stage.spawn_once("controller", move |_| {
            // Plumb: controller -> k1 -> k2 -> controller (Figure 4).
            let k1_data = In::with_buffer(1);
            let to_k1 = Out::new();
            to_k1.connect(&k1_data);
            let k2_data = In::with_buffer(1);
            let k1_to_k2 = Out::new();
            k1_to_k2.connect(&k2_data);
            req1_out
                .send_moved(Settings::new(vec![4], vec![4], k1_data, k1_to_k2))
                .unwrap();
            req2_out
                .send_moved(Settings::new(vec![4], vec![4], k2_data, final_out))
                .unwrap();
            to_k1
                .send_moved(DeviceData::host(vec![1.0f32, 2.0, 3.0, 4.0]))
                .unwrap();
        });
        let result = final_in.receive().unwrap();
        assert!(result.is_resident());
        let values = result.into_host_profiled(Some(&p2)).unwrap();
        stage.join();
        assert_eq!(values, vec![4.0, 8.0, 12.0, 16.0]);
        let p = profile.snapshot();
        assert_eq!(p.dispatches, 2);
        // One upload (16 bytes) and one final download — no transfer
        // between the two kernels. Transfer cost is affine, so a second
        // hop would have doubled these figures.
        let gpu = crate::env::device_matrix()
            .select(DeviceSel::gpu())
            .unwrap();
        let one_way = gpu.device.cost_model().transfer_ns(16);
        assert!((p.to_device_ns - one_way).abs() < 1e-6);
        assert!((p.from_device_ns - one_way).abs() < 1e-6);
    }

    #[test]
    fn device_retarget_is_one_line() {
        // "should the user wish to change the device ... the language only
        // requires that the device type be modified in the actor
        // definition" — here: the DeviceSel field.
        for ty in [DeviceType::Gpu, DeviceType::Cpu, DeviceType::Accelerator] {
            let profile = ProfileSink::new();
            let (req_out, req_in) = buffered_channel(1);
            let mut stage = Stage::new("home");
            let spec = KernelSpec {
                device: DeviceSel::new(ty, 0),
                ..scale_spec(profile)
            };
            stage.spawn("k", KernelActor::<Vec<f32>, Vec<f32>>::new(spec, req_in));
            let (result_out, result_in) = buffered_channel::<Vec<f32>>(1);
            stage.spawn_once("d", move |_| {
                let data_in = In::with_buffer(1);
                let data_out = Out::new();
                data_out.connect(&data_in);
                req_out
                    .send_moved(Settings::new(vec![4], vec![2], data_in, result_out))
                    .unwrap();
                data_out.send(&vec![1.0f32, 2.0, 3.0, 4.0]).unwrap();
            });
            assert_eq!(result_in.receive().unwrap(), vec![2.0, 4.0, 6.0, 8.0]);
            stage.join();
        }
    }
}
