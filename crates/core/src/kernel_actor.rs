//! Kernel actors: OpenCL kernels represented as actors (§6).
//!
//! A kernel actor presents a single channel carrying a [`Settings`] struct.
//! Its behaviour is the protocol the Ensemble compiler enforces:
//!
//! 1. `receive req from requests` — the settings (worksizes + channels);
//! 2. `receive d from req.input` — the data;
//! 3. *the kernel body* — here, a mini OpenCL-C kernel dispatched through
//!    [`oclsim`] on the device named in the actor's [`DeviceSel`];
//! 4. `send result on req.output` — the processed data onward.
//!
//! The actor's bytecode-interpreted host role from Figure 2 of the paper is
//! played by the actor thread: it prepares buffers, launches the kernel and
//! collects results, so multiple kernel actors can share one device, and
//! changing the target device is a one-line change to the `DeviceSel`.
//!
//! Two flavours mirror the paper's two channel modes:
//!
//! * [`KernelActor`] — plain channels: data is copied to the device and the
//!   outputs are copied back on every message (shared-nothing semantics).
//! * [`ResidentKernelActor`] — `mov` channels: messages are
//!   [`DeviceData`] values; outputs stay on the device and inputs already
//!   resident in the actor's context are used in place (§6.2.3).

use crate::env::{DeviceSel, OpenClEnvironment};
use crate::flatten::{FlatData, FlatSeg, Flatten};
use crate::profile::ProfileSink;
use crate::resident::{DeviceData, Dispatchable, ResidentBufs};
use crate::settings::Settings;
use ensemble_actors::{Actor, ActorCtx, Control, In};
use oclsim::{ClResult, Kernel, MemFlags, Program};
use std::marker::PhantomData;

/// Static description of a kernel actor: what to compile, where to run it,
/// and how its output maps back onto the input's flattened form.
#[derive(Debug, Clone)]
pub struct KernelSpec {
    /// Mini OpenCL-C source (the string the Ensemble compiler would have
    /// generated from the actor's behaviour clause).
    pub source: String,
    /// `__kernel` entry point name.
    pub kernel_name: String,
    /// Device selection from the actor declaration.
    pub device: DeviceSel,
    /// Indices of the input's flattened segments that form the output
    /// (e.g. matmul sends only the result matrix onward).
    pub out_segs: Vec<usize>,
    /// Indices into the input's `dims` that describe the output's shape.
    pub out_dims: Vec<usize>,
    /// Where transfer/kernel times are recorded.
    pub profile: ProfileSink,
}

impl KernelSpec {
    /// Spec with output = the entire input (in-place kernels).
    pub fn in_place(
        source: impl Into<String>,
        kernel_name: impl Into<String>,
        device: DeviceSel,
    ) -> KernelSpec {
        KernelSpec {
            source: source.into(),
            kernel_name: kernel_name.into(),
            device,
            out_segs: Vec::new(),
            out_dims: Vec::new(),
            profile: ProfileSink::new(),
        }
    }
}

/// Upload a flattened value into fresh device buffers, charging the
/// transfers to `profile`.
pub(crate) fn upload_flat(
    env: &OpenClEnvironment,
    flat: FlatData,
    profile: &ProfileSink,
) -> ClResult<ResidentBufs> {
    let mut bufs = Vec::with_capacity(flat.segs.len());
    for seg in &flat.segs {
        let buf = env
            .context
            .create_buffer(MemFlags::ReadWrite, seg.byte_len())?;
        let ev = env.queue.enqueue_write_buffer(&buf, &seg.to_bytes())?;
        profile.record_command(&ev, env.device.name());
        bufs.push((buf, seg.ty()));
    }
    Ok(ResidentBufs {
        bufs,
        dims: flat.dims,
        context: env.context.clone(),
        queue: env.queue.clone(),
    })
}

fn bind_and_dispatch(
    env: &OpenClEnvironment,
    kernel: &Kernel,
    rb: &ResidentBufs,
    worksize: &[usize],
    groupsize: &[usize],
    extra_args: &[i32],
    extra_f32: &[f32],
    profile: &ProfileSink,
) -> ClResult<()> {
    let mut arg = 0usize;
    for (buf, _) in &rb.bufs {
        kernel.set_arg_buffer(arg, buf)?;
        arg += 1;
    }
    for d in &rb.dims {
        kernel.set_arg_i32(arg, *d)?;
        arg += 1;
    }
    for x in extra_args {
        kernel.set_arg_i32(arg, *x)?;
        arg += 1;
    }
    for x in extra_f32 {
        kernel.set_arg_f32(arg, *x)?;
        arg += 1;
    }
    let nd = crate::settings::nd_from(worksize, groupsize)?;
    let ev = env.queue.enqueue_nd_range(kernel, &nd)?;
    profile.record_command(&ev, env.device.name());
    Ok(())
}

/// Mark the `invokenative` boundary: the instant (on the device's virtual
/// clock) at which a kernel actor accepted a request and entered native
/// dispatch code. No-op when the spec's profile carries no trace.
fn trace_invoke(spec: &KernelSpec, env: &OpenClEnvironment, actor: &str) {
    let t = spec.profile.trace();
    if t.is_enabled() {
        t.record(
            trace::TraceEvent::instant(
                trace::SpanKind::InvokeNative,
                &spec.kernel_name,
                env.device.name(),
                env.queue.now_ns(),
            )
            .with_arg("actor", actor),
        );
    }
}

struct Compiled {
    env: OpenClEnvironment,
    kernel: Kernel,
}

fn compile(spec: &KernelSpec, who: &str) -> Compiled {
    let env = OpenClEnvironment::resolve(spec.device)
        .unwrap_or_else(|e| panic!("kernel actor `{who}`: device selection failed: {e}"));
    let program = Program::build(&env.context, &spec.source)
        .unwrap_or_else(|e| panic!("kernel actor `{who}`: kernel build failed: {e}"));
    let kernel = program
        .create_kernel(&spec.kernel_name)
        .unwrap_or_else(|e| panic!("kernel actor `{who}`: {e}"));
    Compiled { env, kernel }
}

/// A kernel actor with plain (copying) channels.
///
/// `TIn` is the message type received on the settings' input channel; its
/// flattened segments become the kernel's buffer arguments (followed by the
/// dims and any per-dispatch `extra_args` as `int` scalars). After the
/// dispatch, the segments named by `spec.out_segs` are read back, rebuilt
/// as `TOut`, and sent on the output channel.
pub struct KernelActor<TIn: Flatten, TOut: Flatten> {
    spec: KernelSpec,
    requests: In<Settings<TIn, TOut>>,
    compiled: Option<Compiled>,
    _marker: PhantomData<fn(TIn) -> TOut>,
}

impl<TIn: Flatten, TOut: Flatten> KernelActor<TIn, TOut> {
    /// Create the actor; `requests` is its single (interface) channel.
    pub fn new(spec: KernelSpec, requests: In<Settings<TIn, TOut>>) -> Self {
        KernelActor {
            spec,
            requests,
            compiled: None,
            _marker: PhantomData,
        }
    }
}

impl<TIn: Flatten, TOut: Flatten> Actor for KernelActor<TIn, TOut> {
    fn constructor(&mut self, ctx: &mut ActorCtx) {
        self.compiled = Some(compile(&self.spec, ctx.name()));
    }

    fn behaviour(&mut self, ctx: &mut ActorCtx) -> Control {
        let c = self.compiled.as_ref().expect("constructor ran");
        let settings = match self.requests.receive() {
            Ok(s) => s,
            Err(_) => return Control::Stop,
        };
        let data = match settings.input.receive() {
            Ok(d) => d,
            Err(_) => return Control::Stop,
        };
        trace_invoke(&self.spec, &c.env, ctx.name());
        let flat = data.flatten();
        let rb = upload_flat(&c.env, flat, &self.spec.profile)
            .unwrap_or_else(|e| panic!("kernel actor `{}`: upload failed: {e}", ctx.name()));
        bind_and_dispatch(
            &c.env,
            &c.kernel,
            &rb,
            &settings.worksize,
            &settings.groupsize,
            &settings.extra_args,
            &settings.extra_f32,
            &self.spec.profile,
        )
        .unwrap_or_else(|e| panic!("kernel actor `{}`: dispatch failed: {e}", ctx.name()));

        // Read back the output segments.
        let mut out_segs = Vec::with_capacity(self.spec.out_segs.len());
        for &idx in &self.spec.out_segs {
            let (buf, ty) = &rb.bufs[idx];
            let mut bytes = vec![0u8; buf.len()];
            let ev = c
                .env
                .queue
                .enqueue_read_buffer(buf, &mut bytes)
                .unwrap_or_else(|e| panic!("kernel actor `{}`: read failed: {e}", ctx.name()));
            self.spec.profile.record_command(&ev, c.env.device.name());
            out_segs.push(FlatSeg::from_bytes(*ty, &bytes));
        }
        let out_dims = self.spec.out_dims.iter().map(|&i| rb.dims[i]).collect();
        let out = TOut::unflatten(FlatData {
            segs: out_segs,
            dims: out_dims,
        })
        .unwrap_or_else(|e| panic!("kernel actor `{}`: {e}", ctx.name()));

        // Plain channels: nothing stays on the device.
        let released = rb.device_bytes();
        c.env.context.release_bytes(released);
        drop(rb);

        if settings.output.send_moved(out).is_err() {
            return Control::Stop;
        }
        Control::Continue
    }
}

/// A kernel actor whose data channels are `mov`: it consumes and produces
/// [`DeviceData`], leaving results on the device (§6.2.3).
///
/// The kernel runs **in place** over all of the value's segments; the same
/// buffers flow onward inside the output `DeviceData`, so a pipeline of
/// these actors (the paper's LUD topology, Figure 4) moves the data to the
/// device once and back once.
pub struct ResidentKernelActor<T: Flatten> {
    spec: KernelSpec,
    requests: In<Settings<DeviceData<T>, DeviceData<T>>>,
    compiled: Option<Compiled>,
}

impl<T: Flatten> ResidentKernelActor<T> {
    /// Create the actor; `requests` is its single (interface) channel.
    pub fn new(spec: KernelSpec, requests: In<Settings<DeviceData<T>, DeviceData<T>>>) -> Self {
        ResidentKernelActor {
            spec,
            requests,
            compiled: None,
        }
    }
}

impl<T: Flatten> Actor for ResidentKernelActor<T> {
    fn constructor(&mut self, ctx: &mut ActorCtx) {
        self.compiled = Some(compile(&self.spec, ctx.name()));
    }

    fn behaviour(&mut self, ctx: &mut ActorCtx) -> Control {
        let c = self.compiled.as_ref().expect("constructor ran");
        let settings = match self.requests.receive() {
            Ok(s) => s,
            Err(_) => return Control::Stop,
        };
        let data = match settings.input.receive() {
            Ok(d) => d,
            Err(_) => return Control::Stop,
        };
        trace_invoke(&self.spec, &c.env, ctx.name());
        // §6.2.3: same context → reuse buffers; host or foreign context →
        // (read back and) upload.
        let rb = match data
            .for_dispatch(&c.env.context, Some(&self.spec.profile))
            .unwrap_or_else(|e| panic!("kernel actor `{}`: {e}", ctx.name()))
        {
            Dispatchable::Resident(rb) => rb,
            Dispatchable::Host(flat) => upload_flat(&c.env, flat, &self.spec.profile)
                .unwrap_or_else(|e| panic!("kernel actor `{}`: upload failed: {e}", ctx.name())),
        };
        bind_and_dispatch(
            &c.env,
            &c.kernel,
            &rb,
            &settings.worksize,
            &settings.groupsize,
            &settings.extra_args,
            &settings.extra_f32,
            &self.spec.profile,
        )
        .unwrap_or_else(|e| panic!("kernel actor `{}`: dispatch failed: {e}", ctx.name()));

        if settings.output.send_moved(DeviceData::resident(rb)).is_err() {
            return Control::Stop;
        }
        Control::Continue
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use ensemble_actors::{buffered_channel, Out, Stage};
    use oclsim::DeviceType;

    const SCALE_SRC: &str = "__kernel void scale(__global float* data, const int n) {
        int i = get_global_id(0);
        if (i < n) { data[i] = data[i] * 2.0f; }
    }";

    fn scale_spec(profile: ProfileSink) -> KernelSpec {
        KernelSpec {
            source: SCALE_SRC.to_string(),
            kernel_name: "scale".to_string(),
            device: DeviceSel::gpu(),
            out_segs: vec![0],
            out_dims: vec![0],
            profile,
        }
    }

    #[test]
    fn kernel_actor_full_protocol() {
        // The complete Listing-3 choreography: dispatch actor + kernel
        // actor connected by a requests channel; data channels created
        // dynamically and sent inside the settings struct.
        let profile = ProfileSink::new();
        let (req_out, req_in) = buffered_channel::<Settings<Vec<f32>, Vec<f32>>>(1);
        let mut stage = Stage::new("home");
        stage.spawn("Multiply", KernelActor::new(scale_spec(profile.clone()), req_in));
        let (result_out, result_in) = buffered_channel::<Vec<f32>>(1);
        stage.spawn_once("Dispatch", move |_| {
            let data_in = In::with_buffer(1);
            let data_out = Out::new();
            data_out.connect(&data_in);
            let settings = Settings::new(vec![8], vec![4], data_in, result_out);
            req_out.send_moved(settings).unwrap();
            data_out
                .send(&vec![1.0f32, 2.0, 3.0, 4.0, 5.0, 6.0, 7.0, 8.0])
                .unwrap();
        });
        let result = result_in.receive().unwrap();
        stage.join(); // kernel actor stops when the requests channel closes
        assert_eq!(result, vec![2.0, 4.0, 6.0, 8.0, 10.0, 12.0, 14.0, 16.0]);
        let p = profile.snapshot();
        assert!(p.to_device_ns > 0.0);
        assert!(p.from_device_ns > 0.0);
        assert!(p.kernel_ns > 0.0);
        assert_eq!(p.dispatches, 1);
    }

    #[test]
    fn resident_pipeline_skips_intermediate_transfers() {
        // Two mov kernel actors in series on the same device: the value
        // crosses the host boundary exactly twice (up once, down once).
        let profile = ProfileSink::new();
        let (req1_out, req1_in) = buffered_channel(1);
        let (req2_out, req2_in) = buffered_channel(1);
        let mut stage = Stage::new("home");
        stage.spawn(
            "k1",
            ResidentKernelActor::<Vec<f32>>::new(
                KernelSpec {
                    out_segs: vec![],
                    out_dims: vec![],
                    ..scale_spec(profile.clone())
                },
                req1_in,
            ),
        );
        stage.spawn(
            "k2",
            ResidentKernelActor::<Vec<f32>>::new(
                KernelSpec {
                    out_segs: vec![],
                    out_dims: vec![],
                    ..scale_spec(profile.clone())
                },
                req2_in,
            ),
        );
        let (final_out, final_in) = buffered_channel::<DeviceData<Vec<f32>>>(1);
        let p2 = profile.clone();
        stage.spawn_once("controller", move |_| {
            // Plumb: controller -> k1 -> k2 -> controller (Figure 4).
            let k1_data = In::with_buffer(1);
            let to_k1 = Out::new();
            to_k1.connect(&k1_data);
            let k2_data = In::with_buffer(1);
            let k1_to_k2 = Out::new();
            k1_to_k2.connect(&k2_data);
            req1_out
                .send_moved(Settings::new(vec![4], vec![4], k1_data, k1_to_k2))
                .unwrap();
            req2_out
                .send_moved(Settings::new(vec![4], vec![4], k2_data, final_out))
                .unwrap();
            to_k1
                .send_moved(DeviceData::host(vec![1.0f32, 2.0, 3.0, 4.0]))
                .unwrap();
        });
        let result = final_in.receive().unwrap();
        assert!(result.is_resident());
        let values = result.into_host_profiled(Some(&p2)).unwrap();
        stage.join();
        assert_eq!(values, vec![4.0, 8.0, 12.0, 16.0]);
        let p = profile.snapshot();
        assert_eq!(p.dispatches, 2);
        // One upload (16 bytes) and one final download — no transfer
        // between the two kernels. Transfer cost is affine, so a second
        // hop would have doubled these figures.
        let gpu = crate::env::device_matrix().select(DeviceSel::gpu()).unwrap();
        let one_way = gpu.device.cost_model().transfer_ns(16);
        assert!((p.to_device_ns - one_way).abs() < 1e-6);
        assert!((p.from_device_ns - one_way).abs() < 1e-6);
    }

    #[test]
    fn device_retarget_is_one_line() {
        // "should the user wish to change the device ... the language only
        // requires that the device type be modified in the actor
        // definition" — here: the DeviceSel field.
        for ty in [DeviceType::Gpu, DeviceType::Cpu, DeviceType::Accelerator] {
            let profile = ProfileSink::new();
            let (req_out, req_in) = buffered_channel(1);
            let mut stage = Stage::new("home");
            let spec = KernelSpec {
                device: DeviceSel::new(ty, 0),
                ..scale_spec(profile)
            };
            stage.spawn("k", KernelActor::<Vec<f32>, Vec<f32>>::new(spec, req_in));
            let (result_out, result_in) = buffered_channel::<Vec<f32>>(1);
            stage.spawn_once("d", move |_| {
                let data_in = In::with_buffer(1);
                let data_out = Out::new();
                data_out.connect(&data_in);
                req_out
                    .send_moved(Settings::new(vec![4], vec![2], data_in, result_out))
                    .unwrap();
                data_out.send(&vec![1.0f32, 2.0, 3.0, 4.0]).unwrap();
            });
            assert_eq!(result_in.receive().unwrap(), vec![2.0, 4.0, 6.0, 8.0]);
            stage.join();
        }
    }
}
