//! The runtime device matrix and per-actor OpenCL environments (§6.2.1–6.2.2).
//!
//! During initialisation the Ensemble runtime builds a single matrix of the
//! platforms and devices available on the system, with **exactly one
//! context and one command queue per device** — the paper adds this after
//! observing read races with multiple command queues per device. Kernel
//! actors carry an [`OpenClEnvironment`] resolved from this matrix using
//! the `<device_index, device_type>` annotation in their declaration.

use oclsim::{ClError, ClResult, CommandQueue, Context, Device, DeviceType, Platform};
use std::sync::OnceLock;

/// Device selection attached to an `opencl` actor declaration:
/// `opencl <device_index=0, device_type=CPU> actor ...`.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct DeviceSel {
    /// Preferred device class; `None` uses the matrix default (first
    /// device), mirroring "if no information is given in the declaration,
    /// default values are used".
    pub device_type: Option<DeviceType>,
    /// Index among the devices of that type.
    pub device_index: usize,
}

impl DeviceSel {
    /// Select the `index`-th device of `ty`.
    pub fn new(ty: DeviceType, index: usize) -> DeviceSel {
        DeviceSel {
            device_type: Some(ty),
            device_index: index,
        }
    }

    /// Select the first GPU.
    pub fn gpu() -> DeviceSel {
        DeviceSel::new(DeviceType::Gpu, 0)
    }

    /// Select the first CPU.
    pub fn cpu() -> DeviceSel {
        DeviceSel::new(DeviceType::Cpu, 0)
    }
}

/// One row of the device matrix: a device with its unique context + queue.
#[derive(Debug, Clone)]
pub struct MatrixEntry {
    /// Platform the device came from.
    pub platform: String,
    /// The device.
    pub device: Device,
    /// The single context for this device.
    pub context: Context,
    /// The single command queue for this device.
    pub queue: CommandQueue,
}

/// The process-wide platforms × devices matrix.
#[derive(Debug)]
pub struct DeviceMatrix {
    entries: Vec<MatrixEntry>,
}

static MATRIX: OnceLock<DeviceMatrix> = OnceLock::new();

/// The process-wide device matrix, built on first use.
pub fn device_matrix() -> &'static DeviceMatrix {
    MATRIX.get_or_init(DeviceMatrix::discover)
}

impl DeviceMatrix {
    fn discover() -> DeviceMatrix {
        let mut entries = Vec::new();
        for platform in Platform::all() {
            for device in platform.devices(None) {
                let context =
                    Context::new(std::slice::from_ref(&device)).expect("context for device");
                let queue = CommandQueue::new(&context, &device).expect("queue for device");
                entries.push(MatrixEntry {
                    platform: platform.name().to_string(),
                    device,
                    context,
                    queue,
                });
            }
        }
        DeviceMatrix { entries }
    }

    /// All matrix entries (platform-major, device-minor order).
    pub fn entries(&self) -> &[MatrixEntry] {
        &self.entries
    }

    /// Resolve a device selection to its matrix entry.
    pub fn select(&self, sel: DeviceSel) -> ClResult<&MatrixEntry> {
        match sel.device_type {
            None => self
                .entries
                .get(sel.device_index)
                .ok_or_else(|| ClError::DeviceNotFound {
                    requested: format!("device #{}", sel.device_index),
                }),
            Some(ty) => self
                .entries
                .iter()
                .filter(|e| e.device.device_type() == ty)
                .nth(sel.device_index)
                .ok_or_else(|| ClError::DeviceNotFound {
                    requested: format!("{ty} #{}", sel.device_index),
                }),
        }
    }

    /// The entry the recovery layer fails over to when `device_id` becomes
    /// unusable: the *next* matrix row, non-wrapping. The matrix is ordered
    /// platform-major with the GPU first, so failover walks the degradation
    /// chain GPU → CPU → accelerator and reports [`ClError::DeviceNotFound`]
    /// once every device has been exhausted.
    pub fn failover_from(&self, device_id: usize) -> ClResult<&MatrixEntry> {
        let pos = self
            .entries
            .iter()
            .position(|e| e.device.id() == device_id)
            .ok_or_else(|| ClError::DeviceNotFound {
                requested: format!("matrix entry for device id {device_id}"),
            })?;
        self.entries
            .get(pos + 1)
            .ok_or_else(|| ClError::DeviceNotFound {
                requested: format!(
                    "failover target after `{}` (device matrix exhausted)",
                    self.entries[pos].device.name()
                ),
            })
    }
}

/// Resolves a kernel actor's `<device_index, device_type>` selection to
/// the [`OpenClEnvironment`] it will dispatch through.
///
/// The VM's default resolver ([`MatrixResolver`]) answers from the
/// process-wide [`DeviceMatrix`] — one shared context + queue per device,
/// exactly the paper's runtime. A multi-tenant serving layer substitutes
/// its own resolver so each tenant session dispatches through *private*
/// per-tenant contexts and queues over the same physical devices: private
/// contexts give every tenant a deterministic virtual clock starting at
/// zero (byte-identical solo vs. contended runs) and a fault-isolation
/// boundary (one tenant's injected chaos can only ever fire on that
/// tenant's own queues).
pub trait ResolveEnv: Send + Sync {
    /// Resolve `sel` to a device environment.
    fn resolve(&self, sel: DeviceSel) -> ClResult<OpenClEnvironment>;
}

/// The default resolver: the process-wide device matrix.
#[derive(Debug, Clone, Copy, Default)]
pub struct MatrixResolver;

impl ResolveEnv for MatrixResolver {
    fn resolve(&self, sel: DeviceSel) -> ClResult<OpenClEnvironment> {
        OpenClEnvironment::resolve(sel)
    }
}

/// The runtime structure attached to every OpenCL actor (§6.2.2): metadata
/// about the platform, device and device type, plus the relevant command
/// queue and context, populated from the device matrix when the actor is
/// created.
#[derive(Debug, Clone)]
pub struct OpenClEnvironment {
    /// Platform name.
    pub platform: String,
    /// The resolved device.
    pub device: Device,
    /// The context shared by everything targeting this device.
    pub context: Context,
    /// The single queue for this device.
    pub queue: CommandQueue,
}

impl OpenClEnvironment {
    /// Resolve a device selection through the global matrix.
    pub fn resolve(sel: DeviceSel) -> ClResult<OpenClEnvironment> {
        let entry = device_matrix().select(sel)?;
        Ok(OpenClEnvironment::from_entry(entry))
    }

    fn from_entry(entry: &MatrixEntry) -> OpenClEnvironment {
        OpenClEnvironment {
            platform: entry.platform.clone(),
            device: entry.device.clone(),
            context: entry.context.clone(),
            queue: entry.queue.clone(),
        }
    }

    /// The environment the recovery layer degrades to when this one's
    /// device fails permanently (see [`DeviceMatrix::failover_from`]).
    pub fn failover(&self) -> ClResult<OpenClEnvironment> {
        let entry = device_matrix().failover_from(self.device.id())?;
        Ok(OpenClEnvironment::from_entry(entry))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn matrix_has_one_entry_per_device() {
        let m = device_matrix();
        assert_eq!(m.entries().len(), 3); // GPU, CPU, accelerator
    }

    #[test]
    fn one_queue_per_device_is_shared() {
        // Two actors selecting the same device must receive the *same*
        // queue (same virtual clock) — the paper's fix for the read races
        // it observed with multiple queues per device.
        let a = OpenClEnvironment::resolve(DeviceSel::gpu()).unwrap();
        let b = OpenClEnvironment::resolve(DeviceSel::gpu()).unwrap();
        assert_eq!(a.context.id(), b.context.id());
        let before = a.queue.now_ns();
        let buf = a
            .context
            .create_buffer(oclsim::MemFlags::ReadWrite, 64)
            .unwrap();
        a.queue.write_f32(&buf, &[0.0; 16]).unwrap();
        assert!(b.queue.now_ns() > before, "queues are distinct clocks");
        a.context.release_bytes(64);
    }

    #[test]
    fn selection_by_type_and_index() {
        let m = device_matrix();
        let gpu = m.select(DeviceSel::gpu()).unwrap();
        assert_eq!(gpu.device.device_type(), DeviceType::Gpu);
        let cpu = m.select(DeviceSel::cpu()).unwrap();
        assert_eq!(cpu.device.device_type(), DeviceType::Cpu);
        assert!(m.select(DeviceSel::new(DeviceType::Gpu, 5)).is_err());
    }

    #[test]
    fn default_selection_uses_first_device() {
        let m = device_matrix();
        let e = m.select(DeviceSel::default()).unwrap();
        assert_eq!(e.device.id(), m.entries()[0].device.id());
    }

    #[test]
    fn failover_walks_the_matrix_without_wrapping() {
        let m = device_matrix();
        let gpu = m.select(DeviceSel::gpu()).unwrap();
        let second = m.failover_from(gpu.device.id()).unwrap();
        assert_eq!(second.device.id(), m.entries()[1].device.id());
        let last = m.entries().last().unwrap();
        assert!(m.failover_from(last.device.id()).is_err(), "must not wrap");
        let env = OpenClEnvironment::resolve(DeviceSel::gpu()).unwrap();
        assert_eq!(env.failover().unwrap().device.id(), second.device.id());
    }
}
