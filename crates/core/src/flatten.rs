//! Automated flattening of rich message types to OpenCL buffers (§6.1.2).
//!
//! OpenCL requires arrays-of-arrays and pointer-rich structures to be
//! flattened into contiguous 1-D buffers before crossing the host↔device
//! boundary. The Ensemble compiler automates this; in the Rust reproduction
//! the [`Flatten`] trait plays that role: message types describe how they
//! decompose into typed segments plus integer dimensions, and the kernel
//! actor turns segments into buffers and dimensions into trailing scalar
//! kernel arguments (generated kernels index with `a[y * cols + x]`).
//!
//! Primitive values flatten to **one-element segments** — the paper's rule
//! for making in-kernel updates to scalars visible to the host (§6.1.2
//! notes "passing a pointer to the host variable is not an option").

use std::fmt;

/// Element type of one flattened segment.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum SegTy {
    /// 32-bit floats.
    F32,
    /// 32-bit signed integers.
    I32,
}

/// One contiguous, typed segment of flattened data.
#[derive(Debug, Clone, PartialEq)]
pub enum FlatSeg {
    /// 32-bit float data.
    F32(Vec<f32>),
    /// 32-bit integer data.
    I32(Vec<i32>),
}

impl FlatSeg {
    /// The segment's element type.
    pub fn ty(&self) -> SegTy {
        match self {
            FlatSeg::F32(_) => SegTy::F32,
            FlatSeg::I32(_) => SegTy::I32,
        }
    }

    /// Number of elements.
    pub fn len(&self) -> usize {
        match self {
            FlatSeg::F32(v) => v.len(),
            FlatSeg::I32(v) => v.len(),
        }
    }

    /// True when the segment holds no elements.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Size in bytes when stored in a device buffer.
    pub fn byte_len(&self) -> usize {
        self.len() * 4
    }

    /// Little-endian byte representation (device buffer layout).
    pub fn to_bytes(&self) -> Vec<u8> {
        match self {
            FlatSeg::F32(v) => oclsim::hostmem::f32_to_bytes(v),
            FlatSeg::I32(v) => oclsim::hostmem::i32_to_bytes(v),
        }
    }

    /// Rebuild a segment of type `ty` from device bytes.
    pub fn from_bytes(ty: SegTy, bytes: &[u8]) -> FlatSeg {
        match ty {
            SegTy::F32 => FlatSeg::F32(oclsim::hostmem::bytes_to_f32(bytes)),
            SegTy::I32 => FlatSeg::I32(oclsim::hostmem::bytes_to_i32(bytes)),
        }
    }
}

/// The flattened form of a message: typed segments plus the integer
/// dimensions needed to rebuild the original shape (and to index inside
/// generated kernels).
#[derive(Debug, Clone, PartialEq, Default)]
pub struct FlatData {
    /// Typed data segments, one device buffer each.
    pub segs: Vec<FlatSeg>,
    /// Shape metadata, passed to kernels as trailing `int` arguments.
    pub dims: Vec<i32>,
}

/// Error rebuilding a value from flattened data.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct FlattenError(pub String);

impl fmt::Display for FlattenError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "unflatten failed: {}", self.0)
    }
}

impl std::error::Error for FlattenError {}

/// Types that can cross the host↔device boundary.
///
/// `SEGS` and `DIMS` are the exact number of segments/dimensions the type
/// contributes; they let composite impls (tuples — the stand-in for
/// Ensemble struct flattening) split the flat form deterministically.
pub trait Flatten: Send + Sized + 'static {
    /// Number of segments this type flattens to.
    const SEGS: usize;
    /// Number of dimension entries this type contributes.
    const DIMS: usize;

    /// Decompose into flat segments + dims.
    fn flatten(self) -> FlatData;

    /// Rebuild from flat segments + dims.
    fn unflatten(flat: FlatData) -> Result<Self, FlattenError>;
}

fn take1<T>(mut v: Vec<T>, what: &str) -> Result<T, FlattenError> {
    if v.len() != 1 {
        return Err(FlattenError(format!(
            "expected exactly one {what}, got {}",
            v.len()
        )));
    }
    Ok(v.pop().expect("len checked"))
}

impl Flatten for Vec<f32> {
    const SEGS: usize = 1;
    const DIMS: usize = 1;

    fn flatten(self) -> FlatData {
        let n = self.len() as i32;
        FlatData {
            segs: vec![FlatSeg::F32(self)],
            dims: vec![n],
        }
    }

    fn unflatten(flat: FlatData) -> Result<Self, FlattenError> {
        let seg = take1(flat.segs, "segment")?;
        match seg {
            FlatSeg::F32(v) => Ok(v),
            other => Err(FlattenError(format!("expected f32 segment, got {other:?}"))),
        }
    }
}

impl Flatten for Vec<i32> {
    const SEGS: usize = 1;
    const DIMS: usize = 1;

    fn flatten(self) -> FlatData {
        let n = self.len() as i32;
        FlatData {
            segs: vec![FlatSeg::I32(self)],
            dims: vec![n],
        }
    }

    fn unflatten(flat: FlatData) -> Result<Self, FlattenError> {
        let seg = take1(flat.segs, "segment")?;
        match seg {
            FlatSeg::I32(v) => Ok(v),
            other => Err(FlattenError(format!("expected i32 segment, got {other:?}"))),
        }
    }
}

impl Flatten for f32 {
    const SEGS: usize = 1;
    const DIMS: usize = 0;

    // §6.1.2: primitives cross as one-element arrays so in-kernel updates
    // reach the host.
    fn flatten(self) -> FlatData {
        FlatData {
            segs: vec![FlatSeg::F32(vec![self])],
            dims: vec![],
        }
    }

    fn unflatten(flat: FlatData) -> Result<Self, FlattenError> {
        let seg = take1(flat.segs, "segment")?;
        match seg {
            FlatSeg::F32(v) if v.len() == 1 => Ok(v[0]),
            other => Err(FlattenError(format!(
                "expected one-element f32 segment, got {other:?}"
            ))),
        }
    }
}

impl Flatten for i32 {
    const SEGS: usize = 1;
    const DIMS: usize = 0;

    fn flatten(self) -> FlatData {
        FlatData {
            segs: vec![FlatSeg::I32(vec![self])],
            dims: vec![],
        }
    }

    fn unflatten(flat: FlatData) -> Result<Self, FlattenError> {
        let seg = take1(flat.segs, "segment")?;
        match seg {
            FlatSeg::I32(v) if v.len() == 1 => Ok(v[0]),
            other => Err(FlattenError(format!(
                "expected one-element i32 segment, got {other:?}"
            ))),
        }
    }
}

/// A dense, row-major two-dimensional array — `real [][]` in Ensemble.
#[derive(Debug, Clone, PartialEq)]
pub struct Array2 {
    rows: usize,
    cols: usize,
    data: Vec<f32>,
}

impl Array2 {
    /// Create from row-major data; `data.len()` must equal `rows * cols`.
    pub fn from_vec(rows: usize, cols: usize, data: Vec<f32>) -> Array2 {
        assert_eq!(data.len(), rows * cols, "row-major data length mismatch");
        Array2 { rows, cols, data }
    }

    /// Zero-filled array.
    pub fn zeros(rows: usize, cols: usize) -> Array2 {
        Array2 {
            rows,
            cols,
            data: vec![0.0; rows * cols],
        }
    }

    /// Number of rows.
    pub fn rows(&self) -> usize {
        self.rows
    }

    /// Number of columns.
    pub fn cols(&self) -> usize {
        self.cols
    }

    /// Row-major backing slice.
    pub fn as_slice(&self) -> &[f32] {
        &self.data
    }

    /// Mutable row-major backing slice.
    pub fn as_mut_slice(&mut self) -> &mut [f32] {
        &mut self.data
    }

    /// Consume into the row-major backing vector.
    pub fn into_vec(self) -> Vec<f32> {
        self.data
    }
}

impl std::ops::Index<(usize, usize)> for Array2 {
    type Output = f32;
    fn index(&self, (r, c): (usize, usize)) -> &f32 {
        &self.data[r * self.cols + c]
    }
}

impl std::ops::IndexMut<(usize, usize)> for Array2 {
    fn index_mut(&mut self, (r, c): (usize, usize)) -> &mut f32 {
        &mut self.data[r * self.cols + c]
    }
}

impl Flatten for Array2 {
    const SEGS: usize = 1;
    const DIMS: usize = 2;

    fn flatten(self) -> FlatData {
        FlatData {
            segs: vec![FlatSeg::F32(self.data)],
            dims: vec![self.rows as i32, self.cols as i32],
        }
    }

    fn unflatten(flat: FlatData) -> Result<Self, FlattenError> {
        if flat.dims.len() != 2 {
            return Err(FlattenError(format!(
                "Array2 needs 2 dims, got {}",
                flat.dims.len()
            )));
        }
        let (rows, cols) = (flat.dims[0] as usize, flat.dims[1] as usize);
        let seg = take1(flat.segs, "segment")?;
        match seg {
            FlatSeg::F32(v) if v.len() == rows * cols => Ok(Array2 {
                rows,
                cols,
                data: v,
            }),
            other => Err(FlattenError(format!(
                "Array2 {rows}x{cols} does not match segment {other:?}"
            ))),
        }
    }
}

/// A dense, row-major three-dimensional array — `real [][][]` in Ensemble.
#[derive(Debug, Clone, PartialEq)]
pub struct Array3 {
    d0: usize,
    d1: usize,
    d2: usize,
    data: Vec<f32>,
}

impl Array3 {
    /// Zero-filled array.
    pub fn zeros(d0: usize, d1: usize, d2: usize) -> Array3 {
        Array3 {
            d0,
            d1,
            d2,
            data: vec![0.0; d0 * d1 * d2],
        }
    }

    /// Shape as `(d0, d1, d2)`.
    pub fn shape(&self) -> (usize, usize, usize) {
        (self.d0, self.d1, self.d2)
    }

    /// Row-major backing slice.
    pub fn as_slice(&self) -> &[f32] {
        &self.data
    }

    /// Mutable row-major backing slice.
    pub fn as_mut_slice(&mut self) -> &mut [f32] {
        &mut self.data
    }
}

impl std::ops::Index<(usize, usize, usize)> for Array3 {
    type Output = f32;
    fn index(&self, (a, b, c): (usize, usize, usize)) -> &f32 {
        &self.data[(a * self.d1 + b) * self.d2 + c]
    }
}

impl std::ops::IndexMut<(usize, usize, usize)> for Array3 {
    fn index_mut(&mut self, (a, b, c): (usize, usize, usize)) -> &mut f32 {
        &mut self.data[(a * self.d1 + b) * self.d2 + c]
    }
}

impl Flatten for Array3 {
    const SEGS: usize = 1;
    const DIMS: usize = 3;

    fn flatten(self) -> FlatData {
        FlatData {
            segs: vec![FlatSeg::F32(self.data)],
            dims: vec![self.d0 as i32, self.d1 as i32, self.d2 as i32],
        }
    }

    fn unflatten(flat: FlatData) -> Result<Self, FlattenError> {
        if flat.dims.len() != 3 {
            return Err(FlattenError(format!(
                "Array3 needs 3 dims, got {}",
                flat.dims.len()
            )));
        }
        let (d0, d1, d2) = (
            flat.dims[0] as usize,
            flat.dims[1] as usize,
            flat.dims[2] as usize,
        );
        let seg = take1(flat.segs, "segment")?;
        match seg {
            FlatSeg::F32(v) if v.len() == d0 * d1 * d2 => Ok(Array3 {
                d0,
                d1,
                d2,
                data: v,
            }),
            other => Err(FlattenError(format!(
                "Array3 {d0}x{d1}x{d2} does not match segment {other:?}"
            ))),
        }
    }
}

// Tuple impls stand in for Ensemble's field-wise struct flattening
// ("struct values are flattened so that each field is sent separately").
macro_rules! flatten_tuple {
    ($($name:ident : $idx:tt),+) => {
        impl<$($name: Flatten),+> Flatten for ($($name,)+) {
            const SEGS: usize = 0 $(+ $name::SEGS)+;
            const DIMS: usize = 0 $(+ $name::DIMS)+;

            fn flatten(self) -> FlatData {
                let mut out = FlatData::default();
                $(
                    let part = self.$idx.flatten();
                    out.segs.extend(part.segs);
                    out.dims.extend(part.dims);
                )+
                out
            }

            fn unflatten(flat: FlatData) -> Result<Self, FlattenError> {
                let mut segs = flat.segs.into_iter();
                let mut dims = flat.dims.into_iter();
                Ok(($(
                    $name::unflatten(FlatData {
                        segs: segs.by_ref().take($name::SEGS).collect(),
                        dims: dims.by_ref().take($name::DIMS).collect(),
                    })?,
                )+))
            }
        }
    };
}

flatten_tuple!(A: 0);
flatten_tuple!(A: 0, B: 1);
flatten_tuple!(A: 0, B: 1, C: 2);
flatten_tuple!(A: 0, B: 1, C: 2, D: 3);

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn vec_f32_roundtrip() {
        let v = vec![1.0f32, 2.0, 3.0];
        let flat = v.clone().flatten();
        assert_eq!(flat.dims, vec![3]);
        assert_eq!(Vec::<f32>::unflatten(flat).unwrap(), v);
    }

    #[test]
    fn primitive_is_one_element_segment() {
        let flat = 4.5f32.flatten();
        assert_eq!(flat.segs[0].len(), 1);
        assert_eq!(flat.dims.len(), 0);
        assert_eq!(f32::unflatten(flat).unwrap(), 4.5);
    }

    #[test]
    fn array2_indexing_and_roundtrip() {
        let mut a = Array2::zeros(2, 3);
        a[(1, 2)] = 7.0;
        a[(0, 0)] = 1.0;
        let flat = a.clone().flatten();
        assert_eq!(flat.dims, vec![2, 3]);
        // Row-major: element (1,2) is at 1*3+2 = 5.
        assert_eq!(
            flat.segs[0],
            FlatSeg::F32(vec![1.0, 0.0, 0.0, 0.0, 0.0, 7.0])
        );
        assert_eq!(Array2::unflatten(flat).unwrap(), a);
    }

    #[test]
    fn array3_indexing_and_roundtrip() {
        let mut a = Array3::zeros(2, 2, 2);
        a[(1, 0, 1)] = 3.0;
        let flat = a.clone().flatten();
        assert_eq!(flat.dims, vec![2, 2, 2]);
        assert_eq!(Array3::unflatten(flat).unwrap()[(1, 0, 1)], 3.0);
    }

    #[test]
    fn struct_like_tuple_flattens_field_wise() {
        // Mirrors the paper's matmul struct: { a, b, result }.
        let a = Array2::zeros(2, 2);
        let b = Array2::zeros(2, 2);
        let r = Array2::zeros(2, 2);
        let flat = (a.clone(), b.clone(), r.clone()).flatten();
        assert_eq!(flat.segs.len(), 3);
        assert_eq!(flat.dims.len(), 6);
        let back = <(Array2, Array2, Array2)>::unflatten(flat).unwrap();
        assert_eq!(back, (a, b, r));
    }

    #[test]
    fn mixed_tuple_with_scalars() {
        let v = (vec![1.0f32, 2.0], 5i32, 0.5f32);
        let flat = v.clone().flatten();
        assert_eq!(flat.segs.len(), 3);
        assert_eq!(flat.dims, vec![2]); // only the Vec contributes a dim
        let back = <(Vec<f32>, i32, f32)>::unflatten(flat).unwrap();
        assert_eq!(back, v);
    }

    #[test]
    fn shape_mismatch_is_rejected() {
        let flat = FlatData {
            segs: vec![FlatSeg::F32(vec![0.0; 5])],
            dims: vec![2, 3],
        };
        assert!(Array2::unflatten(flat).is_err());
    }

    #[test]
    fn seg_bytes_roundtrip() {
        let s = FlatSeg::I32(vec![1, -2, 3]);
        let bytes = s.to_bytes();
        assert_eq!(bytes.len(), s.byte_len());
        assert_eq!(FlatSeg::from_bytes(SegTy::I32, &bytes), s);
    }

    #[test]
    fn wrong_seg_type_is_rejected() {
        let flat = FlatData {
            segs: vec![FlatSeg::I32(vec![1])],
            dims: vec![1],
        };
        assert!(Vec::<f32>::unflatten(flat).is_err());
    }
}
