//! Lazy evaluation: device-resident data (§6.2.3).
//!
//! A common OpenCL idiom is to leave data on the device for as long as
//! possible. Plain actor semantics forbid it: every send duplicates. The
//! paper's answer is `mov` channels — and this module is its runtime half:
//! a [`DeviceData`] value either holds a host value or *references buffers
//! that live on a device*. It is deliberately **not `Clone`**, so it can
//! only travel via [`ensemble_actors::Out::send_moved`] — using the type is
//! what "marking the channel mov" is in this reproduction.
//!
//! The two fates the paper describes are both here:
//!
//! 1. The value reaches another OpenCL actor **in the same context** — the
//!    buffers are used as kernel arguments directly; the data never moved.
//! 2. The host touches the value, or it reaches an actor in a **different
//!    context** — the runtime reads the data back (charging the transfer)
//!    and the device memory is released.

use crate::flatten::{FlatData, FlatSeg, Flatten, FlattenError, SegTy};
use crate::profile::ProfileSink;
use crate::recovery::{with_retry, RecoveryPolicy};
use oclsim::{Buffer, ClResult, CommandQueue, Context, Event};
use std::marker::PhantomData;

/// Read one typed segment back from `buf`: the queue converts device bytes
/// to elements in a single pass under the buffer lock, so no intermediate
/// byte vector is allocated or copied.
pub(crate) fn read_seg(queue: &CommandQueue, buf: &Buffer, ty: SegTy) -> ClResult<(FlatSeg, Event)> {
    match ty {
        SegTy::F32 => queue.read_f32(buf).map(|(v, ev)| (FlatSeg::F32(v), ev)),
        SegTy::I32 => queue.read_i32(buf).map(|(v, ev)| (FlatSeg::I32(v), ev)),
    }
}

/// Buffers holding a value's flattened segments on one device.
#[derive(Debug)]
pub struct ResidentBufs {
    /// One buffer per flattened segment, with its element type.
    pub bufs: Vec<(Buffer, SegTy)>,
    /// The value's shape metadata.
    pub dims: Vec<i32>,
    /// Context the buffers belong to.
    pub context: Context,
    /// The device's (single) queue — used for forced read-backs.
    pub queue: CommandQueue,
}

impl ResidentBufs {
    /// Total bytes held on the device.
    pub fn device_bytes(&self) -> usize {
        self.bufs.iter().map(|(b, _)| b.len()).sum()
    }

    /// Read every segment back to the host, charging the transfer to
    /// `profile`, and release the device memory accounting. Transient
    /// device faults are retried with the default [`RecoveryPolicy`]
    /// (read-backs stay available even on a lost device, so this is also
    /// the rescue path the recovery layer evacuates data through).
    pub fn read_back(self, profile: Option<&ProfileSink>) -> ClResult<FlatData> {
        let policy = RecoveryPolicy::default();
        let quiet = ProfileSink::new();
        let p = profile.unwrap_or(&quiet);
        let mut segs = Vec::with_capacity(self.bufs.len());
        let mut released = 0usize;
        for (buf, ty) in &self.bufs {
            // Typed reads convert device bytes to elements in one pass
            // under the buffer lock — no intermediate byte vector.
            let (seg, ev) = with_retry(
                &policy,
                &self.queue,
                self.queue.device().name(),
                p,
                "readback",
                || read_seg(&self.queue, buf, *ty),
            )?;
            if let Some(p) = profile {
                p.record_command(&ev, self.queue.device().name());
            }
            segs.push(seg);
            released += buf.len();
        }
        self.context.release_bytes(released);
        Ok(FlatData {
            segs,
            dims: self.dims,
        })
    }
}

/// A value that is either on the host or resident on a device.
///
/// Not `Clone` on purpose: Ensemble's `mov` analysis guarantees a moved
/// value has a single owner, and Rust's move semantics provide the same
/// guarantee for free.
#[derive(Debug)]
pub struct DeviceData<T: Flatten> {
    state: State,
    _marker: PhantomData<fn() -> T>,
}

#[derive(Debug)]
enum State {
    Host(FlatData),
    Device(ResidentBufs),
}

impl<T: Flatten> DeviceData<T> {
    /// Wrap a host value.
    pub fn host(value: T) -> DeviceData<T> {
        DeviceData {
            state: State::Host(value.flatten()),
            _marker: PhantomData,
        }
    }

    /// Wrap buffers already resident on a device (used by kernel actors
    /// after a dispatch whose output channel is `mov`).
    pub fn resident(bufs: ResidentBufs) -> DeviceData<T> {
        DeviceData {
            state: State::Device(bufs),
            _marker: PhantomData,
        }
    }

    /// True while the data lives on a device.
    pub fn is_resident(&self) -> bool {
        matches!(self.state, State::Device(_))
    }

    /// Context id of the owning device, when resident.
    pub fn context_id(&self) -> Option<u64> {
        match &self.state {
            State::Device(r) => Some(r.context.id()),
            State::Host(_) => None,
        }
    }

    /// Bytes currently held on a device (0 when on the host).
    pub fn device_bytes(&self) -> usize {
        match &self.state {
            State::Device(r) => r.device_bytes(),
            State::Host(_) => 0,
        }
    }

    /// Force the value to the host — "the data is accessed directly by host
    /// code" (§6.2.3). Reads back and releases device memory if resident.
    pub fn into_host(self) -> Result<T, FlattenError> {
        self.into_host_profiled(None)
    }

    /// Like [`DeviceData::into_host`], charging any forced read-back to
    /// `profile`.
    pub fn into_host_profiled(self, profile: Option<&ProfileSink>) -> Result<T, FlattenError> {
        match self.state {
            State::Host(flat) => T::unflatten(flat),
            State::Device(r) => {
                let flat = r
                    .read_back(profile)
                    .map_err(|e| FlattenError(format!("device read-back failed: {e}")))?;
                T::unflatten(flat)
            }
        }
    }

    /// Resolve for a dispatch targeting `target_ctx`:
    ///
    /// * resident in the **same** context → `Resident` (zero copies);
    /// * resident in a **different** context → read back (charged to
    ///   `profile`) and return `Host` (the paper: "the runtime reads the
    ///   data back from the device and returns the device memory");
    /// * already on the host → `Host`.
    pub fn for_dispatch(
        self,
        target_ctx: &Context,
        profile: Option<&ProfileSink>,
    ) -> ClResult<Dispatchable> {
        match self.state {
            State::Device(r) if r.context.id() == target_ctx.id() => {
                // Resident reuse skips the upload seam, so it carries its
                // own integrity seam: verify every buffer against its
                // recorded provenance before handing it to a kernel. On a
                // mismatch the queue restores the host shadow (the last
                // checkpoint) and charges the repair clock; the bounded
                // re-verify then passes against the restored bytes, so
                // the reuse proceeds with known-good data.
                let seg_bufs: Vec<Buffer> = r.bufs.iter().map(|(b, _)| b.clone()).collect();
                let quiet = ProfileSink::new();
                let p = profile.unwrap_or(&quiet);
                with_retry(
                    &RecoveryPolicy::default(),
                    &r.queue,
                    r.queue.device().name(),
                    p,
                    "resident_verify",
                    || r.queue.verify_integrity(&seg_bufs),
                )?;
                // The mov win made visible: record the moment a dispatch
                // reused resident buffers with zero transfer cost.
                if let Some(p) = profile {
                    let t = p.trace();
                    if t.is_enabled() {
                        t.record(
                            trace::TraceEvent::instant(
                                trace::SpanKind::ResidentReuse,
                                "resident_reuse",
                                r.queue.device().name(),
                                r.queue.now_ns(),
                            )
                            .with_arg("bytes", r.device_bytes()),
                        );
                    }
                }
                Ok(Dispatchable::Resident(r))
            }
            State::Device(r) => Ok(Dispatchable::Host(r.read_back(profile)?)),
            State::Host(flat) => Ok(Dispatchable::Host(flat)),
        }
    }
}

/// The result of resolving a [`DeviceData`] for a dispatch.
#[derive(Debug)]
pub enum Dispatchable {
    /// Buffers usable directly as kernel arguments.
    Resident(ResidentBufs),
    /// Host data that must be uploaded first.
    Host(FlatData),
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::env::{DeviceSel, OpenClEnvironment};
    use oclsim::MemFlags;

    fn upload(env: &OpenClEnvironment, flat: &FlatData) -> ResidentBufs {
        let mut bufs = Vec::new();
        for seg in &flat.segs {
            let b = env
                .context
                .create_buffer(MemFlags::ReadWrite, seg.byte_len())
                .unwrap();
            env.queue.enqueue_write_buffer(&b, &seg.to_bytes()).unwrap();
            bufs.push((b, seg.ty()));
        }
        ResidentBufs {
            bufs,
            dims: flat.dims.clone(),
            context: env.context.clone(),
            queue: env.queue.clone(),
        }
    }

    #[test]
    fn host_value_roundtrips() {
        let d = DeviceData::host(vec![1.0f32, 2.0]);
        assert!(!d.is_resident());
        assert_eq!(d.into_host().unwrap(), vec![1.0, 2.0]);
    }

    #[test]
    fn resident_value_reads_back_on_host_access() {
        let env = OpenClEnvironment::resolve(DeviceSel::gpu()).unwrap();
        let flat = vec![5.0f32, 6.0, 7.0].flatten();
        let before = env.context.allocated_bytes();
        let d: DeviceData<Vec<f32>> = DeviceData::resident(upload(&env, &flat));
        assert!(d.is_resident());
        assert_eq!(d.device_bytes(), 12);
        let sink = ProfileSink::new();
        let v = d.into_host_profiled(Some(&sink)).unwrap();
        assert_eq!(v, vec![5.0, 6.0, 7.0]);
        // Read-back was charged and memory accounting returned to baseline.
        assert!(sink.snapshot().from_device_ns > 0.0);
        assert_eq!(env.context.allocated_bytes(), before);
    }

    #[test]
    fn same_context_dispatch_keeps_data_on_device() {
        let env = OpenClEnvironment::resolve(DeviceSel::gpu()).unwrap();
        let flat = vec![1.0f32; 8].flatten();
        let d: DeviceData<Vec<f32>> = DeviceData::resident(upload(&env, &flat));
        let sink = ProfileSink::new();
        match d.for_dispatch(&env.context, Some(&sink)).unwrap() {
            Dispatchable::Resident(r) => {
                assert_eq!(r.bufs.len(), 1);
                r.read_back(None).unwrap();
            }
            Dispatchable::Host(_) => panic!("expected resident reuse"),
        }
        // No transfer was charged for the same-context hop.
        assert_eq!(sink.snapshot().from_device_ns, 0.0);
    }

    #[test]
    fn cross_context_dispatch_forces_read_back() {
        let gpu = OpenClEnvironment::resolve(DeviceSel::gpu()).unwrap();
        let cpu = OpenClEnvironment::resolve(DeviceSel::cpu()).unwrap();
        let flat = vec![2.0f32; 4].flatten();
        let d: DeviceData<Vec<f32>> = DeviceData::resident(upload(&gpu, &flat));
        let sink = ProfileSink::new();
        match d.for_dispatch(&cpu.context, Some(&sink)).unwrap() {
            Dispatchable::Host(f) => assert_eq!(f.segs[0].len(), 4),
            Dispatchable::Resident(_) => panic!("cross-context must read back"),
        }
        assert!(sink.snapshot().from_device_ns > 0.0);
    }

    #[test]
    fn device_data_moves_through_mov_channels() {
        // DeviceData is !Clone, so only send_moved accepts it — the type
        // system enforcing "mov".
        let (o, i) = ensemble_actors::buffered_channel::<DeviceData<Vec<f32>>>(1);
        o.send_moved(DeviceData::host(vec![1.0])).unwrap();
        assert_eq!(i.receive().unwrap().into_host().unwrap(), vec![1.0]);
    }
}
