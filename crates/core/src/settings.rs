//! The `opencl struct` settings protocol (§6.1.1, Listing 3).
//!
//! A kernel actor's single channel conveys a settings struct containing the
//! local and global worksizes plus dynamically-created in/out channels for
//! the data. The host builds the struct, sends it, then sends the data on
//! the input channel and waits on the output channel.

use ensemble_actors::{In, Out};
use oclsim::{ClError, ClResult, NdRange};

/// The settings struct: worksize/groupsize arrays plus the data channels,
/// exactly the shape the `opencl struct` keyword enforces in Ensemble.
///
/// Contains an `In` endpoint (not `Clone`), so settings travel via
/// [`ensemble_actors::Out::send_moved`].
#[derive(Debug)]
pub struct Settings<TIn, TOut> {
    /// Global work size per dimension (`integer [] worksize`).
    pub worksize: Vec<usize>,
    /// Local work size per dimension (`integer [] groupsize`).
    pub groupsize: Vec<usize>,
    /// Channel the kernel actor receives its data on (`in data_t input`).
    pub input: In<TIn>,
    /// Channel the kernel actor sends results on (`out ... output`).
    pub output: Out<TOut>,
    /// Extra scalar kernel arguments appended after the shape dims —
    /// per-dispatch values such as the LUD step index.
    pub extra_args: Vec<i32>,
    /// Extra `float` kernel arguments appended after `extra_args` (e.g. the
    /// document-ranking threshold).
    pub extra_f32: Vec<f32>,
}

/// Convert worksize/groupsize arrays into an [`NdRange`] (shared by
/// [`Settings::nd_range`] and the kernel actors).
pub fn nd_from(worksize: &[usize], groupsize: &[usize]) -> ClResult<NdRange> {
    if worksize.is_empty() || worksize.len() > 3 || worksize.len() != groupsize.len() {
        return Err(ClError::InvalidWorkGroupSize(format!(
            "worksize {worksize:?} / groupsize {groupsize:?} must have matching length 1-3",
        )));
    }
    let mut global = [1usize; 3];
    let mut local = [1usize; 3];
    for (d, (&g, &l)) in worksize.iter().zip(groupsize).enumerate() {
        global[d] = g;
        local[d] = l;
    }
    Ok(NdRange {
        dims: worksize.len() as u8,
        global,
        local,
    })
}

impl<TIn, TOut> Settings<TIn, TOut> {
    /// Build settings with empty `extra_args`.
    pub fn new(
        worksize: Vec<usize>,
        groupsize: Vec<usize>,
        input: In<TIn>,
        output: Out<TOut>,
    ) -> Settings<TIn, TOut> {
        Settings {
            worksize,
            groupsize,
            input,
            output,
            extra_args: Vec::new(),
            extra_f32: Vec::new(),
        }
    }

    /// Convert the worksize/groupsize arrays into an [`NdRange`].
    pub fn nd_range(&self) -> ClResult<NdRange> {
        nd_from(&self.worksize, &self.groupsize)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use ensemble_actors::{In, Out};

    #[test]
    fn nd_range_from_arrays() {
        let s: Settings<(), ()> =
            Settings::new(vec![1024, 1024], vec![16, 16], In::new(), Out::new());
        let nd = s.nd_range().unwrap();
        assert_eq!(nd.dims, 2);
        assert_eq!(nd.global, [1024, 1024, 1]);
        assert_eq!(nd.local, [16, 16, 1]);
    }

    #[test]
    fn mismatched_lengths_rejected() {
        let s: Settings<(), ()> = Settings::new(vec![1024], vec![16, 16], In::new(), Out::new());
        assert!(s.nd_range().is_err());
    }

    #[test]
    fn empty_worksize_rejected() {
        let s: Settings<(), ()> = Settings::new(vec![], vec![], In::new(), Out::new());
        assert!(s.nd_range().is_err());
    }

    #[test]
    fn settings_travel_through_channels() {
        let (req_out, req_in) = ensemble_actors::buffered_channel::<Settings<i32, i32>>(1);
        let s = Settings::new(vec![8], vec![4], In::new(), Out::new());
        req_out.send_moved(s).unwrap();
        let got = req_in.receive().unwrap();
        assert_eq!(got.worksize, vec![8]);
    }
}
