//! §6.1.2's closing remark, made measurable: "Primitive values are sent as
//! 1D-arrays of one element … A potential optimisation here is to wrap all
//! passed primitive variables in a single array."
//!
//! Each one-element segment becomes its own buffer and its own transfer,
//! paying the fixed per-transfer latency; packing the scalars into one
//! array pays it once. The deterministic cost model lets the test assert
//! the exact ratio.

use ensemble_actors::{buffered_channel, In, Out, Stage};
use ensemble_ocl::{
    device_matrix, DeviceSel, Flatten, KernelActor, KernelSpec, ProfileSink, RecoveryPolicy,
    Settings,
};

/// Eight scalars the paper's rule sends as eight one-element arrays.
type Unpacked = ((f32, f32, f32, f32), (f32, f32, f32, f32));

const SUM8_UNPACKED: &str = "__kernel void sum8(
    __global float* a, __global float* b, __global float* c, __global float* d,
    __global float* e, __global float* f, __global float* g, __global float* h) {
    a[0] = a[0] + b[0] + c[0] + d[0] + e[0] + f[0] + g[0] + h[0];
}";

const SUM8_PACKED: &str = "__kernel void sum8(__global float* s, const int n) {
    float total = 0.0f;
    for (int i = 0; i < n; i++) { total = total + s[i]; }
    s[0] = total;
}";

fn run_unpacked(profile: ProfileSink) -> f32 {
    let spec = KernelSpec {
        source: SUM8_UNPACKED.to_string(),
        kernel_name: "sum8".to_string(),
        device: DeviceSel::gpu(),
        out_segs: vec![0],
        out_dims: vec![],
        profile,
        recovery: RecoveryPolicy::default(),
    };
    let (req_out, req_in) = buffered_channel::<Settings<Unpacked, f32>>(1);
    let mut stage = Stage::new("home");
    stage.spawn("sum", KernelActor::<Unpacked, f32>::new(spec, req_in));
    let (result_out, result_in) = buffered_channel(1);
    stage.spawn_once("drive", move |_| {
        let i = In::with_buffer(1);
        let o = Out::new();
        o.connect(&i);
        req_out
            .send_moved(Settings::new(vec![1], vec![1], i, result_out))
            .unwrap();
        o.send(&((1.0, 2.0, 3.0, 4.0), (5.0, 6.0, 7.0, 8.0)))
            .unwrap();
    });
    let r = result_in.receive().unwrap();
    stage.join();
    r
}

fn run_packed(profile: ProfileSink) -> f32 {
    let spec = KernelSpec {
        source: SUM8_PACKED.to_string(),
        kernel_name: "sum8".to_string(),
        device: DeviceSel::gpu(),
        out_segs: vec![0],
        out_dims: vec![0],
        profile,
        recovery: RecoveryPolicy::default(),
    };
    let (req_out, req_in) = buffered_channel::<Settings<Vec<f32>, Vec<f32>>>(1);
    let mut stage = Stage::new("home");
    stage.spawn("sum", KernelActor::<Vec<f32>, Vec<f32>>::new(spec, req_in));
    let (result_out, result_in) = buffered_channel(1);
    stage.spawn_once("drive", move |_| {
        let i = In::with_buffer(1);
        let o = Out::new();
        o.connect(&i);
        req_out
            .send_moved(Settings::new(vec![1], vec![1], i, result_out))
            .unwrap();
        o.send(&vec![1.0f32, 2.0, 3.0, 4.0, 5.0, 6.0, 7.0, 8.0])
            .unwrap();
    });
    let r = result_in.receive().unwrap();
    stage.join();
    r[0]
}

#[test]
fn eight_scalars_flatten_to_eight_segments() {
    let flat = (
        (1.0f32, 2.0f32, 3.0f32, 4.0f32),
        (5.0f32, 6.0f32, 7.0f32, 8.0f32),
    )
        .flatten();
    assert_eq!(flat.segs.len(), 8);
    assert!(flat.segs.iter().all(|s| s.len() == 1));
}

#[test]
fn packing_scalars_saves_seven_transfer_latencies() {
    let p_unpacked = ProfileSink::new();
    assert_eq!(run_unpacked(p_unpacked.clone()), 36.0);
    let p_packed = ProfileSink::new();
    assert_eq!(run_packed(p_packed.clone()), 36.0);

    let unpacked = p_unpacked.snapshot();
    let packed = p_packed.snapshot();
    let cost = device_matrix()
        .select(DeviceSel::gpu())
        .unwrap()
        .device
        .cost_model()
        .clone();
    // Unpacked: 8 transfers of 4 bytes. Packed: 1 transfer of 32 bytes.
    let expected_unpacked = 8.0 * cost.transfer_ns(4);
    let expected_packed = cost.transfer_ns(32);
    assert!((unpacked.to_device_ns - expected_unpacked).abs() < 1.0);
    assert!((packed.to_device_ns - expected_packed).abs() < 1.0);
    assert!(
        unpacked.to_device_ns > 7.0 * packed.to_device_ns,
        "the optimisation the paper suggests is worth ~{:.1}x here",
        unpacked.to_device_ns / packed.to_device_ns
    );
}
