//! One-for-one supervision of a checkpointed kernel actor: kills landing
//! mid-pipeline are absorbed by restart + redelivery, and the pipeline's
//! output is byte-identical to a fault-free run.

use ensemble_actors::{
    buffered_channel, ChildSpec, In, Out, RestartBudget, Strategy, Supervisor,
};
use ensemble_ocl::{
    device_matrix, Array2, Checkpoint, DeviceSel, KernelActor, KernelSpec, ProfileSink,
    RecoveryPolicy, Settings,
};
use oclsim::fault::{FaultInjector, FaultOp, FaultPlan, InjectedFault, KillMode};
use std::sync::Arc;

/// The injector attaches to the process-global GPU matrix entry, so runs
/// in this file serialise.
static LOCK: std::sync::Mutex<()> = std::sync::Mutex::new(());

const MM: &str = r#"
__kernel void multiply(__global float* a, __global float* b,
                       __global float* result,
                       const int ra, const int ca,
                       const int rb, const int cb,
                       const int rr, const int cr) {
    int x = get_global_id(0);
    int y = get_global_id(1);
    int dim = get_global_size(0);
    float c = 0.0f;
    for (int i = 0; i < dim; i++) {
        c = c + a[y * ca + i] * b[i * cb + x];
    }
    result[y * cr + x] = c;
}"#;

type MmIn = (Array2, Array2, Array2);

const N: usize = 8;
const REQUESTS: usize = 3;

/// Drive a three-request matmul pipeline through one supervised,
/// checkpointed kernel actor. Returns each result's raw f32 bits and the
/// restarts the supervisor granted.
fn run_pipeline(injector: &FaultInjector) -> (Vec<Vec<u32>>, u32) {
    let entry = device_matrix().select(DeviceSel::gpu()).expect("gpu entry");
    entry.queue.attach_faults(injector.clone());
    entry.context.attach_faults(injector.clone());

    let profile = ProfileSink::new();
    let spec = KernelSpec {
        source: MM.to_string(),
        kernel_name: "multiply".to_string(),
        device: DeviceSel::gpu(),
        out_segs: vec![2],
        out_dims: vec![4, 5],
        profile: profile.clone(),
        recovery: RecoveryPolicy::default(),
    };
    let (req_out, req_in) = buffered_channel::<Settings<MmIn, Array2>>(REQUESTS);
    let req_in = Arc::new(req_in);
    let ckpt: Checkpoint<MmIn, Array2> = Checkpoint::new();
    let ckpt_probe = ckpt.clone();

    let mut sup = Supervisor::new("mm", Strategy::OneForOne, RestartBudget::default());
    sup.supervise(ChildSpec::new("Multiply", move || {
        KernelActor::<MmIn, Array2>::shared(spec.clone(), Arc::clone(&req_in))
            .with_checkpoint(ckpt.clone())
    }));

    let driver = std::thread::spawn(move || -> Vec<Array2> {
        let mut results = Vec::with_capacity(REQUESTS);
        for k in 0..REQUESTS {
            let i = In::with_buffer(1);
            let o = Out::new();
            o.connect(&i);
            let (res_out, res_in) = buffered_channel::<Array2>(1);
            req_out
                .send_moved(Settings::new(vec![N, N], vec![2, 2], i, res_out))
                .unwrap();
            let a = Array2::from_vec(
                N,
                N,
                (0..N * N).map(|v| ((v + k) % 7) as f32).collect(),
            );
            let b = Array2::from_vec(
                N,
                N,
                (0..N * N).map(|v| ((v * 3 + k) % 5) as f32).collect(),
            );
            o.send(&(a, b, Array2::zeros(N, N))).unwrap();
            results.push(res_in.receive().unwrap());
        }
        results
    });

    let report = sup.run().expect("supervised pipeline failed");
    let results = driver.join().expect("driver panicked");

    entry.queue.attach_faults(FaultInjector::disabled());
    entry.context.attach_faults(FaultInjector::disabled());

    // After a clean run every accepted request was acknowledged.
    assert_eq!(ckpt_probe.acked(), Some(REQUESTS as u64 - 1));
    assert!(!ckpt_probe.has_in_flight());

    let bits = results
        .iter()
        .map(|r| r.as_slice().iter().map(|x| x.to_bits()).collect())
        .collect();
    (bits, report.total_restarts())
}

#[test]
fn mid_pipeline_kills_restart_and_stay_byte_identical() {
    let _serial = LOCK.lock().unwrap_or_else(|e| e.into_inner());
    oclsim::silence_kill_panics();

    let (reference, ref_restarts) = run_pipeline(&FaultInjector::disabled());
    assert_eq!(ref_restarts, 0);

    // Two kills on the first request, one of each flavour: its dispatch
    // dies by panic; the redelivery's second re-upload (uploads 3..=5)
    // then dies by abrupt error exit. The third incarnation completes it.
    let plan = FaultPlan::new()
        .fail(FaultOp::Enqueue, 0, InjectedFault::Kill(KillMode::Panic))
        .fail(FaultOp::Upload, 4, InjectedFault::Kill(KillMode::Exit));
    let injector = FaultInjector::new(plan);
    let (killed, restarts) = run_pipeline(&injector);

    assert_eq!(injector.kill_count(), 2);
    assert_eq!(restarts, 2, "every kill maps to exactly one restart");
    assert_eq!(killed, reference, "output diverged from fault-free run");
}
