//! Deterministic workload generators.
//!
//! Every experiment must be exactly repeatable, so all input data derives
//! from seeded RNGs; the seed is part of the experiment definition.

use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

/// `n` floats in `[0, 1)`, deterministic for a given `seed`.
pub fn deterministic_f32(n: usize, seed: u64) -> Vec<f32> {
    let mut rng = StdRng::seed_from_u64(seed);
    (0..n).map(|_| rng.random::<f32>()).collect()
}

/// A diagonally dominant `n×n` matrix (row-major) — keeps LU decomposition
/// numerically stable without pivoting, as the paper's LUD kernels assume.
pub fn diagonally_dominant(n: usize, seed: u64) -> Vec<f32> {
    let mut rng = StdRng::seed_from_u64(seed);
    let mut m = vec![0.0f32; n * n];
    for (i, row) in m.chunks_exact_mut(n).enumerate() {
        let mut sum = 0.0f32;
        for (j, v) in row.iter_mut().enumerate() {
            if i != j {
                *v = rng.random::<f32>() * 0.5;
                sum += v.abs();
            }
        }
        row[i] = sum + 1.0 + rng.random::<f32>();
    }
    m
}

/// Zipf-like synthetic term-frequency vectors for the document-ranking
/// substitution: `docs × terms`, row-major. Frequencies fall off as 1/rank
/// with per-document noise, which is the shape real term distributions
/// have; a deterministic fraction of documents gets the template's top
/// terms boosted so the ranking kernel has true positives to find.
pub fn document_matrix(docs: usize, terms: usize, seed: u64) -> Vec<f32> {
    let mut rng = StdRng::seed_from_u64(seed);
    let mut m = vec![0.0f32; docs * terms];
    for d in 0..docs {
        let relevant = d % 5 == 0; // every 5th document matches the template
        for t in 0..terms {
            let zipf = 1.0 / (t as f32 + 1.0);
            let noise: f32 = rng.random::<f32>();
            let boost = if relevant && t < terms / 8 { 3.0 } else { 1.0 };
            m[d * terms + t] = zipf * noise * boost;
        }
    }
    m
}

/// The ranking template: weight concentrated on the leading terms.
pub fn document_template(terms: usize) -> Vec<f32> {
    (0..terms)
        .map(|t| if t < terms / 8 { 1.0 } else { 0.05 })
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn generators_are_deterministic() {
        assert_eq!(deterministic_f32(100, 7), deterministic_f32(100, 7));
        assert_ne!(deterministic_f32(100, 7), deterministic_f32(100, 8));
        assert_eq!(diagonally_dominant(16, 1), diagonally_dominant(16, 1));
        assert_eq!(document_matrix(10, 32, 3), document_matrix(10, 32, 3));
    }

    #[test]
    fn diagonal_dominance_holds() {
        let n = 32;
        let m = diagonally_dominant(n, 42);
        for i in 0..n {
            let off: f32 = (0..n).filter(|&j| j != i).map(|j| m[i * n + j].abs()).sum();
            assert!(m[i * n + i] > off, "row {i} not dominant");
        }
    }

    #[test]
    fn document_matrix_has_relevant_docs() {
        let docs = 20;
        let terms = 64;
        let m = document_matrix(docs, terms, 9);
        let tpl = document_template(terms);
        let score = |d: usize| -> f32 { (0..terms).map(|t| m[d * terms + t] * tpl[t]).sum() };
        // Boosted documents outrank their unboosted neighbours.
        assert!(score(0) > score(1));
        assert!(score(5) > score(6));
    }
}
