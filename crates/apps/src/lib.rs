//! # ensemble-apps — the five evaluation applications
//!
//! Each application from §7.1 of the paper, in the paper's three
//! implementations plus a sequential reference:
//!
//! | module | paper workload | kernels | notable mechanism |
//! |---|---|---|---|
//! | [`matmul`] | 1024² multiply | 1 | the Listing 3 settings protocol |
//! | [`mandelbrot`] | 1000-iteration set | 1 | 2-D layout vs ACC's 1-D (Fig 3b) |
//! | [`lud`] | 2048² decomposition | 3 in series | pipeline + `mov` (Fig 3c/4) |
//! | [`reduction`] | min of 33 554 432 | 1 (two rounds) | barriers + local memory |
//! | [`docrank`] | document ranking | 1 × many rounds | float4 vs scalar, residency (Fig 3e) |
//!
//! Every module exposes `generate`, `reference`, `run_ensemble`,
//! `run_copencl`, `run_openacc` (docrank adds `run_openmp_cpu` and
//! `lud` adds the `run_ensemble_nomov` ablation), and the tests in each
//! module assert both functional equivalence against the reference and
//! the profile *shapes* the paper's figures report.
//!
//! Benchmark sizes are reduced from the paper's (the simulator interprets
//! kernels); the `figures` harness in the `bench` crate accepts
//! `--paper-scale` for the original sizes. Figures are normalised, so the
//! shapes are size-stable.

#![warn(missing_docs)]

pub mod docrank;
pub mod generate;
pub mod lud;
pub mod mandelbrot;
pub mod matmul;
pub mod reduction;
