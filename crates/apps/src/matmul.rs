//! Matrix multiplication (paper: two 1024² matrices, one kernel).
//!
//! Three implementations, exactly the paper's comparison set:
//!
//! * [`run_ensemble`] — the Listing 3 choreography: a `Dispatch` actor
//!   sends a settings struct, then the data, to a `Multiply` kernel actor.
//! * [`run_copencl`] — hand-written verbose host code against the raw
//!   `oclsim` API (the C-OpenCL baseline).
//! * [`run_openacc`] — the annotated sequential source ([`ACC_SRC`])
//!   through the pragma engine.

use crate::generate::deterministic_f32;
use baselines::acc::{AccError, AccRunner, AccTarget};
use baselines::host_eval::{array_f32, HArg, HVal};
use ensemble_actors::{buffered_channel, In, Out, Stage};
use ensemble_ocl::{
    Array2, DeviceSel, KernelActor, KernelSpec, ProfileSink, RecoveryPolicy, Settings,
};
use oclsim::{
    CommandQueue, Context, DeviceType, MemFlags, NdRange, Platform, ProfileSink as Sink, Program,
};
use std::rc::Rc;

/// The kernel, shared verbatim by the Ensemble and C-OpenCL paths (both
/// compile the same OpenCL C at runtime, as in the paper).
pub const KERNEL_SRC: &str = r#"
__kernel void multiply(__global float* a, __global float* b,
                       __global float* result,
                       const int ra, const int ca,
                       const int rb, const int cb,
                       const int rr, const int cr) {
    int x = get_global_id(0);
    int y = get_global_id(1);
    int dim = get_global_size(0);
    float c = 0.0f;
    for (int i = 0; i < dim; i++) {
        c = c + a[y * ca + i] * b[i * cb + x];
    }
    result[y * cr + x] = c;
}
"#;

/// The annotated sequential C version (also a Table 1 metrics source).
pub const ACC_SRC: &str = include_str!("assets/matmul/acc.c");

/// Deterministic input matrices.
pub fn generate(n: usize) -> (Array2, Array2) {
    let a = Array2::from_vec(n, n, deterministic_f32(n * n, 11));
    let b = Array2::from_vec(n, n, deterministic_f32(n * n, 23));
    (a, b)
}

/// Sequential reference multiply.
pub fn reference(a: &Array2, b: &Array2) -> Array2 {
    let n = a.rows();
    let mut c = Array2::zeros(n, n);
    for y in 0..n {
        for x in 0..n {
            let mut acc = 0.0f32;
            for k in 0..n {
                acc += a[(y, k)] * b[(k, x)];
            }
            c[(y, x)] = acc;
        }
    }
    c
}

/// Work-group edge used on every device (divides all benchmark sizes).
const GROUP: usize = 16;

type MmIn = (Array2, Array2, Array2);

/// Ensemble-OpenCL: the Listing 3 actor choreography.
pub fn run_ensemble(a: Array2, b: Array2, device: DeviceSel, profile: ProfileSink) -> Array2 {
    let n = a.rows();
    let spec = KernelSpec {
        source: KERNEL_SRC.to_string(),
        kernel_name: "multiply".to_string(),
        device,
        out_segs: vec![2],
        out_dims: vec![4, 5],
        profile,
        recovery: RecoveryPolicy::default(),
    };
    let (req_out, req_in) = buffered_channel::<Settings<MmIn, Array2>>(1);
    let mut stage = Stage::new("home");
    stage.spawn("Multiply", KernelActor::<MmIn, Array2>::new(spec, req_in));
    let (result_out, result_in) = buffered_channel::<Array2>(1);
    stage.spawn_once("Dispatch", move |_| {
        let i = In::with_buffer(1);
        let o = Out::new();
        o.connect(&i);
        let settings = Settings::new(vec![n, n], vec![GROUP.min(n), GROUP.min(n)], i, result_out);
        req_out.send_moved(settings).unwrap();
        let result = Array2::zeros(n, n);
        o.send_moved((a, b, result)).unwrap();
    });
    let result = result_in.receive().unwrap();
    stage.join();
    result
}

/// C-OpenCL: the verbose API sequence (query → context → queue → program →
/// kernel → buffers → write → dispatch → read → release), written out the
/// way a C host would be.
pub fn run_copencl(a: Array2, b: Array2, device_type: DeviceType, profile: Sink) -> Array2 {
    let n = a.rows();
    // Platform and device discovery.
    let platforms = Platform::all();
    let device = platforms
        .iter()
        .flat_map(|p| p.devices(Some(device_type)))
        .next()
        .expect("no such device");
    // Context and command queue.
    let context = Context::new(std::slice::from_ref(&device)).expect("context");
    let queue = CommandQueue::new(&context, &device).expect("queue");
    // Program and kernel, compiled at runtime.
    let program = Program::build(&context, KERNEL_SRC).expect("program build");
    let kernel = program.create_kernel("multiply").expect("kernel");
    // Device buffers.
    let bytes = n * n * 4;
    let buf_a = context
        .create_buffer(MemFlags::ReadOnly, bytes)
        .expect("buf a");
    let buf_b = context
        .create_buffer(MemFlags::ReadOnly, bytes)
        .expect("buf b");
    let buf_c = context
        .create_buffer(MemFlags::ReadWrite, bytes)
        .expect("buf c");
    // Host → device.
    let ev = queue.write_f32(&buf_a, a.as_slice()).expect("write a");
    profile.record_command(&ev, queue.device().name());
    let ev = queue.write_f32(&buf_b, b.as_slice()).expect("write b");
    profile.record_command(&ev, queue.device().name());
    // Arguments: buffers then the flattened dimensions.
    kernel.set_arg_buffer(0, &buf_a).expect("arg 0");
    kernel.set_arg_buffer(1, &buf_b).expect("arg 1");
    kernel.set_arg_buffer(2, &buf_c).expect("arg 2");
    for (i, d) in [n, n, n, n, n, n].iter().enumerate() {
        kernel.set_arg_i32(3 + i, *d as i32).expect("dim arg");
    }
    // Dispatch.
    let g = GROUP.min(n);
    let ev = queue
        .enqueue_nd_range(&kernel, &NdRange::d2([n, n], [g, g]))
        .expect("dispatch");
    profile.record_command(&ev, queue.device().name());
    // Device → host.
    let (result, ev) = queue.read_f32(&buf_c).expect("read c");
    profile.record_command(&ev, queue.device().name());
    // Release.
    context.release_bytes(3 * bytes);
    Array2::from_vec(n, n, result)
}

/// C-OpenACC: annotated sequential code through the pragma engine.
pub fn run_openacc(
    a: Array2,
    b: Array2,
    target: AccTarget,
    profile: Sink,
) -> Result<Array2, AccError> {
    let n = a.rows();
    let runner = AccRunner::new(ACC_SRC, target, profile)?;
    let ha = array_f32(a.into_vec());
    let hb = array_f32(b.into_vec());
    let hc = array_f32(vec![0.0; n * n]);
    runner.run(
        "matmul",
        &[
            HArg::Array(Rc::clone(&ha)),
            HArg::Array(Rc::clone(&hb)),
            HArg::Array(Rc::clone(&hc)),
            HArg::Scalar(HVal::I(n as i64)),
        ],
    )?;
    let data = match &*hc.borrow() {
        baselines::host_eval::HostArray::F32(v) => v.clone(),
        _ => unreachable!("declared f32"),
    };
    Ok(Array2::from_vec(n, n, data))
}

#[cfg(test)]
mod tests {
    use super::*;

    fn assert_close(a: &Array2, b: &Array2) {
        assert_eq!(a.rows(), b.rows());
        for (x, y) in a.as_slice().iter().zip(b.as_slice()) {
            assert!((x - y).abs() <= 1e-3 * x.abs().max(1.0), "{x} != {y}");
        }
    }

    #[test]
    fn ensemble_matches_reference() {
        let (a, b) = generate(32);
        let expected = reference(&a, &b);
        let got = run_ensemble(a, b, DeviceSel::gpu(), ProfileSink::new());
        assert_close(&got, &expected);
    }

    #[test]
    fn copencl_matches_reference_on_both_devices() {
        for ty in [DeviceType::Gpu, DeviceType::Cpu] {
            let (a, b) = generate(32);
            let expected = reference(&a, &b);
            let got = run_copencl(a, b, ty, Sink::new());
            assert_close(&got, &expected);
        }
    }

    #[test]
    fn openacc_matches_reference() {
        let (a, b) = generate(32);
        let expected = reference(&a, &b);
        let got = run_openacc(a, b, AccTarget::gpu(), Sink::new()).unwrap();
        assert_close(&got, &expected);
    }

    #[test]
    fn all_three_profiles_have_the_same_shape() {
        // Every approach moves 2 matrices up, 1 down, and runs 1 kernel
        // (ACC moves 3 up because the default `copy` clause is
        // conservative about `result` — exactly the kind of waste pragmas
        // hide).
        let (a, b) = generate(32);
        let p_ens = ProfileSink::new();
        run_ensemble(a.clone(), b.clone(), DeviceSel::gpu(), p_ens.clone());
        let p_c = Sink::new();
        run_copencl(a.clone(), b.clone(), DeviceType::Gpu, p_c.clone());
        let ens = p_ens.snapshot();
        let c = p_c.snapshot();
        assert_eq!(ens.dispatches, 1);
        assert_eq!(c.dispatches, 1);
        // Same kernel, same device, same ND-range → identical kernel time.
        assert!((ens.kernel_ns - c.kernel_ns).abs() < 1e-6);
        // Ensemble uploads 3 segments (a, b, result) vs C's 2 — the
        // struct-flattening protocol sends the result buffer too.
        assert!(ens.to_device_ns > c.to_device_ns);
    }
}
