//! Matrix reduction: minimum of a large array by parallel tree reduction
//! (paper: 33 554 432 elements, one kernel).
//!
//! Both explicit paths dispatch the same tree-reduction kernel twice —
//! once over the data, once over the per-group partial minima — which is
//! the "different kernel logic" the paper notes both Ensemble and C
//! require relative to the sequential loop. The OpenACC version annotates
//! the sequential loop with a `reduction(min:...)` clause and gets the
//! engine's naive two-stage scheme (Figure 3d's penalty).

use baselines::acc::{AccError, AccRunner, AccTarget};
use baselines::host_eval::{array_f32, HArg, HVal, HostArray};
use ensemble_actors::{buffered_channel, In, Out, Stage};
use ensemble_ocl::{DeviceSel, KernelActor, KernelSpec, ProfileSink, RecoveryPolicy, Settings};
use oclsim::{
    CommandQueue, Context, DeviceType, MemFlags, NdRange, Platform, ProfileSink as Sink, Program,
};
use std::rc::Rc;

/// Work-group size; the kernel's local scratch is sized to match.
pub const GROUP: usize = 256;

/// Tree-reduction kernel: each group folds its slice into one partial
/// minimum using local memory and barriers.
pub const KERNEL_SRC: &str = r#"
__kernel void reduce_min(__global float* data, __global float* partial,
                         const int n, const int npartial) {
    __local float scratch[256];
    int gid = get_global_id(0);
    int lid = get_local_id(0);
    if (gid < n) {
        scratch[lid] = data[gid];
    } else {
        scratch[lid] = 3.0e38f;
    }
    barrier(CLK_LOCAL_MEM_FENCE);
    for (int stride = get_local_size(0) / 2; stride > 0; stride = stride / 2) {
        if (lid < stride) {
            scratch[lid] = fmin(scratch[lid], scratch[lid + stride]);
        }
        barrier(CLK_LOCAL_MEM_FENCE);
    }
    if (lid == 0) {
        partial[get_group_id(0)] = scratch[0];
    }
}
"#;

/// Annotated sequential C with a `reduction(min:m)` clause.
pub const ACC_SRC: &str = include_str!("assets/reduction/acc.c");

/// Deterministic input with a known minimum planted at a fixed position.
pub fn generate(n: usize) -> Vec<f32> {
    let mut v = crate::generate::deterministic_f32(n, 97);
    for x in v.iter_mut() {
        *x += 0.5; // keep everything above the planted minimum
    }
    v[n / 3] = -123.5;
    v
}

/// Sequential reference minimum.
pub fn reference(data: &[f32]) -> f32 {
    data.iter().copied().fold(f32::INFINITY, f32::min)
}

fn rounds(n: usize) -> Vec<(usize, usize)> {
    // (input length, group count) per dispatch until one value remains.
    let mut out = Vec::new();
    let mut len = n;
    loop {
        let groups = len.div_ceil(GROUP);
        out.push((len, groups));
        if groups == 1 {
            break;
        }
        len = groups;
    }
    out
}

/// Ensemble-OpenCL: one kernel actor, driven once per reduction round
/// (the dynamic-channel protocol makes re-dispatching trivial).
pub fn run_ensemble(data: Vec<f32>, device: DeviceSel, profile: ProfileSink) -> f32 {
    type RIn = (Vec<f32>, Vec<f32>);
    let spec = KernelSpec {
        source: KERNEL_SRC.to_string(),
        kernel_name: "reduce_min".to_string(),
        device,
        out_segs: vec![1],
        out_dims: vec![1],
        profile,
        recovery: RecoveryPolicy::default(),
    };
    let (req_out, req_in) = buffered_channel::<Settings<RIn, Vec<f32>>>(4);
    let mut stage = Stage::new("home");
    stage.spawn("Reduce", KernelActor::<RIn, Vec<f32>>::new(spec, req_in));
    let (result_out, result_in) = buffered_channel::<f32>(1);
    stage.spawn_once("Dispatch", move |_| {
        let mut current = data;
        loop {
            let n = current.len();
            let groups = n.div_ceil(GROUP);
            let i = In::with_buffer(1);
            let o = Out::new();
            o.connect(&i);
            let (back_out, back_in) = buffered_channel::<Vec<f32>>(1);
            let settings = Settings::new(vec![groups * GROUP], vec![GROUP], i, back_out);
            req_out.send_moved(settings).unwrap();
            o.send_moved((current, vec![0.0f32; groups])).unwrap();
            current = back_in.receive().unwrap();
            if groups == 1 {
                result_out.send(&current[0]).unwrap();
                return;
            }
        }
    });
    let result = result_in.receive().unwrap();
    stage.join();
    result
}

/// C-OpenCL: verbose host, same two-round tree reduction. Buffers are
/// reused across rounds (an optimisation the host programmer writes by
/// hand here, and gets from `mov` channels in Ensemble).
pub fn run_copencl(data: Vec<f32>, device_type: DeviceType, profile: Sink) -> f32 {
    let platforms = Platform::all();
    let device = platforms
        .iter()
        .flat_map(|p| p.devices(Some(device_type)))
        .next()
        .expect("no such device");
    let context = Context::new(std::slice::from_ref(&device)).expect("context");
    let queue = CommandQueue::new(&context, &device).expect("queue");
    let program = Program::build(&context, KERNEL_SRC).expect("program build");
    let kernel = program.create_kernel("reduce_min").expect("kernel");

    let n = data.len();
    let buf_data = context
        .create_buffer(MemFlags::ReadWrite, n * 4)
        .expect("buf");
    let max_groups = n.div_ceil(GROUP);
    let buf_partial = context
        .create_buffer(MemFlags::ReadWrite, max_groups * 4)
        .expect("buf");
    let ev = queue.write_f32(&buf_data, &data).expect("write");
    profile.record_command(&ev, queue.device().name());

    let mut src = buf_data.clone();
    let mut dst = buf_partial.clone();
    for (len, groups) in rounds(n) {
        kernel.set_arg_buffer(0, &src).expect("arg");
        kernel.set_arg_buffer(1, &dst).expect("arg");
        kernel.set_arg_i32(2, len as i32).expect("arg");
        kernel.set_arg_i32(3, groups as i32).expect("arg");
        let ev = queue
            .enqueue_nd_range(&kernel, &NdRange::d1(groups * GROUP, GROUP))
            .expect("dispatch");
        profile.record_command(&ev, queue.device().name());
        std::mem::swap(&mut src, &mut dst);
    }
    // After the final swap, `src` holds the single result at index 0.
    let mut bytes = vec![0u8; src.len()];
    let ev = queue.enqueue_read_buffer(&src, &mut bytes).expect("read");
    profile.record_command(&ev, queue.device().name());
    let result = oclsim::hostmem::bytes_to_f32(&bytes)[0];
    context.release_bytes(n * 4 + max_groups * 4);
    result
}

/// C-OpenACC: annotated loop with a reduction clause.
pub fn run_openacc(data: Vec<f32>, target: AccTarget, profile: Sink) -> Result<f32, AccError> {
    let n = data.len();
    let runner = AccRunner::new(ACC_SRC, target, profile)?;
    let hdata = array_f32(data);
    let hout = array_f32(vec![0.0]);
    runner.run(
        "minimum",
        &[
            HArg::Array(Rc::clone(&hdata)),
            HArg::Array(Rc::clone(&hout)),
            HArg::Scalar(HVal::I(n as i64)),
        ],
    )?;
    let v = match &*hout.borrow() {
        HostArray::F32(v) => v[0],
        _ => unreachable!("declared f32"),
    };
    Ok(v)
}

#[cfg(test)]
mod tests {
    use super::*;

    const N: usize = 4096 + 123; // deliberately not a multiple of GROUP

    #[test]
    fn ensemble_matches_reference() {
        let data = generate(N);
        let expected = reference(&data);
        let got = run_ensemble(data, DeviceSel::gpu(), ProfileSink::new());
        assert_eq!(got, expected);
    }

    #[test]
    fn copencl_matches_reference() {
        let data = generate(N);
        let expected = reference(&data);
        for ty in [DeviceType::Gpu, DeviceType::Cpu] {
            assert_eq!(run_copencl(data.clone(), ty, Sink::new()), expected);
        }
    }

    #[test]
    fn openacc_matches_reference() {
        let data = generate(N);
        let expected = reference(&data);
        let got = run_openacc(data, AccTarget::gpu(), Sink::new()).unwrap();
        assert_eq!(got, expected);
    }

    #[test]
    fn round_plan_reaches_one_group() {
        assert_eq!(rounds(GROUP), vec![(GROUP, 1)]);
        assert_eq!(
            rounds(GROUP * GROUP),
            vec![(GROUP * GROUP, GROUP), (GROUP, 1)]
        );
        let r = rounds(33_554_432);
        assert_eq!(r.len(), 4); // 33.5M -> 131072 -> 512 -> 2 -> 1
        assert_eq!(r.last().unwrap().1, 1);
    }

    #[test]
    fn acc_reduction_is_slower_than_tree_reduction_on_gpu() {
        // Figure 3d: the pragma reduction pays a serial combine + extra
        // transfer; the explicit tree reduction does not.
        let data = generate(1 << 16);
        let p_ocl = Sink::new();
        run_copencl(data.clone(), DeviceType::Gpu, p_ocl.clone());
        let p_acc = Sink::new();
        run_openacc(data, AccTarget::gpu(), p_acc.clone()).unwrap();
        let ocl = p_ocl.snapshot();
        let acc = p_acc.snapshot();
        assert!(
            acc.opencl_ns() > ocl.opencl_ns(),
            "ACC {} not slower than explicit {}",
            acc.opencl_ns(),
            ocl.opencl_ns()
        );
    }
}
