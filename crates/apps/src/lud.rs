//! LU decomposition (paper: 2048² matrix, **three kernels in series**).
//!
//! The showcase for actor pipelines and movability (Figure 3c / Figure 4):
//! a controller actor plumbs three kernel actors — `diag` → `col` → `sub`
//! — into a ring and sends the matrix around it once per elimination step.
//! With `mov` channels ([`ensemble_ocl::ResidentKernelActor`]) the matrix
//! is uploaded once and downloaded once; without them every hop pays a
//! full round-trip (the paper's ≈3 min vs ≈5 s observation —
//! [`run_ensemble_nomov`] exists to regenerate that ablation).

use baselines::acc::{AccError, AccRunner, AccTarget};
use baselines::host_eval::{array_f32, HArg, HVal, HostArray};
use ensemble_actors::{buffered_channel, Stage};
use ensemble_ocl::{
    Array2, DeviceData, DeviceSel, KernelActor, KernelSpec, ProfileSink, RecoveryPolicy,
    ResidentKernelActor, Settings,
};
use oclsim::{
    CommandQueue, Context, DeviceType, MemFlags, NdRange, Platform, ProfileSink as Sink, Program,
};
use std::rc::Rc;

/// The three kernels, shared by the Ensemble and C-OpenCL paths.
///
/// Argument convention (matching the flattened `(Array2, Vec<f32>)` data):
/// `(m, piv, rows, cols, npiv, step)`.
pub const KERNEL_SRC: &str = r#"
__kernel void lud_diag(__global float* m, __global float* piv,
                       const int rows, const int cols, const int npiv,
                       const int step) {
    piv[0] = 1.0f / m[step * cols + step];
}

__kernel void lud_col(__global float* m, __global float* piv,
                      const int rows, const int cols, const int npiv,
                      const int step) {
    int i = get_global_id(0) + step + 1;
    if (i < rows) {
        m[i * cols + step] = m[i * cols + step] * piv[0];
    }
}

__kernel void lud_sub(__global float* m, __global float* piv,
                      const int rows, const int cols, const int npiv,
                      const int step) {
    int j = get_global_id(0) + step + 1;
    int i = get_global_id(1) + step + 1;
    if (i < rows && j < cols) {
        m[i * cols + j] = m[i * cols + j] - m[i * cols + step] * m[step * cols + j];
    }
}
"#;

/// Annotated sequential C: a `data` region around the step loop plus two
/// `independent`-annotated inner loops (the paper: plain annotation was
/// not enough; gang/worker tuning was required for parity).
pub const ACC_SRC: &str = include_str!("assets/lud/acc.c");

const GROUP: usize = 16;

/// Deterministic, diagonally dominant input (stable without pivoting).
pub fn generate(n: usize) -> Array2 {
    Array2::from_vec(n, n, crate::generate::diagonally_dominant(n, 31))
}

/// Sequential in-place Doolittle reference.
pub fn reference(mut m: Array2) -> Array2 {
    let n = m.rows();
    for step in 0..n {
        let piv = 1.0 / m[(step, step)];
        for i in step + 1..n {
            m[(i, step)] *= piv;
        }
        for i in step + 1..n {
            let l = m[(i, step)];
            for j in step + 1..n {
                m[(i, j)] -= l * m[(step, j)];
            }
        }
    }
    m
}

type LudData = (Array2, Vec<f32>);

fn round_up(v: usize, to: usize) -> usize {
    v.div_ceil(to).max(1) * to
}

/// A `[worksize, groupsize]` launch shape for one kernel.
type Shape = [Vec<usize>; 2];

/// Per-step launch shapes for the three kernels.
fn shapes(n: usize, step: usize) -> (Shape, Shape, Shape) {
    let rem = n - step - 1;
    let g1 = round_up(rem.max(1), GROUP);
    (
        [vec![1], vec![1]],
        [vec![g1], vec![GROUP]],
        [vec![g1, g1], vec![GROUP, GROUP]],
    )
}

/// Ensemble-OpenCL with `mov` channels: the Figure 4 ring.
pub fn run_ensemble(m: Array2, device: DeviceSel, profile: ProfileSink) -> Array2 {
    let n = m.rows();
    let mut stage = Stage::new("home");
    let mut req_outs = Vec::new();
    for kernel_name in ["lud_diag", "lud_col", "lud_sub"] {
        let spec = KernelSpec {
            source: KERNEL_SRC.to_string(),
            kernel_name: kernel_name.to_string(),
            device,
            out_segs: vec![],
            out_dims: vec![],
            profile: profile.clone(),
            recovery: RecoveryPolicy::default(),
        };
        let (req_out, req_in) =
            buffered_channel::<Settings<DeviceData<LudData>, DeviceData<LudData>>>(4);
        stage.spawn(
            kernel_name,
            ResidentKernelActor::<LudData>::new(spec, req_in),
        );
        req_outs.push(req_out);
    }
    let (result_out, result_in) = buffered_channel::<DeviceData<LudData>>(1);
    stage.spawn_once("Controller", move |_| {
        let mut data = DeviceData::host((m, vec![0.0f32]));
        for step in 0..n {
            // Plumb this step's ring: controller → diag → col → sub → controller.
            let (to_diag, diag_in) = buffered_channel::<DeviceData<LudData>>(1);
            let (diag_to_col, col_in) = buffered_channel::<DeviceData<LudData>>(1);
            let (col_to_sub, sub_in) = buffered_channel::<DeviceData<LudData>>(1);
            let (sub_to_ctrl, back_in) = buffered_channel::<DeviceData<LudData>>(1);
            let (s_diag, s_col, s_sub) = shapes(n, step);
            for (req, (chan_in, chan_out, ws)) in req_outs.iter().zip([
                (diag_in, diag_to_col, s_diag),
                (col_in, col_to_sub, s_col),
                (sub_in, sub_to_ctrl, s_sub),
            ]) {
                let mut settings = Settings::new(ws[0].clone(), ws[1].clone(), chan_in, chan_out);
                settings.extra_args = vec![step as i32];
                req.send_moved(settings).unwrap();
            }
            to_diag.send_moved(data).unwrap();
            data = back_in.receive().unwrap();
        }
        result_out.send_moved(data).unwrap();
    });
    let data = result_in.receive().unwrap();
    let (m, _piv) = data
        .into_host_profiled(Some(&profile))
        .expect("read back LUD result");
    stage.join();
    m
}

/// The movability ablation: identical topology but **copying** channels —
/// every hop reads the matrix back and re-uploads it (the paper's
/// "approximately 3 minutes" configuration).
pub fn run_ensemble_nomov(m: Array2, device: DeviceSel, profile: ProfileSink) -> Array2 {
    let n = m.rows();
    let mut stage = Stage::new("home");
    let mut req_outs = Vec::new();
    for kernel_name in ["lud_diag", "lud_col", "lud_sub"] {
        let spec = KernelSpec {
            source: KERNEL_SRC.to_string(),
            kernel_name: kernel_name.to_string(),
            device,
            // Copy everything back out after each dispatch.
            out_segs: vec![0, 1],
            out_dims: vec![0, 1, 2],
            profile: profile.clone(),
            recovery: RecoveryPolicy::default(),
        };
        let (req_out, req_in) = buffered_channel::<Settings<LudData, LudData>>(4);
        stage.spawn(
            kernel_name,
            KernelActor::<LudData, LudData>::new(spec, req_in),
        );
        req_outs.push(req_out);
    }
    let (result_out, result_in) = buffered_channel::<LudData>(1);
    stage.spawn_once("Controller", move |_| {
        let mut data = (m, vec![0.0f32]);
        for step in 0..n {
            let (to_diag, diag_in) = buffered_channel::<LudData>(1);
            let (diag_to_col, col_in) = buffered_channel::<LudData>(1);
            let (col_to_sub, sub_in) = buffered_channel::<LudData>(1);
            let (sub_to_ctrl, back_in) = buffered_channel::<LudData>(1);
            let (s_diag, s_col, s_sub) = shapes(n, step);
            for (req, (chan_in, chan_out, ws)) in req_outs.iter().zip([
                (diag_in, diag_to_col, s_diag),
                (col_in, col_to_sub, s_col),
                (sub_in, sub_to_ctrl, s_sub),
            ]) {
                let mut settings = Settings::new(ws[0].clone(), ws[1].clone(), chan_in, chan_out);
                settings.extra_args = vec![step as i32];
                req.send_moved(settings).unwrap();
            }
            to_diag.send_moved(data).unwrap();
            data = back_in.receive().unwrap();
        }
        result_out.send_moved(data).unwrap();
    });
    let (m, _piv) = result_in.receive().unwrap();
    stage.join();
    m
}

/// C-OpenCL: verbose host; the hand-written optimisation keeps the matrix
/// on the device across all three kernels and every step.
pub fn run_copencl(m: Array2, device_type: DeviceType, profile: Sink) -> Array2 {
    let n = m.rows();
    let platforms = Platform::all();
    let device = platforms
        .iter()
        .flat_map(|p| p.devices(Some(device_type)))
        .next()
        .expect("no such device");
    let context = Context::new(std::slice::from_ref(&device)).expect("context");
    let queue = CommandQueue::new(&context, &device).expect("queue");
    let program = Program::build(&context, KERNEL_SRC).expect("program build");
    let k_diag = program.create_kernel("lud_diag").expect("kernel");
    let k_col = program.create_kernel("lud_col").expect("kernel");
    let k_sub = program.create_kernel("lud_sub").expect("kernel");

    let bytes = n * n * 4;
    let buf_m = context
        .create_buffer(MemFlags::ReadWrite, bytes)
        .expect("buf");
    let buf_piv = context.create_buffer(MemFlags::ReadWrite, 4).expect("buf");
    let ev = queue.write_f32(&buf_m, m.as_slice()).expect("write");
    profile.record_command(&ev, queue.device().name());

    for step in 0..n {
        let (s_diag, s_col, s_sub) = shapes(n, step);
        for (kernel, ws) in [(&k_diag, s_diag), (&k_col, s_col), (&k_sub, s_sub)] {
            kernel.set_arg_buffer(0, &buf_m).expect("arg");
            kernel.set_arg_buffer(1, &buf_piv).expect("arg");
            kernel.set_arg_i32(2, n as i32).expect("arg");
            kernel.set_arg_i32(3, n as i32).expect("arg");
            kernel.set_arg_i32(4, 1).expect("arg");
            kernel.set_arg_i32(5, step as i32).expect("arg");
            let nd = match ws[0].len() {
                1 => NdRange::d1(ws[0][0], ws[1][0]),
                _ => NdRange::d2([ws[0][0], ws[0][1]], [ws[1][0], ws[1][1]]),
            };
            let ev = queue.enqueue_nd_range(kernel, &nd).expect("dispatch");
            profile.record_command(&ev, queue.device().name());
        }
    }
    let (result, ev) = queue.read_f32(&buf_m).expect("read");
    profile.record_command(&ev, queue.device().name());
    context.release_bytes(bytes + 4);
    Array2::from_vec(n, n, result)
}

/// C-OpenACC: data region + two `independent` loops per step.
pub fn run_openacc(m: Array2, target: AccTarget, profile: Sink) -> Result<Array2, AccError> {
    let n = m.rows();
    let runner = AccRunner::new(ACC_SRC, target, profile)?;
    let hm = array_f32(m.into_vec());
    runner.run(
        "lud",
        &[HArg::Array(Rc::clone(&hm)), HArg::Scalar(HVal::I(n as i64))],
    )?;
    let data = match &*hm.borrow() {
        HostArray::F32(v) => v.clone(),
        _ => unreachable!("declared f32"),
    };
    Ok(Array2::from_vec(n, n, data))
}

#[cfg(test)]
mod tests {
    use super::*;

    const N: usize = 48;

    fn assert_close(a: &Array2, b: &Array2) {
        for (x, y) in a.as_slice().iter().zip(b.as_slice()) {
            assert!((x - y).abs() <= 1e-2 * x.abs().max(1.0), "{x} != {y}");
        }
    }

    #[test]
    fn ensemble_matches_reference() {
        let m = generate(N);
        let expected = reference(m.clone());
        let got = run_ensemble(m, DeviceSel::gpu(), ProfileSink::new());
        assert_close(&got, &expected);
    }

    #[test]
    fn nomov_ablation_matches_reference() {
        let m = generate(N);
        let expected = reference(m.clone());
        let got = run_ensemble_nomov(m, DeviceSel::gpu(), ProfileSink::new());
        assert_close(&got, &expected);
    }

    #[test]
    fn copencl_matches_reference() {
        let m = generate(N);
        let expected = reference(m.clone());
        for ty in [DeviceType::Gpu, DeviceType::Cpu] {
            assert_close(&run_copencl(m.clone(), ty, Sink::new()), &expected);
        }
    }

    #[test]
    fn openacc_matches_reference() {
        let m = generate(N);
        let expected = reference(m.clone());
        let got = run_openacc(m, AccTarget::gpu(), Sink::new()).unwrap();
        assert_close(&got, &expected);
    }

    #[test]
    fn movability_eliminates_per_step_transfers() {
        // The paper's headline LUD observation: without mov, the matrix
        // crosses the bus at every hop; with mov it crosses twice total.
        let m = generate(N);
        let p_mov = ProfileSink::new();
        run_ensemble(m.clone(), DeviceSel::gpu(), p_mov.clone());
        let p_nomov = ProfileSink::new();
        run_ensemble_nomov(m, DeviceSel::gpu(), p_nomov.clone());
        let mov = p_mov.snapshot();
        let nomov = p_nomov.snapshot();
        assert!(
            nomov.to_device_ns > 20.0 * mov.to_device_ns,
            "nomov transfers {} not ≫ mov transfers {}",
            nomov.to_device_ns,
            mov.to_device_ns
        );
        // Same kernels, same shapes → identical kernel time.
        assert!((mov.kernel_ns - nomov.kernel_ns).abs() < 1e-3 * nomov.kernel_ns.max(1.0));
    }

    #[test]
    fn ensemble_transfer_cost_matches_handwritten_c() {
        // With mov, the actor pipeline achieves exactly the hand-written
        // optimisation: one upload, one download.
        let m = generate(N);
        let p_ens = ProfileSink::new();
        run_ensemble(m.clone(), DeviceSel::gpu(), p_ens.clone());
        let p_c = Sink::new();
        run_copencl(m, DeviceType::Gpu, p_c.clone());
        let ens = p_ens.snapshot();
        let c = p_c.snapshot();
        // Ensemble also uploads the 4-byte piv segment as its own
        // transfer, which costs one extra transfer latency — noise at the
        // paper's 2048² scale, visible at test scale.
        let gpu = ensemble_ocl::device_matrix()
            .select(DeviceSel::gpu())
            .unwrap();
        let piv_transfer = gpu.device.cost_model().transfer_ns(4);
        assert!(
            (ens.to_device_ns - c.to_device_ns - piv_transfer).abs() < 1.0,
            "ens {} vs c {} (+piv {})",
            ens.to_device_ns,
            c.to_device_ns,
            piv_transfer
        );
        assert_eq!(ens.dispatches, c.dispatches);
    }
}
