//! Mandelbrot set (paper: 1000 iterations, one kernel).
//!
//! The instructive case for Figure 3b: the explicit kernels use the 2-D
//! thread layout (one work-item per pixel), while the OpenACC version can
//! only annotate the outer row loop — one work-item per *row*, which both
//! under-fills the GPU and suffers load imbalance (row cost varies wildly
//! across the set). The engine's wave-scheduling cost model makes that
//! penalty measurable.

use baselines::acc::{AccError, AccRunner, AccTarget};
use baselines::host_eval::{array_i32, HArg, HVal, HostArray};
use ensemble_actors::{buffered_channel, In, Out, Stage};
use ensemble_ocl::{DeviceSel, KernelActor, KernelSpec, ProfileSink, RecoveryPolicy, Settings};
use oclsim::{
    CommandQueue, Context, DeviceType, MemFlags, NdRange, Platform, ProfileSink as Sink, Program,
};
use std::rc::Rc;

/// Escape-iteration kernel over a 2-D range, shared by Ensemble and
/// C-OpenCL.
pub const KERNEL_SRC: &str = r#"
__kernel void mandelbrot(__global int* out, const int n,
                         const int width, const int height,
                         const int max_iter) {
    int px = get_global_id(0);
    int py = get_global_id(1);
    if (px >= width || py >= height) { return; }
    float x0 = -2.0f + 3.0f * (float)px / (float)width;
    float y0 = -1.5f + 3.0f * (float)py / (float)height;
    float x = 0.0f;
    float y = 0.0f;
    int iter = 0;
    while (x * x + y * y <= 4.0f && iter < max_iter) {
        float xt = x * x - y * y + x0;
        y = 2.0f * x * y + y0;
        x = xt;
        iter = iter + 1;
    }
    out[py * width + px] = iter;
}
"#;

/// Annotated sequential C (outer-row loop only — the pragma limitation).
pub const ACC_SRC: &str = include_str!("assets/mandelbrot/acc.c");

/// Sequential reference.
pub fn reference(width: usize, height: usize, max_iter: u32) -> Vec<i32> {
    let mut out = vec![0i32; width * height];
    for py in 0..height {
        for px in 0..width {
            let x0 = -2.0f32 + 3.0 * px as f32 / width as f32;
            let y0 = -1.5f32 + 3.0 * py as f32 / height as f32;
            let (mut x, mut y) = (0.0f32, 0.0f32);
            let mut iter = 0u32;
            while x * x + y * y <= 4.0 && iter < max_iter {
                let xt = x * x - y * y + x0;
                y = 2.0 * x * y + y0;
                x = xt;
                iter += 1;
            }
            out[py * width + px] = iter as i32;
        }
    }
    out
}

const GROUP: usize = 16;

/// Ensemble-OpenCL path.
pub fn run_ensemble(
    width: usize,
    height: usize,
    max_iter: u32,
    device: DeviceSel,
    profile: ProfileSink,
) -> Vec<i32> {
    let spec = KernelSpec {
        source: KERNEL_SRC.to_string(),
        kernel_name: "mandelbrot".to_string(),
        device,
        out_segs: vec![0],
        out_dims: vec![0],
        profile,
        recovery: RecoveryPolicy::default(),
    };
    let (req_out, req_in) = buffered_channel::<Settings<Vec<i32>, Vec<i32>>>(1);
    let mut stage = Stage::new("home");
    stage.spawn(
        "Mandelbrot",
        KernelActor::<Vec<i32>, Vec<i32>>::new(spec, req_in),
    );
    let (result_out, result_in) = buffered_channel::<Vec<i32>>(1);
    stage.spawn_once("Dispatch", move |_| {
        let i = In::with_buffer(1);
        let o = Out::new();
        o.connect(&i);
        let mut settings = Settings::new(
            vec![width, height],
            vec![GROUP.min(width), GROUP.min(height)],
            i,
            result_out,
        );
        settings.extra_args = vec![width as i32, height as i32, max_iter as i32];
        req_out.send_moved(settings).unwrap();
        o.send_moved(vec![0i32; width * height]).unwrap();
    });
    let result = result_in.receive().unwrap();
    stage.join();
    result
}

/// C-OpenCL path: verbose host code.
pub fn run_copencl(
    width: usize,
    height: usize,
    max_iter: u32,
    device_type: DeviceType,
    profile: Sink,
) -> Vec<i32> {
    let platforms = Platform::all();
    let device = platforms
        .iter()
        .flat_map(|p| p.devices(Some(device_type)))
        .next()
        .expect("no such device");
    let context = Context::new(std::slice::from_ref(&device)).expect("context");
    let queue = CommandQueue::new(&context, &device).expect("queue");
    let program = Program::build(&context, KERNEL_SRC).expect("program build");
    let kernel = program.create_kernel("mandelbrot").expect("kernel");
    let n = width * height;
    let buf = context
        .create_buffer(MemFlags::ReadWrite, n * 4)
        .expect("buf");
    // No input upload: the kernel writes every element. (The Ensemble
    // version pays an upload here — the settings protocol moves the
    // receive buffer too; that lands in its to-device bar.)
    kernel.set_arg_buffer(0, &buf).expect("arg");
    kernel.set_arg_i32(1, n as i32).expect("arg");
    kernel.set_arg_i32(2, width as i32).expect("arg");
    kernel.set_arg_i32(3, height as i32).expect("arg");
    kernel.set_arg_i32(4, max_iter as i32).expect("arg");
    let g = GROUP.min(width);
    let ev = queue
        .enqueue_nd_range(&kernel, &NdRange::d2([width, height], [g, g]))
        .expect("dispatch");
    profile.record_command(&ev, queue.device().name());
    let (result, ev) = queue.read_i32(&buf).expect("read");
    profile.record_command(&ev, queue.device().name());
    context.release_bytes(n * 4);
    result
}

/// C-OpenACC path: only the row loop parallelises.
pub fn run_openacc(
    width: usize,
    height: usize,
    max_iter: u32,
    target: AccTarget,
    profile: Sink,
) -> Result<Vec<i32>, AccError> {
    let runner = AccRunner::new(ACC_SRC, target, profile)?;
    let out = array_i32(vec![0; width * height]);
    runner.run(
        "mandelbrot",
        &[
            HArg::Array(Rc::clone(&out)),
            HArg::Scalar(HVal::I(width as i64)),
            HArg::Scalar(HVal::I(height as i64)),
            HArg::Scalar(HVal::I(max_iter as i64)),
        ],
    )?;
    let data = match &*out.borrow() {
        HostArray::I32(v) => v.clone(),
        _ => unreachable!("declared i32"),
    };
    Ok(data)
}

#[cfg(test)]
mod tests {
    use super::*;

    const W: usize = 64;
    const H: usize = 64;
    const IT: u32 = 100;

    #[test]
    fn ensemble_matches_reference() {
        let expected = reference(W, H, IT);
        let got = run_ensemble(W, H, IT, DeviceSel::gpu(), ProfileSink::new());
        assert_eq!(got, expected);
    }

    #[test]
    fn copencl_matches_reference() {
        let expected = reference(W, H, IT);
        for ty in [DeviceType::Gpu, DeviceType::Cpu] {
            assert_eq!(run_copencl(W, H, IT, ty, Sink::new()), expected);
        }
    }

    #[test]
    fn openacc_matches_reference() {
        let expected = reference(W, H, IT);
        let got = run_openacc(W, H, IT, AccTarget::gpu(), Sink::new()).unwrap();
        assert_eq!(got, expected);
    }

    #[test]
    fn acc_kernel_time_is_much_worse_on_gpu() {
        // Figure 3b: the row-parallel ACC mapping cannot fill the GPU and
        // suffers row-cost imbalance; the explicit 2-D kernel does not.
        let p_ocl = Sink::new();
        run_copencl(W, H, IT, DeviceType::Gpu, p_ocl.clone());
        let p_acc = Sink::new();
        run_openacc(W, H, IT, AccTarget::gpu(), p_acc.clone()).unwrap();
        let ocl = p_ocl.snapshot().kernel_ns;
        let acc = p_acc.snapshot().kernel_ns;
        assert!(acc > 2.0 * ocl, "ACC GPU kernel {acc} not ≫ explicit {ocl}");
    }
}
