/* Matrix multiplication, single-threaded C (Table 1 baseline). */
#include <stdio.h>
#include <stdlib.h>
#include <time.h>

#define N 1024

static float *alloc_matrix(int n) {
    float *m = (float *)malloc(sizeof(float) * n * n);
    if (m == NULL) {
        fprintf(stderr, "allocation failed\n");
        exit(1);
    }
    return m;
}

static void init_matrix(float *m, int n, unsigned seed) {
    srand(seed);
    for (int i = 0; i < n * n; i++) {
        m[i] = (float)rand() / (float)RAND_MAX;
    }
}

static void matmul(const float *a, const float *b, float *c, int n) {
    for (int y = 0; y < n; y++) {
        for (int x = 0; x < n; x++) {
            float acc = 0.0f;
            for (int k = 0; k < n; k++) {
                acc += a[y * n + k] * b[k * n + x];
            }
            c[y * n + x] = acc;
        }
    }
}

static float checksum(const float *m, int n) {
    float sum = 0.0f;
    for (int i = 0; i < n * n; i++) {
        sum += m[i];
    }
    return sum;
}

int main(void) {
    float *a = alloc_matrix(N);
    float *b = alloc_matrix(N);
    float *c = alloc_matrix(N);
    init_matrix(a, N, 11);
    init_matrix(b, N, 23);

    struct timespec t0, t1;
    clock_gettime(CLOCK_MONOTONIC, &t0);
    matmul(a, b, c, N);
    clock_gettime(CLOCK_MONOTONIC, &t1);

    double secs = (t1.tv_sec - t0.tv_sec) + (t1.tv_nsec - t0.tv_nsec) / 1e9;
    printf("matmul %dx%d: %.3f s, checksum %f\n", N, N, secs, checksum(c, N));

    free(a);
    free(b);
    free(c);
    return 0;
}
