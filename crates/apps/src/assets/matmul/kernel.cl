__kernel void multiply(__global float* a, __global float* b,
                       __global float* result,
                       const int ra, const int ca,
                       const int rb, const int cb,
                       const int rr, const int cr) {
    int x = get_global_id(0);
    int y = get_global_id(1);
    int dim = get_global_size(0);
    float c = 0.0f;
    for (int i = 0; i < dim; i++) {
        c = c + a[y * ca + i] * b[i * cb + x];
    }
    result[y * cr + x] = c;
}
