/* Matrix multiplication, C-OpenCL host (Table 1 concurrent version,
 * together with kernel.cl). The boilerplate below is the point: this is
 * what "the API approach" costs, §2.1 / §3.1 of the paper. */
#include <stdio.h>
#include <stdlib.h>
#include <string.h>
#include <time.h>
#include <CL/cl.h>

#define N 1024
#define GROUP 16
#define CHECK(err, what)                                        \
    if ((err) != CL_SUCCESS) {                                  \
        fprintf(stderr, "%s failed: %d\n", (what), (int)(err)); \
        exit(1);                                                \
    }

static float *alloc_matrix(int n) {
    float *m = (float *)malloc(sizeof(float) * n * n);
    if (m == NULL) {
        fprintf(stderr, "allocation failed\n");
        exit(1);
    }
    return m;
}

static void init_matrix(float *m, int n, unsigned seed) {
    srand(seed);
    for (int i = 0; i < n * n; i++) {
        m[i] = (float)rand() / (float)RAND_MAX;
    }
}

static char *load_kernel_source(const char *path, size_t *len) {
    FILE *f = fopen(path, "rb");
    if (f == NULL) {
        fprintf(stderr, "cannot open %s\n", path);
        exit(1);
    }
    fseek(f, 0, SEEK_END);
    long size = ftell(f);
    fseek(f, 0, SEEK_SET);
    char *src = (char *)malloc(size + 1);
    if (fread(src, 1, size, f) != (size_t)size) {
        fprintf(stderr, "short read on %s\n", path);
        exit(1);
    }
    src[size] = '\0';
    fclose(f);
    *len = (size_t)size;
    return src;
}

int main(void) {
    cl_int err;

    /* Platform and device discovery. */
    cl_uint num_platforms = 0;
    err = clGetPlatformIDs(0, NULL, &num_platforms);
    CHECK(err, "clGetPlatformIDs(count)");
    cl_platform_id *platforms =
        (cl_platform_id *)malloc(sizeof(cl_platform_id) * num_platforms);
    err = clGetPlatformIDs(num_platforms, platforms, NULL);
    CHECK(err, "clGetPlatformIDs");
    cl_device_id device;
    err = clGetDeviceIDs(platforms[0], CL_DEVICE_TYPE_GPU, 1, &device, NULL);
    CHECK(err, "clGetDeviceIDs");

    /* Context and command queue. */
    cl_context context = clCreateContext(NULL, 1, &device, NULL, NULL, &err);
    CHECK(err, "clCreateContext");
    cl_command_queue queue =
        clCreateCommandQueue(context, device, CL_QUEUE_PROFILING_ENABLE, &err);
    CHECK(err, "clCreateCommandQueue");

    /* Program: load, create, build at runtime. */
    size_t src_len = 0;
    char *src = load_kernel_source("kernel.cl", &src_len);
    cl_program program =
        clCreateProgramWithSource(context, 1, (const char **)&src, &src_len, &err);
    CHECK(err, "clCreateProgramWithSource");
    err = clBuildProgram(program, 1, &device, "-cl-std=CL1.2", NULL, NULL);
    if (err != CL_SUCCESS) {
        char log[16384];
        clGetProgramBuildInfo(program, device, CL_PROGRAM_BUILD_LOG,
                              sizeof(log), log, NULL);
        fprintf(stderr, "build failed:\n%s\n", log);
        exit(1);
    }
    cl_kernel kernel = clCreateKernel(program, "multiply", &err);
    CHECK(err, "clCreateKernel");

    /* Host data. */
    float *a = alloc_matrix(N);
    float *b = alloc_matrix(N);
    float *c = alloc_matrix(N);
    init_matrix(a, N, 11);
    init_matrix(b, N, 23);

    /* Device buffers. */
    size_t bytes = sizeof(float) * N * N;
    cl_mem buf_a = clCreateBuffer(context, CL_MEM_READ_ONLY, bytes, NULL, &err);
    CHECK(err, "clCreateBuffer(a)");
    cl_mem buf_b = clCreateBuffer(context, CL_MEM_READ_ONLY, bytes, NULL, &err);
    CHECK(err, "clCreateBuffer(b)");
    cl_mem buf_c = clCreateBuffer(context, CL_MEM_READ_WRITE, bytes, NULL, &err);
    CHECK(err, "clCreateBuffer(c)");

    /* Host -> device. */
    err = clEnqueueWriteBuffer(queue, buf_a, CL_TRUE, 0, bytes, a, 0, NULL, NULL);
    CHECK(err, "clEnqueueWriteBuffer(a)");
    err = clEnqueueWriteBuffer(queue, buf_b, CL_TRUE, 0, bytes, b, 0, NULL, NULL);
    CHECK(err, "clEnqueueWriteBuffer(b)");

    /* Arguments: buffers, then the flattened dimensions. */
    int n = N;
    err = clSetKernelArg(kernel, 0, sizeof(cl_mem), &buf_a);
    CHECK(err, "clSetKernelArg(0)");
    err = clSetKernelArg(kernel, 1, sizeof(cl_mem), &buf_b);
    CHECK(err, "clSetKernelArg(1)");
    err = clSetKernelArg(kernel, 2, sizeof(cl_mem), &buf_c);
    CHECK(err, "clSetKernelArg(2)");
    for (int i = 0; i < 6; i++) {
        err = clSetKernelArg(kernel, 3 + i, sizeof(int), &n);
        CHECK(err, "clSetKernelArg(dim)");
    }

    /* Dispatch. */
    size_t global[2] = {N, N};
    size_t local[2] = {GROUP, GROUP};
    struct timespec t0, t1;
    clock_gettime(CLOCK_MONOTONIC, &t0);
    err = clEnqueueNDRangeKernel(queue, kernel, 2, NULL, global, local,
                                 0, NULL, NULL);
    CHECK(err, "clEnqueueNDRangeKernel");
    err = clFinish(queue);
    CHECK(err, "clFinish");

    /* Device -> host. */
    err = clEnqueueReadBuffer(queue, buf_c, CL_TRUE, 0, bytes, c, 0, NULL, NULL);
    CHECK(err, "clEnqueueReadBuffer");
    clock_gettime(CLOCK_MONOTONIC, &t1);

    double secs = (t1.tv_sec - t0.tv_sec) + (t1.tv_nsec - t0.tv_nsec) / 1e9;
    float sum = 0.0f;
    for (int i = 0; i < N * N; i++) {
        sum += c[i];
    }
    printf("matmul %dx%d: %.3f s, checksum %f\n", N, N, secs, sum);

    /* Release everything. */
    clReleaseMemObject(buf_a);
    clReleaseMemObject(buf_b);
    clReleaseMemObject(buf_c);
    clReleaseKernel(kernel);
    clReleaseProgram(program);
    clReleaseCommandQueue(queue);
    clReleaseContext(context);
    free(platforms);
    free(src);
    free(a);
    free(b);
    free(c);
    return 0;
}
