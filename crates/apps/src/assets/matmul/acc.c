// Matrix multiplication, C with OpenACC annotations.
// The sequential code plus pragmas; the engine outlines the annotated
// outer loop into a 1-D kernel.
void matmul(float* a, float* b, float* c, int n) {
    #pragma acc parallel loop copyin(a, b) copyout(c) worker(64)
    for (int y = 0; y < n; y++) {
        for (int x = 0; x < n; x++) {
            float acc = 0.0f;
            for (int k = 0; k < n; k++) {
                acc += a[y * n + k] * b[k * n + x];
            }
            c[y * n + x] = acc;
        }
    }
}
