// Document ranking, OpenMP-style CPU fallback (compiled by gcc in the
// paper). The scoring helper is manually inlined so the annotated loop
// compiles; per-round data movement still applies.
void rank_all(float* docs, float* tpl, int* out,
              int nterms, int ndocs, float threshold, int rounds) {
    for (int r = 0; r < rounds; r++) {
        #pragma acc parallel loop copyin(docs, tpl) copyout(out)
        for (int d = 0; d < ndocs; d++) {
            float s = 0.0f;
            for (int t = 0; t < nterms; t++) {
                s += docs[d * nterms + t] * tpl[t];
            }
            out[d] = s > threshold ? 1 : 0;
        }
    }
}
