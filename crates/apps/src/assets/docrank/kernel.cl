__kernel void rank(__global float4* docs, __global float4* tpl,
                   __global int* out,
                   const int nterms4, const int ndocs,
                   const float threshold) {
    int d = get_global_id(0);
    if (d >= ndocs) { return; }
    float4 acc = (float4)(0.0f);
    for (int t = 0; t < nterms4; t++) {
        acc = acc + docs[d * nterms4 + t] * tpl[t];
    }
    float score = acc.x + acc.y + acc.z + acc.w;
    out[d] = score > threshold ? 1 : 0;
}
