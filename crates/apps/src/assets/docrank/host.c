/* Document ranking, C-OpenCL host (Table 1 concurrent version, with
 * kernel.cl). Copies the corpus to the device and the flags back on every
 * round — the comparison point for the Ensemble version's mov channels. */
#include <stdio.h>
#include <stdlib.h>
#include <string.h>
#include <time.h>
#include <CL/cl.h>

#define DOCS 65536
#define TERMS 64
#define ROUNDS 10
#define GROUP 64
#define THRESHOLD 2.0f
#define CHECK(err, what)                                        \
    if ((err) != CL_SUCCESS) {                                  \
        fprintf(stderr, "%s failed: %d\n", (what), (int)(err)); \
        exit(1);                                                \
    }

static char *load_kernel_source(const char *path, size_t *len) {
    FILE *f = fopen(path, "rb");
    if (f == NULL) {
        fprintf(stderr, "cannot open %s\n", path);
        exit(1);
    }
    fseek(f, 0, SEEK_END);
    long size = ftell(f);
    fseek(f, 0, SEEK_SET);
    char *src = (char *)malloc(size + 1);
    if (fread(src, 1, size, f) != (size_t)size) {
        fprintf(stderr, "short read on %s\n", path);
        exit(1);
    }
    src[size] = '\0';
    fclose(f);
    *len = (size_t)size;
    return src;
}

static void init_corpus(float *docs, float *tpl, int ndocs, int nterms) {
    srand(77);
    for (int d = 0; d < ndocs; d++) {
        for (int t = 0; t < nterms; t++) {
            float zipf = 1.0f / (float)(t + 1);
            float noise = (float)rand() / (float)RAND_MAX;
            float boost = (d % 5 == 0 && t < nterms / 8) ? 3.0f : 1.0f;
            docs[d * nterms + t] = zipf * noise * boost;
        }
    }
    for (int t = 0; t < nterms; t++) {
        tpl[t] = t < nterms / 8 ? 1.0f : 0.05f;
    }
}

int main(void) {
    cl_int err;

    cl_uint num_platforms = 0;
    err = clGetPlatformIDs(0, NULL, &num_platforms);
    CHECK(err, "clGetPlatformIDs(count)");
    cl_platform_id *platforms =
        (cl_platform_id *)malloc(sizeof(cl_platform_id) * num_platforms);
    err = clGetPlatformIDs(num_platforms, platforms, NULL);
    CHECK(err, "clGetPlatformIDs");
    cl_device_id device;
    err = clGetDeviceIDs(platforms[0], CL_DEVICE_TYPE_GPU, 1, &device, NULL);
    CHECK(err, "clGetDeviceIDs");

    cl_context context = clCreateContext(NULL, 1, &device, NULL, NULL, &err);
    CHECK(err, "clCreateContext");
    cl_command_queue queue =
        clCreateCommandQueue(context, device, CL_QUEUE_PROFILING_ENABLE, &err);
    CHECK(err, "clCreateCommandQueue");

    size_t src_len = 0;
    char *src = load_kernel_source("kernel.cl", &src_len);
    cl_program program =
        clCreateProgramWithSource(context, 1, (const char **)&src, &src_len, &err);
    CHECK(err, "clCreateProgramWithSource");
    err = clBuildProgram(program, 1, &device, "-cl-std=CL1.2", NULL, NULL);
    if (err != CL_SUCCESS) {
        char log[16384];
        clGetProgramBuildInfo(program, device, CL_PROGRAM_BUILD_LOG,
                              sizeof(log), log, NULL);
        fprintf(stderr, "build failed:\n%s\n", log);
        exit(1);
    }
    cl_kernel kernel = clCreateKernel(program, "rank", &err);
    CHECK(err, "clCreateKernel");

    float *docs = (float *)malloc(sizeof(float) * DOCS * TERMS);
    float *tpl = (float *)malloc(sizeof(float) * TERMS);
    int *out = (int *)malloc(sizeof(int) * DOCS);
    init_corpus(docs, tpl, DOCS, TERMS);

    cl_mem buf_docs = clCreateBuffer(context, CL_MEM_READ_ONLY,
                                     sizeof(float) * DOCS * TERMS, NULL, &err);
    CHECK(err, "clCreateBuffer(docs)");
    cl_mem buf_tpl = clCreateBuffer(context, CL_MEM_READ_ONLY,
                                    sizeof(float) * TERMS, NULL, &err);
    CHECK(err, "clCreateBuffer(tpl)");
    cl_mem buf_out = clCreateBuffer(context, CL_MEM_WRITE_ONLY,
                                    sizeof(int) * DOCS, NULL, &err);
    CHECK(err, "clCreateBuffer(out)");

    int nterms4 = TERMS / 4;
    int ndocs = DOCS;
    float threshold = THRESHOLD;

    struct timespec t0, t1;
    clock_gettime(CLOCK_MONOTONIC, &t0);
    for (int r = 0; r < ROUNDS; r++) {
        /* The data never changes, but this host copies it every round. */
        err = clEnqueueWriteBuffer(queue, buf_docs, CL_TRUE, 0,
                                   sizeof(float) * DOCS * TERMS, docs,
                                   0, NULL, NULL);
        CHECK(err, "clEnqueueWriteBuffer(docs)");
        err = clEnqueueWriteBuffer(queue, buf_tpl, CL_TRUE, 0,
                                   sizeof(float) * TERMS, tpl, 0, NULL, NULL);
        CHECK(err, "clEnqueueWriteBuffer(tpl)");
        err = clSetKernelArg(kernel, 0, sizeof(cl_mem), &buf_docs);
        CHECK(err, "clSetKernelArg(0)");
        err = clSetKernelArg(kernel, 1, sizeof(cl_mem), &buf_tpl);
        CHECK(err, "clSetKernelArg(1)");
        err = clSetKernelArg(kernel, 2, sizeof(cl_mem), &buf_out);
        CHECK(err, "clSetKernelArg(2)");
        err = clSetKernelArg(kernel, 3, sizeof(int), &nterms4);
        CHECK(err, "clSetKernelArg(3)");
        err = clSetKernelArg(kernel, 4, sizeof(int), &ndocs);
        CHECK(err, "clSetKernelArg(4)");
        err = clSetKernelArg(kernel, 5, sizeof(float), &threshold);
        CHECK(err, "clSetKernelArg(5)");
        size_t global = (DOCS + GROUP - 1) / GROUP * GROUP;
        size_t local = GROUP;
        err = clEnqueueNDRangeKernel(queue, kernel, 1, NULL, &global, &local,
                                     0, NULL, NULL);
        CHECK(err, "clEnqueueNDRangeKernel");
        err = clEnqueueReadBuffer(queue, buf_out, CL_TRUE, 0,
                                  sizeof(int) * DOCS, out, 0, NULL, NULL);
        CHECK(err, "clEnqueueReadBuffer");
    }
    clock_gettime(CLOCK_MONOTONIC, &t1);

    double secs = (t1.tv_sec - t0.tv_sec) + (t1.tv_nsec - t0.tv_nsec) / 1e9;
    int wanted = 0;
    for (int d = 0; d < DOCS; d++) {
        wanted += out[d];
    }
    printf("ranked %d docs x%d rounds: %.3f s, %d wanted\n",
           DOCS, ROUNDS, secs, wanted);

    clReleaseMemObject(buf_docs);
    clReleaseMemObject(buf_tpl);
    clReleaseMemObject(buf_out);
    clReleaseKernel(kernel);
    clReleaseProgram(program);
    clReleaseCommandQueue(queue);
    clReleaseContext(context);
    free(platforms);
    free(src);
    free(docs);
    free(tpl);
    free(out);
    return 0;
}
