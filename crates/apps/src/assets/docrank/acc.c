// Document ranking, C with OpenACC annotations.
// The scoring helper is a separate function — idiomatic C, but user
// functions cannot be inlined into OpenACC compute regions, so the
// compiler rejects the parallel loop. The paper: "The PGI compiler was
// not able to compile this code, hence no results were obtained for the
// GPU or CPU from C-OpenACC."
float score(float* docs, float* tpl, int d, int nterms) {
    float s = 0.0f;
    for (int t = 0; t < nterms; t++) {
        s += docs[d * nterms + t] * tpl[t];
    }
    return s;
}

void rank_all(float* docs, float* tpl, int* out,
              int nterms, int ndocs, float threshold, int rounds) {
    for (int r = 0; r < rounds; r++) {
        #pragma acc parallel loop copyin(docs, tpl) copyout(out)
        for (int d = 0; d < ndocs; d++) {
            float s = score(docs, tpl, d, nterms);
            out[d] = s > threshold ? 1 : 0;
        }
    }
}
