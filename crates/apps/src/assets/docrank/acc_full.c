/* Document ranking, C with OpenACC annotations (Table 1 concurrent
 * version for the pragma approach). The scoring helper stays a separate
 * function — idiomatic C — and that is exactly what the PGI compiler
 * could not inline into the compute region: this program does not
 * compile for either target. */
#include <stdio.h>
#include <stdlib.h>
#include <time.h>

#define DOCS 65536
#define TERMS 64
#define ROUNDS 10
#define THRESHOLD 2.0f

static float *alloc_floats(int n) {
    float *d = (float *)malloc(sizeof(float) * n);
    if (d == NULL) {
        fprintf(stderr, "allocation failed\n");
        exit(1);
    }
    return d;
}

static void init_corpus(float *docs, float *tpl, int ndocs, int nterms) {
    srand(77);
    for (int d = 0; d < ndocs; d++) {
        for (int t = 0; t < nterms; t++) {
            float zipf = 1.0f / (float)(t + 1);
            float noise = (float)rand() / (float)RAND_MAX;
            float boost = (d % 5 == 0 && t < nterms / 8) ? 3.0f : 1.0f;
            docs[d * nterms + t] = zipf * noise * boost;
        }
    }
    for (int t = 0; t < nterms; t++) {
        tpl[t] = t < nterms / 8 ? 1.0f : 0.05f;
    }
}

static float score(const float *docs, const float *tpl, int d, int nterms) {
    float s = 0.0f;
    for (int t = 0; t < nterms; t++) {
        s += docs[d * nterms + t] * tpl[t];
    }
    return s;
}

static void rank_all(const float *docs, const float *tpl, int *out,
                     int ndocs, int nterms, float threshold) {
    int total = ndocs * nterms;
    #pragma acc parallel loop copyin(docs[0:total], tpl[0:nterms]) copyout(out[0:ndocs])
    for (int d = 0; d < ndocs; d++) {
        out[d] = score(docs, tpl, d, nterms) > threshold;
    }
}

int main(void) {
    float *docs = alloc_floats(DOCS * TERMS);
    float *tpl = alloc_floats(TERMS);
    int *out = (int *)malloc(sizeof(int) * DOCS);
    init_corpus(docs, tpl, DOCS, TERMS);

    struct timespec t0, t1;
    clock_gettime(CLOCK_MONOTONIC, &t0);
    for (int r = 0; r < ROUNDS; r++) {
        rank_all(docs, tpl, out, DOCS, TERMS, THRESHOLD);
    }
    clock_gettime(CLOCK_MONOTONIC, &t1);

    double secs = (t1.tv_sec - t0.tv_sec) + (t1.tv_nsec - t0.tv_nsec) / 1e9;
    int wanted = 0;
    for (int d = 0; d < DOCS; d++) {
        wanted += out[d];
    }
    printf("ranked %d docs x%d rounds: %.3f s, %d wanted\n",
           DOCS, ROUNDS, secs, wanted);

    free(docs);
    free(tpl);
    free(out);
    return 0;
}
