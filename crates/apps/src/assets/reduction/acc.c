// Minimum of an array, C with an OpenACC reduction clause.
// The annotation is one line — but the generated code is a naive
// two-stage reduction with a serial host-side combine, which is why
// Figure 3d shows OpenACC losing on both devices.
void minimum(float* data, float* out, int n) {
    float m = 3.0e38f;
    #pragma acc parallel loop reduction(min:m) copyin(data)
    for (int i = 0; i < n; i++) {
        m = fmin(m, data[i]);
    }
    out[0] = m;
}
