__kernel void reduce_min(__global float* data, __global float* partial,
                         const int n, const int npartial) {
    __local float scratch[256];
    int gid = get_global_id(0);
    int lid = get_local_id(0);
    if (gid < n) {
        scratch[lid] = data[gid];
    } else {
        scratch[lid] = 3.0e38f;
    }
    barrier(CLK_LOCAL_MEM_FENCE);
    for (int stride = get_local_size(0) / 2; stride > 0; stride = stride / 2) {
        if (lid < stride) {
            scratch[lid] = fmin(scratch[lid], scratch[lid + stride]);
        }
        barrier(CLK_LOCAL_MEM_FENCE);
    }
    if (lid == 0) {
        partial[get_group_id(0)] = scratch[0];
    }
}
