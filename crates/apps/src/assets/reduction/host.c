/* Matrix reduction (minimum), C-OpenCL host (Table 1 concurrent version,
 * with kernel.cl). Tree reduction needs genuinely different logic from
 * the sequential loop — the paper notes both explicit approaches pay this
 * "different mindset" cost, unlike OpenACC's one-line clause. */
#include <stdio.h>
#include <stdlib.h>
#include <string.h>
#include <time.h>
#include <CL/cl.h>

#define COUNT 33554432
#define GROUP 256
#define CHECK(err, what)                                        \
    if ((err) != CL_SUCCESS) {                                  \
        fprintf(stderr, "%s failed: %d\n", (what), (int)(err)); \
        exit(1);                                                \
    }

static char *load_kernel_source(const char *path, size_t *len) {
    FILE *f = fopen(path, "rb");
    if (f == NULL) {
        fprintf(stderr, "cannot open %s\n", path);
        exit(1);
    }
    fseek(f, 0, SEEK_END);
    long size = ftell(f);
    fseek(f, 0, SEEK_SET);
    char *src = (char *)malloc(size + 1);
    if (fread(src, 1, size, f) != (size_t)size) {
        fprintf(stderr, "short read on %s\n", path);
        exit(1);
    }
    src[size] = '\0';
    fclose(f);
    *len = (size_t)size;
    return src;
}

static void init_data(float *d, int n, unsigned seed) {
    srand(seed);
    for (int i = 0; i < n; i++) {
        d[i] = (float)rand() / (float)RAND_MAX + 0.5f;
    }
    d[n / 3] = -123.5f;
}

int main(void) {
    cl_int err;

    cl_uint num_platforms = 0;
    err = clGetPlatformIDs(0, NULL, &num_platforms);
    CHECK(err, "clGetPlatformIDs(count)");
    cl_platform_id *platforms =
        (cl_platform_id *)malloc(sizeof(cl_platform_id) * num_platforms);
    err = clGetPlatformIDs(num_platforms, platforms, NULL);
    CHECK(err, "clGetPlatformIDs");
    cl_device_id device;
    err = clGetDeviceIDs(platforms[0], CL_DEVICE_TYPE_GPU, 1, &device, NULL);
    CHECK(err, "clGetDeviceIDs");

    cl_context context = clCreateContext(NULL, 1, &device, NULL, NULL, &err);
    CHECK(err, "clCreateContext");
    cl_command_queue queue =
        clCreateCommandQueue(context, device, CL_QUEUE_PROFILING_ENABLE, &err);
    CHECK(err, "clCreateCommandQueue");

    size_t src_len = 0;
    char *src = load_kernel_source("kernel.cl", &src_len);
    cl_program program =
        clCreateProgramWithSource(context, 1, (const char **)&src, &src_len, &err);
    CHECK(err, "clCreateProgramWithSource");
    err = clBuildProgram(program, 1, &device, "-cl-std=CL1.2", NULL, NULL);
    if (err != CL_SUCCESS) {
        char log[16384];
        clGetProgramBuildInfo(program, device, CL_PROGRAM_BUILD_LOG,
                              sizeof(log), log, NULL);
        fprintf(stderr, "build failed:\n%s\n", log);
        exit(1);
    }
    cl_kernel kernel = clCreateKernel(program, "reduce_min", &err);
    CHECK(err, "clCreateKernel");

    float *data = (float *)malloc(sizeof(float) * COUNT);
    init_data(data, COUNT, 97);

    int groups = (COUNT + GROUP - 1) / GROUP;
    cl_mem buf_data =
        clCreateBuffer(context, CL_MEM_READ_WRITE, sizeof(float) * COUNT, NULL, &err);
    CHECK(err, "clCreateBuffer(data)");
    cl_mem buf_partial =
        clCreateBuffer(context, CL_MEM_READ_WRITE, sizeof(float) * groups, NULL, &err);
    CHECK(err, "clCreateBuffer(partial)");

    struct timespec t0, t1;
    clock_gettime(CLOCK_MONOTONIC, &t0);
    err = clEnqueueWriteBuffer(queue, buf_data, CL_TRUE, 0,
                               sizeof(float) * COUNT, data, 0, NULL, NULL);
    CHECK(err, "clEnqueueWriteBuffer");

    /* Round trip: data -> partials -> ... until one value remains. The
     * input and output buffers swap roles between rounds so nothing is
     * copied back until the end. */
    cl_mem src_buf = buf_data;
    cl_mem dst_buf = buf_partial;
    int len = COUNT;
    for (;;) {
        int round_groups = (len + GROUP - 1) / GROUP;
        err = clSetKernelArg(kernel, 0, sizeof(cl_mem), &src_buf);
        CHECK(err, "clSetKernelArg(0)");
        err = clSetKernelArg(kernel, 1, sizeof(cl_mem), &dst_buf);
        CHECK(err, "clSetKernelArg(1)");
        err = clSetKernelArg(kernel, 2, sizeof(int), &len);
        CHECK(err, "clSetKernelArg(2)");
        err = clSetKernelArg(kernel, 3, sizeof(int), &round_groups);
        CHECK(err, "clSetKernelArg(3)");
        size_t global = (size_t)round_groups * GROUP;
        size_t local = GROUP;
        err = clEnqueueNDRangeKernel(queue, kernel, 1, NULL, &global, &local,
                                     0, NULL, NULL);
        CHECK(err, "clEnqueueNDRangeKernel");
        if (round_groups == 1) {
            break;
        }
        len = round_groups;
        cl_mem tmp = src_buf;
        src_buf = dst_buf;
        dst_buf = tmp;
    }
    err = clFinish(queue);
    CHECK(err, "clFinish");

    float result = 0.0f;
    err = clEnqueueReadBuffer(queue, dst_buf, CL_TRUE, 0, sizeof(float),
                              &result, 0, NULL, NULL);
    CHECK(err, "clEnqueueReadBuffer");
    clock_gettime(CLOCK_MONOTONIC, &t1);

    double secs = (t1.tv_sec - t0.tv_sec) + (t1.tv_nsec - t0.tv_nsec) / 1e9;
    printf("reduction of %d elements: %.3f s, min %f\n", COUNT, secs, result);

    clReleaseMemObject(buf_data);
    clReleaseMemObject(buf_partial);
    clReleaseKernel(kernel);
    clReleaseProgram(program);
    clReleaseCommandQueue(queue);
    clReleaseContext(context);
    free(platforms);
    free(src);
    free(data);
    return 0;
}
