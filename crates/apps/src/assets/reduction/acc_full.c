/* Matrix reduction (minimum), C with OpenACC annotations (Table 1
 * concurrent version for the pragma approach). One clause — and the
 * naive generated reduction that Figure 3d pays for. */
#include <stdio.h>
#include <stdlib.h>
#include <time.h>

#define COUNT 33554432

static float *alloc_data(int n) {
    float *d = (float *)malloc(sizeof(float) * n);
    if (d == NULL) {
        fprintf(stderr, "allocation failed\n");
        exit(1);
    }
    return d;
}

static void init_data(float *d, int n, unsigned seed) {
    srand(seed);
    for (int i = 0; i < n; i++) {
        d[i] = (float)rand() / (float)RAND_MAX + 0.5f;
    }
    d[n / 3] = -123.5f;
}

static float minimum(const float *d, int n) {
    float m = 3.0e38f;
    #pragma acc parallel loop reduction(min:m) copyin(d[0:n])
    for (int i = 0; i < n; i++) {
        if (d[i] < m) {
            m = d[i];
        }
    }
    return m;
}

int main(void) {
    float *data = alloc_data(COUNT);
    init_data(data, COUNT, 97);

    struct timespec t0, t1;
    clock_gettime(CLOCK_MONOTONIC, &t0);
    float m = minimum(data, COUNT);
    clock_gettime(CLOCK_MONOTONIC, &t1);

    double secs = (t1.tv_sec - t0.tv_sec) + (t1.tv_nsec - t0.tv_nsec) / 1e9;
    printf("reduction of %d elements: %.3f s, min %f\n", COUNT, secs, m);

    free(data);
    return 0;
}
