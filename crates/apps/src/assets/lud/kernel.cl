__kernel void lud_diag(__global float* m, __global float* piv,
                       const int rows, const int cols, const int npiv,
                       const int step) {
    piv[0] = 1.0f / m[step * cols + step];
}

__kernel void lud_col(__global float* m, __global float* piv,
                      const int rows, const int cols, const int npiv,
                      const int step) {
    int i = get_global_id(0) + step + 1;
    if (i < rows) {
        m[i * cols + step] = m[i * cols + step] * piv[0];
    }
}

__kernel void lud_sub(__global float* m, __global float* piv,
                      const int rows, const int cols, const int npiv,
                      const int step) {
    int j = get_global_id(0) + step + 1;
    int i = get_global_id(1) + step + 1;
    if (i < rows && j < cols) {
        m[i * cols + j] = m[i * cols + j] - m[i * cols + step] * m[step * cols + j];
    }
}
