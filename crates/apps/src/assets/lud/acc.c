// LU decomposition, C with OpenACC annotations.
// A data region keeps the matrix resident across the step loop; the two
// inner loops need `independent` (the compiler cannot prove the
// step-ordered dependences safe) and gang/worker tuning — the paper:
// "annotating the outer loop of the relevant code was not sufficient,
// requiring use of the non-trivial gangs and worker annotations".
void lud(float* m, int n) {
    #pragma acc data copy(m)
    for (int step = 0; step < n; step++) {
        #pragma acc parallel loop independent present(m) gang(64) worker(64)
        for (int i = step + 1; i < n; i++) {
            m[i * n + step] = m[i * n + step] / m[step * n + step];
        }
        #pragma acc parallel loop independent present(m) gang(64) worker(64)
        for (int i = step + 1; i < n; i++) {
            for (int j = step + 1; j < n; j++) {
                m[i * n + j] = m[i * n + j] - m[i * n + step] * m[step * n + j];
            }
        }
    }
}
