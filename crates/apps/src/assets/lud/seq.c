/* LU decomposition (Doolittle, in place), single-threaded C. */
#include <stdio.h>
#include <stdlib.h>
#include <time.h>

#define N 2048

static float *alloc_matrix(int n) {
    float *m = (float *)malloc(sizeof(float) * n * n);
    if (m == NULL) {
        fprintf(stderr, "allocation failed\n");
        exit(1);
    }
    return m;
}

static void init_dominant(float *m, int n, unsigned seed) {
    srand(seed);
    for (int i = 0; i < n; i++) {
        float sum = 0.0f;
        for (int j = 0; j < n; j++) {
            if (i != j) {
                m[i * n + j] = 0.5f * (float)rand() / (float)RAND_MAX;
                sum += m[i * n + j];
            }
        }
        m[i * n + i] = sum + 1.0f;
    }
}

static void lud(float *m, int n) {
    for (int step = 0; step < n; step++) {
        float piv = 1.0f / m[step * n + step];
        for (int i = step + 1; i < n; i++) {
            m[i * n + step] = m[i * n + step] * piv;
        }
        for (int i = step + 1; i < n; i++) {
            float l = m[i * n + step];
            for (int j = step + 1; j < n; j++) {
                m[i * n + j] = m[i * n + j] - l * m[step * n + j];
            }
        }
    }
}

int main(void) {
    float *m = alloc_matrix(N);
    init_dominant(m, N, 31);

    struct timespec t0, t1;
    clock_gettime(CLOCK_MONOTONIC, &t0);
    lud(m, N);
    clock_gettime(CLOCK_MONOTONIC, &t1);

    double secs = (t1.tv_sec - t0.tv_sec) + (t1.tv_nsec - t0.tv_nsec) / 1e9;
    float trace = 0.0f;
    for (int i = 0; i < N; i++) {
        trace += m[i * N + i];
    }
    printf("lud %dx%d: %.3f s, U trace %f\n", N, N, secs, trace);

    free(m);
    return 0;
}
