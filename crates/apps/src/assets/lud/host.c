/* LU decomposition, C-OpenCL host (Table 1 concurrent version, with
 * kernel.cl): three kernels dispatched in series per elimination step.
 * Keeping the matrix on the device across all steps is the hand-written
 * optimisation that Ensemble gets from `mov` channels. */
#include <stdio.h>
#include <stdlib.h>
#include <string.h>
#include <time.h>
#include <CL/cl.h>

#define N 2048
#define GROUP 16
#define CHECK(err, what)                                        \
    if ((err) != CL_SUCCESS) {                                  \
        fprintf(stderr, "%s failed: %d\n", (what), (int)(err)); \
        exit(1);                                                \
    }

static char *load_kernel_source(const char *path, size_t *len) {
    FILE *f = fopen(path, "rb");
    if (f == NULL) {
        fprintf(stderr, "cannot open %s\n", path);
        exit(1);
    }
    fseek(f, 0, SEEK_END);
    long size = ftell(f);
    fseek(f, 0, SEEK_SET);
    char *src = (char *)malloc(size + 1);
    if (fread(src, 1, size, f) != (size_t)size) {
        fprintf(stderr, "short read on %s\n", path);
        exit(1);
    }
    src[size] = '\0';
    fclose(f);
    *len = (size_t)size;
    return src;
}

static void init_dominant(float *m, int n, unsigned seed) {
    srand(seed);
    for (int i = 0; i < n; i++) {
        float sum = 0.0f;
        for (int j = 0; j < n; j++) {
            if (i != j) {
                m[i * n + j] = 0.5f * (float)rand() / (float)RAND_MAX;
                sum += m[i * n + j];
            }
        }
        m[i * n + i] = sum + 1.0f;
    }
}

static void set_common_args(cl_kernel k, cl_mem buf_m, cl_mem buf_piv,
                            int n, int step) {
    cl_int err;
    int one = 1;
    err = clSetKernelArg(k, 0, sizeof(cl_mem), &buf_m);
    CHECK(err, "clSetKernelArg(m)");
    err = clSetKernelArg(k, 1, sizeof(cl_mem), &buf_piv);
    CHECK(err, "clSetKernelArg(piv)");
    err = clSetKernelArg(k, 2, sizeof(int), &n);
    CHECK(err, "clSetKernelArg(rows)");
    err = clSetKernelArg(k, 3, sizeof(int), &n);
    CHECK(err, "clSetKernelArg(cols)");
    err = clSetKernelArg(k, 4, sizeof(int), &one);
    CHECK(err, "clSetKernelArg(npiv)");
    err = clSetKernelArg(k, 5, sizeof(int), &step);
    CHECK(err, "clSetKernelArg(step)");
}

int main(void) {
    cl_int err;

    cl_uint num_platforms = 0;
    err = clGetPlatformIDs(0, NULL, &num_platforms);
    CHECK(err, "clGetPlatformIDs(count)");
    cl_platform_id *platforms =
        (cl_platform_id *)malloc(sizeof(cl_platform_id) * num_platforms);
    err = clGetPlatformIDs(num_platforms, platforms, NULL);
    CHECK(err, "clGetPlatformIDs");
    cl_device_id device;
    err = clGetDeviceIDs(platforms[0], CL_DEVICE_TYPE_GPU, 1, &device, NULL);
    CHECK(err, "clGetDeviceIDs");

    cl_context context = clCreateContext(NULL, 1, &device, NULL, NULL, &err);
    CHECK(err, "clCreateContext");
    cl_command_queue queue =
        clCreateCommandQueue(context, device, CL_QUEUE_PROFILING_ENABLE, &err);
    CHECK(err, "clCreateCommandQueue");

    size_t src_len = 0;
    char *src = load_kernel_source("kernel.cl", &src_len);
    cl_program program =
        clCreateProgramWithSource(context, 1, (const char **)&src, &src_len, &err);
    CHECK(err, "clCreateProgramWithSource");
    err = clBuildProgram(program, 1, &device, "-cl-std=CL1.2", NULL, NULL);
    if (err != CL_SUCCESS) {
        char log[16384];
        clGetProgramBuildInfo(program, device, CL_PROGRAM_BUILD_LOG,
                              sizeof(log), log, NULL);
        fprintf(stderr, "build failed:\n%s\n", log);
        exit(1);
    }
    cl_kernel k_diag = clCreateKernel(program, "lud_diag", &err);
    CHECK(err, "clCreateKernel(diag)");
    cl_kernel k_col = clCreateKernel(program, "lud_col", &err);
    CHECK(err, "clCreateKernel(col)");
    cl_kernel k_sub = clCreateKernel(program, "lud_sub", &err);
    CHECK(err, "clCreateKernel(sub)");

    float *m = (float *)malloc(sizeof(float) * N * N);
    init_dominant(m, N, 31);

    size_t bytes = sizeof(float) * N * N;
    cl_mem buf_m = clCreateBuffer(context, CL_MEM_READ_WRITE, bytes, NULL, &err);
    CHECK(err, "clCreateBuffer(m)");
    cl_mem buf_piv =
        clCreateBuffer(context, CL_MEM_READ_WRITE, sizeof(float), NULL, &err);
    CHECK(err, "clCreateBuffer(piv)");

    struct timespec t0, t1;
    clock_gettime(CLOCK_MONOTONIC, &t0);
    err = clEnqueueWriteBuffer(queue, buf_m, CL_TRUE, 0, bytes, m, 0, NULL, NULL);
    CHECK(err, "clEnqueueWriteBuffer");

    for (int step = 0; step < N; step++) {
        int rem = N - step - 1;
        size_t g1 = ((rem > 0 ? rem : 1) + GROUP - 1) / GROUP * GROUP;
        size_t one = 1;
        size_t local1 = GROUP;

        set_common_args(k_diag, buf_m, buf_piv, N, step);
        err = clEnqueueNDRangeKernel(queue, k_diag, 1, NULL, &one, &one,
                                     0, NULL, NULL);
        CHECK(err, "clEnqueueNDRangeKernel(diag)");

        set_common_args(k_col, buf_m, buf_piv, N, step);
        err = clEnqueueNDRangeKernel(queue, k_col, 1, NULL, &g1, &local1,
                                     0, NULL, NULL);
        CHECK(err, "clEnqueueNDRangeKernel(col)");

        set_common_args(k_sub, buf_m, buf_piv, N, step);
        size_t g2[2] = {g1, g1};
        size_t l2[2] = {GROUP, GROUP};
        err = clEnqueueNDRangeKernel(queue, k_sub, 2, NULL, g2, l2,
                                     0, NULL, NULL);
        CHECK(err, "clEnqueueNDRangeKernel(sub)");
    }
    err = clFinish(queue);
    CHECK(err, "clFinish");
    err = clEnqueueReadBuffer(queue, buf_m, CL_TRUE, 0, bytes, m, 0, NULL, NULL);
    CHECK(err, "clEnqueueReadBuffer");
    clock_gettime(CLOCK_MONOTONIC, &t1);

    double secs = (t1.tv_sec - t0.tv_sec) + (t1.tv_nsec - t0.tv_nsec) / 1e9;
    float trace = 0.0f;
    for (int i = 0; i < N; i++) {
        trace += m[i * N + i];
    }
    printf("lud %dx%d: %.3f s, U trace %f\n", N, N, secs, trace);

    clReleaseMemObject(buf_m);
    clReleaseMemObject(buf_piv);
    clReleaseKernel(k_diag);
    clReleaseKernel(k_col);
    clReleaseKernel(k_sub);
    clReleaseProgram(program);
    clReleaseCommandQueue(queue);
    clReleaseContext(context);
    free(platforms);
    free(src);
    free(m);
    return 0;
}
