/* Mandelbrot set, single-threaded C (Table 1 baseline). */
#include <stdio.h>
#include <stdlib.h>
#include <time.h>

#define WIDTH 1024
#define HEIGHT 1024
#define MAX_ITER 1000

static int *alloc_image(int w, int h) {
    int *img = (int *)malloc(sizeof(int) * w * h);
    if (img == NULL) {
        fprintf(stderr, "allocation failed\n");
        exit(1);
    }
    return img;
}

static void mandelbrot(int *out, int width, int height, int max_iter) {
    for (int py = 0; py < height; py++) {
        for (int px = 0; px < width; px++) {
            float x0 = -2.0f + 3.0f * (float)px / (float)width;
            float y0 = -1.5f + 3.0f * (float)py / (float)height;
            float x = 0.0f;
            float y = 0.0f;
            int iter = 0;
            while (x * x + y * y <= 4.0f && iter < max_iter) {
                float xt = x * x - y * y + x0;
                y = 2.0f * x * y + y0;
                x = xt;
                iter = iter + 1;
            }
            out[py * width + px] = iter;
        }
    }
}

static long histogram_total(const int *out, int n) {
    long total = 0;
    for (int i = 0; i < n; i++) {
        total += out[i];
    }
    return total;
}

int main(void) {
    int *img = alloc_image(WIDTH, HEIGHT);

    struct timespec t0, t1;
    clock_gettime(CLOCK_MONOTONIC, &t0);
    mandelbrot(img, WIDTH, HEIGHT, MAX_ITER);
    clock_gettime(CLOCK_MONOTONIC, &t1);

    double secs = (t1.tv_sec - t0.tv_sec) + (t1.tv_nsec - t0.tv_nsec) / 1e9;
    printf("mandelbrot %dx%d: %.3f s, total %ld\n", WIDTH, HEIGHT, secs,
           histogram_total(img, WIDTH * HEIGHT));

    free(img);
    return 0;
}
