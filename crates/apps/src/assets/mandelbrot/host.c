/* Mandelbrot set, C-OpenCL host (Table 1 concurrent version, with
 * kernel.cl). */
#include <stdio.h>
#include <stdlib.h>
#include <string.h>
#include <time.h>
#include <CL/cl.h>

#define WIDTH 1024
#define HEIGHT 1024
#define MAX_ITER 1000
#define GROUP 16
#define CHECK(err, what)                                        \
    if ((err) != CL_SUCCESS) {                                  \
        fprintf(stderr, "%s failed: %d\n", (what), (int)(err)); \
        exit(1);                                                \
    }

static char *load_kernel_source(const char *path, size_t *len) {
    FILE *f = fopen(path, "rb");
    if (f == NULL) {
        fprintf(stderr, "cannot open %s\n", path);
        exit(1);
    }
    fseek(f, 0, SEEK_END);
    long size = ftell(f);
    fseek(f, 0, SEEK_SET);
    char *src = (char *)malloc(size + 1);
    if (fread(src, 1, size, f) != (size_t)size) {
        fprintf(stderr, "short read on %s\n", path);
        exit(1);
    }
    src[size] = '\0';
    fclose(f);
    *len = (size_t)size;
    return src;
}

int main(void) {
    cl_int err;

    cl_uint num_platforms = 0;
    err = clGetPlatformIDs(0, NULL, &num_platforms);
    CHECK(err, "clGetPlatformIDs(count)");
    cl_platform_id *platforms =
        (cl_platform_id *)malloc(sizeof(cl_platform_id) * num_platforms);
    err = clGetPlatformIDs(num_platforms, platforms, NULL);
    CHECK(err, "clGetPlatformIDs");
    cl_device_id device;
    err = clGetDeviceIDs(platforms[0], CL_DEVICE_TYPE_GPU, 1, &device, NULL);
    CHECK(err, "clGetDeviceIDs");

    cl_context context = clCreateContext(NULL, 1, &device, NULL, NULL, &err);
    CHECK(err, "clCreateContext");
    cl_command_queue queue =
        clCreateCommandQueue(context, device, CL_QUEUE_PROFILING_ENABLE, &err);
    CHECK(err, "clCreateCommandQueue");

    size_t src_len = 0;
    char *src = load_kernel_source("kernel.cl", &src_len);
    cl_program program =
        clCreateProgramWithSource(context, 1, (const char **)&src, &src_len, &err);
    CHECK(err, "clCreateProgramWithSource");
    err = clBuildProgram(program, 1, &device, "-cl-std=CL1.2", NULL, NULL);
    if (err != CL_SUCCESS) {
        char log[16384];
        clGetProgramBuildInfo(program, device, CL_PROGRAM_BUILD_LOG,
                              sizeof(log), log, NULL);
        fprintf(stderr, "build failed:\n%s\n", log);
        exit(1);
    }
    cl_kernel kernel = clCreateKernel(program, "mandelbrot", &err);
    CHECK(err, "clCreateKernel");

    int n = WIDTH * HEIGHT;
    int *img = (int *)malloc(sizeof(int) * n);
    size_t bytes = sizeof(int) * n;
    cl_mem buf = clCreateBuffer(context, CL_MEM_READ_WRITE, bytes, NULL, &err);
    CHECK(err, "clCreateBuffer");

    int width = WIDTH;
    int height = HEIGHT;
    int max_iter = MAX_ITER;
    err = clSetKernelArg(kernel, 0, sizeof(cl_mem), &buf);
    CHECK(err, "clSetKernelArg(0)");
    err = clSetKernelArg(kernel, 1, sizeof(int), &n);
    CHECK(err, "clSetKernelArg(1)");
    err = clSetKernelArg(kernel, 2, sizeof(int), &width);
    CHECK(err, "clSetKernelArg(2)");
    err = clSetKernelArg(kernel, 3, sizeof(int), &height);
    CHECK(err, "clSetKernelArg(3)");
    err = clSetKernelArg(kernel, 4, sizeof(int), &max_iter);
    CHECK(err, "clSetKernelArg(4)");

    size_t global[2] = {WIDTH, HEIGHT};
    size_t local[2] = {GROUP, GROUP};
    struct timespec t0, t1;
    clock_gettime(CLOCK_MONOTONIC, &t0);
    err = clEnqueueNDRangeKernel(queue, kernel, 2, NULL, global, local,
                                 0, NULL, NULL);
    CHECK(err, "clEnqueueNDRangeKernel");
    err = clFinish(queue);
    CHECK(err, "clFinish");
    err = clEnqueueReadBuffer(queue, buf, CL_TRUE, 0, bytes, img, 0, NULL, NULL);
    CHECK(err, "clEnqueueReadBuffer");
    clock_gettime(CLOCK_MONOTONIC, &t1);

    double secs = (t1.tv_sec - t0.tv_sec) + (t1.tv_nsec - t0.tv_nsec) / 1e9;
    long total = 0;
    for (int i = 0; i < n; i++) {
        total += img[i];
    }
    printf("mandelbrot %dx%d: %.3f s, total %ld\n", WIDTH, HEIGHT, secs, total);

    clReleaseMemObject(buf);
    clReleaseKernel(kernel);
    clReleaseProgram(program);
    clReleaseCommandQueue(queue);
    clReleaseContext(context);
    free(platforms);
    free(src);
    free(img);
    return 0;
}
