// Mandelbrot set, C with OpenACC annotations.
// Only the outer row loop can be annotated: one gang element per row.
// The explicit-kernel versions use the 2-D layout instead; the paper's
// Figure 3b shows the price of this difference.
void mandelbrot(int* out, int width, int height, int max_iter) {
    #pragma acc parallel loop copyout(out) gang(256) worker(64)
    for (int py = 0; py < height; py++) {
        for (int px = 0; px < width; px++) {
            float x0 = -2.0f + 3.0f * (float)px / (float)width;
            float y0 = -1.5f + 3.0f * (float)py / (float)height;
            float x = 0.0f;
            float y = 0.0f;
            int iter = 0;
            while (x * x + y * y <= 4.0f && iter < max_iter) {
                float xt = x * x - y * y + x0;
                y = 2.0f * x * y + y0;
                x = xt;
                iter = iter + 1;
            }
            out[py * width + px] = iter;
        }
    }
}
