__kernel void mandelbrot(__global int* out, const int n,
                         const int width, const int height,
                         const int max_iter) {
    int px = get_global_id(0);
    int py = get_global_id(1);
    if (px >= width || py >= height) { return; }
    float x0 = -2.0f + 3.0f * (float)px / (float)width;
    float y0 = -1.5f + 3.0f * (float)py / (float)height;
    float x = 0.0f;
    float y = 0.0f;
    int iter = 0;
    while (x * x + y * y <= 4.0f && iter < max_iter) {
        float xt = x * x - y * y + x0;
        y = 2.0f * x * y + y0;
        x = xt;
        iter = iter + 1;
    }
    out[py * width + px] = iter;
}
