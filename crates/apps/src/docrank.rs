//! Document ranking (paper: real-world example, one kernel, invoked many
//! times per run).
//!
//! **Data substitution:** the paper's corpus is unavailable, so documents
//! are synthetic Zipf-shaped term-frequency vectors
//! ([`crate::generate::document_matrix`]) scored against a template by
//! weighted sum with a wanted/unwanted threshold — the same kernel shape
//! (per-document scoring, repeated invocations per run) that drives the
//! paper's Figure 3e effects.
//!
//! The two kernel sources are *deliberately different*, mirroring §7.4's
//! three language-level findings:
//!
//! 1. Ensemble has no NULL, so its kernel zero-initialises its two private
//!    arrays in separate loops before use; the C kernel writes before
//!    reading and fuses everything into one loop.
//! 2. Ensemble separates booleans from integers, costing extra control
//!    flow; C uses the comparison result directly.
//! 3. The C kernel uses `float4` short vectors; Ensemble (in 2015) could
//!    not.
//!
//! Hence: **Ensemble kernel time > C kernel time**, but — because the
//! Ensemble path uses `mov` channels and the data never changes between
//! invocations — **Ensemble transfer time < C transfer time**, the
//! "unexpected consequence of movability".

use baselines::acc::{AccError, AccRunner, AccTarget};
use baselines::host_eval::{array_f32, array_i32, HArg, HVal, HostArray};
use ensemble_actors::{buffered_channel, Stage};
use ensemble_ocl::{
    DeviceData, DeviceSel, KernelSpec, ProfileSink, RecoveryPolicy, ResidentKernelActor, Settings,
};
use oclsim::{
    CommandQueue, Context, DeviceType, MemFlags, NdRange, Platform, ProfileSink as Sink, Program,
};
use std::rc::Rc;

/// Terms per document (fixed vocabulary size; multiple of 4 for `float4`).
pub const TERMS: usize = 64;

/// Kernel dispatches per run (the paper runs the kernel "multiple times
/// during each individual run to collect sufficiently large time values").
pub const ROUNDS: usize = 10;

const GROUP: usize = 64;

/// The Ensemble-generated kernel: scalar, mandatory zero-initialisation in
/// separate loops, explicit boolean flag.
pub const ENSEMBLE_KERNEL_SRC: &str = r#"
__kernel void rank(__global float* docs, __global float* tpl,
                   __global int* out,
                   const int total, const int nterms, const int ndocs,
                   const int step, const float threshold) {
    int d = get_global_id(0);
    if (d >= ndocs) { return; }
    float tf[64];
    float wt[64];
    for (int t = 0; t < nterms; t++) {
        tf[t] = 0.0f;
    }
    for (int t = 0; t < nterms; t++) {
        wt[t] = 0.0f;
    }
    for (int t = 0; t < nterms; t++) {
        tf[t] = docs[d * nterms + t];
    }
    for (int t = 0; t < nterms; t++) {
        wt[t] = tf[t] * tpl[t];
    }
    float score = 0.0f;
    for (int t = 0; t < nterms; t++) {
        score = score + wt[t];
    }
    int wanted = 0;
    if (score > threshold) {
        wanted = 1;
    } else {
        wanted = 0;
    }
    out[d] = wanted;
}
"#;

/// The hand-written C kernel: fused single loop, `float4` vectors, no
/// redundant initialisation, int-as-bool.
pub const C_KERNEL_SRC: &str = r#"
__kernel void rank(__global float4* docs, __global float4* tpl,
                   __global int* out,
                   const int nterms4, const int ndocs,
                   const float threshold) {
    int d = get_global_id(0);
    if (d >= ndocs) { return; }
    float4 acc = (float4)(0.0f);
    for (int t = 0; t < nterms4; t++) {
        acc = acc + docs[d * nterms4 + t] * tpl[t];
    }
    float score = acc.x + acc.y + acc.z + acc.w;
    out[d] = score > threshold ? 1 : 0;
}
"#;

/// OpenACC-annotated C — the kernel scoring is factored into a `score()`
/// helper, which is exactly what makes the (modeled) PGI compiler fail:
/// user functions cannot be inlined into compute regions.
pub const ACC_SRC: &str = include_str!("assets/docrank/acc.c");

/// The OpenMP-style CPU fallback the paper actually measured for Fig. 3e
/// ("CPU results were generated from the OpenMP pragmas and the gcc
/// compiler"): same code with the helper manually inlined.
pub const OMP_SRC: &str = include_str!("assets/docrank/omp.c");

/// Deterministic corpus + template.
pub fn generate(docs: usize) -> (Vec<f32>, Vec<f32>) {
    (
        crate::generate::document_matrix(docs, TERMS, 77),
        crate::generate::document_template(TERMS),
    )
}

/// A threshold that splits the corpus meaningfully.
pub fn threshold() -> f32 {
    2.0
}

/// Sequential reference.
pub fn reference(docs: &[f32], tpl: &[f32], threshold: f32) -> Vec<i32> {
    let ndocs = docs.len() / TERMS;
    (0..ndocs)
        .map(|d| {
            let score: f32 = (0..TERMS).map(|t| docs[d * TERMS + t] * tpl[t]).sum();
            (score > threshold) as i32
        })
        .collect()
}

type RankData = (Vec<f32>, Vec<f32>, Vec<i32>);

/// Ensemble-OpenCL: a `mov` kernel actor invoked [`ROUNDS`] times; the
/// corpus stays on the device between rounds.
pub fn run_ensemble(
    docs: Vec<f32>,
    tpl: Vec<f32>,
    threshold: f32,
    device: DeviceSel,
    profile: ProfileSink,
) -> Vec<i32> {
    let ndocs = docs.len() / TERMS;
    let spec = KernelSpec {
        source: ENSEMBLE_KERNEL_SRC.to_string(),
        kernel_name: "rank".to_string(),
        device,
        out_segs: vec![],
        out_dims: vec![],
        profile: profile.clone(),
        recovery: RecoveryPolicy::default(),
    };
    let (req_out, req_in) =
        buffered_channel::<Settings<DeviceData<RankData>, DeviceData<RankData>>>(4);
    let mut stage = Stage::new("home");
    stage.spawn("Rank", ResidentKernelActor::<RankData>::new(spec, req_in));
    let (result_out, result_in) = buffered_channel::<DeviceData<RankData>>(1);
    stage.spawn_once("Dispatch", move |_| {
        let mut data = DeviceData::host((docs, tpl, vec![0i32; ndocs]));
        let global = ndocs.div_ceil(GROUP) * GROUP;
        for _round in 0..ROUNDS {
            let (to_kernel, kernel_in) = buffered_channel::<DeviceData<RankData>>(1);
            let (from_kernel, back_in) = buffered_channel::<DeviceData<RankData>>(1);
            let mut settings = Settings::new(vec![global], vec![GROUP], kernel_in, from_kernel);
            settings.extra_args = vec![0];
            settings.extra_f32 = vec![threshold];
            req_out.send_moved(settings).unwrap();
            to_kernel.send_moved(data).unwrap();
            data = back_in.receive().unwrap();
        }
        result_out.send_moved(data).unwrap();
    });
    let data = result_in.receive().unwrap();
    let (_docs, _tpl, out) = data
        .into_host_profiled(Some(&profile))
        .expect("read back ranking");
    stage.join();
    out
}

/// C-OpenCL: verbose host; copies the corpus to the device and the flags
/// back on **every** round, as the paper's C version did.
pub fn run_copencl(
    docs: Vec<f32>,
    tpl: Vec<f32>,
    threshold: f32,
    device_type: DeviceType,
    profile: Sink,
) -> Vec<i32> {
    let ndocs = docs.len() / TERMS;
    let platforms = Platform::all();
    let device = platforms
        .iter()
        .flat_map(|p| p.devices(Some(device_type)))
        .next()
        .expect("no such device");
    let context = Context::new(std::slice::from_ref(&device)).expect("context");
    let queue = CommandQueue::new(&context, &device).expect("queue");
    let program = Program::build(&context, C_KERNEL_SRC).expect("program build");
    let kernel = program.create_kernel("rank").expect("kernel");

    let buf_docs = context
        .create_buffer(MemFlags::ReadOnly, docs.len() * 4)
        .expect("buf");
    let buf_tpl = context
        .create_buffer(MemFlags::ReadOnly, tpl.len() * 4)
        .expect("buf");
    let buf_out = context
        .create_buffer(MemFlags::ReadWrite, ndocs * 4)
        .expect("buf");

    let mut result = vec![0i32; ndocs];
    for _round in 0..ROUNDS {
        let ev = queue.write_f32(&buf_docs, &docs).expect("write docs");
        profile.record_command(&ev, queue.device().name());
        let ev = queue.write_f32(&buf_tpl, &tpl).expect("write tpl");
        profile.record_command(&ev, queue.device().name());
        kernel.set_arg_buffer(0, &buf_docs).expect("arg");
        kernel.set_arg_buffer(1, &buf_tpl).expect("arg");
        kernel.set_arg_buffer(2, &buf_out).expect("arg");
        kernel.set_arg_i32(3, (TERMS / 4) as i32).expect("arg");
        kernel.set_arg_i32(4, ndocs as i32).expect("arg");
        kernel.set_arg_f32(5, threshold).expect("arg");
        let global = ndocs.div_ceil(GROUP) * GROUP;
        let ev = queue
            .enqueue_nd_range(&kernel, &NdRange::d1(global, GROUP))
            .expect("dispatch");
        profile.record_command(&ev, queue.device().name());
        let (out, ev) = queue.read_i32(&buf_out).expect("read");
        profile.record_command(&ev, queue.device().name());
        result = out;
    }
    context.release_bytes(docs.len() * 4 + tpl.len() * 4 + ndocs * 4);
    result
}

/// C-OpenACC on the GPU: fails to compile (the paper's PGI result), so
/// Figure 3e has no ACC GPU bars.
pub fn run_openacc(
    docs: Vec<f32>,
    tpl: Vec<f32>,
    threshold: f32,
    target: AccTarget,
    profile: Sink,
) -> Result<Vec<i32>, AccError> {
    run_pragma(ACC_SRC, docs, tpl, threshold, target, profile)
}

/// The OpenMP/gcc CPU fallback: the helper is manually inlined, so it
/// compiles; still slower than the explicit kernels, as in the paper.
pub fn run_openmp_cpu(
    docs: Vec<f32>,
    tpl: Vec<f32>,
    threshold: f32,
    profile: Sink,
) -> Result<Vec<i32>, AccError> {
    run_pragma(OMP_SRC, docs, tpl, threshold, AccTarget::cpu(), profile)
}

fn run_pragma(
    src: &str,
    docs: Vec<f32>,
    tpl: Vec<f32>,
    threshold: f32,
    target: AccTarget,
    profile: Sink,
) -> Result<Vec<i32>, AccError> {
    let ndocs = docs.len() / TERMS;
    let runner = AccRunner::new(src, target, profile)?;
    let hdocs = array_f32(docs);
    let htpl = array_f32(tpl);
    let hout = array_i32(vec![0; ndocs]);
    runner.run(
        "rank_all",
        &[
            HArg::Array(Rc::clone(&hdocs)),
            HArg::Array(Rc::clone(&htpl)),
            HArg::Array(Rc::clone(&hout)),
            HArg::Scalar(HVal::I(TERMS as i64)),
            HArg::Scalar(HVal::I(ndocs as i64)),
            HArg::Scalar(HVal::F(threshold as f64)),
            HArg::Scalar(HVal::I(ROUNDS as i64)),
        ],
    )?;
    let out = match &*hout.borrow() {
        HostArray::I32(v) => v.clone(),
        _ => unreachable!("declared i32"),
    };
    Ok(out)
}

#[cfg(test)]
mod tests {
    use super::*;

    const DOCS: usize = 200;

    #[test]
    fn ensemble_matches_reference() {
        let (docs, tpl) = generate(DOCS);
        let expected = reference(&docs, &tpl, threshold());
        let got = run_ensemble(docs, tpl, threshold(), DeviceSel::gpu(), ProfileSink::new());
        assert_eq!(got, expected);
        // The threshold actually splits the corpus.
        assert!(expected.iter().any(|&v| v == 1));
        assert!(expected.iter().any(|&v| v == 0));
    }

    #[test]
    fn copencl_matches_reference() {
        let (docs, tpl) = generate(DOCS);
        let expected = reference(&docs, &tpl, threshold());
        for ty in [DeviceType::Gpu, DeviceType::Cpu] {
            assert_eq!(
                run_copencl(docs.clone(), tpl.clone(), threshold(), ty, Sink::new()),
                expected
            );
        }
    }

    #[test]
    fn openacc_gpu_fails_to_compile_like_pgi() {
        let (docs, tpl) = generate(16);
        let err = run_openacc(docs, tpl, threshold(), AccTarget::gpu(), Sink::new()).unwrap_err();
        assert!(matches!(err, AccError::CompileFail(_)), "got {err:?}");
    }

    #[test]
    fn openmp_cpu_fallback_matches_reference() {
        let (docs, tpl) = generate(DOCS);
        let expected = reference(&docs, &tpl, threshold());
        let got = run_openmp_cpu(docs, tpl, threshold(), Sink::new()).unwrap();
        assert_eq!(got, expected);
    }

    #[test]
    fn figure_3e_shape_holds() {
        // Ensemble kernel slower (init + scalar + bool separation), but
        // Ensemble transfers smaller (mov keeps the corpus on the device).
        let (docs, tpl) = generate(DOCS);
        let p_ens = ProfileSink::new();
        run_ensemble(
            docs.clone(),
            tpl.clone(),
            threshold(),
            DeviceSel::gpu(),
            p_ens.clone(),
        );
        let p_c = Sink::new();
        run_copencl(docs, tpl, threshold(), DeviceType::Gpu, p_c.clone());
        let ens = p_ens.snapshot();
        let c = p_c.snapshot();
        assert_eq!(ens.dispatches as usize, ROUNDS);
        assert_eq!(c.dispatches as usize, ROUNDS);
        assert!(
            ens.kernel_ns > 1.5 * c.kernel_ns,
            "Ensemble kernel {} not slower than C {}",
            ens.kernel_ns,
            c.kernel_ns
        );
        assert!(
            ens.to_device_ns + ens.from_device_ns < (c.to_device_ns + c.from_device_ns) / 2.0,
            "Ensemble transfers {} not ≪ C transfers {}",
            ens.to_device_ns + ens.from_device_ns,
            c.to_device_ns + c.from_device_ns
        );
    }
}
