//! Language-tolerant tokenizer shared by the C and Ensemble analyzers.
//!
//! Strips `//` and `/* */` comments, keeps `#pragma` lines as tokens (they
//! are code the programmer wrote — the whole point of the OpenACC column),
//! and classifies tokens as words, numbers, strings or operators.

/// One token with its source line.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct CodeToken {
    /// Token text (operators are normalised multi-char strings).
    pub text: String,
    /// 1-based source line.
    pub line: u32,
    /// True for identifier/keyword-shaped tokens.
    pub is_word: bool,
}

/// Tokenize a source text. Never fails: unknown characters become
/// single-character operator tokens (the analyzers just ignore them).
pub fn tokenize(src: &str) -> Vec<CodeToken> {
    let chars: Vec<char> = src.chars().collect();
    let mut out = Vec::new();
    let mut i = 0usize;
    let mut line = 1u32;

    let push = |out: &mut Vec<CodeToken>, text: String, line: u32, is_word: bool| {
        out.push(CodeToken {
            text,
            line,
            is_word,
        });
    };

    while i < chars.len() {
        let c = chars[i];
        if c == '\n' {
            line += 1;
            i += 1;
            continue;
        }
        if c.is_whitespace() {
            i += 1;
            continue;
        }
        // Comments.
        if c == '/' && i + 1 < chars.len() {
            if chars[i + 1] == '/' {
                while i < chars.len() && chars[i] != '\n' {
                    i += 1;
                }
                continue;
            }
            if chars[i + 1] == '*' {
                i += 2;
                while i + 1 < chars.len() && !(chars[i] == '*' && chars[i + 1] == '/') {
                    if chars[i] == '\n' {
                        line += 1;
                    }
                    i += 1;
                }
                i = (i + 2).min(chars.len());
                continue;
            }
        }
        // Preprocessor lines: tokenize the words so `#pragma` counts.
        if c == '#' {
            let start_line = line;
            let mut text = String::from("#");
            i += 1;
            while i < chars.len() && (chars[i].is_alphanumeric() || chars[i] == '_') {
                text.push(chars[i]);
                i += 1;
            }
            push(&mut out, text, start_line, true);
            continue;
        }
        // Strings and chars.
        if c == '"' || c == '\'' {
            let quote = c;
            let start_line = line;
            let mut text = String::new();
            text.push(quote);
            i += 1;
            while i < chars.len() && chars[i] != quote {
                if chars[i] == '\\' {
                    text.push(chars[i]);
                    i += 1;
                    if i >= chars.len() {
                        break;
                    }
                }
                if chars[i] == '\n' {
                    line += 1;
                }
                text.push(chars[i]);
                i += 1;
            }
            text.push(quote);
            i = (i + 1).min(chars.len());
            push(&mut out, text, start_line, false);
            continue;
        }
        // Words.
        if c.is_alphanumeric() || c == '_' {
            let start_line = line;
            let mut text = String::new();
            let is_word = c.is_alphabetic() || c == '_';
            while i < chars.len()
                && (chars[i].is_alphanumeric() || chars[i] == '_' || chars[i] == '.')
            {
                // Allow `1.5f` style numbers but stop words at `.`.
                if chars[i] == '.' && is_word {
                    break;
                }
                text.push(chars[i]);
                i += 1;
            }
            push(&mut out, text, start_line, is_word);
            continue;
        }
        // Multi-char operators (longest match first).
        const OPS3: &[&str] = &["<<=", ">>=", "..."];
        const OPS2: &[&str] = &[
            ":=", "==", "!=", "<=", ">=", "&&", "||", "+=", "-=", "*=", "/=", "%=", "++", "--",
            "<<", ">>", "->", "..",
        ];
        let rest: String = chars[i..chars.len().min(i + 3)].iter().collect();
        let mut matched = None;
        for op in OPS3 {
            if rest.starts_with(op) {
                matched = Some(op.to_string());
                break;
            }
        }
        if matched.is_none() {
            for op in OPS2 {
                if rest.starts_with(op) {
                    matched = Some(op.to_string());
                    break;
                }
            }
        }
        let text = matched.unwrap_or_else(|| c.to_string());
        i += text.chars().count();
        push(&mut out, text, line, false);
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    fn texts(src: &str) -> Vec<String> {
        tokenize(src).into_iter().map(|t| t.text).collect()
    }

    #[test]
    fn words_numbers_operators() {
        assert_eq!(
            texts("x := y + 1.5f;"),
            vec!["x", ":=", "y", "+", "1.5f", ";"]
        );
    }

    #[test]
    fn comments_are_stripped_but_lines_tracked() {
        let toks = tokenize("a\n// gone\n/* multi\nline */\nb");
        assert_eq!(toks.len(), 2);
        assert_eq!(toks[0].line, 1);
        assert_eq!(toks[1].line, 5);
    }

    #[test]
    fn strings_are_single_tokens() {
        let toks = tokenize(r#"printString("hello; // world");"#);
        assert_eq!(toks.len(), 5); // printString ( "..." ) ;
        assert!(!toks[2].is_word);
    }

    #[test]
    fn pragma_becomes_a_word_token() {
        let toks = tokenize("#pragma acc parallel loop");
        assert_eq!(toks[0].text, "#pragma");
        assert!(toks[0].is_word);
        assert_eq!(toks[1].text, "acc");
    }

    #[test]
    fn compound_assignment_is_one_token() {
        assert_eq!(texts("a <<= 2")[1], "<<=");
        assert_eq!(texts("a := 2")[1], ":=");
    }

    #[test]
    fn range_operator_for_ensemble_loops() {
        assert_eq!(texts("for i = 0 .. 9 do")[4], "..");
    }

    #[test]
    fn unknown_characters_do_not_panic() {
        assert!(!tokenize("a @ b § c").is_empty());
    }
}
