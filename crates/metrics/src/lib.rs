//! # code-metrics — the Table 1 analyzers
//!
//! Quantitative code-complexity metrics over the evaluation sources,
//! regenerating Table 1 of the paper ("Difference Between Single Threaded
//! and Concurrent Code per Approach"):
//!
//! * **Lines of code** — logical lines: at least one token after comment
//!   stripping.
//! * **McCabe cyclomatic complexity** — decision points (`if`, loops,
//!   `case`, short-circuit operators, ternaries) plus one per function
//!   body, summed over the whole application, as the paper does.
//! * **ABC** — assignments / branches (calls, allocations) / conditions
//!   (comparisons, `else`), reported as the rounded vector magnitude
//!   `√(A² + B² + C²)` per Fitzpatrick's formulation.
//!
//! Two syntaxes are supported: the C-like dialect (sequential C, OpenCL
//! host C, OpenCL kernel C, OpenACC-annotated C) and the Ensemble language
//! (the `.ens` sources). The analyzers are token-based — they do not need
//! a full parse, which keeps them honest about measuring *source text*,
//! exactly what the paper's metrics measured.

#![warn(missing_docs)]

pub mod table;
pub mod tokenizer;

pub use table::{Delta, Table1Row};
pub use tokenizer::{tokenize, CodeToken};

/// Which language's keyword set to use.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Lang {
    /// C-like sources: `.c`, `.cl`, OpenACC-annotated C.
    C,
    /// Ensemble sources: `.ens`.
    Ensemble,
}

/// The measured metrics of one source (or source set).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct Metrics {
    /// Logical lines of code.
    pub loc: usize,
    /// McCabe cyclomatic complexity (whole application).
    pub cyclomatic: usize,
    /// ABC magnitude, rounded to the nearest integer.
    pub abc: usize,
    /// ABC components for inspection: assignments.
    pub assignments: usize,
    /// ABC components: branches (calls + allocations).
    pub branches: usize,
    /// ABC components: conditions.
    pub conditions: usize,
}

impl Metrics {
    /// Sum two measurements (e.g. host file + kernel file).
    pub fn add(&self, other: &Metrics) -> Metrics {
        let a = self.assignments + other.assignments;
        let b = self.branches + other.branches;
        let c = self.conditions + other.conditions;
        Metrics {
            loc: self.loc + other.loc,
            cyclomatic: self.cyclomatic + other.cyclomatic,
            abc: abc_magnitude(a, b, c),
            assignments: a,
            branches: b,
            conditions: c,
        }
    }
}

fn abc_magnitude(a: usize, b: usize, c: usize) -> usize {
    let m = ((a * a + b * b + c * c) as f64).sqrt();
    m.round() as usize
}

/// Measure one source text.
pub fn measure(src: &str, lang: Lang) -> Metrics {
    let tokens = tokenize(src);
    let loc = count_loc(&tokens);
    let (cyclomatic, assignments, branches, conditions) = match lang {
        Lang::C => analyze_c(&tokens),
        Lang::Ensemble => analyze_ensemble(&tokens),
    };
    Metrics {
        loc,
        cyclomatic,
        abc: abc_magnitude(assignments, branches, conditions),
        assignments,
        branches,
        conditions,
    }
}

/// Measure a set of files that together form one application
/// (e.g. OpenCL host `.c` + kernel `.cl`).
pub fn measure_files(files: &[(&str, Lang)]) -> Metrics {
    let mut acc = Metrics::default();
    for (src, lang) in files {
        acc = acc.add(&measure(src, *lang));
    }
    acc
}

fn count_loc(tokens: &[CodeToken]) -> usize {
    let mut lines: Vec<u32> = tokens.iter().map(|t| t.line).collect();
    lines.sort_unstable();
    lines.dedup();
    lines.len()
}

const C_DECISION_KEYWORDS: &[&str] = &["if", "for", "while", "case", "do"];
const C_FUNC_BLACKLIST: &[&str] = &[
    "if", "for", "while", "switch", "return", "sizeof", "case", "do", "else",
];

fn analyze_c(tokens: &[CodeToken]) -> (usize, usize, usize, usize) {
    let mut decisions = 0usize;
    let mut functions = 0usize;
    let mut assignments = 0usize;
    let mut branches = 0usize;
    let mut conditions = 0usize;
    for (i, t) in tokens.iter().enumerate() {
        match &t.text[..] {
            w if C_DECISION_KEYWORDS.contains(&w) && t.is_word => decisions += 1,
            "&&" | "||" | "?" => decisions += 1,
            "else" => conditions += 1,
            "==" | "!=" | "<" | ">" | "<=" | ">=" => conditions += 1,
            "=" | "+=" | "-=" | "*=" | "/=" | "%=" | "<<=" | ">>=" | "++" | "--" => {
                assignments += 1
            }
            // A call or a function definition: `ident (`.
            "(" if i > 0
                && tokens[i - 1].is_word
                && !C_FUNC_BLACKLIST.contains(&tokens[i - 1].text.as_str()) =>
            {
                if is_c_definition(tokens, i) {
                    functions += 1;
                } else {
                    branches += 1;
                }
            }
            _ => {}
        }
    }
    (
        decisions + functions.max(1),
        assignments,
        branches,
        conditions,
    )
}

fn is_c_definition(tokens: &[CodeToken], open: usize) -> bool {
    // `ident (` where the token before `ident` is also a word (the return
    // type or a qualifier) and the matching `)` is followed by `{`.
    if open < 2 {
        return false;
    }
    if !tokens[open - 2].is_word {
        return false;
    }
    let mut depth = 0usize;
    for (k, t) in tokens.iter().enumerate().skip(open) {
        match t.text.as_str() {
            "(" => depth += 1,
            ")" => {
                depth -= 1;
                if depth == 0 {
                    return tokens.get(k + 1).map(|n| n.text == "{").unwrap_or(false);
                }
            }
            _ => {}
        }
    }
    false
}

const ENS_DECISION_KEYWORDS: &[&str] = &["if", "for", "while", "and", "or"];
const ENS_BODY_KEYWORDS: &[&str] = &["behaviour", "constructor", "boot"];

fn analyze_ensemble(tokens: &[CodeToken]) -> (usize, usize, usize, usize) {
    let mut decisions = 0usize;
    let mut functions = 0usize;
    let mut assignments = 0usize;
    let mut branches = 0usize;
    let mut conditions = 0usize;
    for (i, t) in tokens.iter().enumerate() {
        match t.text.as_str() {
            w if ENS_DECISION_KEYWORDS.contains(&w) && t.is_word => decisions += 1,
            w if ENS_BODY_KEYWORDS.contains(&w) && t.is_word => functions += 1,
            "else" => conditions += 1,
            "==" | "!=" | "<" | ">" | "<=" | ">=" => conditions += 1,
            ":=" | "=" | "+=" | "-=" => assignments += 1,
            "new" => branches += 1,
            "send" | "receive" | "connect" => branches += 1,
            "(" if i > 0
                && tokens[i - 1].is_word
                && !ENS_BODY_KEYWORDS.contains(&tokens[i - 1].text.as_str())
                && !ENS_DECISION_KEYWORDS.contains(&tokens[i - 1].text.as_str())
                && tokens[i - 1].text != "new" =>
            {
                branches += 1;
            }
            _ => {}
        }
    }
    (
        decisions + functions.max(1),
        assignments,
        branches,
        conditions,
    )
}

#[cfg(test)]
mod tests {
    use super::*;

    const C_SNIPPET: &str = r#"
// a comment-only line
int square(int x) {
    return x * x; /* inline */
}

int main(void) {
    int total = 0;
    for (int i = 0; i < 10; i++) {
        if (i % 2 == 0 && i > 2) {
            total += square(i);
        } else {
            total--;
        }
    }
    return total;
}
"#;

    #[test]
    fn c_loc_ignores_blank_and_comment_lines() {
        let m = measure(C_SNIPPET, Lang::C);
        assert_eq!(m.loc, 14);
    }

    #[test]
    fn c_cyclomatic_counts_decisions_and_functions() {
        let m = measure(C_SNIPPET, Lang::C);
        // for + if + && = 3 decisions; 2 function definitions.
        assert_eq!(m.cyclomatic, 5);
    }

    #[test]
    fn c_abc_components() {
        let m = measure(C_SNIPPET, Lang::C);
        // assignments: total=0, i=0 (in for), i++, total+=, total-- → 5
        assert_eq!(m.assignments, 5);
        // branches: the square(i) call → 1
        assert_eq!(m.branches, 1);
        // conditions: <, ==, >, else → 4
        assert_eq!(m.conditions, 4);
        assert_eq!(m.abc, 6); // √(25+1+16) ≈ 6.48 → 6
    }

    const ENS_SNIPPET: &str = r#"
type Isnd is interface(out integer output)
stage home {
    actor snd presents Isnd {
        value = 1;
        constructor() {}
        behaviour {
            send value on output;
            value := value + 1;
            if value > 10 then {
                stop;
            }
        }
    }
    boot {
        s = new snd();
    }
}
"#;

    #[test]
    fn ensemble_metrics() {
        let m = measure(ENS_SNIPPET, Lang::Ensemble);
        assert_eq!(m.loc, 17);
        // decisions: if → 1; bodies: constructor + behaviour + boot → 3.
        assert_eq!(m.cyclomatic, 4);
        // assignments: value = 1, value := ..., s = ... → 3
        assert_eq!(m.assignments, 3);
        // branches: at least send, receive-less here: send + new → 2.
        assert!(m.branches >= 2);
        // conditions: the `>` comparison.
        assert_eq!(m.conditions, 1);
    }

    #[test]
    fn adding_metrics_recomputes_magnitude() {
        let a = measure(C_SNIPPET, Lang::C);
        let sum = a.add(&a);
        assert_eq!(sum.loc, 2 * a.loc);
        assert_eq!(sum.assignments, 2 * a.assignments);
        // Magnitude is recomputed, not summed.
        assert_eq!(
            sum.abc,
            abc_magnitude(sum.assignments, sum.branches, sum.conditions)
        );
    }

    #[test]
    fn empty_source_measures_zero_loc() {
        let m = measure("\n\n// nothing\n", Lang::C);
        assert_eq!(m.loc, 0);
        assert_eq!(m.assignments, 0);
    }

    #[test]
    fn pragma_lines_count_as_code() {
        // The paper's OpenACC deltas come almost entirely from pragmas.
        let without = measure("void f(int* a) {\n a[0] = 1;\n}", Lang::C);
        let with = measure(
            "void f(int* a) {\n#pragma acc parallel loop\n a[0] = 1;\n}",
            Lang::C,
        );
        assert_eq!(with.loc, without.loc + 1);
    }
}
