//! Table 1 assembly: deltas between single-threaded and concurrent code.

use crate::Metrics;

/// An absolute delta with its percentage change, printed the way Table 1
/// prints them: `154 (142)`.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Delta {
    /// Concurrent minus single-threaded (may be negative).
    pub absolute: i64,
    /// Percentage change relative to the single-threaded value.
    pub percent: i64,
}

impl Delta {
    /// Compute the delta between a baseline and a concurrent measurement.
    pub fn between(single: usize, concurrent: usize) -> Delta {
        let absolute = concurrent as i64 - single as i64;
        let percent = if single == 0 {
            0
        } else {
            (absolute as f64 / single as f64 * 100.0).round() as i64
        };
        Delta { absolute, percent }
    }
}

impl std::fmt::Display for Delta {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "{} ({})", self.absolute, self.percent)
    }
}

/// One row of Table 1: an application under one approach.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Table1Row {
    /// Application name.
    pub application: String,
    /// Approach label: "C", "Ensemble", or "OpenACC".
    pub approach: String,
    /// Lines-of-code delta.
    pub loc: Delta,
    /// Cyclomatic-complexity delta.
    pub cyclomatic: Delta,
    /// ABC delta.
    pub abc: Delta,
}

impl Table1Row {
    /// Build a row from the two measurements.
    pub fn from_metrics(
        application: impl Into<String>,
        approach: impl Into<String>,
        single: &Metrics,
        concurrent: &Metrics,
    ) -> Table1Row {
        Table1Row {
            application: application.into(),
            approach: approach.into(),
            loc: Delta::between(single.loc, concurrent.loc),
            cyclomatic: Delta::between(single.cyclomatic, concurrent.cyclomatic),
            abc: Delta::between(single.abc, concurrent.abc),
        }
    }
}

/// Render rows in the paper's layout (grouped by application, one column
/// triplet per approach).
pub fn render_table(rows: &[Table1Row]) -> String {
    let mut out = String::new();
    out.push_str(&format!(
        "{:<22} {:<10} {:>12} {:>12} {:>12}\n",
        "Application", "Approach", "ΔLoC (%)", "ΔCyclomatic", "ΔABC (%)"
    ));
    out.push_str(&"-".repeat(72));
    out.push('\n');
    for r in rows {
        out.push_str(&format!(
            "{:<22} {:<10} {:>12} {:>12} {:>12}\n",
            r.application,
            r.approach,
            r.loc.to_string(),
            r.cyclomatic.to_string(),
            r.abc.to_string()
        ));
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn delta_signs_and_percentages() {
        let d = Delta::between(108, 262);
        assert_eq!(d.absolute, 154);
        assert_eq!(d.percent, 143);
        let d = Delta::between(80, 72);
        assert_eq!(d.absolute, -8);
        assert_eq!(d.percent, -10);
    }

    #[test]
    fn zero_baseline_does_not_divide_by_zero() {
        let d = Delta::between(0, 5);
        assert_eq!(d.absolute, 5);
        assert_eq!(d.percent, 0);
    }

    #[test]
    fn display_matches_paper_format() {
        assert_eq!(Delta::between(108, 262).to_string(), "154 (143)");
        assert_eq!(Delta::between(80, 72).to_string(), "-8 (-10)");
    }

    #[test]
    fn table_renders_all_rows() {
        let m1 = Metrics {
            loc: 100,
            cyclomatic: 10,
            abc: 50,
            ..Default::default()
        };
        let m2 = Metrics {
            loc: 250,
            cyclomatic: 9,
            abc: 180,
            ..Default::default()
        };
        let row = Table1Row::from_metrics("Matrix Multiplication", "C", &m1, &m2);
        let rendered = render_table(std::slice::from_ref(&row));
        assert!(rendered.contains("Matrix Multiplication"));
        assert!(rendered.contains("150 (150)"));
        assert!(rendered.contains("-1 (-10)"));
    }
}
