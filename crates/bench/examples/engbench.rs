use oclsim::{Platform, Context, CommandQueue, Program, NdRange, MemFlags, DeviceType, Engine};
use std::time::Instant;

fn main() {
    let device = Platform::default_device(DeviceType::Gpu).unwrap();
    let ctx = Context::new(std::slice::from_ref(&device)).unwrap();
    let queue = CommandQueue::new(&ctx, &device).unwrap();
    let src = r#"
    __kernel void mm(__global float* a, __global float* b, __global float* c, const int n) {
        int row = get_global_id(1);
        int col = get_global_id(0);
        float acc = 0.0f;
        for (int k = 0; k < n; k++) { acc += a[row * n + k] * b[k * n + col]; }
        c[row * n + col] = acc;
    }"#;
    let program = Program::build(&ctx, src).unwrap();
    let kernel = program.create_kernel("mm").unwrap();
    let n = 128usize;
    let bytes = n * n * 4;
    let a = ctx.create_buffer(MemFlags::ReadWrite, bytes).unwrap();
    let b = ctx.create_buffer(MemFlags::ReadWrite, bytes).unwrap();
    let c = ctx.create_buffer(MemFlags::ReadWrite, bytes).unwrap();
    queue.write_f32(&a, &vec![1.0f32; n*n]).unwrap();
    queue.write_f32(&b, &vec![2.0f32; n*n]).unwrap();
    kernel.set_arg_buffer(0, &a).unwrap();
    kernel.set_arg_buffer(1, &b).unwrap();
    kernel.set_arg_buffer(2, &c).unwrap();
    kernel.set_arg_i32(3, n as i32).unwrap();
    for engine in [Engine::Stack, Engine::Register, Engine::Stack, Engine::Register] {
        kernel.set_engine(Some(engine));
        let t = Instant::now();
        let ev = queue.enqueue_nd_range(&kernel, &NdRange::d2([n, n], [16, 16])).unwrap();
        let dt = t.elapsed();
        let ops = ev.ops();
        println!("{:>8}: {:?}  ops {}  {:.0}M ops/s", engine.label(), dt, ops, ops as f64 / dt.as_secs_f64() / 1e6);
    }
}
