//! Regenerate Table 1 of the paper from the in-repo application sources.
//!
//! ```text
//! cargo run -p bench --bin table1
//! ```

fn main() {
    println!("Table 1: Difference Between Single Threaded and Concurrent Code per Approach");
    println!("(absolute delta, percentage in parentheses; sources in crates/apps/src/assets)");
    println!();
    print!("{}", bench::table1::render());
}
