//! Regenerate Figures 3a–3e of the paper (plus the movability ablation).
//!
//! ```text
//! cargo run --release -p bench --bin figures            # all, bench sizes
//! cargo run --release -p bench --bin figures -- fig3b   # one figure
//! cargo run --release -p bench --bin figures -- --paper-scale
//! cargo run --release -p bench --bin figures -- --json  # machine-readable
//! ```

use bench::figures::{self, ALL};
use bench::Sizes;

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let paper = args.iter().any(|a| a == "--paper-scale");
    let json = args.iter().any(|a| a == "--json");
    let wanted: Vec<&str> = args
        .iter()
        .filter(|a| !a.starts_with("--"))
        .map(|s| s.as_str())
        .collect();
    let known: Vec<&str> = ALL.iter().map(|(n, _)| *n).chain(["ablation"]).collect();
    if let Some(bad) = wanted.iter().find(|w| !known.contains(w)) {
        eprintln!("error: unknown figure `{bad}`; valid names: {}", known.join(", "));
        std::process::exit(2);
    }
    let sizes = if paper { Sizes::paper() } else { Sizes::bench() };
    if paper {
        eprintln!("note: paper-scale inputs run every work-item through an interpreter; expect long runtimes");
    }
    let mut out = Vec::new();
    for (name, f) in ALL {
        if !wanted.is_empty() && !wanted.contains(&name) {
            continue;
        }
        let fig = f(&sizes);
        if json {
            out.push(fig);
        } else {
            println!("{}", fig.render());
        }
    }
    if wanted.is_empty() || wanted.contains(&"ablation") {
        let fig = figures::ablation_mov(&sizes);
        if json {
            out.push(fig);
        } else {
            println!("{}", fig.render());
        }
    }
    if json {
        println!("{}", serde_json::to_string_pretty(&out).expect("serialise"));
    }
}
