//! Regenerate Figures 3a–3e of the paper (plus the movability ablation).
//!
//! ```text
//! cargo run --release -p bench --bin figures            # all, bench sizes
//! cargo run --release -p bench --bin figures -- fig3b   # one figure
//! cargo run --release -p bench --bin figures -- --paper-scale
//! cargo run --release -p bench --bin figures -- --json  # machine-readable
//! cargo run --release -p bench --bin figures -- fig3c --trace lud.json
//! ```
//!
//! `--trace <path>` records every run of the selected figures into one
//! Chrome `trace_event` JSON file — open it in Perfetto
//! (<https://ui.perfetto.dev>) or `chrome://tracing` to see the device
//! queues, VM actor timelines, and channel waits of each run. The raw
//! (unnormalised) per-run segment totals are printed to stderr; the bars
//! of each figure are those same totals, normalised.
//!
//! `--chaos-seed <N>` runs chaos mode instead of the figures: the five
//! applications under the seed-`N` deterministic fault schedule plus a
//! permanent device-loss failover scenario. Exits non-zero if any run
//! fails or diverges from its fault-free reference.
//!
//! `--kill-seed <N>` runs kill-chaos mode: the five applications under
//! the seed-`N` deterministic actor-kill schedule. Killed actors are
//! restarted by the VM's supervisor from their checkpoints; the run
//! exits non-zero if any output diverges from its fault-free reference
//! or any kill is not matched by an `ActorExit`/`Restart` pair in the
//! trace.
//!
//! `--wallclock` runs the wall-clock engine comparison instead of the
//! figures: all five applications on the stack, register and native
//! execution engines, reporting real host time, interpreted kernel
//! ops/sec, the register-over-stack and native-over-register speedups,
//! and which engine actually executed each run (the trace `engine` tag),
//! writing the machine-readable result to `BENCH_6.json`
//! (`--wallclock-out <path>` overrides; `--repeats <N>` sets runs per
//! engine, default 3). Exits non-zero when any app's engines disagree on
//! output or virtual clock.
//!
//! `--sdc-seed <N>` runs SDC mode instead of the figures: the five
//! applications under a seed-`N` silent-corruption schedule on private
//! zero-origin device lanes (gating 100% detection, byte-identical
//! outputs *and* virtual clocks, and positive repair accounting), plus
//! a straggler workload comparing hedged vs unhedged tail latency
//! (`--tenants <N>` tenants, default 6). Writes the machine-readable
//! result to `BENCH_8.json` (`--sdc-out <path>` overrides) and exits
//! non-zero when any gate fails.
//!
//! `--coexec` runs the proof-guided co-execution bench instead of the
//! figures: matmul and mandelbrot problem-size sweeps comparing each
//! single device against the static/chunked/guided NDRange-splitting
//! policies (reporting the crossover size where co-execution starts to
//! win), plus lud and docrank dispatch chains with and without fused
//! dispatch batching (reporting the charged-launch-overhead reduction).
//! Writes the machine-readable result to `BENCH_9.json` (`--coexec-out
//! <path>` overrides; `--coexec-quick` runs a reduced two-point sweep
//! for CI). Exits non-zero when any co-executed or batched run's output
//! diverges from its single-device reference, the guided policy falls
//! materially behind static, no crossover is found, or batching saves
//! less than 2× of lud's charged launch overhead.
//!
//! `--serve` runs the multi-tenant serving bench instead of the figures:
//! three mixed-application workloads drive an open-loop load at ~2× the
//! admission watermark with seeded kill-chaos in half the tenants
//! (`--tenants <N>` tenants per workload, default 6; `--serve-seed <N>`
//! kill seed, default 1), writing requests/sec, p50/p99 latency,
//! eviction counts and outcome tallies to `BENCH_7.json`
//! (`--serve-out <path>` overrides). Exits non-zero when any chaos-free
//! tenant's output or virtual clock diverges from its solo reference.

use bench::figures::{self, ALL};
use bench::{chaos, coexec, sdc, serve_bench, wallclock, Sizes, TraceSink};

fn run_coexec_mode(sizes: &Sizes, quick: bool, out_path: &str) -> ! {
    eprintln!(
        "coexec mode: {} sweep",
        if quick { "quick (reduced)" } else { "full" }
    );
    match coexec::run_coexec(sizes, quick) {
        Ok(report) => {
            print!("{}", report.render());
            if let Err(e) = std::fs::write(out_path, report.to_json()) {
                eprintln!("error: writing {out_path}: {e}");
                std::process::exit(1);
            }
            eprintln!("coexec: results written to {out_path}");
            if !report.all_consistent() {
                eprintln!(
                    "error: a co-executed or batched run diverged from its \
                     single-device reference, a sweep found no crossover, the \
                     guided policy fell materially behind static, or batching \
                     saved less than the required launch overhead"
                );
                std::process::exit(1);
            }
            std::process::exit(0);
        }
        Err(e) => {
            eprintln!("error: {e}");
            std::process::exit(1);
        }
    }
}

fn run_wallclock_mode(sizes: &Sizes, sizes_label: &str, repeats: usize, out_path: &str) -> ! {
    eprintln!("wall-clock mode: {sizes_label} sizes, {repeats} runs per engine");
    match wallclock::run_wallclock(sizes, sizes_label, repeats) {
        Ok(report) => {
            print!("{}", report.render());
            if let Err(e) = std::fs::write(out_path, report.to_json()) {
                eprintln!("error: writing {out_path}: {e}");
                std::process::exit(1);
            }
            eprintln!("wallclock: results written to {out_path}");
            if !report.all_consistent() {
                eprintln!("error: engines disagreed on output or virtual clock");
                std::process::exit(1);
            }
            std::process::exit(0);
        }
        Err(e) => {
            eprintln!("error: {e}");
            std::process::exit(1);
        }
    }
}

fn run_chaos_mode(seed: u64, sizes: &Sizes) -> ! {
    eprintln!("chaos mode: seed {seed}");
    let mut failed = false;
    match chaos::run_chaos(seed, sizes) {
        Ok(outcomes) => {
            for o in outcomes {
                println!("{}", o.render());
                failed |= !o.matches_reference;
            }
        }
        Err(e) => {
            eprintln!("error: {e}");
            failed = true;
        }
    }
    match chaos::run_failover_chaos(sizes.matmul_n) {
        Ok(o) => {
            println!("{}", o.render());
            failed |= !o.matches_reference || o.failovers == 0;
        }
        Err(e) => {
            eprintln!("error: {e}");
            failed = true;
        }
    }
    std::process::exit(if failed { 1 } else { 0 });
}

fn run_kill_chaos_mode(seed: u64, sizes: &Sizes) -> ! {
    eprintln!("kill-chaos mode: seed {seed}");
    let mut failed = false;
    match chaos::run_kill_chaos(seed, sizes) {
        Ok(outcomes) => {
            for o in outcomes {
                println!("{}", o.render());
                failed |= !o.matches_reference
                    || o.kills == 0
                    || o.exits != o.kills
                    || o.restarts != o.kills;
            }
        }
        Err(e) => {
            eprintln!("error: {e}");
            failed = true;
        }
    }
    std::process::exit(if failed { 1 } else { 0 });
}

fn run_sdc_mode(seed: u64, sizes: &Sizes, tenants: usize, out_path: &str) -> ! {
    eprintln!("sdc mode: seed {seed}, {tenants} straggler tenants");
    match sdc::run_sdc(seed, sizes, tenants) {
        Ok(report) => {
            print!("{}", report.render());
            if let Err(e) = std::fs::write(out_path, report.to_json()) {
                eprintln!("error: writing {out_path}: {e}");
                std::process::exit(1);
            }
            eprintln!("sdc: results written to {out_path}");
            if !report.all_consistent() {
                eprintln!(
                    "error: an injected corruption went undetected, a recovered run \
                     diverged from its fault-free reference, or hedging failed to \
                     improve the straggler p99"
                );
                std::process::exit(1);
            }
            std::process::exit(0);
        }
        Err(e) => {
            eprintln!("error: {e}");
            std::process::exit(1);
        }
    }
}

fn run_serve_mode(tenants: usize, seed: u64, out_path: &str) -> ! {
    eprintln!("serving mode: {tenants} tenants per workload, kill seed {seed}");
    match serve_bench::run_serve(tenants, seed) {
        Ok(report) => {
            print!("{}", report.render());
            if let Err(e) = std::fs::write(out_path, report.to_json()) {
                eprintln!("error: writing {out_path}: {e}");
                std::process::exit(1);
            }
            eprintln!("serve: results written to {out_path}");
            if !report.all_consistent() {
                eprintln!(
                    "error: a chaos-free tenant diverged from its solo reference \
                     (or a workload completed nothing)"
                );
                std::process::exit(1);
            }
            std::process::exit(0);
        }
        Err(e) => {
            eprintln!("error: {e}");
            std::process::exit(1);
        }
    }
}

fn main() {
    let raw: Vec<String> = std::env::args().skip(1).collect();
    let mut args: Vec<String> = Vec::new();
    let mut trace_path: Option<String> = None;
    let mut chaos_seed: Option<u64> = None;
    let mut kill_seed: Option<u64> = None;
    let mut wallclock_mode = false;
    let mut wallclock_out = "BENCH_6.json".to_string();
    let mut repeats = 3usize;
    let mut serve_mode = false;
    let mut serve_tenants = 6usize;
    let mut serve_seed = 1u64;
    let mut serve_out = "BENCH_7.json".to_string();
    let mut sdc_seed: Option<u64> = None;
    let mut sdc_out = "BENCH_8.json".to_string();
    let mut coexec_mode = false;
    let mut coexec_quick = false;
    let mut coexec_out = "BENCH_9.json".to_string();
    let mut it = raw.into_iter();
    while let Some(a) = it.next() {
        if a == "--wallclock" {
            wallclock_mode = true;
        } else if a == "--coexec" {
            coexec_mode = true;
        } else if a == "--coexec-quick" {
            coexec_mode = true;
            coexec_quick = true;
        } else if a == "--coexec-out" {
            match it.next() {
                Some(p) => coexec_out = p,
                None => {
                    eprintln!("error: --coexec-out requires an output file path");
                    std::process::exit(2);
                }
            }
        } else if a == "--wallclock-out" {
            match it.next() {
                Some(p) => wallclock_out = p,
                None => {
                    eprintln!("error: --wallclock-out requires an output file path");
                    std::process::exit(2);
                }
            }
        } else if a == "--repeats" {
            match it.next().and_then(|s| s.parse().ok()) {
                Some(n) if n >= 1 => repeats = n,
                _ => {
                    eprintln!("error: --repeats requires a positive integer");
                    std::process::exit(2);
                }
            }
        } else if a == "--serve" {
            serve_mode = true;
        } else if a == "--tenants" {
            match it.next().and_then(|s| s.parse().ok()) {
                Some(n) if n >= 2 => serve_tenants = n,
                _ => {
                    eprintln!("error: --tenants requires an integer >= 2");
                    std::process::exit(2);
                }
            }
        } else if a == "--serve-seed" {
            match it.next().and_then(|s| s.parse().ok()) {
                Some(s) => serve_seed = s,
                None => {
                    eprintln!("error: --serve-seed requires an integer seed");
                    std::process::exit(2);
                }
            }
        } else if a == "--sdc-seed" {
            match it.next().and_then(|s| s.parse().ok()) {
                Some(s) => sdc_seed = Some(s),
                None => {
                    eprintln!("error: --sdc-seed requires an integer seed");
                    std::process::exit(2);
                }
            }
        } else if a == "--sdc-out" {
            match it.next() {
                Some(p) => sdc_out = p,
                None => {
                    eprintln!("error: --sdc-out requires an output file path");
                    std::process::exit(2);
                }
            }
        } else if a == "--serve-out" {
            match it.next() {
                Some(p) => serve_out = p,
                None => {
                    eprintln!("error: --serve-out requires an output file path");
                    std::process::exit(2);
                }
            }
        } else if a == "--trace" {
            match it.next() {
                Some(p) => trace_path = Some(p),
                None => {
                    eprintln!("error: --trace requires an output file path");
                    std::process::exit(2);
                }
            }
        } else if a == "--chaos-seed" {
            match it.next().and_then(|s| s.parse().ok()) {
                Some(s) => chaos_seed = Some(s),
                None => {
                    eprintln!("error: --chaos-seed requires an integer seed");
                    std::process::exit(2);
                }
            }
        } else if a == "--kill-seed" {
            match it.next().and_then(|s| s.parse().ok()) {
                Some(s) => kill_seed = Some(s),
                None => {
                    eprintln!("error: --kill-seed requires an integer seed");
                    std::process::exit(2);
                }
            }
        } else {
            args.push(a);
        }
    }
    let paper = args.iter().any(|a| a == "--paper-scale");
    let json = args.iter().any(|a| a == "--json");
    let wanted: Vec<&str> = args
        .iter()
        .filter(|a| !a.starts_with("--"))
        .map(|s| s.as_str())
        .collect();
    let known: Vec<&str> = ALL.iter().map(|(n, _)| *n).chain(["ablation"]).collect();
    if let Some(bad) = wanted.iter().find(|w| !known.contains(w)) {
        eprintln!(
            "error: unknown figure `{bad}`; valid names: {}",
            known.join(", ")
        );
        std::process::exit(2);
    }
    let sizes = if paper {
        Sizes::paper()
    } else {
        Sizes::bench()
    };
    if let Some(seed) = chaos_seed {
        run_chaos_mode(seed, &sizes);
    }
    if let Some(seed) = kill_seed {
        run_kill_chaos_mode(seed, &sizes);
    }
    if let Some(seed) = sdc_seed {
        run_sdc_mode(seed, &sizes, serve_tenants, &sdc_out);
    }
    if coexec_mode {
        run_coexec_mode(&sizes, coexec_quick, &coexec_out);
    }
    if wallclock_mode {
        let label = if paper { "paper" } else { "bench" };
        run_wallclock_mode(&sizes, label, repeats, &wallclock_out);
    }
    if serve_mode {
        run_serve_mode(serve_tenants, serve_seed, &serve_out);
    }
    if paper {
        eprintln!("note: paper-scale inputs run every work-item through an interpreter; expect long runtimes");
    }
    let export = if trace_path.is_some() {
        TraceSink::new()
    } else {
        TraceSink::disabled()
    };
    let mut out = Vec::new();
    for (name, f) in ALL {
        if !wanted.is_empty() && !wanted.contains(&name) {
            continue;
        }
        let fig = f(&sizes, &export);
        if json {
            out.push(fig);
        } else {
            println!("{}", fig.render());
        }
    }
    if wanted.is_empty() || wanted.contains(&"ablation") {
        let fig = figures::ablation_mov(&sizes, &export);
        if json {
            out.push(fig);
        } else {
            println!("{}", fig.render());
        }
    }
    if json {
        let figs: Vec<String> = out.iter().map(bench::Figure::to_json).collect();
        println!("[{}]", figs.join(","));
    }
    if let Some(path) = trace_path {
        let events = export.events();
        if let Err(e) = std::fs::write(&path, trace::chrome_json(&events)) {
            eprintln!("error: writing trace to {path}: {e}");
            std::process::exit(1);
        }
        eprintln!(
            "trace: {} events written to {path} (open in Perfetto)",
            events.len()
        );
        // Raw per-run totals, straight from the exported spans — the same
        // aggregation the figure bars are normalised from.
        let mut runs: Vec<String> = Vec::new();
        for e in &events {
            if let Some((_, v)) = e.args.iter().find(|(k, _)| k == "run") {
                if !runs.contains(v) {
                    runs.push(v.clone());
                }
            }
        }
        for r in &runs {
            let evs: Vec<trace::TraceEvent> = events
                .iter()
                .filter(|e| e.args.iter().any(|(k, v)| k == "run" && v == r))
                .cloned()
                .collect();
            let s = trace::Segments::from_events(&evs);
            eprintln!(
                "  {r}: to-dev {} from-dev {} kernel {} vm {} total {} (virtual ns)",
                s.to_device_ns,
                s.from_device_ns,
                s.kernel_ns,
                s.vm_ns,
                s.total_ns()
            );
        }
    }
}
