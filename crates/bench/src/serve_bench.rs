//! Serving-mode benchmark: open-loop load over the multi-tenant server.
//!
//! Three mixed-application workloads drive an [`ensemble_serve::Server`]
//! at roughly 2× its admission watermark, with seeded kill-chaos
//! attached to half the tenants:
//!
//! * **mixed-rr** — round-robin arbitration, generous wait queue, and a
//!   deliberately tight pool watermark so the LUD tenants' resident
//!   `mov` buffers get evicted and transparently re-uploaded under
//!   pressure.
//! * **weighted** — weighted arbitration with alternating 1×/3× weights
//!   over the same mix.
//! * **overload-deadline** — a tiny queue and short deadlines, so the
//!   tail of the arrival schedule terminates in `Rejected` /
//!   `DeadlineExceeded` rather than completing.
//!
//! Every chaos-free completion is compared byte-for-byte against a solo
//! reference run of the same program through a fresh single-tenant
//! server: output lines always, and in eviction-free workloads also the
//! `total_ns` bit pattern (an evicted tenant's lazy re-upload is
//! charged to its own profile, so its modeled time moves while its data
//! never does). Any divergence is a cross-tenant isolation failure and
//! fails the bench (and the CI `serve-chaos` job gating `BENCH_7.json`).

use crate::apps_ens;
use crate::chaos::kill_plan;
use ensemble_serve::{
    latency_percentile, open_loop, ArbiterPolicy, Outcome, Request, ServeConfig, Server,
};
use std::sync::Arc;
use std::time::Duration;

/// One workload's aggregated results.
#[derive(Debug, Clone)]
pub struct WorkloadResult {
    /// Workload name (`mixed-rr`, `weighted`, `overload-deadline`).
    pub name: String,
    /// Requests offered by the load generator.
    pub offered: usize,
    /// Terminal outcomes by class.
    pub completed: usize,
    /// Requests rejected at the admission gate (queue full).
    pub rejected: usize,
    /// Requests rejected over the memory limit.
    pub overloaded: usize,
    /// Requests that missed their deadline (queued or running).
    pub deadline_exceeded: usize,
    /// Requests that failed for any other reason.
    pub failed: usize,
    /// Completed requests per wall-clock second.
    pub rps: f64,
    /// Median latency over every terminal outcome, milliseconds.
    pub p50_ms: f64,
    /// 99th-percentile latency over every terminal outcome, milliseconds.
    pub p99_ms: f64,
    /// Pool evictions performed during the workload.
    pub evictions: u64,
    /// Bytes reclaimed by eviction.
    pub evicted_bytes: u64,
    /// Chaos-free completions whose output or virtual clock diverged
    /// from their solo reference. Must be zero.
    pub clean_tenant_mismatches: usize,
}

impl WorkloadResult {
    /// Serialise as a JSON object (hand-rolled; the workspace has no
    /// JSON library).
    pub fn to_json(&self) -> String {
        format!(
            "{{\"name\":\"{}\",\"offered\":{},\"completed\":{},\"rejected\":{},\
             \"overloaded\":{},\"deadline_exceeded\":{},\"failed\":{},\
             \"rps\":{:.2},\"p50_ms\":{:.3},\"p99_ms\":{:.3},\
             \"evictions\":{},\"evicted_bytes\":{},\"clean_tenant_mismatches\":{}}}",
            trace::escape_json(&self.name),
            self.offered,
            self.completed,
            self.rejected,
            self.overloaded,
            self.deadline_exceeded,
            self.failed,
            self.rps,
            self.p50_ms,
            self.p99_ms,
            self.evictions,
            self.evicted_bytes,
            self.clean_tenant_mismatches,
        )
    }
}

/// The full serving-bench report (`BENCH_7.json`).
#[derive(Debug, Clone)]
pub struct ServeBenchReport {
    /// Tenants per workload.
    pub tenants: usize,
    /// Kill-chaos seed.
    pub seed: u64,
    /// Per-workload results.
    pub workloads: Vec<WorkloadResult>,
}

impl ServeBenchReport {
    /// True when every chaos-free completion matched its solo reference
    /// and every workload completed at least one request.
    pub fn all_consistent(&self) -> bool {
        self.workloads
            .iter()
            .all(|w| w.clean_tenant_mismatches == 0 && w.completed > 0)
    }

    /// Serialise as the `BENCH_7.json` schema.
    pub fn to_json(&self) -> String {
        let ws: Vec<String> = self.workloads.iter().map(WorkloadResult::to_json).collect();
        format!(
            "{{\"schema\":\"bench-serve-v1\",\"tenants\":{},\"seed\":{},\
             \"all_consistent\":{},\"workloads\":[{}]}}",
            self.tenants,
            self.seed,
            self.all_consistent(),
            ws.join(",")
        )
    }

    /// Render as a text table.
    pub fn render(&self) -> String {
        let mut out = String::new();
        out.push_str(&format!(
            "Serving bench ({} tenants per workload, kill seed {})\n",
            self.tenants, self.seed
        ));
        out.push_str(&format!(
            "{:<18} {:>7} {:>9} {:>8} {:>9} {:>9} {:>7} {:>8} {:>8} {:>8}  isolation\n",
            "workload",
            "offered",
            "completed",
            "rejected",
            "overload",
            "deadline",
            "failed",
            "rps",
            "p50 ms",
            "p99 ms"
        ));
        for w in &self.workloads {
            out.push_str(&format!(
                "{:<18} {:>7} {:>9} {:>8} {:>9} {:>9} {:>7} {:>8.1} {:>8.2} {:>8.2}  {}\n",
                w.name,
                w.offered,
                w.completed,
                w.rejected,
                w.overloaded,
                w.deadline_exceeded,
                w.failed,
                w.rps,
                w.p50_ms,
                w.p99_ms,
                if w.clean_tenant_mismatches == 0 {
                    "ok"
                } else {
                    "MISMATCH"
                }
            ));
        }
        let evictions: u64 = self.workloads.iter().map(|w| w.evictions).sum();
        out.push_str(&format!(
            "total evictions: {evictions} ({} bytes reclaimed)\n",
            self.workloads
                .iter()
                .map(|w| w.evicted_bytes)
                .sum::<u64>()
        ));
        out
    }
}

/// The serving mix: three applications at smoke sizes, cycled over the
/// tenants. LUD is the `mov`-heavy one (its factor matrix stays
/// device-resident between kernel rounds), so it is what the pool
/// evicts under the tight `mixed-rr` watermark.
fn mixed_source(slot: usize) -> (&'static str, String) {
    match slot % 3 {
        0 => ("matmul", apps_ens::matmul(16, "GPU")),
        1 => ("reduction", apps_ens::reduction(1 << 10, "GPU")),
        _ => ("lud", apps_ens::lud(16, "GPU")),
    }
}

/// A solo reference: one request through a fresh single-tenant server
/// (same private-lane determinism, no neighbours, no chaos). Returns
/// `(output, total_ns bit pattern)`.
fn solo_reference(source: &str) -> Result<(Vec<String>, u64), String> {
    let server = Arc::new(Server::new(ServeConfig {
        max_active: 1,
        max_waiting: 1,
        ..ServeConfig::default()
    }));
    let report = server
        .submit(Request::new(0, source))
        .map_err(|e| format!("solo reference run failed: {e}"))?;
    Ok((report.output.clone(), report.total_ns().to_bits()))
}

/// Compare every chaos-free completion against its solo reference.
///
/// Outputs must always match byte-for-byte. The virtual clock
/// (`total_ns` bit pattern) is additionally gated when `strict_clock`
/// is set — i.e. in workloads without eviction pressure. Under a tight
/// watermark an evicted tenant's lazy re-upload is (correctly) charged
/// to its own profile, so its modeled time legitimately moves; its
/// data and outputs never do.
fn count_mismatches(
    outcomes: &[Outcome],
    refs: &[(Vec<String>, u64)],
    chaotic: &dyn Fn(u64) -> bool,
    strict_clock: bool,
) -> usize {
    outcomes
        .iter()
        .enumerate()
        .filter(|(i, o)| {
            if chaotic(o.tenant) {
                return false;
            }
            match &o.result {
                Ok(report) => {
                    let (ref_out, ref_ns) = &refs[i % refs.len()];
                    report.output != *ref_out
                        || (strict_clock && report.total_ns().to_bits() != *ref_ns)
                }
                Err(_) => false,
            }
        })
        .count()
}

/// Run one workload: `tenants` requests on an open-loop schedule against
/// a server admitting `config.max_active` at once.
#[allow(clippy::too_many_arguments)]
fn run_workload(
    name: &str,
    tenants: usize,
    seed: u64,
    config: ServeConfig,
    interval: Duration,
    deadline: Option<Duration>,
    weights: bool,
    chaos_in_odd: bool,
    strict_clock: bool,
    refs: &[(Vec<String>, u64)],
) -> WorkloadResult {
    let server = Arc::new(Server::new(config));
    let is_chaotic = move |tenant: u64| chaos_in_odd && tenant % 2 == 1;
    let requests: Vec<Request> = (0..tenants)
        .map(|i| {
            let (_, source) = mixed_source(i);
            let mut req = Request::new(i as u64, source);
            req.deadline = deadline;
            if weights {
                req.weight = if i % 2 == 0 { 1.0 } else { 3.0 };
            }
            if is_chaotic(i as u64) {
                // Same seeding discipline as the kill-chaos bench mode:
                // per-tenant offset, period 17, at most 3 kills.
                req.chaos = Some(kill_plan(seed.wrapping_add(i as u64), 17, 3));
            }
            req
        })
        .collect();
    let offered = requests.len();
    let t0 = std::time::Instant::now();
    let outcomes = open_loop(&server, requests, interval);
    let elapsed = t0.elapsed().as_secs_f64().max(1e-9);
    let stats = server.stats();
    let mismatches = count_mismatches(&outcomes, refs, &is_chaotic, strict_clock);
    WorkloadResult {
        name: name.to_string(),
        offered,
        completed: stats.completed as usize,
        rejected: stats.rejected as usize,
        overloaded: stats.overloaded as usize,
        deadline_exceeded: stats.deadline_exceeded as usize,
        failed: stats.failed as usize,
        rps: stats.completed as f64 / elapsed,
        p50_ms: latency_percentile(&outcomes, 50.0).as_secs_f64() * 1e3,
        p99_ms: latency_percentile(&outcomes, 99.0).as_secs_f64() * 1e3,
        evictions: server.pool().evictions(),
        evicted_bytes: server.pool().evicted_bytes(),
        clean_tenant_mismatches: mismatches,
    }
}

/// Run the three serving workloads with `tenants` tenants each and the
/// given kill-chaos seed. The offered load is ≥2× the admission
/// watermark by construction (`max_active = tenants / 2`, open-loop
/// arrivals).
pub fn run_serve(tenants: usize, seed: u64) -> Result<ServeBenchReport, String> {
    let tenants = tenants.max(2);
    let refs: Vec<(Vec<String>, u64)> = (0..3)
        .map(|slot| solo_reference(&mixed_source(slot).1))
        .collect::<Result<_, _>>()?;
    let half = (tenants / 2).max(1);
    let workloads = vec![
        run_workload(
            "mixed-rr",
            tenants,
            seed,
            ServeConfig {
                max_active: half,
                max_waiting: tenants,
                // Tight enough that LUD's resident factor matrices
                // (n×n f32) overflow it and force evictions.
                mem_watermark_bytes: 2 << 10,
                policy: ArbiterPolicy::RoundRobin,
                ..ServeConfig::default()
            },
            // Simultaneous arrivals: maximum overlap, so concurrent
            // tenants' allocations push past the tight watermark and
            // exercise eviction.
            Duration::ZERO,
            Some(Duration::from_secs(60)),
            false,
            true,
            // Eviction workload: outputs gated byte-for-byte, virtual
            // clocks exempt (re-uploads are charged to the victim).
            false,
            &refs,
        ),
        run_workload(
            "weighted",
            tenants,
            seed.wrapping_add(100),
            ServeConfig {
                max_active: half,
                max_waiting: tenants,
                policy: ArbiterPolicy::Weighted,
                ..ServeConfig::default()
            },
            Duration::from_millis(2),
            Some(Duration::from_secs(60)),
            true,
            true,
            true,
            &refs,
        ),
        run_workload(
            "overload-deadline",
            tenants,
            seed.wrapping_add(200),
            ServeConfig {
                max_active: 1,
                max_waiting: 1,
                policy: ArbiterPolicy::RoundRobin,
                ..ServeConfig::default()
            },
            Duration::from_millis(1),
            // Short enough that queued requests can miss it, long
            // enough that the head of the schedule completes.
            Some(Duration::from_millis(1500)),
            false,
            false,
            true,
            &refs,
        ),
    ];
    Ok(ServeBenchReport {
        tenants,
        seed,
        workloads,
    })
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn workload_json_has_gate_fields() {
        let w = WorkloadResult {
            name: "t".into(),
            offered: 4,
            completed: 3,
            rejected: 1,
            overloaded: 0,
            deadline_exceeded: 0,
            failed: 0,
            rps: 1.5,
            p50_ms: 2.0,
            p99_ms: 9.0,
            evictions: 2,
            evicted_bytes: 1024,
            clean_tenant_mismatches: 0,
        };
        let j = w.to_json();
        assert!(j.contains("\"clean_tenant_mismatches\":0"));
        assert!(j.contains("\"p99_ms\":9.000"));
        trace::json::validate(&format!(
            "{{\"schema\":\"bench-serve-v1\",\"tenants\":4,\"seed\":1,\
             \"all_consistent\":true,\"workloads\":[{j}]}}"
        ))
        .expect("schema is valid JSON");
    }

    #[test]
    fn mixed_sources_cycle_three_apps() {
        assert_eq!(mixed_source(0).0, "matmul");
        assert_eq!(mixed_source(1).0, "reduction");
        assert_eq!(mixed_source(2).0, "lud");
        assert_eq!(mixed_source(3).0, "matmul");
    }
}
