//! Co-execution mode: proof-guided NDRange splitting and fused dispatch
//! batching (`BENCH_9.json`).
//!
//! Two claims are measured and gated here, both consequences of the
//! static proofs the analysis crate attaches to every compiled module:
//!
//! 1. **Co-execution has a crossover point.** For the copy-path apps
//!    whose kernels carry a `Splittable` dimension proof (matmul,
//!    mandelbrot), each sweep size runs single-GPU, single-CPU, and
//!    the three [`oclsim::PolicyKind`] split policies. Every
//!    co-executed run must be **byte-identical** in output to the
//!    single-GPU reference (window execution keeps global ids and
//!    range intrinsics full-size), and beyond some problem size the
//!    best co-executed time must beat the best single device — that
//!    first winning size, stable through the end of the sweep, is the
//!    reported crossover.
//! 2. **Batching a proven chain amortises launch overhead.** For the
//!    resident-buffer apps whose dispatches carry a `ChainRole`
//!    fusion proof (lud's Diag→Col→Sub loop, docrank's rank loop),
//!    a run with [`oclsim::CoexecConfig::batch`] on coalesces the
//!    chain into [`oclsim::DispatchBatch`] sessions: each dispatch
//!    after a batch's first is charged its kernel cost *minus* the
//!    device's fixed launch overhead. The gate requires the charged
//!    launch overhead to drop by at least [`BATCH_GATE`]× versus the
//!    unbatched run, with output again byte-identical.
//!
//! The guided policy must also stay within [`GUIDED_GATE`] of static
//! on the geometric mean over all split points — adaptive chunking is
//! allowed to tie the oracle-fed static split, not to regress it.

use crate::apps_ens::{self, Sizes};
use crate::chaos::CHAOS_LOCK;
use crate::TraceSink;
use ensemble_vm::VmRuntime;
use oclsim::{CoexecConfig, DeviceType, Platform, PolicyKind, ProfileSink};
use trace::{SpanKind, TraceEvent};

/// Batching must cut charged launch overhead by at least this factor.
pub const BATCH_GATE: f64 = 2.0;

/// Geomean(static/guided) must stay at or above this (guided may be at
/// most ~0.5% slower than the static oracle split on the geomean).
pub const GUIDED_GATE: f64 = 0.995;

/// Everything one measured run yields: captured output, the virtual
/// clock, dispatch count, and the run's trace events.
struct Run {
    output: Vec<String>,
    total_ns: f64,
    dispatches: u64,
    events: Vec<TraceEvent>,
}

/// Compile and run one source under `cfg`, with a private trace sink.
fn run_with(src: &str, cfg: CoexecConfig) -> Result<Run, String> {
    let module = ensemble_analysis::compile_source(src, &ensemble_analysis::Options::default())
        .map_err(|e| e.to_string())?;
    let sink = TraceSink::new();
    let profile = ProfileSink::new().with_trace(sink.clone());
    let vm = VmRuntime::with_profile(module, profile);
    vm.set_coexec(cfg);
    let report = vm.run().map_err(|e| e.to_string())?;
    Ok(Run {
        total_ns: report.total_ns(),
        dispatches: report.profile.dispatches,
        output: report.output,
        events: sink.events(),
    })
}

fn policy_cfg(kind: PolicyKind) -> CoexecConfig {
    CoexecConfig {
        policy: Some(kind),
        ..CoexecConfig::default()
    }
}

/// Sum a numeric arg over the run's instants of one kind.
fn sum_arg(events: &[TraceEvent], kind: SpanKind, key: &str) -> f64 {
    events
        .iter()
        .filter(|e| e.kind == kind)
        .map(|e| {
            e.args
                .iter()
                .find(|(k, _)| k == key)
                .and_then(|(_, v)| v.parse::<f64>().ok())
                .unwrap_or(0.0)
        })
        .sum()
}

/// One sweep size for one app: the two single-device baselines and the
/// three split policies, all on the virtual clock.
#[derive(Debug, Clone)]
pub struct SweepPoint {
    /// Problem size (matrix dimension / image side).
    pub size: usize,
    /// Single-device GPU time, virtual ns.
    pub gpu_ns: f64,
    /// Single-device CPU time, virtual ns.
    pub cpu_ns: f64,
    /// Static-split co-execution time, virtual ns.
    pub static_ns: f64,
    /// Chunked-dynamic co-execution time, virtual ns.
    pub chunked_ns: f64,
    /// Guided co-execution time, virtual ns.
    pub guided_ns: f64,
    /// The secondary lane actually took groups in at least one policy
    /// run (false below the `min_items` floor, where dispatch falls
    /// back to single-device).
    pub split_fired: bool,
    /// Every co-executed run's output was byte-identical to the
    /// single-GPU reference (hard gate).
    pub outputs_identical: bool,
}

impl SweepPoint {
    /// Best single-device time.
    pub fn best_single(&self) -> f64 {
        self.gpu_ns.min(self.cpu_ns)
    }

    /// Best co-executed time across the three policies.
    pub fn best_coexec(&self) -> f64 {
        self.static_ns.min(self.chunked_ns).min(self.guided_ns)
    }

    /// Co-execution materially beats the best single device here: at
    /// least 0.1% faster, so sub-nanosecond float noise between the
    /// split and plain dispatch paths never reads as a win.
    pub fn wins(&self) -> bool {
        self.best_coexec() < self.best_single() * 0.999
    }

    fn to_json(&self) -> String {
        format!(
            "{{\"size\":{},\"gpu_ns\":{:.1},\"cpu_ns\":{:.1},\"static_ns\":{:.1},\
             \"chunked_ns\":{:.1},\"guided_ns\":{:.1},\"split_fired\":{},\
             \"outputs_identical\":{},\"coexec_wins\":{}}}",
            self.size,
            self.gpu_ns,
            self.cpu_ns,
            self.static_ns,
            self.chunked_ns,
            self.guided_ns,
            self.split_fired,
            self.outputs_identical,
            self.wins(),
        )
    }
}

/// A size sweep over one app, with its detected crossover.
#[derive(Debug, Clone)]
pub struct AppSweep {
    /// Application name.
    pub app: String,
    /// One point per sweep size, ascending.
    pub points: Vec<SweepPoint>,
    /// Smallest size from which co-execution wins at *every* larger
    /// sweep size too (`None` when the sweep never stabilises a win).
    pub crossover: Option<usize>,
}

impl AppSweep {
    /// The sweep's gate: every point byte-identical and a crossover
    /// exists.
    pub fn ok(&self) -> bool {
        !self.points.is_empty()
            && self.points.iter().all(|p| p.outputs_identical)
            && self.crossover.is_some()
    }

    fn to_json(&self) -> String {
        let pts: Vec<String> = self.points.iter().map(SweepPoint::to_json).collect();
        format!(
            "{{\"app\":\"{}\",\"crossover\":{},\"points\":[{}]}}",
            trace::escape_json(&self.app),
            match self.crossover {
                Some(s) => s.to_string(),
                None => "null".to_string(),
            },
            pts.join(","),
        )
    }

    fn render(&self) -> String {
        let mut out = format!(
            "co-execution sweep: {} (crossover: {})\n\
             {:>6} {:>12} {:>12} {:>12} {:>12} {:>12}  {:>6} {:>7}\n",
            self.app,
            match self.crossover {
                Some(s) => format!("n = {s}"),
                None => "none".to_string(),
            },
            "n",
            "gpu",
            "cpu",
            "static",
            "chunked",
            "guided",
            "wins",
            "output",
        );
        for p in &self.points {
            out.push_str(&format!(
                "{:>6} {:>12.0} {:>12.0} {:>12.0} {:>12.0} {:>12.0}  {:>6} {:>7}\n",
                p.size,
                p.gpu_ns,
                p.cpu_ns,
                p.static_ns,
                p.chunked_ns,
                p.guided_ns,
                if p.wins() { "yes" } else { "no" },
                if p.outputs_identical { "ok" } else { "MISMATCH" },
            ));
        }
        out
    }
}

/// Launch-overhead accounting for one proven dispatch chain, batched
/// versus unbatched.
#[derive(Debug, Clone)]
pub struct BatchChain {
    /// Application name.
    pub app: String,
    /// Kernel dispatches in the unbatched run.
    pub dispatches: u64,
    /// Batch sessions the batched run closed.
    pub batches: u64,
    /// Charged launch overhead without batching, virtual ns
    /// (`dispatches × launch_overhead_ns`).
    pub baseline_launch_ns: f64,
    /// Launch overhead the batch sessions saved, virtual ns.
    pub saved_ns: f64,
    /// Unbatched total time, virtual ns.
    pub unbatched_ns: f64,
    /// Batched total time, virtual ns.
    pub batched_ns: f64,
    /// Output byte-identical between batched and unbatched runs.
    pub outputs_identical: bool,
}

impl BatchChain {
    /// Charged launch overhead with batching, virtual ns.
    pub fn charged_launch_ns(&self) -> f64 {
        (self.baseline_launch_ns - self.saved_ns).max(0.0)
    }

    /// Reduction factor of charged launch overhead (the ≥[`BATCH_GATE`]
    /// gate).
    pub fn reduction_factor(&self) -> f64 {
        let charged = self.charged_launch_ns();
        if charged <= 0.0 {
            f64::INFINITY
        } else {
            self.baseline_launch_ns / charged
        }
    }

    /// The chain's gate: batching actually happened, overhead dropped
    /// by [`BATCH_GATE`]×, the clock got no worse, and output is
    /// byte-identical.
    pub fn ok(&self) -> bool {
        self.batches > 0
            && self.saved_ns > 0.0
            && self.reduction_factor() >= BATCH_GATE
            && self.batched_ns <= self.unbatched_ns
            && self.outputs_identical
    }

    fn to_json(&self) -> String {
        format!(
            "{{\"app\":\"{}\",\"dispatches\":{},\"batches\":{},\
             \"baseline_launch_ns\":{:.1},\"saved_ns\":{:.1},\"charged_launch_ns\":{:.1},\
             \"reduction_factor\":{:.2},\"unbatched_ns\":{:.1},\"batched_ns\":{:.1},\
             \"outputs_identical\":{}}}",
            trace::escape_json(&self.app),
            self.dispatches,
            self.batches,
            self.baseline_launch_ns,
            self.saved_ns,
            self.charged_launch_ns(),
            self.reduction_factor(),
            self.unbatched_ns,
            self.batched_ns,
            self.outputs_identical,
        )
    }

    fn render(&self) -> String {
        format!(
            "{:<12} {:>4} dispatches in {:>3} batches  launch overhead {:>10.0} -> {:>8.0} ns \
             ({:.1}x)  output {}\n",
            self.app,
            self.dispatches,
            self.batches,
            self.baseline_launch_ns,
            self.charged_launch_ns(),
            self.reduction_factor(),
            if self.outputs_identical { "ok" } else { "MISMATCH" },
        )
    }
}

/// The full co-execution report (`BENCH_9.json`).
#[derive(Debug, Clone)]
pub struct CoexecReport {
    /// One size sweep per splittable app.
    pub sweeps: Vec<AppSweep>,
    /// One batching comparison per proven chain app.
    pub chains: Vec<BatchChain>,
}

impl CoexecReport {
    /// Geomean of `static_ns / guided_ns` over every point where the
    /// split actually fired (1.0 when none did).
    pub fn guided_vs_static(&self) -> f64 {
        let ratios: Vec<f64> = self
            .sweeps
            .iter()
            .flat_map(|s| &s.points)
            .filter(|p| p.split_fired && p.guided_ns > 0.0)
            .map(|p| p.static_ns / p.guided_ns)
            .collect();
        if ratios.is_empty() {
            1.0
        } else {
            (ratios.iter().map(|r| r.ln()).sum::<f64>() / ratios.len() as f64).exp()
        }
    }

    /// The mode's overall gate: every sweep crosses over byte-identical,
    /// every chain batches ≥[`BATCH_GATE`]×, and guided holds
    /// [`GUIDED_GATE`] of static on the geomean.
    pub fn all_consistent(&self) -> bool {
        !self.sweeps.is_empty()
            && self.sweeps.iter().all(AppSweep::ok)
            && !self.chains.is_empty()
            && self.chains.iter().all(BatchChain::ok)
            && self.guided_vs_static() >= GUIDED_GATE
    }

    /// Serialise as the `BENCH_9.json` schema.
    pub fn to_json(&self) -> String {
        let sweeps: Vec<String> = self.sweeps.iter().map(AppSweep::to_json).collect();
        let chains: Vec<String> = self.chains.iter().map(BatchChain::to_json).collect();
        format!(
            "{{\"schema\":\"bench-coexec-v1\",\"all_consistent\":{},\
             \"guided_vs_static\":{:.4},\"sweeps\":[{}],\"chains\":[{}]}}",
            self.all_consistent(),
            self.guided_vs_static(),
            sweeps.join(","),
            chains.join(","),
        )
    }

    /// Render as a text table.
    pub fn render(&self) -> String {
        let mut out = String::new();
        for s in &self.sweeps {
            out.push_str(&s.render());
            out.push('\n');
        }
        out.push_str("fused dispatch batching over proven chains:\n");
        for c in &self.chains {
            out.push_str(&c.render());
        }
        out.push_str(&format!(
            "guided vs static geomean {:.4} (gate >= {GUIDED_GATE})\n",
            self.guided_vs_static(),
        ));
        out
    }
}

/// Measure one sweep point: both single devices plus all three policies.
fn sweep_point(size: usize, source: impl Fn(&str) -> String) -> Result<SweepPoint, String> {
    let gpu_src = source("GPU");
    let reference = run_with(&gpu_src, CoexecConfig::default())?;
    let cpu = run_with(&source("CPU"), CoexecConfig::default())?;
    let mut times = [0.0f64; 3];
    let mut split_fired = false;
    let mut outputs_identical = true;
    for (i, kind) in [
        PolicyKind::Static,
        PolicyKind::ChunkedDynamic,
        PolicyKind::Guided,
    ]
    .into_iter()
    .enumerate()
    {
        let run = run_with(&gpu_src, policy_cfg(kind))?;
        times[i] = run.total_ns;
        outputs_identical &= run.output == reference.output;
        split_fired |= sum_arg(&run.events, SpanKind::CoexecSplit, "secondary_groups") > 0.0;
    }
    Ok(SweepPoint {
        size,
        gpu_ns: reference.total_ns,
        cpu_ns: cpu.total_ns,
        static_ns: times[0],
        chunked_ns: times[1],
        guided_ns: times[2],
        split_fired,
        outputs_identical,
    })
}

/// Smallest size from which every later point also wins.
fn stable_crossover(points: &[SweepPoint]) -> Option<usize> {
    let mut cross = None;
    for p in points {
        if p.wins() {
            cross.get_or_insert(p.size);
        } else {
            cross = None;
        }
    }
    cross
}

/// Sweep one app over `ns`, producing its [`AppSweep`].
fn sweep(app: &str, ns: &[usize], source: impl Fn(usize, &str) -> String) -> Result<AppSweep, String> {
    let mut points = Vec::with_capacity(ns.len());
    for &n in ns {
        points.push(
            sweep_point(n, |dev| source(n, dev))
                .map_err(|e| format!("{app} n={n}: {e}"))?,
        );
    }
    let crossover = stable_crossover(&points);
    Ok(AppSweep {
        app: app.to_string(),
        points,
        crossover,
    })
}

/// Batch one proven chain app: unbatched reference versus
/// `CoexecConfig { batch: true }`.
fn chain(app: &str, src: &str) -> Result<BatchChain, String> {
    let unbatched = run_with(src, CoexecConfig::default())?;
    let batched = run_with(
        src,
        CoexecConfig {
            batch: true,
            ..CoexecConfig::default()
        },
    )?;
    let launch = Platform::default_device(DeviceType::Gpu)
        .ok_or("no GPU device in the platform matrix")?
        .cost_model()
        .launch_overhead_ns;
    let batches = batched
        .events
        .iter()
        .filter(|e| e.kind == SpanKind::BatchFused)
        .count() as u64;
    Ok(BatchChain {
        app: app.to_string(),
        dispatches: unbatched.dispatches,
        batches,
        baseline_launch_ns: unbatched.dispatches as f64 * launch,
        saved_ns: sum_arg(&batched.events, SpanKind::BatchFused, "saved_ns"),
        unbatched_ns: unbatched.total_ns,
        batched_ns: batched.total_ns,
        outputs_identical: batched.output == unbatched.output,
    })
}

/// Sweep sizes for the full mode (reach past the crossover for both
/// splittable apps; both are 2D with 16×16 groups, so the secondary's
/// slice granularity is `n/16` group-rows).
const MATMUL_SWEEP: [usize; 5] = [96, 128, 160, 224, 288];
const MANDEL_SWEEP: [usize; 5] = [96, 128, 160, 224, 288];

/// Reduced sweep for the CI smoke job: one point below the expected
/// crossover, one beyond it.
const MATMUL_SWEEP_QUICK: [usize; 2] = [96, 288];
const MANDEL_SWEEP_QUICK: [usize; 2] = [96, 288];

/// Entry point for `figures --coexec`: size sweeps over the splittable
/// apps plus batching over the proven chains. `quick` selects the
/// reduced CI sweep.
pub fn run_coexec(sizes: &Sizes, quick: bool) -> Result<CoexecReport, String> {
    let _serial = CHAOS_LOCK.lock().unwrap_or_else(|e| e.into_inner());
    let (mm, mb): (&[usize], &[usize]) = if quick {
        (&MATMUL_SWEEP_QUICK, &MANDEL_SWEEP_QUICK)
    } else {
        (&MATMUL_SWEEP, &MANDEL_SWEEP)
    };
    let iters = sizes.mandel_iters;
    let sweeps = vec![
        sweep("matmul", mm, apps_ens::matmul)?,
        sweep("mandelbrot", mb, |n, dev| apps_ens::mandelbrot(n, iters, dev))?,
    ];
    let chains = vec![
        chain("lud", &apps_ens::lud(sizes.lud_n, "GPU"))?,
        chain(
            "docrank",
            &apps_ens::docrank(sizes.docrank_docs, sizes.docrank_rounds, "GPU"),
        )?,
    ];
    Ok(CoexecReport { sweeps, chains })
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn report_json_is_valid_and_gated() {
        let report = CoexecReport {
            sweeps: vec![AppSweep {
                app: "matmul".into(),
                points: vec![
                    SweepPoint {
                        size: 96,
                        gpu_ns: 100.0,
                        cpu_ns: 900.0,
                        static_ns: 100.0,
                        chunked_ns: 100.0,
                        guided_ns: 100.0,
                        split_fired: true,
                        outputs_identical: true,
                    },
                    SweepPoint {
                        size: 288,
                        gpu_ns: 1000.0,
                        cpu_ns: 9000.0,
                        static_ns: 900.0,
                        chunked_ns: 920.0,
                        guided_ns: 890.0,
                        split_fired: true,
                        outputs_identical: true,
                    },
                ],
                crossover: Some(288),
            }],
            chains: vec![BatchChain {
                app: "lud".into(),
                dispatches: 9,
                batches: 1,
                baseline_launch_ns: 81_000.0,
                saved_ns: 72_000.0,
                unbatched_ns: 500_000.0,
                batched_ns: 428_000.0,
                outputs_identical: true,
            }],
        };
        assert!(report.all_consistent());
        assert!(report.guided_vs_static() >= GUIDED_GATE);
        assert!((report.chains[0].reduction_factor() - 9.0).abs() < 1e-9);
        trace::json::validate(&report.to_json()).unwrap();
    }

    #[test]
    fn crossover_requires_a_stable_win() {
        let point = |size, coexec: f64| SweepPoint {
            size,
            gpu_ns: 100.0,
            cpu_ns: 200.0,
            static_ns: coexec,
            chunked_ns: coexec,
            guided_ns: coexec,
            split_fired: true,
            outputs_identical: true,
        };
        // Win at 64 is transient (lost again at 96): crossover is 128.
        let pts = [point(64, 90.0), point(96, 110.0), point(128, 80.0)];
        assert_eq!(stable_crossover(&pts), Some(128));
        assert_eq!(stable_crossover(&pts[..2]), None);
        assert_eq!(stable_crossover(&[]), None);
    }

    #[test]
    fn matmul_point_beyond_crossover_wins_byte_identically() {
        let _serial = CHAOS_LOCK.lock().unwrap_or_else(|e| e.into_inner());
        // 224 is the first stable-crossover size in the full sweep; it
        // keeps this test affordable in debug builds.
        let p = sweep_point(224, |dev| apps_ens::matmul(224, dev)).unwrap();
        assert!(p.outputs_identical, "coexec output must match single-GPU");
        assert!(p.split_fired, "secondary lane must take groups");
        assert!(
            p.wins(),
            "coexec {} must beat best single {}",
            p.best_coexec(),
            p.best_single()
        );
    }

    #[test]
    fn lud_chain_batching_reduces_launch_overhead() {
        let _serial = CHAOS_LOCK.lock().unwrap_or_else(|e| e.into_inner());
        let c = chain("lud", &apps_ens::lud(48, "GPU")).unwrap();
        assert!(c.outputs_identical, "batched output must match unbatched");
        assert!(c.batches > 0, "chain proof must open a batch");
        assert!(
            c.reduction_factor() >= BATCH_GATE,
            "launch overhead factor {} below gate",
            c.reduction_factor()
        );
        assert!(c.batched_ns <= c.unbatched_ns);
    }
}
