//! # bench — the figure and table harness
//!
//! Regenerates every evaluation artefact of the paper:
//!
//! * **Table 1** (`--bin table1`): code-complexity deltas over the real
//!   application sources in `ensemble-apps/src/assets/`.
//! * **Figures 3a–3e** (`--bin figures`): normalised stacked execution
//!   bars — *move data to device / move data from device / kernel /
//!   overhead* — for Ensemble-OpenCL (through the real compiler + VM),
//!   C-OpenCL (verbose host code) and C-OpenACC (the pragma engine), on
//!   the simulated GPU and CPU.
//!
//! Times are virtual nanoseconds from the deterministic cost model, so
//! every figure is exactly reproducible. Bench-scale sizes default to
//! reduced inputs (the kernels are interpreted); `--paper-scale` selects
//! the paper's original sizes.
//!
//! The `figures` binary also has a **chaos mode** (`--chaos-seed N`): all
//! five applications run under a seeded deterministic fault schedule on
//! the simulated GPU — plus a permanent device-loss scenario — and the
//! harness asserts every run still matches its fault-free reference (see
//! [`chaos`]), a **serving mode** (`--serve`): open-loop multi-tenant
//! load with kill-chaos in half the tenants, gating cross-tenant
//! isolation byte-for-byte (see [`serve_bench`]), and an **SDC mode**
//! (`--sdc-seed N`): seeded silent bit flips on all five apps (gating
//! 100% detection and byte-identical recovery) plus a straggler-hedging
//! tail-latency comparison (see [`sdc`]).

#![warn(missing_docs)]

use ensemble_vm::VmRuntime;
use oclsim::ProfileSink;
pub use trace::TraceSink;

pub mod apps_ens;
pub mod chaos;
pub mod coexec;
pub mod figures;
pub mod sdc;
pub mod serve_bench;
pub mod table1;
pub mod wallclock;

pub use apps_ens::Sizes;

/// One stacked bar of a figure.
#[derive(Debug, Clone)]
pub struct Bar {
    /// e.g. `"Ensemble GPU"`.
    pub label: String,
    /// Host→device transfer time.
    pub to_device: f64,
    /// Device→host transfer time.
    pub from_device: f64,
    /// Kernel execution time.
    pub kernel: f64,
    /// Everything else (VM interpretation, host API overhead).
    pub overhead: f64,
}

impl Bar {
    /// Total bar height.
    pub fn total(&self) -> f64 {
        self.to_device + self.from_device + self.kernel + self.overhead
    }

    /// Divide every segment by `by`.
    pub fn scale(&mut self, by: f64) {
        self.to_device /= by;
        self.from_device /= by;
        self.kernel /= by;
        self.overhead /= by;
    }

    /// Serialise as a JSON object (the workspace has no JSON library;
    /// [`trace::json::validate`] checks this format in tests).
    pub fn to_json(&self) -> String {
        format!(
            "{{\"label\":\"{}\",\"to_device\":{},\"from_device\":{},\"kernel\":{},\"overhead\":{}}}",
            trace::escape_json(&self.label),
            self.to_device,
            self.from_device,
            self.kernel,
            self.overhead
        )
    }
}

/// A complete figure: bars + caveats.
#[derive(Debug, Clone)]
pub struct Figure {
    /// Figure id, e.g. `"3a"`.
    pub id: String,
    /// Title, e.g. `"Matrix Multiplication"`.
    pub title: String,
    /// Stacked bars in display order.
    pub bars: Vec<Bar>,
    /// Notes (e.g. "C-OpenACC failed to compile — no GPU bars").
    pub notes: Vec<String>,
}

impl Figure {
    /// Normalise all bars to the bar labelled `reference` (the paper
    /// normalises to Ensemble GPU).
    pub fn normalise(&mut self, reference: &str) {
        let total = self
            .bars
            .iter()
            .find(|b| b.label == reference)
            .map(|b| b.total())
            .unwrap_or(1.0);
        if total > 0.0 {
            for b in &mut self.bars {
                b.scale(total);
            }
        }
    }

    /// Find a bar by label.
    pub fn bar(&self, label: &str) -> Option<&Bar> {
        self.bars.iter().find(|b| b.label == label)
    }

    /// Serialise as a JSON object.
    pub fn to_json(&self) -> String {
        let bars: Vec<String> = self.bars.iter().map(Bar::to_json).collect();
        let notes: Vec<String> = self
            .notes
            .iter()
            .map(|n| format!("\"{}\"", trace::escape_json(n)))
            .collect();
        format!(
            "{{\"id\":\"{}\",\"title\":\"{}\",\"bars\":[{}],\"notes\":[{}]}}",
            trace::escape_json(&self.id),
            trace::escape_json(&self.title),
            bars.join(","),
            notes.join(",")
        )
    }

    /// Render the figure as a text table plus ASCII stacked bars.
    pub fn render(&self) -> String {
        let mut out = String::new();
        out.push_str(&format!("Figure {} — {}\n", self.id, self.title));
        out.push_str(&format!(
            "{:<16} {:>8} {:>9} {:>8} {:>9} {:>8}\n",
            "", "to-dev", "from-dev", "kernel", "overhead", "total"
        ));
        for b in &self.bars {
            out.push_str(&format!(
                "{:<16} {:>8.3} {:>9.3} {:>8.3} {:>9.3} {:>8.3}  ",
                b.label,
                b.to_device,
                b.from_device,
                b.kernel,
                b.overhead,
                b.total()
            ));
            // 1.0 (the reference bar) = 40 characters.
            let seg = |v: f64, c: char| -> String {
                std::iter::repeat_n(c, (v * 40.0).round() as usize).collect()
            };
            out.push_str(&seg(b.to_device, '>'));
            out.push_str(&seg(b.kernel, '#'));
            out.push_str(&seg(b.from_device, '<'));
            out.push_str(&seg(b.overhead, '.'));
            out.push('\n');
        }
        for n in &self.notes {
            out.push_str(&format!("  note: {n}\n"));
        }
        out.push_str("  legend: > to-device   # kernel   < from-device   . overhead\n");
        out
    }
}

/// Modeled host overhead for native (C) host code: a fixed setup cost plus
/// a per-command cost. Tiny compared to the VM's interpretation overhead —
/// which is the paper's point about the Ensemble bars being taller.
pub fn c_host_overhead_ns(dispatches: u64, transfers: u64) -> f64 {
    5_000.0 + 200.0 * (dispatches + transfers) as f64
}

/// Run an Ensemble source through the compiler + VM and produce a bar.
///
/// The run records into a **private** [`TraceSink`] (the process-wide
/// simulated devices are shared by concurrent runs, so events are captured
/// at the profile level, never by attaching to the global queues), and the
/// bar is the trace's per-segment aggregation — so a printed breakdown and
/// an exported timeline of the same run agree by construction.
///
/// When `export` is enabled, the run's events are appended to it with the
/// track prefixed by `label` and a `run` arg added, so several runs
/// coexist in one exported Chrome trace.
pub fn ens_bar(label: &str, src: &str, export: &TraceSink) -> Result<Bar, String> {
    let module = ensemble_analysis::compile_source(src, &ensemble_analysis::Options::default())
        .map_err(|e| e.to_string())?;
    let sink = TraceSink::new();
    let profile = ProfileSink::new().with_trace(sink.clone());
    let report = VmRuntime::with_profile(module, profile)
        .run()
        .map_err(|e| e.to_string())?;
    let segs = sink.segments();
    // The VM segment must agree exactly with the shared op counter: both
    // are (Σ retired ops) × the per-op cost, summed over exact integers.
    debug_assert_eq!(segs.vm_ns, report.overhead_ns());
    export_run(label, &sink, export);
    Ok(Bar {
        label: label.to_string(),
        to_device: segs.to_device_ns,
        from_device: segs.from_device_ns,
        kernel: segs.kernel_ns,
        overhead: segs.vm_ns,
    })
}

/// Append one run's events to a shared export sink, prefixing every track
/// with the run's `label` and adding a `run` arg — so several runs coexist
/// (and stay separable) in a single exported Chrome trace.
pub fn export_run(label: &str, run: &TraceSink, export: &TraceSink) {
    if !export.is_enabled() {
        return;
    }
    export.extend(
        run.events()
            .into_iter()
            .map(|mut e| {
                e.track = format!("{label} \u{00b7} {}", e.track);
                e.args.push(("run".to_string(), label.to_string()));
                e
            })
            .collect(),
    );
}

/// Build a bar from a profile sink filled by a native (C-style) run.
pub fn c_bar(label: &str, profile: &ProfileSink, transfers_per_dispatch: u64) -> Bar {
    let p = profile.snapshot();
    Bar {
        label: label.to_string(),
        to_device: p.to_device_ns,
        from_device: p.from_device_ns,
        kernel: p.kernel_ns,
        overhead: c_host_overhead_ns(p.dispatches, p.dispatches * transfers_per_dispatch),
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn normalisation_scales_to_reference() {
        let mut f = Figure {
            id: "t".into(),
            title: "test".into(),
            bars: vec![
                Bar {
                    label: "ref".into(),
                    to_device: 1.0,
                    from_device: 1.0,
                    kernel: 1.0,
                    overhead: 1.0,
                },
                Bar {
                    label: "double".into(),
                    to_device: 2.0,
                    from_device: 2.0,
                    kernel: 2.0,
                    overhead: 2.0,
                },
            ],
            notes: vec![],
        };
        f.normalise("ref");
        assert!((f.bar("ref").unwrap().total() - 1.0).abs() < 1e-9);
        assert!((f.bar("double").unwrap().total() - 2.0).abs() < 1e-9);
    }

    #[test]
    fn render_contains_all_labels() {
        let f = Figure {
            id: "3x".into(),
            title: "demo".into(),
            bars: vec![Bar {
                label: "Ensemble GPU".into(),
                to_device: 0.1,
                from_device: 0.1,
                kernel: 0.7,
                overhead: 0.1,
            }],
            notes: vec!["hello".into()],
        };
        let r = f.render();
        assert!(r.contains("Figure 3x"));
        assert!(r.contains("Ensemble GPU"));
        assert!(r.contains("note: hello"));
    }

    #[test]
    fn c_host_overhead_is_small() {
        assert!(c_host_overhead_ns(1, 3) < 20_000.0);
    }
}
