//! SDC mode: silent-corruption defense and straggler hedging (`BENCH_8.json`).
//!
//! Two claims are measured and gated here, both "beyond fail-stop" — the
//! failures the fault-stop chaos modes ([`crate::chaos`]) cannot see:
//!
//! 1. **Silent data corruption is detected and repaired, for free on the
//!    virtual clock.** All five applications run on *private* device
//!    lanes (fresh context + queue per matrix device, so the virtual
//!    clock origin is zero and bit patterns are comparable) under a
//!    seeded [`InjectedFault::Corrupt`] schedule that silently flips
//!    payload bits at the upload, dispatch, and read-back seams. The
//!    per-buffer provenance checksums must catch **every** injected
//!    flip (detections == injections), the recovery layer must recompute
//!    from the last checkpoint, and the corrupted run's outputs *and*
//!    `total_ns` bit pattern must be byte-identical to a fault-free run
//!    — the entire repair cost lands on the queues' separate repair
//!    accounting ([`oclsim::CommandQueue::repair_ns`]), which is the
//!    "recompute overhead" the report quotes.
//! 2. **Hedged re-dispatch bounds the straggler tail.** A serving
//!    workload with injected [`InjectedFault::Hang`] stalls in half the
//!    tenants runs twice: once without hedging (every hung dispatch
//!    sleeps out its full cap) and once with
//!    [`ensemble_serve::ServeConfig::hedge_after`] set, so the server
//!    speculatively re-issues stragglers on failover-shifted lanes. The
//!    hedged p99 must be finite and strictly below the unhedged p99.

use crate::apps_ens::{self, Sizes};
use crate::chaos::CHAOS_LOCK;
use crate::TraceSink;
use ensemble_ocl::{device_matrix, DeviceSel, OpenClEnvironment, ResolveEnv};
use ensemble_serve::{latency_percentile, open_loop, Outcome, Request, ServeConfig, Server};
use ensemble_vm::VmRuntime;
use oclsim::fault::{FaultInjector, FaultOp, FaultPlan, InjectedFault};
use oclsim::{ClResult, CommandQueue, Context, DeviceType};
use std::sync::Arc;
use std::time::Duration;
use trace::SpanKind;

/// One private device lane: the shared physical device wrapped in a
/// fresh context and queue, so the lane's virtual clock starts at zero.
struct Lane {
    platform: String,
    context: Context,
    queue: CommandQueue,
}

/// A bench-private environment table over every device of the global
/// matrix — the same resolution rules as the matrix itself, just onto
/// zero-origin lanes, so two runs' clocks can be compared bit-for-bit.
struct PrivateLanes {
    lanes: Vec<Lane>,
}

impl PrivateLanes {
    fn new() -> Result<PrivateLanes, String> {
        let mut lanes = Vec::new();
        for m in device_matrix().entries() {
            let context = Context::new(std::slice::from_ref(&m.device))
                .map_err(|e| format!("sdc lane context: {e}"))?;
            let queue = CommandQueue::new(&context, &m.device)
                .map_err(|e| format!("sdc lane queue: {e}"))?;
            lanes.push(Lane {
                platform: m.platform.clone(),
                context,
                queue,
            });
        }
        Ok(PrivateLanes { lanes })
    }

    /// Attach `injector` to every GPU lane (queue and context), the
    /// device class the apps dispatch to.
    fn attach_gpu(&self, injector: &FaultInjector) {
        for l in &self.lanes {
            if l.queue.device().device_type() == DeviceType::Gpu {
                l.queue.attach_faults(injector.clone());
                l.context.attach_faults(injector.clone());
            }
        }
    }

    /// Total repair accounting across the lanes: virtual nanoseconds of
    /// shadow restores and integrity-retry backoff — work that a real
    /// system would spend recomputing, kept off the main clocks so
    /// recovered runs stay bit-identical.
    fn repair_ns(&self) -> f64 {
        self.lanes.iter().map(|l| l.queue.repair_ns()).sum()
    }
}

impl ResolveEnv for PrivateLanes {
    fn resolve(&self, sel: DeviceSel) -> ClResult<OpenClEnvironment> {
        let lane = match sel.device_type {
            None => self.lanes.get(sel.device_index).ok_or_else(|| {
                oclsim::ClError::DeviceNotFound {
                    requested: format!("device #{}", sel.device_index),
                }
            })?,
            Some(ty) => self
                .lanes
                .iter()
                .filter(|l| l.queue.device().device_type() == ty)
                .nth(sel.device_index)
                .ok_or_else(|| oclsim::ClError::DeviceNotFound {
                    requested: format!("{ty} #{}", sel.device_index),
                })?,
        };
        Ok(OpenClEnvironment {
            platform: lane.platform.clone(),
            device: lane.queue.device().clone(),
            context: lane.context.clone(),
            queue: lane.queue.clone(),
        })
    }
}

/// The seeded corruption schedule for one app: roughly one in `period`
/// eligible operations silently flips a payload bit, plus a guaranteed
/// flip on the very first upload so even the smallest schedule injects
/// at least once.
pub fn corrupt_plan(seed: u64, period: u64) -> FaultPlan {
    FaultPlan::new()
        .fail(FaultOp::Upload, 0, InjectedFault::Corrupt)
        .seeded_corrupt(seed, period)
        .expect("sdc harness periods are valid")
}

/// Run one compiled source on fresh private lanes with `injector` on
/// the GPU lanes. Returns `(output, total_ns bit pattern, repair_ns)`.
fn lanes_run(src: &str, injector: &FaultInjector) -> Result<(Vec<String>, u64, f64), String> {
    let module = ensemble_analysis::compile_source(src, &ensemble_analysis::Options::default())
        .map_err(|e| e.to_string())?;
    let lanes = Arc::new(PrivateLanes::new()?);
    lanes.attach_gpu(injector);
    let vm = VmRuntime::new(module);
    vm.set_env_resolver(Arc::clone(&lanes) as _);
    let report = vm.run().map_err(|e| e.to_string())?;
    let clock = report.total_ns().to_bits();
    Ok((report.output, clock, lanes.repair_ns()))
}

/// Outcome of one application under the seeded corruption schedule.
#[derive(Debug, Clone)]
pub struct SdcOutcome {
    /// Application name.
    pub app: String,
    /// Corruptions the injector actually fired.
    pub injections: usize,
    /// Corruptions the integrity layer caught (must equal `injections`).
    pub detections: usize,
    /// Repair accounting of the corrupted run, in virtual nanoseconds
    /// (the recompute overhead; must be positive when anything fired).
    pub repair_ns: f64,
    /// Output byte-identical to the fault-free run.
    pub output_identical: bool,
    /// `total_ns` bit pattern identical to the fault-free run.
    pub clock_identical: bool,
}

impl SdcOutcome {
    /// The per-app gate: everything injected was detected, something
    /// was injected, and the run stayed byte-identical.
    pub fn ok(&self) -> bool {
        self.injections > 0
            && self.detections == self.injections
            && self.repair_ns > 0.0
            && self.output_identical
            && self.clock_identical
    }

    /// One-line summary for the harness output.
    pub fn render(&self) -> String {
        format!(
            "{:<12} injected {:>3}  detected {:>3}  repair {:>12.0} ns  output {}  clock {}",
            self.app,
            self.injections,
            self.detections,
            self.repair_ns,
            if self.output_identical { "ok" } else { "MISMATCH" },
            if self.clock_identical { "ok" } else { "MISMATCH" },
        )
    }

    /// Serialise as a JSON object (hand-rolled; the workspace has no
    /// JSON library).
    pub fn to_json(&self) -> String {
        format!(
            "{{\"app\":\"{}\",\"injections\":{},\"detections\":{},\"repair_ns\":{:.1},\
             \"output_identical\":{},\"clock_identical\":{}}}",
            trace::escape_json(&self.app),
            self.injections,
            self.detections,
            self.repair_ns,
            self.output_identical,
            self.clock_identical,
        )
    }
}

/// All five applications under a seeded corruption schedule, each run
/// clean and corrupted on fresh private lanes and compared bit-for-bit.
pub fn run_sdc_corruption(seed: u64, sizes: &Sizes) -> Result<Vec<SdcOutcome>, String> {
    let _serial = CHAOS_LOCK.lock().unwrap_or_else(|e| e.into_inner());
    let apps: [(&str, String); 5] = [
        ("matmul", apps_ens::matmul(sizes.matmul_n, "GPU")),
        (
            "mandelbrot",
            apps_ens::mandelbrot(sizes.mandel_n, sizes.mandel_iters, "GPU"),
        ),
        ("lud", apps_ens::lud(sizes.lud_n, "GPU")),
        ("reduction", apps_ens::reduction(sizes.reduction_n, "GPU")),
        (
            "docrank",
            apps_ens::docrank(sizes.docrank_docs, sizes.docrank_rounds, "GPU"),
        ),
    ];
    let mut outcomes = Vec::with_capacity(apps.len());
    for (i, (app, src)) in apps.iter().enumerate() {
        let (reference, ref_clock, _) = lanes_run(src, &FaultInjector::disabled())
            .map_err(|e| format!("{app}: reference run failed: {e}"))?;
        let injector = FaultInjector::new(corrupt_plan(seed.wrapping_add(i as u64), 11));
        let (output, clock, repair_ns) =
            lanes_run(src, &injector).map_err(|e| format!("{app}: sdc run failed: {e}"))?;
        outcomes.push(SdcOutcome {
            app: app.to_string(),
            injections: injector.corrupt_count(),
            detections: injector.detected_count(),
            repair_ns,
            output_identical: output == reference,
            clock_identical: clock == ref_clock,
        });
    }
    Ok(outcomes)
}

/// The straggler-hedging comparison (see module docs).
#[derive(Debug, Clone)]
pub struct StragglerReport {
    /// Tenants in each wave.
    pub tenants: usize,
    /// Tenants carrying an injected hang.
    pub hang_tenants: usize,
    /// The hang plans' wall-clock cap, milliseconds.
    pub hang_cap_ms: u64,
    /// The hedged wave's `hedge_after`, milliseconds.
    pub hedge_after_ms: u64,
    /// Unhedged median latency, milliseconds.
    pub unhedged_p50_ms: f64,
    /// Unhedged 99th-percentile latency, milliseconds.
    pub unhedged_p99_ms: f64,
    /// Hedged median latency, milliseconds.
    pub hedged_p50_ms: f64,
    /// Hedged 99th-percentile latency, milliseconds.
    pub hedged_p99_ms: f64,
    /// `Hedge` instants the hedged wave recorded (speculations issued).
    pub hedges: usize,
    /// Hedge races won by the clean secondary.
    pub hedge_wins_secondary: usize,
    /// Hedge races the straggling primary still won.
    pub hedge_wins_primary: usize,
    /// Completions in the unhedged wave.
    pub completed_unhedged: usize,
    /// Completions in the hedged wave.
    pub completed_hedged: usize,
}

impl StragglerReport {
    /// The straggler gate: both waves completed everything they
    /// offered, speculation actually happened, and the hedged p99 is
    /// strictly below the unhedged p99.
    pub fn ok(&self) -> bool {
        self.completed_unhedged == self.tenants
            && self.completed_hedged == self.tenants
            && self.hedges > 0
            && self.hedge_wins_secondary > 0
            && self.hedged_p99_ms.is_finite()
            && self.hedged_p99_ms < self.unhedged_p99_ms
    }

    /// Multi-line summary for the harness output.
    pub fn render(&self) -> String {
        format!(
            "stragglers   {} tenants ({} hanging, cap {} ms), hedge after {} ms\n\
             {:<12} p50 {:>8.1} ms  p99 {:>8.1} ms  completed {:>2}\n\
             {:<12} p50 {:>8.1} ms  p99 {:>8.1} ms  completed {:>2}  \
             hedges {} (secondary won {}, primary won {})\n",
            self.tenants,
            self.hang_tenants,
            self.hang_cap_ms,
            self.hedge_after_ms,
            "  unhedged",
            self.unhedged_p50_ms,
            self.unhedged_p99_ms,
            self.completed_unhedged,
            "  hedged",
            self.hedged_p50_ms,
            self.hedged_p99_ms,
            self.completed_hedged,
            self.hedges,
            self.hedge_wins_secondary,
            self.hedge_wins_primary,
        )
    }

    /// Serialise as a JSON object.
    pub fn to_json(&self) -> String {
        format!(
            "{{\"tenants\":{},\"hang_tenants\":{},\"hang_cap_ms\":{},\"hedge_after_ms\":{},\
             \"unhedged\":{{\"p50_ms\":{:.3},\"p99_ms\":{:.3},\"completed\":{}}},\
             \"hedged\":{{\"p50_ms\":{:.3},\"p99_ms\":{:.3},\"completed\":{}}},\
             \"hedges\":{},\"hedge_wins_secondary\":{},\"hedge_wins_primary\":{},\
             \"p99_improved\":{}}}",
            self.tenants,
            self.hang_tenants,
            self.hang_cap_ms,
            self.hedge_after_ms,
            self.unhedged_p50_ms,
            self.unhedged_p99_ms,
            self.completed_unhedged,
            self.hedged_p50_ms,
            self.hedged_p99_ms,
            self.completed_hedged,
            self.hedges,
            self.hedge_wins_secondary,
            self.hedge_wins_primary,
            self.hedged_p99_ms < self.unhedged_p99_ms,
        )
    }
}

/// One serving wave: `tenants` requests over the same small program,
/// with a capped [`InjectedFault::Hang`] on every odd tenant's first
/// dispatch. Returns the outcomes and the server's trace events.
fn straggler_wave(
    tenants: usize,
    hang_cap_ms: u64,
    hedge_after: Option<Duration>,
) -> (Vec<Outcome>, Vec<trace::TraceEvent>) {
    let server = Arc::new(Server::new(ServeConfig {
        max_active: 2,
        max_waiting: tenants,
        hedge_after,
        ..ServeConfig::default()
    }));
    let sink = TraceSink::new();
    server.set_trace(sink.clone());
    let src = apps_ens::matmul(16, "GPU");
    let requests: Vec<Request> = (0..tenants)
        .map(|t| {
            let mut r = Request::new(t as u64, src.clone());
            if t % 2 == 1 {
                r.chaos = Some(
                    FaultPlan::new()
                        .fail(FaultOp::Enqueue, 0, InjectedFault::Hang)
                        .with_hang_cap_ms(hang_cap_ms),
                );
            }
            r
        })
        .collect();
    let outcomes = open_loop(&server, requests, Duration::from_millis(2));
    (outcomes, sink.events())
}

/// Run the unhedged and hedged waves and compare their tails.
pub fn run_straggler(tenants: usize, hang_cap_ms: u64, hedge_after_ms: u64) -> StragglerReport {
    let _serial = CHAOS_LOCK.lock().unwrap_or_else(|e| e.into_inner());
    let (unhedged, _) = straggler_wave(tenants, hang_cap_ms, None);
    let (hedged, events) = straggler_wave(
        tenants,
        hang_cap_ms,
        Some(Duration::from_millis(hedge_after_ms)),
    );
    let won = |who: &str| {
        events
            .iter()
            .filter(|e| e.kind == SpanKind::HedgeWon && e.name == who)
            .count()
    };
    StragglerReport {
        tenants,
        hang_tenants: tenants / 2,
        hang_cap_ms,
        hedge_after_ms,
        unhedged_p50_ms: latency_percentile(&unhedged, 50.0).as_secs_f64() * 1e3,
        unhedged_p99_ms: latency_percentile(&unhedged, 99.0).as_secs_f64() * 1e3,
        hedged_p50_ms: latency_percentile(&hedged, 50.0).as_secs_f64() * 1e3,
        hedged_p99_ms: latency_percentile(&hedged, 99.0).as_secs_f64() * 1e3,
        hedges: events
            .iter()
            .filter(|e| e.kind == SpanKind::Hedge)
            .count(),
        hedge_wins_secondary: won("secondary"),
        hedge_wins_primary: won("primary"),
        completed_unhedged: unhedged.iter().filter(|o| o.is_completed()).count(),
        completed_hedged: hedged.iter().filter(|o| o.is_completed()).count(),
    }
}

/// The full SDC-mode report (`BENCH_8.json`).
#[derive(Debug, Clone)]
pub struct SdcReport {
    /// Corruption-schedule seed.
    pub seed: u64,
    /// Per-application corruption outcomes.
    pub apps: Vec<SdcOutcome>,
    /// The straggler-hedging comparison.
    pub straggler: StragglerReport,
}

impl SdcReport {
    /// Fraction of injected corruptions that were detected (the gate
    /// requires 1.0).
    pub fn detection_rate(&self) -> f64 {
        let injections: usize = self.apps.iter().map(|a| a.injections).sum();
        let detections: usize = self.apps.iter().map(|a| a.detections).sum();
        if injections == 0 {
            0.0
        } else {
            detections as f64 / injections as f64
        }
    }

    /// Total recompute overhead across the corrupted runs, virtual ns.
    pub fn recompute_overhead_ns(&self) -> f64 {
        self.apps.iter().map(|a| a.repair_ns).sum()
    }

    /// The mode's overall gate: every app's corruption gate plus the
    /// straggler gate.
    pub fn all_consistent(&self) -> bool {
        !self.apps.is_empty() && self.apps.iter().all(SdcOutcome::ok) && self.straggler.ok()
    }

    /// Serialise as the `BENCH_8.json` schema.
    pub fn to_json(&self) -> String {
        let apps: Vec<String> = self.apps.iter().map(SdcOutcome::to_json).collect();
        format!(
            "{{\"schema\":\"bench-sdc-v1\",\"seed\":{},\"detection_rate\":{:.3},\
             \"recompute_overhead_ns\":{:.1},\"all_consistent\":{},\
             \"apps\":[{}],\"straggler\":{}}}",
            self.seed,
            self.detection_rate(),
            self.recompute_overhead_ns(),
            self.all_consistent(),
            apps.join(","),
            self.straggler.to_json(),
        )
    }

    /// Render as a text table.
    pub fn render(&self) -> String {
        let mut out = String::new();
        out.push_str(&format!("SDC mode (seed {})\n", self.seed));
        for a in &self.apps {
            out.push_str(&a.render());
            out.push('\n');
        }
        out.push_str(&format!(
            "detection rate {:.0}%  recompute overhead {:.0} virtual ns (all off the main clock)\n",
            self.detection_rate() * 100.0,
            self.recompute_overhead_ns(),
        ));
        out.push_str(&self.straggler.render());
        out
    }
}

/// Entry point for `figures --sdc-seed N`: corruption chaos over all
/// five apps plus the straggler-hedging comparison.
pub fn run_sdc(seed: u64, sizes: &Sizes, tenants: usize) -> Result<SdcReport, String> {
    let apps = run_sdc_corruption(seed, sizes)?;
    let straggler = run_straggler(tenants, 500, 60);
    Ok(SdcReport {
        seed,
        apps,
        straggler,
    })
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn corrupt_plan_always_fires_at_least_once() {
        let plan = corrupt_plan(1, 11);
        assert!(plan.can_corrupt());
    }

    #[test]
    fn matmul_corruption_is_detected_and_byte_identical() {
        let _serial = CHAOS_LOCK.lock().unwrap_or_else(|e| e.into_inner());
        let src = apps_ens::matmul(12, "GPU");
        let (reference, ref_clock, clean_repair) =
            lanes_run(&src, &FaultInjector::disabled()).unwrap();
        assert_eq!(clean_repair, 0.0, "clean runs never touch repair accounting");
        let injector = FaultInjector::new(corrupt_plan(3, 7));
        let (output, clock, repair) = lanes_run(&src, &injector).unwrap();
        assert!(injector.corrupt_count() > 0, "schedule must fire");
        assert_eq!(injector.detected_count(), injector.corrupt_count());
        assert_eq!(output, reference);
        assert_eq!(clock, ref_clock, "virtual clock must be bit-identical");
        assert!(repair > 0.0, "repairs must be accounted");
    }

    #[test]
    fn report_json_is_valid_and_gated() {
        let report = SdcReport {
            seed: 1,
            apps: vec![SdcOutcome {
                app: "matmul".into(),
                injections: 3,
                detections: 3,
                repair_ns: 100.0,
                output_identical: true,
                clock_identical: true,
            }],
            straggler: StragglerReport {
                tenants: 4,
                hang_tenants: 2,
                hang_cap_ms: 500,
                hedge_after_ms: 60,
                unhedged_p50_ms: 10.0,
                unhedged_p99_ms: 520.0,
                hedged_p50_ms: 10.0,
                hedged_p99_ms: 90.0,
                hedges: 2,
                hedge_wins_secondary: 2,
                hedge_wins_primary: 0,
                completed_unhedged: 4,
                completed_hedged: 4,
            },
        };
        assert!(report.all_consistent());
        assert!((report.detection_rate() - 1.0).abs() < 1e-12);
        trace::json::validate(&report.to_json()).unwrap();
    }
}
