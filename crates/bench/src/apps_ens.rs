//! Parameterised Ensemble sources for the five applications.
//!
//! The `.ens` assets embed the paper's input sizes; the harness rewrites
//! those constants for bench-scale runs (the kernels are interpreted, so
//! paper-scale runs take a while) and retargets the kernel actors' device
//! annotation for the CPU bars. Every substitution is asserted to match —
//! a silent no-op rewrite would quietly benchmark the wrong size.

/// Sizes for one harness run.
#[derive(Debug, Clone, Copy)]
pub struct Sizes {
    /// Matrix multiplication: n×n.
    pub matmul_n: usize,
    /// Mandelbrot: width = height.
    pub mandel_n: usize,
    /// Mandelbrot iterations.
    pub mandel_iters: usize,
    /// LUD: n×n.
    pub lud_n: usize,
    /// Reduction element count.
    pub reduction_n: usize,
    /// Document count.
    pub docrank_docs: usize,
    /// Ranking rounds.
    pub docrank_rounds: usize,
}

impl Sizes {
    /// Reduced sizes for interpreted-kernel benchmarking.
    pub fn bench() -> Sizes {
        Sizes {
            matmul_n: 64,
            mandel_n: 64,
            mandel_iters: 150,
            lud_n: 48,
            reduction_n: 1 << 16,
            docrank_docs: 1024,
            docrank_rounds: 10,
        }
    }

    /// The paper's sizes (slow: every work-item is interpreted).
    pub fn paper() -> Sizes {
        Sizes {
            matmul_n: 1024,
            mandel_n: 1024,
            mandel_iters: 1000,
            lud_n: 2048,
            reduction_n: 33_554_432,
            docrank_docs: 65_536,
            docrank_rounds: 10,
        }
    }
}

fn sub(src: &str, from: &str, to: &str) -> String {
    assert!(src.contains(from), "substitution `{from}` not found");
    src.replace(from, to)
}

fn retarget(src: String, device: &str) -> String {
    sub(&src, "device_type=GPU", &format!("device_type={device}"))
}

/// Matmul `.ens` at size `n` targeting `device` ("GPU"/"CPU").
pub fn matmul(n: usize, device: &str) -> String {
    let group = if n >= 16 { 16 } else { 2 };
    let s = include_str!("../../apps/src/assets/matmul/ocl.ens");
    let s = sub(s, "1024", &n.to_string());
    let s = sub(&s, "of 16", &format!("of {group}"));
    retarget(s, device)
}

/// Mandelbrot `.ens`.
pub fn mandelbrot(n: usize, iters: usize, device: &str) -> String {
    let group = if n >= 16 { 16 } else { 4 };
    let s = include_str!("../../apps/src/assets/mandelbrot/ocl.ens");
    let s = sub(s, "1024", &n.to_string());
    let s = sub(&s, "1000", &iters.to_string());
    let s = sub(&s, "of 16", &format!("of {group}"));
    retarget(s, device)
}

/// LUD `.ens`.
pub fn lud(n: usize, device: &str) -> String {
    let group = if n >= 16 { 16 } else { 4 };
    let s = include_str!("../../apps/src/assets/lud/ocl.ens");
    let s = sub(s, "2048", &n.to_string());
    let s = sub(&s, "group = 16", &format!("group = {group}"));
    retarget(s, device)
}

/// Reduction `.ens`.
pub fn reduction(n: usize, device: &str) -> String {
    let s = include_str!("../../apps/src/assets/reduction/ocl.ens");
    let s = sub(s, "33554432", &n.to_string());
    retarget(s, device)
}

/// Document ranking `.ens`.
pub fn docrank(docs: usize, rounds: usize, device: &str) -> String {
    let s = include_str!("../../apps/src/assets/docrank/ocl.ens");
    let s = sub(s, "65536", &docs.to_string());
    let s = sub(&s, "rounds = 10", &format!("rounds = {rounds}"));
    retarget(s, device)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn all_parameterised_sources_compile() {
        let sizes = Sizes::bench();
        for (name, src) in [
            ("matmul", matmul(sizes.matmul_n, "CPU")),
            (
                "mandelbrot",
                mandelbrot(sizes.mandel_n, sizes.mandel_iters, "CPU"),
            ),
            ("lud", lud(sizes.lud_n, "CPU")),
            ("reduction", reduction(sizes.reduction_n, "CPU")),
            (
                "docrank",
                docrank(sizes.docrank_docs, sizes.docrank_rounds, "CPU"),
            ),
        ] {
            ensemble_lang::compile_source(&src).unwrap_or_else(|e| panic!("{name}: {e}"));
        }
    }

    #[test]
    fn retarget_rewrites_device() {
        let s = matmul(16, "CPU");
        assert!(s.contains("device_type=CPU"));
        assert!(!s.contains("device_type=GPU"));
    }
}
