//! Table 1 assembly from the in-repo application sources.

use code_metrics::table::{render_table, Table1Row};
use code_metrics::{measure, measure_files, Lang, Metrics};

/// Per-application source set.
struct AppSources {
    name: &'static str,
    c_seq: &'static str,
    c_host: &'static str,
    c_kernel: &'static str,
    acc_full: &'static str,
    ens_seq: &'static str,
    ens_ocl: &'static str,
}

const APPS: [AppSources; 5] = [
    AppSources {
        name: "Matrix Multiplication",
        c_seq: include_str!("../../apps/src/assets/matmul/seq.c"),
        c_host: include_str!("../../apps/src/assets/matmul/host.c"),
        c_kernel: include_str!("../../apps/src/assets/matmul/kernel.cl"),
        acc_full: include_str!("../../apps/src/assets/matmul/acc_full.c"),
        ens_seq: include_str!("../../apps/src/assets/matmul/seq.ens"),
        ens_ocl: include_str!("../../apps/src/assets/matmul/ocl.ens"),
    },
    AppSources {
        name: "Mandelbrot",
        c_seq: include_str!("../../apps/src/assets/mandelbrot/seq.c"),
        c_host: include_str!("../../apps/src/assets/mandelbrot/host.c"),
        c_kernel: include_str!("../../apps/src/assets/mandelbrot/kernel.cl"),
        acc_full: include_str!("../../apps/src/assets/mandelbrot/acc_full.c"),
        ens_seq: include_str!("../../apps/src/assets/mandelbrot/seq.ens"),
        ens_ocl: include_str!("../../apps/src/assets/mandelbrot/ocl.ens"),
    },
    AppSources {
        name: "Reduction",
        c_seq: include_str!("../../apps/src/assets/reduction/seq.c"),
        c_host: include_str!("../../apps/src/assets/reduction/host.c"),
        c_kernel: include_str!("../../apps/src/assets/reduction/kernel.cl"),
        acc_full: include_str!("../../apps/src/assets/reduction/acc_full.c"),
        ens_seq: include_str!("../../apps/src/assets/reduction/seq.ens"),
        ens_ocl: include_str!("../../apps/src/assets/reduction/ocl.ens"),
    },
    AppSources {
        name: "LUD",
        c_seq: include_str!("../../apps/src/assets/lud/seq.c"),
        c_host: include_str!("../../apps/src/assets/lud/host.c"),
        c_kernel: include_str!("../../apps/src/assets/lud/kernel.cl"),
        acc_full: include_str!("../../apps/src/assets/lud/acc_full.c"),
        ens_seq: include_str!("../../apps/src/assets/lud/seq.ens"),
        ens_ocl: include_str!("../../apps/src/assets/lud/ocl.ens"),
    },
    AppSources {
        name: "Document Ranking",
        c_seq: include_str!("../../apps/src/assets/docrank/seq.c"),
        c_host: include_str!("../../apps/src/assets/docrank/host.c"),
        c_kernel: include_str!("../../apps/src/assets/docrank/kernel.cl"),
        acc_full: include_str!("../../apps/src/assets/docrank/acc_full.c"),
        ens_seq: include_str!("../../apps/src/assets/docrank/seq.ens"),
        ens_ocl: include_str!("../../apps/src/assets/docrank/ocl.ens"),
    },
];

/// Measurements for one application under the three approaches.
pub struct AppMeasurement {
    /// Application name.
    pub name: &'static str,
    /// Single-threaded C.
    pub c_single: Metrics,
    /// C-OpenCL (host + kernel).
    pub c_concurrent: Metrics,
    /// OpenACC-annotated C.
    pub acc_concurrent: Metrics,
    /// Single-threaded Ensemble.
    pub ens_single: Metrics,
    /// Ensemble-OpenCL.
    pub ens_concurrent: Metrics,
}

/// Measure every application.
pub fn measurements() -> Vec<AppMeasurement> {
    APPS.iter()
        .map(|a| AppMeasurement {
            name: a.name,
            c_single: measure(a.c_seq, Lang::C),
            c_concurrent: measure_files(&[(a.c_host, Lang::C), (a.c_kernel, Lang::C)]),
            acc_concurrent: measure(a.acc_full, Lang::C),
            ens_single: measure(a.ens_seq, Lang::Ensemble),
            ens_concurrent: measure(a.ens_ocl, Lang::Ensemble),
        })
        .collect()
}

/// The Table 1 rows (paper layout: C, Ensemble, OpenACC per application).
pub fn rows() -> Vec<Table1Row> {
    let mut out = Vec::new();
    for m in measurements() {
        out.push(Table1Row::from_metrics(
            m.name,
            "C",
            &m.c_single,
            &m.c_concurrent,
        ));
        out.push(Table1Row::from_metrics(
            m.name,
            "Ensemble",
            &m.ens_single,
            &m.ens_concurrent,
        ));
        out.push(Table1Row::from_metrics(
            m.name,
            "OpenACC",
            &m.c_single,
            &m.acc_concurrent,
        ));
    }
    out
}

/// Render the whole table.
pub fn render() -> String {
    render_table(&rows())
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn c_opencl_always_costs_many_more_lines() {
        // The paper's strongest Table 1 signal: the API approach adds
        // roughly 50–160% more code to every application.
        for m in measurements() {
            let delta = m.c_concurrent.loc as i64 - m.c_single.loc as i64;
            assert!(
                delta > 60,
                "{}: C-OpenCL delta {delta} suspiciously small",
                m.name
            );
            let pct = delta as f64 / m.c_single.loc as f64;
            assert!(
                pct > 0.4,
                "{}: C-OpenCL grew only {:.0}%",
                m.name,
                pct * 100.0
            );
        }
    }

    #[test]
    fn openacc_deltas_are_tiny() {
        for m in measurements() {
            let delta = m.acc_concurrent.loc as i64 - m.c_single.loc as i64;
            assert!(
                (0..=15).contains(&delta),
                "{}: OpenACC delta {delta} out of the paper's band",
                m.name
            );
        }
    }

    #[test]
    fn ensemble_deltas_are_small_and_sometimes_negative() {
        let ms = measurements();
        let pct = |m: &AppMeasurement| {
            (m.ens_concurrent.loc as i64 - m.ens_single.loc as i64) as f64 / m.ens_single.loc as f64
                * 100.0
        };
        for m in &ms {
            assert!(
                pct(m) < 300.0,
                "{}: Ensemble delta {:.0}% out of band",
                m.name,
                pct(m)
            );
        }
        // The single-kernel applications stay well below the multi-round
        // ones: Reduction ("very different kernel logic") and LUD (the
        // per-step channel plumbing of the Figure 4 ring) top the table.
        let reduction = ms.iter().find(|m| m.name == "Reduction").unwrap();
        for m in &ms {
            if m.name != "Reduction" && m.name != "LUD" {
                assert!(
                    pct(m) < pct(reduction),
                    "{} delta {:.0}% exceeds Reduction's {:.0}%",
                    m.name,
                    pct(m),
                    pct(reduction)
                );
            }
        }
        // The headline Table 1 claim: going concurrent costs far less in
        // Ensemble than in C, for every application (the paper's seq
        // programs are larger than ours, which shifts the absolute deltas;
        // EXPERIMENTS.md records the comparison).
        for m in &ms {
            let c_delta = m.c_concurrent.loc as i64 - m.c_single.loc as i64;
            let ens_delta = m.ens_concurrent.loc as i64 - m.ens_single.loc as i64;
            assert!(
                ens_delta < c_delta,
                "{}: Ensemble delta {ens_delta} not below C delta {c_delta}",
                m.name
            );
        }
    }

    #[test]
    fn table_renders_fifteen_rows() {
        let r = rows();
        assert_eq!(r.len(), 15);
        let rendered = render();
        assert!(rendered.contains("Matrix Multiplication"));
        assert!(rendered.contains("OpenACC"));
    }
}
