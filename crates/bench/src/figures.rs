//! Figure builders: one function per paper figure.
//!
//! Bar order matches the paper's grouping: Ensemble GPU (the normalisation
//! reference), C-OpenCL GPU, C-OpenACC GPU, then the CPU triple.
//!
//! Every builder takes a shared `export` [`TraceSink`]: when it is enabled
//! (the `figures` binary's `--trace` flag), each run inside the figure
//! records into a private sink and its spans are re-exported with the
//! run's bar label as track prefix — one Chrome trace then holds every
//! run of the figure, separable by the `run` arg.

use crate::apps_ens;
use crate::apps_ens::Sizes;
use crate::{c_bar, ens_bar, export_run, Bar, Figure, TraceSink};
use baselines::acc::AccTarget;
use ensemble_apps::{docrank, lud, mandelbrot, matmul, reduction};
use ensemble_ocl::ProfileSink;
use oclsim::DeviceType;

/// Convenient alias so binaries can iterate all figures.
pub type FigureFn = fn(&Sizes, &TraceSink) -> Figure;

/// All five figures in paper order.
pub const ALL: [(&str, FigureFn); 5] = [
    ("fig3a", fig3a),
    ("fig3b", fig3b),
    ("fig3c", fig3c),
    ("fig3d", fig3d),
    ("fig3e", fig3e),
];

/// The reference bar label (the paper normalises to Ensemble GPU).
pub const REFERENCE: &str = "Ensemble GPU";

/// A profile sink for one native run, carrying a private trace when the
/// shared export sink is enabled (so the run can be re-exported).
fn traced_profile(export: &TraceSink) -> (ProfileSink, TraceSink) {
    let t = if export.is_enabled() {
        TraceSink::new()
    } else {
        TraceSink::disabled()
    };
    (ProfileSink::new().with_trace(t.clone()), t)
}

fn acc_bar_or_note(
    label: &str,
    result: Result<ProfileSink, String>,
    notes: &mut Vec<String>,
) -> Option<Bar> {
    match result {
        Ok(profile) => Some(c_bar(label, &profile, 1)),
        Err(e) => {
            notes.push(format!("{label}: {e}"));
            None
        }
    }
}

/// Figure 3a: matrix multiplication.
pub fn fig3a(sizes: &Sizes, export: &TraceSink) -> Figure {
    let n = sizes.matmul_n;
    let mut bars = Vec::new();
    let mut notes = Vec::new();
    for (dev, ocl_ty, acc_ty) in [
        ("GPU", DeviceType::Gpu, AccTarget::gpu()),
        ("CPU", DeviceType::Cpu, AccTarget::cpu()),
    ] {
        bars.push(
            ens_bar(
                &format!("Ensemble {dev}"),
                &apps_ens::matmul(n, dev),
                export,
            )
            .expect("ensemble matmul"),
        );
        let (p, t) = traced_profile(export);
        let (a, b) = matmul::generate(n);
        matmul::run_copencl(a, b, ocl_ty, p.clone());
        export_run(&format!("C-OpenCL {dev}"), &t, export);
        bars.push(c_bar(&format!("C-OpenCL {dev}"), &p, 3));
        let (p, t) = traced_profile(export);
        let (a, b) = matmul::generate(n);
        let r = matmul::run_openacc(a, b, acc_ty, p.clone())
            .map(|_| p)
            .map_err(|e| e.to_string());
        export_run(&format!("C-OpenACC {dev}"), &t, export);
        if let Some(bar) = acc_bar_or_note(&format!("C-OpenACC {dev}"), r, &mut notes) {
            bars.push(bar);
        }
    }
    let mut f = Figure {
        id: "3a".into(),
        title: format!("Matrix Multiplication ({n}x{n})"),
        bars,
        notes,
    };
    f.normalise(REFERENCE);
    f
}

/// Figure 3b: Mandelbrot.
pub fn fig3b(sizes: &Sizes, export: &TraceSink) -> Figure {
    let n = sizes.mandel_n;
    let iters = sizes.mandel_iters as u32;
    let mut bars = Vec::new();
    let mut notes = Vec::new();
    for (dev, ocl_ty, acc_ty) in [
        ("GPU", DeviceType::Gpu, AccTarget::gpu()),
        ("CPU", DeviceType::Cpu, AccTarget::cpu()),
    ] {
        bars.push(
            ens_bar(
                &format!("Ensemble {dev}"),
                &apps_ens::mandelbrot(n, iters as usize, dev),
                export,
            )
            .expect("ensemble mandelbrot"),
        );
        let (p, t) = traced_profile(export);
        mandelbrot::run_copencl(n, n, iters, ocl_ty, p.clone());
        export_run(&format!("C-OpenCL {dev}"), &t, export);
        bars.push(c_bar(&format!("C-OpenCL {dev}"), &p, 1));
        let (p, t) = traced_profile(export);
        let r = mandelbrot::run_openacc(n, n, iters, acc_ty, p.clone())
            .map(|_| p)
            .map_err(|e| e.to_string());
        export_run(&format!("C-OpenACC {dev}"), &t, export);
        if let Some(bar) = acc_bar_or_note(&format!("C-OpenACC {dev}"), r, &mut notes) {
            bars.push(bar);
        }
    }
    let mut f = Figure {
        id: "3b".into(),
        title: format!("Mandelbrot ({n}x{n}, {iters} iterations)"),
        bars,
        notes,
    };
    f.normalise(REFERENCE);
    f
}

/// Figure 3c: LUD — three kernels in series, movability on.
pub fn fig3c(sizes: &Sizes, export: &TraceSink) -> Figure {
    let n = sizes.lud_n;
    let mut bars = Vec::new();
    let mut notes = Vec::new();
    for (dev, ocl_ty, acc_ty) in [
        ("GPU", DeviceType::Gpu, AccTarget::gpu()),
        ("CPU", DeviceType::Cpu, AccTarget::cpu()),
    ] {
        bars.push(
            ens_bar(&format!("Ensemble {dev}"), &apps_ens::lud(n, dev), export)
                .expect("ensemble lud"),
        );
        let (p, t) = traced_profile(export);
        lud::run_copencl(lud::generate(n), ocl_ty, p.clone());
        export_run(&format!("C-OpenCL {dev}"), &t, export);
        bars.push(c_bar(&format!("C-OpenCL {dev}"), &p, 1));
        let (p, t) = traced_profile(export);
        let r = lud::run_openacc(lud::generate(n), acc_ty, p.clone())
            .map(|_| p)
            .map_err(|e| e.to_string());
        export_run(&format!("C-OpenACC {dev}"), &t, export);
        if let Some(bar) = acc_bar_or_note(&format!("C-OpenACC {dev}"), r, &mut notes) {
            bars.push(bar);
        }
    }
    let mut f = Figure {
        id: "3c".into(),
        title: format!("LUD ({n}x{n}, 3 kernels in series)"),
        bars,
        notes,
    };
    f.normalise(REFERENCE);
    f
}

/// Figure 3d: parallel reduction.
pub fn fig3d(sizes: &Sizes, export: &TraceSink) -> Figure {
    let n = sizes.reduction_n;
    let mut bars = Vec::new();
    let mut notes = Vec::new();
    for (dev, ocl_ty, acc_ty) in [
        ("GPU", DeviceType::Gpu, AccTarget::gpu()),
        ("CPU", DeviceType::Cpu, AccTarget::cpu()),
    ] {
        bars.push(
            ens_bar(
                &format!("Ensemble {dev}"),
                &apps_ens::reduction(n, dev),
                export,
            )
            .expect("ensemble reduction"),
        );
        let (p, t) = traced_profile(export);
        reduction::run_copencl(reduction::generate(n), ocl_ty, p.clone());
        export_run(&format!("C-OpenCL {dev}"), &t, export);
        bars.push(c_bar(&format!("C-OpenCL {dev}"), &p, 1));
        let (p, t) = traced_profile(export);
        let r = reduction::run_openacc(reduction::generate(n), acc_ty, p.clone())
            .map(|_| p)
            .map_err(|e| e.to_string());
        export_run(&format!("C-OpenACC {dev}"), &t, export);
        if let Some(bar) = acc_bar_or_note(&format!("C-OpenACC {dev}"), r, &mut notes) {
            bars.push(bar);
        }
    }
    let mut f = Figure {
        id: "3d".into(),
        title: format!("Matrix Reduction (min of {n} elements)"),
        bars,
        notes,
    };
    f.normalise(REFERENCE);
    f
}

/// Figure 3e: document ranking — the real-world example.
pub fn fig3e(sizes: &Sizes, export: &TraceSink) -> Figure {
    let docs = sizes.docrank_docs;
    let rounds = sizes.docrank_rounds;
    let mut bars = Vec::new();
    let mut notes = Vec::new();
    let threshold = docrank::threshold();
    for (dev, ocl_ty) in [("GPU", DeviceType::Gpu), ("CPU", DeviceType::Cpu)] {
        bars.push(
            ens_bar(
                &format!("Ensemble {dev}"),
                &apps_ens::docrank(docs, rounds, dev),
                export,
            )
            .expect("ensemble docrank"),
        );
        let (p, t) = traced_profile(export);
        let (d, tpl) = docrank::generate(docs);
        docrank::run_copencl(d, tpl, threshold, ocl_ty, p.clone());
        export_run(&format!("C-OpenCL {dev}"), &t, export);
        bars.push(c_bar(&format!("C-OpenCL {dev}"), &p, 3));
    }
    // C-OpenACC: the GPU build fails (PGI could not compile this code);
    // the CPU numbers come from the OpenMP/gcc fallback.
    let p = ProfileSink::new();
    let (d, t) = docrank::generate(docs);
    match docrank::run_openacc(d, t, threshold, AccTarget::gpu(), p) {
        Ok(_) => notes.push("unexpected: ACC GPU compiled".into()),
        Err(e) => notes.push(format!(
            "C-OpenACC GPU/CPU absent: compile failure, as with PGI in the paper ({e})"
        )),
    }
    let (p, t) = traced_profile(export);
    let (d, tpl) = docrank::generate(docs);
    docrank::run_openmp_cpu(d, tpl, threshold, p.clone()).expect("openmp fallback");
    export_run("OpenMP-gcc CPU", &t, export);
    bars.push(c_bar("OpenMP-gcc CPU", &p, 3));
    let mut f = Figure {
        id: "3e".into(),
        title: format!("Document Ranking ({docs} docs x{rounds} rounds)"),
        bars,
        notes,
    };
    f.normalise(REFERENCE);
    f
}

/// The Figure 3c movability ablation (paper: ≈3 min without mov vs ≈5 s
/// with, on the GPU at 2048²).
pub fn ablation_mov(sizes: &Sizes, export: &TraceSink) -> Figure {
    let n = sizes.lud_n;
    let (p_mov, t_mov) = traced_profile(export);
    lud::run_ensemble(
        lud::generate(n),
        ensemble_ocl::DeviceSel::gpu(),
        p_mov.clone(),
    );
    export_run("mov channels", &t_mov, export);
    let (p_nomov, t_nomov) = traced_profile(export);
    lud::run_ensemble_nomov(
        lud::generate(n),
        ensemble_ocl::DeviceSel::gpu(),
        p_nomov.clone(),
    );
    export_run("copying channels", &t_nomov, export);
    let mut f = Figure {
        id: "3c-ablation".into(),
        title: format!("LUD movability ablation ({n}x{n}, GPU)"),
        bars: vec![
            c_bar("mov channels", &p_mov, 0),
            c_bar("copying channels", &p_nomov, 0),
        ],
        notes: vec!["paper: without movability LUD took ~3 minutes; with it ~5 seconds".into()],
    };
    f.normalise("mov channels");
    f
}
