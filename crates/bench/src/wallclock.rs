//! Wall-clock benchmark trajectory: the five applications on both
//! execution engines.
//!
//! Everything else in this harness is measured in *virtual* nanoseconds,
//! which by design cannot see how fast the simulator itself runs. This
//! module measures the other axis: real host time for the same five
//! Ensemble applications, once per execution engine (the reference stack
//! interpreter and the register-IR engine, see [`oclsim::engine`]).
//!
//! Each app is compiled once; the compiled module is then run to
//! completion `repeats` times per engine and the **minimum** wall time is
//! reported (the usual wall-clock benchmarking convention — the minimum is
//! the run least disturbed by the host). The first run per engine also
//! captures the program's print output, its virtual-clock segment totals,
//! and the retired abstract kernel ops, and the harness asserts the two
//! engines agree on all of them: the engines may only differ in host
//! speed, never in results or virtual time.
//!
//! Timing uses [`std::time::Instant`] with [`criterion::black_box`] on the
//! run reports, matching the workspace's criterion shim.

use crate::apps_ens::{self, Sizes};
use criterion::black_box;
use ensemble_vm::VmRuntime;
use oclsim::{set_default_engine, Engine, ProfileSink};
use std::time::Instant;
use trace::TraceSink;

/// What one engine measured for one application.
#[derive(Debug, Clone)]
pub struct EngineMeasure {
    /// Engine label (`"stack"` / `"register"`).
    pub engine: &'static str,
    /// Best (minimum) wall-clock time over the repeats, in host ns.
    pub wall_ns: u128,
    /// Abstract kernel ops per *host* second at the best wall time.
    pub ops_per_sec: f64,
    /// Captured print output of the first run.
    pub output: Vec<String>,
    /// Virtual-clock totals of the first run:
    /// `(to_device, from_device, kernel, vm)` ns.
    pub virtual_ns: (f64, f64, f64, f64),
    /// Abstract kernel ops retired by the first run.
    pub ops: u64,
    /// Interpreted VM ops of the first run.
    pub vm_ops: u64,
}

/// Both engines' measurements for one application.
#[derive(Debug, Clone)]
pub struct AppWallclock {
    /// Application name (e.g. `"matmul"`).
    pub app: String,
    /// Stack-engine measurement.
    pub stack: EngineMeasure,
    /// Register-engine measurement.
    pub register: EngineMeasure,
}

impl AppWallclock {
    /// Wall-clock speedup of the register engine over the stack engine.
    pub fn speedup(&self) -> f64 {
        self.stack.wall_ns as f64 / self.register.wall_ns.max(1) as f64
    }

    /// True when both engines printed identical output.
    pub fn outputs_match(&self) -> bool {
        self.stack.output == self.register.output
    }

    /// True when both engines agree on every virtual-clock figure and on
    /// the retired op counts. Op counts are exact integers and must match
    /// exactly; the per-segment ns totals are sums of identical per-event
    /// floats whose summation *order* follows actor-thread interleaving,
    /// so they are compared to within float re-association noise.
    pub fn virtual_clock_match(&self) -> bool {
        fn close(a: f64, b: f64) -> bool {
            a == b || (a - b).abs() <= 1e-9 * a.abs().max(b.abs())
        }
        let (s, r) = (self.stack.virtual_ns, self.register.virtual_ns);
        close(s.0, r.0)
            && close(s.1, r.1)
            && close(s.2, r.2)
            && close(s.3, r.3)
            && self.stack.ops == self.register.ops
            && self.stack.vm_ops == self.register.vm_ops
    }

    fn to_json(&self) -> String {
        let eng = |m: &EngineMeasure| {
            format!(
                "{{\"wall_ns\":{},\"ops_per_sec\":{:.1}}}",
                m.wall_ns, m.ops_per_sec
            )
        };
        format!(
            "{{\"app\":\"{}\",\"ops\":{},\"engines\":{{\"stack\":{},\"register\":{}}},\
             \"speedup\":{:.4},\"outputs_match\":{},\"virtual_clock_match\":{}}}",
            trace::escape_json(&self.app),
            self.stack.ops,
            eng(&self.stack),
            eng(&self.register),
            self.speedup(),
            self.outputs_match(),
            self.virtual_clock_match()
        )
    }
}

/// The full wall-clock report: all five applications, both engines.
#[derive(Debug, Clone)]
pub struct WallclockReport {
    /// Per-application results, in paper figure order.
    pub apps: Vec<AppWallclock>,
    /// Repeats each (app, engine) pair was run for.
    pub repeats: usize,
    /// `"bench"` or `"paper"`, matching the sizes used.
    pub sizes_label: String,
}

impl WallclockReport {
    /// Geometric mean of the per-app register-over-stack speedups.
    pub fn geomean_speedup(&self) -> f64 {
        if self.apps.is_empty() {
            return 1.0;
        }
        let log_sum: f64 = self.apps.iter().map(|a| a.speedup().ln()).sum();
        (log_sum / self.apps.len() as f64).exp()
    }

    /// True when every app's engines agreed on output and virtual clock.
    pub fn all_consistent(&self) -> bool {
        self.apps
            .iter()
            .all(|a| a.outputs_match() && a.virtual_clock_match())
    }

    /// Serialise as the `BENCH_*.json` schema (documented in the README).
    pub fn to_json(&self) -> String {
        let apps: Vec<String> = self.apps.iter().map(AppWallclock::to_json).collect();
        format!(
            "{{\"schema\":\"bench-wallclock-v1\",\"sizes\":\"{}\",\"repeats\":{},\
             \"geomean_speedup\":{:.4},\"all_consistent\":{},\"apps\":[{}]}}",
            trace::escape_json(&self.sizes_label),
            self.repeats,
            self.geomean_speedup(),
            self.all_consistent(),
            apps.join(",")
        )
    }

    /// Render as a text table.
    pub fn render(&self) -> String {
        let mut out = String::new();
        out.push_str(&format!(
            "Wall-clock engine comparison ({} sizes, best of {} runs)\n",
            self.sizes_label, self.repeats
        ));
        out.push_str(&format!(
            "{:<12} {:>12} {:>12} {:>8} {:>14} {:>14}  consistency\n",
            "app", "stack ms", "register ms", "speedup", "stack ops/s", "register ops/s"
        ));
        for a in &self.apps {
            out.push_str(&format!(
                "{:<12} {:>12.3} {:>12.3} {:>7.2}x {:>14.0} {:>14.0}  {}\n",
                a.app,
                a.stack.wall_ns as f64 / 1e6,
                a.register.wall_ns as f64 / 1e6,
                a.speedup(),
                a.stack.ops_per_sec,
                a.register.ops_per_sec,
                if a.outputs_match() && a.virtual_clock_match() {
                    "ok"
                } else {
                    "MISMATCH"
                }
            ));
        }
        out.push_str(&format!(
            "geometric-mean speedup: {:.2}x\n",
            self.geomean_speedup()
        ));
        out
    }
}

/// One timed run of an already-compiled module under the current default
/// engine.
struct RunMeasure {
    wall_ns: u128,
    output: Vec<String>,
    virtual_ns: (f64, f64, f64, f64),
    ops: u64,
    vm_ops: u64,
}

fn run_once(module: ensemble_lang::CompiledModule) -> Result<RunMeasure, String> {
    let sink = TraceSink::new();
    let profile = ProfileSink::new().with_trace(sink.clone());
    let start = Instant::now();
    let report = VmRuntime::with_profile(module, profile.clone())
        .run()
        .map_err(|e| e.to_string())?;
    let wall_ns = start.elapsed().as_nanos();
    black_box(&report);
    let segs = sink.segments();
    Ok(RunMeasure {
        wall_ns,
        output: report.output,
        virtual_ns: (
            segs.to_device_ns,
            segs.from_device_ns,
            segs.kernel_ns,
            segs.vm_ns,
        ),
        ops: profile.snapshot().ops,
        vm_ops: report.vm_ops,
    })
}

fn measure_engine(
    app: &str,
    module: &ensemble_lang::CompiledModule,
    engine: Engine,
    repeats: usize,
) -> Result<EngineMeasure, String> {
    set_default_engine(engine);
    let mut first: Option<RunMeasure> = None;
    let mut wall_ns = u128::MAX;
    for _ in 0..repeats.max(1) {
        let m = run_once(module.clone()).map_err(|e| format!("{app} ({}): {e}", engine.label()))?;
        wall_ns = wall_ns.min(m.wall_ns);
        if first.is_none() {
            first = Some(m);
        }
    }
    let first = first.expect("repeats >= 1");
    Ok(EngineMeasure {
        engine: engine.label(),
        wall_ns,
        ops_per_sec: first.ops as f64 * 1e9 / wall_ns.max(1) as f64,
        output: first.output,
        virtual_ns: first.virtual_ns,
        ops: first.ops,
        vm_ops: first.vm_ops,
    })
}

/// The five applications' Ensemble sources at `sizes`, GPU-targeted,
/// in paper figure order.
fn app_sources(sizes: &Sizes) -> Vec<(&'static str, String)> {
    vec![
        ("matmul", apps_ens::matmul(sizes.matmul_n, "GPU")),
        (
            "mandelbrot",
            apps_ens::mandelbrot(sizes.mandel_n, sizes.mandel_iters, "GPU"),
        ),
        ("lud", apps_ens::lud(sizes.lud_n, "GPU")),
        ("reduction", apps_ens::reduction(sizes.reduction_n, "GPU")),
        (
            "docrank",
            apps_ens::docrank(sizes.docrank_docs, sizes.docrank_rounds, "GPU"),
        ),
    ]
}

/// Run the full wall-clock comparison: every app, stack engine first,
/// then register, `repeats` runs each. Restores the process default
/// engine (register) before returning, on success and on error alike.
pub fn run_wallclock(
    sizes: &Sizes,
    sizes_label: &str,
    repeats: usize,
) -> Result<WallclockReport, String> {
    let result = run_wallclock_inner(sizes, sizes_label, repeats);
    set_default_engine(Engine::Register);
    result
}

fn run_wallclock_inner(
    sizes: &Sizes,
    sizes_label: &str,
    repeats: usize,
) -> Result<WallclockReport, String> {
    let mut apps = Vec::new();
    for (app, src) in app_sources(sizes) {
        let module =
            ensemble_analysis::compile_source(&src, &ensemble_analysis::Options::default())
                .map_err(|e| format!("{app}: {e}"))?;
        let stack = measure_engine(app, &module, Engine::Stack, repeats)?;
        let register = measure_engine(app, &module, Engine::Register, repeats)?;
        apps.push(AppWallclock {
            app: app.to_string(),
            stack,
            register,
        });
    }
    Ok(WallclockReport {
        apps,
        repeats,
        sizes_label: sizes_label.to_string(),
    })
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn engines_agree_and_report_serialises() {
        // Tiny sizes: this is a consistency test, not a benchmark.
        let sizes = Sizes {
            matmul_n: 8,
            mandel_n: 8,
            mandel_iters: 10,
            lud_n: 8,
            reduction_n: 256,
            docrank_docs: 64,
            docrank_rounds: 2,
        };
        let report = run_wallclock(&sizes, "tiny", 1).unwrap();
        assert_eq!(report.apps.len(), 5);
        for a in &report.apps {
            assert_eq!(a.stack.output, a.register.output, "{}: output", a.app);
            assert_eq!(a.stack.ops, a.register.ops, "{}: kernel ops", a.app);
            assert_eq!(a.stack.vm_ops, a.register.vm_ops, "{}: vm ops", a.app);
            assert!(
                a.virtual_clock_match(),
                "{}: clock {:?} vs {:?}",
                a.app,
                a.stack.virtual_ns,
                a.register.virtual_ns
            );
            assert!(a.stack.ops > 0, "{}: no kernel ops recorded", a.app);
        }
        assert!(report.all_consistent());
        let json = report.to_json();
        assert!(json.contains("\"schema\":\"bench-wallclock-v1\""));
        assert!(json.contains("\"app\":\"docrank\""));
        trace::json::validate(&json).unwrap();
        assert!(report.render().contains("geometric-mean"));
    }
}
