//! Wall-clock benchmark trajectory: the five applications on all three
//! execution engines.
//!
//! Everything else in this harness is measured in *virtual* nanoseconds,
//! which by design cannot see how fast the simulator itself runs. This
//! module measures the other axis: real host time for the same five
//! Ensemble applications, once per execution engine — the reference stack
//! interpreter, the register-IR engine, and the native work-group engine
//! (see [`oclsim::engine`] for the ladder).
//!
//! Each app is compiled once; the compiled module is then run to
//! completion `repeats` times per engine and the **minimum** wall time is
//! reported (the usual wall-clock benchmarking convention — the minimum is
//! the run least disturbed by the host). The first run per engine also
//! captures the program's print output, its virtual-clock segment totals,
//! the retired abstract kernel ops, and — from the kernel trace spans'
//! `engine` tag — which engine *actually executed* the dispatches (a rung
//! may decline a kernel and fall down the ladder, so the requested engine
//! is not evidence of what ran). The harness asserts the engines agree on
//! output, ops, and virtual clock: engines may only differ in host speed,
//! never in results or virtual time.
//!
//! Timing uses [`std::time::Instant`] with [`criterion::black_box`] on the
//! run reports, matching the workspace's criterion shim.

use crate::apps_ens::{self, Sizes};
use criterion::black_box;
use ensemble_vm::VmRuntime;
use oclsim::{set_default_engine, Engine, ProfileSink};
use std::time::Instant;
use trace::{SpanKind, TraceSink};

/// What one engine measured for one application.
#[derive(Debug, Clone)]
pub struct EngineMeasure {
    /// Engine label *requested* (`"stack"` / `"register"` / `"native"`).
    pub engine: &'static str,
    /// Best (minimum) wall-clock time over the repeats, in host ns.
    pub wall_ns: u128,
    /// Abstract kernel ops per *host* second at the best wall time.
    pub ops_per_sec: f64,
    /// Captured print output of the first run.
    pub output: Vec<String>,
    /// Virtual-clock totals of the first run:
    /// `(to_device, from_device, kernel, vm)` ns.
    pub virtual_ns: (f64, f64, f64, f64),
    /// Abstract kernel ops retired by the first run.
    pub ops: u64,
    /// Interpreted VM ops of the first run.
    pub vm_ops: u64,
    /// Engine labels that *actually executed* kernel dispatches in the
    /// first run, harvested from the trace spans' `engine` tag — sorted,
    /// deduplicated. `["native"]` means every dispatch ran on the native
    /// rung; a mixed list means some kernels fell down the ladder.
    pub ran: Vec<String>,
}

/// All three engines' measurements for one application.
#[derive(Debug, Clone)]
pub struct AppWallclock {
    /// Application name (e.g. `"matmul"`).
    pub app: String,
    /// Stack-engine measurement (reference, bottom rung).
    pub stack: EngineMeasure,
    /// Register-engine measurement (middle rung).
    pub register: EngineMeasure,
    /// Native-engine measurement (top rung, process default).
    pub native: EngineMeasure,
}

impl AppWallclock {
    /// Wall-clock speedup of the register engine over the stack engine.
    pub fn register_over_stack(&self) -> f64 {
        self.stack.wall_ns as f64 / self.register.wall_ns.max(1) as f64
    }

    /// Wall-clock speedup of the native engine over the register engine.
    pub fn native_over_register(&self) -> f64 {
        self.register.wall_ns as f64 / self.native.wall_ns.max(1) as f64
    }

    /// Wall-clock speedup of the native engine over the stack engine.
    pub fn native_over_stack(&self) -> f64 {
        self.stack.wall_ns as f64 / self.native.wall_ns.max(1) as f64
    }

    fn measures(&self) -> [&EngineMeasure; 3] {
        [&self.stack, &self.register, &self.native]
    }

    /// True when all three engines printed identical output.
    pub fn outputs_match(&self) -> bool {
        self.measures()
            .iter()
            .all(|m| m.output == self.stack.output)
    }

    /// True when all three engines agree on every virtual-clock figure
    /// and on the retired op counts. Op counts are exact integers and
    /// must match exactly; the per-segment ns totals are sums of
    /// identical per-event floats whose summation *order* follows
    /// actor-thread interleaving, so they are compared to within float
    /// re-association noise.
    pub fn virtual_clock_match(&self) -> bool {
        fn close(a: f64, b: f64) -> bool {
            a == b || (a - b).abs() <= 1e-9 * a.abs().max(b.abs())
        }
        let s = &self.stack;
        self.measures().iter().all(|m| {
            close(s.virtual_ns.0, m.virtual_ns.0)
                && close(s.virtual_ns.1, m.virtual_ns.1)
                && close(s.virtual_ns.2, m.virtual_ns.2)
                && close(s.virtual_ns.3, m.virtual_ns.3)
                && s.ops == m.ops
                && s.vm_ops == m.vm_ops
        })
    }

    fn to_json(&self) -> String {
        let eng = |m: &EngineMeasure| {
            let ran: Vec<String> = m
                .ran
                .iter()
                .map(|r| format!("\"{}\"", trace::escape_json(r)))
                .collect();
            format!(
                "{{\"wall_ns\":{},\"ops_per_sec\":{:.1},\"ran\":[{}]}}",
                m.wall_ns,
                m.ops_per_sec,
                ran.join(",")
            )
        };
        format!(
            "{{\"app\":\"{}\",\"ops\":{},\
             \"engines\":{{\"stack\":{},\"register\":{},\"native\":{}}},\
             \"register_over_stack\":{:.4},\"native_over_register\":{:.4},\
             \"native_over_stack\":{:.4},\
             \"outputs_match\":{},\"virtual_clock_match\":{}}}",
            trace::escape_json(&self.app),
            self.stack.ops,
            eng(&self.stack),
            eng(&self.register),
            eng(&self.native),
            self.register_over_stack(),
            self.native_over_register(),
            self.native_over_stack(),
            self.outputs_match(),
            self.virtual_clock_match()
        )
    }
}

/// The full wall-clock report: all five applications, all three engines.
#[derive(Debug, Clone)]
pub struct WallclockReport {
    /// Per-application results, in paper figure order.
    pub apps: Vec<AppWallclock>,
    /// Repeats each (app, engine) pair was run for.
    pub repeats: usize,
    /// `"bench"` or `"paper"`, matching the sizes used.
    pub sizes_label: String,
}

fn geomean(vals: impl Iterator<Item = f64>) -> f64 {
    let (mut log_sum, mut n) = (0.0f64, 0usize);
    for v in vals {
        log_sum += v.ln();
        n += 1;
    }
    if n == 0 {
        1.0
    } else {
        (log_sum / n as f64).exp()
    }
}

impl WallclockReport {
    /// Geometric mean of the per-app register-over-stack speedups.
    pub fn geomean_register_over_stack(&self) -> f64 {
        geomean(self.apps.iter().map(AppWallclock::register_over_stack))
    }

    /// Geometric mean of the per-app native-over-register speedups.
    pub fn geomean_native_over_register(&self) -> f64 {
        geomean(self.apps.iter().map(AppWallclock::native_over_register))
    }

    /// Geometric mean of the per-app native-over-stack speedups.
    pub fn geomean_native_over_stack(&self) -> f64 {
        geomean(self.apps.iter().map(AppWallclock::native_over_stack))
    }

    /// True when every app's engines agreed on output and virtual clock.
    pub fn all_consistent(&self) -> bool {
        self.apps
            .iter()
            .all(|a| a.outputs_match() && a.virtual_clock_match())
    }

    /// Serialise as the `BENCH_*.json` schema (documented in the README).
    pub fn to_json(&self) -> String {
        let apps: Vec<String> = self.apps.iter().map(AppWallclock::to_json).collect();
        format!(
            "{{\"schema\":\"bench-wallclock-v2\",\"sizes\":\"{}\",\"repeats\":{},\
             \"geomean_register_over_stack\":{:.4},\"geomean_native_over_register\":{:.4},\
             \"geomean_native_over_stack\":{:.4},\"all_consistent\":{},\"apps\":[{}]}}",
            trace::escape_json(&self.sizes_label),
            self.repeats,
            self.geomean_register_over_stack(),
            self.geomean_native_over_register(),
            self.geomean_native_over_stack(),
            self.all_consistent(),
            apps.join(",")
        )
    }

    /// Render as a text table.
    pub fn render(&self) -> String {
        let mut out = String::new();
        out.push_str(&format!(
            "Wall-clock engine comparison ({} sizes, best of {} runs)\n",
            self.sizes_label, self.repeats
        ));
        out.push_str(&format!(
            "{:<12} {:>11} {:>11} {:>11} {:>9} {:>9} {:>9}  consistency\n",
            "app", "stack ms", "reg ms", "native ms", "reg/stk", "nat/reg", "nat/stk"
        ));
        for a in &self.apps {
            out.push_str(&format!(
                "{:<12} {:>11.3} {:>11.3} {:>11.3} {:>8.2}x {:>8.2}x {:>8.2}x  {}\n",
                a.app,
                a.stack.wall_ns as f64 / 1e6,
                a.register.wall_ns as f64 / 1e6,
                a.native.wall_ns as f64 / 1e6,
                a.register_over_stack(),
                a.native_over_register(),
                a.native_over_stack(),
                if a.outputs_match() && a.virtual_clock_match() {
                    "ok"
                } else {
                    "MISMATCH"
                }
            ));
        }
        out.push_str(&format!(
            "geomean: register/stack {:.2}x, native/register {:.2}x, native/stack {:.2}x\n",
            self.geomean_register_over_stack(),
            self.geomean_native_over_register(),
            self.geomean_native_over_stack()
        ));
        out
    }
}

/// One timed run of an already-compiled module under the current default
/// engine.
struct RunMeasure {
    wall_ns: u128,
    output: Vec<String>,
    virtual_ns: (f64, f64, f64, f64),
    ops: u64,
    vm_ops: u64,
    ran: Vec<String>,
}

fn run_once(module: ensemble_lang::CompiledModule) -> Result<RunMeasure, String> {
    let sink = TraceSink::new();
    let profile = ProfileSink::new().with_trace(sink.clone());
    let start = Instant::now();
    let report = VmRuntime::with_profile(module, profile.clone())
        .run()
        .map_err(|e| e.to_string())?;
    let wall_ns = start.elapsed().as_nanos();
    black_box(&report);
    let events = sink.events();
    let segs = trace::Segments::from_events(&events);
    // Which engines *actually ran* kernels: the `engine` tag the dispatch
    // path stamps on every kernel span.
    let mut ran: Vec<String> = events
        .iter()
        .filter(|e| e.kind == SpanKind::Kernel)
        .flat_map(|e| e.args.iter())
        .filter(|(k, _)| k == "engine")
        .map(|(_, v)| v.clone())
        .collect();
    ran.sort();
    ran.dedup();
    Ok(RunMeasure {
        wall_ns,
        output: report.output,
        virtual_ns: (
            segs.to_device_ns,
            segs.from_device_ns,
            segs.kernel_ns,
            segs.vm_ns,
        ),
        ops: profile.snapshot().ops,
        vm_ops: report.vm_ops,
        ran,
    })
}

fn measure_engine(
    app: &str,
    module: &ensemble_lang::CompiledModule,
    engine: Engine,
    repeats: usize,
) -> Result<EngineMeasure, String> {
    set_default_engine(engine);
    let mut first: Option<RunMeasure> = None;
    let mut wall_ns = u128::MAX;
    for _ in 0..repeats.max(1) {
        let m = run_once(module.clone()).map_err(|e| format!("{app} ({}): {e}", engine.label()))?;
        wall_ns = wall_ns.min(m.wall_ns);
        if first.is_none() {
            first = Some(m);
        }
    }
    let first = first.expect("repeats >= 1");
    Ok(EngineMeasure {
        engine: engine.label(),
        wall_ns,
        ops_per_sec: first.ops as f64 * 1e9 / wall_ns.max(1) as f64,
        output: first.output,
        virtual_ns: first.virtual_ns,
        ops: first.ops,
        vm_ops: first.vm_ops,
        ran: first.ran,
    })
}

/// The five applications' Ensemble sources at `sizes`, GPU-targeted,
/// in paper figure order.
fn app_sources(sizes: &Sizes) -> Vec<(&'static str, String)> {
    vec![
        ("matmul", apps_ens::matmul(sizes.matmul_n, "GPU")),
        (
            "mandelbrot",
            apps_ens::mandelbrot(sizes.mandel_n, sizes.mandel_iters, "GPU"),
        ),
        ("lud", apps_ens::lud(sizes.lud_n, "GPU")),
        ("reduction", apps_ens::reduction(sizes.reduction_n, "GPU")),
        (
            "docrank",
            apps_ens::docrank(sizes.docrank_docs, sizes.docrank_rounds, "GPU"),
        ),
    ]
}

/// Run the full wall-clock comparison: every app, stack engine first,
/// then register, then native, `repeats` runs each. Restores the process
/// default engine (native) before returning, on success and on error
/// alike.
pub fn run_wallclock(
    sizes: &Sizes,
    sizes_label: &str,
    repeats: usize,
) -> Result<WallclockReport, String> {
    let result = run_wallclock_inner(sizes, sizes_label, repeats);
    set_default_engine(Engine::Native);
    result
}

fn run_wallclock_inner(
    sizes: &Sizes,
    sizes_label: &str,
    repeats: usize,
) -> Result<WallclockReport, String> {
    let mut apps = Vec::new();
    for (app, src) in app_sources(sizes) {
        let module =
            ensemble_analysis::compile_source(&src, &ensemble_analysis::Options::default())
                .map_err(|e| format!("{app}: {e}"))?;
        let stack = measure_engine(app, &module, Engine::Stack, repeats)?;
        let register = measure_engine(app, &module, Engine::Register, repeats)?;
        let native = measure_engine(app, &module, Engine::Native, repeats)?;
        apps.push(AppWallclock {
            app: app.to_string(),
            stack,
            register,
            native,
        });
    }
    Ok(WallclockReport {
        apps,
        repeats,
        sizes_label: sizes_label.to_string(),
    })
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn engines_agree_and_report_serialises() {
        // Tiny sizes: this is a consistency test, not a benchmark.
        let sizes = Sizes {
            matmul_n: 8,
            mandel_n: 8,
            mandel_iters: 10,
            lud_n: 8,
            reduction_n: 256,
            docrank_docs: 64,
            docrank_rounds: 2,
        };
        let report = run_wallclock(&sizes, "tiny", 1).unwrap();
        assert_eq!(report.apps.len(), 5);
        for a in &report.apps {
            for m in [&a.register, &a.native] {
                assert_eq!(a.stack.output, m.output, "{} {}: output", a.app, m.engine);
                assert_eq!(a.stack.ops, m.ops, "{} {}: kernel ops", a.app, m.engine);
                assert_eq!(a.stack.vm_ops, m.vm_ops, "{} {}: vm ops", a.app, m.engine);
            }
            assert!(
                a.virtual_clock_match(),
                "{}: clock {:?} vs {:?} vs {:?}",
                a.app,
                a.stack.virtual_ns,
                a.register.virtual_ns,
                a.native.virtual_ns
            );
            assert!(a.stack.ops > 0, "{}: no kernel ops recorded", a.app);
            // The trace tag records what actually ran, not what was asked.
            assert_eq!(a.stack.ran, vec!["stack"], "{}: stack ran", a.app);
            assert_eq!(a.register.ran, vec!["register"], "{}: register ran", a.app);
            assert_eq!(a.native.ran, vec!["native"], "{}: native ran", a.app);
        }
        assert!(report.all_consistent());
        let json = report.to_json();
        assert!(json.contains("\"schema\":\"bench-wallclock-v2\""));
        assert!(json.contains("\"app\":\"docrank\""));
        assert!(json.contains("\"ran\":[\"native\"]"));
        trace::json::validate(&json).unwrap();
        assert!(report.render().contains("geomean:"));
    }
}
