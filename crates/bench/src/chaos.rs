//! Chaos mode: the five applications under seeded fault schedules.
//!
//! The robustness claim the harness checks is *fail-recover-finish*: with
//! a deterministic [`FaultPlan`] attached to the simulated GPU, every
//! application still completes and produces exactly the output of a
//! fault-free run — the recovery layer (bounded retries with virtual-clock
//! backoff, device failover, channel poisoning) absorbs the injected
//! faults instead of surfacing them.
//!
//! Two scenarios are provided:
//!
//! * [`run_chaos`] — all five apps through the compiler + VM with a seeded
//!   transient schedule (plus one guaranteed fault, so every app sees at
//!   least one) on the GPU queue. Outputs must match a fault-free
//!   reference run, and because every transient fault is answered by
//!   exactly one retry, the trace's [`SpanKind::Retry`] count must equal
//!   the injector's fired-fault count.
//! * [`run_failover_chaos`] — the programmatic matmul actor with a
//!   permanent [`InjectedFault::DeviceLost`] on the GPU's first dispatch:
//!   the kernel actor must evacuate its buffers through the rescue
//!   read-back path, fail over to the CPU matrix entry, and still produce
//!   the reference product.
//! * [`run_kill_chaos`] — all five apps with a seeded **kill** schedule
//!   ([`InjectedFault::Kill`]): actors die mid-protocol (by panic or
//!   abrupt exit) and the VM's supervisor restarts each one from its
//!   checkpoint. Outputs must match the fault-free reference, and every
//!   kill must surface in the trace as an [`SpanKind::ActorExit`] /
//!   [`SpanKind::Restart`] pair.
//!
//! The simulated devices are process-global, so chaos runs serialise on an
//! internal lock and always detach their injector afterwards — even when
//! the run fails.

use crate::apps_ens::{self, Sizes};
use crate::TraceSink;
use ensemble_ocl::{device_matrix, DeviceSel, ProfileSink};
use ensemble_vm::VmRuntime;
use oclsim::fault::{FaultInjector, FaultOp, FaultPlan, InjectedFault, KillMode};
use trace::SpanKind;

/// Serialises chaos runs: injectors attach to the process-global device
/// matrix queues, so two concurrent chaos runs would see each other's
/// faults. (Shared with the SDC harness in [`crate::sdc`], which uses
/// private lanes but serialises anyway so chaos-mode wall timings are
/// never polluted by a concurrent run.)
pub(crate) static CHAOS_LOCK: std::sync::Mutex<()> = std::sync::Mutex::new(());

/// Outcome of one application run under an injected fault schedule.
#[derive(Debug, Clone)]
pub struct ChaosOutcome {
    /// Application name (e.g. `"matmul"`).
    pub app: String,
    /// Faults the injector actually fired.
    pub injected: usize,
    /// [`SpanKind::Retry`] instants the recovery layer recorded.
    pub retries: usize,
    /// [`SpanKind::Failover`] instants the recovery layer recorded.
    pub failovers: usize,
    /// [`InjectedFault::Kill`] faults the injector fired.
    pub kills: usize,
    /// [`SpanKind::ActorExit`] instants the supervisor recorded (abnormal
    /// child exits).
    pub exits: usize,
    /// [`SpanKind::Restart`] instants the supervisor recorded.
    pub restarts: usize,
    /// Whether the run's output matched the fault-free reference.
    pub matches_reference: bool,
}

impl ChaosOutcome {
    /// One-line summary for the harness output.
    pub fn render(&self) -> String {
        format!(
            "{:<12} injected {:>3}  retries {:>3}  failovers {:>2}  kills {:>2}  exits {:>2}  restarts {:>2}  output {}",
            self.app,
            self.injected,
            self.retries,
            self.failovers,
            self.kills,
            self.exits,
            self.restarts,
            if self.matches_reference {
                "ok"
            } else {
                "MISMATCH"
            }
        )
    }
}

/// The transient chaos schedule for one app: roughly one in `period`
/// device operations fails once with `DeviceBusy`, plus a guaranteed
/// fault on the very first upload so even the smallest schedule injects
/// at least one.
pub fn chaos_plan(seed: u64, period: u64) -> FaultPlan {
    FaultPlan::seeded_transient(seed, period)
        .expect("chaos harness periods are valid")
        .fail(FaultOp::Upload, 0, InjectedFault::Transient)
}

/// The kill schedule for one app: the very first dispatch dies by panic
/// (so every app exercises at least one supervised restart — and the
/// panic flavour, the harder of the two kill modes), plus seeded kills on
/// roughly one in `period` eligible operations. `max_kills` caps the
/// total (explicit kill included) so long schedules stay within the
/// supervisor's restart budget.
pub fn kill_plan(seed: u64, period: u64, max_kills: u64) -> FaultPlan {
    FaultPlan::new()
        .fail(FaultOp::Enqueue, 0, InjectedFault::Kill(KillMode::Panic))
        .seeded_kills(seed, period, max_kills)
        .expect("kill harness periods are valid")
}

fn count(events: &[trace::TraceEvent], kind: SpanKind) -> usize {
    events.iter().filter(|e| e.kind == kind).count()
}

/// Run one compiled Ensemble source with `injector` attached to the GPU
/// matrix entry (queue + context), recording into a fresh trace sink.
/// Returns the program's print output and the trace events. The injector
/// is detached before returning, on success and on error alike.
///
/// The caller must hold [`CHAOS_LOCK`]; the helper takes it internally in
/// the public entry points.
fn traced_gpu_run(
    src: &str,
    injector: &FaultInjector,
) -> Result<(Vec<String>, Vec<trace::TraceEvent>), String> {
    let module = ensemble_analysis::compile_source(src, &ensemble_analysis::Options::default())
        .map_err(|e| e.to_string())?;
    let sink = TraceSink::new();
    let profile = ProfileSink::new().with_trace(sink.clone());
    injector.attach_trace(sink.clone());
    let entry = device_matrix()
        .select(DeviceSel::gpu())
        .map_err(|e| e.to_string())?;
    entry.queue.attach_faults(injector.clone());
    entry.context.attach_faults(injector.clone());
    let result = VmRuntime::with_profile(module, profile).run();
    entry.queue.attach_faults(FaultInjector::disabled());
    entry.context.attach_faults(FaultInjector::disabled());
    let report = result.map_err(|e| e.to_string())?;
    Ok((report.output, sink.events()))
}

/// Run one `.ens` source clean, then under `plan`, and compare outputs.
pub fn run_app_chaos(app: &str, src: &str, plan: FaultPlan) -> Result<ChaosOutcome, String> {
    let _serial = CHAOS_LOCK.lock().unwrap_or_else(|e| e.into_inner());
    let (reference, _) = traced_gpu_run(src, &FaultInjector::disabled())
        .map_err(|e| format!("{app}: reference run failed: {e}"))?;
    let injector = FaultInjector::new(plan);
    let (output, events) =
        traced_gpu_run(src, &injector).map_err(|e| format!("{app}: chaos run failed: {e}"))?;
    Ok(ChaosOutcome {
        app: app.to_string(),
        injected: injector.injected_count(),
        retries: count(&events, SpanKind::Retry),
        failovers: count(&events, SpanKind::Failover),
        kills: injector.kill_count(),
        exits: count(&events, SpanKind::ActorExit),
        restarts: count(&events, SpanKind::Restart),
        matches_reference: output == reference,
    })
}

/// All five applications under a seeded transient schedule on the GPU.
///
/// Each app gets its own schedule derived from `seed` (so a fault landing
/// at, say, upload #7 in one app does not force the same index on all),
/// with a fault rate of roughly one in 13 operations.
pub fn run_chaos(seed: u64, sizes: &Sizes) -> Result<Vec<ChaosOutcome>, String> {
    let apps: [(&str, String); 5] = [
        ("matmul", apps_ens::matmul(sizes.matmul_n, "GPU")),
        (
            "mandelbrot",
            apps_ens::mandelbrot(sizes.mandel_n, sizes.mandel_iters, "GPU"),
        ),
        ("lud", apps_ens::lud(sizes.lud_n, "GPU")),
        ("reduction", apps_ens::reduction(sizes.reduction_n, "GPU")),
        (
            "docrank",
            apps_ens::docrank(sizes.docrank_docs, sizes.docrank_rounds, "GPU"),
        ),
    ];
    let mut outcomes = Vec::with_capacity(apps.len());
    for (i, (app, src)) in apps.iter().enumerate() {
        let plan = chaos_plan(seed.wrapping_add(i as u64), 13);
        outcomes.push(run_app_chaos(app, src, plan)?);
    }
    Ok(outcomes)
}

/// All five applications under a seeded **kill** schedule on the GPU.
///
/// Each app's schedule is derived from `seed` (per-app offset, as in
/// [`run_chaos`]): the first dispatch dies by panic, and roughly one in
/// 17 further upload/dispatch operations kills the issuing actor, capped
/// at 3 kills per app. The VM's supervisor restarts every killed actor
/// from its checkpoint, so the output must be byte-identical to the
/// fault-free reference and every kill must appear in the trace as an
/// `ActorExit`/`Restart` pair.
pub fn run_kill_chaos(seed: u64, sizes: &Sizes) -> Result<Vec<ChaosOutcome>, String> {
    let apps: [(&str, String); 5] = [
        ("matmul", apps_ens::matmul(sizes.matmul_n, "GPU")),
        (
            "mandelbrot",
            apps_ens::mandelbrot(sizes.mandel_n, sizes.mandel_iters, "GPU"),
        ),
        ("lud", apps_ens::lud(sizes.lud_n, "GPU")),
        ("reduction", apps_ens::reduction(sizes.reduction_n, "GPU")),
        (
            "docrank",
            apps_ens::docrank(sizes.docrank_docs, sizes.docrank_rounds, "GPU"),
        ),
    ];
    let mut outcomes = Vec::with_capacity(apps.len());
    for (i, (app, src)) in apps.iter().enumerate() {
        let plan = kill_plan(seed.wrapping_add(i as u64), 17, 3);
        outcomes.push(run_app_chaos(app, src, plan)?);
    }
    Ok(outcomes)
}

/// Byte-identity probe for the injection layer itself: run the matmul
/// kernel's full command sequence (build, three uploads, dispatch,
/// read-back) against a **private** context + queue whose virtual clock
/// starts at zero, and return the run's Chrome trace JSON. With
/// `with_empty_plan` the queue and context carry a [`FaultInjector`]
/// built from an empty [`FaultPlan`]; without it they carry the default
/// disabled injector. The two traces must be byte-identical — an empty
/// plan charges no virtual time and records no events.
///
/// (The figure apps themselves run on the process-global device matrix,
/// whose queue clock is monotone across runs — so *absolute* timestamps
/// there can never be compared byte-for-byte between two runs, plan or
/// no plan. A private queue pins the clock origin and makes the
/// byte-level claim testable.)
pub fn empty_plan_trace(with_empty_plan: bool) -> Result<String, String> {
    use ensemble_apps::matmul;
    use oclsim::{CommandQueue, Context, DeviceType, MemFlags, NdRange, Platform, Program};
    let err = |e: &dyn std::fmt::Display| e.to_string();
    let device = Platform::default_device(DeviceType::Gpu).ok_or("no GPU device")?;
    let context = Context::new(std::slice::from_ref(&device)).map_err(|e| err(&e))?;
    let queue = CommandQueue::new(&context, &device).map_err(|e| err(&e))?;
    let sink = TraceSink::new();
    let profile = ProfileSink::new().with_trace(sink.clone());
    if with_empty_plan {
        let injector = FaultInjector::new(FaultPlan::new());
        injector.attach_trace(sink.clone());
        queue.attach_faults(injector.clone());
        context.attach_faults(injector);
    }
    let n = 16usize;
    let (a, b) = matmul::generate(n);
    let program = Program::build(&context, matmul::KERNEL_SRC).map_err(|e| err(&e))?;
    let kernel = program.create_kernel("multiply").map_err(|e| err(&e))?;
    let bytes = n * n * 4;
    let mut bufs = Vec::new();
    for data in [a.as_slice(), b.as_slice(), &vec![0.0; n * n]] {
        let buf = context
            .create_buffer(MemFlags::ReadWrite, bytes)
            .map_err(|e| err(&e))?;
        let ev = queue.write_f32(&buf, data).map_err(|e| err(&e))?;
        profile.record_command(&ev, device.name());
        bufs.push(buf);
    }
    for (i, buf) in bufs.iter().enumerate() {
        kernel.set_arg_buffer(i, buf).map_err(|e| err(&e))?;
    }
    for i in 0..6 {
        kernel.set_arg_i32(3 + i, n as i32).map_err(|e| err(&e))?;
    }
    let ev = queue
        .enqueue_nd_range(&kernel, &NdRange::d2([n, n], [4, 4]))
        .map_err(|e| err(&e))?;
    profile.record_command(&ev, device.name());
    let (_, ev) = queue.read_f32(&bufs[2]).map_err(|e| err(&e))?;
    profile.record_command(&ev, device.name());
    context.release_bytes(3 * bytes);
    Ok(trace::chrome_json(&sink.events()))
}

/// The permanent-failure scenario: matmul through the programmatic kernel
/// actor, with the GPU declared lost on its first dispatch. The recovery
/// layer must rescue the uploaded buffers over the still-open read-back
/// path, fail over to the CPU matrix entry, and complete with the
/// reference result. `n` must satisfy matmul's work-group constraint
/// (16 divides `n`, or `n` ≤ 16).
pub fn run_failover_chaos(n: usize) -> Result<ChaosOutcome, String> {
    use ensemble_apps::matmul;
    let _serial = CHAOS_LOCK.lock().unwrap_or_else(|e| e.into_inner());
    let (a, b) = matmul::generate(n);
    let expected = matmul::reference(&a, &b);
    let sink = TraceSink::new();
    let profile = ProfileSink::new().with_trace(sink.clone());
    let injector =
        FaultInjector::new(FaultPlan::new().fail(FaultOp::Enqueue, 0, InjectedFault::DeviceLost));
    injector.attach_trace(sink.clone());
    let entry = device_matrix()
        .select(DeviceSel::gpu())
        .map_err(|e| e.to_string())?;
    entry.queue.attach_faults(injector.clone());
    let got = std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| {
        matmul::run_ensemble(a, b, DeviceSel::gpu(), profile)
    }));
    entry.queue.attach_faults(FaultInjector::disabled());
    let got = got.map_err(|_| "matmul run panicked under DeviceLost".to_string())?;
    let close = got
        .as_slice()
        .iter()
        .zip(expected.as_slice())
        .all(|(x, y)| (x - y).abs() <= 1e-3 * x.abs().max(1.0));
    let events = sink.events();
    Ok(ChaosOutcome {
        app: "matmul/failover".to_string(),
        injected: injector.injected_count(),
        retries: count(&events, SpanKind::Retry),
        failovers: count(&events, SpanKind::Failover),
        kills: injector.kill_count(),
        exits: count(&events, SpanKind::ActorExit),
        restarts: count(&events, SpanKind::Restart),
        matches_reference: close,
    })
}

#[cfg(test)]
mod tests {
    use super::*;

    fn small() -> Sizes {
        Sizes {
            matmul_n: 16,
            mandel_n: 16,
            mandel_iters: 20,
            lud_n: 16,
            reduction_n: 1 << 10,
            docrank_docs: 128,
            docrank_rounds: 3,
        }
    }

    #[test]
    fn seeded_transients_are_absorbed_in_every_app() {
        for o in run_chaos(0xc4a05, &small()).unwrap() {
            assert!(o.matches_reference, "{}", o.render());
            assert!(o.injected >= 1, "{}", o.render());
            assert_eq!(o.retries, o.injected, "{}", o.render());
            assert_eq!(o.failovers, 0, "{}", o.render());
        }
    }

    #[test]
    fn seeded_kills_are_survived_byte_identically_across_seeds() {
        // The acceptance bar for kill-chaos: for several seeds, every app
        // finishes with output byte-identical to the fault-free
        // reference, and every injected kill shows up in the trace as an
        // ActorExit/Restart pair (no silent kill, no spurious restart).
        for seed in [1u64, 2, 3] {
            for o in run_kill_chaos(seed, &small()).unwrap() {
                assert!(o.matches_reference, "seed {seed}: {}", o.render());
                assert!(o.kills >= 1, "seed {seed}: {}", o.render());
                assert_eq!(o.exits, o.kills, "seed {seed}: {}", o.render());
                assert_eq!(o.restarts, o.kills, "seed {seed}: {}", o.render());
                assert_eq!(o.failovers, 0, "seed {seed}: {}", o.render());
            }
        }
    }

    #[test]
    fn device_lost_fails_over_and_completes() {
        let o = run_failover_chaos(16).unwrap();
        assert!(o.matches_reference, "{}", o.render());
        assert!(o.failovers >= 1, "{}", o.render());
        assert!(o.injected >= 1, "{}", o.render());
    }

    #[test]
    fn empty_plan_leaves_the_trace_byte_identical() {
        let src = apps_ens::matmul(16, "GPU");
        let _serial = CHAOS_LOCK.lock().unwrap_or_else(|e| e.into_inner());
        let (out_a, ev_a) = traced_gpu_run(&src, &FaultInjector::disabled()).unwrap();
        let (out_b, ev_b) = traced_gpu_run(&src, &FaultInjector::new(FaultPlan::new())).unwrap();
        assert_eq!(out_a, out_b);
        // No fault, retry, or failover instants — and the same events
        // otherwise. (Traces also carry wall-clock channel-wait spans and
        // thread-interleaved recording order, which legitimately differ
        // between any two runs; the byte-stable artefact is the multiset
        // of virtual-clock segment durations per category.)
        assert_eq!(ev_a.len(), ev_b.len());
        for kind in [SpanKind::FaultInjected, SpanKind::Retry, SpanKind::Failover] {
            assert_eq!(count(&ev_b, kind), 0, "{kind:?}");
        }
        // Segment totals agree to clock precision. (The global GPU queue
        // clock is monotone across the two runs, so `start + cost`
        // rounds at different magnitudes — durations can differ by ULPs
        // even between two *uninjected* runs; the byte-level claim is
        // made on a pinned clock in `empty_plan_is_byte_identical`.)
        let (sa, sb) = (
            trace::Segments::from_events(&ev_a),
            trace::Segments::from_events(&ev_b),
        );
        for (a, b) in [
            (sa.to_device_ns, sb.to_device_ns),
            (sa.from_device_ns, sb.from_device_ns),
            (sa.kernel_ns, sb.kernel_ns),
            (sa.vm_ns, sb.vm_ns),
        ] {
            assert!((a - b).abs() <= 1e-9 * a.abs().max(1.0), "{a} vs {b}");
        }
    }

    #[test]
    fn empty_plan_is_byte_identical_on_a_pinned_clock() {
        let without = empty_plan_trace(false).unwrap();
        let with = empty_plan_trace(true).unwrap();
        assert_eq!(without, with);
    }
}
