//! Figure 3c: LUD — three kernels in series — under the three approaches.

use bench::apps_ens;
use criterion::{criterion_group, criterion_main, Criterion};
use ensemble_apps::lud;
use ensemble_lang::compile_source;
use ensemble_vm::VmRuntime;
use oclsim::{DeviceType, ProfileSink};

const N: usize = 32;

fn bench(c: &mut Criterion) {
    let mut g = c.benchmark_group("fig3c_lud");
    g.sample_size(10);
    g.bench_function("ensemble_vm_gpu", |b| {
        let src = apps_ens::lud(N, "GPU");
        let module = compile_source(&src).unwrap();
        b.iter(|| VmRuntime::new(module.clone()).run().unwrap())
    });
    g.bench_function("c_opencl_gpu", |b| {
        b.iter(|| lud::run_copencl(lud::generate(N), DeviceType::Gpu, ProfileSink::new()))
    });
    g.bench_function("c_openacc_gpu", |b| {
        b.iter(|| {
            lud::run_openacc(
                lud::generate(N),
                baselines::acc::AccTarget::gpu(),
                ProfileSink::new(),
            )
            .unwrap()
        })
    });
    g.finish();
}

criterion_group!(benches, bench);
criterion_main!(benches);
