//! Figure 3e: document ranking — Ensemble (mov) vs C-OpenCL vs the OpenMP
//! CPU fallback (the OpenACC GPU build fails, as in the paper).

use bench::apps_ens;
use criterion::{criterion_group, criterion_main, Criterion};
use ensemble_apps::docrank;
use ensemble_lang::compile_source;
use ensemble_vm::VmRuntime;
use oclsim::{DeviceType, ProfileSink};

const DOCS: usize = 512;
const ROUNDS: usize = 5;

fn bench(c: &mut Criterion) {
    let mut g = c.benchmark_group("fig3e_docrank");
    g.sample_size(10);
    g.bench_function("ensemble_vm_gpu", |b| {
        let src = apps_ens::docrank(DOCS, ROUNDS, "GPU");
        let module = compile_source(&src).unwrap();
        b.iter(|| VmRuntime::new(module.clone()).run().unwrap())
    });
    g.bench_function("c_opencl_gpu", |b| {
        b.iter(|| {
            let (d, t) = docrank::generate(DOCS);
            docrank::run_copencl(
                d,
                t,
                docrank::threshold(),
                DeviceType::Gpu,
                ProfileSink::new(),
            )
        })
    });
    g.bench_function("openmp_cpu", |b| {
        b.iter(|| {
            let (d, t) = docrank::generate(DOCS);
            docrank::run_openmp_cpu(d, t, docrank::threshold(), ProfileSink::new()).unwrap()
        })
    });
    g.finish();
}

criterion_group!(benches, bench);
criterion_main!(benches);
