//! The movability ablation (Figure 3c discussion): LUD with `mov` channels
//! vs copying channels — both wall-clock (here) and virtual-time
//! (`figures -- ablation`).

use criterion::{criterion_group, criterion_main, Criterion};
use ensemble_apps::lud;
use ensemble_ocl::{DeviceSel, ProfileSink};

const N: usize = 32;

fn bench(c: &mut Criterion) {
    let mut g = c.benchmark_group("ablation_mov");
    g.sample_size(10);
    g.bench_function("lud_mov", |b| {
        b.iter(|| lud::run_ensemble(lud::generate(N), DeviceSel::gpu(), ProfileSink::new()))
    });
    g.bench_function("lud_nomov", |b| {
        b.iter(|| lud::run_ensemble_nomov(lud::generate(N), DeviceSel::gpu(), ProfileSink::new()))
    });
    g.finish();
}

criterion_group!(benches, bench);
criterion_main!(benches);
