//! Table 1 micro-benchmark: how long the metric analyzers take over the
//! full application source set (and a smoke check that the table builds).

use criterion::{criterion_group, criterion_main, Criterion};

fn bench(c: &mut Criterion) {
    c.bench_function("table1/measure_all_sources", |b| {
        b.iter(|| {
            let rows = bench::table1::rows();
            assert_eq!(rows.len(), 15);
            std::hint::black_box(rows)
        })
    });
}

criterion_group!(benches, bench);
criterion_main!(benches);
