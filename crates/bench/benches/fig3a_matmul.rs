//! Figure 3a: matrix multiplication under the three approaches (GPU sim).
//!
//! Criterion measures wall-clock of the full application runs (kernels are
//! interpreted); the *virtual-time* figure itself comes from
//! `cargo run -p bench --bin figures -- fig3a`.

use bench::apps_ens;
use criterion::{criterion_group, criterion_main, Criterion};
use ensemble_apps::matmul;
use ensemble_lang::compile_source;
use ensemble_vm::VmRuntime;
use oclsim::{DeviceType, ProfileSink};

const N: usize = 48;

fn bench(c: &mut Criterion) {
    let mut g = c.benchmark_group("fig3a_matmul");
    g.sample_size(10);
    g.bench_function("ensemble_vm_gpu", |b| {
        let src = apps_ens::matmul(N, "GPU");
        let module = compile_source(&src).unwrap();
        b.iter(|| VmRuntime::new(module.clone()).run().unwrap())
    });
    g.bench_function("c_opencl_gpu", |b| {
        b.iter(|| {
            let (a, m) = matmul::generate(N);
            matmul::run_copencl(a, m, DeviceType::Gpu, ProfileSink::new())
        })
    });
    g.bench_function("c_openacc_gpu", |b| {
        b.iter(|| {
            let (a, m) = matmul::generate(N);
            matmul::run_openacc(a, m, baselines::acc::AccTarget::gpu(), ProfileSink::new()).unwrap()
        })
    });
    g.finish();
}

criterion_group!(benches, bench);
criterion_main!(benches);
