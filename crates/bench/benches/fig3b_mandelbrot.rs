//! Figure 3b: Mandelbrot under the three approaches (GPU sim).

use bench::apps_ens;
use criterion::{criterion_group, criterion_main, Criterion};
use ensemble_apps::mandelbrot;
use ensemble_lang::compile_source;
use ensemble_vm::VmRuntime;
use oclsim::{DeviceType, ProfileSink};

const N: usize = 48;
const ITERS: u32 = 80;

fn bench(c: &mut Criterion) {
    let mut g = c.benchmark_group("fig3b_mandelbrot");
    g.sample_size(10);
    g.bench_function("ensemble_vm_gpu", |b| {
        let src = apps_ens::mandelbrot(N, ITERS as usize, "GPU");
        let module = compile_source(&src).unwrap();
        b.iter(|| VmRuntime::new(module.clone()).run().unwrap())
    });
    g.bench_function("c_opencl_gpu", |b| {
        b.iter(|| mandelbrot::run_copencl(N, N, ITERS, DeviceType::Gpu, ProfileSink::new()))
    });
    g.bench_function("c_openacc_gpu", |b| {
        b.iter(|| {
            mandelbrot::run_openacc(
                N,
                N,
                ITERS,
                baselines::acc::AccTarget::gpu(),
                ProfileSink::new(),
            )
            .unwrap()
        })
    });
    g.finish();
}

criterion_group!(benches, bench);
criterion_main!(benches);
