//! Host-side evaluator for mini-C functions.
//!
//! Runs plain (non-`__kernel`) functions from a mini OpenCL-C translation
//! unit sequentially on the host. Two roles in the reproduction:
//!
//! * it executes the **single-threaded C** versions of the five evaluation
//!   applications (the same sources `code-metrics` measures for Table 1),
//!   providing the functional reference every parallel version is checked
//!   against; and
//! * it is the host half of the OpenACC-style engine
//!   ([`crate::acc`]): statements between annotated loops run here, while
//!   annotated loops are intercepted through [`LoopHook`].

use oclsim::minicl::ast::*;
use oclsim::minicl::token::Pos;
use std::cell::RefCell;
use std::collections::HashMap;
use std::rc::Rc;

/// A scalar value during host evaluation.
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum HVal {
    /// Integer register.
    I(i64),
    /// Float register.
    F(f64),
}

impl HVal {
    /// Integer view (truncates floats, like a C cast).
    pub fn as_i(self) -> i64 {
        match self {
            HVal::I(v) => v,
            HVal::F(v) => v as i64,
        }
    }

    /// Float view.
    pub fn as_f(self) -> f64 {
        match self {
            HVal::I(v) => v as f64,
            HVal::F(v) => v,
        }
    }

    /// C truthiness.
    pub fn truthy(self) -> bool {
        match self {
            HVal::I(v) => v != 0,
            HVal::F(v) => v != 0.0,
        }
    }
}

/// A host-resident array, shared by reference like a C pointer.
#[derive(Debug, Clone, PartialEq)]
pub enum HostArray {
    /// `float*` data.
    F32(Vec<f32>),
    /// `int*` data.
    I32(Vec<i32>),
}

impl HostArray {
    /// Element count.
    pub fn len(&self) -> usize {
        match self {
            HostArray::F32(v) => v.len(),
            HostArray::I32(v) => v.len(),
        }
    }

    /// True when empty.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    fn get(&self, i: usize) -> Option<HVal> {
        match self {
            HostArray::F32(v) => v.get(i).map(|&x| HVal::F(x as f64)),
            HostArray::I32(v) => v.get(i).map(|&x| HVal::I(x as i64)),
        }
    }

    fn set(&mut self, i: usize, v: HVal) -> bool {
        match self {
            HostArray::F32(a) => {
                if let Some(slot) = a.get_mut(i) {
                    *slot = v.as_f() as f32;
                    true
                } else {
                    false
                }
            }
            HostArray::I32(a) => {
                if let Some(slot) = a.get_mut(i) {
                    *slot = v.as_i() as i32;
                    true
                } else {
                    false
                }
            }
        }
    }
}

/// Shared handle to a host array (a "pointer").
pub type ArrRef = Rc<RefCell<HostArray>>;

/// Wrap data as an array argument.
pub fn array_f32(data: Vec<f32>) -> ArrRef {
    Rc::new(RefCell::new(HostArray::F32(data)))
}

/// Wrap data as an int array argument.
pub fn array_i32(data: Vec<i32>) -> ArrRef {
    Rc::new(RefCell::new(HostArray::I32(data)))
}

/// An argument to a host function call.
#[derive(Debug, Clone)]
pub enum HArg {
    /// Scalar by value.
    Scalar(HVal),
    /// Array by reference.
    Array(ArrRef),
}

/// Evaluation error with position.
#[derive(Debug, Clone, PartialEq)]
pub struct EvalError {
    /// Description.
    pub message: String,
    /// Source position (best effort).
    pub pos: Pos,
}

impl std::fmt::Display for EvalError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "{}: eval error: {}", self.pos, self.message)
    }
}

impl std::error::Error for EvalError {}

enum Flow {
    Normal,
    Return(Option<HVal>),
}

enum Binding {
    Scalar(HVal),
    Array(ArrRef),
}

/// Hook invoked for every `for` loop before sequential evaluation.
///
/// Return `Ok(true)` to signal "I executed this loop myself" (the OpenACC
/// engine's parallel dispatch); `Ok(false)` to let the evaluator run it
/// sequentially.
pub trait LoopHook {
    /// Inspect (and possibly take over) a `for` statement. `eval` is the
    /// evaluator itself, so a hook can run nested statements (e.g. the
    /// OpenACC `data` region runs its loop sequentially while keeping
    /// arrays resident).
    fn on_for(
        &mut self,
        stmt: &Stmt,
        scope: &mut Scope,
        eval: &HostEval<'_>,
    ) -> Result<bool, EvalError>;
}

/// A no-op hook: everything runs sequentially.
pub struct NoHook;

impl LoopHook for NoHook {
    fn on_for(
        &mut self,
        _stmt: &Stmt,
        _scope: &mut Scope,
        _eval: &HostEval<'_>,
    ) -> Result<bool, EvalError> {
        Ok(false)
    }
}

/// The mutable variable environment of one function activation, exposed to
/// loop hooks so the OpenACC engine can read bounds and bind buffers.
pub struct Scope {
    frames: Vec<HashMap<String, Binding>>,
}

impl Scope {
    fn new() -> Scope {
        Scope {
            frames: vec![HashMap::new()],
        }
    }

    fn push(&mut self) {
        self.frames.push(HashMap::new());
    }

    fn pop(&mut self) {
        self.frames.pop();
    }

    fn bind_scalar(&mut self, name: &str, v: HVal) {
        self.frames
            .last_mut()
            .expect("frame")
            .insert(name.to_string(), Binding::Scalar(v));
    }

    fn bind_array(&mut self, name: &str, a: ArrRef) {
        self.frames
            .last_mut()
            .expect("frame")
            .insert(name.to_string(), Binding::Array(a));
    }

    /// Read a scalar variable.
    pub fn scalar(&self, name: &str) -> Option<HVal> {
        for f in self.frames.iter().rev() {
            match f.get(name) {
                Some(Binding::Scalar(v)) => return Some(*v),
                Some(Binding::Array(_)) => return None,
                None => {}
            }
        }
        None
    }

    /// Overwrite an existing scalar (searching outward through frames).
    pub fn set_scalar(&mut self, name: &str, v: HVal) -> bool {
        for f in self.frames.iter_mut().rev() {
            if let Some(b) = f.get_mut(name) {
                if let Binding::Scalar(s) = b {
                    *s = v;
                    return true;
                }
                return false;
            }
        }
        false
    }

    /// Look up an array binding.
    pub fn array(&self, name: &str) -> Option<ArrRef> {
        for f in self.frames.iter().rev() {
            match f.get(name) {
                Some(Binding::Array(a)) => return Some(Rc::clone(a)),
                Some(Binding::Scalar(_)) => return None,
                None => {}
            }
        }
        None
    }
}

/// The host evaluator over one translation unit.
pub struct HostEval<'u> {
    funcs: HashMap<&'u str, &'u Func>,
}

impl<'u> HostEval<'u> {
    /// Index the callable (non-kernel) functions of a unit.
    pub fn new(unit: &'u Unit) -> HostEval<'u> {
        let funcs = unit
            .funcs
            .iter()
            .filter(|f| !f.is_kernel)
            .map(|f| (f.name.as_str(), f))
            .collect();
        HostEval { funcs }
    }

    /// Call `name` with `args` sequentially (no hook).
    pub fn call(&self, name: &str, args: &[HArg]) -> Result<Option<HVal>, EvalError> {
        self.call_hooked(name, args, &mut NoHook)
    }

    /// Call `name` with `args`, giving `hook` first refusal on every `for`.
    pub fn call_hooked(
        &self,
        name: &str,
        args: &[HArg],
        hook: &mut dyn LoopHook,
    ) -> Result<Option<HVal>, EvalError> {
        let f = self.funcs.get(name).ok_or_else(|| EvalError {
            message: format!("unknown host function `{name}`"),
            pos: Pos { line: 0, col: 0 },
        })?;
        if args.len() != f.params.len() {
            return Err(EvalError {
                message: format!(
                    "`{name}` expects {} arguments, got {}",
                    f.params.len(),
                    args.len()
                ),
                pos: f.pos,
            });
        }
        let mut scope = Scope::new();
        for (p, a) in f.params.iter().zip(args) {
            match (&p.ty, a) {
                (Type::Ptr(..), HArg::Array(arr)) => scope.bind_array(&p.name, Rc::clone(arr)),
                (t, HArg::Scalar(v)) if !matches!(t, Type::Ptr(..)) => {
                    let v = if t.is_float() {
                        HVal::F(v.as_f())
                    } else {
                        HVal::I(v.as_i())
                    };
                    scope.bind_scalar(&p.name, v)
                }
                _ => {
                    return Err(EvalError {
                        message: format!("argument kind mismatch for parameter `{}`", p.name),
                        pos: p.pos,
                    })
                }
            }
        }
        match self.block(&f.body, &mut scope, hook)? {
            Flow::Return(v) => Ok(v),
            Flow::Normal => Ok(None),
        }
    }

    fn block(
        &self,
        stmts: &[Stmt],
        scope: &mut Scope,
        hook: &mut dyn LoopHook,
    ) -> Result<Flow, EvalError> {
        for s in stmts {
            if let Flow::Return(v) = self.stmt(s, scope, hook)? {
                return Ok(Flow::Return(v));
            }
        }
        Ok(Flow::Normal)
    }

    fn stmt(
        &self,
        s: &Stmt,
        scope: &mut Scope,
        hook: &mut dyn LoopHook,
    ) -> Result<Flow, EvalError> {
        match s {
            Stmt::Decl {
                name,
                ty,
                array_len,
                init,
                pos,
                ..
            } => {
                if let Some(n) = array_len {
                    let arr = if ty.is_float() {
                        array_f32(vec![0.0; *n])
                    } else {
                        array_i32(vec![0; *n])
                    };
                    scope.bind_array(name, arr);
                } else {
                    let v = match init {
                        Some(e) => self.expr(e, scope)?,
                        None => HVal::I(0),
                    };
                    let v = if ty.is_float() {
                        HVal::F(v.as_f())
                    } else {
                        HVal::I(v.as_i())
                    };
                    let _ = pos;
                    scope.bind_scalar(name, v);
                }
                Ok(Flow::Normal)
            }
            Stmt::Assign {
                target,
                op,
                value,
                pos,
            } => {
                let rhs = self.expr(value, scope)?;
                self.assign(target, *op, rhs, scope, *pos)?;
                Ok(Flow::Normal)
            }
            Stmt::If {
                cond,
                then_blk,
                else_blk,
            } => {
                if self.expr(cond, scope)?.truthy() {
                    scope.push();
                    let f = self.block(then_blk, scope, hook);
                    scope.pop();
                    f
                } else {
                    scope.push();
                    let f = self.block(else_blk, scope, hook);
                    scope.pop();
                    f
                }
            }
            Stmt::While { cond, body } => {
                while self.expr(cond, scope)?.truthy() {
                    scope.push();
                    let f = self.block(body, scope, hook)?;
                    scope.pop();
                    if let Flow::Return(v) = f {
                        return Ok(Flow::Return(v));
                    }
                }
                Ok(Flow::Normal)
            }
            Stmt::For { .. } => {
                // Give the hook (the OpenACC engine) first refusal.
                if hook.on_for(s, scope, self)? {
                    return Ok(Flow::Normal);
                }
                self.run_for(s, scope, hook)
            }
            Stmt::Return { value, .. } => {
                let v = match value {
                    Some(e) => Some(self.expr(e, scope)?),
                    None => None,
                };
                Ok(Flow::Return(v))
            }
            Stmt::Barrier { pos } => Err(EvalError {
                message: "barrier() outside a kernel".to_string(),
                pos: *pos,
            }),
            Stmt::ExprStmt(e) => {
                self.expr(e, scope)?;
                Ok(Flow::Normal)
            }
            Stmt::Block(b) => {
                scope.push();
                let f = self.block(b, scope, hook);
                scope.pop();
                f
            }
        }
    }

    fn run_for(
        &self,
        s: &Stmt,
        scope: &mut Scope,
        hook: &mut dyn LoopHook,
    ) -> Result<Flow, EvalError> {
        let Stmt::For {
            init,
            cond,
            step,
            body,
        } = s
        else {
            return Err(EvalError {
                message: "run_for on a non-for statement".to_string(),
                pos: Pos { line: 0, col: 0 },
            });
        };
        scope.push();
        if let Some(i) = init {
            self.stmt(i, scope, hook)?;
        }
        loop {
            let go = match cond {
                Some(c) => self.expr(c, scope)?.truthy(),
                None => true,
            };
            if !go {
                break;
            }
            scope.push();
            let f = self.block(body, scope, hook)?;
            scope.pop();
            if let Flow::Return(v) = f {
                scope.pop();
                return Ok(Flow::Return(v));
            }
            if let Some(st) = step {
                self.stmt(st, scope, hook)?;
            }
        }
        scope.pop();
        Ok(Flow::Normal)
    }

    /// Execute a `for` statement sequentially, *without* offering it to the
    /// hook (inner loops still go through `hook`). Used by the OpenACC
    /// `data` region, which wraps a host loop around resident device data.
    pub fn exec_stmt_sequential_for(
        &self,
        s: &Stmt,
        scope: &mut Scope,
        hook: &mut dyn LoopHook,
    ) -> Result<(), EvalError> {
        self.run_for(s, scope, hook).map(|_| ())
    }

    /// Evaluate an expression in `scope` (used by the OpenACC engine for
    /// loop bounds).
    pub fn eval_expr(&self, e: &Expr, scope: &mut Scope) -> Result<HVal, EvalError> {
        self.expr(e, scope)
    }

    fn assign(
        &self,
        target: &LValue,
        op: AssignOp,
        rhs: HVal,
        scope: &mut Scope,
        pos: Pos,
    ) -> Result<(), EvalError> {
        match target {
            LValue::Var(name, _) => {
                let cur = scope.scalar(name).ok_or_else(|| EvalError {
                    message: format!("unknown scalar `{name}`"),
                    pos,
                })?;
                let v = apply_assign(cur, op, rhs, pos)?;
                scope.set_scalar(name, v);
                Ok(())
            }
            LValue::Index(name, idx, _) => {
                let arr = scope.array(name).ok_or_else(|| EvalError {
                    message: format!("unknown array `{name}`"),
                    pos,
                })?;
                let i = self.expr(idx, scope)?.as_i();
                if i < 0 {
                    return Err(EvalError {
                        message: format!("negative index {i} into `{name}`"),
                        pos,
                    });
                }
                let mut borrowed = arr.borrow_mut();
                let cur = borrowed.get(i as usize).ok_or_else(|| EvalError {
                    message: format!("index {i} out of bounds for `{name}`"),
                    pos,
                })?;
                let v = apply_assign(cur, op, rhs, pos)?;
                borrowed.set(i as usize, v);
                Ok(())
            }
            LValue::Comp(..) => Err(EvalError {
                message: "float4 components are kernel-only".to_string(),
                pos,
            }),
        }
    }

    fn expr(&self, e: &Expr, scope: &mut Scope) -> Result<HVal, EvalError> {
        match e {
            Expr::IntLit(v, _) => Ok(HVal::I(*v)),
            Expr::FloatLit(v, _) => Ok(HVal::F(*v)),
            Expr::BoolLit(b, _) => Ok(HVal::I(*b as i64)),
            Expr::Var(name, pos) => scope.scalar(name).ok_or_else(|| EvalError {
                message: format!("unknown scalar `{name}`"),
                pos: *pos,
            }),
            Expr::Unary(op, inner, _) => {
                let v = self.expr(inner, scope)?;
                Ok(match op {
                    UnOp::Neg => match v {
                        HVal::I(x) => HVal::I(-x),
                        HVal::F(x) => HVal::F(-x),
                    },
                    UnOp::LNot => HVal::I(!v.truthy() as i64),
                    UnOp::BNot => HVal::I(!v.as_i()),
                })
            }
            Expr::Binary(op, l, r, pos) => {
                // Short-circuit.
                if *op == BinOp::LAnd {
                    return Ok(HVal::I(
                        (self.expr(l, scope)?.truthy() && self.expr(r, scope)?.truthy()) as i64,
                    ));
                }
                if *op == BinOp::LOr {
                    return Ok(HVal::I(
                        (self.expr(l, scope)?.truthy() || self.expr(r, scope)?.truthy()) as i64,
                    ));
                }
                let a = self.expr(l, scope)?;
                let b = self.expr(r, scope)?;
                binop(*op, a, b, *pos)
            }
            Expr::Ternary(c, a, b, _) => {
                if self.expr(c, scope)?.truthy() {
                    self.expr(a, scope)
                } else {
                    self.expr(b, scope)
                }
            }
            Expr::Index(base, idx, pos) => {
                let name = match base.as_ref() {
                    Expr::Var(n, _) => n,
                    _ => {
                        return Err(EvalError {
                            message: "host indexing requires a named array".to_string(),
                            pos: *pos,
                        })
                    }
                };
                let arr = scope.array(name).ok_or_else(|| EvalError {
                    message: format!("unknown array `{name}`"),
                    pos: *pos,
                })?;
                let i = self.expr(idx, scope)?.as_i();
                if i < 0 {
                    return Err(EvalError {
                        message: format!("negative index {i} into `{name}`"),
                        pos: *pos,
                    });
                }
                let v = arr.borrow().get(i as usize);
                v.ok_or_else(|| EvalError {
                    message: format!("index {i} out of bounds for `{name}`"),
                    pos: *pos,
                })
            }
            Expr::Call(name, args, pos) => self.call_expr(name, args, scope, *pos),
            Expr::Cast(ty, inner, _) => {
                let v = self.expr(inner, scope)?;
                Ok(if ty.is_float() {
                    HVal::F(v.as_f())
                } else {
                    HVal::I(v.as_i())
                })
            }
            Expr::MakeF4(_, pos) | Expr::Comp(_, _, pos) => Err(EvalError {
                message: "float4 is kernel-only".to_string(),
                pos: *pos,
            }),
        }
    }

    fn call_expr(
        &self,
        name: &str,
        args: &[Expr],
        scope: &mut Scope,
        pos: Pos,
    ) -> Result<HVal, EvalError> {
        // Math builtins shared with kernels.
        let mut vals = Vec::with_capacity(args.len());
        let builtin = matches!(
            name,
            "sqrt"
                | "fabs"
                | "floor"
                | "ceil"
                | "exp"
                | "log"
                | "pow"
                | "sin"
                | "cos"
                | "fmin"
                | "fmax"
                | "min"
                | "max"
                | "abs"
                | "rsqrt"
        );
        if builtin {
            for a in args {
                vals.push(self.expr(a, scope)?);
            }
            return host_builtin(name, &vals, pos);
        }
        // User function call: evaluate args, binding arrays by name.
        let f = self.funcs.get(name).ok_or_else(|| EvalError {
            message: format!("unknown function `{name}`"),
            pos,
        })?;
        let mut hargs = Vec::with_capacity(args.len());
        for (p, a) in f.params.iter().zip(args) {
            if matches!(p.ty, Type::Ptr(..)) {
                match a {
                    Expr::Var(n, _) => {
                        let arr = scope.array(n).ok_or_else(|| EvalError {
                            message: format!("unknown array `{n}`"),
                            pos,
                        })?;
                        hargs.push(HArg::Array(arr));
                    }
                    _ => {
                        return Err(EvalError {
                            message: "array arguments must be named variables".to_string(),
                            pos,
                        })
                    }
                }
            } else {
                hargs.push(HArg::Scalar(self.expr(a, scope)?));
            }
        }
        let r = self.call(name, &hargs)?;
        Ok(r.unwrap_or(HVal::I(0)))
    }
}

fn apply_assign(cur: HVal, op: AssignOp, rhs: HVal, pos: Pos) -> Result<HVal, EvalError> {
    let float = matches!(cur, HVal::F(_));
    let combine_f = |a: f64, b: f64| match op {
        AssignOp::Set => b,
        AssignOp::Add => a + b,
        AssignOp::Sub => a - b,
        AssignOp::Mul => a * b,
        AssignOp::Div => a / b,
        AssignOp::Shl | AssignOp::Shr => b,
    };
    if float {
        Ok(HVal::F(combine_f(cur.as_f(), rhs.as_f())))
    } else {
        let (a, b) = (cur.as_i(), rhs.as_i());
        Ok(HVal::I(match op {
            AssignOp::Set => b,
            AssignOp::Add => a.wrapping_add(b),
            AssignOp::Sub => a.wrapping_sub(b),
            AssignOp::Mul => a.wrapping_mul(b),
            AssignOp::Div => {
                if b == 0 {
                    return Err(EvalError {
                        message: "division by zero".to_string(),
                        pos,
                    });
                }
                a.wrapping_div(b)
            }
            AssignOp::Shl => a.wrapping_shl(b as u32),
            AssignOp::Shr => a.wrapping_shr(b as u32),
        }))
    }
}

fn binop(op: BinOp, a: HVal, b: HVal, pos: Pos) -> Result<HVal, EvalError> {
    use BinOp::*;
    let float = matches!(a, HVal::F(_)) || matches!(b, HVal::F(_));
    Ok(match op {
        Add | Sub | Mul | Div | Rem => {
            if float {
                let (x, y) = (a.as_f(), b.as_f());
                HVal::F(match op {
                    Add => x + y,
                    Sub => x - y,
                    Mul => x * y,
                    Div => x / y,
                    Rem => x % y,
                    _ => unreachable!(),
                })
            } else {
                let (x, y) = (a.as_i(), b.as_i());
                if matches!(op, Div | Rem) && y == 0 {
                    return Err(EvalError {
                        message: "division by zero".to_string(),
                        pos,
                    });
                }
                HVal::I(match op {
                    Add => x.wrapping_add(y),
                    Sub => x.wrapping_sub(y),
                    Mul => x.wrapping_mul(y),
                    Div => x.wrapping_div(y),
                    Rem => x.wrapping_rem(y),
                    _ => unreachable!(),
                })
            }
        }
        Eq | Ne | Lt | Le | Gt | Ge => {
            let r = if float {
                let (x, y) = (a.as_f(), b.as_f());
                match op {
                    Eq => x == y,
                    Ne => x != y,
                    Lt => x < y,
                    Le => x <= y,
                    Gt => x > y,
                    _ => x >= y,
                }
            } else {
                let (x, y) = (a.as_i(), b.as_i());
                match op {
                    Eq => x == y,
                    Ne => x != y,
                    Lt => x < y,
                    Le => x <= y,
                    Gt => x > y,
                    _ => x >= y,
                }
            };
            HVal::I(r as i64)
        }
        BAnd => HVal::I(a.as_i() & b.as_i()),
        BOr => HVal::I(a.as_i() | b.as_i()),
        BXor => HVal::I(a.as_i() ^ b.as_i()),
        Shl => HVal::I(a.as_i().wrapping_shl(b.as_i() as u32)),
        Shr => HVal::I(a.as_i().wrapping_shr(b.as_i() as u32)),
        LAnd | LOr => unreachable!("short-circuited"),
    })
}

fn host_builtin(name: &str, vals: &[HVal], pos: Pos) -> Result<HVal, EvalError> {
    let need = |n: usize| -> Result<(), EvalError> {
        if vals.len() != n {
            Err(EvalError {
                message: format!("`{name}` expects {n} arguments, got {}", vals.len()),
                pos,
            })
        } else {
            Ok(())
        }
    };
    match name {
        "sqrt" => {
            need(1)?;
            Ok(HVal::F(vals[0].as_f().sqrt()))
        }
        "rsqrt" => {
            need(1)?;
            Ok(HVal::F(1.0 / vals[0].as_f().sqrt()))
        }
        "fabs" => {
            need(1)?;
            Ok(HVal::F(vals[0].as_f().abs()))
        }
        "floor" => {
            need(1)?;
            Ok(HVal::F(vals[0].as_f().floor()))
        }
        "ceil" => {
            need(1)?;
            Ok(HVal::F(vals[0].as_f().ceil()))
        }
        "exp" => {
            need(1)?;
            Ok(HVal::F(vals[0].as_f().exp()))
        }
        "log" => {
            need(1)?;
            Ok(HVal::F(vals[0].as_f().ln()))
        }
        "sin" => {
            need(1)?;
            Ok(HVal::F(vals[0].as_f().sin()))
        }
        "cos" => {
            need(1)?;
            Ok(HVal::F(vals[0].as_f().cos()))
        }
        "pow" => {
            need(2)?;
            Ok(HVal::F(vals[0].as_f().powf(vals[1].as_f())))
        }
        "fmin" => {
            need(2)?;
            Ok(HVal::F(vals[0].as_f().min(vals[1].as_f())))
        }
        "fmax" => {
            need(2)?;
            Ok(HVal::F(vals[0].as_f().max(vals[1].as_f())))
        }
        "min" => {
            need(2)?;
            Ok(match (vals[0], vals[1]) {
                (HVal::I(a), HVal::I(b)) => HVal::I(a.min(b)),
                (a, b) => HVal::F(a.as_f().min(b.as_f())),
            })
        }
        "max" => {
            need(2)?;
            Ok(match (vals[0], vals[1]) {
                (HVal::I(a), HVal::I(b)) => HVal::I(a.max(b)),
                (a, b) => HVal::F(a.as_f().max(b.as_f())),
            })
        }
        "abs" => {
            need(1)?;
            Ok(HVal::I(vals[0].as_i().abs()))
        }
        other => Err(EvalError {
            message: format!("unknown builtin `{other}`"),
            pos,
        }),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use oclsim::minicl::parse;

    fn eval(src: &str, func: &str, args: &[HArg]) -> Option<HVal> {
        let unit = parse(src).unwrap();
        HostEval::new(&unit).call(func, args).unwrap()
    }

    #[test]
    fn scalar_arithmetic_and_return() {
        let src = "float quad(float x) { return x * x * x * x; }
                   __kernel void unused(__global float* a) { a[0] = 0.0f; }";
        assert_eq!(
            eval(src, "quad", &[HArg::Scalar(HVal::F(2.0))]),
            Some(HVal::F(16.0))
        );
    }

    #[test]
    fn sequential_matmul_matches_hand_rolled() {
        let src = "void matmul(float* a, float* b, float* c, int n) {
            for (int y = 0; y < n; y++) {
                for (int x = 0; x < n; x++) {
                    float acc = 0.0f;
                    for (int k = 0; k < n; k++) {
                        acc += a[y * n + k] * b[k * n + x];
                    }
                    c[y * n + x] = acc;
                }
            }
        }
        __kernel void unused(__global float* a) { a[0] = 0.0f; }";
        let a = array_f32(vec![1.0, 2.0, 3.0, 4.0]);
        let b = array_f32(vec![5.0, 6.0, 7.0, 8.0]);
        let c = array_f32(vec![0.0; 4]);
        eval(
            src,
            "matmul",
            &[
                HArg::Array(Rc::clone(&a)),
                HArg::Array(Rc::clone(&b)),
                HArg::Array(Rc::clone(&c)),
                HArg::Scalar(HVal::I(2)),
            ],
        );
        assert_eq!(*c.borrow(), HostArray::F32(vec![19.0, 22.0, 43.0, 50.0]));
    }

    #[test]
    fn local_arrays_and_while() {
        let src = "int collatz(int n) {
            int steps = 0;
            while (n != 1) {
                if (n % 2 == 0) { n = n / 2; } else { n = 3 * n + 1; }
                steps++;
            }
            return steps;
        }
        __kernel void unused(__global float* a) { a[0] = 0.0f; }";
        assert_eq!(
            eval(src, "collatz", &[HArg::Scalar(HVal::I(6))]),
            Some(HVal::I(8))
        );
    }

    #[test]
    fn nested_function_calls_share_arrays() {
        let src = "void fill(float* a, int n, float v) {
            for (int i = 0; i < n; i++) { a[i] = v; }
        }
        float total(float* a, int n) {
            fill(a, n, 2.0f);
            float s = 0.0f;
            for (int i = 0; i < n; i++) { s += a[i]; }
            return s;
        }
        __kernel void unused(__global float* a) { a[0] = 0.0f; }";
        let a = array_f32(vec![0.0; 5]);
        assert_eq!(
            eval(src, "total", &[HArg::Array(a), HArg::Scalar(HVal::I(5))]),
            Some(HVal::F(10.0))
        );
    }

    #[test]
    fn out_of_bounds_is_an_error() {
        let src = "void bad(float* a) { a[10] = 1.0f; }
                   __kernel void unused(__global float* a) { a[0] = 0.0f; }";
        let unit = parse(src).unwrap();
        let a = array_f32(vec![0.0; 2]);
        let err = HostEval::new(&unit)
            .call("bad", &[HArg::Array(a)])
            .unwrap_err();
        assert!(err.message.contains("out of bounds"));
    }

    #[test]
    fn division_by_zero_is_an_error() {
        let src = "int d(int x) { return 1 / x; }
                   __kernel void unused(__global float* a) { a[0] = 0.0f; }";
        let unit = parse(src).unwrap();
        let err = HostEval::new(&unit)
            .call("d", &[HArg::Scalar(HVal::I(0))])
            .unwrap_err();
        assert!(err.message.contains("division by zero"));
    }

    #[test]
    fn builtins_match_std() {
        let src = "float h(float x) { return fmax(sqrt(x), fabs(-3.0f)); }
                   __kernel void unused(__global float* a) { a[0] = 0.0f; }";
        assert_eq!(
            eval(src, "h", &[HArg::Scalar(HVal::F(4.0))]),
            Some(HVal::F(3.0))
        );
    }

    #[test]
    fn private_array_declarations_work_on_host() {
        let src = "float f() {
            float tmp[4];
            for (int i = 0; i < 4; i++) { tmp[i] = (float)i; }
            return tmp[3];
        }
        __kernel void unused(__global float* a) { a[0] = 0.0f; }";
        assert_eq!(eval(src, "f", &[]), Some(HVal::F(3.0)));
    }
}
