//! # baselines — the paper's comparison points
//!
//! The evaluation of *Parallel Programming in Actor-Based Applications via
//! OpenCL* (MIDDLEWARE 2015) compares Ensemble-OpenCL against two other ways
//! of programming accelerators. This crate supplies both:
//!
//! * **C-OpenCL** (the API approach, §3.1) — hand-written host code making
//!   the full verbose sequence of `oclsim` calls: query platform → pick
//!   device → create context → create queue → build program from source →
//!   create kernel → set args → enqueue write / ND-range / read. The
//!   per-application hosts live in `ensemble-apps`; this crate documents
//!   the style and provides the shared sequential references.
//!
//! * **C-OpenACC** (the pragma approach, §3.3) — module [`acc`]: a
//!   source-to-source engine over annotated mini-C, faithfully reproducing
//!   the limitations the paper observes with PGI-compiled OpenACC
//!   (1-D-only mapping, per-region data movement, naive reductions,
//!   sequential fallback on unproven dependences, and an outright compile
//!   failure when a compute region calls a user function — the
//!   document-ranking case).
//!
//! * **Single-threaded C** — module [`host_eval`]: a sequential evaluator
//!   for the same mini-C dialect. The single-threaded application sources
//!   (which `code-metrics` measures for Table 1) are *runnable* through it
//!   and serve as the functional references for every parallel version.

#![warn(missing_docs)]

pub mod acc;
pub mod host_eval;

pub use acc::{AccError, AccReport, AccRunner, AccTarget};
pub use host_eval::{array_f32, array_i32, ArrRef, EvalError, HArg, HVal, HostArray, HostEval};
