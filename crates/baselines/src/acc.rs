//! An OpenACC-style pragma engine over mini-C sources (§3.3 of the paper).
//!
//! `#pragma acc parallel loop ...` lines annotate sequential `for` loops.
//! The engine *outlines* each annotated loop into a generated `__kernel`
//! (1-D over the annotated loop only — like the paper's observation that
//! the pragma abstraction cannot exploit a kernel's 2-D thread layout),
//! moves data according to the clauses (per region, no residency unless a
//! `data` region is used), and runs everything else sequentially through
//! [`crate::host_eval`].
//!
//! The engine deliberately reproduces the behaviours the paper reports for
//! PGI-compiled OpenACC:
//!
//! * **Sequential fallback** — a loop whose array writes are non-linear in
//!   the loop variable, or with unproven loop-carried dependences (absent
//!   an `independent` clause), compiles to a *one-work-item* kernel, "the
//!   compiler generates sequential code instead of parallel".
//! * **Naive reductions** — `reduction(op:var)` compiles to a two-stage
//!   scheme whose partials are combined serially on the host after an
//!   extra transfer (the Figure 3d penalty).
//! * **1-D mapping with gang/worker tuning** — `gang(n)`/`worker(n)`
//!   clauses choose the launch shape; without them defaults apply (the
//!   Mandelbrot/LUD findings).
//! * **Compile failure on function calls in compute regions** — the PGI
//!   compiler could not compile the document-ranking application at all;
//!   calling a user function inside an annotated loop returns
//!   [`AccError::CompileFail`].
//!
//! Supported pragmas:
//!
//! ```text
//! #pragma acc parallel loop [independent] [gang(N)] [worker(N)]
//!         [copy(a,b)] [copyin(a)] [copyout(a)] [reduction(min|max|+:var)]
//! #pragma acc data copy(a,...) copyin(...) copyout(...)   // on a loop
//! ```

use crate::host_eval::{ArrRef, EvalError, HArg, HVal, HostArray, HostEval, LoopHook, Scope};
use oclsim::minicl::ast::*;
use oclsim::minicl::pretty::{emit_expr, emit_unit};
use oclsim::minicl::token::Pos;
use oclsim::{
    Buffer, ClError, CommandQueue, Context, Device, DeviceType, Kernel, MemFlags, NdRange,
    Platform, ProfileSink, Program,
};
use std::collections::HashMap;

/// Errors from the pragma engine.
#[derive(Debug, Clone, PartialEq)]
pub enum AccError {
    /// The mini-C source failed to parse.
    Parse(String),
    /// The annotated code uses a construct the (modeled) compiler rejects —
    /// the paper's "PGI was not able to compile this code" case.
    CompileFail(String),
    /// Host evaluation failed (out-of-bounds, unknown name, ...).
    Eval(String),
    /// Device-side failure.
    Device(String),
}

impl std::fmt::Display for AccError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            AccError::Parse(m) => write!(f, "acc parse error: {m}"),
            AccError::CompileFail(m) => write!(f, "acc compile failure: {m}"),
            AccError::Eval(m) => write!(f, "acc evaluation error: {m}"),
            AccError::Device(m) => write!(f, "acc device error: {m}"),
        }
    }
}

impl std::error::Error for AccError {}

impl From<ClError> for AccError {
    fn from(e: ClError) -> AccError {
        AccError::Device(e.to_string())
    }
}

/// Which device the engine targets (OpenACC `-ta=` flag, more or less).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct AccTarget {
    /// Device class (GPU for OpenACC, CPU for the OpenMP-ish fallback).
    pub device_type: DeviceType,
}

impl AccTarget {
    /// Target the first GPU.
    pub fn gpu() -> AccTarget {
        AccTarget {
            device_type: DeviceType::Gpu,
        }
    }

    /// Target the first CPU (the paper's OpenMP comparison point).
    pub fn cpu() -> AccTarget {
        AccTarget {
            device_type: DeviceType::Cpu,
        }
    }
}

#[derive(Debug, Clone, Default)]
struct Clauses {
    parallel: bool,
    data: bool,
    independent: bool,
    gang: Option<usize>,
    worker: Option<usize>,
    copy: Vec<String>,
    copyin: Vec<String>,
    copyout: Vec<String>,
    reduction: Option<(RedOp, String)>,
}

#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum RedOp {
    Min,
    Max,
    Sum,
}

fn parse_clauses(text: &str) -> Option<Clauses> {
    let text = text.strip_prefix("acc")?.trim();
    let mut c = Clauses::default();
    let mut rest = text;
    // Leading directives.
    loop {
        rest = rest.trim_start();
        if let Some(r) = rest.strip_prefix("parallel") {
            c.parallel = true;
            rest = r;
        } else if let Some(r) = rest.strip_prefix("kernels") {
            c.parallel = true;
            rest = r;
        } else if let Some(r) = rest.strip_prefix("loop") {
            rest = r;
        } else if let Some(r) = rest.strip_prefix("data") {
            c.data = true;
            rest = r;
        } else {
            break;
        }
    }
    // Clauses: word or word(args).
    let mut chars = rest.char_indices().peekable();
    while let Some((start, ch)) = chars.next() {
        if ch.is_whitespace() {
            continue;
        }
        let mut end = start + ch.len_utf8();
        while let Some(&(i, c2)) = chars.peek() {
            if c2.is_alphanumeric() || c2 == '_' {
                chars.next();
                end = i + c2.len_utf8();
            } else {
                break;
            }
        }
        let word = &rest[start..end];
        let mut args = String::new();
        if let Some(&(_, '(')) = chars.peek() {
            chars.next();
            let mut depth = 1;
            for (_, c2) in chars.by_ref() {
                if c2 == '(' {
                    depth += 1;
                } else if c2 == ')' {
                    depth -= 1;
                    if depth == 0 {
                        break;
                    }
                }
                args.push(c2);
            }
        }
        let names = |s: &str| -> Vec<String> {
            s.split(',')
                .map(|n| {
                    // `a[0:n*n]` array sections → just the name.
                    n.trim().split('[').next().unwrap_or("").trim().to_string()
                })
                .filter(|n| !n.is_empty())
                .collect()
        };
        match word {
            "independent" => c.independent = true,
            "gang" => c.gang = args.trim().parse().ok(),
            "worker" | "vector" => c.worker = args.trim().parse().ok(),
            "copy" => c.copy.extend(names(&args)),
            "copyin" => c.copyin.extend(names(&args)),
            "copyout" => c.copyout.extend(names(&args)),
            "present" => { /* arrays promised resident */ }
            "reduction" => {
                let mut parts = args.splitn(2, ':');
                let op = match parts.next().map(str::trim) {
                    Some("min") => RedOp::Min,
                    Some("max") => RedOp::Max,
                    Some("+") => RedOp::Sum,
                    _ => return Some(c), // unknown reduction op: ignore clause
                };
                if let Some(var) = parts.next() {
                    c.reduction = Some((op, var.trim().to_string()));
                }
            }
            _ => { /* unknown clauses are ignored, like a forgiving compiler */ }
        }
    }
    Some(c)
}

/// First source position inside a statement (used to associate pragmas).
fn stmt_pos(s: &Stmt) -> Option<Pos> {
    match s {
        Stmt::Decl { pos, .. }
        | Stmt::Assign { pos, .. }
        | Stmt::Return { pos, .. }
        | Stmt::Barrier { pos } => Some(*pos),
        Stmt::If { cond, .. } | Stmt::While { cond, .. } => Some(cond.pos()),
        Stmt::For {
            init, cond, body, ..
        } => init
            .as_deref()
            .and_then(stmt_pos)
            .or_else(|| cond.as_ref().map(|c| c.pos()))
            .or_else(|| body.first().and_then(stmt_pos)),
        Stmt::ExprStmt(e) => Some(e.pos()),
        Stmt::Block(b) => b.first().and_then(stmt_pos),
    }
}

struct CachedKernel {
    kernel: Kernel,
    arrays: Vec<String>,
    scalars: Vec<String>,
    sequential: bool,
}

/// The engine: owns the parsed unit and the device-side state.
pub struct AccRunner {
    unit: Unit,
    device: Device,
    context: Context,
    queue: CommandQueue,
    profile: ProfileSink,
}

struct DevArray {
    buf: Buffer,
    host: ArrRef,
}

struct Hook<'r> {
    runner: &'r AccRunner,
    /// Arrays currently resident (inside a `data` region).
    resident: HashMap<String, DevArray>,
    kcache: HashMap<u32, CachedKernel>,
    fatal: Option<AccError>,
    /// Count of parallel kernel dispatches (observability for tests).
    dispatches: u64,
    sequential_fallbacks: u64,
}

impl AccRunner {
    /// Parse `src` and prepare an engine for `target`.
    pub fn new(src: &str, target: AccTarget, profile: ProfileSink) -> Result<AccRunner, AccError> {
        let unit = oclsim::minicl::parse(src).map_err(|e| AccError::Parse(e.to_string()))?;
        let device = Platform::default_device(target.device_type)
            .ok_or_else(|| AccError::Device(format!("no {} device", target.device_type)))?;
        let context = Context::new(std::slice::from_ref(&device))
            .map_err(|e| AccError::Device(e.to_string()))?;
        let queue =
            CommandQueue::new(&context, &device).map_err(|e| AccError::Device(e.to_string()))?;
        Ok(AccRunner {
            unit,
            device,
            context,
            queue,
            profile,
        })
    }

    /// Run the annotated host function `name` with `args`.
    ///
    /// Returns the number of parallel kernel dispatches performed (0 means
    /// everything fell back to sequential execution).
    pub fn run(&self, name: &str, args: &[HArg]) -> Result<AccReport, AccError> {
        let eval = HostEval::new(&self.unit);
        let mut hook = Hook {
            runner: self,
            resident: HashMap::new(),
            kcache: HashMap::new(),
            fatal: None,
            dispatches: 0,
            sequential_fallbacks: 0,
        };
        let result = eval.call_hooked(name, args, &mut hook);
        if let Some(f) = hook.fatal.take() {
            return Err(f);
        }
        result.map_err(|e| AccError::Eval(e.to_string()))?;
        Ok(AccReport {
            dispatches: hook.dispatches,
            sequential_fallbacks: hook.sequential_fallbacks,
        })
    }

    /// Virtual time of the engine's queue (for figure normalisation).
    pub fn queue_now_ns(&self) -> f64 {
        self.queue.now_ns()
    }
}

/// What the engine did during a run.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct AccReport {
    /// Parallel kernel dispatches (including reduction stage-1 kernels).
    pub dispatches: u64,
    /// Annotated loops that compiled to sequential device code.
    pub sequential_fallbacks: u64,
}

impl<'r> LoopHook for Hook<'r> {
    fn on_for(
        &mut self,
        stmt: &Stmt,
        scope: &mut Scope,
        eval: &HostEval<'_>,
    ) -> Result<bool, EvalError> {
        let pos = match stmt_pos(stmt) {
            Some(p) => p,
            None => return Ok(false),
        };
        let clauses = self
            .runner
            .unit
            .pragmas
            .iter()
            .filter(|(line, _)| *line < pos.line && pos.line - *line <= 2)
            .filter_map(|(_, text)| parse_clauses(text))
            .next();
        let clauses = match clauses {
            Some(c) => c,
            None => return Ok(false),
        };
        if clauses.data {
            return self.data_region(stmt, &clauses, scope, eval, pos);
        }
        if !clauses.parallel {
            return Ok(false);
        }
        match self.parallel_loop(stmt, &clauses, scope, pos) {
            Ok(()) => Ok(true),
            Err(e) => {
                self.fatal = Some(e);
                Err(EvalError {
                    message: "acc engine aborted".to_string(),
                    pos,
                })
            }
        }
    }
}

impl<'r> Hook<'r> {
    fn data_region(
        &mut self,
        stmt: &Stmt,
        clauses: &Clauses,
        scope: &mut Scope,
        eval: &HostEval<'_>,
        pos: Pos,
    ) -> Result<bool, EvalError> {
        // Upload copy + copyin arrays once for the whole region.
        let upload: Vec<&String> = clauses.copy.iter().chain(&clauses.copyin).collect();
        for name in upload {
            if self.resident.contains_key(name) {
                continue;
            }
            let host = scope.array(name).ok_or_else(|| EvalError {
                message: format!("data clause names unknown array `{name}`"),
                pos,
            })?;
            match self.upload(name, &host) {
                Ok(d) => {
                    self.resident.insert(name.clone(), d);
                }
                Err(e) => {
                    self.fatal = Some(e);
                    return Err(EvalError {
                        message: "acc engine aborted".to_string(),
                        pos,
                    });
                }
            }
        }
        // Run the loop body sequentially on the host; inner annotated loops
        // re-enter this hook and find the arrays resident.
        eval.exec_stmt_sequential_for(stmt, scope, self)?;
        // Download copy + copyout arrays and drop residency.
        let download: Vec<String> = clauses
            .copy
            .iter()
            .chain(&clauses.copyout)
            .cloned()
            .collect();
        for name in download {
            if let Some(d) = self.resident.remove(&name) {
                if let Err(e) = self.download(&d) {
                    self.fatal = Some(e);
                    return Err(EvalError {
                        message: "acc engine aborted".to_string(),
                        pos,
                    });
                }
                self.runner.context.release_bytes(d.buf.len());
            }
        }
        // Anything still resident from this region (copyin-only) is freed.
        Ok(true)
    }

    fn upload(&self, _name: &str, host: &ArrRef) -> Result<DevArray, AccError> {
        let bytes = match &*host.borrow() {
            HostArray::F32(v) => oclsim::hostmem::f32_to_bytes(v),
            HostArray::I32(v) => oclsim::hostmem::i32_to_bytes(v),
        };
        let buf = self
            .runner
            .context
            .create_buffer(MemFlags::ReadWrite, bytes.len())?;
        let ev = self.runner.queue.enqueue_write_buffer(&buf, &bytes)?;
        self.runner
            .profile
            .record_command(&ev, self.runner.queue.device().name());
        Ok(DevArray {
            buf,
            host: ArrRef::clone(host),
        })
    }

    fn download(&self, d: &DevArray) -> Result<(), AccError> {
        let mut bytes = vec![0u8; d.buf.len()];
        let ev = self.runner.queue.enqueue_read_buffer(&d.buf, &mut bytes)?;
        self.runner
            .profile
            .record_command(&ev, self.runner.queue.device().name());
        let mut host = d.host.borrow_mut();
        match &mut *host {
            HostArray::F32(v) => *v = oclsim::hostmem::bytes_to_f32(&bytes),
            HostArray::I32(v) => *v = oclsim::hostmem::bytes_to_i32(&bytes),
        }
        Ok(())
    }

    fn parallel_loop(
        &mut self,
        stmt: &Stmt,
        clauses: &Clauses,
        scope: &mut Scope,
        pos: Pos,
    ) -> Result<(), AccError> {
        let (var, lo_expr, hi_expr, body) = canonical_loop(stmt).ok_or_else(|| {
            AccError::CompileFail(format!(
                "{pos}: loop is not in canonical `for (int i = lo; i < hi; i++)` form"
            ))
        })?;

        // The modeled PGI limitation: calls to user functions inside a
        // compute region abort compilation (the document-ranking case).
        if let Some(call) = find_user_call(&body, &self.runner.unit) {
            return Err(AccError::CompileFail(format!(
                "{pos}: call to `{call}` in compute region (user functions cannot be inlined)"
            )));
        }

        let eval = HostEval::new(&self.runner.unit);
        let lo = eval_scalar(&eval, &lo_expr, scope, pos)?.as_i();
        let hi = eval_scalar(&eval, &hi_expr, scope, pos)?.as_i();
        if hi <= lo {
            return Ok(()); // empty loop
        }
        let n = (hi - lo) as usize;

        // Free variables.
        let mut names = Vec::new();
        collect_names(&body, &mut names);
        names.sort();
        names.dedup();
        let mut arrays = Vec::new();
        let mut scalars = Vec::new();
        for name in &names {
            if name == &var {
                continue;
            }
            if scope.array(name).is_some() {
                arrays.push(name.clone());
            } else if scope.scalar(name).is_some() {
                scalars.push(name.clone());
            }
            // Names bound inside the body shadow nothing here: decls inside
            // the body are kernel-local and naturally not in scope.
        }

        if let Some((op, red_var)) = &clauses.reduction {
            return self.reduction_loop(
                &var, lo, hi, &body, *op, red_var, &arrays, &scalars, clauses, scope, pos,
            );
        }

        // Dependence analysis.
        let sequential = !self.parallelizable(&var, &body, &arrays, clauses);
        if sequential {
            self.sequential_fallbacks += 1;
        }

        let (kernel, k_arrays, k_scalars, k_sequential) = {
            let c =
                self.compile_loop(pos.line, &var, &body, &arrays, &scalars, scope, sequential)?;
            (
                c.kernel.clone(),
                c.arrays.clone(),
                c.scalars.clone(),
                c.sequential,
            )
        };

        // Data movement (per region, unless resident): copy semantics by
        // default, narrowed by clauses.
        let explicit: Vec<&String> = clauses
            .copy
            .iter()
            .chain(&clauses.copyin)
            .chain(&clauses.copyout)
            .collect();
        let mut temp_dev: Vec<(String, DevArray, bool)> = Vec::new(); // (name, dev, download?)
        for name in &k_arrays {
            if self.resident.contains_key(name) {
                continue;
            }
            let host = scope
                .array(name)
                .ok_or_else(|| AccError::Eval(format!("unknown array `{name}`")))?;
            let upload_needed = !explicit.contains(&name)
                || clauses.copy.contains(name)
                || clauses.copyin.contains(name);
            let download_needed = !explicit.contains(&name)
                || clauses.copy.contains(name)
                || clauses.copyout.contains(name);
            let dev = if upload_needed {
                self.upload(name, &host)?
            } else {
                // copyout-only: allocate without meaningful upload.
                let bytes = host.borrow().len() * 4;
                let buf = self
                    .runner
                    .context
                    .create_buffer(MemFlags::ReadWrite, bytes)?;
                DevArray {
                    buf,
                    host: ArrRef::clone(&host),
                }
            };
            temp_dev.push((name.clone(), dev, download_needed));
        }

        // Launch shape: 1-D over the annotated loop (the engine never uses
        // the 2-D layout — the paper's Mandelbrot finding).
        let (global, local) = if k_sequential {
            (1, 1)
        } else {
            let worker = clauses
                .worker
                .unwrap_or(64)
                .min(self.runner.device.max_work_group_size())
                .max(1);
            let global = n.div_ceil(worker) * worker;
            (global, worker)
        };

        // Bind args: arrays, scalars, lo, hi.
        let k = &kernel;
        let mut arg = 0usize;
        for name in &k_arrays {
            let buf = if let Some(d) = self.resident.get(name) {
                &d.buf
            } else {
                &temp_dev
                    .iter()
                    .find(|(n, _, _)| n == name)
                    .expect("uploaded above")
                    .1
                    .buf
            };
            k.set_arg_buffer(arg, buf)?;
            arg += 1;
        }
        for name in &k_scalars {
            let v = scope
                .scalar(name)
                .ok_or_else(|| AccError::Eval(format!("unknown scalar `{name}`")))?;
            match v {
                HVal::I(x) => k.set_arg_i32(arg, x as i32)?,
                HVal::F(x) => k.set_arg_f32(arg, x as f32)?,
            }
            arg += 1;
        }
        k.set_arg_i32(arg, lo as i32)?;
        k.set_arg_i32(arg + 1, hi as i32)?;

        let ev = self
            .runner
            .queue
            .enqueue_nd_range(k, &NdRange::d1(global, local))?;
        self.runner
            .profile
            .record_command(&ev, self.runner.queue.device().name());
        self.dispatches += 1;

        // Downloads + cleanup.
        for (_, dev, download) in &temp_dev {
            if *download {
                self.download(dev)?;
            }
            self.runner.context.release_bytes(dev.buf.len());
        }
        Ok(())
    }

    fn parallelizable(
        &self,
        var: &str,
        body: &[Stmt],
        arrays: &[String],
        clauses: &Clauses,
    ) -> bool {
        let mut writes: Vec<(String, String)> = Vec::new(); // (array, index src)
        let mut nonlinear = false;
        collect_writes(body, &mut writes, &mut nonlinear, var);
        if nonlinear {
            return false;
        }
        if clauses.independent {
            return true;
        }
        // Loop-carried dependence heuristic: an array that is both written
        // and read at a differently-shaped index is unproven.
        let mut reads: Vec<(String, String)> = Vec::new();
        collect_reads(body, &mut reads);
        for a in arrays {
            let w: Vec<&String> = writes
                .iter()
                .filter(|(n, _)| n == a)
                .map(|(_, i)| i)
                .collect();
            if w.is_empty() {
                continue;
            }
            for (rn, ri) in &reads {
                if rn == a && !w.contains(&ri) {
                    return false;
                }
            }
            // A scalar accumulator written inside the loop (without a
            // reduction clause) is handled as nonlinear by collect_writes.
        }
        // Writes whose index does not involve the loop variable at all are
        // racy across items.
        for (_, idx) in &writes {
            if !idx.contains(var) {
                return false;
            }
        }
        true
    }

    #[allow(clippy::too_many_arguments)]
    fn compile_loop(
        &mut self,
        line: u32,
        var: &str,
        body: &[Stmt],
        arrays: &[String],
        scalars: &[String],
        scope: &Scope,
        sequential: bool,
    ) -> Result<&CachedKernel, AccError> {
        if !self.kcache.contains_key(&line) {
            let pos = Pos { line, col: 1 };
            let mut params = Vec::new();
            for a in arrays {
                let elem = match &*scope.array(a).expect("checked").borrow() {
                    HostArray::F32(_) => Type::Float,
                    HostArray::I32(_) => Type::Int,
                };
                params.push(Param {
                    name: a.clone(),
                    ty: Type::Ptr(Space::Global, Box::new(elem)),
                    is_const: false,
                    pos,
                });
            }
            for s in scalars {
                let ty = match scope.scalar(s).expect("checked") {
                    HVal::I(_) => Type::Int,
                    HVal::F(_) => Type::Float,
                };
                params.push(Param {
                    name: s.clone(),
                    ty,
                    is_const: true,
                    pos,
                });
            }
            for extra in ["__acc_lo", "__acc_hi"] {
                params.push(Param {
                    name: extra.to_string(),
                    ty: Type::Int,
                    is_const: true,
                    pos,
                });
            }
            let kbody = if sequential {
                // One work-item runs the entire loop serially.
                vec![Stmt::For {
                    init: Some(Box::new(Stmt::Decl {
                        name: var.to_string(),
                        ty: Type::Int,
                        space: Space::Private,
                        array_len: None,
                        init: Some(Expr::Var("__acc_lo".into(), pos)),
                        pos,
                    })),
                    cond: Some(Expr::Binary(
                        BinOp::Lt,
                        Box::new(Expr::Var(var.to_string(), pos)),
                        Box::new(Expr::Var("__acc_hi".into(), pos)),
                        pos,
                    )),
                    step: Some(Box::new(Stmt::Assign {
                        target: LValue::Var(var.to_string(), pos),
                        op: AssignOp::Add,
                        value: Expr::IntLit(1, pos),
                        pos,
                    })),
                    body: body.to_vec(),
                }]
            } else {
                vec![
                    Stmt::Decl {
                        name: var.to_string(),
                        ty: Type::Int,
                        space: Space::Private,
                        array_len: None,
                        init: Some(Expr::Binary(
                            BinOp::Add,
                            Box::new(Expr::Call(
                                "get_global_id".into(),
                                vec![Expr::IntLit(0, pos)],
                                pos,
                            )),
                            Box::new(Expr::Var("__acc_lo".into(), pos)),
                            pos,
                        )),
                        pos,
                    },
                    Stmt::If {
                        cond: Expr::Binary(
                            BinOp::Lt,
                            Box::new(Expr::Var(var.to_string(), pos)),
                            Box::new(Expr::Var("__acc_hi".into(), pos)),
                            pos,
                        ),
                        then_blk: body.to_vec(),
                        else_blk: vec![],
                    },
                ]
            };
            let kname = format!("__acc_loop_l{line}");
            let unit = Unit {
                funcs: vec![Func {
                    name: kname.clone(),
                    is_kernel: true,
                    ret: Type::Void,
                    params,
                    body: kbody,
                    pos,
                }],
                pragmas: vec![],
            };
            let src = emit_unit(&unit);
            let program = Program::build(&self.runner.context, &src).map_err(|e| {
                AccError::CompileFail(format!("generated kernel failed to build: {e}\n{src}"))
            })?;
            let kernel = program.create_kernel(&kname)?;
            self.kcache.insert(
                line,
                CachedKernel {
                    kernel,
                    arrays: arrays.to_vec(),
                    scalars: scalars.to_vec(),
                    sequential,
                },
            );
        }
        Ok(self.kcache.get(&line).expect("inserted"))
    }

    #[allow(clippy::too_many_arguments)]
    fn reduction_loop(
        &mut self,
        var: &str,
        lo: i64,
        hi: i64,
        body: &[Stmt],
        op: RedOp,
        red_var: &str,
        arrays: &[String],
        scalars: &[String],
        clauses: &Clauses,
        scope: &mut Scope,
        pos: Pos,
    ) -> Result<(), AccError> {
        // Supported body shapes:
        //   red = fmin(red, expr);   red = fmax(red, expr);
        //   red += expr;             red = red + expr;
        let expr = extract_reduction_expr(body, red_var, op).ok_or_else(|| {
            AccError::CompileFail(format!(
                "{pos}: reduction body is not a recognised `{red_var} = op({red_var}, e)` form"
            ))
        })?;

        const TEAMS: usize = 256;
        let n = (hi - lo) as usize;
        let chunk = n.div_ceil(TEAMS).max(1);

        // Stage-1 kernel: each team serially folds its chunk.
        let line = pos.line;
        if !self.kcache.contains_key(&line) {
            let mut params = Vec::new();
            for a in arrays {
                let elem = match &*scope.array(a).expect("checked").borrow() {
                    HostArray::F32(_) => Type::Float,
                    HostArray::I32(_) => Type::Int,
                };
                params.push(Param {
                    name: a.clone(),
                    ty: Type::Ptr(Space::Global, Box::new(elem)),
                    is_const: false,
                    pos,
                });
            }
            for s in scalars {
                if s == red_var {
                    continue;
                }
                let ty = match scope.scalar(s).expect("checked") {
                    HVal::I(_) => Type::Int,
                    HVal::F(_) => Type::Float,
                };
                params.push(Param {
                    name: s.clone(),
                    ty,
                    is_const: true,
                    pos,
                });
            }
            params.push(Param {
                name: "__acc_partial".into(),
                ty: Type::Ptr(Space::Global, Box::new(Type::Float)),
                is_const: false,
                pos,
            });
            for extra in ["__acc_lo", "__acc_hi", "__acc_chunk"] {
                params.push(Param {
                    name: extra.into(),
                    ty: Type::Int,
                    is_const: true,
                    pos,
                });
            }
            let identity = match op {
                RedOp::Min => 3.0e38,
                RedOp::Max => -3.0e38,
                RedOp::Sum => 0.0,
            };
            let fold = |acc: Expr, e: Expr| -> Expr {
                match op {
                    RedOp::Min => Expr::Call("fmin".into(), vec![acc, e], pos),
                    RedOp::Max => Expr::Call("fmax".into(), vec![acc, e], pos),
                    RedOp::Sum => Expr::Binary(BinOp::Add, Box::new(acc), Box::new(e), pos),
                }
            };
            let v = |n: &str| Expr::Var(n.to_string(), pos);
            let kbody = vec![
                Stmt::Decl {
                    name: "__t".into(),
                    ty: Type::Int,
                    space: Space::Private,
                    array_len: None,
                    init: Some(Expr::Call(
                        "get_global_id".into(),
                        vec![Expr::IntLit(0, pos)],
                        pos,
                    )),
                    pos,
                },
                Stmt::Decl {
                    name: "__acc".into(),
                    ty: Type::Float,
                    space: Space::Private,
                    array_len: None,
                    init: Some(Expr::FloatLit(identity, pos)),
                    pos,
                },
                Stmt::For {
                    init: Some(Box::new(Stmt::Decl {
                        name: var.to_string(),
                        ty: Type::Int,
                        space: Space::Private,
                        array_len: None,
                        init: Some(Expr::Binary(
                            BinOp::Add,
                            Box::new(v("__acc_lo")),
                            Box::new(Expr::Binary(
                                BinOp::Mul,
                                Box::new(v("__t")),
                                Box::new(v("__acc_chunk")),
                                pos,
                            )),
                            pos,
                        )),
                        pos,
                    })),
                    cond: Some(Expr::Binary(
                        BinOp::LAnd,
                        Box::new(Expr::Binary(
                            BinOp::Lt,
                            Box::new(v(var)),
                            Box::new(Expr::Binary(
                                BinOp::Add,
                                Box::new(v("__acc_lo")),
                                Box::new(Expr::Binary(
                                    BinOp::Mul,
                                    Box::new(Expr::Binary(
                                        BinOp::Add,
                                        Box::new(v("__t")),
                                        Box::new(Expr::IntLit(1, pos)),
                                        pos,
                                    )),
                                    Box::new(v("__acc_chunk")),
                                    pos,
                                )),
                                pos,
                            )),
                            pos,
                        )),
                        Box::new(Expr::Binary(
                            BinOp::Lt,
                            Box::new(v(var)),
                            Box::new(v("__acc_hi")),
                            pos,
                        )),
                        pos,
                    )),
                    step: Some(Box::new(Stmt::Assign {
                        target: LValue::Var(var.to_string(), pos),
                        op: AssignOp::Add,
                        value: Expr::IntLit(1, pos),
                        pos,
                    })),
                    body: vec![Stmt::Assign {
                        target: LValue::Var("__acc".into(), pos),
                        op: AssignOp::Set,
                        value: fold(v("__acc"), expr.clone()),
                        pos,
                    }],
                },
                Stmt::Assign {
                    target: LValue::Index("__acc_partial".into(), v("__t"), pos),
                    op: AssignOp::Set,
                    value: v("__acc"),
                    pos,
                },
            ];
            let kname = format!("__acc_red_l{line}");
            let unit = Unit {
                funcs: vec![Func {
                    name: kname.clone(),
                    is_kernel: true,
                    ret: Type::Void,
                    params,
                    body: kbody,
                    pos,
                }],
                pragmas: vec![],
            };
            let src = emit_unit(&unit);
            let program = Program::build(&self.runner.context, &src).map_err(|e| {
                AccError::CompileFail(format!("generated reduction kernel failed: {e}\n{src}"))
            })?;
            let kernel = program.create_kernel(&kname)?;
            self.kcache.insert(
                line,
                CachedKernel {
                    kernel,
                    arrays: arrays.to_vec(),
                    scalars: scalars.iter().filter(|s| *s != red_var).cloned().collect(),
                    sequential: false,
                },
            );
        }

        // Upload arrays (per region; same clause rules as the plain path).
        let mut temp_dev: Vec<DevArray> = Vec::new();
        let cached = self.kcache.get(&line).expect("inserted");
        let mut arg = 0usize;
        let arrays_c = cached.arrays.clone();
        let scalars_c = cached.scalars.clone();
        let kernel = cached.kernel.clone();
        for name in &arrays_c {
            if let Some(d) = self.resident.get(name) {
                kernel.set_arg_buffer(arg, &d.buf)?;
            } else {
                let host = scope
                    .array(name)
                    .ok_or_else(|| AccError::Eval(format!("unknown array `{name}`")))?;
                let dev = self.upload(name, &host)?;
                kernel.set_arg_buffer(arg, &dev.buf)?;
                temp_dev.push(dev);
            }
            arg += 1;
        }
        for name in &scalars_c {
            match scope.scalar(name).expect("checked") {
                HVal::I(x) => kernel.set_arg_i32(arg, x as i32)?,
                HVal::F(x) => kernel.set_arg_f32(arg, x as f32)?,
            }
            arg += 1;
        }
        let partial = self
            .runner
            .context
            .create_buffer(MemFlags::ReadWrite, TEAMS * 4)?;
        kernel.set_arg_buffer(arg, &partial)?;
        kernel.set_arg_i32(arg + 1, lo as i32)?;
        kernel.set_arg_i32(arg + 2, hi as i32)?;
        kernel.set_arg_i32(arg + 3, chunk as i32)?;

        // PGI-style gang-only reduction mapping: one item per gang unless
        // the programmer supplied worker(); each gang occupies one lane.
        // The group size must divide TEAMS exactly — otherwise the rounded
        // global range would spawn items past the partial buffer.
        let mut local = clauses.worker.unwrap_or(1).clamp(1, TEAMS);
        while !TEAMS.is_multiple_of(local) {
            local -= 1;
        }
        let ev = self
            .runner
            .queue
            .enqueue_nd_range(&kernel, &NdRange::d1(TEAMS, local))?;
        self.runner
            .profile
            .record_command(&ev, self.runner.queue.device().name());
        self.dispatches += 1;

        // Stage 2: the naive part — download partials, combine serially on
        // the host (extra transfer + serial work = the paper's Figure 3d
        // penalty).
        let (partials, ev) = self.runner.queue.read_f32(&partial)?;
        self.runner
            .profile
            .record_command(&ev, self.runner.queue.device().name());
        let current = scope
            .scalar(red_var)
            .ok_or_else(|| AccError::Eval(format!("unknown reduction variable `{red_var}`")))?;
        let mut acc = current.as_f();
        for p in partials {
            acc = match op {
                RedOp::Min => acc.min(p as f64),
                RedOp::Max => acc.max(p as f64),
                RedOp::Sum => acc + p as f64,
            };
        }
        scope.set_scalar(red_var, HVal::F(acc));
        for dev in temp_dev {
            self.runner.context.release_bytes(dev.buf.len());
        }
        self.runner.context.release_bytes(partial.len());
        Ok(())
    }
}

fn eval_scalar(
    eval: &HostEval<'_>,
    e: &Expr,
    scope: &mut Scope,
    pos: Pos,
) -> Result<HVal, AccError> {
    eval.eval_expr(e, scope)
        .map_err(|err| AccError::Eval(format!("{pos}: bound expression: {err}")))
}

/// Match `for (int i = lo; i < hi; i++)`.
fn canonical_loop(stmt: &Stmt) -> Option<(String, Expr, Expr, Vec<Stmt>)> {
    let Stmt::For {
        init: Some(init),
        cond: Some(cond),
        step: Some(step),
        body,
    } = stmt
    else {
        return None;
    };
    let (var, lo) = match init.as_ref() {
        Stmt::Decl {
            name,
            init: Some(e),
            array_len: None,
            ..
        } => (name.clone(), e.clone()),
        Stmt::Assign {
            target: LValue::Var(name, _),
            op: AssignOp::Set,
            value,
            ..
        } => (name.clone(), value.clone()),
        _ => return None,
    };
    let hi = match cond {
        Expr::Binary(BinOp::Lt, l, r, _) => match l.as_ref() {
            Expr::Var(n, _) if *n == var => (**r).clone(),
            _ => return None,
        },
        _ => return None,
    };
    let ok_step = match step.as_ref() {
        Stmt::Assign {
            target: LValue::Var(n, _),
            op: AssignOp::Add,
            value: Expr::IntLit(1, _),
            ..
        } => *n == var,
        _ => false,
    };
    if !ok_step {
        return None;
    }
    Some((var, lo, hi, body.clone()))
}

fn collect_names(body: &[Stmt], out: &mut Vec<String>) {
    fn expr_names(e: &Expr, out: &mut Vec<String>) {
        match e {
            Expr::Var(n, _) => out.push(n.clone()),
            Expr::Unary(_, a, _) | Expr::Cast(_, a, _) | Expr::Comp(a, _, _) => expr_names(a, out),
            Expr::Binary(_, a, b, _) | Expr::Index(a, b, _) => {
                expr_names(a, out);
                expr_names(b, out);
            }
            Expr::Ternary(a, b, c, _) => {
                expr_names(a, out);
                expr_names(b, out);
                expr_names(c, out);
            }
            Expr::Call(_, args, _) | Expr::MakeF4(args, _) => {
                for a in args {
                    expr_names(a, out);
                }
            }
            _ => {}
        }
    }
    for s in body {
        match s {
            Stmt::Decl { init, .. } => {
                if let Some(e) = init {
                    expr_names(e, out);
                }
            }
            Stmt::Assign { target, value, .. } => {
                match target {
                    LValue::Var(n, _) => out.push(n.clone()),
                    LValue::Index(n, idx, _) => {
                        out.push(n.clone());
                        expr_names(idx, out);
                    }
                    LValue::Comp(n, _, _) => out.push(n.clone()),
                }
                expr_names(value, out);
            }
            Stmt::If {
                cond,
                then_blk,
                else_blk,
            } => {
                expr_names(cond, out);
                collect_names(then_blk, out);
                collect_names(else_blk, out);
            }
            Stmt::While { cond, body } => {
                expr_names(cond, out);
                collect_names(body, out);
            }
            Stmt::For {
                init,
                cond,
                step,
                body,
            } => {
                if let Some(i) = init {
                    collect_names(std::slice::from_ref(i), out);
                }
                if let Some(c) = cond {
                    expr_names(c, out);
                }
                if let Some(st) = step {
                    collect_names(std::slice::from_ref(st), out);
                }
                collect_names(body, out);
            }
            Stmt::Return { value, .. } => {
                if let Some(v) = value {
                    expr_names(v, out);
                }
            }
            Stmt::ExprStmt(e) => expr_names(e, out),
            Stmt::Block(b) => collect_names(b, out),
            Stmt::Barrier { .. } => {}
        }
    }
    // Remove names declared inside the body: they are loop-local.
    let mut declared = Vec::new();
    collect_decls(body, &mut declared);
    out.retain(|n| !declared.contains(n));
}

fn collect_decls(body: &[Stmt], out: &mut Vec<String>) {
    for s in body {
        match s {
            Stmt::Decl { name, .. } => out.push(name.clone()),
            Stmt::If {
                then_blk, else_blk, ..
            } => {
                collect_decls(then_blk, out);
                collect_decls(else_blk, out);
            }
            Stmt::While { body, .. } => collect_decls(body, out),
            Stmt::For { init, body, .. } => {
                if let Some(i) = init {
                    collect_decls(std::slice::from_ref(i), out);
                }
                collect_decls(body, out);
            }
            Stmt::Block(b) => collect_decls(b, out),
            _ => {}
        }
    }
}

/// Gather `(array, index-source)` pairs for every array write; flags
/// non-linear indices and writes to outer scalars as `nonlinear`.
fn collect_writes(body: &[Stmt], out: &mut Vec<(String, String)>, nonlinear: &mut bool, var: &str) {
    let mut declared = Vec::new();
    collect_decls(body, &mut declared);
    collect_writes_inner(body, out, nonlinear, var, &mut declared);
}

fn collect_writes_inner(
    body: &[Stmt],
    out: &mut Vec<(String, String)>,
    nonlinear: &mut bool,
    var: &str,
    declared: &mut Vec<String>,
) {
    for s in body {
        match s {
            Stmt::Assign { target, .. } => match target {
                LValue::Index(name, idx, _) => {
                    if !is_linear_in(idx, var) {
                        *nonlinear = true;
                    }
                    out.push((name.clone(), emit_expr(idx)));
                }
                LValue::Var(name, _) => {
                    // Writing an outer scalar inside a parallel loop is a
                    // race unless it is loop-local.
                    if !declared.contains(name) && name != var {
                        *nonlinear = true;
                    }
                }
                LValue::Comp(..) => {}
            },
            Stmt::If {
                then_blk, else_blk, ..
            } => {
                collect_writes_inner(then_blk, out, nonlinear, var, declared);
                collect_writes_inner(else_blk, out, nonlinear, var, declared);
            }
            Stmt::While { body, .. } => collect_writes_inner(body, out, nonlinear, var, declared),
            Stmt::For {
                init, body, step, ..
            } => {
                if let Some(i) = init {
                    if let Stmt::Decl { name, .. } = i.as_ref() {
                        declared.push(name.clone());
                    }
                }
                let _ = step;
                collect_writes_inner(body, out, nonlinear, var, declared);
            }
            Stmt::Block(b) => collect_writes_inner(b, out, nonlinear, var, declared),
            _ => {}
        }
    }
}

fn collect_reads(body: &[Stmt], out: &mut Vec<(String, String)>) {
    fn expr_reads(e: &Expr, out: &mut Vec<(String, String)>) {
        match e {
            Expr::Index(base, idx, _) => {
                if let Expr::Var(n, _) = base.as_ref() {
                    out.push((n.clone(), emit_expr(idx)));
                }
                expr_reads(idx, out);
            }
            Expr::Unary(_, a, _) | Expr::Cast(_, a, _) | Expr::Comp(a, _, _) => expr_reads(a, out),
            Expr::Binary(_, a, b, _) => {
                expr_reads(a, out);
                expr_reads(b, out);
            }
            Expr::Ternary(a, b, c, _) => {
                expr_reads(a, out);
                expr_reads(b, out);
                expr_reads(c, out);
            }
            Expr::Call(_, args, _) | Expr::MakeF4(args, _) => {
                for a in args {
                    expr_reads(a, out);
                }
            }
            _ => {}
        }
    }
    for s in body {
        match s {
            Stmt::Decl { init: Some(e), .. } => expr_reads(e, out),
            Stmt::Assign { target, value, .. } => {
                if let LValue::Index(_, idx, _) = target {
                    expr_reads(idx, out);
                }
                expr_reads(value, out);
            }
            Stmt::If {
                cond,
                then_blk,
                else_blk,
            } => {
                expr_reads(cond, out);
                collect_reads(then_blk, out);
                collect_reads(else_blk, out);
            }
            Stmt::While { cond, body } => {
                expr_reads(cond, out);
                collect_reads(body, out);
            }
            Stmt::For {
                init,
                cond,
                step,
                body,
            } => {
                if let Some(i) = init {
                    collect_reads(std::slice::from_ref(i), out);
                }
                if let Some(c) = cond {
                    expr_reads(c, out);
                }
                if let Some(st) = step {
                    collect_reads(std::slice::from_ref(st), out);
                }
                collect_reads(body, out);
            }
            Stmt::Return { value: Some(v), .. } => expr_reads(v, out),
            Stmt::ExprStmt(e) => expr_reads(e, out),
            Stmt::Block(b) => collect_reads(b, out),
            _ => {}
        }
    }
}

/// Is `e` of the form `a*i + b` with `a`, `b` free of `var`?
fn is_linear_in(e: &Expr, var: &str) -> bool {
    fn contains(e: &Expr, var: &str) -> bool {
        match e {
            Expr::Var(n, _) => n == var,
            Expr::Unary(_, a, _) | Expr::Cast(_, a, _) | Expr::Comp(a, _, _) => contains(a, var),
            Expr::Binary(_, a, b, _) | Expr::Index(a, b, _) => contains(a, var) || contains(b, var),
            Expr::Ternary(a, b, c, _) => contains(a, var) || contains(b, var) || contains(c, var),
            Expr::Call(_, args, _) | Expr::MakeF4(args, _) => args.iter().any(|a| contains(a, var)),
            _ => false,
        }
    }
    match e {
        _ if !contains(e, var) => true,
        Expr::Var(n, _) => n == var,
        Expr::Binary(BinOp::Add | BinOp::Sub, a, b, _) => {
            is_linear_in(a, var) && is_linear_in(b, var)
        }
        Expr::Binary(BinOp::Mul, a, b, _) => {
            (!contains(a, var) && is_linear_in(b, var))
                || (!contains(b, var) && is_linear_in(a, var))
        }
        Expr::Cast(_, a, _) => is_linear_in(a, var),
        _ => false,
    }
}

/// Find a call to a user-defined (non-builtin) function in the body.
fn find_user_call(body: &[Stmt], unit: &Unit) -> Option<String> {
    let user: Vec<&str> = unit.funcs.iter().map(|f| f.name.as_str()).collect();
    let mut found = None;
    fn walk_expr(e: &Expr, user: &[&str], found: &mut Option<String>) {
        match e {
            Expr::Call(name, args, _) => {
                if user.contains(&name.as_str()) {
                    *found = Some(name.clone());
                }
                for a in args {
                    walk_expr(a, user, found);
                }
            }
            Expr::Unary(_, a, _) | Expr::Cast(_, a, _) | Expr::Comp(a, _, _) => {
                walk_expr(a, user, found)
            }
            Expr::Binary(_, a, b, _) | Expr::Index(a, b, _) => {
                walk_expr(a, user, found);
                walk_expr(b, user, found);
            }
            Expr::Ternary(a, b, c, _) => {
                walk_expr(a, user, found);
                walk_expr(b, user, found);
                walk_expr(c, user, found);
            }
            Expr::MakeF4(args, _) => {
                for a in args {
                    walk_expr(a, user, found);
                }
            }
            _ => {}
        }
    }
    fn walk(body: &[Stmt], user: &[&str], found: &mut Option<String>) {
        for s in body {
            match s {
                Stmt::Decl { init: Some(e), .. } => walk_expr(e, user, found),
                Stmt::Assign { target, value, .. } => {
                    if let LValue::Index(_, idx, _) = target {
                        walk_expr(idx, user, found);
                    }
                    walk_expr(value, user, found);
                }
                Stmt::If {
                    cond,
                    then_blk,
                    else_blk,
                } => {
                    walk_expr(cond, user, found);
                    walk(then_blk, user, found);
                    walk(else_blk, user, found);
                }
                Stmt::While { cond, body } => {
                    walk_expr(cond, user, found);
                    walk(body, user, found);
                }
                Stmt::For {
                    init,
                    cond,
                    step,
                    body,
                } => {
                    if let Some(i) = init {
                        walk(std::slice::from_ref(i), user, found);
                    }
                    if let Some(c) = cond {
                        walk_expr(c, user, found);
                    }
                    if let Some(st) = step {
                        walk(std::slice::from_ref(st), user, found);
                    }
                    walk(body, user, found);
                }
                Stmt::Return { value: Some(v), .. } => walk_expr(v, user, found),
                Stmt::ExprStmt(e) => walk_expr(e, user, found),
                Stmt::Block(b) => walk(b, user, found),
                _ => {}
            }
            if found.is_some() {
                return;
            }
        }
    }
    walk(body, &user, &mut found);
    found
}

/// Recognise `red = fmin(red, e)` / `fmax` / `red += e` / `red = red + e`.
fn extract_reduction_expr(body: &[Stmt], red_var: &str, op: RedOp) -> Option<Expr> {
    if body.len() != 1 {
        return None;
    }
    let Stmt::Assign {
        target,
        op: aop,
        value,
        ..
    } = &body[0]
    else {
        return None;
    };
    let LValue::Var(name, _) = target else {
        return None;
    };
    if name != red_var {
        return None;
    }
    match (op, aop, value) {
        (RedOp::Sum, AssignOp::Add, e) => Some(e.clone()),
        (RedOp::Sum, AssignOp::Set, Expr::Binary(BinOp::Add, a, b, _)) => {
            if matches!(a.as_ref(), Expr::Var(n, _) if n == red_var) {
                Some((**b).clone())
            } else if matches!(b.as_ref(), Expr::Var(n, _) if n == red_var) {
                Some((**a).clone())
            } else {
                None
            }
        }
        (RedOp::Min, AssignOp::Set, Expr::Call(f, args, _)) if f == "fmin" && args.len() == 2 => {
            if matches!(&args[0], Expr::Var(n, _) if n == red_var) {
                Some(args[1].clone())
            } else {
                None
            }
        }
        (RedOp::Max, AssignOp::Set, Expr::Call(f, args, _)) if f == "fmax" && args.len() == 2 => {
            if matches!(&args[0], Expr::Var(n, _) if n == red_var) {
                Some(args[1].clone())
            } else {
                None
            }
        }
        _ => None,
    }
}
