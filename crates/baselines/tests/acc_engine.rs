//! Integration tests for the OpenACC-style pragma engine.

use baselines::acc::{AccError, AccRunner, AccTarget};
use baselines::host_eval::{array_f32, HArg, HVal, HostArray};
use oclsim::ProfileSink;
use std::rc::Rc;

fn f32s(arr: &baselines::host_eval::ArrRef) -> Vec<f32> {
    match &*arr.borrow() {
        HostArray::F32(v) => v.clone(),
        other => panic!("expected f32 array, got {other:?}"),
    }
}

#[test]
fn annotated_loop_runs_on_device() {
    let src = "
        void square_all(float* data, int n) {
            #pragma acc parallel loop copy(data)
            for (int i = 0; i < n; i++) {
                data[i] = data[i] * data[i];
            }
        }
        __kernel void unused(__global float* a) { a[0] = 0.0f; }
    ";
    let profile = ProfileSink::new();
    let runner = AccRunner::new(src, AccTarget::gpu(), profile.clone()).unwrap();
    let data = array_f32(vec![1.0, 2.0, 3.0, 4.0]);
    let report = runner
        .run(
            "square_all",
            &[HArg::Array(Rc::clone(&data)), HArg::Scalar(HVal::I(4))],
        )
        .unwrap();
    assert_eq!(f32s(&data), vec![1.0, 4.0, 9.0, 16.0]);
    assert_eq!(report.dispatches, 1);
    assert_eq!(report.sequential_fallbacks, 0);
    let p = profile.snapshot();
    assert!(p.to_device_ns > 0.0 && p.from_device_ns > 0.0 && p.kernel_ns > 0.0);
}

#[test]
fn captured_scalars_become_kernel_args() {
    let src = "
        void scale(float* data, int n, float factor) {
            #pragma acc parallel loop
            for (int i = 0; i < n; i++) {
                data[i] = data[i] * factor;
            }
        }
        __kernel void unused(__global float* a) { a[0] = 0.0f; }
    ";
    let runner = AccRunner::new(src, AccTarget::cpu(), ProfileSink::new()).unwrap();
    let data = array_f32(vec![1.0, 2.0]);
    runner
        .run(
            "scale",
            &[
                HArg::Array(Rc::clone(&data)),
                HArg::Scalar(HVal::I(2)),
                HArg::Scalar(HVal::F(3.0)),
            ],
        )
        .unwrap();
    assert_eq!(f32s(&data), vec![3.0, 6.0]);
}

#[test]
fn nonlinear_write_index_falls_back_to_sequential_device_code() {
    // `data[i*i] = ...` — the paper: "if there is a non-linear data
    // dependency in a for loop, sequential code may be generated".
    let src = "
        void scatter(float* data, int n) {
            #pragma acc parallel loop
            for (int i = 0; i < n; i++) {
                data[i * i] = 1.0f;
            }
        }
        __kernel void unused(__global float* a) { a[0] = 0.0f; }
    ";
    let runner = AccRunner::new(src, AccTarget::gpu(), ProfileSink::new()).unwrap();
    let data = array_f32(vec![0.0; 16]);
    let report = runner
        .run(
            "scatter",
            &[HArg::Array(Rc::clone(&data)), HArg::Scalar(HVal::I(4))],
        )
        .unwrap();
    assert_eq!(report.sequential_fallbacks, 1);
    // Still functionally correct, just serial.
    let v = f32s(&data);
    assert_eq!(v[0], 1.0);
    assert_eq!(v[1], 1.0);
    assert_eq!(v[4], 1.0);
    assert_eq!(v[9], 1.0);
    assert_eq!(v[2], 0.0);
}

#[test]
fn unproven_dependence_requires_independent_clause() {
    // Reads m[i*n+step] while writing m[i*n+j]: unproven without
    // `independent` (the LUD situation).
    let body = "
        void update(float* m, int n, int step) {
            #pragma acc parallel loop PLACEHOLDER
            for (int i = 0; i < n; i++) {
                for (int j = 0; j < n; j++) {
                    m[i * n + j] = m[i * n + j] - m[i * n + step];
                }
            }
        }
        __kernel void unused(__global float* a) { a[0] = 0.0f; }
    ";
    for (clause, expect_fallback) in [("", 1u64), ("independent", 0u64)] {
        let src = body.replace("PLACEHOLDER", clause);
        let runner = AccRunner::new(&src, AccTarget::gpu(), ProfileSink::new()).unwrap();
        let data = array_f32(vec![1.0; 16]);
        let report = runner
            .run(
                "update",
                &[
                    HArg::Array(Rc::clone(&data)),
                    HArg::Scalar(HVal::I(4)),
                    HArg::Scalar(HVal::I(0)),
                ],
            )
            .unwrap();
        assert_eq!(
            report.sequential_fallbacks, expect_fallback,
            "clause `{clause}`"
        );
    }
}

#[test]
fn reduction_clause_uses_two_stage_scheme() {
    let src = "
        float minimum(float* data, int n) {
            float m = 3.0e38f;
            #pragma acc parallel loop reduction(min:m)
            for (int i = 0; i < n; i++) {
                m = fmin(m, data[i]);
            }
            return m;
        }
        __kernel void unused(__global float* a) { a[0] = 0.0f; }
    ";
    let profile = ProfileSink::new();
    let runner = AccRunner::new(src, AccTarget::gpu(), profile.clone()).unwrap();
    let mut vals: Vec<f32> = (0..4096).map(|i| (i as f32 - 1000.0).abs() + 5.0).collect();
    vals[1234] = -42.0;
    let data = array_f32(vals);
    runner
        .run(
            "minimum",
            &[HArg::Array(Rc::clone(&data)), HArg::Scalar(HVal::I(4096))],
        )
        .unwrap();
    // The scalar result lives in the function's return; re-run via host
    // eval to check... instead, verify through a writeback variant below.
    let p = profile.snapshot();
    assert_eq!(p.dispatches, 1);
    assert!(p.from_device_ns > 0.0, "partials must be downloaded");
}

#[test]
fn reduction_result_is_correct() {
    let src = "
        void minimum(float* data, float* out, int n) {
            float m = 3.0e38f;
            #pragma acc parallel loop reduction(min:m)
            for (int i = 0; i < n; i++) {
                m = fmin(m, data[i]);
            }
            out[0] = m;
        }
        __kernel void unused(__global float* a) { a[0] = 0.0f; }
    ";
    let runner = AccRunner::new(src, AccTarget::gpu(), ProfileSink::new()).unwrap();
    let mut vals: Vec<f32> = (0..1000).map(|i| 1000.0 - i as f32).collect();
    vals[777] = -3.5;
    let data = array_f32(vals);
    let out = array_f32(vec![0.0]);
    runner
        .run(
            "minimum",
            &[
                HArg::Array(data),
                HArg::Array(Rc::clone(&out)),
                HArg::Scalar(HVal::I(1000)),
            ],
        )
        .unwrap();
    assert_eq!(f32s(&out), vec![-3.5]);
}

#[test]
fn data_region_keeps_arrays_resident_across_iterations() {
    let src = "
        void steps(float* m, int n, int rounds) {
            #pragma acc data copy(m)
            for (int r = 0; r < rounds; r++) {
                #pragma acc parallel loop present(m)
                for (int i = 0; i < n; i++) {
                    m[i] = m[i] + 1.0f;
                }
            }
        }
        __kernel void unused(__global float* a) { a[0] = 0.0f; }
    ";
    let profile = ProfileSink::new();
    let runner = AccRunner::new(src, AccTarget::gpu(), profile.clone()).unwrap();
    let data = array_f32(vec![0.0; 256]);
    let report = runner
        .run(
            "steps",
            &[
                HArg::Array(Rc::clone(&data)),
                HArg::Scalar(HVal::I(256)),
                HArg::Scalar(HVal::I(10)),
            ],
        )
        .unwrap();
    assert_eq!(report.dispatches, 10);
    assert!(f32s(&data).iter().all(|&v| v == 10.0));
    // One upload + one download for the whole region, not ten.
    let p = profile.snapshot();
    let gpu = oclsim::Platform::default_device(oclsim::DeviceType::Gpu).unwrap();
    let one_way = gpu.cost_model().transfer_ns(256 * 4);
    assert!(
        (p.to_device_ns - one_way).abs() < 1e-6,
        "expected a single upload, got {} vs {}",
        p.to_device_ns,
        one_way
    );
    assert!((p.from_device_ns - one_way).abs() < 1e-6);
}

#[test]
fn without_data_region_every_iteration_pays_transfers() {
    let src = "
        void steps(float* m, int n, int rounds) {
            for (int r = 0; r < rounds; r++) {
                #pragma acc parallel loop copy(m)
                for (int i = 0; i < n; i++) {
                    m[i] = m[i] + 1.0f;
                }
            }
        }
        __kernel void unused(__global float* a) { a[0] = 0.0f; }
    ";
    let profile = ProfileSink::new();
    let runner = AccRunner::new(src, AccTarget::gpu(), profile.clone()).unwrap();
    let data = array_f32(vec![0.0; 256]);
    runner
        .run(
            "steps",
            &[
                HArg::Array(Rc::clone(&data)),
                HArg::Scalar(HVal::I(256)),
                HArg::Scalar(HVal::I(10)),
            ],
        )
        .unwrap();
    assert!(f32s(&data).iter().all(|&v| v == 10.0));
    let p = profile.snapshot();
    let gpu = oclsim::Platform::default_device(oclsim::DeviceType::Gpu).unwrap();
    let one_way = gpu.cost_model().transfer_ns(256 * 4);
    assert!((p.to_device_ns - 10.0 * one_way).abs() < 1e-3);
}

#[test]
fn user_function_call_in_compute_region_fails_to_compile() {
    // The modeled PGI failure that leaves Figure 3e without ACC GPU bars.
    let src = "
        float score(float x) { return x * 2.0f; }
        void rank(float* data, int n) {
            #pragma acc parallel loop
            for (int i = 0; i < n; i++) {
                data[i] = score(data[i]);
            }
        }
        __kernel void unused(__global float* a) { a[0] = 0.0f; }
    ";
    let runner = AccRunner::new(src, AccTarget::gpu(), ProfileSink::new()).unwrap();
    let data = array_f32(vec![1.0; 4]);
    let err = runner
        .run("rank", &[HArg::Array(data), HArg::Scalar(HVal::I(4))])
        .unwrap_err();
    assert!(matches!(err, AccError::CompileFail(_)), "got {err:?}");
}

#[test]
fn un_annotated_code_runs_sequentially_on_host() {
    let src = "
        void plain(float* data, int n) {
            for (int i = 0; i < n; i++) { data[i] = (float)i; }
        }
        __kernel void unused(__global float* a) { a[0] = 0.0f; }
    ";
    let profile = ProfileSink::new();
    let runner = AccRunner::new(src, AccTarget::gpu(), profile.clone()).unwrap();
    let data = array_f32(vec![0.0; 4]);
    let report = runner
        .run(
            "plain",
            &[HArg::Array(Rc::clone(&data)), HArg::Scalar(HVal::I(4))],
        )
        .unwrap();
    assert_eq!(report.dispatches, 0);
    assert_eq!(f32s(&data), vec![0.0, 1.0, 2.0, 3.0]);
    assert_eq!(profile.snapshot().kernel_ns, 0.0);
}

#[test]
fn gang_worker_clauses_shape_the_launch() {
    // Worker(256) on a GPU: fewer, larger groups than the default 64 —
    // observable through the virtual clock (different makespan).
    let src_t = "
        void touch(float* data, int n) {
            #pragma acc parallel loop WORKER
            for (int i = 0; i < n; i++) {
                float x = data[i];
                for (int k = 0; k < 50; k++) { x = x * 1.001f + 0.5f; }
                data[i] = x;
            }
        }
        __kernel void unused(__global float* a) { a[0] = 0.0f; }
    ";
    let mut times = Vec::new();
    for worker in ["worker(1)", "worker(64)"] {
        let src = src_t.replace("WORKER", worker);
        let profile = ProfileSink::new();
        let runner = AccRunner::new(&src, AccTarget::gpu(), profile.clone()).unwrap();
        let data = array_f32(vec![1.0; 2048]);
        runner
            .run("touch", &[HArg::Array(data), HArg::Scalar(HVal::I(2048))])
            .unwrap();
        times.push(profile.snapshot().kernel_ns);
    }
    // One-item groups waste the 64-wide SIMD units: must be slower.
    assert!(
        times[0] > times[1],
        "worker(1) {} !> worker(64) {}",
        times[0],
        times[1]
    );
}
