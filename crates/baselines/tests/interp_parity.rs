//! Differential testing: the same mini-C functions run through two
//! independent implementations — the sequential host evaluator
//! (`baselines::host_eval`) and the device work-group interpreter
//! (`oclsim::minicl`, via a one-work-item kernel wrapper) — and must
//! agree on arbitrary inputs.

use baselines::host_eval::{array_f32, HArg, HVal, HostArray, HostEval};
use oclsim::{CommandQueue, Context, DeviceType, MemFlags, NdRange, Platform, Program};
use proptest::prelude::*;
use std::rc::Rc;

/// A corpus of functions exercising distinct language features. Each has
/// the signature `void f(float* data, int n)` and mutates `data` in place.
const FUNCTIONS: &[(&str, &str)] = &[
    (
        "affine",
        "void f(float* data, int n) {
            for (int i = 0; i < n; i++) {
                data[i] = data[i] * 3.0f - 1.5f;
            }
        }",
    ),
    (
        "prefix_dependent",
        "void f(float* data, int n) {
            for (int i = 1; i < n; i++) {
                data[i] = data[i] + data[i - 1];
            }
        }",
    ),
    (
        "branches_and_modulo",
        "void f(float* data, int n) {
            for (int i = 0; i < n; i++) {
                if (i % 3 == 0) {
                    data[i] = -data[i];
                } else {
                    if (data[i] > 0.5f) {
                        data[i] = data[i] * data[i];
                    }
                }
            }
        }",
    ),
    (
        "while_halving",
        "void f(float* data, int n) {
            for (int i = 0; i < n; i++) {
                float x = data[i] * 100.0f + 1.0f;
                while (x > 2.0f) {
                    x = x / 2.0f;
                }
                data[i] = x;
            }
        }",
    ),
    (
        "math_builtins",
        "void f(float* data, int n) {
            for (int i = 0; i < n; i++) {
                data[i] = sqrt(fabs(data[i])) + fmin(data[i], 0.25f);
            }
        }",
    ),
    (
        "ternary_and_casts",
        "void f(float* data, int n) {
            for (int i = 0; i < n; i++) {
                int k = (int)(data[i] * 10.0f);
                data[i] = k % 2 == 0 ? (float)k : data[i];
            }
        }",
    ),
];

/// Run `src`'s function `f` on the host evaluator.
fn run_host(src: &str, data: &[f32]) -> Vec<f32> {
    let unit = oclsim::minicl::parse(src).unwrap();
    let eval = HostEval::new(&unit);
    let arr = array_f32(data.to_vec());
    eval.call(
        "f",
        &[
            HArg::Array(Rc::clone(&arr)),
            HArg::Scalar(HVal::I(data.len() as i64)),
        ],
    )
    .unwrap();
    let out = match &*arr.borrow() {
        HostArray::F32(v) => v.clone(),
        other => panic!("expected f32 array, got {other:?}"),
    };
    out
}

/// Run the same function as a one-work-item kernel on the simulator.
fn run_device(src: &str, data: &[f32]) -> Vec<f32> {
    let wrapped =
        format!("{src}\n__kernel void main_k(__global float* data, const int n) {{ f(data, n); }}");
    let device = Platform::default_device(DeviceType::Cpu).unwrap();
    let ctx = Context::new(std::slice::from_ref(&device)).unwrap();
    let queue = CommandQueue::new(&ctx, &device).unwrap();
    let program = Program::build(&ctx, &wrapped).unwrap();
    let kernel = program.create_kernel("main_k").unwrap();
    let buf = ctx
        .create_buffer(MemFlags::ReadWrite, data.len() * 4)
        .unwrap();
    queue.write_f32(&buf, data).unwrap();
    kernel.set_arg_buffer(0, &buf).unwrap();
    kernel.set_arg_i32(1, data.len() as i32).unwrap();
    queue.enqueue_nd_range(&kernel, &NdRange::d1(1, 1)).unwrap();
    let (out, _) = queue.read_f32(&buf).unwrap();
    ctx.release_bytes(data.len() * 4);
    out
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(24))]

    #[test]
    fn host_and_device_interpreters_agree(
        data in proptest::collection::vec(-4.0f32..4.0, 1..48),
        which in 0usize..FUNCTIONS.len(),
    ) {
        let (name, src) = FUNCTIONS[which];
        let host = run_host(src, &data);
        let device = run_device(src, &data);
        for (i, (h, d)) in host.iter().zip(&device).enumerate() {
            // The host evaluates in f64; the device stores through f32.
            prop_assert!(
                (h - d).abs() <= 1e-4 * h.abs().max(1.0),
                "{name}[{i}]: host {h} vs device {d}"
            );
        }
    }
}

/// The functions must also be *non-trivial*: each changes some input.
#[test]
fn corpus_functions_do_something() {
    let data: Vec<f32> = (0..16).map(|i| i as f32 / 7.0 - 1.0).collect();
    for (name, src) in FUNCTIONS {
        let out = run_host(src, &data);
        assert_ne!(out, data, "{name} is a no-op on the probe input");
    }
}
