//! Offline stand-in for the `proptest` crate.
//!
//! The build environment has no network access to a crates registry, so
//! the workspace patches `proptest` to this local shim. It keeps the
//! property-test surface the workspace uses — the [`proptest!`] macro,
//! range / [`any`] / [`collection::vec`] / [`bool::ANY`] strategies,
//! [`prop_assert!`] / [`prop_assert_eq!`], and
//! `ProptestConfig::with_cases` — with two simplifications:
//!
//! * inputs are drawn from a splitmix64 generator seeded by the test
//!   name, so every run explores the same (deterministic) cases;
//! * there is no shrinking — a failing case reports its index and the
//!   assertion message, not a minimised input.
//!
//! Both are acceptable here because the repository's properties are
//! differential (two implementations must agree), where any failing case
//! is already small and the assertion message carries the values.

use std::ops::Range;

/// Deterministic splitmix64 stream used to sample strategy values.
#[derive(Debug, Clone)]
pub struct TestRng {
    state: u64,
}

impl TestRng {
    /// Seed the stream from a test name (FNV-1a), so each property
    /// explores a distinct but reproducible sequence.
    pub fn from_name(name: &str) -> TestRng {
        let mut h: u64 = 0xCBF29CE484222325;
        for b in name.bytes() {
            h ^= b as u64;
            h = h.wrapping_mul(0x100000001B3);
        }
        TestRng { state: h }
    }

    /// Next 64 raw bits.
    pub fn next_u64(&mut self) -> u64 {
        self.state = self.state.wrapping_add(0x9E3779B97F4A7C15);
        let mut z = self.state;
        z = (z ^ (z >> 30)).wrapping_mul(0xBF58476D1CE4E5B9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94D049BB133111EB);
        z ^ (z >> 31)
    }
}

/// A generator of test inputs. The shim keeps proptest's name but not
/// its combinator surface: `sample` draws one value directly.
pub trait Strategy {
    /// The type of value this strategy produces.
    type Value;
    /// Draw one value.
    fn sample(&self, rng: &mut TestRng) -> Self::Value;
}

macro_rules! int_range_strategy {
    ($($t:ty),*) => {$(
        impl Strategy for Range<$t> {
            type Value = $t;
            fn sample(&self, rng: &mut TestRng) -> $t {
                let span = (self.end - self.start) as u64;
                assert!(span > 0, "empty range strategy");
                self.start + (rng.next_u64() % span) as $t
            }
        }
    )*};
}

int_range_strategy!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

impl Strategy for Range<f32> {
    type Value = f32;
    fn sample(&self, rng: &mut TestRng) -> f32 {
        let unit = ((rng.next_u64() >> 40) as f32) * (1.0 / (1u64 << 24) as f32);
        self.start + unit * (self.end - self.start)
    }
}

impl Strategy for Range<f64> {
    type Value = f64;
    fn sample(&self, rng: &mut TestRng) -> f64 {
        let unit = ((rng.next_u64() >> 11) as f64) * (1.0 / (1u64 << 53) as f64);
        self.start + unit * (self.end - self.start)
    }
}

/// Types with a full-range default strategy (the [`any`] function).
pub trait Arbitrary: Sized {
    /// Draw an arbitrary value of this type.
    fn arbitrary(rng: &mut TestRng) -> Self;
}

macro_rules! int_arbitrary {
    ($($t:ty),*) => {$(
        impl Arbitrary for $t {
            fn arbitrary(rng: &mut TestRng) -> $t {
                rng.next_u64() as $t
            }
        }
    )*};
}

int_arbitrary!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

impl Arbitrary for bool {
    fn arbitrary(rng: &mut TestRng) -> bool {
        rng.next_u64() >> 63 == 1
    }
}

/// Strategy over every value of `T` (see [`any`]).
#[derive(Debug, Clone, Copy)]
pub struct Any<T> {
    _marker: std::marker::PhantomData<T>,
}

impl<T: Arbitrary> Strategy for Any<T> {
    type Value = T;
    fn sample(&self, rng: &mut TestRng) -> T {
        T::arbitrary(rng)
    }
}

/// The strategy producing any value of `T`.
pub fn any<T: Arbitrary>() -> Any<T> {
    Any {
        _marker: std::marker::PhantomData,
    }
}

/// Strategies over collections.
pub mod collection {
    use super::{Strategy, TestRng};
    use std::ops::Range;

    /// Strategy for `Vec<S::Value>` with a length drawn from a range.
    #[derive(Debug, Clone)]
    pub struct VecStrategy<S> {
        element: S,
        len: Range<usize>,
    }

    impl<S: Strategy> Strategy for VecStrategy<S> {
        type Value = Vec<S::Value>;
        fn sample(&self, rng: &mut TestRng) -> Vec<S::Value> {
            let span = (self.len.end - self.len.start).max(1) as u64;
            let n = self.len.start + (rng.next_u64() % span) as usize;
            (0..n).map(|_| self.element.sample(rng)).collect()
        }
    }

    /// A vector whose elements come from `element` and whose length is
    /// uniform in `len`.
    pub fn vec<S: Strategy>(element: S, len: Range<usize>) -> VecStrategy<S> {
        VecStrategy { element, len }
    }
}

/// Strategies over booleans.
pub mod bool {
    /// Fair-coin boolean strategy (`proptest::bool::ANY`).
    #[derive(Debug, Clone, Copy)]
    pub struct BoolAny;

    /// The canonical instance.
    pub const ANY: BoolAny = BoolAny;

    impl super::Strategy for BoolAny {
        type Value = bool;
        fn sample(&self, rng: &mut super::TestRng) -> bool {
            rng.next_u64() >> 63 == 1
        }
    }
}

/// Per-block test configuration (`#![proptest_config(...)]`).
#[derive(Debug, Clone)]
pub struct ProptestConfig {
    /// How many cases each property runs.
    pub cases: u32,
}

impl ProptestConfig {
    /// A config running `cases` cases per property.
    pub fn with_cases(cases: u32) -> ProptestConfig {
        ProptestConfig { cases }
    }
}

impl Default for ProptestConfig {
    fn default() -> ProptestConfig {
        ProptestConfig { cases: 32 }
    }
}

/// The common imports: `use proptest::prelude::*;`.
pub mod prelude {
    pub use crate::{
        any, prop_assert, prop_assert_eq, proptest, Arbitrary, ProptestConfig, Strategy,
    };
}

/// Declare property tests. Each `fn name(x in strategy, ...) { body }`
/// becomes a `#[test]` that samples its parameters `cases` times and runs
/// the body; `prop_assert!`-style failures report the case index.
#[macro_export]
macro_rules! proptest {
    (#![proptest_config($cfg:expr)] $($rest:tt)*) => {
        $crate::__proptest_impl!($cfg; $($rest)*);
    };
    ($($rest:tt)*) => {
        $crate::__proptest_impl!($crate::ProptestConfig::default(); $($rest)*);
    };
}

/// Implementation detail of [`proptest!`].
#[doc(hidden)]
#[macro_export]
macro_rules! __proptest_impl {
    ($cfg:expr; $($(#[$meta:meta])* fn $name:ident($($p:ident in $s:expr),+ $(,)?) $body:block)*) => {
        $(
            $(#[$meta])*
            fn $name() {
                let __cfg: $crate::ProptestConfig = $cfg;
                let mut __rng = $crate::TestRng::from_name(stringify!($name));
                for __case in 0..__cfg.cases {
                    $(let $p = $crate::Strategy::sample(&($s), &mut __rng);)+
                    let __outcome = (|| -> ::std::result::Result<(), ::std::string::String> {
                        $body
                        ::std::result::Result::Ok(())
                    })();
                    if let ::std::result::Result::Err(__msg) = __outcome {
                        panic!("property failed at case {}/{}: {}", __case + 1, __cfg.cases, __msg);
                    }
                }
            }
        )*
    };
}

/// Assert a condition inside a [`proptest!`] body; on failure the case
/// is reported with this message instead of unwinding mid-property.
#[macro_export]
macro_rules! prop_assert {
    ($cond:expr) => {
        $crate::prop_assert!($cond, "assertion failed: {}", stringify!($cond))
    };
    ($cond:expr, $($fmt:tt)+) => {
        if !$cond {
            return ::std::result::Result::Err(format!($($fmt)+));
        }
    };
}

/// Assert equality inside a [`proptest!`] body (consumes both sides so
/// moved values can still be compared, as with the real macro).
#[macro_export]
macro_rules! prop_assert_eq {
    ($lhs:expr, $rhs:expr $(,)?) => {{
        let lhs = $lhs;
        let rhs = $rhs;
        if !(lhs == rhs) {
            return ::std::result::Result::Err(format!(
                "assertion failed: `{:?}` != `{:?}`",
                lhs, rhs
            ));
        }
    }};
    ($lhs:expr, $rhs:expr, $($fmt:tt)+) => {{
        let lhs = $lhs;
        let rhs = $rhs;
        if !(lhs == rhs) {
            return ::std::result::Result::Err(format!(
                "{}: `{:?}` != `{:?}`",
                format!($($fmt)+),
                lhs,
                rhs
            ));
        }
    }};
}

#[cfg(test)]
mod tests {
    use crate::prelude::*;

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(64))]

        #[test]
        fn ranges_stay_in_bounds(
            a in 3u64..17,
            b in -4.0f32..4.0,
            c in 1usize..5000,
        ) {
            prop_assert!((3..17).contains(&a));
            prop_assert!((-4.0..4.0).contains(&b), "b = {}", b);
            prop_assert!((1..5000).contains(&c));
        }

        #[test]
        fn vec_strategy_respects_length(
            v in crate::collection::vec(any::<i32>(), 0..64),
            flag in crate::bool::ANY,
        ) {
            prop_assert!(v.len() < 64);
            prop_assert_eq!(flag as u8 <= 1, true);
        }
    }

    #[test]
    fn deterministic_across_runs() {
        let mut a = crate::TestRng::from_name("x");
        let mut b = crate::TestRng::from_name("x");
        for _ in 0..100 {
            assert_eq!(a.next_u64(), b.next_u64());
        }
    }
}
