//! Offline stand-in for the `crossbeam` crate.
//!
//! The build environment has no network access to a crates registry, so
//! the workspace patches `crossbeam` to this local shim. Only the
//! [`channel`] module is provided, and only the subset the actor runtime
//! uses: [`channel::bounded`] MPMC channels with rendezvous semantics at
//! capacity 0, timeouts, and disconnect detection. The implementation is
//! a `VecDeque` under a `Mutex` with two `Condvar`s — not lock-free like
//! the real crate, but semantically equivalent for the channel sizes the
//! actor runtime creates (the paper's pipelines move a handful of large
//! messages, not millions of small ones).

pub mod channel {
    //! Multi-producer multi-consumer channels (`crossbeam::channel` subset).

    use std::collections::VecDeque;
    use std::fmt;
    use std::sync::{Arc, Condvar, Mutex};
    use std::time::{Duration, Instant};

    /// Error returned by [`Sender::send`] when every receiver is gone;
    /// carries the unsent message.
    pub struct SendError<T>(pub T);

    impl<T> fmt::Debug for SendError<T> {
        fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
            f.write_str("SendError(..)")
        }
    }

    impl<T> fmt::Display for SendError<T> {
        fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
            f.write_str("sending on a disconnected channel")
        }
    }

    /// Error returned by [`Sender::send_timeout`]; carries the unsent
    /// message.
    pub enum SendTimeoutError<T> {
        /// The deadline passed before the channel accepted the message.
        Timeout(T),
        /// Every receiver is gone.
        Disconnected(T),
    }

    impl<T> fmt::Debug for SendTimeoutError<T> {
        fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
            match self {
                SendTimeoutError::Timeout(_) => f.write_str("SendTimeoutError::Timeout(..)"),
                SendTimeoutError::Disconnected(_) => {
                    f.write_str("SendTimeoutError::Disconnected(..)")
                }
            }
        }
    }

    impl<T> fmt::Display for SendTimeoutError<T> {
        fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
            match self {
                SendTimeoutError::Timeout(_) => f.write_str("send timed out"),
                SendTimeoutError::Disconnected(_) => {
                    f.write_str("sending on a disconnected channel")
                }
            }
        }
    }

    /// Error returned by [`Receiver::try_recv`].
    #[derive(Debug, Clone, Copy, PartialEq, Eq)]
    pub enum TryRecvError {
        /// The channel is currently empty but senders remain.
        Empty,
        /// The channel is empty and every sender is gone.
        Disconnected,
    }

    /// Error returned by [`Receiver::recv_timeout`].
    #[derive(Debug, Clone, Copy, PartialEq, Eq)]
    pub enum RecvTimeoutError {
        /// No message arrived before the deadline.
        Timeout,
        /// The channel is empty and every sender is gone.
        Disconnected,
    }

    struct State<T> {
        queue: VecDeque<T>,
        senders: usize,
        receivers: usize,
        /// Receivers currently blocked inside `recv_timeout` — the signal a
        /// rendezvous (capacity 0) sender waits for.
        recv_waiting: usize,
    }

    struct Chan<T> {
        cap: usize,
        state: Mutex<State<T>>,
        /// Signalled when space frees up, a receiver starts waiting, or the
        /// receiver side disconnects.
        send_cv: Condvar,
        /// Signalled when a message arrives or the sender side disconnects.
        recv_cv: Condvar,
    }

    /// The sending half of a channel. Cloneable; the channel disconnects
    /// for receivers when the last clone is dropped.
    pub struct Sender<T> {
        chan: Arc<Chan<T>>,
    }

    /// The receiving half of a channel. Cloneable; the channel disconnects
    /// for senders when the last clone is dropped.
    pub struct Receiver<T> {
        chan: Arc<Chan<T>>,
    }

    /// Create a bounded MPMC channel. Capacity 0 makes a rendezvous
    /// channel: `send` blocks until a receiver is actively waiting.
    pub fn bounded<T>(cap: usize) -> (Sender<T>, Receiver<T>) {
        let chan = Arc::new(Chan {
            cap,
            state: Mutex::new(State {
                queue: VecDeque::new(),
                senders: 1,
                receivers: 1,
                recv_waiting: 0,
            }),
            send_cv: Condvar::new(),
            recv_cv: Condvar::new(),
        });
        (Sender { chan: chan.clone() }, Receiver { chan })
    }

    impl<T> Sender<T> {
        /// Block until the message is handed to the channel, or return it
        /// in `Err` if every receiver has disconnected.
        pub fn send(&self, value: T) -> Result<(), SendError<T>> {
            let mut st = self.chan.state.lock().unwrap();
            loop {
                if st.receivers == 0 {
                    return Err(SendError(value));
                }
                // Rendezvous channels admit a message only once a receiver
                // is parked waiting for it; buffered channels admit up to
                // `cap` messages.
                let admit = if self.chan.cap == 0 {
                    st.queue.len() < st.recv_waiting
                } else {
                    st.queue.len() < self.chan.cap
                };
                if admit {
                    st.queue.push_back(value);
                    self.chan.recv_cv.notify_one();
                    return Ok(());
                }
                st = self.chan.send_cv.wait(st).unwrap();
            }
        }

        /// Like [`Sender::send`], but give up (returning the message in
        /// [`SendTimeoutError::Timeout`]) if the channel has not accepted
        /// it by the deadline.
        pub fn send_timeout(&self, value: T, timeout: Duration) -> Result<(), SendTimeoutError<T>> {
            let deadline = Instant::now() + timeout;
            let mut st = self.chan.state.lock().unwrap();
            loop {
                if st.receivers == 0 {
                    return Err(SendTimeoutError::Disconnected(value));
                }
                let admit = if self.chan.cap == 0 {
                    st.queue.len() < st.recv_waiting
                } else {
                    st.queue.len() < self.chan.cap
                };
                if admit {
                    st.queue.push_back(value);
                    self.chan.recv_cv.notify_one();
                    return Ok(());
                }
                let now = Instant::now();
                if now >= deadline {
                    return Err(SendTimeoutError::Timeout(value));
                }
                let (guard, _) = self.chan.send_cv.wait_timeout(st, deadline - now).unwrap();
                st = guard;
            }
        }

        /// Whether `other` sends into the same underlying channel.
        pub fn same_channel(&self, other: &Sender<T>) -> bool {
            Arc::ptr_eq(&self.chan, &other.chan)
        }
    }

    impl<T> Receiver<T> {
        /// Wait up to `timeout` for a message.
        pub fn recv_timeout(&self, timeout: Duration) -> Result<T, RecvTimeoutError> {
            let deadline = Instant::now() + timeout;
            let mut st = self.chan.state.lock().unwrap();
            loop {
                if let Some(v) = st.queue.pop_front() {
                    // A slot freed (buffered) or the handoff completed
                    // (rendezvous): wake one blocked sender.
                    self.chan.send_cv.notify_one();
                    return Ok(v);
                }
                if st.senders == 0 {
                    return Err(RecvTimeoutError::Disconnected);
                }
                let now = Instant::now();
                if now >= deadline {
                    return Err(RecvTimeoutError::Timeout);
                }
                st.recv_waiting += 1;
                // A receiver is now parked: rendezvous senders may proceed.
                self.chan.send_cv.notify_all();
                let (guard, _) = self.chan.recv_cv.wait_timeout(st, deadline - now).unwrap();
                st = guard;
                st.recv_waiting -= 1;
            }
        }

        /// Take a message if one is already queued.
        pub fn try_recv(&self) -> Result<T, TryRecvError> {
            let mut st = self.chan.state.lock().unwrap();
            match st.queue.pop_front() {
                Some(v) => {
                    self.chan.send_cv.notify_one();
                    Ok(v)
                }
                None if st.senders == 0 => Err(TryRecvError::Disconnected),
                None => Err(TryRecvError::Empty),
            }
        }
    }

    impl<T> Clone for Sender<T> {
        fn clone(&self) -> Sender<T> {
            self.chan.state.lock().unwrap().senders += 1;
            Sender {
                chan: self.chan.clone(),
            }
        }
    }

    impl<T> Clone for Receiver<T> {
        fn clone(&self) -> Receiver<T> {
            self.chan.state.lock().unwrap().receivers += 1;
            Receiver {
                chan: self.chan.clone(),
            }
        }
    }

    impl<T> Drop for Sender<T> {
        fn drop(&mut self) {
            let mut st = self.chan.state.lock().unwrap();
            st.senders -= 1;
            if st.senders == 0 {
                self.chan.recv_cv.notify_all();
            }
        }
    }

    impl<T> Drop for Receiver<T> {
        fn drop(&mut self) {
            let mut st = self.chan.state.lock().unwrap();
            st.receivers -= 1;
            if st.receivers == 0 {
                self.chan.send_cv.notify_all();
            }
        }
    }

    impl<T> fmt::Debug for Sender<T> {
        fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
            f.write_str("Sender { .. }")
        }
    }

    impl<T> fmt::Debug for Receiver<T> {
        fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
            f.write_str("Receiver { .. }")
        }
    }

    #[cfg(test)]
    mod tests {
        use super::*;
        use std::thread;
        use std::time::Duration;

        #[test]
        fn buffered_fifo() {
            let (tx, rx) = bounded(8);
            for i in 0..8 {
                tx.send(i).unwrap();
            }
            for i in 0..8 {
                assert_eq!(rx.try_recv(), Ok(i));
            }
            assert_eq!(rx.try_recv(), Err(TryRecvError::Empty));
        }

        #[test]
        fn disconnect_is_observed() {
            let (tx, rx) = bounded(1);
            tx.send(5i32).unwrap();
            drop(tx);
            assert_eq!(rx.try_recv(), Ok(5));
            assert_eq!(rx.try_recv(), Err(TryRecvError::Disconnected));
            let (tx2, rx2) = bounded::<i32>(1);
            drop(rx2);
            assert!(tx2.send(1).is_err());
        }

        #[test]
        fn rendezvous_blocks_sender_until_receiver_waits() {
            let (tx, rx) = bounded(0);
            let start = Instant::now();
            let h = thread::spawn(move || {
                tx.send(7u32).unwrap();
                start.elapsed()
            });
            thread::sleep(Duration::from_millis(50));
            assert_eq!(rx.recv_timeout(Duration::from_secs(1)), Ok(7));
            let sent_after = h.join().unwrap();
            assert!(sent_after >= Duration::from_millis(45), "{sent_after:?}");
        }

        #[test]
        fn recv_timeout_times_out() {
            let (_tx, rx) = bounded::<u32>(1);
            let err = rx.recv_timeout(Duration::from_millis(5)).unwrap_err();
            assert_eq!(err, RecvTimeoutError::Timeout);
        }
    }
}
