//! Offline stand-in for the `rand` crate.
//!
//! The build environment has no network access to a crates registry, so
//! the workspace patches `rand` to this local shim. The workload
//! generators only need *seeded, deterministic* streams — every
//! experiment input derives from a fixed seed — so this implements
//! [`rngs::StdRng`] as a splitmix64 generator behind the same
//! [`SeedableRng`] / [`Rng`] trait surface. The streams differ from the
//! real `StdRng` (ChaCha12), which is fine: nothing in the repository
//! asserts specific values, only determinism per seed.

/// Types producible by [`Rng::random`].
pub trait Standard: Sized {
    /// Draw one value from the generator's next output(s).
    fn from_u64(bits: u64) -> Self;
}

impl Standard for f32 {
    /// Uniform in `[0, 1)`, from the top 24 bits.
    fn from_u64(bits: u64) -> f32 {
        ((bits >> 40) as f32) * (1.0 / (1u64 << 24) as f32)
    }
}

impl Standard for f64 {
    /// Uniform in `[0, 1)`, from the top 53 bits.
    fn from_u64(bits: u64) -> f64 {
        ((bits >> 11) as f64) * (1.0 / (1u64 << 53) as f64)
    }
}

impl Standard for u32 {
    fn from_u64(bits: u64) -> u32 {
        (bits >> 32) as u32
    }
}

impl Standard for u64 {
    fn from_u64(bits: u64) -> u64 {
        bits
    }
}

impl Standard for bool {
    fn from_u64(bits: u64) -> bool {
        bits >> 63 == 1
    }
}

/// Generators constructible from a seed.
pub trait SeedableRng: Sized {
    /// Build a generator whose stream is fully determined by `seed`.
    fn seed_from_u64(seed: u64) -> Self;
}

/// Random-value extraction, generic over the output type.
pub trait Rng {
    /// The next 64 raw bits of the stream.
    fn next_u64(&mut self) -> u64;

    /// Draw a value of type `T` (uniform over `T`'s standard range).
    fn random<T: Standard>(&mut self) -> T {
        T::from_u64(self.next_u64())
    }
}

/// Generator types.
pub mod rngs {
    /// The standard seeded generator: splitmix64. Deterministic per seed,
    /// passes-through the [`crate::Rng`] / [`crate::SeedableRng`] traits.
    #[derive(Debug, Clone)]
    pub struct StdRng {
        state: u64,
    }

    impl crate::SeedableRng for StdRng {
        fn seed_from_u64(seed: u64) -> StdRng {
            StdRng { state: seed }
        }
    }

    impl crate::Rng for StdRng {
        fn next_u64(&mut self) -> u64 {
            // splitmix64 (public-domain reference constants).
            self.state = self.state.wrapping_add(0x9E3779B97F4A7C15);
            let mut z = self.state;
            z = (z ^ (z >> 30)).wrapping_mul(0xBF58476D1CE4E5B9);
            z = (z ^ (z >> 27)).wrapping_mul(0x94D049BB133111EB);
            z ^ (z >> 31)
        }
    }
}

#[cfg(test)]
mod tests {
    use super::rngs::StdRng;
    use super::{Rng, SeedableRng};

    #[test]
    fn deterministic_per_seed() {
        let a: Vec<f32> = {
            let mut r = StdRng::seed_from_u64(7);
            (0..64).map(|_| r.random::<f32>()).collect()
        };
        let b: Vec<f32> = {
            let mut r = StdRng::seed_from_u64(7);
            (0..64).map(|_| r.random::<f32>()).collect()
        };
        let c: Vec<f32> = {
            let mut r = StdRng::seed_from_u64(8);
            (0..64).map(|_| r.random::<f32>()).collect()
        };
        assert_eq!(a, b);
        assert_ne!(a, c);
    }

    #[test]
    fn f32_in_unit_interval() {
        let mut r = StdRng::seed_from_u64(1);
        for _ in 0..10_000 {
            let x = r.random::<f32>();
            assert!((0.0..1.0).contains(&x), "{x}");
        }
    }
}
