//! Offline stand-in for the `criterion` crate.
//!
//! The build environment has no network access to a crates registry, so
//! the workspace patches `criterion` to this local shim. It keeps the
//! `harness = false` bench surface the workspace uses —
//! [`Criterion::benchmark_group`], `sample_size`, `bench_function`,
//! [`Bencher::iter`], [`criterion_group!`], [`criterion_main!`] — and
//! reports a simple wall-clock mean per benchmark instead of criterion's
//! statistical analysis. Benchmarks under this shim are smoke-runnable
//! (`cargo bench`) but their numbers are indicative, not rigorous.

use std::time::{Duration, Instant};

/// Entry point handed to each benchmark function.
#[derive(Debug, Default)]
pub struct Criterion {
    _private: (),
}

impl Criterion {
    /// Start a named group of related benchmarks.
    pub fn benchmark_group(&mut self, name: &str) -> BenchmarkGroup<'_> {
        println!("group {name}");
        BenchmarkGroup {
            _parent: self,
            sample_size: 10,
        }
    }
}

/// A group of benchmarks sharing configuration.
#[derive(Debug)]
pub struct BenchmarkGroup<'a> {
    _parent: &'a mut Criterion,
    sample_size: usize,
}

impl BenchmarkGroup<'_> {
    /// Set how many samples each benchmark in this group collects.
    pub fn sample_size(&mut self, n: usize) -> &mut Self {
        self.sample_size = n.max(1);
        self
    }

    /// Run one benchmark: `f` receives a [`Bencher`] and must call
    /// [`Bencher::iter`].
    pub fn bench_function<F>(&mut self, id: &str, mut f: F) -> &mut Self
    where
        F: FnMut(&mut Bencher),
    {
        let mut b = Bencher {
            samples: self.sample_size,
            total: Duration::ZERO,
            iters: 0,
        };
        f(&mut b);
        let mean = if b.iters > 0 {
            b.total / b.iters as u32
        } else {
            Duration::ZERO
        };
        println!("  {id}: mean {mean:?} over {} iters", b.iters);
        self
    }

    /// Finish the group (prints nothing extra under the shim).
    pub fn finish(&mut self) {}
}

/// Times the benchmark routine.
#[derive(Debug)]
pub struct Bencher {
    samples: usize,
    total: Duration,
    iters: usize,
}

impl Bencher {
    /// Run `routine` `sample_size` times, accumulating wall-clock time.
    /// The routine's output is passed through [`std::hint::black_box`] so
    /// the computation is not optimised away.
    pub fn iter<O, R>(&mut self, mut routine: R)
    where
        R: FnMut() -> O,
    {
        for _ in 0..self.samples {
            let start = Instant::now();
            let out = routine();
            self.total += start.elapsed();
            std::hint::black_box(&out);
            self.iters += 1;
        }
    }
}

/// Prevent the compiler from optimising a value away.
pub fn black_box<T>(x: T) -> T {
    std::hint::black_box(x)
}

/// Bundle benchmark functions into a runnable group.
#[macro_export]
macro_rules! criterion_group {
    ($name:ident, $($target:path),+ $(,)?) => {
        pub fn $name() {
            let mut criterion = $crate::Criterion::default();
            $( $target(&mut criterion); )+
        }
    };
}

/// Generate `main` for a `harness = false` bench target.
#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            $( $group(); )+
        }
    };
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn bench_surface_runs() {
        let mut c = Criterion::default();
        let mut g = c.benchmark_group("smoke");
        g.sample_size(3);
        let mut runs = 0;
        g.bench_function("count", |b| b.iter(|| runs += 1));
        g.finish();
        assert_eq!(runs, 3);
    }
}
