//! Offline stand-in for the `parking_lot` crate.
//!
//! The build environment has no network access to a crates registry, so
//! the workspace patches `parking_lot` to this local shim. It provides
//! exactly the subset the workspace uses — [`Mutex`] and [`MutexGuard`]
//! with the poison-free API — implemented over `std::sync`. A poisoned
//! std mutex (a panic while holding the lock) aborts the caller with the
//! same net effect parking_lot has: the panic propagates, nothing
//! deadlocks.

use std::fmt;
use std::ops::{Deref, DerefMut};

/// A mutual-exclusion primitive with `parking_lot`'s poison-free API.
pub struct Mutex<T: ?Sized> {
    inner: std::sync::Mutex<T>,
}

/// RAII guard returned by [`Mutex::lock`]; releases the lock on drop.
pub struct MutexGuard<'a, T: ?Sized> {
    inner: std::sync::MutexGuard<'a, T>,
}

impl<T> Mutex<T> {
    /// Create a new mutex holding `value`.
    pub const fn new(value: T) -> Mutex<T> {
        Mutex {
            inner: std::sync::Mutex::new(value),
        }
    }

    /// Consume the mutex, returning the inner value.
    pub fn into_inner(self) -> T {
        match self.inner.into_inner() {
            Ok(v) => v,
            Err(p) => p.into_inner(),
        }
    }
}

impl<T: ?Sized> Mutex<T> {
    /// Acquire the lock, blocking until it is available. Unlike
    /// `std::sync::Mutex`, never returns a poison error: a lock held
    /// across a panic is simply re-acquired.
    pub fn lock(&self) -> MutexGuard<'_, T> {
        let inner = match self.inner.lock() {
            Ok(g) => g,
            Err(p) => p.into_inner(),
        };
        MutexGuard { inner }
    }

    /// Acquire the lock only if it is free right now, returning `None`
    /// when another thread holds it (parking_lot's `try_lock`). Like
    /// [`Mutex::lock`], poison is ignored.
    pub fn try_lock(&self) -> Option<MutexGuard<'_, T>> {
        match self.inner.try_lock() {
            Ok(g) => Some(MutexGuard { inner: g }),
            Err(std::sync::TryLockError::Poisoned(p)) => Some(MutexGuard {
                inner: p.into_inner(),
            }),
            Err(std::sync::TryLockError::WouldBlock) => None,
        }
    }

    /// Mutably borrow the inner value without locking.
    pub fn get_mut(&mut self) -> &mut T {
        match self.inner.get_mut() {
            Ok(v) => v,
            Err(p) => p.into_inner(),
        }
    }
}

impl<T: Default> Default for Mutex<T> {
    fn default() -> Mutex<T> {
        Mutex::new(T::default())
    }
}

impl<T: ?Sized + fmt::Debug> fmt::Debug for Mutex<T> {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self.inner.try_lock() {
            Ok(g) => f.debug_struct("Mutex").field("data", &&*g).finish(),
            Err(_) => f.write_str("Mutex { <locked> }"),
        }
    }
}

impl<T: ?Sized> Deref for MutexGuard<'_, T> {
    type Target = T;
    fn deref(&self) -> &T {
        &self.inner
    }
}

impl<T: ?Sized> DerefMut for MutexGuard<'_, T> {
    fn deref_mut(&mut self) -> &mut T {
        &mut self.inner
    }
}

impl<T: ?Sized + fmt::Debug> fmt::Debug for MutexGuard<'_, T> {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        fmt::Debug::fmt(&**self, f)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn lock_round_trip() {
        let m = Mutex::new(1);
        *m.lock() += 41;
        assert_eq!(*m.lock(), 42);
    }

    #[test]
    fn survives_panic_while_locked() {
        let m = std::sync::Arc::new(Mutex::new(0));
        let m2 = m.clone();
        let _ = std::thread::spawn(move || {
            let _g = m2.lock();
            panic!("poison attempt");
        })
        .join();
        // parking_lot semantics: no poison, lock still usable.
        *m.lock() += 1;
        assert_eq!(*m.lock(), 1);
    }
}
